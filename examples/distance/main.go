// Distance: the paper's §2.3/§5 metric-distance computation — for every
// point, the smallest d²_A(x_i, x') over the other points, and the point
// whose nearest neighbour is farthest (a kNN-style outlier query under a
// Riemannian metric A).
package main

import (
	"fmt"
	"log"

	"relalg/internal/core"
	"relalg/internal/value"
	"relalg/internal/workload"
)

const (
	nPoints = 200
	dims    = 6
)

func main() {
	db := core.Open(core.DefaultConfig())

	data := workload.DenseVectors(10, nPoints, dims)
	metric := workload.MetricMatrix(11, dims)

	db.MustExec(`CREATE TABLE x_m (dataid INTEGER, data VECTOR[])`)
	if err := db.LoadTable("x_m", workload.VectorRows(data)); err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE a (val MATRIX[][])`)
	if err := db.LoadTable("a", []value.Row{{value.Matrix(metric)}}); err != nil {
		log.Fatal(err)
	}

	// The paper's MX table: each point pre-multiplied by the metric.
	db.MustExec(`CREATE VIEW mx AS
		SELECT x.dataid AS id, matrix_vector_multiply(a.val, x.data) AS mx_data
		FROM x_m AS x, a`)

	// DISTANCESM: the minimum metric distance from each point to any other.
	db.MustExec(`CREATE VIEW distancesm AS
		SELECT a.dataid AS id, MIN(inner_product(mxx.mx_data, a.data)) AS dist
		FROM x_m AS a, mx AS mxx
		WHERE a.dataid <> mxx.id
		GROUP BY a.dataid`)

	// The most isolated points: max of the minimums.
	res, err := db.Query(`SELECT d.id, d.dist
		FROM distancesm AS d, (SELECT MAX(dist) AS top FROM distancesm) AS mm
		WHERE d.dist = mm.top`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("most isolated point: id=%v  min-distance=%v\n", row[0], row[1])
	}

	// Show the five most isolated points for context.
	res, err = db.Query(`SELECT id, dist FROM distancesm ORDER BY dist DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop five by nearest-neighbour distance:")
	for _, row := range res.Rows {
		fmt.Printf("  id=%-4v dist=%v\n", row[0], row[1])
	}
	fmt.Printf("\n%s\n", res.Stats)
}
