// Bigmatrix: the paper's §3.4 recipe for matrices too large for one node's
// RAM — store them as relations of tiles and multiply with plain SQL:
//
//	SELECT lhs.tileRow, rhs.tileCol, SUM(matrix_multiply(lhs.mat, rhs.mat))
//	FROM bigMatrix AS lhs, anotherBigMat AS rhs
//	WHERE lhs.tileCol = rhs.tileRow
//	GROUP BY lhs.tileRow, rhs.tileCol
//
// The tile tables are declared PARTITION BY HASH on the join column, so the
// pre-partitioned side is never re-shuffled (§2.1's "R was already
// partitioned on the join key" — watch the shuffle counters).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"relalg/internal/core"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

const (
	tileGrid = 4  // 4x4 grid of tiles
	tileSize = 64 // each tile is 64x64 -> full matrices are 256x256
)

func randomTiled(seed int64) *linalg.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(tileGrid*tileSize, tileGrid*tileSize)
	for i := range m.Data {
		m.Data[i] = r.Float64()*2 - 1
	}
	return m
}

func loadTiles(db *core.Database, table string, m *linalg.Matrix) error {
	var rows []value.Row
	for tr := 0; tr < tileGrid; tr++ {
		for tc := 0; tc < tileGrid; tc++ {
			tile, err := m.SubMatrix(tr*tileSize, (tr+1)*tileSize, tc*tileSize, (tc+1)*tileSize)
			if err != nil {
				return err
			}
			rows = append(rows, value.Row{value.Int(int64(tr)), value.Int(int64(tc)), value.Matrix(tile)})
		}
	}
	return db.LoadTable(table, rows)
}

func main() {
	db := core.Open(core.DefaultConfig())
	// lhs is pre-partitioned on its tile column (the join key); rhs on its
	// tile row. Neither side needs a shuffle for the multiply join.
	db.MustExec(fmt.Sprintf(
		`CREATE TABLE bigmatrix (tilerow INTEGER, tilecol INTEGER, mat MATRIX[%d][%d]) PARTITION BY HASH (tilecol)`,
		tileSize, tileSize))
	db.MustExec(fmt.Sprintf(
		`CREATE TABLE anotherbigmat (tilerow INTEGER, tilecol INTEGER, mat MATRIX[%d][%d]) PARTITION BY HASH (tilerow)`,
		tileSize, tileSize))

	A, B := randomTiled(1), randomTiled(2)
	if err := loadTiles(db, "bigmatrix", A); err != nil {
		log.Fatal(err)
	}
	if err := loadTiles(db, "anotherbigmat", B); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(`SELECT lhs.tilerow, rhs.tilecol,
			SUM(matrix_multiply(lhs.mat, rhs.mat)) AS tile
		FROM bigmatrix AS lhs, anotherbigmat AS rhs
		WHERE lhs.tilecol = rhs.tilerow
		GROUP BY lhs.tilerow, rhs.tilecol`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed multiply produced %d result tiles\n", len(res.Rows))
	fmt.Printf("cluster traffic: %s\n", res.Stats)

	// Where did the time go? The executor tracks per-operator wall time; for
	// this query the aggregate stage holds the matrix_multiply kernel calls,
	// so it should dominate everything else.
	fmt.Println("kernel timing breakdown:")
	for _, label := range res.Timings.Labels() {
		fmt.Printf("  %-18s %v\n", label, res.Timings.Get(label))
	}
	fmt.Printf("  %-18s %v\n", "total", res.Timings.Total())

	// Verify every tile against a dense reference multiply.
	want, err := A.MulMat(B)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for _, row := range res.Rows {
		tr, tc := int(row[0].I), int(row[1].I)
		ref, err := want.SubMatrix(tr*tileSize, (tr+1)*tileSize, tc*tileSize, (tc+1)*tileSize)
		if err != nil {
			log.Fatal(err)
		}
		got := row[2].Mat
		for i := range got.Data {
			if d := got.Data[i] - ref.Data[i]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
	}
	fmt.Printf("max |tile - dense reference| entry: %.3e\n", maxErr)
	if maxErr > 1e-9 {
		log.Fatal("tiled multiply disagrees with the dense reference")
	}
	fmt.Println("tiled multiply matches the dense reference")
}
