// Optimizer: the paper's §4.1 worked example, live. Shows how templated
// type signatures let the cost-based optimizer see linear-algebra object
// sizes and pick pi(S x R) |X| T — a cross product with the matrix multiply
// projected early — instead of dragging 80 GB of matrices through the join
// with T, and what happens when either piece of the machinery is disabled.
package main

import (
	"fmt"
	"log"

	"relalg/internal/bench"
	"relalg/internal/core"
)

func main() {
	// The static demonstration over the paper's exact statistics.
	text, err := bench.OptimizerDemo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)

	// And the same decision on a live (scaled-down) database: R and S carry
	// 10x1000 and 1000x10 matrices, so the product is 400x smaller than its
	// inputs and the optimizer still prefers the early-projection plan.
	db := core.Open(core.DefaultConfig())
	db.MustExec(`CREATE TABLE r (r_rid INTEGER, r_matrix MATRIX[10][1000])`)
	db.MustExec(`CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[1000][10])`)
	db.MustExec(`CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)`)
	for i := 0; i < 8; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO r VALUES (%d, zeros_matrix(10, 1000) + %d)`, i, i+1))
		db.MustExec(fmt.Sprintf(`INSERT INTO s VALUES (%d, zeros_matrix(1000, 10) + %d)`, i, i+1))
	}
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i%8, (i*3)%8))
	}

	const q = `SELECT matrix_multiply(r_matrix, s_matrix) AS product
		FROM r, s, t
		WHERE r_rid = t_rid AND s_sid = t_sid`
	plan, err := db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Live EXPLAIN over the scaled-down schema:")
	fmt.Println(plan)

	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d result tuples, %s\n", len(res.Rows), res.Stats)
	// Sanity: each product entry for pair (i, j) is 1000*(i+1)*(j+1).
	first := res.Rows[0][0].Mat
	fmt.Printf("first product tile is %dx%d, entry(0,0)=%g\n", first.Rows, first.Cols, first.At(0, 0))
}
