// Regression: the paper's §3.2 least-squares example end-to-end, in both the
// vector layout and the blocked layout, recovering a known coefficient
// vector from synthetic data.
package main

import (
	"fmt"
	"log"

	"relalg/internal/core"
	"relalg/internal/workload"
)

const (
	nPoints   = 500
	dims      = 8
	blockRows = 50
)

func main() {
	db := core.Open(core.DefaultConfig())

	// Synthetic data with a known coefficient vector.
	data := workload.DenseVectors(1, nPoints, dims)
	beta := workload.Beta(2, dims)
	yRows := workload.RegressionTargets(3, data, beta, 0)

	db.MustExec(`CREATE TABLE x (i INTEGER, x_i VECTOR[])`)
	db.MustExec(`CREATE TABLE y (i INTEGER, y_i DOUBLE)`)
	if err := db.LoadTable("x", workload.VectorRows(data)); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTable("y", yRows); err != nil {
		log.Fatal(err)
	}

	// Vector layout: the paper's one-query solution,
	// beta = inverse(sum x xT) (sum x*y).
	res, err := db.Query(`SELECT matrix_vector_multiply(
			matrix_inverse(SUM(outer_product(x.x_i, x.x_i))),
			SUM(x.x_i * y_i)) AS beta
		FROM x, y WHERE x.i = y.i`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("true beta:           ", beta)
	fmt.Println("vector-layout beta:  ", res.Rows[0][0])

	// Blocked layout: group rows into matrices first (§3.3 blocking SQL),
	// then solve with matrix products.
	db.MustExec(`CREATE TABLE block_index (mi INTEGER)`)
	if err := db.LoadTable("block_index", workload.BlockIndexRows(nPoints/blockRows)); err != nil {
		log.Fatal(err)
	}
	db.MustExec(fmt.Sprintf(`CREATE VIEW mlx AS
		SELECT ind.mi AS mi, ROWMATRIX(label_vector(x.x_i, x.i - ind.mi*%d)) AS m
		FROM x, block_index AS ind
		WHERE x.i/%d = ind.mi
		GROUP BY ind.mi`, blockRows, blockRows))
	db.MustExec(fmt.Sprintf(`CREATE VIEW yb AS
		SELECT ind.mi AS mi, VECTORIZE(label_scalar(y.y_i, y.i - ind.mi*%d)) AS v
		FROM y, block_index AS ind
		WHERE y.i/%d = ind.mi
		GROUP BY ind.mi`, blockRows, blockRows))
	res, err = db.Query(`SELECT matrix_vector_multiply(
			matrix_inverse(SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m))),
			SUM(matrix_vector_multiply(trans_matrix(mlx.m), yb.v))) AS beta
		FROM mlx, yb WHERE mlx.mi = yb.mi`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocked-layout beta: ", res.Rows[0][0])
	fmt.Printf("\nquery moved %d tuples (%d bytes) through the simulated cluster\n",
		res.Stats.TuplesShuffled, res.Stats.BytesShuffled)
}
