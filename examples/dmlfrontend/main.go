// DML frontend: the higher-level matrix language the paper's introduction
// proposes building on top of the SQL extensions ("a math-like domain
// specific language ... could translate the computation to a database
// computation"). Every assignment below compiles to one extended-SQL
// CREATE TABLE ... AS SELECT; the relational optimizer and distributed
// executor run it.
package main

import (
	"fmt"
	"log"

	"relalg/internal/core"
	"relalg/internal/dml"
	"relalg/internal/workload"
)

func main() {
	db := core.Open(core.DefaultConfig())
	s := dml.New(db)

	// A regression problem with a known coefficient vector.
	const n, d = 400, 6
	data := workload.DenseVectors(1, n, d)
	beta := workload.Beta(2, d)
	y := make([]float64, n)
	for i, row := range data {
		for j, x := range row {
			y[i] += x * beta[j]
		}
	}
	if err := s.BindMatrix("X", data); err != nil {
		log.Fatal(err)
	}
	if err := s.BindVectorAsColumn("y", y); err != nil {
		log.Fatal(err)
	}

	script := `
		# least squares via the normal equations
		G    = t(X) %*% X
		xty  = t(X) %*% y
		beta = solve(G, xty)

		# model diagnostics, all running as SQL underneath
		yhat  = X %*% beta
		resid = y - yhat
		sse   = sum(resid * resid)
		print(sse)
	`
	if err := s.Run(script); err != nil {
		log.Fatal(err)
	}

	est, err := s.Matrix("beta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("true beta     estimated")
	for j := 0; j < d; j++ {
		fmt.Printf("%+.6f     %+.6f\n", beta[j], est.At(j, 0))
	}
	sse, err := s.Scalar("sse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum of squared residuals: %.3e\n", sse)
	fmt.Println("printed by the script:", s.Printed())

	// Show what one assignment compiles to.
	text, err := db.Explain(`SELECT matrix_multiply(trans_matrix(d0.val), d1.val) AS val
		FROM dml_x AS d0, dml_x AS d1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe SQL plan behind G = t(X) %*% X:")
	fmt.Print(text)
}
