// Quickstart: the paper's extensions in five minutes — vector/matrix column
// types, overloaded arithmetic, the conversion aggregates, and EXPLAIN.
package main

import (
	"fmt"
	"log"

	"relalg/internal/core"
)

func main() {
	db := core.Open(core.DefaultConfig())

	// 1. LABELED_SCALAR -> VECTOR -> MATRIX conversion pipeline (§3.3).
	script := `
		CREATE TABLE mat (row INTEGER, col INTEGER, value DOUBLE);
		INSERT INTO mat VALUES
			(0, 0, 1), (0, 1, 2),
			(1, 0, 3), (1, 1, 4),
			(2, 0, 5), (2, 1, 6);

		-- One labeled vector per row...
		CREATE VIEW vecs AS
			SELECT VECTORIZE(label_scalar(value, col)) AS vec, row
			FROM mat GROUP BY row;

		-- ...aggregated into a single 3x2 matrix.
		SELECT ROWMATRIX(label_vector(vec, row)) AS m FROM vecs;
	`
	results, err := db.RunScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Matrix assembled from normalized triples:")
	fmt.Println(" ", results[0].Rows[0][0])

	// 2. Overloaded arithmetic: Hadamard products and scalar broadcast (§3.2).
	res, err := db.Query(`SELECT vec * vec AS squared, vec * 10 AS scaled FROM vecs ORDER BY row`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nElement-wise vector arithmetic:")
	for _, row := range res.Rows {
		fmt.Printf("  squared=%v scaled=%v\n", row[0], row[1])
	}

	// 3. Matrix functions with compile-time shape checking (§3.1/§4.2):
	// the paper's example of a MATRIX[2][2] against a VECTOR[5] column is
	// rejected by the type checker before any data is touched.
	db.MustExec(`CREATE TABLE m (mat MATRIX[2][2], vec VECTOR[5])`)
	if _, err := db.Explain(`SELECT matrix_vector_multiply(mat, vec) FROM m`); err != nil {
		fmt.Println("\nShape mismatch rejected at compile time (no data loaded yet):")
		fmt.Println(" ", err)
	}

	// 4. EXPLAIN shows the optimized relational plan.
	text, err := db.Explain(`SELECT SUM(outer_product(vec, vec)) FROM vecs`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN SELECT SUM(outer_product(vec, vec)) FROM vecs:")
	fmt.Print(text)
}
