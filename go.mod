module relalg

go 1.22
