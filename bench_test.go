// Package relalg's top-level benchmarks regenerate every table and figure in
// the paper's evaluation section at benchmark-friendly scale, plus the
// ablations DESIGN.md calls out. One benchmark per artifact:
//
//	BenchmarkFig1Gram          Figure 1 rows (platform × dimensionality)
//	BenchmarkFig2Regression    Figure 2 rows
//	BenchmarkFig3Distance      Figure 3 rows (tuple layout reported as Fail)
//	BenchmarkFig4Breakdown     Figure 4 (tuple vs vector operator split)
//	BenchmarkFig5PlanChoice    §4.1 optimizer plan selection
//	BenchmarkAblation*         design-choice ablations (A1-A3)
//
// Use cmd/labench for the paper-formatted tables; these benches feed
// `go test -bench . -benchmem`.
package relalg

import (
	"fmt"
	"testing"

	"relalg/internal/bench"
	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/core"
	"relalg/internal/opt"
	"relalg/internal/plan"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
	"relalg/internal/value"
	"relalg/internal/workload"
)

// skipIfShort gates the long, cluster-simulating benchmarks so `go test
// -short -bench .` (and the verify script) stays fast.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping long benchmark in -short mode")
	}
}

// benchConfig is a trimmed QuickConfig so -bench runs stay snappy.
func benchConfig() bench.Config {
	cfg := bench.QuickConfig()
	cfg.Dims = []int{10, 40}
	cfg.GramN = 300
	cfg.DistN = 100
	cfg.BlockRows = 50
	cfg.Nodes = 2
	cfg.PerNode = 2
	return cfg
}

func BenchmarkFig1Gram(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	data := map[int][][]float64{}
	for _, d := range cfg.Dims {
		data[d] = workload.DenseVectors(cfg.Seed, cfg.GramN, d)
	}
	forEachPlatform(b, cfg, 0, func(b *testing.B, pl bench.Platform, d int) {
		for i := 0; i < b.N; i++ {
			if _, err := pl.Gram(data[d]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig2Regression(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	forEachPlatform(b, cfg, 0, func(b *testing.B, pl bench.Platform, d int) {
		data := workload.DenseVectors(cfg.Seed, cfg.GramN, d)
		beta := workload.Beta(cfg.Seed+1, d)
		yRows := workload.RegressionTargets(cfg.Seed+2, data, beta, 0.01)
		y := make([]float64, len(yRows))
		for i, r := range yRows {
			y[i] = r[1].D
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Regression(data, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig3Distance(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	budget := int64(cfg.DistBudgetFactor) * int64(cfg.DistN) * int64(cfg.DistN)
	forEachPlatform(b, cfg, budget, func(b *testing.B, pl bench.Platform, d int) {
		data := workload.DenseVectors(cfg.Seed, cfg.DistN, d)
		metric := workload.MetricMatrix(cfg.Seed+3, d)
		isTuple := pl.Name() == "Tuple SimSQL"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, err := pl.Distance(data, metric)
			if isTuple {
				// The tuple layout must exhaust the budget, as in Figure 3.
				if err == nil {
					b.Fatal("tuple distance should Fail under the paper's resource budget")
				}
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// forEachPlatform runs the body as a sub-benchmark per platform × dims.
func forEachPlatform(b *testing.B, cfg bench.Config, budget int64, body func(*testing.B, bench.Platform, int)) {
	for _, pl := range bench.Platforms(cfg, budget) {
		for _, d := range cfg.Dims {
			pl, d := pl, d
			b.Run(fmt.Sprintf("%s/d=%d", pl.Name(), d), func(b *testing.B) {
				body(b, pl, d)
			})
		}
	}
}

func BenchmarkFig4Breakdown(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		br, err := bench.RunBreakdown(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(br.Variants) != 2 {
			b.Fatal("breakdown incomplete")
		}
	}
}

// paper41Catalog is the §4.1 schema at full paper statistics (metadata only;
// nothing is executed, so the sizes are free).
func paper41Catalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	add := func(name string, rows int64, cols ...catalog.Column) {
		if err := cat.CreateTable(catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows)); err != nil {
			b.Fatal(err)
		}
	}
	add("r", 100,
		catalog.Column{Name: "r_rid", Type: types.TInt},
		catalog.Column{Name: "r_matrix", Type: types.TMatrix(types.KnownDim(10), types.KnownDim(100000))})
	add("s", 100,
		catalog.Column{Name: "s_sid", Type: types.TInt},
		catalog.Column{Name: "s_matrix", Type: types.TMatrix(types.KnownDim(100000), types.KnownDim(100))})
	add("t", 1000,
		catalog.Column{Name: "t_rid", Type: types.TInt},
		catalog.Column{Name: "t_sid", Type: types.TInt})
	cat.SetDistinct("t", "t_rid", 100)
	cat.SetDistinct("t", "t_sid", 100)
	return cat
}

// BenchmarkFig5PlanChoice measures full plan/optimize latency for the §4.1
// query and asserts the winning plan shape each iteration.
func BenchmarkFig5PlanChoice(b *testing.B) {
	cat := paper41Catalog(b)
	stmt, err := sqlparse.Parse(bench.PaperOptimizerQuery)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sqlparse.Select)
	o := opt.New(opt.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logical, err := plan.NewBuilder(cat).BuildSelect(sel)
		if err != nil {
			b.Fatal(err)
		}
		optimized, err := o.Optimize(logical)
		if err != nil {
			b.Fatal(err)
		}
		if !planContainsCross(optimized) {
			b.Fatal("optimizer lost the paper's cross-product plan")
		}
	}
}

func planContainsCross(n plan.Node) bool {
	if _, ok := n.(*plan.Cross); ok {
		return true
	}
	for _, c := range n.Children() {
		if planContainsCross(c) {
			return true
		}
	}
	return false
}

// ablationDB loads a scaled-down §4.1 instance whose execution time depends
// on the chosen plan: 30 R and S rows of 4×5000 / 5000×4 matrices against
// 600 T pairs. The LA-aware plan crosses R and S (900 pairs, 800 B products)
// and joins T against the shrunken result; the size-blind plan estimates by
// row counts alone (900 > 600), avoids the cross product, and drags a 160 KB
// matrix copy per T row through two shuffles (~3x the bytes).
func ablationDB(b *testing.B, opts opt.Options) *core.Database {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true, NetworkBytesPerSec: 300e6}
	cfg.Optimizer = opts
	db := core.Open(cfg)
	db.MustExec(`CREATE TABLE r (r_rid INTEGER, r_matrix MATRIX[4][5000])`)
	db.MustExec(`CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[5000][4])`)
	db.MustExec(`CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)`)
	var rrows, srows, trows []value.Row
	for i := 0; i < 30; i++ {
		rm, err := core.MatrixValue(constMatrix(4, 5000, float64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		sm, err := core.MatrixValue(constMatrix(5000, 4, float64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		rrows = append(rrows, value.Row{value.Int(int64(i)), rm})
		srows = append(srows, value.Row{value.Int(int64(i)), sm})
	}
	// T must dominate R and S (the paper used 1000 T rows against 100-row
	// R and S): the size-blind plan then drags one matrix copy per T row.
	for i := 0; i < 600; i++ {
		trows = append(trows, value.Row{value.Int(int64(i % 30)), value.Int(int64((i * 7) % 30))})
	}
	mustLoad := func(name string, rows []value.Row) {
		if err := db.LoadTable(name, rows); err != nil {
			b.Fatal(err)
		}
	}
	mustLoad("r", rrows)
	mustLoad("s", srows)
	mustLoad("t", trows)
	return db
}

func constMatrix(r, c int, v float64) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		row := make([]float64, c)
		for j := range row {
			row[j] = v
		}
		out[i] = row
	}
	return out
}

const paper41SQL = `SELECT matrix_multiply(r_matrix, s_matrix) AS p
	FROM r, s, t WHERE r_rid = t_rid AND s_sid = t_sid`

// BenchmarkAblationLAAware executes the §4.1 query with the full optimizer.
func BenchmarkAblationLAAware(b *testing.B) {
	skipIfShort(b)
	db := ablationDB(b, opt.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(paper41SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSizeBlind executes it with size-blind costing (A1): the
// optimizer picks the join-predicate plan and drags the matrices through T.
func BenchmarkAblationSizeBlind(b *testing.B) {
	skipIfShort(b)
	opts := opt.DefaultOptions()
	opts.SizeAwareCosting = false
	db := ablationDB(b, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(paper41SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoEagerProject disables early function application (A2).
func BenchmarkAblationNoEagerProject(b *testing.B) {
	skipIfShort(b)
	opts := opt.DefaultOptions()
	opts.EagerProjection = false
	db := ablationDB(b, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(paper41SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// serdeDB builds a shuffle-dominated workload for the ser-de ablation (A3):
// a join that moves 2000 wide vector rows per side with trivial compute, so
// the cost of encoding/decoding rows at the exchange is the signal.
func serdeDB(b *testing.B, serialize bool) *core.Database {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: serialize}
	db := core.Open(cfg)
	db.MustExec(`CREATE TABLE xv (id INTEGER, value VECTOR[])`)
	db.MustExec(`CREATE TABLE y (i INTEGER, y_i DOUBLE)`)
	data := workload.DenseVectors(1, 2000, 500)
	if err := db.LoadTable("xv", workload.VectorRows(data)); err != nil {
		b.Fatal(err)
	}
	if err := db.LoadTable("y", workload.RegressionTargets(2, data, workload.Beta(3, 500), 0)); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkAblationShuffleSerde compares a shuffle-heavy join with and
// without serialization at the exchanges (A3).
func BenchmarkAblationShuffleSerde(b *testing.B) {
	skipIfShort(b)
	for _, serialize := range []bool{true, false} {
		b.Run(fmt.Sprintf("serialize=%v", serialize), func(b *testing.B) {
			db := serdeDB(b, serialize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(`SELECT SUM(x.value * y.y_i) AS xty FROM xv AS x, y WHERE x.id = y.i`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAggFusion compares the fused SUM(outer_product)
// accumulation (A4, the engine default) against the 2017-SimSQL behaviour
// of materializing one outer-product matrix per input row.
func BenchmarkAblationAggFusion(b *testing.B) {
	skipIfShort(b)
	for _, disable := range []bool{false, true} {
		name := "fused"
		if disable {
			name = "unfused"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
			cfg.DisableAggFusion = disable
			db := core.Open(cfg)
			db.MustExec(`CREATE TABLE xv (id INTEGER, value VECTOR[])`)
			if err := db.LoadTable("xv", workload.VectorRows(workload.DenseVectors(1, 800, 100))); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(`SELECT SUM(outer_product(x.value, x.value)) FROM xv AS x`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineTPS measures raw relational throughput (tuples/sec through
// a join + aggregation), the per-tuple overhead Figure 4 is about.
func BenchmarkEngineTPS(b *testing.B) {
	skipIfShort(b)
	cfg := core.DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
	db := core.Open(cfg)
	db.MustExec(`CREATE TABLE t (k INTEGER, v DOUBLE)`)
	var rows []value.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, value.Row{value.Int(int64(i % 100)), value.Double(float64(i))})
	}
	if err := db.LoadTable("t", rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT t1.k, SUM(t1.v * t2.v) FROM t AS t1, t AS t2 WHERE t1.k = t2.k GROUP BY t1.k`); err != nil {
			b.Fatal(err)
		}
	}
}
