package storage

import (
	"bytes"
	"sync"
	"testing"

	"relalg/internal/value"
)

// poolFixture builds a store whose table is several times larger than the
// buffer-pool budget, so nothing close to the whole table can be resident.
func poolFixture(t *testing.T, poolBytes int64) (*Store, *Table, []byte) {
	t.Helper()
	s, err := Open(t.TempDir(), Options{PageBytes: 1024, PoolBytes: poolBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	tb, err := s.CreateTable("big", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := bigRows(5, 400, 32) // ~100 pages at 1KB pages
	for part := 0; part < 4; part++ {
		if err := tb.Append(part, rows[part*100:part*100+100]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, tb, value.EncodeRows(rows[:0:0])
}

func TestScanLargerThanPool(t *testing.T) {
	const budget = 8 << 10 // 8 pages' worth for a ~100-page table
	s, tb, _ := poolFixture(t, budget)
	var total int
	for part := 0; part < 4; part++ {
		rows, err := tb.MaterializePart(part)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != 400 {
		t.Fatalf("scanned %d rows, want 400", total)
	}
	st := s.PoolStats()
	if st.PeakBytes > budget {
		t.Fatalf("peak pool usage %d exceeds budget %d", st.PeakBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("a table larger than the pool scanned with zero evictions")
	}
	if st.Misses == 0 {
		t.Fatal("no misses counted")
	}
}

func TestRepeatScanHitsCache(t *testing.T) {
	s, tb, _ := poolFixture(t, 64<<20) // everything fits
	for part := 0; part < 4; part++ {
		if _, err := tb.MaterializePart(part); err != nil {
			t.Fatal(err)
		}
	}
	first := s.PoolStats()
	for part := 0; part < 4; part++ {
		if _, err := tb.MaterializePart(part); err != nil {
			t.Fatal(err)
		}
	}
	second := s.PoolStats()
	if second.Misses != first.Misses {
		t.Fatalf("second scan missed (%d → %d misses)", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Fatal("second scan recorded no hits")
	}
	if second.Evictions != 0 {
		t.Fatalf("evictions with an oversized budget: %d", second.Evictions)
	}
}

func TestWritebackBeforeCommitStaysBounded(t *testing.T) {
	// The insert path alone (seal → install dirty → evict/writeback) must
	// respect the budget: loading a table much larger than the pool cannot
	// buffer all its dirty pages.
	const budget = 4 << 10
	s, err := Open(t.TempDir(), Options{PageBytes: 1024, PoolBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	tb, err := s.CreateTable("load", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(0, bigRows(9, 300, 32)); err != nil {
		t.Fatal(err)
	}
	mid := s.PoolStats()
	if mid.PeakBytes > budget {
		t.Fatalf("dirty pages overran the budget before commit: peak %d > %d", mid.PeakBytes, budget)
	}
	if mid.Writebacks == 0 {
		t.Fatal("no early writebacks despite a tiny pool")
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPartScans(t *testing.T) {
	const budget = 16 << 10
	s, tb, _ := poolFixture(t, budget)
	want := make([][]byte, 4)
	for part := 0; part < 4; part++ {
		rows, err := tb.MaterializePart(part)
		if err != nil {
			t.Fatal(err)
		}
		want[part] = value.EncodeRows(rows)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	got := make([][]byte, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rows, err := tb.MaterializePart(g % 4)
			if err != nil {
				errs[g] = err
				return
			}
			got[g] = value.EncodeRows(rows)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(got[g], want[g%4]) {
			t.Fatalf("goroutine %d: concurrent scan differs from serial scan", g)
		}
	}
	if st := s.PoolStats(); st.PeakBytes > budget {
		t.Fatalf("concurrent scans overran the budget: peak %d > %d", st.PeakBytes, budget)
	}
}

func TestPageHandleDoubleRelease(t *testing.T) {
	s, tb, _ := poolFixture(t, 1<<20)
	pages, err := tb.partPages(0)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.pool.fetch(tb, pages[0])
	if err != nil {
		t.Fatal(err)
	}
	pg.Release()
	pg.Release() // must be a no-op, not a double-unpin
	st := s.pool.stats()
	_ = st
	s.pool.mu.Lock()
	fr := s.pool.frames[frameKey{table: tb.id, slot: pages[0].Slot}]
	pins := fr.pins
	s.pool.mu.Unlock()
	if pins != 0 {
		t.Fatalf("pins = %d after double release", pins)
	}
}
