// Float-array compression for the page codec. VECTOR and MATRIX payloads
// dominate stored-table bytes, and the workloads the paper cares about are
// often sparse (blocked matrices with empty borders, one-hot feature
// vectors) or locally smooth, so pages compress the float arrays with two
// run encodings over the raw IEEE-754 bit patterns:
//
//	stream  := token*
//	token   := 0x00, uvarint n                    n zeros (+0.0 exactly)
//	         | 0x01, uvarint n, n × 8 bytes       literal run
//	         | 0x02, uvarint n, first 8 bytes,    delta run: zigzag-varint
//	           (n-1) × svarint                    diffs of the bit patterns
//
// Working on bit patterns (not values) makes the round trip exact for every
// payload — NaN bit patterns, ±Inf, -0.0, and denormals survive unchanged —
// which the restart acceptance test (EncodeRows-exact equality) depends on.
// Only +0.0 (bit pattern zero) joins a zero run; -0.0 has a different
// pattern and flows through the literal/delta paths. Deltas wrap in two's
// complement, so the diff of any two patterns round-trips.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	tokZeroRun = 0x00
	tokLiteral = 0x01
	tokDelta   = 0x02
)

// appendFloats appends the compressed encoding of data to dst.
func appendFloats(dst []byte, data []float64) []byte {
	i := 0
	for i < len(data) {
		if math.Float64bits(data[i]) == 0 {
			j := i
			for j < len(data) && math.Float64bits(data[j]) == 0 {
				j++
			}
			dst = append(dst, tokZeroRun)
			dst = binary.AppendUvarint(dst, uint64(j-i))
			i = j
			continue
		}
		j := i
		for j < len(data) && math.Float64bits(data[j]) != 0 {
			j++
		}
		dst = appendNonZeroRun(dst, data[i:j])
		i = j
	}
	return dst
}

// appendNonZeroRun encodes one maximal run of non-zero-pattern floats,
// choosing delta when it is strictly smaller than the literal encoding.
func appendNonZeroRun(dst []byte, run []float64) []byte {
	deltaBytes := 8
	prev := int64(math.Float64bits(run[0]))
	for _, x := range run[1:] {
		cur := int64(math.Float64bits(x))
		deltaBytes += uvarintLen(zigzag(cur - prev))
		prev = cur
	}
	if deltaBytes < 8*len(run) {
		dst = append(dst, tokDelta)
		dst = binary.AppendUvarint(dst, uint64(len(run)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(run[0]))
		prev = int64(math.Float64bits(run[0]))
		for _, x := range run[1:] {
			cur := int64(math.Float64bits(x))
			dst = binary.AppendUvarint(dst, zigzag(cur-prev))
			prev = cur
		}
		return dst
	}
	dst = append(dst, tokLiteral)
	dst = binary.AppendUvarint(dst, uint64(len(run)))
	for _, x := range run {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// decodeFloats decodes exactly n floats from the head of buf into dst
// (which must have length n), returning the remaining bytes.
func decodeFloats(dst []float64, buf []byte) ([]byte, error) {
	i := 0
	for i < len(dst) {
		if len(buf) < 1 {
			return nil, fmt.Errorf("storage: short float stream (decoded %d of %d)", i, len(dst))
		}
		tok := buf[0]
		buf = buf[1:]
		n, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, fmt.Errorf("storage: bad run length in float stream")
		}
		buf = buf[w:]
		if n == 0 || n > uint64(len(dst)-i) {
			return nil, fmt.Errorf("storage: float run of %d overflows remaining %d entries", n, len(dst)-i)
		}
		switch tok {
		case tokZeroRun:
			for k := uint64(0); k < n; k++ {
				dst[i] = 0
				i++
			}
		case tokLiteral:
			if uint64(len(buf)) < 8*n {
				return nil, fmt.Errorf("storage: short literal float run")
			}
			for k := uint64(0); k < n; k++ {
				dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
				buf = buf[8:]
				i++
			}
		case tokDelta:
			if len(buf) < 8 {
				return nil, fmt.Errorf("storage: short delta float run")
			}
			bits := int64(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
			dst[i] = math.Float64frombits(uint64(bits))
			i++
			for k := uint64(1); k < n; k++ {
				d, w := binary.Uvarint(buf)
				if w <= 0 {
					return nil, fmt.Errorf("storage: bad delta in float run")
				}
				buf = buf[w:]
				bits += unzigzag(d)
				dst[i] = math.Float64frombits(uint64(bits))
				i++
			}
		default:
			return nil, fmt.Errorf("storage: unknown float-stream token %#x", tok)
		}
	}
	return buf, nil
}

// zigzag maps a signed delta onto an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of u as a uvarint.
func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}
