package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"relalg/internal/fault"
	"relalg/internal/value"
)

// workload runs a fixed multi-table create/append/commit/drop sequence
// against a store, recording after every successful commit what a recovered
// store must look like. It stops at the first error (a torn write poisons
// the store, as a crash would) and returns the last committed expectation.
//
// The expectation maps table name → EncodeRows of its full contents in part
// order; absent tables must be absent after recovery.
func workload(s *Store) (committed map[string][]byte, err error) {
	committed = map[string][]byte{}
	record := func(names ...string) error {
		next := map[string][]byte{}
		for _, name := range names {
			tb, ok := s.Table(name)
			if !ok {
				return fmt.Errorf("workload: table %q missing", name)
			}
			var all []value.Row
			for part := 0; part < tb.Parts(); part++ {
				rows, err := tb.MaterializePart(part)
				if err != nil {
					return err
				}
				all = append(all, rows...)
			}
			next[name] = value.EncodeRows(all)
		}
		committed = next
		return nil
	}

	a, err := s.CreateTable("a", 2, []byte("schema-a"))
	if err != nil {
		return committed, err
	}
	if err := record("a"); err != nil {
		return committed, err
	}
	rows := bigRows(99, 60, 24)
	for round := 0; round < 3; round++ {
		for part := 0; part < 2; part++ {
			if err := a.Append(part, rows[(round*2+part)*10:(round*2+part)*10+10]); err != nil {
				return committed, err
			}
		}
		if err := a.Commit(); err != nil {
			return committed, err
		}
		if err := record("a"); err != nil {
			return committed, err
		}
	}
	b, err := s.CreateTable("b", 1, []byte("schema-b"))
	if err != nil {
		return committed, err
	}
	// CreateTable is durable on return: a crash right here must recover an
	// empty b alongside a.
	if err := record("a", "b"); err != nil {
		return committed, err
	}
	if err := b.Append(0, rows[50:60]); err != nil {
		return committed, err
	}
	if err := b.Commit(); err != nil {
		return committed, err
	}
	if err := record("a", "b"); err != nil {
		return committed, err
	}
	if err := s.DropTable("a"); err != nil {
		return committed, err
	}
	if err := record("b"); err != nil {
		return committed, err
	}
	return committed, nil
}

// verifyRecovered reopens dir and checks it matches the expectation exactly.
func verifyRecovered(t *testing.T, dir string, want map[string][]byte, label string) {
	t.Helper()
	s, err := Open(dir, Options{PageBytes: 512})
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer func() { _ = s.Close() }()
	tables := s.Tables()
	if len(tables) != len(want) {
		t.Fatalf("%s: recovered %d tables, committed state has %d", label, len(tables), len(want))
	}
	for _, tb := range tables {
		wantEnc, ok := want[tb.Name()]
		if !ok {
			t.Fatalf("%s: recovered unexpected table %q", label, tb.Name())
		}
		var all []value.Row
		for part := 0; part < tb.Parts(); part++ {
			rows, err := tb.MaterializePart(part)
			if err != nil {
				t.Fatalf("%s: table %q part %d: %v", label, tb.Name(), part, err)
			}
			all = append(all, rows...)
		}
		if !bytes.Equal(value.EncodeRows(all), wantEnc) {
			t.Fatalf("%s: table %q differs from last committed state", label, tb.Name())
		}
	}
}

// TestTornWriteEveryBoundary tears the workload's Nth physical write for
// every N the fault-free run performs — every page write, every journal
// append, every table header — and checks that recovery lands exactly on
// the last committed state each time.
func TestTornWriteEveryBoundary(t *testing.T) {
	clean, err := Open(t.TempDir(), Options{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload(clean); err != nil {
		t.Fatalf("fault-free workload: %v", err)
	}
	writes := clean.WriteCount()
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}
	if writes < 10 {
		t.Fatalf("workload too small to be interesting: %d writes", writes)
	}

	for n := int64(1); n <= writes; n++ {
		dir := t.TempDir()
		inj := fault.New(fault.Config{Seed: uint64(n), StorageFailAfter: n})
		s, err := Open(dir, Options{PageBytes: 512, WriteFault: inj.StorageWrite})
		if err != nil {
			t.Fatalf("write %d: open: %v", n, err)
		}
		want, err := workload(s)
		if err == nil {
			t.Fatalf("write %d: workload survived its torn write", n)
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("write %d: workload died of %v, not the torn write", n, err)
		}
		s.Crash()
		verifyRecovered(t, dir, want, fmt.Sprintf("write %d", n))
	}
}

// TestTornWriteSeededSweep drives the probabilistic torn-write injector at
// several seeds; whether or not the workload survives, recovery must land on
// the last committed state.
func TestTornWriteSeededSweep(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		dir := t.TempDir()
		inj := fault.New(fault.Config{Seed: seed, TornWriteProb: 0.02})
		s, err := Open(dir, Options{PageBytes: 512, WriteFault: inj.StorageWrite})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		want, err := workload(s)
		if err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: workload died of %v, not a torn write", seed, err)
		}
		s.Crash()
		verifyRecovered(t, dir, want, fmt.Sprintf("seed %d", seed))
	}
}

// TestPoisonAfterTear checks a torn write leaves the store unusable — no
// operation may quietly succeed against a store whose process is "dead".
func TestPoisonAfterTear(t *testing.T) {
	inj := fault.New(fault.Config{StorageFailAfter: 3})
	s, err := Open(t.TempDir(), Options{PageBytes: 512, WriteFault: inj.StorageWrite})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Crash()
	_, werr := workload(s)
	if !errors.Is(werr, ErrCrashed) {
		t.Fatalf("workload: %v", werr)
	}
	if _, err := s.CreateTable("late", 1, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("CreateTable after tear: %v", err)
	}
	if tb, ok := s.Table("a"); ok {
		if err := tb.Append(0, bigRows(1, 1, 4)); !errors.Is(err, ErrCrashed) {
			t.Fatalf("Append after tear: %v", err)
		}
		if _, err := tb.Pager(0); !errors.Is(err, ErrCrashed) {
			t.Fatalf("Pager after tear: %v", err)
		}
	}
}
