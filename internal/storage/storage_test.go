package storage

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relalg/internal/linalg"
	"relalg/internal/value"
)

// rng is a splitmix64 for deterministic test payloads.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func TestCompressRoundTrip(t *testing.T) {
	nan1 := math.Float64frombits(0x7ff8000000000001) // NaN with payload bits
	nan2 := math.Float64frombits(0xfff0000000000042) // negative signalling-style NaN
	denorm := math.Float64frombits(1)                // smallest denormal
	negZero := math.Copysign(0, -1)
	cases := [][]float64{
		nil,
		{},
		{0},
		{negZero},
		{0, 0, 0, 0, 0},
		{1.5},
		{1.5, 2.5, 3.5, 4.5}, // smooth: delta path
		{nan1, nan2, math.Inf(1), math.Inf(-1), negZero, denorm, math.MaxFloat64, -math.SmallestNonzeroFloat64},
		{0, 0, 1, 0, 0, 0, 2, 0},          // zero runs at interior boundaries
		{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}, // long interior zero run
		{0, 0, 0, 1, 2, 3},                // leading zero run
		{1, 2, 3, 0, 0, 0},                // trailing zero run
		append(make([]float64, 1000), 7),  // very long zero run
	}
	var r rng = 42
	wild := make([]float64, 257)
	for i := range wild {
		switch r.next() % 5 {
		case 0:
			wild[i] = 0
		case 1:
			wild[i] = math.Float64frombits(r.next()) // any bit pattern at all
		case 2:
			wild[i] = float64(int64(r.next() % 1000))
		default:
			wild[i] = r.float()*2e6 - 1e6
		}
	}
	cases = append(cases, wild)
	for ci, data := range cases {
		enc := appendFloats(nil, data)
		got := make([]float64, len(data))
		rest, err := decodeFloats(got, enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d bytes left over", ci, len(rest))
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				t.Fatalf("case %d: entry %d: got bits %016x want %016x",
					ci, i, math.Float64bits(got[i]), math.Float64bits(data[i]))
			}
		}
	}
}

func TestCompressShrinksSparse(t *testing.T) {
	sparse := make([]float64, 4096)
	sparse[7] = 1.25
	sparse[4000] = -3.5
	enc := appendFloats(nil, sparse)
	if len(enc) >= 8*len(sparse)/10 {
		t.Fatalf("sparse vector compressed to %d bytes; raw is %d", len(enc), 8*len(sparse))
	}
}

func TestCompressTruncatedStreams(t *testing.T) {
	data := []float64{1, 2, 0, 0, 3.5, math.NaN()}
	enc := appendFloats(nil, data)
	for cut := 0; cut < len(enc); cut++ {
		got := make([]float64, len(data))
		if _, err := decodeFloats(got, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(enc))
		}
	}
}

// testRows builds rows covering every value kind with adversarial floats.
func testRows() []value.Row {
	nan := math.Float64frombits(0x7ff800000000beef)
	return []value.Row{
		{value.Null(), value.Bool(true), value.Int(-7), value.Double(math.Inf(-1)), value.String_("hello")},
		{value.String_(""), value.LabeledScalar(math.Copysign(0, -1), 99)},
		{value.Vector(&linalg.Vector{Data: []float64{}})},
		{value.LabeledVector(&linalg.Vector{Data: []float64{0, 0, nan, 0}}, 3)},
		{value.Matrix(&linalg.Matrix{Rows: 0, Cols: 5, Data: []float64{}})}, // degenerate: 0×5
		{value.Matrix(&linalg.Matrix{Rows: 3, Cols: 1, Data: []float64{1, 0, math.Inf(1)}})},
		{value.Matrix(&linalg.Matrix{Rows: 2, Cols: 2, Data: []float64{0, 0, 0, 0}})},
		{value.Int(0), value.Vector(&linalg.Vector{Data: []float64{math.SmallestNonzeroFloat64, -0.0, 1e308}})},
	}
}

func TestStoredRowCodecRoundTrip(t *testing.T) {
	rows := testRows()
	var payload []byte
	for _, r := range rows {
		payload = appendStoredRow(payload, r)
	}
	got, err := decodeStoredRows(payload, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(value.EncodeRows(got), value.EncodeRows(rows)) {
		t.Fatal("stored row codec round trip is not EncodeRows-exact")
	}
}

func TestStoredBatchMatchesRows(t *testing.T) {
	rows := []value.Row{ // uniform width for the batch path
		{value.Int(1), value.Vector(&linalg.Vector{Data: []float64{0, 0, 1.5}})},
		{value.Int(2), value.Vector(&linalg.Vector{Data: []float64{math.NaN(), 0, 0}})},
		{value.Int(3), value.Null()},
	}
	var payload []byte
	for _, r := range rows {
		payload = appendStoredRow(payload, r)
	}
	b, err := decodeStoredBatch(payload, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	got := b.AppendRows(nil)
	if !bytes.Equal(value.EncodeRows(got), value.EncodeRows(rows)) {
		t.Fatal("batch decode disagrees with row decode")
	}
}

// bigRows builds deterministic multi-part content big enough to span pages.
func bigRows(seed uint64, n, veclen int) []value.Row {
	r := rng(seed)
	rows := make([]value.Row, n)
	for i := range rows {
		data := make([]float64, veclen)
		for j := range data {
			if r.next()%3 == 0 {
				data[j] = r.float() * 100
			}
		}
		rows[i] = value.Row{value.Int(int64(i)), value.Vector(&linalg.Vector{Data: data})}
	}
	return rows
}

// snapshot encodes a table's full committed contents part by part.
func snapshot(t *testing.T, tb *Table) []byte {
	t.Helper()
	var all []value.Row
	for part := 0; part < tb.Parts(); part++ {
		rows, err := tb.MaterializePart(part)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rows...)
	}
	return value.EncodeRows(all)
}

func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{PageBytes: 1024, PoolBytes: 1 << 20}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.CreateTable("m", 3, []byte(`{"schema":"v"}`))
	if err != nil {
		t.Fatal(err)
	}
	rows := bigRows(7, 200, 40)
	for part := 0; part < 3; part++ {
		if err := tb.Append(part, rows[part*60:part*60+60]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tb.SetMeta([]byte(`{"schema":"v2"}`)); err != nil {
		t.Fatal(err)
	}
	// A second, empty table and a dropped one exercise catalog replay.
	if _, err := s.CreateTable("empty", 1, []byte("e")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("doomed", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("doomed"); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, tb)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tb2, ok := s2.Table("m")
	if !ok {
		t.Fatal("table m lost across restart")
	}
	if got := snapshot(t, tb2); !bytes.Equal(got, want) {
		t.Fatal("restart is not EncodeRows-exact")
	}
	if string(tb2.Meta()) != `{"schema":"v2"}` {
		t.Fatalf("meta lost: %q", tb2.Meta())
	}
	if tb2.Rows() != 180 {
		t.Fatalf("rows = %d, want 180", tb2.Rows())
	}
	if e, ok := s2.Table("empty"); !ok || e.Rows() != 0 {
		t.Fatal("empty table lost or grew")
	}
	if _, ok := s2.Table("doomed"); ok {
		t.Fatal("dropped table resurrected")
	}
	if names := len(s2.Tables()); names != 2 {
		t.Fatalf("Tables() = %d entries, want 2", names)
	}
}

func TestUncommittedAppendsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.CreateTable("x", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(0, bigRows(1, 10, 8)[:10]); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, tb)
	// Appended but never committed: must vanish across restart.
	if err := tb.Append(0, bigRows(2, 50, 8)); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tb2, ok := s2.Table("x")
	if !ok {
		t.Fatal("table lost")
	}
	if got := snapshot(t, tb2); !bytes.Equal(got, want) {
		t.Fatal("uncommitted append leaked into recovered state")
	}
}

func TestOpenFailFast(t *testing.T) {
	t.Run("locked", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
			t.Fatalf("second open: %v", err)
		}
	})
	t.Run("page size mismatch", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, Options{PageBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{PageBytes: 2048}); err == nil || !strings.Contains(err.Error(), "page size") {
			t.Fatalf("mismatched page size: %v", err)
		}
	})
	t.Run("not a data dir", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("definitely not a manifest"), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "compatible") {
			t.Fatalf("garbage manifest: %v", err)
		}
	})
	t.Run("unwritable path", func(t *testing.T) {
		dir := t.TempDir()
		file := filepath.Join(dir, "plainfile")
		if err := os.WriteFile(file, []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
		// A path through a regular file can never become a directory.
		if _, err := Open(filepath.Join(file, "data"), Options{}); err == nil || !strings.Contains(err.Error(), "not writable") {
			t.Fatalf("path through file: %v", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		m, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
		if err != nil {
			t.Fatal(err)
		}
		m[8]++ // bump the version word
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), m, 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future version: %v", err)
		}
	})
}

func TestOversizedRowSpansSlots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 2000) // ~16KB raw, far beyond one 512B slot
	for i := range big {
		big[i] = float64(i) * 1.5
	}
	tb, err := s.CreateTable("wide", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{{value.Matrix(&linalg.Matrix{Rows: 40, Cols: 50, Data: big})}}
	if err := tb.Append(0, rows); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	want := value.EncodeRows(rows)
	if got := snapshot(t, tb); !bytes.Equal(got, want) {
		t.Fatal("oversized row mangled")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tb2, _ := s2.Table("wide")
	if got := snapshot(t, tb2); !bytes.Equal(got, want) {
		t.Fatal("oversized row mangled across restart")
	}
}

func TestPagerBatchAgreesWithRows(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	tb, err := s.CreateTable("b", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := bigRows(11, 80, 16)
	if err := tb.Append(0, rows[:40]); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, rows[40:]); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	for part := 0; part < 2; part++ {
		pr, err := tb.Pager(part)
		if err != nil {
			t.Fatal(err)
		}
		var viaBatch []value.Row
		for {
			b, err := pr.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			viaBatch = b.AppendRows(viaBatch)
		}
		viaRows, err := tb.MaterializePart(part)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(value.EncodeRows(viaBatch), value.EncodeRows(viaRows)) {
			t.Fatalf("part %d: batch pager disagrees with row pager", part)
		}
	}
}
