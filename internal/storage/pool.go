package storage

import (
	"fmt"
	"sort"
	"sync"
)

// The buffer pool caches page images across all tables of a store under one
// byte budget. Frames carry pin counts (a pinned frame is never evicted),
// a dirty bit (sealed pages enter the pool dirty and are written back on
// commit or on eviction, whichever comes first), and a reference bit driven
// by a clock sweep: eviction passes over a recently-used frame once, clearing
// the bit, and reclaims it on the second pass.
//
// The budget is a target, not a hard wall: when every frame is pinned, or a
// single page image exceeds the whole budget, the pool admits the page anyway
// rather than deadlocking a scan — PeakBytes in the stats records how high
// usage actually got, which is what the pool-bound tests pin down.
//
// All pool state, including the file IO of a miss or a dirty writeback, runs
// under one mutex. That serializes concurrent misses, which is the price of
// making pin/evict/writeback races impossible by construction; the executor's
// scans pin one page per partition for a short decode, so the window is small.

type frameKey struct {
	table uint64
	slot  uint32
}

type frame struct {
	key   frameKey
	t     *Table
	data  []byte // full page image (header + payload)
	pins  int
	ref   bool
	dirty bool
}

// PoolStats is a snapshot of buffer-pool counters.
type PoolStats struct {
	BudgetBytes int64
	UsedBytes   int64
	PeakBytes   int64
	Hits        int64
	Misses      int64
	Evictions   int64
	Writebacks  int64
}

type pool struct {
	mu     sync.Mutex
	budget int64
	frames map[frameKey]*frame
	ring   []*frame // clock order; hand sweeps this slice
	hand   int

	used, peak                          int64
	hits, misses, evictions, writebacks int64
}

func newPool(budget int64) *pool {
	return &pool{budget: budget, frames: make(map[frameKey]*frame)}
}

// fetch returns a pinned handle for the page described by pi, reading it
// from the table file on a miss. Callers must Release the handle.
func (p *pool) fetch(t *Table, pi pageInfo) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := frameKey{table: t.id, slot: pi.Slot}
	if fr, ok := p.frames[k]; ok {
		fr.pins++
		fr.ref = true
		p.hits++
		return &Page{p: p, fr: fr}, nil
	}
	p.misses++
	data := make([]byte, pi.Bytes)
	if _, err := t.f.ReadAt(data, t.st.slotOffset(pi.Slot)); err != nil {
		return nil, fmt.Errorf("storage: table %q: read page at slot %d: %w", t.name, pi.Slot, err)
	}
	fr := &frame{key: k, t: t, data: data, pins: 1, ref: true}
	if err := p.admitLocked(fr); err != nil {
		return nil, err
	}
	return &Page{p: p, fr: fr}, nil
}

// install admits a freshly sealed page image, dirty, without pinning it.
func (p *pool) install(t *Table, pi pageInfo, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := frameKey{table: t.id, slot: pi.Slot}
	if _, ok := p.frames[k]; ok {
		return fmt.Errorf("storage: table %q: slot %d sealed twice", t.name, pi.Slot)
	}
	return p.admitLocked(&frame{key: k, t: t, data: data, dirty: true})
}

// admitLocked makes room for fr and adds it to the pool.
func (p *pool) admitLocked(fr *frame) error {
	need := int64(len(fr.data))
	for p.used+need > p.budget {
		victim := p.victimLocked()
		if victim == nil {
			break // everything pinned: admit over budget rather than deadlock
		}
		if err := p.dropFrameLocked(victim); err != nil {
			return err
		}
		p.evictions++
	}
	p.frames[fr.key] = fr
	p.ring = append(p.ring, fr)
	p.used += need
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// victimLocked runs the clock sweep: skip pinned frames, give referenced
// frames a second chance, return the first cold unpinned frame. Nil when
// every frame is pinned.
func (p *pool) victimLocked() *frame {
	if len(p.ring) == 0 {
		return nil
	}
	for swept := 0; swept < 2*len(p.ring); swept++ {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		fr := p.ring[p.hand]
		p.hand++
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		return fr
	}
	return nil
}

// dropFrameLocked writes fr back if dirty and removes it from the pool.
func (p *pool) dropFrameLocked(fr *frame) error {
	if fr.dirty {
		if err := fr.t.writePageAt(fr.key.slot, fr.data); err != nil {
			return err
		}
		fr.dirty = false
		p.writebacks++
	}
	delete(p.frames, fr.key)
	for i, r := range p.ring {
		if r == fr {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			break
		}
	}
	p.used -= int64(len(fr.data))
	return nil
}

// flushTable writes back every dirty frame belonging to t, in slot order so
// the write pattern is deterministic. Frames stay cached, now clean.
func (p *pool) flushTable(t *Table) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dirty []*frame
	for _, fr := range p.ring {
		if fr.t == t && fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].key.slot < dirty[j].key.slot })
	for _, fr := range dirty {
		if err := fr.t.writePageAt(fr.key.slot, fr.data); err != nil {
			return err
		}
		fr.dirty = false
		p.writebacks++
	}
	return nil
}

// invalidateTable discards every frame of t (dropped table: dirty pages are
// dead, not written back).
func (p *pool) invalidateTable(t *Table) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.ring[:0]
	for _, fr := range p.ring {
		if fr.t == t {
			delete(p.frames, fr.key)
			p.used -= int64(len(fr.data))
			continue
		}
		kept = append(kept, fr)
	}
	p.ring = kept
	p.hand = 0
}

func (p *pool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		BudgetBytes: p.budget,
		UsedBytes:   p.used,
		PeakBytes:   p.peak,
		Hits:        p.hits,
		Misses:      p.misses,
		Evictions:   p.evictions,
		Writebacks:  p.writebacks,
	}
}

// Page is a pinned handle on a cached page image. Release it as soon as the
// payload has been decoded; the image must not be retained past Release.
type Page struct {
	p  *pool
	fr *frame
}

// Data returns the full page image. Valid only while the page is pinned.
func (pg *Page) Data() []byte { return pg.fr.data }

// Release unpins the page. Safe to call more than once.
func (pg *Page) Release() {
	if pg.fr == nil {
		return
	}
	pg.p.mu.Lock()
	pg.fr.pins--
	pg.p.mu.Unlock()
	pg.fr = nil
}
