package storage

import (
	"encoding/binary"
	"fmt"

	"relalg/internal/linalg"
	"relalg/internal/value"
)

// The stored-row codec. It is the value row codec with one change: VECTOR
// and MATRIX float payloads go through the run compressor instead of being
// written as raw 8-byte words. Scalar kinds reuse value.AppendValue /
// value.DecodeValue verbatim, so the two codecs cannot drift on anything but
// the two compressed kinds.
//
// Layout (little endian):
//
//	payload := row*              (row count lives in the page header)
//	row     := u32 count, value*
//	vector  := u8 kind, i64 label, u32 len, floats
//	matrix  := u8 kind, u32 rows, u32 cols, floats
//	other   := exactly the value codec's encoding
//
// where floats is the self-delimiting compressed stream of compress.go.

// appendStoredRow appends the stored encoding of r to dst.
func appendStoredRow(dst []byte, r value.Row) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r)))
	for _, v := range r {
		switch v.Kind {
		case value.KindVector:
			dst = append(dst, byte(value.KindVector))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Label))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Vec.Len()))
			dst = appendFloats(dst, v.Vec.Data)
		case value.KindMatrix:
			dst = append(dst, byte(value.KindMatrix))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Mat.Rows))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Mat.Cols))
			dst = appendFloats(dst, v.Mat.Data)
		default:
			dst = value.AppendValue(dst, v)
		}
	}
	return dst
}

// decodeStoredValue decodes one stored value from buf.
func decodeStoredValue(buf []byte) (value.Value, []byte, error) {
	if len(buf) < 1 {
		return value.Value{}, nil, fmt.Errorf("storage: short value header")
	}
	switch value.Kind(buf[0]) {
	case value.KindVector:
		buf = buf[1:]
		if len(buf) < 12 {
			return value.Value{}, nil, fmt.Errorf("storage: short vector header")
		}
		label := int64(binary.LittleEndian.Uint64(buf))
		n := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		data := make([]float64, n)
		rest, err := decodeFloats(data, buf)
		if err != nil {
			return value.Value{}, nil, err
		}
		return value.LabeledVector(&linalg.Vector{Data: data}, label), rest, nil
	case value.KindMatrix:
		buf = buf[1:]
		if len(buf) < 8 {
			return value.Value{}, nil, fmt.Errorf("storage: short matrix header")
		}
		rows := int(binary.LittleEndian.Uint32(buf))
		cols := int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		data := make([]float64, rows*cols)
		rest, err := decodeFloats(data, buf)
		if err != nil {
			return value.Value{}, nil, err
		}
		return value.Matrix(&linalg.Matrix{Rows: rows, Cols: cols, Data: data}), rest, nil
	default:
		return value.DecodeValue(buf)
	}
}

// decodeStoredRows decodes a page payload of nrows rows.
func decodeStoredRows(payload []byte, nrows int) ([]value.Row, error) {
	rows := make([]value.Row, nrows)
	for i := range rows {
		if len(payload) < 4 {
			return nil, fmt.Errorf("storage: short row header in page payload")
		}
		n := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		r := make(value.Row, n)
		var err error
		for j := range r {
			r[j], payload, err = decodeStoredValue(payload)
			if err != nil {
				return nil, err
			}
		}
		rows[i] = r
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes in page payload", len(payload))
	}
	return rows, nil
}

// decodeStoredBatch decodes a page payload straight into a columnar batch,
// appending each cell into its value.Col without materializing rows — the
// entry point the vectorized executor scans paged tables through. Every row
// on a page must have the same width (pages never mix tables, so they do).
func decodeStoredBatch(payload []byte, nrows int) (*value.Batch, error) {
	b := &value.Batch{N: nrows}
	for i := 0; i < nrows; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("storage: short row header in page payload")
		}
		n := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if b.Cols == nil {
			b.Cols = make([]value.Col, n)
		} else if n != len(b.Cols) {
			return nil, fmt.Errorf("storage: page mixes row widths (%d then %d)", len(b.Cols), n)
		}
		for j := 0; j < n; j++ {
			v, rest, err := decodeStoredValue(payload)
			if err != nil {
				return nil, err
			}
			payload = rest
			b.Cols[j].Append(v)
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes in page payload", len(payload))
	}
	return b, nil
}
