// Package storage is the persistent paged table store: fixed-slot page
// files per table, a write-ahead journal for catalog and commit records,
// and a shared buffer pool bounding how many page bytes sit in memory.
//
// A data directory holds:
//
//	MANIFEST       blockio header only: format magic/version + page size
//	LOCK           flock'd while a process has the directory open
//	journal.wal    blockio frames of JSON records: create/meta/commit/drop
//	tables/<id>.tbl
//	               blockio header, then page slots of pageBytes each
//
// Durability protocol: page images are written (through the buffer pool)
// and the table file synced BEFORE the journal frame describing them is
// appended and synced. Recovery is therefore exactly two truncations: the
// journal is cut at its first torn frame (blockio.ErrTorn), and each table
// file is cut back to the extent its committed journal records describe.
// Anything a crash interrupted — a half-written page, a half-appended
// journal frame, a table file with no journal record — is discarded, and
// the store reopens at the last committed state bit-for-bit.
//
// Torn writes themselves are injected, not waited for: Options.WriteFault
// (wired from internal/fault via the cluster) may cut any physical write
// short, after which the store poisons itself with ErrCrashed — the process
// is considered dead from that write on, exactly as a real torn write only
// matters because the process died mid-write.
package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"relalg/internal/blockio"
	"relalg/internal/value"
)

const (
	manifestMagic = "LASTORE1"
	journalMagic  = "LAJRNL01"
	tableMagic    = "LATBL001"

	// FormatVersion is the on-disk format version shared by the manifest,
	// journal, and table files. Opening a directory written by a different
	// version fails fast with a clear error.
	FormatVersion = 1

	// DefaultPageBytes is the slot size when Options.PageBytes is zero.
	DefaultPageBytes = 64 << 10
	// DefaultPoolBytes is the buffer-pool budget when Options.PoolBytes is zero.
	DefaultPoolBytes = 64 << 20
	// minPageBytes keeps the header/payload split sane.
	minPageBytes = 256

	maxJournalPayload = 64 << 20
)

// ErrCrashed poisons a store after an injected torn write: the simulated
// process is dead and every subsequent operation fails until reopen.
var ErrCrashed = errors.New("storage: simulated crash: torn write")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: store is closed")

// Options configures Open.
type Options struct {
	// PageBytes is the slot size. Zero means DefaultPageBytes for a fresh
	// directory and whatever the manifest says for an existing one; a
	// non-zero value that disagrees with an existing manifest is an error.
	PageBytes int
	// PoolBytes is the buffer-pool budget in bytes (zero: DefaultPoolBytes).
	PoolBytes int64
	// WriteFault, when set, may tear any physical write: it returns how many
	// bytes to keep and whether to fail. A torn write poisons the store with
	// ErrCrashed. Wired from the fault injector; nil in production.
	WriteFault func(seq int64, n int) (keep int, fail bool)
}

// jrec is one journal record. Op is "create", "meta", "commit", or "drop".
type jrec struct {
	Op    string  `json:"op"`
	ID    uint64  `json:"id,omitempty"`
	Name  string  `json:"name,omitempty"`
	Parts int     `json:"parts,omitempty"`
	Meta  []byte  `json:"meta,omitempty"`
	Pages []jpage `json:"pages,omitempty"`
}

// jpage records one committed page: its slot range, owning partition, row
// count, and physical image length (pages need not fill their last slot).
type jpage struct {
	Slot  uint32 `json:"slot"`
	Slots uint32 `json:"slots"`
	Part  uint32 `json:"part"`
	Rows  uint32 `json:"rows"`
	Bytes uint32 `json:"bytes"`
}

type pageInfo struct {
	Slot  uint32
	Slots uint32
	Part  uint32
	Rows  uint32
	Bytes uint32
}

// Store is an open data directory.
type Store struct {
	dir       string
	pageBytes int
	pool      *pool
	fault     func(seq int64, n int) (int, bool)
	writeSeq  atomic.Int64

	errMu  sync.Mutex
	failed error

	jmu        sync.Mutex // journal appends; acquired after s.mu or t.mu
	journal    *os.File
	journalEnd int64
	recSeq     uint32

	mu     sync.Mutex // catalog: tables map, nextID
	lockF  *os.File
	tables map[string]*Table
	nextID uint64
	closed bool
}

// Open opens (creating if needed) the data directory at dir. It fails fast
// when the directory is not writable, locked by another process, or written
// by a different format version or page size.
func Open(dir string, opts Options) (*Store, error) {
	pageBytes := opts.PageBytes
	if pageBytes == 0 {
		pageBytes = DefaultPageBytes
	}
	if pageBytes < minPageBytes {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageBytes, minPageBytes)
	}
	poolBytes := opts.PoolBytes
	if poolBytes == 0 {
		poolBytes = DefaultPoolBytes
	}
	if poolBytes < 0 {
		return nil, fmt.Errorf("storage: negative buffer-pool budget %d", poolBytes)
	}
	if err := os.MkdirAll(filepath.Join(dir, "tables"), 0o777); err != nil {
		return nil, fmt.Errorf("storage: data directory %s is not writable: %w", dir, err)
	}

	s := &Store{
		dir:    dir,
		pool:   newPool(poolBytes),
		fault:  opts.WriteFault,
		tables: make(map[string]*Table),
		nextID: 1,
	}
	ok := false
	defer func() {
		if !ok {
			s.closeFiles()
		}
	}()

	// Exclusive directory lock, released automatically when the process dies
	// (so a SIGKILL'd server never wedges its data directory).
	lockF, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, fmt.Errorf("storage: data directory %s is not writable: %w", dir, err)
	}
	s.lockF = lockF
	if err := syscall.Flock(int(lockF.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, fmt.Errorf("storage: data directory %s is locked by another process", dir)
	}

	if err := s.openManifest(opts.PageBytes, pageBytes); err != nil {
		return nil, err
	}
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	if err := s.openTables(); err != nil {
		return nil, err
	}
	ok = true
	return s, nil
}

// openManifest reads or creates MANIFEST, settling the store's page size.
func (s *Store) openManifest(requested, fallback int) error {
	path := filepath.Join(s.dir, "MANIFEST")
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.pageBytes = fallback
		buf, err := blockio.AppendHeader(nil, blockio.Header{
			Magic: manifestMagic, Version: FormatVersion, Extra: uint32(fallback),
		})
		if err != nil {
			return err
		}
		nf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
		if err != nil {
			return fmt.Errorf("storage: data directory %s is not writable: %w", s.dir, err)
		}
		if _, err := nf.Write(buf); err == nil {
			err = nf.Sync()
		}
		if err != nil {
			_ = nf.Close()
			return fmt.Errorf("storage: write manifest: %w", err)
		}
		return nf.Close()
	}
	if err != nil {
		return fmt.Errorf("storage: open manifest: %w", err)
	}
	defer func() { _ = f.Close() }()
	h, err := blockio.ReadHeader(f, manifestMagic, FormatVersion)
	if err != nil {
		return fmt.Errorf("storage: %s is not a compatible data directory: %w", s.dir, err)
	}
	s.pageBytes = int(h.Extra)
	if s.pageBytes < minPageBytes {
		return fmt.Errorf("storage: manifest page size %d below minimum %d", s.pageBytes, minPageBytes)
	}
	if requested != 0 && requested != s.pageBytes {
		return fmt.Errorf("storage: %s was created with page size %d; requested %d", s.dir, s.pageBytes, requested)
	}
	return nil
}

// openJournal opens journal.wal, replays its records, and truncates a torn
// tail back to the last complete frame.
func (s *Store) openJournal() error {
	path := filepath.Join(s.dir, "journal.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("storage: data directory %s is not writable: %w", s.dir, err)
	}
	s.journal = f
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat journal: %w", err)
	}
	if st.Size() == 0 {
		buf, err := blockio.AppendHeader(nil, blockio.Header{
			Magic: journalMagic, Version: FormatVersion, Extra: uint32(s.pageBytes),
		})
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("storage: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("storage: sync journal: %w", err)
		}
		s.journalEnd = blockio.HeaderLen
		return nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	if _, err := blockio.ReadHeader(f, journalMagic, FormatVersion); err != nil {
		return fmt.Errorf("storage: %s journal: %w", s.dir, err)
	}
	byID := make(map[uint64]*Table)
	offset := int64(blockio.HeaderLen)
	for {
		payload, _, err := blockio.ReadFrame(f, maxJournalPayload)
		if err != nil {
			if errors.Is(err, blockio.ErrTorn) {
				// The frame a crash interrupted: discard exactly this tail.
				if err := f.Truncate(offset); err != nil {
					return fmt.Errorf("storage: truncate torn journal tail: %w", err)
				}
				break
			}
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("storage: read journal: %w", err)
		}
		var rec jrec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("storage: decode journal record: %w", err)
		}
		if err := s.applyRecord(rec, byID); err != nil {
			return err
		}
		offset += blockio.FrameSize(len(payload))
		s.recSeq++
	}
	s.journalEnd = offset
	return nil
}

// applyRecord replays one journal record into the in-memory catalog.
func (s *Store) applyRecord(rec jrec, byID map[uint64]*Table) error {
	switch rec.Op {
	case "create":
		if _, ok := s.tables[rec.Name]; ok {
			return fmt.Errorf("storage: journal creates table %q twice", rec.Name)
		}
		t := &Table{st: s, id: rec.ID, name: rec.Name, parts: rec.Parts, meta: rec.Meta}
		s.tables[rec.Name] = t
		byID[rec.ID] = t
		if rec.ID >= s.nextID {
			s.nextID = rec.ID + 1
		}
	case "meta":
		t, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("storage: journal meta record for unknown table id %d", rec.ID)
		}
		t.meta = rec.Meta
	case "commit":
		t, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("storage: journal commit record for unknown table id %d", rec.ID)
		}
		for _, p := range rec.Pages {
			t.pages = append(t.pages, pageInfo(p))
			t.rows += int64(p.Rows)
			if end := p.Slot + p.Slots; end > t.nextSlot {
				t.nextSlot = end
			}
		}
	case "drop":
		t, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("storage: journal drop record for unknown table id %d", rec.ID)
		}
		delete(s.tables, t.name)
		delete(byID, rec.ID)
	default:
		return fmt.Errorf("storage: unknown journal record op %q", rec.Op)
	}
	return nil
}

// openTables opens every live table's page file, truncates uncommitted
// tails, and removes orphan files (tables dropped or never journaled).
func (s *Store) openTables() error {
	live := make(map[uint64]bool, len(s.tables))
	for _, name := range s.tableNames() {
		t := s.tables[name]
		live[t.id] = true
		f, err := os.OpenFile(s.tablePath(t.id), os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("storage: table %q: open page file: %w", t.name, err)
		}
		if _, err := blockio.ReadHeader(f, tableMagic, FormatVersion); err != nil {
			_ = f.Close()
			return fmt.Errorf("storage: table %q: %w", t.name, err)
		}
		extent := int64(blockio.HeaderLen)
		for _, p := range t.pages {
			if end := s.slotOffset(p.Slot) + int64(p.Bytes); end > extent {
				extent = end
			}
		}
		st, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return err
		}
		if st.Size() < extent {
			_ = f.Close()
			return fmt.Errorf("storage: table %q: page file holds %d bytes but journal commits %d — data loss outside the torn tail", t.name, st.Size(), extent)
		}
		if st.Size() > extent {
			// Pages written but never committed: the discarded torn tail.
			if err := f.Truncate(extent); err != nil {
				_ = f.Close()
				return fmt.Errorf("storage: table %q: truncate uncommitted tail: %w", t.name, err)
			}
		}
		t.f = f
		t.open = make([]openPage, t.parts)
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "tables"))
	if err != nil {
		return err
	}
	for _, e := range entries {
		idStr, isTbl := strings.CutSuffix(e.Name(), ".tbl")
		if !isTbl {
			continue
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil || !live[id] {
			// Dropped table or a create interrupted before its journal
			// record: either way the file is garbage now.
			_ = os.Remove(filepath.Join(s.dir, "tables", e.Name()))
		}
	}
	return nil
}

func (s *Store) tablePath(id uint64) string {
	return filepath.Join(s.dir, "tables", fmt.Sprintf("%d.tbl", id))
}

// slotOffset maps a slot number to its file offset.
func (s *Store) slotOffset(slot uint32) int64 {
	return blockio.HeaderLen + int64(slot)*int64(s.pageBytes)
}

// pagePayloadCap is the payload size at which an open page seals.
func (s *Store) pagePayloadCap() int { return s.pageBytes - pageHeaderLen }

// PageBytes returns the store's page slot size.
func (s *Store) PageBytes() int { return s.pageBytes }

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// PoolStats snapshots the buffer-pool counters.
func (s *Store) PoolStats() PoolStats { return s.pool.stats() }

// WriteCount returns how many physical writes the store has issued — the
// sequence space Options.WriteFault draws from, which lets the recovery
// sweep tear every write of a workload in turn.
func (s *Store) WriteCount() int64 { return s.writeSeq.Load() }

func (s *Store) setFailed(err error) {
	s.errMu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.errMu.Unlock()
}

func (s *Store) failedErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.failed
}

// writeAt is the single funnel for physical writes: it numbers the write,
// gives the fault hook a chance to tear it, and poisons the store when the
// write does not complete.
func (s *Store) writeAt(f *os.File, off int64, data []byte, what string) error {
	if err := s.failedErr(); err != nil {
		return err
	}
	seq := s.writeSeq.Add(1)
	if s.fault != nil {
		if keep, fail := s.fault(seq, len(data)); fail {
			if keep > 0 {
				if keep > len(data) {
					keep = len(data)
				}
				_, _ = f.WriteAt(data[:keep], off)
			}
			err := fmt.Errorf("%w: %s write %d kept %d of %d bytes", ErrCrashed, what, seq, keep, len(data))
			s.setFailed(err)
			return err
		}
	}
	if _, err := f.WriteAt(data, off); err != nil {
		werr := fmt.Errorf("storage: %s write: %w", what, err)
		s.setFailed(werr)
		return werr
	}
	return nil
}

// appendRecord durably appends one journal record. The caller must have
// already made the data the record describes durable.
func (s *Store) appendRecord(rec jrec) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("storage: encode journal record: %w", err)
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	frame := blockio.AppendFrame(nil, s.recSeq, payload)
	if err := s.writeAt(s.journal, s.journalEnd, frame, "journal"); err != nil {
		return err
	}
	if err := s.journal.Sync(); err != nil {
		werr := fmt.Errorf("storage: sync journal: %w", err)
		s.setFailed(werr)
		return werr
	}
	s.journalEnd += int64(len(frame))
	s.recSeq++
	return nil
}

// CreateTable creates a new empty table with the given partition count and
// opaque metadata blob (the catalog's serialized schema).
func (s *Store) CreateTable(name string, parts int, meta []byte) (*Table, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("storage: table %q: partition count %d", name, parts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	id := s.nextID
	s.nextID++
	f, err := os.OpenFile(s.tablePath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return nil, fmt.Errorf("storage: table %q: create page file: %w", name, err)
	}
	hdr, err := blockio.AppendHeader(nil, blockio.Header{
		Magic: tableMagic, Version: FormatVersion, Extra: uint32(s.pageBytes),
	})
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := s.writeAt(f, 0, hdr, "table header"); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: table %q: sync page file: %w", name, err)
	}
	// File is durable; now the record. A tear between the two leaves an
	// orphan file that the next open removes.
	if err := s.appendRecord(jrec{Op: "create", ID: id, Name: name, Parts: parts, Meta: meta}); err != nil {
		_ = f.Close()
		return nil, err
	}
	t := &Table{st: s, id: id, name: name, parts: parts, meta: meta, f: f,
		open: make([]openPage, parts)}
	s.tables[name] = t
	return t, nil
}

// DropTable removes a table: journal record first, then the page file.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := s.appendRecord(jrec{Op: "drop", ID: t.id}); err != nil {
		return err
	}
	delete(s.tables, name)
	t.dropped = true
	s.pool.invalidateTable(t)
	if t.f != nil {
		_ = t.f.Close()
		t.f = nil
	}
	// Best effort: recovery removes the file anyway if this is interrupted.
	_ = os.Remove(s.tablePath(t.id))
	return nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the live tables sorted by name.
func (s *Store) Tables() []*Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Table, 0, len(s.tables))
	for _, name := range s.tableNames() {
		out = append(out, s.tables[name])
	}
	return out
}

// tableNames returns the table names sorted; callers hold s.mu (or are
// still single-threaded inside Open).
func (s *Store) tableNames() []string {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close releases the directory. Uncommitted appends are discarded — the
// same contract a crash has, so Close/reopen and crash/reopen agree.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeFiles()
	s.setFailed(ErrClosed)
	return nil
}

// Crash abandons the store without any shutdown path: file handles close
// mid-flight and nothing is flushed or journaled. It is the in-process
// stand-in for SIGKILL that the recovery tests reopen after.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.closeFiles()
	s.setFailed(ErrCrashed)
}

// closeFiles closes every open handle; the flock drops with LOCK's fd.
func (s *Store) closeFiles() {
	for _, name := range s.tableNames() {
		t := s.tables[name]
		if t.f != nil {
			_ = t.f.Close()
			t.f = nil
		}
	}
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
	if s.lockF != nil {
		_ = s.lockF.Close()
		s.lockF = nil
	}
}

// openPage accumulates one partition's encoded rows until the page seals.
type openPage struct {
	buf   []byte
	nrows uint32
}

// Table is one stored table: a page file plus its committed page index.
type Table struct {
	st    *Store
	id    uint64
	name  string
	parts int

	mu          sync.RWMutex
	meta        []byte
	f           *os.File
	pages       []pageInfo
	rows        int64
	nextSlot    uint32
	open        []openPage
	pending     []pageInfo
	pendingRows int64
	dropped     bool
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Parts returns the partition count.
func (t *Table) Parts() int { return t.parts }

// Rows returns the committed row count.
func (t *Table) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Meta returns the table's metadata blob.
func (t *Table) Meta() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.meta
}

// SetMeta durably replaces the metadata blob (schema changes, refreshed
// statistics).
func (t *Table) SetMeta(meta []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return fmt.Errorf("storage: table %q is dropped", t.name)
	}
	if err := t.st.appendRecord(jrec{Op: "meta", ID: t.id, Meta: meta}); err != nil {
		return err
	}
	t.meta = meta
	return nil
}

// Append encodes rows into partition part's open page, sealing pages as
// they fill. Appended rows are invisible to scans until Commit.
func (t *Table) Append(part int, rows []value.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return fmt.Errorf("storage: table %q is dropped", t.name)
	}
	if err := t.st.failedErr(); err != nil {
		return err
	}
	if part < 0 || part >= t.parts {
		return fmt.Errorf("storage: table %q: partition %d of %d", t.name, part, t.parts)
	}
	op := &t.open[part]
	for _, r := range rows {
		op.buf = appendStoredRow(op.buf, r)
		op.nrows++
		if len(op.buf) >= t.st.pagePayloadCap() {
			if err := t.sealLocked(part); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealLocked turns partition part's open page into a page image, assigns it
// slots, and installs it dirty in the pool; the physical write happens at
// commit (or earlier, if the pool evicts it).
func (t *Table) sealLocked(part int) error {
	op := &t.open[part]
	if op.nrows == 0 {
		return nil
	}
	data, slots := encodePage(t.st.pageBytes, uint32(part), op.nrows, op.buf)
	pi := pageInfo{Slot: t.nextSlot, Slots: slots, Part: uint32(part), Rows: op.nrows, Bytes: uint32(len(data))}
	t.nextSlot += slots
	if err := t.st.pool.install(t, pi, data); err != nil {
		return err
	}
	t.pending = append(t.pending, pi)
	t.pendingRows += int64(op.nrows)
	op.buf = nil
	op.nrows = 0
	return nil
}

// writePageAt writes a page image into its slot (pool writeback path).
func (t *Table) writePageAt(slot uint32, data []byte) error {
	return t.st.writeAt(t.f, t.st.slotOffset(slot), data, fmt.Sprintf("table %q page", t.name))
}

// Commit seals all open pages, makes every pending page durable, and
// appends the journal record that makes them visible. On return the rows of
// all Appends since the last Commit are committed atomically: recovery
// either sees all of them or none.
func (t *Table) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return fmt.Errorf("storage: table %q is dropped", t.name)
	}
	for part := range t.open {
		if err := t.sealLocked(part); err != nil {
			return err
		}
	}
	if len(t.pending) == 0 {
		return t.st.failedErr()
	}
	if err := t.st.pool.flushTable(t); err != nil {
		return err
	}
	if err := t.f.Sync(); err != nil {
		werr := fmt.Errorf("storage: table %q: sync page file: %w", t.name, err)
		t.st.setFailed(werr)
		return werr
	}
	rec := jrec{Op: "commit", ID: t.id, Pages: make([]jpage, len(t.pending))}
	for i, pi := range t.pending {
		rec.Pages[i] = jpage(pi)
	}
	if err := t.st.appendRecord(rec); err != nil {
		return err
	}
	t.pages = append(t.pages, t.pending...)
	t.rows += t.pendingRows
	t.pending = nil
	t.pendingRows = 0
	return nil
}

// partPages snapshots the committed pages of one partition.
func (t *Table) partPages(part int) ([]pageInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.dropped {
		return nil, fmt.Errorf("storage: table %q is dropped", t.name)
	}
	if err := t.st.failedErr(); err != nil {
		return nil, err
	}
	var pages []pageInfo
	for _, pi := range t.pages {
		if int(pi.Part) == part {
			pages = append(pages, pi)
		}
	}
	return pages, nil
}

// Pager iterates one partition's committed pages, pinning each page only
// for the duration of its decode. The zero page count is a valid empty
// iteration.
type Pager struct {
	t     *Table
	pages []pageInfo
	idx   int
}

// Pager returns an iterator over partition part's committed pages as of now.
func (t *Table) Pager(part int) (*Pager, error) {
	pages, err := t.partPages(part)
	if err != nil {
		return nil, err
	}
	return &Pager{t: t, pages: pages}, nil
}

// next fetches, validates, and unpins the next page, handing its payload to
// decode while pinned. Returns false at the end of the partition.
func (pg *Pager) next(decode func(payload []byte, nrows int) error) (bool, error) {
	if pg.idx >= len(pg.pages) {
		return false, nil
	}
	pi := pg.pages[pg.idx]
	pg.idx++
	page, err := pg.t.st.pool.fetch(pg.t, pi)
	if err != nil {
		return false, err
	}
	payload, err := decodePage(page.Data(), pi)
	if err == nil {
		err = decode(payload, int(pi.Rows))
	}
	page.Release()
	return err == nil, err
}

// Next decodes the next page into rows; nil rows means the partition is
// exhausted. The rows own their storage — the page is already unpinned.
func (pg *Pager) Next() ([]value.Row, error) {
	var rows []value.Row
	ok, err := pg.next(func(payload []byte, nrows int) error {
		var derr error
		rows, derr = decodeStoredRows(payload, nrows)
		return derr
	})
	if !ok || err != nil {
		return nil, err
	}
	return rows, nil
}

// NextBatch decodes the next page straight into a columnar batch; nil means
// the partition is exhausted.
func (pg *Pager) NextBatch() (*value.Batch, error) {
	var b *value.Batch
	ok, err := pg.next(func(payload []byte, nrows int) error {
		var derr error
		b, derr = decodeStoredBatch(payload, nrows)
		return derr
	})
	if !ok || err != nil {
		return nil, err
	}
	return b, nil
}

// ScanPart streams partition part's committed rows page by page.
func (t *Table) ScanPart(part int, fn func(rows []value.Row) error) error {
	pg, err := t.Pager(part)
	if err != nil {
		return err
	}
	for {
		rows, err := pg.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			return nil
		}
		if err := fn(rows); err != nil {
			return err
		}
	}
}

// MaterializePart reads one partition fully into memory.
func (t *Table) MaterializePart(part int) ([]value.Row, error) {
	var out []value.Row
	err := t.ScanPart(part, func(rows []value.Row) error {
		out = append(out, rows...)
		return nil
	})
	return out, err
}
