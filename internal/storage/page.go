package storage

import (
	"encoding/binary"
	"fmt"

	"relalg/internal/blockio"
)

// Pages are the unit of table-file IO and buffer-pool caching. A page image
// is a fixed 32-byte header followed by a row payload; images are addressed
// by slot (offset = file header + slot*pageBytes) and a page whose payload
// outgrows one slot simply claims the next slots too, so slot addressing
// stays fixed-size while oversized rows (a big MATRIX cell) remain storable.
//
// Layout (little endian):
//
//	page   := u32 magic, u16 version, u16 flags, u32 part,
//	          u32 nrows, u32 payloadLen, u32 reserved, u64 checksum,
//	          payload
//
// The checksum is blockio.Checksum(nrows, payload) — the same FNV-1a the
// frame format uses. The remaining header fields are validated structurally:
// magic/version against constants, payloadLen against the image length, and
// part/nrows against the journal record that committed the page, so a bit
// flip anywhere in the image is detected.

const (
	pageMagic     = 0x4750414C // "LAPG" little endian
	pageVersion   = 1
	pageHeaderLen = 32
)

// encodePage builds a page image for one sealed page and reports how many
// slots of pageBytes it occupies.
func encodePage(pageBytes int, part, nrows uint32, payload []byte) (data []byte, slots uint32) {
	phys := pageHeaderLen + len(payload)
	data = make([]byte, 0, phys)
	data = binary.LittleEndian.AppendUint32(data, pageMagic)
	data = binary.LittleEndian.AppendUint16(data, pageVersion)
	data = binary.LittleEndian.AppendUint16(data, 0) // flags
	data = binary.LittleEndian.AppendUint32(data, part)
	data = binary.LittleEndian.AppendUint32(data, nrows)
	data = binary.LittleEndian.AppendUint32(data, uint32(len(payload)))
	data = binary.LittleEndian.AppendUint32(data, 0) // reserved
	data = binary.LittleEndian.AppendUint64(data, blockio.Checksum(nrows, payload))
	data = append(data, payload...)
	return data, uint32((phys + pageBytes - 1) / pageBytes)
}

// decodePage validates a page image against the journal record that committed
// it and returns the row payload, which aliases data.
func decodePage(data []byte, pi pageInfo) ([]byte, error) {
	if len(data) < pageHeaderLen {
		return nil, fmt.Errorf("storage: page at slot %d: short image (%d bytes)", pi.Slot, len(data))
	}
	if got := binary.LittleEndian.Uint32(data); got != pageMagic {
		return nil, fmt.Errorf("storage: page at slot %d: bad magic %#x", pi.Slot, got)
	}
	if got := binary.LittleEndian.Uint16(data[4:]); got != pageVersion {
		return nil, fmt.Errorf("storage: page at slot %d: version %d (this build reads version %d)", pi.Slot, got, pageVersion)
	}
	part := binary.LittleEndian.Uint32(data[8:])
	nrows := binary.LittleEndian.Uint32(data[12:])
	payloadLen := binary.LittleEndian.Uint32(data[16:])
	sum := binary.LittleEndian.Uint64(data[24:])
	if part != pi.Part || nrows != pi.Rows {
		return nil, fmt.Errorf("storage: page at slot %d: header part=%d rows=%d disagrees with journal part=%d rows=%d",
			pi.Slot, part, nrows, pi.Part, pi.Rows)
	}
	if int(payloadLen) != len(data)-pageHeaderLen {
		return nil, fmt.Errorf("storage: page at slot %d: payload length %d in a %d-byte image", pi.Slot, payloadLen, len(data))
	}
	payload := data[pageHeaderLen:]
	if got := blockio.Checksum(nrows, payload); got != sum {
		return nil, fmt.Errorf("storage: page at slot %d: checksum mismatch (stored %016x, computed %016x)", pi.Slot, sum, got)
	}
	return payload, nil
}
