package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"relalg/internal/core"
	"relalg/internal/opt"
	"relalg/internal/value"
)

// The optimizer sweep measures the LA-aware rewrite layer: each query runs on
// two databases that differ only in Optimizer.Rewrites, and the rewritten
// leg's rows must be byte-identical (EncodeRows) to the unrewritten leg's.
// The swept queries are matrix chains whose cheapest association differs from
// the written one, so chain reordering shows up directly as a FLOP-count
// speedup rather than an executor micro-win. A final adaptive leg seeds a
// grossly wrong catalog statistic and verifies that mid-query re-optimization
// fires (Stats.Replans > 0) without changing the result.

// OptConfig sizes the optimizer sweep.
type OptConfig struct {
	ChainRows int // rows in the chain table
	ChainN    int // a and b are N x N; c is N x K
	ChainK    int
	GramRows  int // rows in the gram table
	GramN     int // m is N x N; w is N x K
	GramK     int
	AdaptRows int // big-table rows for the adaptive leg
	Nodes     int
	PerNode   int
	Reps      int // timing repetitions; the minimum is reported
	Seed      int64
	// MinSpeedup is the required rewritten-vs-baseline speedup for every
	// query; 0 disables the assertion (smoke runs are too short to time).
	MinSpeedup float64
}

// DefaultOptConfig is the committed-snapshot configuration. N/K are chosen so
// the written association costs ~N/(2K) times the optimal one (~24x FLOPs at
// 96/2), leaving plenty of headroom over the 2x acceptance floor.
func DefaultOptConfig() OptConfig {
	return OptConfig{
		ChainRows:  40,
		ChainN:     96,
		ChainK:     2,
		GramRows:   40,
		GramN:      96,
		GramK:      2,
		AdaptRows:  2000,
		Nodes:      2,
		PerNode:    2,
		Reps:       3,
		Seed:       1,
		MinSpeedup: 2.0,
	}
}

// SmokeOptConfig finishes in a couple of seconds; it still enforces result
// identity, fired rewrites, and a fired re-plan, but not the speedup floor.
func SmokeOptConfig() OptConfig {
	return OptConfig{
		ChainRows:  6,
		ChainN:     48,
		ChainK:     2,
		GramRows:   6,
		GramN:      48,
		GramK:      2,
		AdaptRows:  400,
		Nodes:      2,
		PerNode:    2,
		Reps:       1,
		Seed:       1,
		MinSpeedup: 0,
	}
}

// Validate rejects sweeps that cannot serve as an equivalence gate.
func (c OptConfig) Validate() error {
	if c.ChainRows <= 0 || c.ChainN <= 0 || c.ChainK <= 0 ||
		c.GramRows <= 0 || c.GramN <= 0 || c.GramK <= 0 ||
		c.AdaptRows <= 0 || c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: opt config sizes must be positive")
	}
	if c.Reps <= 0 {
		return errors.New("bench: reps must be positive")
	}
	if c.MinSpeedup < 0 {
		return errors.New("bench: min speedup must be non-negative")
	}
	return nil
}

// optQueries are the swept rewrite workloads. Both are three-matrix chains:
// the first is the classic (A·B)·C with a narrow C, the second the
// normal-equations Gram chain t(M)·M·w, where computing M·w first turns two
// N^3-ish multiplies into two N^2·K ones.
var optQueries = []struct {
	Name  string
	Query string
}{
	{"matrix_chain", "SELECT SUM(matrix_multiply(matrix_multiply(a, b), c)) AS s FROM chain"},
	{"gram_chain", "SELECT SUM(matrix_multiply(matrix_multiply(trans_matrix(m), m), w)) AS s FROM gram"},
}

// optSweepDB opens a database with rewrites on or off and loads the chain and
// gram tables. Entries are small integers, and every multiply in both the
// written and the reordered association accumulates its cells from +0, so the
// two associations are bit-identical, not merely close: integer-valued sums
// this size never round, and accumulation never produces a -0 cell.
func optSweepDB(cfg OptConfig, rewrites bool, st *opt.RewriteStats) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.Optimizer.Rewrites = rewrites
	dbcfg.Optimizer.Stats = st
	db := core.Open(dbcfg)
	for _, stmt := range []string{
		fmt.Sprintf("CREATE TABLE chain (a MATRIX[%d][%d], b MATRIX[%d][%d], c MATRIX[%d][%d])",
			cfg.ChainN, cfg.ChainN, cfg.ChainN, cfg.ChainN, cfg.ChainN, cfg.ChainK),
		fmt.Sprintf("CREATE TABLE gram (m MATRIX[%d][%d], w MATRIX[%d][%d])",
			cfg.GramN, cfg.GramN, cfg.GramN, cfg.GramK),
	} {
		if err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mat := func(rows, cols int) (value.Value, error) {
		cells := make([][]float64, rows)
		for r := range cells {
			cells[r] = make([]float64, cols)
			for c := range cells[r] {
				cells[r][c] = float64(rng.Intn(9) - 4)
			}
		}
		return core.MatrixValue(cells)
	}
	load := func(table string, n int, dims [][2]int) error {
		rows := make([]value.Row, n)
		for i := range rows {
			row := make(value.Row, len(dims))
			for j, d := range dims {
				v, err := mat(d[0], d[1])
				if err != nil {
					return err
				}
				row[j] = v
			}
			rows[i] = row
		}
		return db.LoadTable(table, rows)
	}
	if err := load("chain", cfg.ChainRows, [][2]int{
		{cfg.ChainN, cfg.ChainN}, {cfg.ChainN, cfg.ChainN}, {cfg.ChainN, cfg.ChainK},
	}); err != nil {
		return nil, err
	}
	if err := load("gram", cfg.GramRows, [][2]int{
		{cfg.GramN, cfg.GramN}, {cfg.GramN, cfg.GramK},
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// optAdaptiveDB loads the adaptive leg's three-table join and then corrupts
// the catalog's distinct count for the filtered column so the optimizer
// under-estimates it ~1000x (every row passes the filter).
func optAdaptiveDB(cfg OptConfig, replanFactor float64) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.ReplanFactor = replanFactor
	db := core.Open(dbcfg)
	for _, stmt := range []string{
		"CREATE TABLE big1 (id INTEGER, flag INTEGER)",
		"CREATE TABLE big2 (id INTEGER, v INTEGER)",
		"CREATE TABLE small (id INTEGER)",
	} {
		if err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	mk := func(n int, second func(i int) int64) []value.Row {
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{value.Int(int64(i % 97)), value.Int(second(i))}
		}
		return rows
	}
	if err := db.LoadTable("big1", mk(cfg.AdaptRows, func(int) int64 { return 7 })); err != nil {
		return nil, err
	}
	if err := db.LoadTable("big2", mk(cfg.AdaptRows, func(i int) int64 { return int64(i) })); err != nil {
		return nil, err
	}
	small := make([]value.Row, 5)
	for i := range small {
		small[i] = value.Row{value.Int(int64(i))}
	}
	if err := db.LoadTable("small", small); err != nil {
		return nil, err
	}
	db.Catalog().SetDistinct("big1", "flag", 1000)
	return db, nil
}

// optAdaptiveQuery joins two same-size tables with a small one; the seeded
// mis-estimate makes the static plan join the two big tables first.
const optAdaptiveQuery = `SELECT COUNT(*) AS n FROM big1, big2, small ` +
	`WHERE big1.id = big2.id AND big2.id = small.id AND big1.flag = 7`

// OptResult is one query's rewritten-vs-baseline measurement.
type OptResult struct {
	Query            string  `json:"query"`
	BaselineSeconds  float64 `json:"baseline_seconds"`
	RewrittenSeconds float64 `json:"rewritten_seconds"`
	Speedup          float64 `json:"speedup"`
	RewritesFired    int64   `json:"rewrites_fired"`
	OutputRows       int     `json:"output_rows"`
}

// OptAdaptiveLeg records the adaptive re-optimization check.
type OptAdaptiveLeg struct {
	Replans    int64 `json:"replans"`
	OutputRows int   `json:"output_rows"`
}

// OptReport is the sweep outcome; it serializes to BENCH_opt.json.
type OptReport struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Workers     int            `json:"workers"`
	Reps        int            `json:"reps"`
	MinSpeedup  float64        `json:"min_speedup"`
	Rewrites    string         `json:"rewrites"`
	Results     []OptResult    `json:"results"`
	Adaptive    OptAdaptiveLeg `json:"adaptive"`
}

// JSON renders the report for BENCH_opt.json.
func (r *OptReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the report as a human-readable table.
func (r *OptReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimizer rewrite sweep (%d workers, min of %d reps, GOMAXPROCS=%d)\n",
		r.Workers, r.Reps, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s %10s\n",
		"query", "baseline s", "rewritten s", "speedup", "rewrites")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-14s %14.4f %14.4f %8.2fx %10d\n",
			res.Query, res.BaselineSeconds, res.RewrittenSeconds, res.Speedup, res.RewritesFired)
	}
	fmt.Fprintf(&b, "rules fired: %s\n", r.Rewrites)
	fmt.Fprintf(&b, "adaptive leg: %d join regions re-planned under a seeded 1000x mis-estimate, %d rows, byte-identical\n",
		r.Adaptive.Replans, r.Adaptive.OutputRows)
	b.WriteString("every rewritten run matched the unrewritten baseline byte-for-byte\n")
	return b.String()
}

// RunOptSweep runs the sweep. It returns an error on any rewritten/baseline
// result divergence, if no rewrite rule fired on a swept query, if the
// adaptive leg fails to re-plan (or changes the result), or — when
// MinSpeedup > 0 — if any query's speedup falls below the floor.
func RunOptSweep(cfg OptConfig) (*OptReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &OptReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //lint:ignore nodeterminism the snapshot timestamp is report metadata, not simulation state
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     cfg.Nodes * cfg.PerNode,
		Reps:        cfg.Reps,
		MinSpeedup:  cfg.MinSpeedup,
	}
	baseDB, err := optSweepDB(cfg, false, nil)
	if err != nil {
		return nil, err
	}
	st := &opt.RewriteStats{}
	rwDB, err := optSweepDB(cfg, true, st)
	if err != nil {
		return nil, err
	}
	for _, q := range optQueries {
		// Untimed warm-up pass: checks identity and per-query fired rules.
		before := st.Total()
		baseRes, err := baseDB.Query(q.Query)
		if err != nil {
			return nil, fmt.Errorf("bench: opt sweep %s (baseline): %w", q.Name, err)
		}
		rwRes, err := rwDB.Query(q.Query)
		if err != nil {
			return nil, fmt.Errorf("bench: opt sweep %s (rewritten): %w", q.Name, err)
		}
		fired := st.Total() - before
		if fired == 0 {
			return nil, fmt.Errorf("bench: opt sweep %s: no rewrite rule fired", q.Name)
		}
		if !bytes.Equal(resultBytes(baseRes), resultBytes(rwRes)) {
			return nil, fmt.Errorf("bench: opt sweep %s: rewritten results diverge from baseline", q.Name)
		}
		baseSec, rwSec, err := bestOfPair(cfg.Reps,
			func() error {
				_, err := baseDB.Query(q.Query)
				return err
			},
			func() error {
				_, err := rwDB.Query(q.Query)
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("bench: opt sweep %s: %w", q.Name, err)
		}
		speedup := baseSec / rwSec
		if cfg.MinSpeedup > 0 && speedup < cfg.MinSpeedup {
			return nil, fmt.Errorf("bench: opt sweep %s: speedup %.2fx below the %.1fx floor",
				q.Name, speedup, cfg.MinSpeedup)
		}
		rep.Results = append(rep.Results, OptResult{
			Query:            q.Name,
			BaselineSeconds:  baseSec,
			RewrittenSeconds: rwSec,
			Speedup:          speedup,
			RewritesFired:    fired,
			OutputRows:       len(baseRes.Rows),
		})
	}
	rep.Rewrites = st.String()

	// Adaptive leg: the static and the adaptive run must agree, and the
	// adaptive run must actually re-plan under the seeded mis-estimate.
	staticDB, err := optAdaptiveDB(cfg, 0)
	if err != nil {
		return nil, err
	}
	staticRes, err := staticDB.Query(optAdaptiveQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: opt sweep adaptive leg (static): %w", err)
	}
	if staticRes.Stats.Replans != 0 {
		return nil, fmt.Errorf("bench: ReplanFactor=0 re-planned %d regions", staticRes.Stats.Replans)
	}
	adaptDB, err := optAdaptiveDB(cfg, 10)
	if err != nil {
		return nil, err
	}
	adaptRes, err := adaptDB.Query(optAdaptiveQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: opt sweep adaptive leg (adaptive): %w", err)
	}
	if adaptRes.Stats.Replans == 0 {
		return nil, errors.New("bench: adaptive leg never re-planned under a seeded 1000x mis-estimate")
	}
	if !bytes.Equal(resultBytes(staticRes), resultBytes(adaptRes)) {
		return nil, errors.New("bench: adaptive leg results diverge from the static plan")
	}
	rep.Adaptive = OptAdaptiveLeg{
		Replans:    adaptRes.Stats.Replans,
		OutputRows: len(adaptRes.Rows),
	}
	return rep, nil
}
