// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation: Figures 1-3 (Gram matrix, least-squares
// regression, and distance computation across six platforms and three
// dimensionalities), Figure 4 (the per-operator breakdown of tuple-based vs
// vector-based Gram), and the §4.1 optimizer plan-choice demonstration plus
// the ablations DESIGN.md calls out.
package bench

import (
	"errors"
	"fmt"

	"relalg/internal/cluster"
	"relalg/internal/core"
	"relalg/internal/exec"
	"relalg/internal/linalg"
	"relalg/internal/value"
	"relalg/internal/workload"
)

// simsqlLayout selects how the engine stores the data points.
type simsqlLayout int

const (
	layoutTuple simsqlLayout = iota
	layoutVector
	layoutBlock
)

func (l simsqlLayout) String() string {
	switch l {
	case layoutTuple:
		return "Tuple SimSQL"
	case layoutVector:
		return "Vector SimSQL"
	default:
		return "Block SimSQL"
	}
}

// simsql runs the paper's computations through the extended SQL engine in
// one of the three storage layouts the evaluation compares.
type simsql struct {
	layout    simsqlLayout
	nodes     int
	perNode   int
	blockRows int
	budget    int64   // distance-only intermediate tuple budget (0 = unlimited)
	bandwidth float64 // modelled network bytes/sec (0 = infinite)
}

func (s *simsql) Name() string { return s.layout.String() }

func (s *simsql) open(budget int64) *core.Database {
	cfg := core.DefaultConfig()
	cfg.Cluster = cluster.Config{
		Nodes:                 s.nodes,
		PartitionsPerNode:     s.perNode,
		SerializeShuffles:     true,
		MaxIntermediateTuples: budget,
		NetworkBytesPerSec:    s.bandwidth,
	}
	// Emulate the paper's 2017 SimSQL: no fused aggregation, so the vector
	// layout materializes one outer product per data point (the cost that
	// makes blocking pay off at 1000 dimensions). Ablation A4 measures what
	// the modern fused path recovers.
	cfg.DisableAggFusion = true
	return core.Open(cfg)
}

// loadPoints loads the data in this variant's layout. Block layout loads
// vectors too: the paper counts the blocking query as part of the
// computation, so blocking happens in SQL at run time.
func (s *simsql) loadPoints(db *core.Database, data [][]float64) error {
	switch s.layout {
	case layoutTuple:
		db.MustExec("CREATE TABLE xt (row_index INTEGER, col_index INTEGER, value DOUBLE)")
		return db.LoadTable("xt", workload.TupleRows(data))
	default:
		db.MustExec("CREATE TABLE xv (id INTEGER, value VECTOR[])")
		if err := db.LoadTable("xv", workload.VectorRows(data)); err != nil {
			return err
		}
		if s.layout == layoutBlock {
			db.MustExec("CREATE TABLE block_index (mi INTEGER)")
			nBlocks := (len(data) + s.blockRows - 1) / s.blockRows
			if err := db.LoadTable("block_index", workload.BlockIndexRows(nBlocks)); err != nil {
				return err
			}
			db.MustExec(fmt.Sprintf(`CREATE VIEW mlx AS
				SELECT ind.mi AS mi, ROWMATRIX(label_vector(x.value, x.id - ind.mi*%d)) AS m
				FROM xv AS x, block_index AS ind
				WHERE x.id/%d = ind.mi
				GROUP BY ind.mi`, s.blockRows, s.blockRows))
		}
		return nil
	}
}

// Gram computes XᵀX through SQL and returns it as a dense matrix.
func (s *simsql) Gram(data [][]float64) (*linalg.Matrix, error) {
	db := s.open(0)
	if err := s.loadPoints(db, data); err != nil {
		return nil, err
	}
	d := len(data[0])
	switch s.layout {
	case layoutTuple:
		res, err := db.Query(`SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
			FROM xt AS x1, xt AS x2
			WHERE x1.row_index = x2.row_index
			GROUP BY x1.col_index, x2.col_index`)
		if err != nil {
			return nil, err
		}
		return tuplesToMatrix(res.Rows, d, d)
	case layoutVector:
		res, err := db.Query(`SELECT SUM(outer_product(x.value, x.value)) FROM xv AS x`)
		if err != nil {
			return nil, err
		}
		return res.Rows[0][0].Mat, nil
	default:
		res, err := db.Query(`SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) FROM mlx`)
		if err != nil {
			return nil, err
		}
		return res.Rows[0][0].Mat, nil
	}
}

// Regression computes the least-squares coefficients through SQL. The
// tuple-based variant computes XᵀX and Xᵀy relationally and solves the tiny
// d×d system at the client, as the original (pure-relational SimSQL) had to.
func (s *simsql) Regression(data [][]float64, y []float64) (*linalg.Vector, error) {
	db := s.open(0)
	if err := s.loadPoints(db, data); err != nil {
		return nil, err
	}
	db.MustExec("CREATE TABLE yt (i INTEGER, y_i DOUBLE)")
	yRows := make([]value.Row, len(y))
	for i, v := range y {
		yRows[i] = value.Row{value.Int(int64(i)), value.Double(v)}
	}
	if err := db.LoadTable("yt", yRows); err != nil {
		return nil, err
	}
	d := len(data[0])
	switch s.layout {
	case layoutTuple:
		gres, err := db.Query(`SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
			FROM xt AS x1, xt AS x2
			WHERE x1.row_index = x2.row_index
			GROUP BY x1.col_index, x2.col_index`)
		if err != nil {
			return nil, err
		}
		vres, err := db.Query(`SELECT x.col_index, SUM(x.value * yt.y_i)
			FROM xt AS x, yt
			WHERE x.row_index = yt.i
			GROUP BY x.col_index`)
		if err != nil {
			return nil, err
		}
		G, err := tuplesToMatrix(gres.Rows, d, d)
		if err != nil {
			return nil, err
		}
		v := linalg.NewVector(d)
		for _, r := range vres.Rows {
			v.Data[r[0].I] = r[1].D
		}
		return G.Solve(v)
	case layoutVector:
		res, err := db.Query(`SELECT matrix_vector_multiply(
				matrix_inverse(SUM(outer_product(x.value, x.value))),
				SUM(x.value * yt.y_i))
			FROM xv AS x, yt WHERE x.id = yt.i`)
		if err != nil {
			return nil, err
		}
		return res.Rows[0][0].Vec, nil
	default:
		db.MustExec(fmt.Sprintf(`CREATE VIEW yb AS
			SELECT ind.mi AS mi, VECTORIZE(label_scalar(yt.y_i, yt.i - ind.mi*%d)) AS v
			FROM yt, block_index AS ind
			WHERE yt.i/%d = ind.mi
			GROUP BY ind.mi`, s.blockRows, s.blockRows))
		res, err := db.Query(`SELECT matrix_vector_multiply(
				matrix_inverse(SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m))),
				SUM(matrix_vector_multiply(trans_matrix(mlx.m), yb.v)))
			FROM mlx, yb WHERE mlx.mi = yb.mi`)
		if err != nil {
			return nil, err
		}
		return res.Rows[0][0].Vec, nil
	}
}

// Distance computes the paper's metric-distance task through SQL: for every
// point the minimum d²(xi, x') over x' ≠ xi, then the point maximizing that
// minimum. The tuple-based formulation blows through the intermediate-tuple
// budget, reproducing the paper's "Fail" row.
func (s *simsql) Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error) {
	db := s.open(s.budget)
	if err := s.loadPoints(db, data); err != nil {
		return 0, 0, err
	}
	switch s.layout {
	case layoutTuple:
		return s.distanceTuple(db, metric)
	case layoutVector:
		return s.distanceVector(db, metric)
	default:
		return s.distanceBlock(db, metric, len(data))
	}
}

func loadMetricTuples(db *core.Database, metric *linalg.Matrix) error {
	db.MustExec("CREATE TABLE am (row_index INTEGER, col_index INTEGER, value DOUBLE)")
	var rows []value.Row
	for i := 0; i < metric.Rows; i++ {
		for j := 0; j < metric.Cols; j++ {
			rows = append(rows, value.Row{value.Int(int64(i)), value.Int(int64(j)), value.Double(metric.At(i, j))})
		}
	}
	return db.LoadTable("am", rows)
}

func loadMetricMatrix(db *core.Database, metric *linalg.Matrix) error {
	db.MustExec("CREATE TABLE am (val MATRIX[][])")
	return db.LoadTable("am", []value.Row{{value.Matrix(metric)}})
}

func (s *simsql) distanceTuple(db *core.Database, metric *linalg.Matrix) (int, float64, error) {
	if err := loadMetricTuples(db, metric); err != nil {
		return 0, 0, err
	}
	// Each stage materializes (CREATE TABLE ... AS), as the Hadoop-backed
	// SimSQL's MR stages did; the quadratic dist stage is where the
	// intermediate-tuple budget trips.
	// xa(i, l) = sum_k x_ik A_kl ; dist(i, j) = sum_l xa(i, l) x_jl.
	if err := db.Exec(`CREATE TABLE xa AS
		SELECT x.row_index AS i, a.col_index AS l, SUM(x.value * a.value) AS v
		FROM xt AS x, am AS a
		WHERE x.col_index = a.row_index
		GROUP BY x.row_index, a.col_index`); err != nil {
		return 0, 0, err
	}
	if err := db.Exec(`CREATE TABLE dist AS
		SELECT xa.i AS i, x2.row_index AS j, SUM(xa.v * x2.value) AS d
		FROM xa, xt AS x2
		WHERE xa.l = x2.col_index
		GROUP BY xa.i, x2.row_index`); err != nil {
		return 0, 0, err
	}
	if err := db.Exec(`CREATE TABLE mins AS
		SELECT i, MIN(d) AS dist FROM dist WHERE i <> j GROUP BY i`); err != nil {
		return 0, 0, err
	}
	res, err := db.Query(`SELECT m.i, m.dist
		FROM mins AS m, (SELECT MAX(dist) AS top FROM mins) AS mm
		WHERE m.dist = mm.top`)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: tuple distance returned no rows")
	}
	return int(res.Rows[0][0].I), res.Rows[0][1].D, nil
}

func (s *simsql) distanceVector(db *core.Database, metric *linalg.Matrix) (int, float64, error) {
	if err := loadMetricMatrix(db, metric); err != nil {
		return 0, 0, err
	}
	// The paper's MX table: mx_data = A · x, materialized once.
	if err := db.Exec(`CREATE TABLE mx AS
		SELECT x.id AS id, matrix_vector_multiply(a.val, x.value) AS mx_data
		FROM xv AS x, am AS a`); err != nil {
		return 0, 0, err
	}
	if err := db.Exec(`CREATE TABLE distancesm AS
		SELECT a.id AS id, MIN(inner_product(mxx.mx_data, a.value)) AS dist
		FROM xv AS a, mx AS mxx
		WHERE a.id <> mxx.id
		GROUP BY a.id`); err != nil {
		return 0, 0, err
	}
	res, err := db.Query(`SELECT d.id, d.dist
		FROM distancesm AS d, (SELECT MAX(dist) AS top FROM distancesm) AS mm
		WHERE d.dist = mm.top`)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: vector distance returned no rows")
	}
	return int(res.Rows[0][0].I), res.Rows[0][1].D, nil
}

func (s *simsql) distanceBlock(db *core.Database, metric *linalg.Matrix, n int) (int, float64, error) {
	if err := loadMetricMatrix(db, metric); err != nil {
		return 0, 0, err
	}
	if n%s.blockRows != 0 {
		return 0, 0, fmt.Errorf("bench: block distance requires point count divisible by block size %d", s.blockRows)
	}
	b := s.blockRows
	// A · Xbᵀ per block, materialized once (the blocked analogue of the
	// vector variant's MX table), then paired with every row block to form
	// the paper's DISTANCES relation of b×b tiles — each stage a
	// materialized CREATE TABLE AS, like the Hadoop MR stages SimSQL ran.
	steps := []string{
		`CREATE TABLE axt AS
			SELECT mx.mi AS mi, matrix_multiply(mp.val, trans_matrix(mx.m)) AS axm
			FROM mlx AS mx, am AS mp`,
		`CREATE TABLE distances AS
			SELECT mxx.mi AS id1, ax.mi AS id2,
				matrix_multiply(mxx.m, ax.axm) AS dm
			FROM axt AS ax, mlx AS mxx`,
		// Per-point minima: fold row minima across block pairs; diagonal
		// tiles mask self-distance with an infinite diagonal.
		`CREATE TABLE offmins AS
			SELECT id1, MIN(row_mins(dm)) AS mins
			FROM distances WHERE id1 <> id2 GROUP BY id1`,
		fmt.Sprintf(`CREATE TABLE diagmins AS
			SELECT id1, MIN(row_mins(dm + identity_matrix(%d) * 1e300)) AS mins
			FROM distances WHERE id1 = id2 GROUP BY id1`, b),
		`CREATE TABLE permins AS
			SELECT o.id1 AS mi, min_pairwise(o.mins, g.mins) AS mins
			FROM offmins AS o, diagmins AS g WHERE o.id1 = g.id1`,
	}
	for _, step := range steps {
		if err := db.Exec(step); err != nil {
			return 0, 0, err
		}
	}
	res, err := db.Query(fmt.Sprintf(`SELECT p.mi * %d + arg_max(p.mins), max_vector(p.mins)
		FROM permins AS p, (SELECT MAX(max_vector(mins)) AS top FROM permins) AS mm
		WHERE max_vector(p.mins) = mm.top`, b))
	if err != nil {
		return 0, 0, err
	}
	if len(res.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: block distance returned no rows")
	}
	return int(res.Rows[0][0].I), res.Rows[0][1].D, nil
}

func tuplesToMatrix(rows []value.Row, r, c int) (*linalg.Matrix, error) {
	m := linalg.NewMatrix(r, c)
	for _, row := range rows {
		i, err1 := row[0].AsInt()
		j, err2 := row[1].AsInt()
		v, err3 := row[2].AsDouble()
		if err := errors.Join(err1, err2, err3); err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= r || j < 0 || int(j) >= c {
			return nil, fmt.Errorf("bench: tuple (%d, %d) out of %dx%d", i, j, r, c)
		}
		m.Set(int(i), int(j), v)
	}
	return m, nil
}

// GramTimings runs Gram and returns the operator timing breakdown used by
// Figure 4 (tuple vs vector join/aggregation split).
func (s *simsql) GramTimings(data [][]float64) (*exec.Timings, error) {
	db := s.open(0)
	if err := s.loadPoints(db, data); err != nil {
		return nil, err
	}
	var sql string
	switch s.layout {
	case layoutTuple:
		sql = `SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
			FROM xt AS x1, xt AS x2
			WHERE x1.row_index = x2.row_index
			GROUP BY x1.col_index, x2.col_index`
	case layoutVector:
		sql = `SELECT SUM(outer_product(x.value, x.value)) FROM xv AS x`
	default:
		sql = `SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) FROM mlx`
	}
	res, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	return res.Timings, nil
}
