package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"relalg/internal/core"
	"relalg/internal/value"
)

// The spill sweep measures the out-of-core subsystem: one join+aggregate
// query run at a descending series of memory budgets, from unlimited down to
// a small fraction of the working set. Every budgeted run must produce the
// unlimited run's exact rows — the sweep errors out on any mismatch — so the
// table doubles as an end-to-end correctness gate for external sort, grace
// hash join, and spilling aggregation under real query plans.

// SpillConfig sizes the spill sweep.
type SpillConfig struct {
	Rows    int // left-table rows; right table has Rows/2
	Dim     int // vector dimensionality
	Groups  int // distinct aggregation groups
	Nodes   int
	PerNode int
	Seed    int64
	// Budgets are the MemoryBudgetBytes settings to sweep, in the order to
	// run them; 0 means unlimited and must come first (it is the baseline).
	Budgets []int64
}

// DefaultSpillConfig covers budgets from unlimited down to far below the
// working set.
func DefaultSpillConfig() SpillConfig {
	return SpillConfig{
		Rows:    4000,
		Dim:     32,
		Groups:  40,
		Nodes:   4,
		PerNode: 2,
		Seed:    1,
		Budgets: []int64{0, 1 << 20, 128 << 10, 32 << 10, 8 << 10},
	}
}

// SmokeSpillConfig finishes in a couple of seconds.
func SmokeSpillConfig() SpillConfig {
	return SpillConfig{
		Rows:    800,
		Dim:     8,
		Groups:  10,
		Nodes:   2,
		PerNode: 2,
		Seed:    1,
		Budgets: []int64{0, 64 << 10, 4 << 10},
	}
}

// Validate rejects sweeps that cannot serve as a correctness gate.
func (c SpillConfig) Validate() error {
	if c.Rows <= 0 || c.Dim <= 0 || c.Groups <= 0 || c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: spill config sizes must be positive")
	}
	if len(c.Budgets) < 2 || c.Budgets[0] != 0 {
		return errors.New("bench: spill sweep needs budget 0 (the baseline) first plus at least one finite budget")
	}
	for _, b := range c.Budgets[1:] {
		if b <= 0 {
			return errors.New("bench: only the first budget may be 0")
		}
	}
	return nil
}

// SpillRow is one line of the sweep table.
type SpillRow struct {
	Budget       int64
	Elapsed      time.Duration
	SpillEvents  int64
	BytesSpilled int64
}

// SpillReport is the sweep result.
type SpillReport struct {
	Cfg  SpillConfig
	Rows []SpillRow
}

// spillDB loads the sweep's working set into a fresh database at one budget.
func spillDB(cfg SpillConfig, budget int64) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.Cluster.MemoryBudgetBytes = budget
	return loadSweepDB(dbcfg, cfg.Rows, cfg.Dim, cfg.Groups, cfg.Seed)
}

// loadSweepDB opens a database under the given cluster configuration and
// loads the shared join+aggregate working set (tables l and r) into it. Both
// the spill and fault sweeps run the same query over this data.
func loadSweepDB(dbcfg core.Config, rows, dim, groups int, seed int64) (*core.Database, error) {
	db := core.Open(dbcfg)
	if err := db.Exec(fmt.Sprintf("CREATE TABLE l (id INTEGER, grp INTEGER, v VECTOR[%d])", dim)); err != nil {
		return nil, err
	}
	if err := db.Exec(fmt.Sprintf("CREATE TABLE r (id INTEGER, v VECTOR[%d])", dim)); err != nil {
		return nil, err
	}
	// Integer-valued entries keep the swept query's float sums exact, so
	// result comparison across budgets is bit-for-bit, not approximate: the
	// spilled plans group additions differently, which only matters if the
	// additions round.
	rng := rand.New(rand.NewSource(seed))
	vec := func() value.Value {
		entries := make([]float64, dim)
		for i := range entries {
			entries[i] = float64(rng.Intn(9) - 4)
		}
		return core.VectorValue(entries...)
	}
	ids := rows / 4
	if ids == 0 {
		ids = 1
	}
	lrows := make([]value.Row, rows)
	for i := range lrows {
		lrows[i] = value.Row{value.Int(int64(i % ids)), value.Int(int64(i % groups)), vec()}
	}
	rrows := make([]value.Row, rows/2)
	for i := range rrows {
		rrows[i] = value.Row{value.Int(int64(i % ids)), vec()}
	}
	if err := db.LoadTable("l", lrows); err != nil {
		return nil, err
	}
	if err := db.LoadTable("r", rrows); err != nil {
		return nil, err
	}
	return db, nil
}

// spillSweepQuery exercises all three out-of-core operators: the join builds
// hash tables, the aggregation groups the join output, and ORDER BY sorts it.
const spillSweepQuery = `SELECT l.grp, COUNT(*) AS n, SUM(inner_product(l.v, r.v)) AS s ` +
	`FROM l, r WHERE l.id = r.id GROUP BY l.grp ORDER BY l.grp`

// RunSpillSweep runs the sweep. It returns an error if any budgeted run's
// rows differ from the unlimited baseline, or if the smallest budget did not
// actually spill (a sweep that never leaves memory gates nothing).
func RunSpillSweep(cfg SpillConfig) (*SpillReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &SpillReport{Cfg: cfg}
	var baseline *core.Result
	for _, budget := range cfg.Budgets {
		db, err := spillDB(cfg, budget)
		if err != nil {
			return nil, err
		}
		start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
		res, err := db.Query(spillSweepQuery)
		if err != nil {
			return nil, fmt.Errorf("bench: spill sweep at budget %d: %w", budget, err)
		}
		elapsed := time.Since(start) //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
		if budget == 0 {
			baseline = res
			if res.Stats.SpillEvents != 0 {
				return nil, fmt.Errorf("bench: unlimited run spilled %d runs", res.Stats.SpillEvents)
			}
		} else if err := sameResults(baseline, res); err != nil {
			return nil, fmt.Errorf("bench: budget %d: %w", budget, err)
		}
		rep.Rows = append(rep.Rows, SpillRow{
			Budget:       budget,
			Elapsed:      elapsed,
			SpillEvents:  res.Stats.SpillEvents,
			BytesSpilled: res.Stats.BytesSpilled,
		})
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.SpillEvents == 0 {
		return nil, fmt.Errorf("bench: smallest budget %d never spilled; shrink it or grow the working set", last.Budget)
	}
	return rep, nil
}

// sameResults compares two query results row-for-row.
func sameResults(want, got *core.Result) error {
	if want == nil {
		return errors.New("no baseline result")
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Errorf("row count %d != baseline %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			return fmt.Errorf("row %d width differs", i)
		}
		for j := range want.Rows[i] {
			if !want.Rows[i][j].Equal(got.Rows[i][j]) {
				return fmt.Errorf("row %d col %d: %v != baseline %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return nil
}

// Format renders the sweep as a table.
func (r *SpillReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Out-of-core sweep: %d x %d-dim join rows, %d groups, %d nodes x %d partitions\n",
		r.Cfg.Rows, r.Cfg.Dim, r.Cfg.Groups, r.Cfg.Nodes, r.Cfg.PerNode)
	fmt.Fprintf(&b, "%-12s %12s %10s %14s\n", "budget", "time", "runs", "bytes spilled")
	for _, row := range r.Rows {
		budget := "unlimited"
		if row.Budget > 0 {
			budget = fmtBytes(row.Budget)
		}
		fmt.Fprintf(&b, "%-12s %12s %10d %14s\n",
			budget, row.Elapsed.Round(time.Millisecond), row.SpillEvents, fmtBytes(row.BytesSpilled))
	}
	b.WriteString("all budgeted runs matched the unlimited baseline row-for-row\n")
	return b.String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
