package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"relalg/internal/core"
	"relalg/internal/value"
)

// The batch sweep compares the row executor against the vectorized columnar
// batch executor on the three operator classes the vectorization targets —
// filter, hash join, and aggregation — over identical data at the same
// cluster shape. Every batch run's rows must be byte-identical (EncodeRows,
// so NaN payloads and -0 compare too) to the row run's; the sweep hard-fails
// on any divergence, so the table doubles as an end-to-end equivalence gate.
// A final budgeted leg forces both executors through the grace-join and
// spilling-aggregation paths and checks the same identity there.

// BatchConfig sizes the batch-vs-row sweep.
type BatchConfig struct {
	Rows      int // scan-table rows (filter and aggregation workloads)
	JoinRows  int // build-side join rows (unique keys)
	ProbeRows int // probe-side join rows (keys drawn from the build range)
	Groups    int // distinct aggregation groups
	Nodes     int
	PerNode   int
	BatchSize int // batch executor window (rows per batch)
	Reps      int // timing repetitions; the minimum is reported
	Seed      int64
	// SpillBudget is the MemoryBudgetBytes for the budgeted leg; it must be
	// small enough that the join+aggregate working set spills.
	SpillBudget int64
}

// DefaultBatchConfig is the committed-snapshot configuration: four simulated
// workers and row counts long enough to amortize planning.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		Rows:      200000,
		JoinRows:  20000,
		ProbeRows: 140000,
		Groups:    64,
		Nodes:     2,
		PerNode:   2,
		BatchSize: 1024,
		Reps:      5,
		Seed:      1,
		SpillBudget: 48 << 10,
	}
}

// SmokeBatchConfig finishes in a couple of seconds.
func SmokeBatchConfig() BatchConfig {
	return BatchConfig{
		Rows:      30000,
		JoinRows:  3000,
		ProbeRows: 12000,
		Groups:    16,
		Nodes:     2,
		PerNode:   2,
		BatchSize: 1024,
		Reps:      2,
		Seed:      1,
		SpillBudget: 24 << 10,
	}
}

// Validate rejects sweeps that cannot serve as an equivalence gate.
func (c BatchConfig) Validate() error {
	if c.Rows <= 0 || c.JoinRows <= 0 || c.ProbeRows <= 0 || c.Groups <= 0 || c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: batch config sizes must be positive")
	}
	if c.BatchSize <= 0 {
		return errors.New("bench: batch size must be positive")
	}
	if c.Reps <= 0 {
		return errors.New("bench: reps must be positive")
	}
	if c.SpillBudget <= 0 {
		return errors.New("bench: spill budget must be positive")
	}
	return nil
}

// batchWorkloads are the swept queries. The predicates and aggregate inputs
// are arithmetic-heavy on purpose: that is where per-row expression-tree
// dispatch costs the row executor most and where the typed column kernels
// pay off. The join tables are hash-partitioned on the key so the measured
// time is build/probe, not shuffle.
var batchWorkloads = []struct {
	Name  string
	Query string
}{
	{"filter", "SELECT g, a + b AS s FROM ft WHERE a * b + c * d > e * e AND a - b < c + d"},
	{"hash_join", "SELECT jp.k, jb.p + jp.r AS x FROM jb, jp WHERE jb.k = jp.k AND jb.q < jp.s"},
	{"aggregation", "SELECT g, COUNT(*) AS n, SUM(a * b + c) AS s1, SUM(d - e) AS s2 FROM ft GROUP BY g"},
}

// batchSpillQuery is the budgeted leg: a join+aggregate whose per-partition
// working set exceeds SpillBudget under both executors.
const batchSpillQuery = "SELECT jp.k, COUNT(*) AS n, SUM(jb.p * jp.r) AS s " +
	"FROM jb, jp WHERE jb.k = jp.k GROUP BY jp.k"

// batchSweepDB opens a database with the given batch size (0 = row executor)
// and budget and loads the sweep's working set.
func batchSweepDB(cfg BatchConfig, batch int, budget int64) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.Cluster.MemoryBudgetBytes = budget
	dbcfg.BatchSize = batch
	db := core.Open(dbcfg)
	for _, stmt := range []string{
		"CREATE TABLE ft (g INTEGER, a DOUBLE, b DOUBLE, c DOUBLE, d DOUBLE, e DOUBLE)",
		"CREATE TABLE jb (k INTEGER, p DOUBLE, q DOUBLE) PARTITION BY HASH (k)",
		"CREATE TABLE jp (k INTEGER, r DOUBLE, s DOUBLE) PARTITION BY HASH (k)",
	} {
		if err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	// Integer-valued doubles keep every sum exact; equivalence is then
	// bit-for-bit regardless of how additions associate.
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := func() value.Value { return value.Double(float64(rng.Intn(19) - 9)) }
	ft := make([]value.Row, cfg.Rows)
	for i := range ft {
		ft[i] = value.Row{value.Int(int64(i % cfg.Groups)), d(), d(), d(), d(), d()}
	}
	if err := db.LoadTable("ft", ft); err != nil {
		return nil, err
	}
	jb := make([]value.Row, cfg.JoinRows)
	for i := range jb {
		jb[i] = value.Row{value.Int(int64(i)), d(), d()}
	}
	if err := db.LoadTable("jb", jb); err != nil {
		return nil, err
	}
	jp := make([]value.Row, cfg.ProbeRows)
	for i := range jp {
		jp[i] = value.Row{value.Int(int64(rng.Intn(cfg.JoinRows))), d(), d()}
	}
	if err := db.LoadTable("jp", jp); err != nil {
		return nil, err
	}
	return db, nil
}

// BatchResult is one workload's row-vs-batch measurement.
type BatchResult struct {
	Workload        string  `json:"workload"`
	InputRows       int     `json:"input_rows"`
	OutputRows      int     `json:"output_rows"`
	RowSeconds      float64 `json:"row_seconds"`
	BatchSeconds    float64 `json:"batch_seconds"`
	RowRowsPerSec   float64 `json:"row_rows_per_sec"`
	BatchRowsPerSec float64 `json:"batch_rows_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// BatchSpillLeg records the budgeted identity check.
type BatchSpillLeg struct {
	Budget           int64 `json:"budget_bytes"`
	RowSpillEvents   int64 `json:"row_spill_events"`
	BatchSpillEvents int64 `json:"batch_spill_events"`
	OutputRows       int   `json:"output_rows"`
}

// BatchReport is the sweep outcome; it serializes to BENCH_batch.json.
type BatchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Workers     int           `json:"workers"`
	BatchSize   int           `json:"batch_size"`
	Reps        int           `json:"reps"`
	Results     []BatchResult `json:"results"`
	SpillLeg    BatchSpillLeg `json:"spill_leg"`
}

// JSON renders the report for BENCH_batch.json.
func (r *BatchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the report as a human-readable table.
func (r *BatchReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batch executor sweep (batch %d, %d workers, min of %d reps, GOMAXPROCS=%d)\n",
		r.BatchSize, r.Workers, r.Reps, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %14s %14s %9s\n",
		"workload", "input rows", "row s", "batch s", "row rows/s", "batch rows/s", "speedup")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-14s %12d %12.4f %12.4f %14.0f %14.0f %8.2fx\n",
			res.Workload, res.InputRows, res.RowSeconds, res.BatchSeconds,
			res.RowRowsPerSec, res.BatchRowsPerSec, res.Speedup)
	}
	fmt.Fprintf(&b, "spill leg at %s: row %d spill events, batch %d, %d rows, byte-identical\n",
		fmtBytes(r.SpillLeg.Budget), r.SpillLeg.RowSpillEvents, r.SpillLeg.BatchSpillEvents, r.SpillLeg.OutputRows)
	b.WriteString("every batch run matched the row executor byte-for-byte\n")
	return b.String()
}

// resultBytes is the identity fingerprint: schema text plus the EncodeRows
// codec bytes, so NaN payloads and signed zeros participate in equality.
func resultBytes(res *core.Result) []byte {
	return append([]byte(res.Schema.String()+"\n"), value.EncodeRows(res.Rows)...)
}

// RunBatchSweep runs the sweep. It returns an error on any row/batch result
// divergence, and if the budgeted leg fails to spill under either executor.
func RunBatchSweep(cfg BatchConfig) (*BatchReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &BatchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //lint:ignore nodeterminism the snapshot timestamp is report metadata, not simulation state
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     cfg.Nodes * cfg.PerNode,
		BatchSize:   cfg.BatchSize,
		Reps:        cfg.Reps,
	}
	rowDB, err := batchSweepDB(cfg, 0, 0)
	if err != nil {
		return nil, err
	}
	batchDB, err := batchSweepDB(cfg, cfg.BatchSize, 0)
	if err != nil {
		return nil, err
	}
	for _, w := range batchWorkloads {
		inputRows := cfg.Rows
		if w.Name == "hash_join" {
			inputRows = cfg.JoinRows + cfg.ProbeRows
		}
		var rowRes, batchRes *core.Result
		rowSec, batchSec, err := bestOfPair(cfg.Reps,
			func() error {
				r, err := rowDB.Query(w.Query)
				rowRes = r
				return err
			},
			func() error {
				r, err := batchDB.Query(w.Query)
				batchRes = r
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("bench: batch sweep %s: %w", w.Name, err)
		}
		if !bytes.Equal(resultBytes(rowRes), resultBytes(batchRes)) {
			return nil, fmt.Errorf("bench: batch sweep %s: batch results diverge from row executor", w.Name)
		}
		rep.Results = append(rep.Results, BatchResult{
			Workload:        w.Name,
			InputRows:       inputRows,
			OutputRows:      len(rowRes.Rows),
			RowSeconds:      rowSec,
			BatchSeconds:    batchSec,
			RowRowsPerSec:   float64(inputRows) / rowSec,
			BatchRowsPerSec: float64(inputRows) / batchSec,
			Speedup:         rowSec / batchSec,
		})
	}

	// Budgeted leg: both executors must actually spill and still agree.
	rowSpillDB, err := batchSweepDB(cfg, 0, cfg.SpillBudget)
	if err != nil {
		return nil, err
	}
	batchSpillDB, err := batchSweepDB(cfg, cfg.BatchSize, cfg.SpillBudget)
	if err != nil {
		return nil, err
	}
	rowRes, err := rowSpillDB.Query(batchSpillQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: batch sweep spill leg (row): %w", err)
	}
	batchRes, err := batchSpillDB.Query(batchSpillQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: batch sweep spill leg (batch): %w", err)
	}
	if rowRes.Stats.SpillEvents == 0 || batchRes.Stats.SpillEvents == 0 {
		return nil, fmt.Errorf("bench: spill leg did not spill at budget %d (row %d, batch %d events); shrink the budget",
			cfg.SpillBudget, rowRes.Stats.SpillEvents, batchRes.Stats.SpillEvents)
	}
	if !bytes.Equal(resultBytes(rowRes), resultBytes(batchRes)) {
		return nil, errors.New("bench: batch sweep spill leg: batch results diverge from row executor")
	}
	rep.SpillLeg = BatchSpillLeg{
		Budget:           cfg.SpillBudget,
		RowSpillEvents:   rowRes.Stats.SpillEvents,
		BatchSpillEvents: batchRes.Stats.SpillEvents,
		OutputRows:       len(rowRes.Rows),
	}
	return rep, nil
}
