package bench

import (
	"math"
	"strings"
	"testing"

	"relalg/internal/linalg"
	"relalg/internal/workload"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Dims:             []int{3, 6},
		GramN:            120,
		DistN:            60,
		BlockRows:        20,
		Nodes:            2,
		PerNode:          2,
		Seed:             7,
		MaxTupleOps:      1e9,
		DistBudgetFactor: 8,
	}
}

func refGram(t *testing.T, data [][]float64) *linalg.Matrix {
	t.Helper()
	X, err := linalg.MatrixFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	G, err := X.Transpose().MulMat(X)
	if err != nil {
		t.Fatal(err)
	}
	return G
}

func TestSimSQLVariantsAgreeOnGram(t *testing.T) {
	cfg := tinyConfig()
	data := workload.DenseVectors(3, 100, 5)
	want := refGram(t, data)
	for _, s := range cfg.simsqlVariants(0) {
		got, err := s.Gram(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("%s: gram disagrees with reference", s.Name())
		}
	}
}

func TestSimSQLVariantsAgreeOnRegression(t *testing.T) {
	cfg := tinyConfig()
	data := workload.DenseVectors(4, 100, 4)
	beta := workload.Beta(5, 4)
	yRows := workload.RegressionTargets(6, data, beta, 0)
	y := make([]float64, len(yRows))
	for i, r := range yRows {
		y[i] = r[1].D
	}
	want := linalg.VectorOf(beta...)
	for _, s := range cfg.simsqlVariants(0) {
		got, err := s.Regression(data, y)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !got.EqualApprox(want, 1e-6) {
			t.Fatalf("%s: beta = %v, want %v", s.Name(), got, want)
		}
	}
}

func TestSimSQLDistanceVectorAndBlockAgree(t *testing.T) {
	cfg := tinyConfig()
	data := workload.DenseVectors(8, cfg.DistN, 4)
	metric := workload.MetricMatrix(9, 4)
	variants := cfg.simsqlVariants(0) // unlimited budget
	vIdx, vVal, err := variants[1].Distance(data, metric)
	if err != nil {
		t.Fatalf("vector distance: %v", err)
	}
	bIdx, bVal, err := variants[2].Distance(data, metric)
	if err != nil {
		t.Fatalf("block distance: %v", err)
	}
	if vIdx != bIdx || math.Abs(vVal-bVal) > 1e-9 {
		t.Fatalf("vector (%d, %g) vs block (%d, %g)", vIdx, vVal, bIdx, bVal)
	}
	// Tuple-based agrees when given an unlimited budget.
	tIdx, tVal, err := variants[0].Distance(data, metric)
	if err != nil {
		t.Fatalf("tuple distance (unlimited budget): %v", err)
	}
	if tIdx != vIdx || math.Abs(tVal-vVal) > 1e-9 {
		t.Fatalf("tuple (%d, %g) vs vector (%d, %g)", tIdx, tVal, vIdx, vVal)
	}
}

func TestRunDistanceTupleFails(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dims = []int{10}
	table, err := RunDistance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tuple, vector *TableRow
	for i := range table.Rows {
		switch table.Rows[i].Platform {
		case "Tuple SimSQL":
			tuple = &table.Rows[i]
		case "Vector SimSQL":
			vector = &table.Rows[i]
		}
	}
	if tuple == nil || vector == nil {
		t.Fatalf("missing rows in %v", table.Rows)
	}
	if !tuple.Cells[0].Failed {
		t.Fatalf("tuple distance should Fail under budget: %+v", tuple.Cells[0])
	}
	if vector.Cells[0].Failed || vector.Cells[0].Err != "" {
		t.Fatalf("vector distance should succeed: %+v", vector.Cells[0])
	}
	if !strings.Contains(table.Format(), "Fail") {
		t.Fatalf("formatted table missing Fail:\n%s", table.Format())
	}
}

func TestRunGramTableShape(t *testing.T) {
	cfg := tinyConfig()
	table, err := RunGram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("platforms %d, want 6", len(table.Rows))
	}
	names := []string{"Tuple SimSQL", "Vector SimSQL", "Block SimSQL", "SystemML", "SciDB", "Spark mllib"}
	for i, row := range table.Rows {
		if row.Platform != names[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Platform, names[i])
		}
		if len(row.Cells) != len(cfg.Dims) {
			t.Fatalf("row %q has %d cells", row.Platform, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.Err != "" || c.Failed {
				t.Fatalf("%s: cell %+v", row.Platform, c)
			}
		}
	}
	text := table.Format()
	if !strings.Contains(text, "3 dims") || !strings.Contains(text, "6 dims") {
		t.Fatalf("format:\n%s", text)
	}
}

func TestRunRegressionTableShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dims = []int{4}
	table, err := RunRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 || len(table.Rows[0].Cells) != 1 {
		t.Fatalf("table shape %dx%d", len(table.Rows), len(table.Rows[0].Cells))
	}
}

func TestTupleScale(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxTupleOps = 1000
	s := cfg.simsqlVariants(0)[0]
	n, scale := cfg.tupleScale(s, 10, 600)
	// 600*100 = 60000 > 1000 -> subsample to max(20, 10) = 20.
	if n != 20 || scale != 30 {
		t.Fatalf("n=%d scale=%g", n, scale)
	}
	// Non-tuple platforms never scale.
	v := cfg.simsqlVariants(0)[1]
	if n, scale := cfg.tupleScale(v, 10, 600); n != 600 || scale != 1 {
		t.Fatalf("vector scaled: n=%d scale=%g", n, scale)
	}
	// Under the cap: no scaling.
	cfg.MaxTupleOps = 1e9
	if n, scale := cfg.tupleScale(s, 10, 600); n != 600 || scale != 1 {
		t.Fatalf("under-cap scaled: n=%d scale=%g", n, scale)
	}
}

func TestRunBreakdown(t *testing.T) {
	cfg := tinyConfig()
	b, err := RunBreakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Variants) != 2 {
		t.Fatalf("variants %d", len(b.Variants))
	}
	if b.Variants[0].Platform != "Tuple SimSQL" || b.Variants[1].Platform != "Vector SimSQL" {
		t.Fatalf("variants %v", b.Variants)
	}
	for _, v := range b.Variants {
		if v.Total <= 0 {
			t.Fatalf("%s: zero total", v.Platform)
		}
		if v.ByOp["aggregate"] == 0 {
			t.Fatalf("%s: no aggregate time", v.Platform)
		}
	}
	text := b.Format()
	if !strings.Contains(text, "aggregate") || !strings.Contains(text, "Figure 4") {
		t.Fatalf("breakdown format:\n%s", text)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := tinyConfig()
	bad.DistN = 55 // not a multiple of BlockRows
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid DistN accepted")
	}
	bad = tinyConfig()
	bad.Dims = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty dims accepted")
	}
	bad = tinyConfig()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCellFormat(t *testing.T) {
	if got := (Cell{Failed: true}).Format(); got != "Fail" {
		t.Fatalf("fail cell %q", got)
	}
	if got := (Cell{Err: "x"}).Format(); got != "Error" {
		t.Fatalf("error cell %q", got)
	}
	if got := (Cell{Seconds: 3661.5}).Format(); got != "01:01:01.50" {
		t.Fatalf("time cell %q", got)
	}
	if got := (Cell{Seconds: 1, Extrapolated: true}).Format(); !strings.HasPrefix(got, "~") {
		t.Fatalf("extrapolated cell %q", got)
	}
}

func TestOptimizerDemo(t *testing.T) {
	out, err := OptimizerDemo()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"LA-aware optimizer", "Ablation A1", "Ablation A2",
		"CrossJoin", "HashJoin", "matrix_multiply",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
	// The A1/A2 sections must NOT contain a cross join (they pick the
	// join-predicate plan), while the full optimizer section must.
	sections := strings.Split(out, "---")
	if len(sections) < 6 {
		t.Fatalf("unexpected demo structure:\n%s", out)
	}
	full, a1, a2 := sections[2], sections[4], sections[6]
	if !strings.Contains(full, "CrossJoin") {
		t.Fatalf("full optimizer lost the cross-product plan:\n%s", full)
	}
	if strings.Contains(a1, "CrossJoin") || strings.Contains(a2, "CrossJoin") {
		t.Fatalf("ablations should not cross join:\n%s", out)
	}
}

func TestLoadBalanceDemo(t *testing.T) {
	out := LoadBalanceDemo(100, 80)
	if !strings.Contains(out, "100 blocks over 80 cores") {
		t.Fatalf("demo output:\n%s", out)
	}
	// With 100 random placements on 80 cores the max load always exceeds
	// the mean of 1.25 (pigeonhole: some core gets >= 2).
	if !strings.Contains(out, "slowdown vs perfect balance") {
		t.Fatalf("missing slowdown line:\n%s", out)
	}
	if strings.Contains(out, "slowdown vs perfect balance: 1.00x") {
		t.Fatalf("hash placement reported as perfectly balanced:\n%s", out)
	}
}
