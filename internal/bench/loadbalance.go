package bench

import (
	"fmt"
	"strings"

	"relalg/internal/value"
)

// LoadBalanceDemo reproduces the paper's explanation for SimSQL's distance
// gap (§5): "there are only 10⁵ data points in all; when grouped into blocks
// of 1000 vectors, this results in only 100 matrices ... Since SimSQL uses a
// randomized, hash-based partitioning, it is easily possible for one core to
// receive four or five of the 100 matrices. We did observe that most cores
// would finish in a short time, while just a few, overloaded cores would be
// left to finish the computation."
//
// The demo hash-partitions `blocks` block ids over `workers` cores with the
// engine's actual partitioning hash and reports the resulting distribution:
// the makespan of a block-parallel stage is proportional to the most-loaded
// core, so max/mean is the slowdown versus perfect balance.
func LoadBalanceDemo(blocks, workers int) string {
	counts := make([]int, workers)
	for i := 0; i < blocks; i++ {
		h := value.HashRowKey(value.Row{value.Int(int64(i))}, []int{0})
		counts[h%uint64(workers)]++
	}
	maxLoad, busy := 0, 0
	for _, c := range counts {
		if c > maxLoad {
			maxLoad = c
		}
		if c > 0 {
			busy++
		}
	}
	mean := float64(blocks) / float64(workers)

	var b strings.Builder
	fmt.Fprintf(&b, "Load balance under randomized hash partitioning (paper §5 discussion)\n")
	fmt.Fprintf(&b, "%d blocks over %d cores: mean %.2f blocks/core, max %d, %d cores busy\n",
		blocks, workers, mean, maxLoad, busy)
	fmt.Fprintf(&b, "stage slowdown vs perfect balance: %.2fx\n\n", float64(maxLoad)/mean)
	hist := map[int]int{}
	for _, c := range counts {
		hist[c]++
	}
	maxBlocks := 0
	for c := range hist {
		if c > maxBlocks {
			maxBlocks = c
		}
	}
	for c := 0; c <= maxBlocks; c++ {
		if hist[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %2d block(s): %3d cores %s\n", c, hist[c], strings.Repeat("#", hist[c]))
	}
	b.WriteString("\nWith the paper's 100 blocks on 80 cores the same effect strands a few\n")
	b.WriteString("cores with 4-5 matrices each; better load balancing (the paper's noted\n")
	b.WriteString("future work) would assign blocks round-robin for a 1.0x stage slowdown.\n")
	return b.String()
}
