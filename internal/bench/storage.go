package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"relalg/internal/core"
	"relalg/internal/value"
)

// The storage sweep measures the persistent paged store: one scan+aggregate
// query run at a descending series of buffer-pool budgets over a table far
// larger than the smallest pool. Every run must reproduce the first
// (largest-pool) run's exact rows, the pool's peak usage must stay within
// its budget, and each data directory is closed and reopened mid-sweep to
// gate restart durability — so the table doubles as an end-to-end
// correctness gate for the page codec, buffer pool, and recovery path.

// StorageConfig sizes the storage sweep.
type StorageConfig struct {
	Rows      int // stored rows
	Dim       int // vector dimensionality
	Groups    int // distinct aggregation groups
	Nodes     int
	PerNode   int
	Seed      int64
	PageBytes int
	BatchSize int // 0 = row executor; the sweep runs the batch executor when > 0
	// PoolBudgets are the BufferPoolBytes settings to sweep, largest first
	// (the baseline); the smallest must be well below the table size so the
	// sweep actually exercises eviction.
	PoolBudgets []int64
}

// DefaultStorageConfig sweeps the pool from comfortably-everything down to a
// small fraction of the table.
func DefaultStorageConfig() StorageConfig {
	return StorageConfig{
		Rows:        6000,
		Dim:         48,
		Groups:      40,
		Nodes:       4,
		PerNode:     2,
		Seed:        1,
		PageBytes:   4096,
		BatchSize:   1024,
		PoolBudgets: []int64{64 << 20, 1 << 20, 256 << 10, 64 << 10},
	}
}

// SmokeStorageConfig finishes in a couple of seconds.
func SmokeStorageConfig() StorageConfig {
	return StorageConfig{
		Rows:        1000,
		Dim:         16,
		Groups:      10,
		Nodes:       2,
		PerNode:     2,
		Seed:        1,
		PageBytes:   1024,
		BatchSize:   256,
		PoolBudgets: []int64{64 << 20, 32 << 10},
	}
}

// Validate rejects sweeps that cannot serve as a correctness gate.
func (c StorageConfig) Validate() error {
	if c.Rows <= 0 || c.Dim <= 0 || c.Groups <= 0 || c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: storage config sizes must be positive")
	}
	if len(c.PoolBudgets) < 2 {
		return errors.New("bench: storage sweep needs at least two pool budgets (baseline plus one)")
	}
	for i, b := range c.PoolBudgets {
		if b <= 0 {
			return errors.New("bench: pool budgets must be positive")
		}
		if i > 0 && b >= c.PoolBudgets[i-1] {
			return errors.New("bench: pool budgets must descend")
		}
	}
	return nil
}

// StorageRow is one line of the sweep table.
type StorageRow struct {
	PoolBudget int64         `json:"pool_budget"`
	LoadTime   time.Duration `json:"load_ns"`
	QueryTime  time.Duration `json:"query_ns"`
	ReopenTime time.Duration `json:"reopen_ns"`
	TableBytes int64         `json:"table_bytes"`
	PeakBytes  int64         `json:"peak_bytes"`
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Evictions  int64         `json:"evictions"`
	Writebacks int64         `json:"writebacks"`
}

// StorageReport is the sweep result.
type StorageReport struct {
	Cfg  StorageConfig `json:"config"`
	Rows []StorageRow  `json:"rows"`
}

// JSON renders the report for BENCH_storage.json.
func (r *StorageReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// storageSweepQuery streams the whole table through the fused pipeline into
// an aggregation, so every committed page travels through the buffer pool.
const storageSweepQuery = `SELECT grp, COUNT(*) AS n, SUM(inner_product(v, v)) AS s ` +
	`FROM t WHERE id >= 0 GROUP BY grp ORDER BY grp`

// storageDB opens a fresh persistent database in dir at one pool budget.
func storageDB(cfg StorageConfig, dir string, budget int64) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.DataDir = dir
	dbcfg.PageBytes = cfg.PageBytes
	dbcfg.BufferPoolBytes = budget
	dbcfg.BatchSize = cfg.BatchSize
	return core.OpenData(dbcfg)
}

// storageRows builds the working set. Integer-valued entries keep the swept
// query's float sums exact so comparisons are bit-for-bit.
func storageRows(cfg StorageConfig) []value.Row {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Row, cfg.Rows)
	for i := range rows {
		entries := make([]float64, cfg.Dim)
		for j := range entries {
			entries[j] = float64(rng.Intn(9) - 4)
		}
		rows[i] = value.Row{
			value.Int(int64(i)), value.Int(int64(i % cfg.Groups)),
			core.VectorValue(entries...),
		}
	}
	return rows
}

// dirTableBytes sums the page-file sizes under a data directory.
func dirTableBytes(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(filepath.Join(dir, "tables"))
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// RunStorageSweep runs the sweep. It errors if any run's rows differ from
// the baseline, a reopened directory does not reproduce its own pre-restart
// rows, a pool overran its budget, or the smallest budget never evicted.
func RunStorageSweep(cfg StorageConfig) (*StorageReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &StorageReport{Cfg: cfg}
	rows := storageRows(cfg)
	var baseline *core.Result
	for _, budget := range cfg.PoolBudgets {
		dir, err := os.MkdirTemp("", "labench-storage-*")
		if err != nil {
			return nil, err
		}
		row, res, err := runStorageLeg(cfg, dir, budget, rows)
		_ = os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: storage sweep at pool %d: %w", budget, err)
		}
		if baseline == nil {
			baseline = res
		} else if err := sameResults(baseline, res); err != nil {
			return nil, fmt.Errorf("bench: pool %d: %w", budget, err)
		}
		rep.Rows = append(rep.Rows, *row)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Evictions == 0 {
		return nil, fmt.Errorf("bench: smallest pool %d never evicted; shrink it or grow the table", last.PoolBudget)
	}
	return rep, nil
}

// runStorageLeg loads, queries, restarts, and re-queries one configuration.
func runStorageLeg(cfg StorageConfig, dir string, budget int64, rows []value.Row) (*StorageRow, *core.Result, error) {
	db, err := storageDB(cfg, dir, budget)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = db.Close() }()
	if err := db.Exec(fmt.Sprintf("CREATE TABLE t (id INTEGER, grp INTEGER, v VECTOR[%d])", cfg.Dim)); err != nil {
		return nil, nil, err
	}
	start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	if err := db.LoadTable("t", rows); err != nil {
		return nil, nil, err
	}
	loadTime := time.Since(start) //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	start = time.Now()            //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	res, err := db.Query(storageSweepQuery)
	if err != nil {
		return nil, nil, err
	}
	queryTime := time.Since(start) //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	st := db.Store().PoolStats()
	if st.PeakBytes > budget {
		return nil, nil, fmt.Errorf("pool peak %d exceeds budget %d", st.PeakBytes, budget)
	}
	tableBytes := dirTableBytes(dir)
	if err := db.Close(); err != nil {
		return nil, nil, err
	}

	// Restart leg: the reopened directory must reproduce the same rows.
	start = time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	re, err := storageDB(cfg, dir, budget)
	if err != nil {
		return nil, nil, fmt.Errorf("reopen: %w", err)
	}
	defer func() { _ = re.Close() }()
	res2, err := re.Query(storageSweepQuery)
	if err != nil {
		return nil, nil, fmt.Errorf("reopen query: %w", err)
	}
	reopenTime := time.Since(start) //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	if err := sameResults(res, res2); err != nil {
		return nil, nil, fmt.Errorf("restart: %w", err)
	}
	return &StorageRow{
		PoolBudget: budget,
		LoadTime:   loadTime,
		QueryTime:  queryTime,
		ReopenTime: reopenTime,
		TableBytes: tableBytes,
		PeakBytes:  st.PeakBytes,
		Hits:       st.Hits,
		Misses:     st.Misses,
		Evictions:  st.Evictions,
		Writebacks: st.Writebacks,
	}, res, nil
}

// Format renders the sweep as a table.
func (r *StorageReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistent storage sweep: %d x %d-dim rows, %d groups, %d nodes x %d partitions, %dB pages\n",
		r.Cfg.Rows, r.Cfg.Dim, r.Cfg.Groups, r.Cfg.Nodes, r.Cfg.PerNode, r.Cfg.PageBytes)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %8s %8s %8s\n",
		"pool", "table", "load", "query", "reopen", "peak", "hits", "misses", "evict")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %8d %8d %8d\n",
			fmtBytes(row.PoolBudget), fmtBytes(row.TableBytes),
			row.LoadTime.Round(time.Millisecond), row.QueryTime.Round(time.Millisecond),
			row.ReopenTime.Round(time.Millisecond), fmtBytes(row.PeakBytes),
			row.Hits, row.Misses, row.Evictions)
	}
	b.WriteString("all pools matched the baseline row-for-row; every restart reproduced its pre-restart rows\n")
	return b.String()
}
