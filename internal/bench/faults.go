package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"relalg/internal/core"
	"relalg/internal/fault"
)

// The fault sweep is the fault-injection subsystem's end-to-end gate: the
// spill sweep's join+aggregate query runs once clean to establish a baseline,
// then once per fault seed with every transient fault kind armed — partition
// crashes, shuffle ser-de corruption, spill write failures, and stragglers
// with speculative re-execution — both in memory and under a budget small
// enough to force the out-of-core paths. Every faulted run must reproduce the
// baseline row-for-row or the sweep hard-fails; a final permanent-fault run
// must fail with a properly wrapped task error.

// FaultConfig sizes the fault-injection sweep.
type FaultConfig struct {
	Rows    int // left-table rows; right table has Rows/2
	Dim     int // vector dimensionality
	Groups  int // distinct aggregation groups
	Nodes   int
	PerNode int
	Seed    int64 // data seed
	Budget  int64 // memory budget for the out-of-core leg; must force spilling
	// FaultSeeds are the injector seeds to sweep; each runs an in-memory and
	// an out-of-core leg.
	FaultSeeds []uint64
}

// DefaultFaultConfig sweeps three seeds over a working set large enough that
// every operator runs multi-partition.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		Rows:       2000,
		Dim:        16,
		Groups:     20,
		Nodes:      3,
		PerNode:    2,
		Seed:       1,
		Budget:     32 << 10,
		FaultSeeds: []uint64{1, 2, 3},
	}
}

// SmokeFaultConfig finishes in a couple of seconds but keeps the acceptance
// shape: at least three seeds, both legs, plus the permanent-fault check.
func SmokeFaultConfig() FaultConfig {
	return FaultConfig{
		Rows:       600,
		Dim:        8,
		Groups:     10,
		Nodes:      2,
		PerNode:    2,
		Seed:       1,
		Budget:     8 << 10,
		FaultSeeds: []uint64{1, 2, 3},
	}
}

// Validate rejects sweeps that cannot serve as a correctness gate.
func (c FaultConfig) Validate() error {
	if c.Rows <= 0 || c.Dim <= 0 || c.Groups <= 0 || c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: fault config sizes must be positive")
	}
	if c.Budget <= 0 {
		return errors.New("bench: fault sweep needs a finite budget for the out-of-core leg")
	}
	if len(c.FaultSeeds) < 3 {
		return errors.New("bench: fault sweep needs at least three injector seeds")
	}
	return nil
}

// FaultRow is one line of the sweep table.
type FaultRow struct {
	Seed                uint64
	OutOfCore           bool
	Elapsed             time.Duration
	FaultsInjected      int64
	TaskRetries         int64
	SpeculativeLaunches int64
}

// FaultReport is the sweep result.
type FaultReport struct {
	Cfg  FaultConfig
	Rows []FaultRow
	// PermanentErr is the (expected) error from the permanent-fault run,
	// already verified to wrap fault.ErrInjected and a *fault.TaskError.
	PermanentErr error
}

// transientFaultConfig arms every transient fault kind at one injector seed.
// The final attempt is always clean, so any seed converges.
func transientFaultConfig(seed uint64, outOfCore bool) fault.Config {
	cfg := fault.Config{
		Seed:           seed,
		MaxAttempts:    3,
		RetryBackoff:   time.Microsecond,
		CrashProb:      0.5,
		ShuffleProb:    0.5,
		SpillProb:      0.5,
		StragglerProb:  0.3,
		StragglerDelay: 200 * time.Microsecond,
		Speculate:      true,
	}
	if outOfCore {
		cfg.SpillProb = 1 // every spill label's early attempts fail
	}
	return cfg
}

// faultDB loads the sweep's working set under the given injector config.
func faultDB(cfg FaultConfig, budget int64, faults fault.Config) (*core.Database, error) {
	dbcfg := core.DefaultConfig()
	dbcfg.Cluster.Nodes = cfg.Nodes
	dbcfg.Cluster.PartitionsPerNode = cfg.PerNode
	dbcfg.Cluster.MemoryBudgetBytes = budget
	dbcfg.Cluster.Faults = faults
	return loadSweepDB(dbcfg, cfg.Rows, cfg.Dim, cfg.Groups, cfg.Seed)
}

// RunFaultSweep runs the sweep. It returns an error if any faulted run's rows
// diverge from the fault-free baseline, if no run ever retried a task (a
// sweep that injects nothing gates nothing), or if the permanent-fault run
// does not fail with a properly wrapped error.
func RunFaultSweep(cfg FaultConfig) (*FaultReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &FaultReport{Cfg: cfg}

	base, err := faultDB(cfg, 0, fault.Config{})
	if err != nil {
		return nil, err
	}
	baseline, err := base.Query(spillSweepQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: fault sweep baseline: %w", err)
	}

	var totalRetries int64
	for _, seed := range cfg.FaultSeeds {
		for _, outOfCore := range []bool{false, true} {
			budget := int64(0)
			if outOfCore {
				budget = cfg.Budget
			}
			db, err := faultDB(cfg, budget, transientFaultConfig(seed, outOfCore))
			if err != nil {
				return nil, err
			}
			start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
			res, err := db.Query(spillSweepQuery)
			if err != nil {
				return nil, fmt.Errorf("bench: fault seed %d (out-of-core=%v): transient-only run failed: %w", seed, outOfCore, err)
			}
			elapsed := time.Since(start) //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
			if err := sameResults(baseline, res); err != nil {
				return nil, fmt.Errorf("bench: fault seed %d (out-of-core=%v) diverged from fault-free baseline: %w", seed, outOfCore, err)
			}
			if outOfCore && res.Stats.SpillEvents == 0 {
				return nil, fmt.Errorf("bench: fault seed %d: out-of-core leg never spilled; shrink the budget", seed)
			}
			totalRetries += res.Stats.TaskRetries
			rep.Rows = append(rep.Rows, FaultRow{
				Seed:                seed,
				OutOfCore:           outOfCore,
				Elapsed:             elapsed,
				FaultsInjected:      res.Stats.FaultsInjected,
				TaskRetries:         res.Stats.TaskRetries,
				SpeculativeLaunches: res.Stats.SpeculativeLaunches,
			})
		}
	}
	if totalRetries == 0 {
		return nil, errors.New("bench: fault sweep never retried a task; the injector is not firing")
	}

	// Permanent faults must exhaust the retry budget and surface a wrapped
	// task error, not succeed and not panic.
	db, err := faultDB(cfg, 0, fault.Config{Seed: cfg.FaultSeeds[0], PermanentProb: 1, RetryBackoff: -1})
	if err != nil {
		return nil, err
	}
	_, err = db.Query(spillSweepQuery)
	if err == nil {
		return nil, errors.New("bench: permanent-fault run succeeded; injector is not firing")
	}
	if !errors.Is(err, fault.ErrInjected) {
		return nil, fmt.Errorf("bench: permanent-fault error does not wrap fault.ErrInjected: %w", err)
	}
	var te *fault.TaskError
	if !errors.As(err, &te) {
		return nil, fmt.Errorf("bench: permanent-fault error carries no fault.TaskError: %w", err)
	}
	rep.PermanentErr = err
	return rep, nil
}

// Format renders the sweep as a table.
func (r *FaultReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injection sweep: %d x %d-dim join rows, %d groups, %d nodes x %d partitions\n",
		r.Cfg.Rows, r.Cfg.Dim, r.Cfg.Groups, r.Cfg.Nodes, r.Cfg.PerNode)
	fmt.Fprintf(&b, "%-6s %-12s %12s %10s %10s %12s\n", "seed", "mode", "time", "faults", "retries", "speculative")
	for _, row := range r.Rows {
		mode := "in-memory"
		if row.OutOfCore {
			mode = "out-of-core"
		}
		fmt.Fprintf(&b, "%-6d %-12s %12s %10d %10d %12d\n",
			row.Seed, mode, row.Elapsed.Round(time.Millisecond),
			row.FaultsInjected, row.TaskRetries, row.SpeculativeLaunches)
	}
	b.WriteString("all transient-fault runs matched the fault-free baseline row-for-row\n")
	fmt.Fprintf(&b, "permanent-fault run failed as required: %v\n", r.PermanentErr)
	return b.String()
}
