package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/exec"
	"relalg/internal/linalg"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

// This file benchmarks the kernel layer itself — the tiled matmul, the
// parallel transpose/elementwise dispatch, and the fused scan→filter→project
// pipeline — against their seed serial baselines, and emits the results as
// machine-readable JSON (BENCH_kernels.json) so the repo carries a perf
// trajectory from commit to commit.

// KernelConfig sizes one kernel benchmark run.
type KernelConfig struct {
	MatN     int   // square matrix side for matmul/transpose/elementwise
	PipeRows int   // rows pushed through the executor pipeline
	Reps     int   // timing repetitions; the minimum is reported
	Workers  []int // worker counts to sweep
	Seed     int64
}

// DefaultKernelConfig is the committed-snapshot configuration: the paper-ish
// 512×512 product and a pipeline long enough to amortize setup.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{MatN: 512, PipeRows: 200000, Reps: 9, Workers: []int{1, 2, 4, 8}, Seed: 1}
}

// SmokeKernelConfig shrinks everything so verify.sh can run the suite as a
// seconds-long smoke test.
func SmokeKernelConfig() KernelConfig {
	return KernelConfig{MatN: 96, PipeRows: 20000, Reps: 2, Workers: []int{1, 4}, Seed: 1}
}

// KernelResult is one (kernel, workers) measurement. Reference rows carry
// the serial seed kernel's numbers; tiled/parallel/fused rows carry a
// Speedup relative to their reference.
type KernelResult struct {
	Kernel     string  `json:"kernel"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	GFLOPS     float64 `json:"gflops,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	Speedup    float64 `json:"speedup_vs_ref,omitempty"`
}

// KernelReport is the full suite outcome; it serializes to
// BENCH_kernels.json.
type KernelReport struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	MatN        int            `json:"mat_n"`
	PipeRows    int            `json:"pipeline_rows"`
	Reps        int            `json:"reps"`
	Results     []KernelResult `json:"results"`
}

// JSON renders the report for BENCH_kernels.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the report as a human-readable table.
func (r *KernelReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel suite (mat %dx%d, pipeline %d rows, min of %d reps, GOMAXPROCS=%d)\n",
		r.MatN, r.MatN, r.PipeRows, r.Reps, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-22s %8s %12s %10s %14s %9s\n", "kernel", "workers", "seconds", "GFLOP/s", "rows/s", "speedup")
	for _, res := range r.Results {
		gf, rps, sp := "", "", ""
		if res.GFLOPS > 0 {
			gf = fmt.Sprintf("%.2f", res.GFLOPS)
		}
		if res.RowsPerSec > 0 {
			rps = fmt.Sprintf("%.0f", res.RowsPerSec)
		}
		if res.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", res.Speedup)
		}
		fmt.Fprintf(&b, "%-22s %8d %12.6f %10s %14s %9s\n", res.Kernel, res.Workers, res.Seconds, gf, rps, sp)
	}
	return b.String()
}

// bestOf runs fn reps times and returns the fastest wall-clock seconds.
func bestOf(reps int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
		if err := fn(); err != nil {
			return 0, err
		}
		el := time.Since(start).Seconds()
		if i == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// bestOfPair alternates a/b reps back to back and returns each side's
// fastest seconds, so a ratio of the two sees the same machine conditions.
func bestOfPair(reps int, a, b func() error) (float64, float64, error) {
	bestA, bestB := 0.0, 0.0
	for i := 0; i < reps; i++ {
		start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
		if err := a(); err != nil {
			return 0, 0, err
		}
		elA := time.Since(start).Seconds()
		start = time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
		if err := b(); err != nil {
			return 0, 0, err
		}
		elB := time.Since(start).Seconds()
		if i == 0 || elA < bestA {
			bestA = elA
		}
		if i == 0 || elB < bestB {
			bestB = elB
		}
	}
	return bestA, bestB, nil
}

// RunKernels executes the suite and returns the report.
func RunKernels(cfg KernelConfig) (*KernelReport, error) {
	rep := &KernelReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //lint:ignore nodeterminism the snapshot timestamp is report metadata, not simulation state
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		MatN:        cfg.MatN,
		PipeRows:    cfg.PipeRows,
		Reps:        cfg.Reps,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.MatN
	A, B := randMatrix(rng, n, n), randMatrix(rng, n, n)
	matFlops := 2 * float64(n) * float64(n) * float64(n)
	elemOps := float64(n) * float64(n)

	// Matrix multiply: seed ikj kernel vs the tiled kernel at each fan-out.
	// Ref and tiled reps are interleaved per worker count so slow machine
	// drift (thermal throttling, noisy neighbours) cancels out of the
	// reported ratio instead of penalizing whichever kernel ran later.
	refBest := 0.0
	var matRows []KernelResult
	for _, w := range cfg.Workers {
		refSec, sec, err := bestOfPair(cfg.Reps,
			func() error { _, err := linalg.RefMulMat(A, B); return err },
			func() error { _, err := linalg.ParallelMulMat(A, B, w); return err })
		if err != nil {
			return nil, err
		}
		if refBest == 0 || refSec < refBest {
			refBest = refSec
		}
		matRows = append(matRows, KernelResult{Kernel: "matmul", Workers: w, Seconds: sec, GFLOPS: matFlops / sec / 1e9, Speedup: refSec / sec})
	}
	rep.add(KernelResult{Kernel: "matmul_ref", Workers: 1, Seconds: refBest, GFLOPS: matFlops / refBest / 1e9})
	for _, row := range matRows {
		rep.add(row)
	}

	// Transpose: blocked serial vs parallel dispatch (rate = element moves).
	refSec, err := bestOf(cfg.Reps, func() error { _ = A.Transpose(); return nil })
	if err != nil {
		return nil, err
	}
	rep.add(KernelResult{Kernel: "transpose_ref", Workers: 1, Seconds: refSec, GFLOPS: elemOps / refSec / 1e9})
	for _, w := range cfg.Workers {
		sec, err := bestOf(cfg.Reps, func() error { _ = linalg.ParallelTranspose(A, w); return nil })
		if err != nil {
			return nil, err
		}
		rep.add(KernelResult{Kernel: "transpose", Workers: w, Seconds: sec, GFLOPS: elemOps / sec / 1e9, Speedup: refSec / sec})
	}

	// Elementwise add, standing in for the whole map family (+,-,⊙,÷ share
	// the dispatch and differ only in the innermost arithmetic).
	refSec, err = bestOf(cfg.Reps, func() error { _, err := A.Add(B); return err })
	if err != nil {
		return nil, err
	}
	rep.add(KernelResult{Kernel: "elementwise_add_ref", Workers: 1, Seconds: refSec, GFLOPS: elemOps / refSec / 1e9})
	for _, w := range cfg.Workers {
		sec, err := bestOf(cfg.Reps, func() error { _, err := linalg.ParallelAdd(A, B, w); return err })
		if err != nil {
			return nil, err
		}
		rep.add(KernelResult{Kernel: "elementwise_add", Workers: w, Seconds: sec, GFLOPS: elemOps / sec / 1e9, Speedup: refSec / sec})
	}

	// Executor pipeline: scan→filter→project, stage-at-a-time vs fused, with
	// the worker count as the cluster's partition fan-out.
	for _, w := range cfg.Workers {
		unfused, err := benchPipeline(cfg, w, true)
		if err != nil {
			return nil, err
		}
		rep.add(KernelResult{Kernel: "pipeline_unfused", Workers: w, Seconds: unfused, RowsPerSec: float64(cfg.PipeRows) / unfused})
		fused, err := benchPipeline(cfg, w, false)
		if err != nil {
			return nil, err
		}
		rep.add(KernelResult{Kernel: "pipeline_fused", Workers: w, Seconds: fused, RowsPerSec: float64(cfg.PipeRows) / fused, Speedup: unfused / fused})
	}
	return rep, nil
}

func (r *KernelReport) add(res KernelResult) { r.Results = append(r.Results, res) }

func randMatrix(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// benchTables is a minimal in-memory TableSource for the pipeline benchmark.
type benchTables map[string][][]value.Row

// TableParts implements exec.TableSource.
func (b benchTables) TableParts(name string) ([][]value.Row, error) {
	parts, ok := b[name]
	if !ok {
		return nil, fmt.Errorf("bench: no table %q", name)
	}
	return parts, nil
}

// benchPipeline times one scan→filter→project query over PipeRows rows on a
// w-partition cluster, with pipeline fusion on or off.
func benchPipeline(cfg KernelConfig, w int, disableFusion bool) (float64, error) {
	cl := cluster.New(cluster.Config{Nodes: 1, PartitionsPerNode: w})
	rows := make([]value.Row, cfg.PipeRows)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.Int(int64(i % 97))}
	}
	tables := benchTables{"pts": cl.ScatterRoundRobin(rows)}
	meta := catalog.NewTableMeta("pts", catalog.Schema{Cols: []catalog.Column{
		{Name: "a", Type: types.TInt},
		{Name: "b", Type: types.TInt},
	}}, int64(cfg.PipeRows))
	scan := &plan.Scan{Table: meta, Out: plan.Schema{{Name: "a", T: types.TInt}, {Name: "b", T: types.TInt}}}
	colA := &plan.Col{Idx: 0, Name: "a", T: types.TInt}
	colB := &plan.Col{Idx: 1, Name: "b", T: types.TInt}
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: colB,
		R: &plan.Const{V: value.Int(48), T: types.TInt}, T: types.TBool}
	proj := &plan.Project{
		Input: &plan.Filter{Input: scan, Pred: pred},
		Exprs: []plan.Expr{
			&plan.Binary{Op: "+", Kind: plan.BinArith, L: colA, R: colB, T: types.TInt},
			colB,
		},
		Out: plan.Schema{{Name: "s", T: types.TInt}, {Name: "b", T: types.TInt}},
	}
	ctx := &exec.Context{Cluster: cl, Tables: tables, Timings: exec.NewTimings(), DisablePipelineFusion: disableFusion}
	return bestOf(cfg.Reps, func() error {
		_, err := exec.Run(ctx, proj)
		return err
	})
}
