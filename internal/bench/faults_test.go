package bench

import (
	"strings"
	"testing"
)

func TestFaultConfigValidate(t *testing.T) {
	if err := DefaultFaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmokeFaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultFaultConfig()
	bad.Budget = 0
	if bad.Validate() == nil {
		t.Fatal("budget 0 accepted")
	}
	bad = DefaultFaultConfig()
	bad.FaultSeeds = []uint64{1, 2}
	if bad.Validate() == nil {
		t.Fatal("two seeds accepted; the gate needs at least three")
	}
	bad = DefaultFaultConfig()
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestRunFaultSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep runs via verify.sh's labench -faults -smoke gate")
	}
	rep, err := RunFaultSweep(SmokeFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // 3 seeds x {in-memory, out-of-core}
		t.Fatalf("sweep rows = %d, want 6", len(rep.Rows))
	}
	if rep.PermanentErr == nil {
		t.Fatal("no permanent-fault error recorded")
	}
	out := rep.Format()
	if !strings.Contains(out, "matched the fault-free baseline") {
		t.Fatalf("report lacks the identity line:\n%s", out)
	}
}
