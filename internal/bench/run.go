package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/workload"

	"relalg/internal/baselines/scidb"
	"relalg/internal/baselines/sparkml"
	"relalg/internal/baselines/systemml"
)

// Config sizes one harness run. The paper ran 10 machines with 10⁵ points
// per machine (10⁴ for distance) at 10/100/1000 dimensions; those sizes take
// hours per platform on one box, so the defaults are scaled down — every
// cost term the paper measures is linear in the row count, which preserves
// the comparisons (see EXPERIMENTS.md).
type Config struct {
	Dims      []int
	GramN     int // points for Gram and regression
	DistN     int // points for the distance computation
	BlockRows int // rows per block for the blocked layout
	Nodes     int
	PerNode   int
	Seed      int64
	// MaxTupleOps caps n·d² for the tuple layout; beyond it, the harness
	// runs a row subsample and scales the time linearly (marked "~").
	MaxTupleOps float64
	// DistBudgetFactor sets the distance run's intermediate-tuple budget to
	// factor·n²: comfortably above the vector/block plans (≈3n²) and below
	// the tuple plan (≈n²·d), reproducing the paper's Fail entries.
	DistBudgetFactor int
	// Bandwidth models per-link network bandwidth (bytes/sec, 0 = infinite)
	// so shuffles cost what they did on the paper's Hadoop-era cluster.
	Bandwidth float64
}

// QuickConfig finishes in well under a minute.
func QuickConfig() Config {
	return Config{
		Dims:             []int{10, 40, 120},
		GramN:            3000,
		DistN:            300,
		BlockRows:        50,
		Nodes:            4,
		PerNode:          2,
		Seed:             1,
		MaxTupleOps:      1e6,
		DistBudgetFactor: 8,
		Bandwidth:        400e6,
	}
}

// PaperConfig uses the paper's dimensionalities with scaled-down row counts.
func PaperConfig() Config {
	return Config{
		Dims:             []int{10, 100, 1000},
		GramN:            4000,
		DistN:            400,
		BlockRows:        100,
		Nodes:            10,
		PerNode:          2,
		Seed:             1,
		MaxTupleOps:      2e7,
		DistBudgetFactor: 8,
		Bandwidth:        400e6,
	}
}

// Validate rejects configurations the harness cannot honour.
func (c Config) Validate() error {
	if len(c.Dims) == 0 || c.GramN <= 0 || c.DistN <= 0 {
		return errors.New("bench: empty dims or row counts")
	}
	if c.BlockRows <= 0 || c.DistN%c.BlockRows != 0 || c.DistN/c.BlockRows < 2 {
		return fmt.Errorf("bench: DistN (%d) must be a multiple of BlockRows (%d) with at least 2 blocks", c.DistN, c.BlockRows)
	}
	if c.Nodes <= 0 || c.PerNode <= 0 {
		return errors.New("bench: cluster shape must be positive")
	}
	return nil
}

// Cell is one (platform, dims) measurement.
type Cell struct {
	Seconds      float64
	Failed       bool // resource exhaustion, like the paper's "Fail"
	Extrapolated bool // measured on a subsample and scaled
	Err          string
}

// Format renders the cell the way the paper prints it (HH:MM:SS).
func (c Cell) Format() string {
	if c.Failed {
		return "Fail"
	}
	if c.Err != "" {
		return "Error"
	}
	s := formatHMS(c.Seconds)
	if c.Extrapolated {
		return "~" + s
	}
	return s
}

func formatHMS(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	sec := d.Seconds() - float64(h*3600+m*60)
	return fmt.Sprintf("%02d:%02d:%05.2f", h, m, sec)
}

// TableRow is one platform's row of a results table.
type TableRow struct {
	Platform string
	Cells    []Cell
}

// Table is one paper figure's worth of results.
type Table struct {
	Title string
	Dims  []int
	Rows  []TableRow
}

// Format renders a paper-style results table.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-16s", "Platform")
	for _, d := range t.Dims {
		fmt.Fprintf(&b, "%14s", fmt.Sprintf("%d dims", d))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-16s", row.Platform)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "%14s", c.Format())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Platform is the shared surface of the six benchmarked systems: the three
// SimSQL layouts of the extended engine plus the three simulated
// comparators.
type Platform interface {
	Name() string
	Gram(data [][]float64) (*linalg.Matrix, error)
	Regression(data [][]float64, y []float64) (*linalg.Vector, error)
	Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error)
}

// platform is kept as an internal alias.
type platform = Platform

// Platforms returns all six benchmark platforms in the paper's row order.
// distBudget, when non-zero, caps intermediate tuples for the SimSQL
// variants' distance runs.
func Platforms(cfg Config, distBudget int64) []Platform {
	return cfg.allPlatforms(distBudget)
}

func (c Config) newCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Nodes:              c.Nodes,
		PartitionsPerNode:  c.PerNode,
		SerializeShuffles:  true,
		NetworkBytesPerSec: c.Bandwidth,
	})
}

// simsqlVariants builds the three engine layouts.
func (c Config) simsqlVariants(distBudget int64) []*simsql {
	mk := func(l simsqlLayout) *simsql {
		return &simsql{layout: l, nodes: c.Nodes, perNode: c.PerNode, blockRows: c.BlockRows, budget: distBudget, bandwidth: c.Bandwidth}
	}
	return []*simsql{mk(layoutTuple), mk(layoutVector), mk(layoutBlock)}
}

// comparators builds the three simulated external systems, each on a fresh
// cluster.
func (c Config) comparators() []platform {
	return []platform{
		systemml.New(c.newCluster()),
		scidb.New(c.newCluster()),
		sparkml.New(c.newCluster()),
	}
}

func (c Config) allPlatforms(distBudget int64) []platform {
	var out []platform
	for _, s := range c.simsqlVariants(distBudget) {
		out = append(out, s)
	}
	return append(out, c.comparators()...)
}

// RunGram regenerates Figure 1.
func RunGram(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 1: Gram matrix computation", Dims: cfg.Dims}
	for _, pl := range cfg.allPlatforms(0) {
		row := TableRow{Platform: pl.Name()}
		for _, d := range cfg.Dims {
			row.Cells = append(row.Cells, runGramCell(cfg, pl, d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runGramCell(cfg Config, pl platform, d int) Cell {
	n, scale := cfg.tupleScale(pl, d, cfg.GramN)
	data := workload.DenseVectors(cfg.Seed, n, d)
	return timeCell(scale, func() error {
		_, err := pl.Gram(data)
		return err
	})
}

// RunRegression regenerates Figure 2.
func RunRegression(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 2: Least squares linear regression", Dims: cfg.Dims}
	for _, pl := range cfg.allPlatforms(0) {
		row := TableRow{Platform: pl.Name()}
		for _, d := range cfg.Dims {
			row.Cells = append(row.Cells, runRegressionCell(cfg, pl, d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runRegressionCell(cfg Config, pl platform, d int) Cell {
	n, scale := cfg.tupleScale(pl, d, cfg.GramN)
	data := workload.DenseVectors(cfg.Seed, n, d)
	beta := workload.Beta(cfg.Seed+1, d)
	yRows := workload.RegressionTargets(cfg.Seed+2, data, beta, 0.01)
	y := make([]float64, len(yRows))
	for i, r := range yRows {
		y[i] = r[1].D
	}
	return timeCell(scale, func() error {
		_, err := pl.Regression(data, y)
		return err
	})
}

// RunDistance regenerates Figure 3. The tuple-based engine runs under an
// intermediate-tuple budget of DistBudgetFactor·n² and fails, as in the
// paper.
func RunDistance(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	budget := int64(cfg.DistBudgetFactor) * int64(cfg.DistN) * int64(cfg.DistN)
	t := &Table{Title: "Figure 3: Distance computation", Dims: cfg.Dims}
	for _, pl := range cfg.allPlatforms(budget) {
		row := TableRow{Platform: pl.Name()}
		for _, d := range cfg.Dims {
			row.Cells = append(row.Cells, runDistanceCell(cfg, pl, d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runDistanceCell(cfg Config, pl platform, d int) Cell {
	data := workload.DenseVectors(cfg.Seed, cfg.DistN, d)
	metric := workload.MetricMatrix(cfg.Seed+3, d)
	return timeCell(1, func() error {
		_, _, err := pl.Distance(data, metric)
		return err
	})
}

// timeCell measures one benchmark cell. The stopwatch is the single place
// the harness reads the wall clock: the measured seconds ARE the benchmark
// output, while everything that feeds the computation (data, seeds, tick
// accounting) stays deterministic.
func timeCell(scale float64, fn func() error) Cell {
	runtime.GC() // isolate cells from each other's garbage
	start := time.Now() //lint:ignore nodeterminism the wall-clock reading is the measured benchmark output, not simulation state
	err := fn()
	elapsed := time.Since(start).Seconds() * scale
	return cellFrom(elapsed, scale, err)
}

func cellFrom(seconds, scale float64, err error) Cell {
	switch {
	case errors.Is(err, cluster.ErrResourceExhausted):
		return Cell{Failed: true}
	case err != nil:
		return Cell{Err: err.Error()}
	}
	return Cell{Seconds: seconds, Extrapolated: scale > 1}
}

// tupleScale subsamples the tuple layout beyond MaxTupleOps, returning the
// adjusted row count and the linear time-scaling factor.
func (cfg Config) tupleScale(pl platform, d, n int) (int, float64) {
	s, ok := pl.(*simsql)
	if !ok || s.layout != layoutTuple || cfg.MaxTupleOps <= 0 {
		return n, 1
	}
	ops := float64(n) * float64(d) * float64(d)
	if ops <= cfg.MaxTupleOps {
		return n, 1
	}
	sub := int(cfg.MaxTupleOps / (float64(d) * float64(d)))
	if sub < 20 {
		sub = 20
	}
	if sub >= n {
		return n, 1
	}
	return sub, float64(n) / float64(sub)
}

// Breakdown is Figure 4: per-operator time shares for tuple vs vector Gram.
type Breakdown struct {
	Dim      int
	N        int
	Variants []BreakdownRow
}

// BreakdownRow is one layout's operator timing split.
type BreakdownRow struct {
	Platform string
	Total    time.Duration
	ByOp     map[string]time.Duration
}

// Format renders Figure 4 as stacked percentage bars.
func (b *Breakdown) Format() string {
	var out strings.Builder
	fmt.Fprintf(&out, "Figure 4: Gram matrix operator breakdown (n=%d, d=%d)\n", b.N, b.Dim)
	ops := []string{"scan", "pipeline", "join", "aggregate", "aggregate-shuffle", "project", "filter"}
	for _, row := range b.Variants {
		fmt.Fprintf(&out, "%-14s total %8.3fs\n", row.Platform, row.Total.Seconds())
		for _, op := range ops {
			d := row.ByOp[op]
			if d == 0 {
				continue
			}
			pct := 100 * float64(d) / float64(row.Total)
			bar := strings.Repeat("#", int(pct/2))
			fmt.Fprintf(&out, "  %-18s %6.1f%% %s\n", op, pct, bar)
		}
	}
	return out.String()
}

// RunBreakdown regenerates Figure 4 at the largest configured
// dimensionality (the paper used 1000 dims on a five-machine cluster).
func RunBreakdown(cfg Config) (*Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Dims[len(cfg.Dims)-1]
	b := &Breakdown{Dim: d, N: cfg.GramN}
	for _, s := range cfg.simsqlVariants(0)[:2] { // tuple and vector
		n, _ := cfg.tupleScale(s, d, cfg.GramN)
		data := workload.DenseVectors(cfg.Seed, n, d)
		tm, err := s.GramTimings(data)
		if err != nil {
			return nil, err
		}
		row := BreakdownRow{Platform: s.Name(), Total: tm.Total(), ByOp: map[string]time.Duration{}}
		for _, l := range tm.Labels() {
			row.ByOp[l] = tm.Get(l)
		}
		b.Variants = append(b.Variants, row)
	}
	return b, nil
}
