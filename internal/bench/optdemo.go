package bench

import (
	"fmt"
	"strings"

	"relalg/internal/catalog"
	"relalg/internal/opt"
	"relalg/internal/plan"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
)

// paperSchemaCatalog builds the exact §4.1 schema and statistics:
//
//	R (r_rid INTEGER, r_matrix MATRIX[10][100000])   100 rows
//	S (s_sid INTEGER, s_matrix MATRIX[100000][100])  100 rows
//	T (t_rid INTEGER, t_sid INTEGER)                 1000 rows
func paperSchemaCatalog() (*catalog.Catalog, error) {
	cat := catalog.New()
	add := func(name string, rows int64, cols ...catalog.Column) error {
		return cat.CreateTable(catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows))
	}
	if err := add("r", 100,
		catalog.Column{Name: "r_rid", Type: types.TInt},
		catalog.Column{Name: "r_matrix", Type: types.TMatrix(types.KnownDim(10), types.KnownDim(100000))}); err != nil {
		return nil, err
	}
	if err := add("s", 100,
		catalog.Column{Name: "s_sid", Type: types.TInt},
		catalog.Column{Name: "s_matrix", Type: types.TMatrix(types.KnownDim(100000), types.KnownDim(100))}); err != nil {
		return nil, err
	}
	if err := add("t", 1000,
		catalog.Column{Name: "t_rid", Type: types.TInt},
		catalog.Column{Name: "t_sid", Type: types.TInt}); err != nil {
		return nil, err
	}
	cat.SetDistinct("r", "r_rid", 100)
	cat.SetDistinct("s", "s_sid", 100)
	cat.SetDistinct("t", "t_rid", 100)
	cat.SetDistinct("t", "t_sid", 100)
	return cat, nil
}

// PaperOptimizerQuery is the §4.1 three-way join.
const PaperOptimizerQuery = `SELECT matrix_multiply(r_matrix, s_matrix)
FROM r, s, t
WHERE r_rid = t_rid AND s_sid = t_sid`

// OptimizerDemo renders the §4.1 worked example: the plan chosen with the
// full linear-algebra-aware optimizer, with size-aware costing disabled
// (ablation A1), and with eager projection disabled (ablation A2).
func OptimizerDemo() (string, error) {
	cat, err := paperSchemaCatalog()
	if err != nil {
		return "", err
	}
	stmt, err := sqlparse.Parse(PaperOptimizerQuery)
	if err != nil {
		return "", err
	}
	sel := stmt.(*sqlparse.Select)

	var b strings.Builder
	b.WriteString("Paper §4.1 example: SELECT matrix_multiply(r_matrix, s_matrix) FROM R, S, T\n")
	b.WriteString("                    WHERE r_rid = t_rid AND s_sid = t_sid\n")
	b.WriteString("R: 100 x MATRIX[10][100000] (80 MB each)   S: 100 x MATRIX[100000][100]   T: 1000 pairs\n\n")

	cases := []struct {
		title string
		opts  opt.Options
	}{
		{"LA-aware optimizer (paper behaviour)", opt.DefaultOptions()},
		{"Ablation A1: size-blind costing", func() opt.Options {
			o := opt.DefaultOptions()
			o.SizeAwareCosting = false
			return o
		}()},
		{"Ablation A2: no eager projection", func() opt.Options {
			o := opt.DefaultOptions()
			o.EagerProjection = false
			return o
		}()},
	}
	for _, c := range cases {
		logical, err := plan.NewBuilder(cat).BuildSelect(sel)
		if err != nil {
			return "", err
		}
		optimized, err := opt.New(c.opts).Optimize(logical)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "--- %s ---\n%s\n", c.title, plan.Explain(optimized))
	}
	b.WriteString("The paper's winning plan pi(S x R) |X| T appears only with LA-aware costing\n")
	b.WriteString("AND eager projection: the 10,000-row cross product carries 8 KB products\n")
	b.WriteString("(~80 MB total) instead of joining 80 GB of raw matrices through T.\n")
	return b.String(), nil
}
