// Package workload generates the synthetic dense data of the paper's
// experiments (the paper itself used synthetic dense data: "there is likely
// no practical difference between synthetic and real data") in each of the
// storage layouts the evaluation compares: normalized tuples, one vector
// per data point, and blocked matrices.
package workload

import (
	"fmt"
	"math/rand"

	"relalg/internal/linalg"
	"relalg/internal/value"
)

// DenseVectors draws n dense d-dimensional points with entries uniform in
// [-1, 1), deterministically from seed.
func DenseVectors(seed int64, n, d int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	backing := make([]float64, n*d)
	for i := range out {
		row := backing[i*d : (i+1)*d]
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		out[i] = row
	}
	return out
}

// TupleRows lays points out as normalized triples
// (row_index INTEGER, col_index INTEGER, value DOUBLE) — a million
// 1000-dimensional vectors become a billion tuples, the layout whose
// per-tuple costs the paper's tuple-based SimSQL numbers expose.
func TupleRows(data [][]float64) []value.Row {
	var rows []value.Row
	for i, vec := range data {
		for j, x := range vec {
			rows = append(rows, value.Row{value.Int(int64(i)), value.Int(int64(j)), value.Double(x)})
		}
	}
	return rows
}

// VectorRows lays points out as (id INTEGER, value VECTOR[]).
func VectorRows(data [][]float64) []value.Row {
	rows := make([]value.Row, len(data))
	for i, vec := range data {
		rows[i] = value.Row{value.Int(int64(i)), value.Vector(linalg.VectorOf(vec...))}
	}
	return rows
}

// BlockRows groups consecutive points into blocks of blockRows rows stored
// as (mi INTEGER, m MATRIX[][]) — the pre-blocked layout. A final partial
// block keeps its true (smaller) height. Ragged (non-rectangular) input is
// reported as an error.
func BlockRows(data [][]float64, blockRows int) ([]value.Row, error) {
	if blockRows <= 0 {
		blockRows = 1
	}
	var rows []value.Row
	for start := 0; start < len(data); start += blockRows {
		end := start + blockRows
		if end > len(data) {
			end = len(data)
		}
		m, err := linalg.MatrixFromRows(data[start:end])
		if err != nil {
			return nil, fmt.Errorf("workload: block starting at row %d: %w", start, err)
		}
		rows = append(rows, value.Row{value.Int(int64(start / blockRows)), value.Matrix(m)})
	}
	return rows, nil
}

// RegressionTargets produces y_i = <x_i, beta> + noise, as
// (i INTEGER, y_i DOUBLE) rows. noise=0 makes the least-squares solution
// recover beta exactly (up to conditioning).
func RegressionTargets(seed int64, data [][]float64, beta []float64, noise float64) []value.Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]value.Row, len(data))
	for i, vec := range data {
		var y float64
		for j, x := range vec {
			y += x * beta[j]
		}
		if noise > 0 {
			y += r.NormFloat64() * noise
		}
		rows[i] = value.Row{value.Int(int64(i)), value.Double(y)}
	}
	return rows
}

// Beta draws a deterministic coefficient vector for regression workloads.
func Beta(seed int64, d int) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, d)
	for i := range out {
		out[i] = r.Float64()*4 - 2
	}
	return out
}

// MetricMatrix returns a symmetric, strictly diagonally dominant (hence
// positive definite) d×d matrix, the Riemannian metric A of the distance
// computation.
func MetricMatrix(seed int64, d int) *linalg.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			x := r.Float64()*0.2 - 0.1
			m.Set(i, j, x)
			m.Set(j, i, x)
		}
	}
	for i := 0; i < d; i++ {
		m.Set(i, i, 1+r.Float64())
	}
	return m
}

// BlockIndexRows enumerates block ids 0..nBlocks-1 as (mi INTEGER) rows,
// the helper table the paper's blocking SQL joins against.
func BlockIndexRows(nBlocks int) []value.Row {
	rows := make([]value.Row, nBlocks)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i))}
	}
	return rows
}
