package workload

import (
	"testing"

	"relalg/internal/value"
)

func TestDenseVectorsDeterministic(t *testing.T) {
	a := DenseVectors(7, 10, 4)
	b := DenseVectors(7, 10, 4)
	if len(a) != 10 || len(a[0]) != 4 {
		t.Fatalf("shape %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
			if a[i][j] < -1 || a[i][j] >= 1 {
				t.Fatalf("out of range %g", a[i][j])
			}
		}
	}
	c := DenseVectors(8, 10, 4)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTupleRows(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}}
	rows := TupleRows(data)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// (1, 0) -> 3
	for _, r := range rows {
		if r[0].I == 1 && r[1].I == 0 && r[2].D != 3 {
			t.Fatalf("row %v", r)
		}
	}
}

func TestVectorRows(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}}
	rows := VectorRows(data)
	if len(rows) != 2 || rows[1][0].I != 1 {
		t.Fatalf("rows %v", rows)
	}
	if rows[1][1].Vec.At(1) != 4 {
		t.Fatalf("vector %v", rows[1][1])
	}
}

func TestBlockRowsPartialTail(t *testing.T) {
	data := DenseVectors(1, 25, 3)
	rows, err := BlockRows(data, 10)
	if err != nil {
		t.Fatalf("BlockRows: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("blocks %d", len(rows))
	}
	if rows[0][1].Mat.Rows != 10 || rows[2][1].Mat.Rows != 5 {
		t.Fatalf("block heights %d, %d", rows[0][1].Mat.Rows, rows[2][1].Mat.Rows)
	}
	if rows[1][0].I != 1 {
		t.Fatalf("block id %v", rows[1][0])
	}
	// Content preserved.
	if rows[2][1].Mat.At(4, 2) != data[24][2] {
		t.Fatal("block content wrong")
	}
	// Degenerate block size normalizes to 1.
	if got, err := BlockRows(data[:2], 0); err != nil || len(got) != 2 {
		t.Fatalf("degenerate block size: %d blocks (err %v)", len(got), err)
	}
	// Ragged input is an error, not a panic.
	if _, err := BlockRows([][]float64{{1, 2}, {3}}, 10); err == nil {
		t.Fatal("ragged input did not error")
	}
}

func TestRegressionTargetsExact(t *testing.T) {
	data := [][]float64{{1, 0}, {0, 1}, {2, 2}}
	beta := []float64{3, -1}
	rows := RegressionTargets(1, data, beta, 0)
	want := []float64{3, -1, 4}
	for i, r := range rows {
		if r[1].D != want[i] {
			t.Fatalf("y[%d] = %v, want %g", i, r[1], want[i])
		}
	}
	noisy := RegressionTargets(1, data, beta, 0.5)
	if noisy[0][1].D == rows[0][1].D {
		t.Fatal("noise had no effect")
	}
}

func TestMetricMatrixSPD(t *testing.T) {
	m := MetricMatrix(3, 6)
	if m.Rows != 6 || m.Cols != 6 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if !m.EqualApprox(m.Transpose(), 0) {
		t.Fatal("metric not symmetric")
	}
	// Diagonal dominance ⇒ positive definite.
	for i := 0; i < m.Rows; i++ {
		var off float64
		for j := 0; j < m.Cols; j++ {
			if i != j {
				off += abs(m.At(i, j))
			}
		}
		if m.At(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
	if _, err := m.Inverse(); err != nil {
		t.Fatalf("metric not invertible: %v", err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBlockIndexRows(t *testing.T) {
	rows := BlockIndexRows(3)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for i, r := range rows {
		if !r[0].Equal(value.Int(int64(i))) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestBeta(t *testing.T) {
	b := Beta(5, 4)
	if len(b) != 4 {
		t.Fatalf("len %d", len(b))
	}
	for _, x := range b {
		if x < -2 || x >= 2 {
			t.Fatalf("coefficient out of range: %g", x)
		}
	}
}
