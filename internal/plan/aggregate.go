package plan

import (
	"fmt"
	"strings"

	"relalg/internal/builtins"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
)

// aggEnv compiles expressions in the scope of a grouped query: subexpressions
// matching a GROUP BY expression become references to the group columns,
// aggregate calls become references to aggregate outputs, and any other
// column reference is an error (it is neither grouped nor aggregated).
type aggEnv struct {
	b        *Builder
	inScope  *scope
	keyIndex map[string]int // ExprString(group ast) -> group column
	keyTypes []types.T
	calls    []AggCall
	callIdx  map[string]int // ExprString(agg ast) -> call index
}

// buildAggregate compiles the grouped form of a SELECT. It returns the node
// the final projection reads from (Agg, possibly wrapped in a HAVING
// filter), the projection expressions and names, the output scope, and a
// builder for ORDER BY keys in the same environment.
func (b *Builder) buildAggregate(sel *sqlparse.Select, input Node, inScope *scope) (Node, []Expr, []string, *scope, func(sqlparse.Expr) (Expr, error), error) {
	env := &aggEnv{
		b:        b,
		inScope:  inScope,
		keyIndex: map[string]int{},
		callIdx:  map[string]int{},
	}
	var groupExprs []Expr
	groupNames := make([]string, 0, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		e, err := b.buildScalar(g, inScope)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		key := sqlparse.ExprString(g)
		if _, dup := env.keyIndex[key]; dup {
			continue
		}
		env.keyIndex[key] = len(groupExprs)
		env.keyTypes = append(env.keyTypes, e.Type())
		groupExprs = append(groupExprs, e)
		name := fmt.Sprintf("group%d", i)
		if cr, ok := g.(*sqlparse.ColRef); ok {
			name = cr.Column
		}
		groupNames = append(groupNames, name)
	}

	var projExprs []Expr
	var projNames []string
	for i, item := range sel.Items {
		if item.Star {
			return nil, nil, nil, nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
		}
		e, err := env.build(item.Expr)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		projExprs = append(projExprs, e)
		projNames = append(projNames, itemName(item, i))
	}

	var havingExpr Expr
	if sel.Having != nil {
		e, err := env.build(sel.Having)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		if e.Type().Base != types.Bool {
			return nil, nil, nil, nil, nil, fmt.Errorf("plan: HAVING clause is %s, want BOOLEAN", e.Type())
		}
		havingExpr = e
	}

	out := make(Schema, 0, len(groupExprs)+len(env.calls))
	for i, g := range groupExprs {
		out = append(out, Field{Name: groupNames[i], T: g.Type()})
	}
	for i, c := range env.calls {
		out = append(out, Field{Name: fmt.Sprintf("agg%d", i), T: c.T})
	}
	var node Node = &Agg{Input: input, GroupBy: groupExprs, Aggs: env.calls, Out: out}
	if havingExpr != nil {
		node = &Filter{Input: node, Pred: havingExpr}
	}

	outScope := &scope{}
	for i, name := range projNames {
		outScope.cols = append(outScope.cols, scopeCol{name: name, t: projExprs[i].Type()})
	}
	return node, projExprs, projNames, outScope, env.build, nil
}

// build compiles an expression in the grouped environment.
func (env *aggEnv) build(e sqlparse.Expr) (Expr, error) {
	if idx, ok := env.keyIndex[sqlparse.ExprString(e)]; ok {
		return &Col{Idx: idx, Name: fmt.Sprintf("group%d", idx), T: env.keyTypes[idx]}, nil
	}
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if builtins.IsAggregate(x.Name) {
			return env.buildAggCall(x)
		}
		// Ordinary function over grouped/aggregated operands.
		fn, ok := builtins.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown function %q", x.Name)
		}
		args := make([]Expr, len(x.Args))
		argTypes := make([]types.T, len(x.Args))
		for i, a := range x.Args {
			arg, err := env.build(a)
			if err != nil {
				return nil, err
			}
			args[i] = arg
			argTypes[i] = arg.Type()
		}
		res, _, err := fn.Sig.Unify(argTypes)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", x.Name, err)
		}
		return &Call{Fn: fn, Args: args, T: res}, nil
	case *sqlparse.BinaryExpr:
		l, err := env.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := env.build(x.R)
		if err != nil {
			return nil, err
		}
		return buildBinary(x.Op, l, r)
	case *sqlparse.UnaryExpr:
		inner, err := env.build(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			if inner.Type().Base != types.Bool {
				return nil, fmt.Errorf("plan: NOT over %s", inner.Type())
			}
			return &Not{E: inner}, nil
		}
		t := inner.Type()
		if !t.IsNumericScalar() && !t.IsLinAlg() {
			return nil, fmt.Errorf("plan: cannot negate %s", t)
		}
		if t.Base == types.LabeledScalar {
			t = types.TDouble
		}
		return &Neg{E: inner, T: t}, nil
	case *sqlparse.ColRef:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate",
			qualified(x.Table, x.Column))
	default:
		// Literals carry no column references; compile them directly.
		return env.b.buildScalar(e, env.inScope)
	}
}

func (env *aggEnv) buildAggCall(x *sqlparse.FuncCall) (Expr, error) {
	spec, _ := builtins.LookupAgg(x.Name)
	key := sqlparse.ExprString(x)
	if idx, ok := env.callIdx[key]; ok {
		base := len(env.keyTypes)
		return &Col{Idx: base + idx, Name: fmt.Sprintf("agg%d", idx), T: env.calls[idx].T}, nil
	}
	var (
		input Expr
		inT   types.T
	)
	switch {
	case x.Star:
		if x.Name != "count" {
			return nil, fmt.Errorf("plan: %s(*) is only valid for COUNT", strings.ToUpper(x.Name))
		}
	case len(x.Args) != 1:
		return nil, fmt.Errorf("plan: aggregate %s takes exactly one argument", strings.ToUpper(x.Name))
	default:
		e, err := env.b.buildScalar(x.Args[0], env.inScope)
		if err != nil {
			return nil, err
		}
		input = e
		inT = e.Type()
	}
	resT, err := spec.ResultType(inT)
	if err != nil {
		return nil, fmt.Errorf("plan: %s", err)
	}
	idx := len(env.calls)
	env.calls = append(env.calls, AggCall{Spec: spec, Input: input, T: resT})
	env.callIdx[key] = idx
	base := len(env.keyTypes)
	return &Col{Idx: base + idx, Name: fmt.Sprintf("agg%d", idx), T: resT}, nil
}
