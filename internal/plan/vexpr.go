package plan

import (
	"fmt"

	"relalg/internal/builtins"
	"relalg/internal/value"
)

// BatchSource is the executor-side view of a column batch that EvalVec
// evaluates against: per-column access for the vectorized fast paths and
// per-row access for the scalar fallback. Columns returned by BatchCol are
// read-only and may be shared between expressions.
type BatchSource interface {
	// BatchLen is the number of lanes in the window (live and dead).
	BatchLen() int
	// BatchCol returns column idx of the window.
	BatchCol(idx int) (*value.Col, error)
	// BatchRow materializes lane i as a row for the scalar fallback.
	BatchRow(i int) value.Row
}

// EvalVec evaluates e over every lane of src named by sel (all lanes when sel
// is nil), returning a column with those lanes set; unselected lanes are
// unspecified. Typed fast paths cover column refs, constants, arithmetic,
// comparison, and logic over homogeneous columns; everything else degrades to
// element-at-a-time evaluation with exactly the row evaluator's semantics, so
// a successful query computes bit-identical values either way. The returned
// column is read-only and may alias src's storage (a bare column reference is
// passed through without copying).
func EvalVec(ec *EvalCtx, e Expr, src BatchSource, sel []int32) (*value.Col, error) {
	n := src.BatchLen()
	switch x := e.(type) {
	case *Col:
		if x.Idx < 0 {
			return nil, fmt.Errorf("plan: column index %d out of range", x.Idx)
		}
		return src.BatchCol(x.Idx)
	case *Const:
		out := &value.Col{}
		out.Fill(x.V, n)
		return out, nil
	case *Binary:
		lc, err := EvalVec(ec, x.L, src, sel)
		if err != nil {
			return nil, err
		}
		rc, err := EvalVec(ec, x.R, src, sel)
		if err != nil {
			return nil, err
		}
		return evalVecBinary(ec, x, lc, rc, n, sel)
	case *Not:
		inner, err := EvalVec(ec, x.E, src, sel)
		if err != nil {
			return nil, err
		}
		b := boolLanes(inner, n, sel, nil)
		out := &value.Col{Kind: value.KindBool, B: make([]bool, n)}
		builtins.VecNot(out.B, b, sel)
		return out, nil
	case *Neg:
		inner, err := EvalVec(ec, x.E, src, sel)
		if err != nil {
			return nil, err
		}
		return evalVecNeg(inner, n, sel)
	case *Call:
		args := make([]*value.Col, len(x.Args))
		for i, a := range x.Args {
			c, err := EvalVec(ec, a, src, sel)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		out := &value.Col{Generic: true, Any: make([]value.Value, n)}
		scratch := make([]value.Value, len(args))
		apply := func(i int) error {
			for j, c := range args {
				v := c.Value(i)
				if v.IsNull() {
					out.Any[i] = value.Null()
					return nil
				}
				scratch[j] = v
			}
			v, err := x.Fn.Eval(ec, scratch)
			if err != nil {
				return err
			}
			out.Any[i] = v
			return nil
		}
		if err := forLanes(n, sel, apply); err != nil {
			return nil, err
		}
		out.Specialize(n, sel)
		return out, nil
	}
	// Row-at-a-time fallback for anything else (e.g. unresolved subqueries):
	// evaluate the scalar tree per lane.
	out := &value.Col{Generic: true, Any: make([]value.Value, n)}
	err := forLanes(n, sel, func(i int) error {
		v, err := e.Eval(ec, src.BatchRow(i))
		if err != nil {
			return err
		}
		out.Any[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Specialize(n, sel)
	return out, nil
}

func forLanes(n int, sel []int32, f func(i int) error) error {
	if sel == nil {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range sel {
		if err := f(int(i)); err != nil {
			return err
		}
	}
	return nil
}

func evalVecBinary(ec *EvalCtx, b *Binary, lc, rc *value.Col, n int, sel []int32) (*value.Col, error) {
	switch b.Kind {
	case BinArith:
		if lc.Kind == value.KindInt && rc.Kind == value.KindInt && !lc.Generic && !rc.Generic {
			out := &value.Col{Kind: value.KindInt, I: make([]int64, n)}
			if err := builtins.VecArithInt(b.Op, out.I, lc.I, rc.I, sel); err != nil {
				return nil, err
			}
			return out, nil
		}
		if lc.IsNumeric() && rc.IsNumeric() {
			lf, _ := lc.AsFloats(nil, sel)
			rf, _ := rc.AsFloats(nil, sel)
			out := &value.Col{Kind: value.KindDouble, F: make([]float64, n)}
			if err := builtins.VecArithFloat(b.Op, out.F, lf, rf, sel); err != nil {
				return nil, err
			}
			return out, nil
		}
		out := &value.Col{Generic: true, Any: make([]value.Value, n)}
		err := forLanes(n, sel, func(i int) error {
			l, r := lc.Value(i), rc.Value(i)
			if l.IsNull() || r.IsNull() {
				out.Any[i] = value.Null()
				return nil
			}
			v, err := builtins.Arith(ec, b.Op, l, r)
			if err != nil {
				return err
			}
			out.Any[i] = v
			return nil
		})
		if err != nil {
			return nil, err
		}
		out.Specialize(n, sel)
		return out, nil
	case BinCompare:
		out := &value.Col{Kind: value.KindBool, B: make([]bool, n)}
		if lc.IsNumeric() && rc.IsNumeric() {
			lf, _ := lc.AsFloats(nil, sel)
			rf, _ := rc.AsFloats(nil, sel)
			if err := builtins.VecCmpFloat(b.Op, out.B, lf, rf, sel); err != nil {
				return nil, err
			}
			return out, nil
		}
		if !lc.Generic && !rc.Generic && lc.Kind == value.KindString && rc.Kind == value.KindString {
			if err := builtins.VecCmpString(b.Op, out.B, lc.S, rc.S, sel); err != nil {
				return nil, err
			}
			return out, nil
		}
		if !lc.Generic && !rc.Generic && lc.Kind == value.KindBool && rc.Kind == value.KindBool {
			if err := builtins.VecCmpBool(b.Op, out.B, lc.B, rc.B, sel); err != nil {
				return nil, err
			}
			return out, nil
		}
		err := forLanes(n, sel, func(i int) error {
			l, r := lc.Value(i), rc.Value(i)
			if l.IsNull() || r.IsNull() {
				out.B[i] = false
				return nil
			}
			v, err := builtins.Compare(b.Op, l, r)
			if err != nil {
				return err
			}
			out.B[i] = v.Kind == value.KindBool && v.B
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	case BinLogic:
		lb := boolLanes(lc, n, sel, nil)
		rb := boolLanes(rc, n, sel, nil)
		out := &value.Col{Kind: value.KindBool, B: make([]bool, n)}
		if err := builtins.VecLogic(b.Op, out.B, lb, rb, sel); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, fmt.Errorf("plan: unknown binary kind %d", b.Kind)
}

// boolLanes coerces a column to the two-valued truthiness the row evaluator
// applies to logic operands: true iff the lane is a BOOLEAN true.
func boolLanes(c *value.Col, n int, sel []int32, scratch []bool) []bool {
	if !c.Generic && c.Kind == value.KindBool {
		return c.B
	}
	if cap(scratch) < n {
		scratch = make([]bool, n)
	}
	scratch = scratch[:n]
	if !c.Generic {
		// Homogeneous non-boolean column: every lane coerces to false.
		for i := range scratch {
			scratch[i] = false
		}
		return scratch
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			v := c.Any[i]
			scratch[i] = v.Kind == value.KindBool && v.B
		}
	} else {
		for _, i := range sel {
			v := c.Any[i]
			scratch[i] = v.Kind == value.KindBool && v.B
		}
	}
	return scratch
}

func evalVecNeg(inner *value.Col, n int, sel []int32) (*value.Col, error) {
	if !inner.Generic {
		switch inner.Kind {
		case value.KindInt:
			out := &value.Col{Kind: value.KindInt, I: make([]int64, n)}
			if sel == nil {
				for i, x := range inner.I {
					out.I[i] = -x
				}
			} else {
				for _, i := range sel {
					out.I[i] = -inner.I[i]
				}
			}
			return out, nil
		case value.KindDouble, value.KindLabeledScalar:
			// Negating a labeled scalar drops the label, as Neg.Eval does.
			out := &value.Col{Kind: value.KindDouble, F: make([]float64, n)}
			if sel == nil {
				for i, x := range inner.F {
					out.F[i] = -x
				}
			} else {
				for _, i := range sel {
					out.F[i] = -inner.F[i]
				}
			}
			return out, nil
		}
	}
	out := &value.Col{Generic: true, Any: make([]value.Value, n)}
	err := forLanes(n, sel, func(i int) error {
		v := inner.Value(i)
		if v.IsNull() {
			out.Any[i] = value.Null()
			return nil
		}
		switch v.Kind {
		case value.KindInt:
			out.Any[i] = value.Int(-v.I)
		case value.KindDouble, value.KindLabeledScalar:
			out.Any[i] = value.Double(-v.D)
		case value.KindVector:
			out.Any[i] = value.Vector(v.Vec.Scale(-1))
		case value.KindMatrix:
			out.Any[i] = value.Matrix(v.Mat.Scale(-1))
		default:
			return fmt.Errorf("plan: cannot negate %s", v.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Specialize(n, sel)
	return out, nil
}
