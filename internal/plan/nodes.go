package plan

import (
	"strings"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/types"
)

// Field is one output column of a plan node.
type Field struct {
	Name string
	T    types.T
}

// Schema is the ordered output columns of a plan node.
type Schema []Field

// Types returns the column types.
func (s Schema) Types() []types.T {
	out := make([]types.T, len(s))
	for i, f := range s {
		out[i] = f.T
	}
	return out
}

func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + " " + f.T.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Node is a logical plan operator.
type Node interface {
	Schema() Schema
	Children() []Node
}

// Scan reads a stored table.
type Scan struct {
	Table *catalog.TableMeta
	Alias string
	Out   Schema
}

// Schema implements Node.
func (s *Scan) Schema() Schema { return s.Out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Project computes expressions over its input.
type Project struct {
	Input Node
	Exprs []Expr
	Out   Schema
}

// Schema implements Node.
func (p *Project) Schema() Schema { return p.Out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Filter keeps rows whose predicate evaluates to TRUE.
type Filter struct {
	Input Node
	Pred  Expr
}

// Schema implements Node.
func (f *Filter) Schema() Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// MultiJoin is the pre-optimization join set: the cross product of Inputs
// filtered by the conjuncts, whose column indexes refer to the concatenation
// of the inputs' schemas in order. The optimizer replaces it with a tree of
// Join/Cross/Filter nodes.
type MultiJoin struct {
	Inputs    []Node
	Conjuncts []Expr
	Out       Schema
}

// Schema implements Node.
func (m *MultiJoin) Schema() Schema { return m.Out }

// Children implements Node.
func (m *MultiJoin) Children() []Node { return m.Inputs }

// Join is a hash equi-join on LKeys[i] == RKeys[i], where the keys are
// expressions over the respective side's schema (so predicates like
// x.id/1000 = ind.mi hash-join too). Residual conjuncts are evaluated over
// the concatenated output.
type Join struct {
	L, R     Node
	LKeys    []Expr // over L's schema
	RKeys    []Expr // over R's schema
	Residual []Expr
	Out      Schema
}

// Schema implements Node.
func (j *Join) Schema() Schema { return j.Out }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// Cross is a cross product with optional residual conjuncts (non-equi join
// predicates).
type Cross struct {
	L, R     Node
	Residual []Expr
	Out      Schema
}

// Schema implements Node.
func (c *Cross) Schema() Schema { return c.Out }

// Children implements Node.
func (c *Cross) Children() []Node { return []Node{c.L, c.R} }

// FuseKind is the optimizer's decision about fused accumulation for one
// aggregate call. The zero value (FuseAuto) leaves the choice to the
// executor's pattern matching, which keeps hand-built plans and plans from a
// rewrites-disabled optimizer behaving exactly as before the decision moved
// into the optimizer.
type FuseKind uint8

// Fuse decisions.
const (
	FuseAuto      FuseKind = iota // executor pattern-matches (legacy behaviour)
	FuseNone                      // optimizer determined no fusion applies
	FuseOuterSum                  // accumulate SUM(outer_product(x, y)) in place
	FuseMatMulSum                 // accumulate SUM(matrix_multiply(a, b)) in place
)

// AggCall is one aggregate in an Agg node. Input is nil for COUNT(*).
type AggCall struct {
	Spec  *builtins.AggSpec
	Input Expr
	T     types.T
	// Fuse records the optimizer's fused-accumulation decision; see FuseKind.
	Fuse FuseKind
}

// Agg groups by the GroupBy expressions and computes the aggregate calls.
// Its output schema is the group expressions followed by the aggregates.
type Agg struct {
	Input   Node
	GroupBy []Expr
	Aggs    []AggCall
	Out     Schema
}

// Schema implements Node.
func (a *Agg) Schema() Schema { return a.Out }

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Input} }

// Bound wraps a subtree whose result the executor has already materialized
// during adaptive re-optimization: Rows is the observed cardinality. The
// optimizer treats a Bound node as an opaque leaf with an exact row estimate
// and never rewrites below it; the executor resolves it to the cached
// relation of the wrapped node.
type Bound struct {
	Input Node
	Rows  float64
	Out   Schema
}

// Schema implements Node.
func (b *Bound) Schema() Schema { return b.Out }

// Children implements Node.
func (b *Bound) Children() []Node { return []Node{b.Input} }

// OrderKey is one sort key over the node's output columns.
type OrderKey struct {
	Col  int
	Desc bool
}

// Sort orders rows; it gathers to a single partition.
type Sort struct {
	Input Node
	Keys  []OrderKey
}

// Schema implements Node.
func (s *Sort) Schema() Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }
