package plan

import (
	"fmt"
	"strings"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
	"relalg/internal/value"
)

// Builder turns parsed SELECT statements into logical plans, resolving names
// against a catalog and type-checking every expression (including dimension
// propagation through the templated built-in signatures).
type Builder struct {
	cat *catalog.Catalog
}

// NewBuilder returns a Builder over the catalog.
func NewBuilder(cat *catalog.Catalog) *Builder { return &Builder{cat: cat} }

// scopeCol is one visible column during name resolution.
type scopeCol struct {
	alias string // FROM-item alias (empty for derived output scopes)
	name  string
	t     types.T
}

type scope struct {
	cols []scopeCol
}

func (s *scope) resolve(table, col string) (int, types.T, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != col {
			continue
		}
		if table != "" && c.alias != table {
			continue
		}
		if found >= 0 {
			return 0, types.T{}, fmt.Errorf("plan: ambiguous column reference %q", qualified(table, col))
		}
		found = i
	}
	if found < 0 {
		return 0, types.T{}, fmt.Errorf("plan: unknown column %q", qualified(table, col))
	}
	return found, s.cols[found].t, nil
}

func qualified(table, col string) string {
	if table == "" {
		return col
	}
	return table + "." + col
}

// BuildSelect compiles a SELECT into a logical plan.
func (b *Builder) BuildSelect(sel *sqlparse.Select) (Node, error) {
	n, _, err := b.buildSelect(sel)
	return n, err
}

// buildSelect returns the plan and its output scope (for views/subqueries).
func (b *Builder) buildSelect(sel *sqlparse.Select) (Node, *scope, error) {
	input, inScope, err := b.buildFrom(sel.From)
	if err != nil {
		return nil, nil, err
	}

	// WHERE: either conjuncts of a MultiJoin (several FROM items) or a
	// Filter (single input).
	var conjuncts []Expr
	if sel.Where != nil {
		for _, c := range splitConjuncts(sel.Where) {
			e, err := b.buildScalar(c, inScope)
			if err != nil {
				return nil, nil, err
			}
			if e.Type().Base != types.Bool {
				return nil, nil, fmt.Errorf("plan: WHERE clause %s is %s, want BOOLEAN", e, e.Type())
			}
			conjuncts = append(conjuncts, e)
		}
	}
	if mj, ok := input.(*MultiJoin); ok {
		mj.Conjuncts = conjuncts
	} else if len(conjuncts) > 0 {
		for _, c := range conjuncts {
			input = &Filter{Input: input, Pred: c}
		}
	}

	// Does the query aggregate?
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var (
		projExprs  []Expr
		projNames  []string
		projInput  Node
		outScope   *scope
		orderBuild func(sqlparse.Expr) (Expr, error)
	)
	if hasAgg {
		projInput, projExprs, projNames, outScope, orderBuild, err = b.buildAggregate(sel, input, inScope)
		if err != nil {
			return nil, nil, err
		}
	} else {
		projExprs, projNames, err = b.buildPlainItems(sel.Items, inScope)
		if err != nil {
			return nil, nil, err
		}
		projInput = input
		outScope = &scope{}
		for i, name := range projNames {
			outScope.cols = append(outScope.cols, scopeCol{name: name, t: projExprs[i].Type()})
		}
		orderBuild = func(e sqlparse.Expr) (Expr, error) { return b.buildScalar(e, inScope) }
	}

	// ORDER BY: build each key; reuse a projection column when the key
	// matches one, otherwise append it as a hidden column dropped at the end.
	var keys []OrderKey
	hidden := 0
	if len(sel.OrderBy) > 0 {
		for _, item := range sel.OrderBy {
			e, err := b.buildOrderKey(item.Expr, orderBuild, projExprs, projNames)
			if err != nil {
				return nil, nil, err
			}
			idx := -1
			for i, pe := range projExprs {
				if pe.String() == e.String() {
					idx = i
					break
				}
			}
			if idx < 0 {
				idx = len(projExprs)
				projExprs = append(projExprs, e)
				projNames = append(projNames, fmt.Sprintf("$order%d", hidden))
				hidden++
			}
			keys = append(keys, OrderKey{Col: idx, Desc: item.Desc})
		}
	}

	out := make(Schema, len(projExprs))
	for i := range projExprs {
		out[i] = Field{Name: projNames[i], T: projExprs[i].Type()}
	}
	var node Node = &Project{Input: projInput, Exprs: projExprs, Out: out}

	if len(keys) > 0 {
		node = &Sort{Input: node, Keys: keys}
	}
	if sel.Limit >= 0 {
		node = &Limit{Input: node, N: sel.Limit}
	}
	if hidden > 0 {
		// Drop the hidden order-key columns.
		visible := len(projExprs) - hidden
		exprs := make([]Expr, visible)
		outs := make(Schema, visible)
		for i := 0; i < visible; i++ {
			exprs[i] = &Col{Idx: i, Name: projNames[i], T: projExprs[i].Type()}
			outs[i] = Field{Name: projNames[i], T: projExprs[i].Type()}
		}
		node = &Project{Input: node, Exprs: exprs, Out: outs}
	}
	return node, outScope, nil
}

// buildFrom assembles the FROM list into a single input node plus the scope
// of visible columns. Multiple items become a MultiJoin for the optimizer.
func (b *Builder) buildFrom(refs []sqlparse.TableRef) (Node, *scope, error) {
	if len(refs) == 0 {
		return &OneRow{}, &scope{}, nil
	}
	var (
		nodes []Node
		sc    = &scope{}
	)
	seen := map[string]bool{}
	for _, ref := range refs {
		n, cols, err := b.buildFromItem(ref)
		if err != nil {
			return nil, nil, err
		}
		if seen[ref.Alias] {
			return nil, nil, fmt.Errorf("plan: duplicate table alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		nodes = append(nodes, n)
		sc.cols = append(sc.cols, cols...)
	}
	if len(nodes) == 1 {
		return nodes[0], sc, nil
	}
	out := make(Schema, len(sc.cols))
	for i, c := range sc.cols {
		out[i] = Field{Name: c.name, T: c.t}
	}
	return &MultiJoin{Inputs: nodes, Out: out}, sc, nil
}

func (b *Builder) buildFromItem(ref sqlparse.TableRef) (Node, []scopeCol, error) {
	if ref.Subquery != nil {
		n, sub, err := b.buildSelect(ref.Subquery)
		if err != nil {
			return nil, nil, err
		}
		cols := make([]scopeCol, len(sub.cols))
		for i, c := range sub.cols {
			cols[i] = scopeCol{alias: ref.Alias, name: c.name, t: c.t}
		}
		return n, cols, nil
	}
	// A view?
	if v, ok := b.cat.View(ref.Table); ok {
		n, sub, err := b.buildSelect(v.Query)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: expanding view %q: %w", v.Name, err)
		}
		if len(v.Cols) > 0 && len(v.Cols) != len(sub.cols) {
			return nil, nil, fmt.Errorf("plan: view %q declares %d columns but its query produces %d",
				v.Name, len(v.Cols), len(sub.cols))
		}
		cols := make([]scopeCol, len(sub.cols))
		for i, c := range sub.cols {
			name := c.name
			if len(v.Cols) > 0 {
				name = v.Cols[i]
			}
			cols[i] = scopeCol{alias: ref.Alias, name: name, t: c.t}
		}
		return n, cols, nil
	}
	meta, ok := b.cat.Table(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("plan: unknown table or view %q", ref.Table)
	}
	out := make(Schema, meta.Schema.Arity())
	cols := make([]scopeCol, meta.Schema.Arity())
	for i, c := range meta.Schema.Cols {
		out[i] = Field{Name: c.Name, T: c.Type}
		cols[i] = scopeCol{alias: ref.Alias, name: c.Name, t: c.Type}
	}
	return &Scan{Table: meta, Alias: ref.Alias, Out: out}, cols, nil
}

// BuildValueExpr compiles an expression with no column references (INSERT
// ... VALUES literals and constant expressions).
func (b *Builder) BuildValueExpr(e sqlparse.Expr) (Expr, error) {
	return b.buildScalar(e, &scope{})
}

// buildOrderKey compiles one ORDER BY key. A bare integer literal k refers
// to output column k (1-based); an unqualified name matching exactly one
// output alias refers to that column; anything else is compiled in the
// query's projection environment.
func (b *Builder) buildOrderKey(e sqlparse.Expr, build func(sqlparse.Expr) (Expr, error), projExprs []Expr, projNames []string) (Expr, error) {
	if lit, ok := e.(*sqlparse.IntLit); ok {
		k := int(lit.V)
		if k < 1 || k > len(projExprs) {
			return nil, fmt.Errorf("plan: ORDER BY position %d out of range 1..%d", k, len(projExprs))
		}
		return projExprs[k-1], nil
	}
	if cr, ok := e.(*sqlparse.ColRef); ok && cr.Table == "" {
		match := -1
		for i, n := range projNames {
			if n == cr.Column {
				if match >= 0 {
					match = -2
					break
				}
				match = i
			}
		}
		if match >= 0 {
			return projExprs[match], nil
		}
	}
	return build(e)
}

// buildPlainItems compiles non-aggregating select items.
func (b *Builder) buildPlainItems(items []sqlparse.SelectItem, sc *scope) ([]Expr, []string, error) {
	var exprs []Expr
	var names []string
	for i, item := range items {
		if item.Star {
			for idx, c := range sc.cols {
				exprs = append(exprs, &Col{Idx: idx, Name: c.name, T: c.t})
				names = append(names, c.name)
			}
			continue
		}
		e, err := b.buildScalar(item.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(item, i))
	}
	return exprs, names, nil
}

func itemName(item sqlparse.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparse.ColRef:
		return e.Column
	case *sqlparse.FuncCall:
		return e.Name
	}
	return fmt.Sprintf("col%d", i)
}

// buildScalar compiles an expression with no aggregates allowed.
func (b *Builder) buildScalar(e sqlparse.Expr, sc *scope) (Expr, error) {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		idx, t, err := sc.resolve(x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		return &Col{Idx: idx, Name: x.Column, T: t}, nil
	case *sqlparse.IntLit:
		return &Const{V: value.Int(x.V), T: types.TInt}, nil
	case *sqlparse.DoubleLit:
		return &Const{V: value.Double(x.V), T: types.TDouble}, nil
	case *sqlparse.StringLit:
		return &Const{V: value.String_(x.V), T: types.TString}, nil
	case *sqlparse.BoolLit:
		return &Const{V: value.Bool(x.V), T: types.TBool}, nil
	case *sqlparse.NullLit:
		return &Const{V: value.Null(), T: types.TAny}, nil
	case *sqlparse.UnaryExpr:
		inner, err := b.buildScalar(x.E, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			if inner.Type().Base != types.Bool {
				return nil, fmt.Errorf("plan: NOT over %s", inner.Type())
			}
			return &Not{E: inner}, nil
		}
		t := inner.Type()
		if !t.IsNumericScalar() && !t.IsLinAlg() {
			return nil, fmt.Errorf("plan: cannot negate %s", t)
		}
		if t.Base == types.LabeledScalar {
			t = types.TDouble
		}
		return &Neg{E: inner, T: t}, nil
	case *sqlparse.BinaryExpr:
		l, err := b.buildScalar(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.buildScalar(x.R, sc)
		if err != nil {
			return nil, err
		}
		return buildBinary(x.Op, l, r)
	case *sqlparse.SubqueryExpr:
		sub, subScope, err := b.buildSelect(x.Query)
		if err != nil {
			return nil, fmt.Errorf("plan: scalar subquery: %w", err)
		}
		if len(subScope.cols) != 1 {
			return nil, fmt.Errorf("plan: scalar subquery must produce one column, got %d", len(subScope.cols))
		}
		return &ScalarSubquery{Plan: sub, T: subScope.cols[0].t}, nil
	case *sqlparse.FuncCall:
		if builtins.IsAggregate(x.Name) {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", strings.ToUpper(x.Name))
		}
		fn, ok := builtins.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown function %q", x.Name)
		}
		args := make([]Expr, len(x.Args))
		argTypes := make([]types.T, len(x.Args))
		for i, a := range x.Args {
			arg, err := b.buildScalar(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = arg
			argTypes[i] = arg.Type()
		}
		res, _, err := fn.Sig.Unify(argTypes)
		if err != nil {
			return nil, fmt.Errorf("plan: %s%s: %w", x.Name, typeList(argTypes), err)
		}
		return &Call{Fn: fn, Args: args, T: res}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", e)
}

func typeList(ts []types.T) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func buildBinary(op string, l, r Expr) (Expr, error) {
	switch op {
	case "+", "-", "*", "/":
		t, err := builtins.ArithType(op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, Kind: BinArith, L: l, R: r, T: t}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		t, err := builtins.CompareType(op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, Kind: BinCompare, L: l, R: r, T: t}, nil
	case "AND", "OR":
		if l.Type().Base != types.Bool || r.Type().Base != types.Bool {
			return nil, fmt.Errorf("plan: %s over %s and %s", op, l.Type(), r.Type())
		}
		return &Binary{Op: op, Kind: BinLogic, L: l, R: r, T: types.TBool}, nil
	}
	return nil, fmt.Errorf("plan: unknown operator %q", op)
}

func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sqlparse.Expr{e}
}

func containsAggregate(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if builtins.IsAggregate(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sqlparse.BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *sqlparse.UnaryExpr:
		return containsAggregate(x.E)
	}
	return false
}

// OneRow produces a single empty row; it is the input for SELECT without
// FROM.
type OneRow struct{}

// Schema implements Node.
func (*OneRow) Schema() Schema { return Schema{} }

// Children implements Node.
func (*OneRow) Children() []Node { return nil }
