package plan

import (
	"strings"
	"testing"

	"relalg/internal/catalog"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
	"relalg/internal/value"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mustCreate := func(name string, cols ...catalog.Column) {
		t.Helper()
		if err := cat.CreateTable(&catalog.TableMeta{Name: name, Schema: catalog.Schema{Cols: cols}}); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("y",
		catalog.Column{Name: "i", Type: types.TInt},
		catalog.Column{Name: "y_i", Type: types.TDouble})
	mustCreate("x_vm",
		catalog.Column{Name: "id", Type: types.TInt},
		catalog.Column{Name: "value", Type: types.TVector(types.UnknownDim)})
	mustCreate("m",
		catalog.Column{Name: "mat", Type: types.TMatrix(types.KnownDim(10), types.KnownDim(10))},
		catalog.Column{Name: "vec", Type: types.TVector(types.KnownDim(100))})
	mustCreate("m2",
		catalog.Column{Name: "mat", Type: types.TMatrix(types.KnownDim(10), types.KnownDim(10))},
		catalog.Column{Name: "vec", Type: types.TVector(types.KnownDim(10))})
	mustCreate("u", catalog.Column{Name: "u_matrix", Type: types.TMatrix(types.KnownDim(1000), types.KnownDim(100))})
	mustCreate("v", catalog.Column{Name: "v_matrix", Type: types.TMatrix(types.KnownDim(100), types.KnownDim(10000))})
	mustCreate("xt",
		catalog.Column{Name: "row_index", Type: types.TInt},
		catalog.Column{Name: "col_index", Type: types.TInt},
		catalog.Column{Name: "value", Type: types.TDouble})
	return cat
}

func buildQuery(t *testing.T, cat *catalog.Catalog, src string) Node {
	t.Helper()
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n, err := NewBuilder(cat).BuildSelect(stmt.(*sqlparse.Select))
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	return n
}

func buildErr(t *testing.T, cat *catalog.Catalog, src string) error {
	t.Helper()
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = NewBuilder(cat).BuildSelect(stmt.(*sqlparse.Select))
	if err == nil {
		t.Fatalf("build %q succeeded, want error", src)
	}
	return err
}

func TestBuildSimpleProjection(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT i, y_i AS val FROM y")
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("root is %T", n)
	}
	if got := p.Schema().String(); got != "(i INTEGER, val DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
	if _, ok := p.Input.(*Scan); !ok {
		t.Fatalf("input is %T", p.Input)
	}
}

func TestBuildSelectStar(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT * FROM y")
	if got := n.Schema().String(); got != "(i INTEGER, y_i DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
}

func TestBuildWhereBecomesFilter(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT i FROM y WHERE y_i > 1 AND i < 5")
	p := n.(*Project)
	// Two conjuncts stack as two filters over the scan.
	f1, ok := p.Input.(*Filter)
	if !ok {
		t.Fatalf("input is %T", p.Input)
	}
	if _, ok := f1.Input.(*Filter); !ok {
		t.Fatalf("inner is %T", f1.Input)
	}
}

func TestBuildMultiJoin(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, `SELECT x1.value FROM x_vm AS x1, x_vm AS x2, y WHERE x1.id = x2.id AND x2.id = y.i`)
	p := n.(*Project)
	mj, ok := p.Input.(*MultiJoin)
	if !ok {
		t.Fatalf("input is %T", p.Input)
	}
	if len(mj.Inputs) != 3 || len(mj.Conjuncts) != 2 {
		t.Fatalf("multijoin %d inputs %d conjuncts", len(mj.Inputs), len(mj.Conjuncts))
	}
	// Conjunct columns refer to the concatenated schema (x1: 0-1, x2: 2-3, y: 4-5).
	used := ColsUsed(mj.Conjuncts[0])
	if len(used) != 2 || used[0] != 0 || used[1] != 2 {
		t.Fatalf("conjunct 0 uses %v", used)
	}
}

func TestBuildDimensionInference(t *testing.T) {
	cat := testCatalog(t)
	// The paper's §4.2 example: output must be MATRIX[1000][10000].
	n := buildQuery(t, cat, "SELECT matrix_multiply(u_matrix, v_matrix) AS p FROM u, v")
	f := n.Schema()[0]
	if f.T.String() != "MATRIX[1000][10000]" {
		t.Fatalf("inferred type %s", f.T)
	}
}

func TestBuildShapeMismatchCompileError(t *testing.T) {
	cat := testCatalog(t)
	// The paper's §3.1 example: MATRIX[10][10] times VECTOR[100] must fail.
	err := buildErr(t, cat, "SELECT matrix_vector_multiply(m.mat, m.vec) AS res FROM m")
	if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("error %v", err)
	}
	// And with VECTOR[10] it compiles to VECTOR[10].
	n := buildQuery(t, cat, "SELECT matrix_vector_multiply(m2.mat, m2.vec) AS res FROM m2")
	if got := n.Schema()[0].T.String(); got != "VECTOR[10]" {
		t.Fatalf("result type %s", got)
	}
}

func TestBuildVectorArithmetic(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT x1.value - x2.value AS d FROM x_vm AS x1, x_vm AS x2")
	if got := n.Schema()[0].T.String(); got != "VECTOR[]" {
		t.Fatalf("difference type %s", got)
	}
	// Scalar*vector broadcast.
	n = buildQuery(t, cat, "SELECT value * 2 AS d FROM x_vm")
	if got := n.Schema()[0].T.String(); got != "VECTOR[]" {
		t.Fatalf("broadcast type %s", got)
	}
}

func TestBuildAggregateGram(t *testing.T) {
	cat := testCatalog(t)
	// Vector-based Gram matrix (paper, experiments).
	n := buildQuery(t, cat, "SELECT SUM(outer_product(x.value, x.value)) FROM x_vm AS x")
	p := n.(*Project)
	agg, ok := p.Input.(*Agg)
	if !ok {
		t.Fatalf("input is %T", p.Input)
	}
	if len(agg.GroupBy) != 0 || len(agg.Aggs) != 1 {
		t.Fatalf("agg %d groups %d calls", len(agg.GroupBy), len(agg.Aggs))
	}
	if agg.Aggs[0].Spec.Name != "sum" {
		t.Fatalf("agg spec %s", agg.Aggs[0].Spec.Name)
	}
	if got := n.Schema()[0].T.String(); got != "MATRIX[][]" {
		t.Fatalf("gram type %s", got)
	}
}

func TestBuildTupleGramGrouping(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, `SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
		FROM xt AS x1, xt AS x2
		WHERE x1.row_index = x2.row_index
		GROUP BY x1.col_index, x2.col_index`)
	p := n.(*Project)
	agg := p.Input.(*Agg)
	if len(agg.GroupBy) != 2 || len(agg.Aggs) != 1 {
		t.Fatalf("agg shape %d/%d", len(agg.GroupBy), len(agg.Aggs))
	}
	if got := n.Schema().String(); got != "(col_index INTEGER, col_index INTEGER, sum DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
}

func TestBuildAggregateDedup(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT SUM(y_i), SUM(y_i) + 1 AS plus FROM y")
	agg := n.(*Project).Input.(*Agg)
	if len(agg.Aggs) != 1 {
		t.Fatalf("aggregate deduplication failed: %d calls", len(agg.Aggs))
	}
}

func TestBuildCountStar(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT COUNT(*) FROM y")
	agg := n.(*Project).Input.(*Agg)
	if agg.Aggs[0].Input != nil {
		t.Fatal("COUNT(*) should have nil input")
	}
	if n.Schema()[0].T != types.TInt {
		t.Fatalf("count type %v", n.Schema()[0].T)
	}
}

func TestBuildGroupByValidation(t *testing.T) {
	cat := testCatalog(t)
	// Naked column not in GROUP BY.
	buildErr(t, cat, "SELECT i, SUM(y_i) FROM y GROUP BY y_i")
	// SELECT * with grouping.
	buildErr(t, cat, "SELECT * FROM y GROUP BY i")
	// Aggregate of aggregate.
	buildErr(t, cat, "SELECT SUM(COUNT(*)) FROM y")
	// Aggregate in WHERE.
	buildErr(t, cat, "SELECT i FROM y WHERE SUM(y_i) > 0")
}

func TestBuildHaving(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT i, SUM(y_i) FROM y GROUP BY i HAVING SUM(y_i) > 10")
	p := n.(*Project)
	f, ok := p.Input.(*Filter)
	if !ok {
		t.Fatalf("input is %T, want Filter(Agg)", p.Input)
	}
	if _, ok := f.Input.(*Agg); !ok {
		t.Fatalf("filter input is %T", f.Input)
	}
}

func TestBuildVectorizeQuery(t *testing.T) {
	cat := testCatalog(t)
	// Paper §3.3.
	n := buildQuery(t, cat, "SELECT VECTORIZE(label_scalar(y_i, i)) AS v FROM y")
	if got := n.Schema()[0].T.String(); got != "VECTOR[]" {
		t.Fatalf("vectorize type %s", got)
	}
}

func TestBuildViewExpansion(t *testing.T) {
	cat := testCatalog(t)
	stmt, _ := sqlparse.Parse(`CREATE VIEW vecs (vec, r) AS
		SELECT VECTORIZE(label_scalar(value, col_index)) AS vec, row_index
		FROM xt GROUP BY row_index`)
	cv := stmt.(*sqlparse.CreateView)
	if err := cat.CreateView(&catalog.ViewMeta{Name: cv.Name, Cols: cv.Cols, Query: cv.Query}); err != nil {
		t.Fatal(err)
	}
	n := buildQuery(t, cat, "SELECT ROWMATRIX(label_vector(vec, r)) AS m FROM vecs")
	if got := n.Schema()[0].T.String(); got != "MATRIX[][]" {
		t.Fatalf("rowmatrix type %s", got)
	}
	// View column mismatch errors.
	if err := cat.CreateView(&catalog.ViewMeta{Name: "badv", Cols: []string{"only_one"}, Query: cv.Query}); err != nil {
		t.Fatal(err)
	}
	buildErr(t, cat, "SELECT only_one FROM badv")
}

func TestBuildSubquery(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, `SELECT s.total FROM (SELECT SUM(y_i) AS total FROM y) AS s`)
	if got := n.Schema().String(); got != "(total DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
}

func TestBuildNameResolutionErrors(t *testing.T) {
	cat := testCatalog(t)
	buildErr(t, cat, "SELECT nosuch FROM y")
	buildErr(t, cat, "SELECT y.nosuch FROM y")
	buildErr(t, cat, "SELECT i FROM nosuchtable")
	// Ambiguous unqualified reference.
	buildErr(t, cat, "SELECT id FROM x_vm AS a, x_vm AS b")
	// Duplicate alias.
	buildErr(t, cat, "SELECT 1 FROM y AS a, x_vm AS a")
	// WHERE must be boolean.
	buildErr(t, cat, "SELECT i FROM y WHERE i + 1")
	// Unknown function.
	buildErr(t, cat, "SELECT frobnicate(i) FROM y")
}

func TestBuildOrderByAndLimit(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT i, y_i FROM y ORDER BY y_i DESC, 1 LIMIT 3")
	lim, ok := n.(*Limit)
	if !ok {
		t.Fatalf("root %T", n)
	}
	srt, ok := lim.Input.(*Sort)
	if !ok {
		t.Fatalf("limit input %T", lim.Input)
	}
	if len(srt.Keys) != 2 || !srt.Keys[0].Desc || srt.Keys[0].Col != 1 || srt.Keys[1].Col != 0 {
		t.Fatalf("keys %+v", srt.Keys)
	}
	// ORDER BY a non-projected expression appends a hidden column and strips it.
	n = buildQuery(t, cat, "SELECT i FROM y ORDER BY y_i")
	if got := n.Schema().String(); got != "(i INTEGER)" {
		t.Fatalf("schema with hidden order key: %s", got)
	}
	buildErr(t, cat, "SELECT i FROM y ORDER BY 5")
}

func TestBuildNoFrom(t *testing.T) {
	cat := testCatalog(t)
	n := buildQuery(t, cat, "SELECT 1 + 2 AS three")
	p := n.(*Project)
	if _, ok := p.Input.(*OneRow); !ok {
		t.Fatalf("input %T", p.Input)
	}
	v, err := p.Exprs[0].Eval(nil, value.Row{})
	if err != nil || !v.Equal(value.Int(3)) {
		t.Fatalf("eval %v %v", v, err)
	}
}

func TestBuildIntegerDivisionBlocking(t *testing.T) {
	cat := testCatalog(t)
	// The paper's blocking predicate: x.id/1000 = ind.mi (integer division).
	n := buildQuery(t, cat, "SELECT id/1000 AS blk FROM x_vm")
	if n.Schema()[0].T != types.TInt {
		t.Fatalf("blk type %v", n.Schema()[0].T)
	}
}
