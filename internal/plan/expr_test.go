package plan

import (
	"strings"
	"testing"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

func intCol(i int) *Col { return &Col{Idx: i, Name: "c", T: types.TInt} }
func boolConst(b bool) *Const {
	return &Const{V: value.Bool(b), T: types.TBool}
}

func evalOn(t *testing.T, e Expr, row value.Row) value.Value {
	t.Helper()
	v, err := e.Eval(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestColEval(t *testing.T) {
	row := value.Row{value.Int(7), value.String_("x")}
	if v := evalOn(t, intCol(0), row); v.I != 7 {
		t.Fatalf("col eval %v", v)
	}
	if _, err := intCol(5).Eval(nil, row); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if intCol(0).Type() != types.TInt {
		t.Fatal("type lost")
	}
}

func TestBinaryArithNullPropagation(t *testing.T) {
	e := &Binary{Op: "+", Kind: BinArith, L: intCol(0), R: intCol(1), T: types.TInt}
	v := evalOn(t, e, value.Row{value.Int(1), value.Null()})
	if !v.IsNull() {
		t.Fatalf("1 + NULL = %v, want NULL", v)
	}
	v = evalOn(t, e, value.Row{value.Int(1), value.Int(2)})
	if v.I != 3 {
		t.Fatalf("1 + 2 = %v", v)
	}
}

func TestBinaryCompareNullIsFalse(t *testing.T) {
	e := &Binary{Op: "=", Kind: BinCompare, L: intCol(0), R: intCol(1), T: types.TBool}
	v := evalOn(t, e, value.Row{value.Int(1), value.Null()})
	if v.Kind != value.KindBool || v.B {
		t.Fatalf("1 = NULL evaluated to %v, want FALSE", v)
	}
}

func TestBinaryLogic(t *testing.T) {
	and := &Binary{Op: "AND", Kind: BinLogic, L: boolConst(true), R: boolConst(false), T: types.TBool}
	if v := evalOn(t, and, nil); v.B {
		t.Fatal("true AND false")
	}
	or := &Binary{Op: "OR", Kind: BinLogic, L: boolConst(true), R: boolConst(false), T: types.TBool}
	if v := evalOn(t, or, nil); !v.B {
		t.Fatal("true OR false")
	}
	// NULL behaves as FALSE in logic.
	nullOr := &Binary{Op: "OR", Kind: BinLogic, L: &Const{V: value.Null(), T: types.TBool}, R: boolConst(true), T: types.TBool}
	if v := evalOn(t, nullOr, nil); !v.B {
		t.Fatal("NULL OR true")
	}
}

func TestNotAndNeg(t *testing.T) {
	if v := evalOn(t, &Not{E: boolConst(false)}, nil); !v.B {
		t.Fatal("NOT false")
	}
	neg := &Neg{E: intCol(0), T: types.TInt}
	if v := evalOn(t, neg, value.Row{value.Int(5)}); v.I != -5 {
		t.Fatalf("-5 = %v", v)
	}
	negd := &Neg{E: &Col{Idx: 0, T: types.TDouble}, T: types.TDouble}
	if v := evalOn(t, negd, value.Row{value.Double(2.5)}); v.D != -2.5 {
		t.Fatalf("-2.5 = %v", v)
	}
	negv := &Neg{E: &Col{Idx: 0, T: types.TVector(types.UnknownDim)}, T: types.TVector(types.UnknownDim)}
	if v := evalOn(t, negv, value.Row{value.Vector(linalg.VectorOf(1, -2))}); !v.Vec.Equal(linalg.VectorOf(-1, 2)) {
		t.Fatalf("-vec = %v", v)
	}
	negm := &Neg{E: &Col{Idx: 0, T: types.TMatrix(types.UnknownDim, types.UnknownDim)}, T: types.TMatrix(types.UnknownDim, types.UnknownDim)}
	if v := evalOn(t, negm, value.Row{value.Matrix(linalg.Identity(2))}); v.Mat.At(0, 0) != -1 {
		t.Fatalf("-mat = %v", v)
	}
	// Negating NULL stays NULL.
	if v := evalOn(t, neg, value.Row{value.Null()}); !v.IsNull() {
		t.Fatalf("-NULL = %v", v)
	}
	// Negating a string is a runtime error.
	if _, err := (&Neg{E: &Col{Idx: 0, T: types.TString}, T: types.TDouble}).Eval(nil, value.Row{value.String_("x")}); err == nil {
		t.Fatal("negated a string")
	}
}

func TestCallEvalAndNullShortCircuit(t *testing.T) {
	fn, _ := builtins.Lookup("sqrt")
	call := &Call{Fn: fn, Args: []Expr{&Col{Idx: 0, T: types.TDouble}}, T: types.TDouble}
	if v := evalOn(t, call, value.Row{value.Double(9)}); v.D != 3 {
		t.Fatalf("sqrt(9) = %v", v)
	}
	if v := evalOn(t, call, value.Row{value.Null()}); !v.IsNull() {
		t.Fatalf("sqrt(NULL) = %v, want NULL", v)
	}
}

func TestColsUsedAndRemap(t *testing.T) {
	fn, _ := builtins.Lookup("pow")
	e := &Binary{
		Op: "+", Kind: BinArith, T: types.TDouble,
		L: &Call{Fn: fn, Args: []Expr{&Col{Idx: 3, T: types.TDouble}, &Col{Idx: 1, T: types.TDouble}}, T: types.TDouble},
		R: &Neg{E: &Not{E: boolConst(true)}, T: types.TDouble},
	}
	used := ColsUsed(e)
	if len(used) != 2 || used[0] != 1 || used[1] != 3 {
		t.Fatalf("cols used %v", used)
	}
	remapped, err := Remap(e, map[int]int{1: 0, 3: 1})
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	used = ColsUsed(remapped)
	if len(used) != 2 || used[0] != 0 || used[1] != 1 {
		t.Fatalf("remapped cols %v", used)
	}
	// Remap reports a missing mapping as an error, not a panic.
	if _, err := Remap(e, map[int]int{1: 0}); err == nil {
		t.Fatal("Remap with missing mapping did not error")
	}
}

func TestExprStrings(t *testing.T) {
	fn, _ := builtins.Lookup("sqrt")
	cases := map[Expr]string{
		intCol(2): "#2:c",
		&Const{V: value.Double(1.5), T: types.TDouble}:               "1.5",
		&Binary{Op: "*", Kind: BinArith, L: intCol(0), R: intCol(1)}: "(#0:c * #1:c)",
		&Not{E: boolConst(true)}:                                     "NOT true",
		&Neg{E: intCol(0), T: types.TInt}:                            "-#0:c",
		&Call{Fn: fn, Args: []Expr{intCol(0)}, T: types.TDouble}:     "sqrt(#0:c)",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	meta := catalog.NewTableMeta("t", catalog.Schema{Cols: []catalog.Column{{Name: "a", Type: types.TInt}}}, 5)
	scan := &Scan{Table: meta, Alias: "x", Out: Schema{{Name: "a", T: types.TInt}}}
	spec, _ := builtins.LookupAgg("count")
	tree := &Limit{
		N: 3,
		Input: &Sort{
			Keys: []OrderKey{{Col: 0, Desc: true}},
			Input: &Project{
				Out:   Schema{{Name: "a", T: types.TInt}},
				Exprs: []Expr{intCol(0)},
				Input: &Filter{
					Pred: &Binary{Op: ">", Kind: BinCompare, L: intCol(0), R: &Const{V: value.Int(0), T: types.TInt}, T: types.TBool},
					Input: &Agg{
						GroupBy: []Expr{intCol(0)},
						Aggs:    []AggCall{{Spec: spec, T: types.TInt}},
						Out:     Schema{{Name: "a", T: types.TInt}, {Name: "n", T: types.TInt}},
						Input: &Join{
							L: scan, R: scan,
							LKeys: []Expr{intCol(0)}, RKeys: []Expr{intCol(0)},
							Residual: []Expr{boolConst(true)},
							Out:      Schema{{Name: "a", T: types.TInt}, {Name: "a", T: types.TInt}},
						},
					},
				},
			},
		},
	}
	text := Explain(tree)
	for _, want := range []string{"Limit 3", "Sort", "Project", "Filter", "Aggregate", "HashJoin", "Scan t AS x", "count(*)", "filter ["} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	// Cross, MultiJoin, OneRow branches.
	cross := &Cross{L: scan, R: scan, Residual: []Expr{boolConst(true)}, Out: Schema{}}
	if !strings.Contains(Explain(cross), "CrossJoin") {
		t.Error("cross join missing")
	}
	mj := &MultiJoin{Inputs: []Node{scan, &OneRow{}}, Conjuncts: []Expr{boolConst(true)}, Out: Schema{}}
	text = Explain(mj)
	if !strings.Contains(text, "MultiJoin") || !strings.Contains(text, "OneRow") {
		t.Errorf("multijoin explain:\n%s", text)
	}
}

func TestSchemaHelpersPlan(t *testing.T) {
	s := Schema{{Name: "a", T: types.TInt}, {Name: "b", T: types.TVector(types.KnownDim(3))}}
	if s.String() != "(a INTEGER, b VECTOR[3])" {
		t.Fatalf("schema %s", s)
	}
	ts := s.Types()
	if len(ts) != 2 || ts[1].String() != "VECTOR[3]" {
		t.Fatalf("types %v", ts)
	}
}
