// Package plan performs semantic analysis over parsed SQL — name
// resolution, type checking with dimension propagation through the templated
// built-in signatures — and produces the logical plan that internal/opt
// optimizes and internal/exec runs.
package plan

import (
	"fmt"

	"relalg/internal/builtins"
	"relalg/internal/types"
	"relalg/internal/value"
)

// EvalCtx is the per-query evaluation context threaded into every Eval.
// It aliases builtins.EvalCtx so the executor can hand one object to both
// expression trees and direct builtin calls; nil is always valid.
type EvalCtx = builtins.EvalCtx

// Expr is a type-checked expression evaluated against a row of its input
// relation. Expressions are pure and the context is read-only, so the
// optimizer may move, duplicate, and pre-evaluate them freely, and one plan
// may be evaluated by many queries concurrently.
type Expr interface {
	Type() types.T
	Eval(ec *EvalCtx, row value.Row) (value.Value, error)
	String() string
	// Walk visits this node and all children.
	Walk(fn func(Expr))
}

// Col references a column of the input relation by position.
type Col struct {
	Idx  int
	Name string
	T    types.T
}

// Type implements Expr.
func (c *Col) Type() types.T { return c.T }

// Eval implements Expr.
func (c *Col) Eval(_ *EvalCtx, row value.Row) (value.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return value.Null(), fmt.Errorf("plan: column index %d out of range for row of %d", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c *Col) String() string     { return fmt.Sprintf("#%d:%s", c.Idx, c.Name) }
func (c *Col) Walk(fn func(Expr)) { fn(c) }

// Const is a literal value.
type Const struct {
	V value.Value
	T types.T
}

// Type implements Expr.
func (c *Const) Type() types.T { return c.T }

// Eval implements Expr.
func (c *Const) Eval(*EvalCtx, value.Row) (value.Value, error) { return c.V, nil }

func (c *Const) String() string     { return c.V.String() }
func (c *Const) Walk(fn func(Expr)) { fn(c) }

// BinKind classifies a Binary expression.
type BinKind uint8

// Binary expression kinds.
const (
	BinArith   BinKind = iota // + - * /
	BinCompare                // = <> < <= > >=
	BinLogic                  // AND OR
)

// Binary is a binary operation with SQL overloading: arithmetic follows the
// paper's element-wise/broadcast rules, comparisons yield BOOLEAN, and
// logic is two-valued with NULL treated as FALSE (sufficient for the
// paper's workloads; documented deviation from three-valued SQL).
type Binary struct {
	Op   string
	Kind BinKind
	L, R Expr
	T    types.T
}

// Type implements Expr.
func (b *Binary) Type() types.T { return b.T }

// Eval implements Expr.
func (b *Binary) Eval(ec *EvalCtx, row value.Row) (value.Value, error) {
	l, err := b.L.Eval(ec, row)
	if err != nil {
		return value.Null(), err
	}
	r, err := b.R.Eval(ec, row)
	if err != nil {
		return value.Null(), err
	}
	switch b.Kind {
	case BinArith:
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return builtins.Arith(ec, b.Op, l, r)
	case BinCompare:
		if l.IsNull() || r.IsNull() {
			return value.Bool(false), nil
		}
		return builtins.Compare(b.Op, l, r)
	case BinLogic:
		lb := !l.IsNull() && l.Kind == value.KindBool && l.B
		rb := !r.IsNull() && r.Kind == value.KindBool && r.B
		if b.Op == "AND" {
			return value.Bool(lb && rb), nil
		}
		return value.Bool(lb || rb), nil
	}
	return value.Null(), fmt.Errorf("plan: unknown binary kind %d", b.Kind)
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

func (b *Binary) Walk(fn func(Expr)) {
	fn(b)
	b.L.Walk(fn)
	b.R.Walk(fn)
}

// Not is logical negation.
type Not struct {
	E Expr
}

// Type implements Expr.
func (n *Not) Type() types.T { return types.TBool }

// Eval implements Expr.
func (n *Not) Eval(ec *EvalCtx, row value.Row) (value.Value, error) {
	v, err := n.E.Eval(ec, row)
	if err != nil {
		return value.Null(), err
	}
	b := !v.IsNull() && v.Kind == value.KindBool && v.B
	return value.Bool(!b), nil
}

func (n *Not) String() string     { return "NOT " + n.E.String() }
func (n *Not) Walk(fn func(Expr)) { fn(n); n.E.Walk(fn) }

// Neg is arithmetic negation of a scalar, vector, or matrix.
type Neg struct {
	E Expr
	T types.T
}

// Type implements Expr.
func (n *Neg) Type() types.T { return n.T }

// Eval implements Expr.
func (n *Neg) Eval(ec *EvalCtx, row value.Row) (value.Value, error) {
	v, err := n.E.Eval(ec, row)
	if err != nil || v.IsNull() {
		return value.Null(), err
	}
	switch v.Kind {
	case value.KindInt:
		return value.Int(-v.I), nil
	case value.KindDouble, value.KindLabeledScalar:
		return value.Double(-v.D), nil
	case value.KindVector:
		return value.Vector(v.Vec.Scale(-1)), nil
	case value.KindMatrix:
		return value.Matrix(v.Mat.Scale(-1)), nil
	}
	return value.Null(), fmt.Errorf("plan: cannot negate %s", v.Kind)
}

func (n *Neg) String() string     { return "-" + n.E.String() }
func (n *Neg) Walk(fn func(Expr)) { fn(n); n.E.Walk(fn) }

// Call invokes a scalar built-in.
type Call struct {
	Fn   *builtins.Builtin
	Args []Expr
	T    types.T
}

// Type implements Expr.
func (c *Call) Type() types.T { return c.T }

// Eval implements Expr.
func (c *Call) Eval(ec *EvalCtx, row value.Row) (value.Value, error) {
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(ec, row)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			return value.Null(), nil
		}
		args[i] = v
	}
	return c.Fn.Eval(ec, args)
}

func (c *Call) String() string {
	s := c.Fn.Name + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

func (c *Call) Walk(fn func(Expr)) {
	fn(c)
	for _, a := range c.Args {
		a.Walk(fn)
	}
}

// ScalarSubquery is an uncorrelated scalar subquery used as an expression.
// The engine pre-executes the inner plan and substitutes its single value
// (NULL for an empty result) before physical execution; reaching Eval means
// that substitution was skipped.
type ScalarSubquery struct {
	Plan Node
	T    types.T
}

// Type implements Expr.
func (s *ScalarSubquery) Type() types.T { return s.T }

// Eval implements Expr.
func (s *ScalarSubquery) Eval(*EvalCtx, value.Row) (value.Value, error) {
	return value.Null(), fmt.Errorf("plan: unresolved scalar subquery reached execution")
}

func (s *ScalarSubquery) String() string     { return "(subquery)" }
func (s *ScalarSubquery) Walk(fn func(Expr)) { fn(s) }

// ColsUsed returns the sorted set of column indexes referenced by e.
func ColsUsed(e Expr) []int {
	seen := map[int]bool{}
	e.Walk(func(x Expr) {
		if c, ok := x.(*Col); ok {
			seen[c.Idx] = true
		}
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Remap returns a copy of e with every column index i replaced by mapping[i].
// It is how the optimizer rebinds expressions after join reordering and
// column pruning. A missing mapping or an unknown expression type indicates
// a planner bug; it is reported as an error so the engine can surface it to
// the query instead of crashing the process.
func Remap(e Expr, mapping map[int]int) (Expr, error) {
	switch x := e.(type) {
	case *Col:
		idx, ok := mapping[x.Idx]
		if !ok {
			return nil, fmt.Errorf("plan: Remap has no mapping for column %d (%s)", x.Idx, x.Name)
		}
		return &Col{Idx: idx, Name: x.Name, T: x.T}, nil
	case *Const:
		return x, nil
	case *Binary:
		l, err := Remap(x.L, mapping)
		if err != nil {
			return nil, err
		}
		r, err := Remap(x.R, mapping)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, Kind: x.Kind, L: l, R: r, T: x.T}, nil
	case *Not:
		inner, err := Remap(x.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *Neg:
		inner, err := Remap(x.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Neg{E: inner, T: x.T}, nil
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := Remap(a, mapping)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &Call{Fn: x.Fn, Args: args, T: x.T}, nil
	case *ScalarSubquery:
		// The inner plan references its own tables, never the outer row.
		return x, nil
	}
	return nil, fmt.Errorf("plan: Remap of unknown expression %T", e)
}
