package plan

import (
	"fmt"
	"strings"
)

// Explain renders a plan tree as indented text for EXPLAIN output and tests.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "%sScan %s", indent, x.Table.Name)
		if x.Alias != "" && x.Alias != x.Table.Name {
			fmt.Fprintf(b, " AS %s", x.Alias)
		}
		fmt.Fprintf(b, " rows=%d\n", x.Table.RowCount())
	case *Project:
		exprs := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			exprs[i] = e.String()
		}
		fmt.Fprintf(b, "%sProject [%s]\n", indent, strings.Join(exprs, ", "))
		explain(b, x.Input, depth+1)
	case *Filter:
		fmt.Fprintf(b, "%sFilter %s\n", indent, x.Pred.String())
		explain(b, x.Input, depth+1)
	case *Join:
		keys := make([]string, len(x.LKeys))
		for i := range x.LKeys {
			keys[i] = x.LKeys[i].String() + " = " + x.RKeys[i].String()
		}
		fmt.Fprintf(b, "%sHashJoin on %s", indent, strings.Join(keys, " AND "))
		writeResidual(b, x.Residual)
		b.WriteByte('\n')
		explain(b, x.L, depth+1)
		explain(b, x.R, depth+1)
	case *Cross:
		fmt.Fprintf(b, "%sCrossJoin", indent)
		writeResidual(b, x.Residual)
		b.WriteByte('\n')
		explain(b, x.L, depth+1)
		explain(b, x.R, depth+1)
	case *MultiJoin:
		conj := make([]string, len(x.Conjuncts))
		for i, c := range x.Conjuncts {
			conj[i] = c.String()
		}
		fmt.Fprintf(b, "%sMultiJoin [%s]\n", indent, strings.Join(conj, " AND "))
		for _, in := range x.Inputs {
			explain(b, in, depth+1)
		}
	case *Agg:
		groups := make([]string, len(x.GroupBy))
		for i, g := range x.GroupBy {
			groups[i] = g.String()
		}
		aggs := make([]string, len(x.Aggs))
		for i, a := range x.Aggs {
			if a.Input == nil {
				aggs[i] = a.Spec.Name + "(*)"
			} else {
				aggs[i] = a.Spec.Name + "(" + a.Input.String() + ")"
			}
		}
		fmt.Fprintf(b, "%sAggregate group=[%s] aggs=[%s]\n", indent,
			strings.Join(groups, ", "), strings.Join(aggs, ", "))
		explain(b, x.Input, depth+1)
	case *Sort:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("#%d %s", k.Col, dir)
		}
		fmt.Fprintf(b, "%sSort [%s]\n", indent, strings.Join(keys, ", "))
		explain(b, x.Input, depth+1)
	case *Limit:
		fmt.Fprintf(b, "%sLimit %d\n", indent, x.N)
		explain(b, x.Input, depth+1)
	case *Bound:
		fmt.Fprintf(b, "%sBound rows=%g\n", indent, x.Rows)
		explain(b, x.Input, depth+1)
	case *OneRow:
		fmt.Fprintf(b, "%sOneRow\n", indent)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
}

func writeResidual(b *strings.Builder, residual []Expr) {
	if len(residual) == 0 {
		return
	}
	parts := make([]string, len(residual))
	for i, r := range residual {
		parts[i] = r.String()
	}
	fmt.Fprintf(b, " filter [%s]", strings.Join(parts, " AND "))
}
