package plan

// Pipeline describes a Project?(Filter*(Scan)) chain that the executor can
// run as one fused per-partition pass: rows stream from the stored partition
// through the predicates into the projection without materializing any
// intermediate relation. It is a decomposition of existing nodes, not a plan
// node itself — the optimizer stays unaware of it and EXPLAIN still shows the
// logical chain.
type Pipeline struct {
	Scan *Scan
	// Filters are the chain's predicates, innermost (closest to the scan)
	// first — the order they must be evaluated in.
	Filters []Expr
	// Exprs is the projection; nil when the chain ends in a Filter, in which
	// case rows pass through unchanged.
	Exprs []Expr
	// Out is the schema of the whole chain.
	Out Schema
}

// MatchPipeline decomposes n into a fusable scan→filter→project chain. It
// returns nil when n is not of the shape Project?(Filter*(Scan)) or when the
// chain is a bare Scan (nothing to fuse). Projections directly above joins
// are not matched here — runProject already fuses those into the join.
func MatchPipeline(n Node) *Pipeline {
	p := &Pipeline{Out: n.Schema()}
	cur := n
	if pr, ok := cur.(*Project); ok {
		p.Exprs = pr.Exprs
		cur = pr.Input
	}
	var filters []Expr
	for {
		f, ok := cur.(*Filter)
		if !ok {
			break
		}
		filters = append(filters, f.Pred)
		cur = f.Input
	}
	// Collected outermost-first while walking down; evaluation order is
	// innermost-first.
	for i, j := 0, len(filters)-1; i < j; i, j = i+1, j-1 {
		filters[i], filters[j] = filters[j], filters[i]
	}
	p.Filters = filters
	sc, ok := cur.(*Scan)
	if !ok {
		return nil
	}
	if p.Exprs == nil && len(filters) == 0 {
		return nil
	}
	p.Scan = sc
	return p
}
