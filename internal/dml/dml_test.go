package dml

import (
	"math"
	"strings"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/core"
	"relalg/internal/linalg"
)

func session(t *testing.T) *Session {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
	return New(core.Open(cfg))
}

func TestGramViaDML(t *testing.T) {
	s := session(t)
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if err := s.BindMatrix("x", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`G = t(X) %*% X`); err != nil {
		t.Fatal(err)
	}
	got, err := s.Matrix("G")
	if err != nil {
		t.Fatal(err)
	}
	X, _ := linalg.MatrixFromRows(data)
	want, _ := X.Transpose().MulMat(X)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("G = %v, want %v", got, want)
	}
}

func TestRegressionViaDML(t *testing.T) {
	s := session(t)
	// y = 2*x0 - x1 exactly.
	data := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 3}}
	y := make([]float64, len(data))
	for i, r := range data {
		y[i] = 2*r[0] - r[1]
	}
	if err := s.BindMatrix("X", data); err != nil {
		t.Fatal(err)
	}
	if err := s.BindVectorAsColumn("y", y); err != nil {
		t.Fatal(err)
	}
	script := `
		# the paper's least-squares pipeline, in three DML lines
		G = t(X) %*% X
		xty = t(X) %*% y
		beta = solve(G, xty)
		print(beta)
	`
	if err := s.Run(script); err != nil {
		t.Fatal(err)
	}
	beta, err := s.Matrix("beta")
	if err != nil {
		t.Fatal(err)
	}
	if beta.Rows != 2 || beta.Cols != 1 {
		t.Fatalf("beta shape %dx%d", beta.Rows, beta.Cols)
	}
	if math.Abs(beta.At(0, 0)-2) > 1e-9 || math.Abs(beta.At(1, 0)+1) > 1e-9 {
		t.Fatalf("beta = %v", beta)
	}
	if len(s.Printed()) != 1 || !strings.HasPrefix(s.Printed()[0], "[") {
		t.Fatalf("printed %v", s.Printed())
	}
}

func TestElementwiseAndBroadcast(t *testing.T) {
	s := session(t)
	if err := s.BindMatrix("a", [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`
		b = a * a
		c = a * 2 + 1
		d = -a
		e = a / 2
	`); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Matrix("b")
	if b.At(1, 1) != 16 {
		t.Fatalf("b = %v", b)
	}
	cm, _ := s.Matrix("c")
	if cm.At(0, 0) != 3 || cm.At(1, 1) != 9 {
		t.Fatalf("c = %v", cm)
	}
	d, _ := s.Matrix("d")
	if d.At(0, 1) != -2 {
		t.Fatalf("d = %v", d)
	}
	em, _ := s.Matrix("e")
	if em.At(1, 0) != 1.5 {
		t.Fatalf("e = %v", em)
	}
}

func TestScalarFunctionsAndVars(t *testing.T) {
	s := session(t)
	if err := s.BindMatrix("m", [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.BindScalar("k", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`
		total = sum(m)
		tr = trace(m)
		r = nrow(m)
		c = ncol(m)
		scaled = m * k
		combo = total + tr
	`); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"total": 10, "tr": 5, "r": 2, "c": 2, "combo": 15}
	for name, want := range checks {
		got, err := s.Scalar(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
	sc, _ := s.Matrix("scaled")
	if sc.At(1, 1) != 40 {
		t.Fatalf("scaled = %v", sc)
	}
}

func TestStructuralFunctions(t *testing.T) {
	s := session(t)
	if err := s.BindMatrix("m", [][]float64{{1, 9}, {8, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`
		dg = diag(m)
		dm = diagm(dg)
		rs = rowsums(m)
		cs = colsums(m)
		rmin = rowmins(m)
		rmax = rowmaxs(m)
		id3 = identity(3)
		z = zeros(2, 3)
	`); err != nil {
		t.Fatal(err)
	}
	dg, _ := s.Matrix("dg")
	if dg.Rows != 2 || dg.Cols != 1 || dg.At(0, 0) != 1 || dg.At(1, 0) != 4 {
		t.Fatalf("diag = %v", dg)
	}
	dm, _ := s.Matrix("dm")
	if dm.At(0, 0) != 1 || dm.At(1, 1) != 4 || dm.At(0, 1) != 0 {
		t.Fatalf("diagm = %v", dm)
	}
	rs, _ := s.Matrix("rs")
	if rs.At(0, 0) != 10 || rs.At(1, 0) != 12 {
		t.Fatalf("rowsums = %v", rs)
	}
	cs, _ := s.Matrix("cs")
	if cs.Rows != 1 || cs.At(0, 0) != 9 || cs.At(0, 1) != 13 {
		t.Fatalf("colsums = %v", cs)
	}
	rmin, _ := s.Matrix("rmin")
	if rmin.At(0, 0) != 1 || rmin.At(1, 0) != 4 {
		t.Fatalf("rowmins = %v", rmin)
	}
	rmax, _ := s.Matrix("rmax")
	if rmax.At(0, 0) != 9 || rmax.At(1, 0) != 8 {
		t.Fatalf("rowmaxs = %v", rmax)
	}
	id3, _ := s.Matrix("id3")
	if !id3.Equal(linalg.Identity(3)) {
		t.Fatalf("identity = %v", id3)
	}
	z, _ := s.Matrix("z")
	if z.Rows != 2 || z.Cols != 3 || z.Sum() != 0 {
		t.Fatalf("zeros = %v", z)
	}
}

// TestDistanceViaDML runs the paper's SystemML distance program through the
// DML frontend (all_dist = X %*% m %*% t(X), diagonal masked, row minima).
func TestDistanceViaDML(t *testing.T) {
	s := session(t)
	data := [][]float64{{0, 0}, {1, 0}, {0, 2}}
	if err := s.BindMatrix("X", data); err != nil {
		t.Fatal(err)
	}
	if err := s.BindMatrix("m", [][]float64{{2, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`
		all_dist = X %*% m %*% t(X)
		masked = all_dist + diagm(diag(identity(3))) * 1e300
		min_dist = rowmins(masked)
	`); err != nil {
		t.Fatal(err)
	}
	mins, err := s.Matrix("min_dist")
	if err != nil {
		t.Fatal(err)
	}
	// d(x0,·)=0 for both others; d(x1,x0)=0, d(x1,x2)=0 -> row mins all 0
	// except... X m Xt for this data: row1: [0,0,0]; row2: [0,2,0]; row3:[0,0,4]
	// masked diag -> huge; mins: row0 = 0, row1 = 0, row2 = 0.
	for i := 0; i < 3; i++ {
		if mins.At(i, 0) != 0 {
			t.Fatalf("min_dist[%d] = %g", i, mins.At(i, 0))
		}
	}
}

func TestDMLErrors(t *testing.T) {
	s := session(t)
	if err := s.BindMatrix("m", [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"x = nosuchvar + 1",
		"x = nosuchfn(m)",
		"x = t(1)",        // wrong kind
		"x = m %*% 2",     // matrix multiply with scalar
		"x = solve(m)",    // arity
		"x = m +",         // parse error
		"x = (m",          // unbalanced
		"x = m $ m",       // bad character
		"1x = m",          // bad variable name
		"x",               // not an assignment
		"x = identity(m)", // kind error
	}
	for _, src := range bad {
		if err := s.Run(src); err == nil {
			t.Errorf("Run(%q) succeeded, want error", src)
		}
	}
	if _, err := s.Matrix("never"); err == nil {
		t.Error("Matrix of unknown variable succeeded")
	}
	if _, err := s.Scalar("m"); err == nil {
		t.Error("Scalar of matrix variable succeeded")
	}
}

func TestDMLReassignmentChangesKind(t *testing.T) {
	s := session(t)
	if err := s.BindMatrix("m", [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("x = m + 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Matrix("x"); err != nil {
		t.Fatal(err)
	}
	// Reassign x to a scalar.
	if err := s.Run("x = sum(m)"); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Scalar("x"); err != nil || v != 10 {
		t.Fatalf("x = %g, %v", v, err)
	}
}
