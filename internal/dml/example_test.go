package dml_test

import (
	"fmt"
	"log"

	"relalg/internal/core"
	"relalg/internal/dml"
)

// Example runs a least-squares fit in the DML frontend; every assignment
// compiles to a CREATE TABLE ... AS SELECT over the engine's linear-algebra
// built-ins.
func Example() {
	db := core.Open(core.DefaultConfig())
	s := dml.New(db)
	if err := s.BindMatrix("X", [][]float64{{1, 0}, {0, 1}, {1, 1}}); err != nil {
		log.Fatal(err)
	}
	if err := s.BindVectorAsColumn("y", []float64{2, -1, 1}); err != nil {
		log.Fatal(err)
	}
	err := s.Run(`
		G    = t(X) %*% X
		beta = solve(G, t(X) %*% y)
	`)
	if err != nil {
		log.Fatal(err)
	}
	beta, err := s.Matrix("beta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f %.0f\n", beta.At(0, 0), beta.At(1, 0))
	// Output: 2 -1
}
