package dml

import (
	"fmt"
	"strconv"
	"strings"
)

// expr is a parsed DML expression.
type expr interface{ dmlExpr() }

type numLit struct{ v float64 }
type varRef struct{ name string }
type unaryNeg struct{ e expr }
type binop struct {
	op   string // + - * / %*%
	l, r expr
}
type call struct {
	fn   string
	args []expr
}

func (numLit) dmlExpr()   {}
func (varRef) dmlExpr()   {}
func (unaryNeg) dmlExpr() {}
func (binop) dmlExpr()    {}
func (call) dmlExpr()     {}

// --- tokenizer -----------------------------------------------------------

type dmlToken struct {
	kind byte // 'n' number, 'i' ident, 'o' operator/punct, 0 EOF
	text string
}

func lex(src string) ([]dmlToken, error) {
	var toks []dmlToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '%':
			if strings.HasPrefix(src[i:], "%*%") {
				toks = append(toks, dmlToken{'o', "%*%"})
				i += 3
			} else {
				return nil, fmt.Errorf("unexpected %% (matrix multiply is %%*%%)")
			}
		case strings.ContainsRune("+-*/(),", rune(c)):
			toks = append(toks, dmlToken{'o', string(c)})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, dmlToken{'n', src[i:j]})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' ||
				src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' ||
				src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, dmlToken{'i', strings.ToLower(src[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", string(c))
		}
	}
	return append(toks, dmlToken{0, ""}), nil
}

// --- parser ---------------------------------------------------------------

type dmlParser struct {
	toks []dmlToken
	i    int
}

func parse(src string) (expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &dmlParser{toks: toks}
	e, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != 0 {
		return nil, fmt.Errorf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

func (p *dmlParser) peek() dmlToken { return p.toks[p.i] }

func (p *dmlParser) accept(text string) bool {
	if t := p.peek(); t.kind == 'o' && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *dmlParser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binop{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binop{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *dmlParser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("%*%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binop{op: "%*%", l: l, r: r}
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binop{op: "*", l: l, r: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binop{op: "/", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *dmlParser) parseUnary() (expr, error) {
	if p.accept("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(numLit); ok {
			return numLit{v: -n.v}, nil
		}
		return unaryNeg{e: e}, nil
	}
	return p.parsePrimary()
}

func (p *dmlParser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case 'n':
		p.i++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return numLit{v: v}, nil
	case 'i':
		p.i++
		if !p.accept("(") {
			return varRef{name: t.text}, nil
		}
		c := call{fn: t.text}
		if p.accept(")") {
			return c, nil
		}
		for {
			a, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			c.args = append(c.args, a)
			if p.accept(",") {
				continue
			}
			break
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("expected ) after arguments of %s", c.fn)
		}
		return c, nil
	case 'o':
		if t.text == "(" {
			p.i++
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("expected )")
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected %q in expression", t.text)
}

// --- compiler ---------------------------------------------------------------

// compiler turns one DML expression into an extended-SQL scalar expression
// plus a FROM list: each variable occurrence becomes a one-row table scan.
type compiler struct {
	session *Session
	from    []string
	aliases map[string]string // already-assigned alias per mention index is not reused; this maps alias name for nothing; kept for clarity
	n       int
}

func (c *compiler) aliasFor(name string) (string, error) {
	if _, ok := c.session.vars[name]; !ok {
		return "", fmt.Errorf("unknown variable %q", name)
	}
	alias := fmt.Sprintf("d%d", c.n)
	c.n++
	c.from = append(c.from, tableOf(name)+" AS "+alias)
	return alias, nil
}

// compile returns the SQL expression text and its kind.
func (c *compiler) compile(e expr) (string, kind, error) {
	switch x := e.(type) {
	case numLit:
		return formatNum(x.v), kindScalar, nil
	case varRef:
		alias, err := c.aliasFor(x.name)
		if err != nil {
			return "", 0, err
		}
		return alias + ".val", c.session.vars[x.name], nil
	case unaryNeg:
		s, k, err := c.compile(x.e)
		if err != nil {
			return "", 0, err
		}
		return "(0 - " + s + ")", k, nil
	case binop:
		return c.compileBinop(x)
	case call:
		return c.compileCall(x)
	}
	return "", 0, fmt.Errorf("unsupported expression %T", e)
}

func (c *compiler) compileBinop(x binop) (string, kind, error) {
	ls, lk, err := c.compile(x.l)
	if err != nil {
		return "", 0, err
	}
	rs, rk, err := c.compile(x.r)
	if err != nil {
		return "", 0, err
	}
	if x.op == "%*%" {
		if lk != kindMatrix || rk != kindMatrix {
			return "", 0, fmt.Errorf("%%*%% requires two matrices")
		}
		return "matrix_multiply(" + ls + ", " + rs + ")", kindMatrix, nil
	}
	k := kindScalar
	if lk == kindMatrix || rk == kindMatrix {
		k = kindMatrix
	}
	return "(" + ls + " " + x.op + " " + rs + ")", k, nil
}

// dmlFn maps a DML function to its SQL template and kinds.
type dmlFn struct {
	arity   int
	argKind []kind
	result  kind
	render  func(args []string) string
}

var dmlFns = map[string]dmlFn{
	"t": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "trans_matrix(" + a[0] + ")" }},
	"inverse": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "matrix_inverse(" + a[0] + ")" }},
	"solve": {2, []kind{kindMatrix, kindMatrix}, kindMatrix,
		func(a []string) string {
			return "matrix_multiply(matrix_inverse(" + a[0] + "), " + a[1] + ")"
		}},
	// diag of a matrix -> its diagonal as a column matrix (SystemML style).
	"diag": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "col_matrix(diag(" + a[0] + "))" }},
	// diagm of a column matrix -> square matrix with it on the diagonal.
	"diagm": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "diag_matrix(get_col(" + a[0] + ", 0))" }},
	"rowsums": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "col_matrix(row_sums(" + a[0] + "))" }},
	"colsums": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "row_matrix(col_sums(" + a[0] + "))" }},
	"rowmins": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "col_matrix(row_mins(" + a[0] + "))" }},
	"rowmaxs": {1, []kind{kindMatrix}, kindMatrix,
		func(a []string) string { return "col_matrix(row_maxs(" + a[0] + "))" }},
	"sum": {1, []kind{kindMatrix}, kindScalar,
		func(a []string) string { return "sum_matrix(" + a[0] + ")" }},
	"trace": {1, []kind{kindMatrix}, kindScalar,
		func(a []string) string { return "trace(" + a[0] + ")" }},
	"nrow": {1, []kind{kindMatrix}, kindScalar,
		func(a []string) string { return "matrix_rows(" + a[0] + ")" }},
	"ncol": {1, []kind{kindMatrix}, kindScalar,
		func(a []string) string { return "matrix_cols(" + a[0] + ")" }},
	"identity": {1, []kind{kindScalar}, kindMatrix,
		func(a []string) string { return "identity_matrix(" + a[0] + ")" }},
	"zeros": {2, []kind{kindScalar, kindScalar}, kindMatrix,
		func(a []string) string { return "zeros_matrix(" + a[0] + ", " + a[1] + ")" }},
}

func (c *compiler) compileCall(x call) (string, kind, error) {
	fn, ok := dmlFns[x.fn]
	if !ok {
		return "", 0, fmt.Errorf("unknown function %q", x.fn)
	}
	if len(x.args) != fn.arity {
		return "", 0, fmt.Errorf("%s takes %d argument(s), got %d", x.fn, fn.arity, len(x.args))
	}
	args := make([]string, len(x.args))
	for i, a := range x.args {
		s, k, err := c.compile(a)
		if err != nil {
			return "", 0, err
		}
		if k != fn.argKind[i] {
			return "", 0, fmt.Errorf("%s argument %d: wrong kind", x.fn, i+1)
		}
		args[i] = s
	}
	return fn.render(args), fn.result, nil
}

// formatNum renders integers without a decimal point so they parse as SQL
// INTEGER literals (identity(3), zeros(2, 2)).
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
