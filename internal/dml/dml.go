// Package dml implements the higher-level language the paper's introduction
// proposes as future work: "it would be possible to implement a math-like
// domain specific language (such as MATLAB or SystemML's [DML]) ... on top
// of our proposed extensions. That domain specific language ... could
// translate the computation to a database computation."
//
// This is a small SystemML-DML-flavoured matrix language. Every variable is
// a single-matrix (or scalar) table in the underlying extended-SQL engine;
// each assignment compiles to one CREATE TABLE ... AS SELECT over the
// linear-algebra built-ins, so the relational optimizer and distributed
// executor do all the work. Example:
//
//	G    = t(X) %*% X
//	beta = solve(G, t(X) %*% y)
//	print(beta)
//
// Supported grammar:
//
//	stmt   := ident = expr | print(expr)
//	expr   := term ((+|-) term)*
//	term   := factor ((*|/|%*%) factor)*     -- * and / element-wise
//	factor := -factor | primary
//	primary:= number | ident | (expr) | fn(expr {, expr})
//	fn     := t, inverse, solve, diag, diagm, rowsums, colsums,
//	          rowmins, rowmaxs, sum, trace, nrow, ncol, identity, zeros
package dml

import (
	"fmt"
	"strings"

	"relalg/internal/core"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

// Session is one DML environment bound to a database. Matrix variables are
// stored as tables `dml_<name>(val MATRIX[][])`; scalars as
// `dml_<name>(val DOUBLE)`.
type Session struct {
	db      *core.Database
	vars    map[string]kind
	printed []string
}

type kind uint8

const (
	kindMatrix kind = iota
	kindScalar
)

// New creates a session over the database.
func New(db *core.Database) *Session {
	return &Session{db: db, vars: map[string]kind{}}
}

// tableOf is the backing table name of a DML variable.
func tableOf(name string) string { return "dml_" + strings.ToLower(name) }

// BindMatrix introduces a matrix variable from dense data.
func (s *Session) BindMatrix(name string, rows [][]float64) error {
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return err
	}
	return s.bind(name, value.Matrix(m))
}

// BindVectorAsColumn introduces an n×1 matrix variable from a slice.
func (s *Session) BindVectorAsColumn(name string, data []float64) error {
	return s.bind(name, value.Matrix(linalg.VectorOf(data...).AsColMatrix()))
}

// BindScalar introduces a scalar variable.
func (s *Session) BindScalar(name string, v float64) error {
	name = strings.ToLower(name)
	tbl := tableOf(name)
	s.db.MustExec("DROP TABLE IF EXISTS " + tbl)
	if err := s.db.Exec("CREATE TABLE " + tbl + " (val DOUBLE)"); err != nil {
		return err
	}
	if err := s.db.LoadTable(tbl, []value.Row{{value.Double(v)}}); err != nil {
		return err
	}
	s.vars[name] = kindScalar
	return nil
}

func (s *Session) bind(name string, v value.Value) error {
	name = strings.ToLower(name)
	tbl := tableOf(name)
	s.db.MustExec("DROP TABLE IF EXISTS " + tbl)
	if err := s.db.Exec("CREATE TABLE " + tbl + " (val MATRIX[][])"); err != nil {
		return err
	}
	if err := s.db.LoadTable(tbl, []value.Row{{v}}); err != nil {
		return err
	}
	s.vars[name] = kindMatrix
	return nil
}

// Matrix reads a matrix variable back.
func (s *Session) Matrix(name string) (*linalg.Matrix, error) {
	name = strings.ToLower(name)
	if k, ok := s.vars[name]; !ok || k != kindMatrix {
		return nil, fmt.Errorf("dml: no matrix variable %q", name)
	}
	res, err := s.db.Query("SELECT val FROM " + tableOf(name))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 {
		return nil, fmt.Errorf("dml: variable %q has %d rows", name, len(res.Rows))
	}
	return res.Rows[0][0].Mat, nil
}

// Scalar reads a scalar variable back.
func (s *Session) Scalar(name string) (float64, error) {
	name = strings.ToLower(name)
	if k, ok := s.vars[name]; !ok || k != kindScalar {
		return 0, fmt.Errorf("dml: no scalar variable %q", name)
	}
	res, err := s.db.Query("SELECT val FROM " + tableOf(name))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 {
		return 0, fmt.Errorf("dml: variable %q has %d rows", name, len(res.Rows))
	}
	return res.Rows[0][0].AsDouble()
}

// Printed returns the accumulated print() output lines.
func (s *Session) Printed() []string { return s.printed }

// Run executes a DML script: one statement per non-empty, non-comment line.
func (s *Session) Run(script string) error {
	for lineNo, raw := range strings.Split(script, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := s.runLine(line); err != nil {
			return fmt.Errorf("dml: line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

func (s *Session) runLine(line string) error {
	if strings.HasPrefix(line, "print(") && strings.HasSuffix(line, ")") {
		return s.runPrint(line[len("print(") : len(line)-1])
	}
	eq := strings.Index(line, "=")
	if eq <= 0 {
		return fmt.Errorf("expected assignment or print(), got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	if !isIdent(name) {
		return fmt.Errorf("invalid variable name %q", name)
	}
	expr, err := parse(line[eq+1:])
	if err != nil {
		return err
	}
	return s.assign(strings.ToLower(name), expr)
}

func (s *Session) runPrint(src string) error {
	expr, err := parse(src)
	if err != nil {
		return err
	}
	const tmp = "print_tmp__"
	if err := s.assign(tmp, expr); err != nil {
		return err
	}
	res, err := s.db.Query("SELECT val FROM " + tableOf(tmp))
	if err != nil {
		return err
	}
	s.printed = append(s.printed, res.Rows[0][0].String())
	return nil
}

// assign compiles the expression to SQL and materializes it under name.
func (s *Session) assign(name string, e expr) error {
	c := &compiler{session: s, aliases: map[string]string{}}
	sqlExpr, k, err := c.compile(e)
	if err != nil {
		return err
	}
	tbl := tableOf(name)
	s.db.MustExec("DROP TABLE IF EXISTS " + tbl)
	query := "CREATE TABLE " + tbl + " AS SELECT " + sqlExpr + " AS val"
	if len(c.from) > 0 {
		query += " FROM " + strings.Join(c.from, ", ")
	}
	if err := s.db.Exec(query); err != nil {
		return err
	}
	s.vars[name] = k
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
