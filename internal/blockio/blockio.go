// Package blockio is the shared on-disk framing layer: a versioned file
// header and checksummed length-prefixed frames. Both the spill layer's
// temp-file runs and the storage engine's journal use it, so the framing,
// corruption detection, and torn-tail semantics live in exactly one place
// instead of being re-derived per file format.
//
// Layout (little endian):
//
//	file   := header, frame*
//	header := magic[8], u32 version, u32 extra
//	frame  := u32 payloadLen, u32 aux, u64 checksum, payload
//
// The checksum is FNV-1a over the frame's aux field and payload, so a frame
// whose length prefix survived a crash but whose body did not is still
// detected. ReadFrame distinguishes three outcomes: a full frame, a clean
// end of file (io.EOF), and a torn tail (ErrTorn) — a partially-written or
// corrupt final frame that recovery may discard, because the write protocol
// appends frames only after the data they describe is durable.
package blockio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MagicLen is the fixed length of a file-header magic string.
const MagicLen = 8

// HeaderLen is the encoded size of a file header.
const HeaderLen = MagicLen + 8

// frameHeaderLen is the encoded size of a frame header.
const frameHeaderLen = 16

// ErrTorn marks a truncated or checksum-corrupt frame at the tail of a file:
// the bytes of an append that did not complete. Callers that own the file
// (journal recovery) truncate back to the last good frame; callers that do
// not (spill readers) surface it as corruption.
var ErrTorn = errors.New("blockio: torn frame")

// Header identifies a file's format and version, plus one format-owned
// extra word (the storage engine stores its page size there).
type Header struct {
	Magic   string // exactly MagicLen bytes
	Version uint32
	Extra   uint32
}

// AppendHeader appends the encoded header to dst.
func AppendHeader(dst []byte, h Header) ([]byte, error) {
	if len(h.Magic) != MagicLen {
		return nil, fmt.Errorf("blockio: magic %q must be %d bytes", h.Magic, MagicLen)
	}
	dst = append(dst, h.Magic...)
	dst = binary.LittleEndian.AppendUint32(dst, h.Version)
	dst = binary.LittleEndian.AppendUint32(dst, h.Extra)
	return dst, nil
}

// WriteHeader writes the encoded header to w.
func WriteHeader(w io.Writer, h Header) error {
	buf, err := AppendHeader(nil, h)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("blockio: write header: %w", err)
	}
	return nil
}

// ReadHeader reads a file header and verifies its magic and version,
// returning the header (for Extra). A short read or mismatch is a hard
// error naming what was expected — the fail-fast contract for opening a
// data directory written by a different format or version.
func ReadHeader(r io.Reader, magic string, version uint32) (Header, error) {
	var buf [HeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Header{}, fmt.Errorf("blockio: short file header (want %q v%d): %w", magic, version, err)
	}
	h := Header{
		Magic:   string(buf[:MagicLen]),
		Version: binary.LittleEndian.Uint32(buf[MagicLen:]),
		Extra:   binary.LittleEndian.Uint32(buf[MagicLen+4:]),
	}
	if h.Magic != magic {
		return Header{}, fmt.Errorf("blockio: bad magic %q (want %q): not a recognized file", h.Magic, magic)
	}
	if h.Version != version {
		return Header{}, fmt.Errorf("blockio: format version %d (this build reads version %d)", h.Version, version)
	}
	return h, nil
}

// Checksum is the frame checksum: FNV-1a over aux (little endian) then the
// payload bytes. Exported so page formats that embed a checksum in their own
// fixed-size header (rather than a frame) stay consistent with frames.
func Checksum(aux uint32, payload []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var a [4]byte
	binary.LittleEndian.PutUint32(a[:], aux)
	for _, b := range a {
		h ^= uint64(b)
		h *= prime64
	}
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// AppendFrame appends one encoded frame to dst.
func AppendFrame(dst []byte, aux uint32, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, aux)
	dst = binary.LittleEndian.AppendUint64(dst, Checksum(aux, payload))
	return append(dst, payload...)
}

// WriteFrame writes one frame to w, returning the encoded byte count.
func WriteFrame(w io.Writer, aux uint32, payload []byte) (int64, error) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], aux)
	binary.LittleEndian.PutUint64(hdr[8:], Checksum(aux, payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("blockio: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("blockio: write frame payload: %w", err)
	}
	return int64(frameHeaderLen + len(payload)), nil
}

// FrameSize returns the encoded size of a frame with the given payload
// length.
func FrameSize(payloadLen int) int64 { return int64(frameHeaderLen + payloadLen) }

// ReadFrame reads the next frame from r. It returns io.EOF at a clean end of
// file and an error wrapping ErrTorn when the tail holds a partial or
// checksum-corrupt frame; maxPayload bounds the length prefix so a corrupt
// prefix cannot trigger a huge allocation.
func ReadFrame(r io.Reader, maxPayload int) (payload []byte, aux uint32, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: short frame header: %v", ErrTorn, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	aux = binary.LittleEndian.Uint32(hdr[4:8])
	sum := binary.LittleEndian.Uint64(hdr[8:])
	if n > maxPayload {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrTorn, n, maxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: short frame payload: %v", ErrTorn, err)
	}
	if got := Checksum(aux, payload); got != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (stored %016x, computed %016x)", ErrTorn, sum, got)
	}
	return payload, aux, nil
}
