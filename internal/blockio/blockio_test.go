package blockio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Header{Magic: "LATESTFM", Version: 3, Extra: 4096}
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(bytes.NewReader(buf.Bytes()), "LATESTFM", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, Header{Magic: "LATESTFM", Version: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(bytes.NewReader(buf.Bytes()), "OTHERFMT", 3); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := ReadHeader(bytes.NewReader(buf.Bytes()), "LATESTFM", 4); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := ReadHeader(bytes.NewReader(buf.Bytes()[:5]), "LATESTFM", 3); err == nil {
		t.Fatal("short header accepted")
	}
	if err := WriteHeader(&buf, Header{Magic: "short"}); err == nil {
		t.Fatal("short magic accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		n, err := WriteFrame(&buf, uint32(i*7), p)
		if err != nil {
			t.Fatal(err)
		}
		if n != FrameSize(len(p)) {
			t.Fatalf("frame %d: wrote %d bytes, FrameSize says %d", i, n, FrameSize(len(p)))
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		got, aux, err := ReadFrame(r, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if aux != uint32(i*7) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: aux=%d payload=%q", i, aux, got)
		}
	}
	if _, _, err := ReadFrame(r, 1<<20); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 42, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	app := AppendFrame(nil, 42, []byte("payload"))
	if !bytes.Equal(buf.Bytes(), app) {
		t.Fatal("AppendFrame and WriteFrame encode differently")
	}
}

func TestTornTailDetection(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 1, []byte("complete frame")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	tornCases := [][]byte{
		whole[:len(whole)-1],            // payload cut short
		whole[:8],                       // header cut short
		append(append([]byte{}, whole...), 0x01, 0x02), // trailing garbage = torn next header
	}
	for i, data := range tornCases {
		r := bytes.NewReader(data)
		if i < 2 {
			_, _, err := ReadFrame(r, 1<<20)
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("case %d: want ErrTorn, got %v", i, err)
			}
			continue
		}
		// Full frame reads fine, then the torn tail surfaces.
		if _, _, err := ReadFrame(r, 1<<20); err != nil {
			t.Fatalf("case %d: first frame: %v", i, err)
		}
		_, _, err := ReadFrame(r, 1<<20)
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("case %d: want ErrTorn on tail, got %v", i, err)
		}
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 9, []byte("sensitive bits")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-3] ^= 0x40 // flip a payload bit
	_, _, err := ReadFrame(bytes.NewReader(data), 1<<20)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn on corrupt payload, got %v", err)
	}
}

func TestLengthCapEnforced(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 0, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 10)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn on oversized frame, got %v", err)
	}
}
