package builtins

import (
	"strings"
	"testing"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

func eval(t *testing.T, name string, args ...value.Value) value.Value {
	t.Helper()
	b, ok := Lookup(name)
	if !ok {
		t.Fatalf("builtin %q not registered", name)
	}
	v, err := b.Eval(nil, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func evalErr(t *testing.T, name string, args ...value.Value) error {
	t.Helper()
	b, ok := Lookup(name)
	if !ok {
		t.Fatalf("builtin %q not registered", name)
	}
	_, err := b.Eval(nil, args)
	if err == nil {
		t.Fatalf("%s: expected error", name)
	}
	return err
}

func vec(xs ...float64) value.Value { return value.Vector(linalg.VectorOf(xs...)) }
func mat(t *testing.T, rows [][]float64) value.Value {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return value.Matrix(m)
}

func TestRegistryComplete(t *testing.T) {
	// The paper reports 22 built-in functions; our implementation provides
	// at least that many plus the conversion helpers.
	want := []string{
		"matrix_multiply", "matrix_vector_multiply", "vector_matrix_multiply",
		"inner_product", "outer_product", "trans_matrix", "matrix_inverse",
		"diag", "diag_matrix", "row_matrix", "col_matrix", "label_scalar",
		"label_vector", "get_scalar", "get_entry", "get_row", "get_col",
		"get_label", "vector_size", "matrix_rows", "matrix_cols",
		"sum_vector", "sum_matrix", "min_vector", "max_vector", "arg_min",
		"arg_max", "trace", "norm2", "frobenius_norm", "row_mins", "row_maxs",
		"row_sums", "col_sums", "min_pairwise", "identity_matrix",
		"zeros_vector", "zeros_matrix", "sqrt", "abs", "exp", "ln", "pow",
	}
	for _, n := range want {
		if _, ok := Lookup(n); !ok {
			t.Errorf("missing builtin %q", n)
		}
	}
	if len(Names()) < 22 {
		t.Fatalf("only %d builtins registered; the paper has 22", len(Names()))
	}
}

func TestMatrixMultiply(t *testing.T) {
	a := mat(t, [][]float64{{1, 2}, {3, 4}})
	b := mat(t, [][]float64{{5, 6}, {7, 8}})
	got := eval(t, "matrix_multiply", a, b)
	want := mat(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
	evalErr(t, "matrix_multiply", a, mat(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}))
	evalErr(t, "matrix_multiply", a, vec(1, 2))
}

func TestMatrixVectorMultiply(t *testing.T) {
	m := mat(t, [][]float64{{1, 2}, {3, 4}})
	got := eval(t, "matrix_vector_multiply", m, vec(1, 1))
	if !got.Equal(vec(3, 7)) {
		t.Fatalf("got %v", got)
	}
	got = eval(t, "vector_matrix_multiply", vec(1, 1), m)
	if !got.Equal(vec(4, 6)) {
		t.Fatalf("got %v", got)
	}
	evalErr(t, "matrix_vector_multiply", m, vec(1, 2, 3))
}

func TestInnerOuterProduct(t *testing.T) {
	if got := eval(t, "inner_product", vec(1, 2), vec(3, 4)); got.D != 11 {
		t.Fatalf("inner = %v", got)
	}
	got := eval(t, "outer_product", vec(1, 2), vec(3, 4, 5))
	want := mat(t, [][]float64{{3, 4, 5}, {6, 8, 10}})
	if !got.Equal(want) {
		t.Fatalf("outer = %v", got)
	}
	evalErr(t, "inner_product", vec(1), vec(1, 2))
}

func TestTransInverseDiag(t *testing.T) {
	m := mat(t, [][]float64{{1, 2}, {3, 4}})
	if got := eval(t, "trans_matrix", m); !got.Equal(mat(t, [][]float64{{1, 3}, {2, 4}})) {
		t.Fatalf("trans = %v", got)
	}
	inv := eval(t, "matrix_inverse", m)
	prod := eval(t, "matrix_multiply", m, inv)
	if !prod.Mat.EqualApprox(linalg.Identity(2), 1e-12) {
		t.Fatalf("inverse: m*inv = %v", prod)
	}
	if got := eval(t, "diag", m); !got.Equal(vec(1, 4)) {
		t.Fatalf("diag = %v", got)
	}
	if got := eval(t, "diag_matrix", vec(5, 6)); !got.Equal(mat(t, [][]float64{{5, 0}, {0, 6}})) {
		t.Fatalf("diag_matrix = %v", got)
	}
	evalErr(t, "diag", mat(t, [][]float64{{1, 2, 3}, {4, 5, 6}}))
	evalErr(t, "matrix_inverse", mat(t, [][]float64{{1, 1}, {1, 1}}))
}

func TestRowColMatrix(t *testing.T) {
	rm := eval(t, "row_matrix", vec(1, 2, 3))
	if rm.Mat.Rows != 1 || rm.Mat.Cols != 3 {
		t.Fatalf("row_matrix shape %dx%d", rm.Mat.Rows, rm.Mat.Cols)
	}
	cm := eval(t, "col_matrix", vec(1, 2, 3))
	if cm.Mat.Rows != 3 || cm.Mat.Cols != 1 {
		t.Fatalf("col_matrix shape %dx%d", cm.Mat.Rows, cm.Mat.Cols)
	}
}

func TestLabels(t *testing.T) {
	ls := eval(t, "label_scalar", value.Double(2.5), value.Int(7))
	if ls.Kind != value.KindLabeledScalar || ls.D != 2.5 || ls.Label != 7 {
		t.Fatalf("label_scalar = %+v", ls)
	}
	// INTEGER promotes to DOUBLE in the first argument.
	ls = eval(t, "label_scalar", value.Int(3), value.Int(1))
	if ls.D != 3 {
		t.Fatalf("label_scalar int = %+v", ls)
	}
	lv := eval(t, "label_vector", vec(1, 2), value.Int(4))
	if lv.Label != 4 || !lv.Vec.Equal(linalg.VectorOf(1, 2)) {
		t.Fatalf("label_vector = %+v", lv)
	}
	if got := eval(t, "get_label", lv); got.I != 4 {
		t.Fatalf("get_label = %v", got)
	}
	if got := eval(t, "get_label", ls); got.I != 1 {
		t.Fatalf("get_label scalar = %v", got)
	}
	evalErr(t, "get_label", value.Double(1))
}

func TestElementAccess(t *testing.T) {
	if got := eval(t, "get_scalar", vec(10, 20, 30), value.Int(1)); got.D != 20 {
		t.Fatalf("get_scalar = %v", got)
	}
	evalErr(t, "get_scalar", vec(10), value.Int(5))
	evalErr(t, "get_scalar", vec(10), value.Int(-1))

	m := mat(t, [][]float64{{1, 2}, {3, 4}})
	if got := eval(t, "get_entry", m, value.Int(1), value.Int(0)); got.D != 3 {
		t.Fatalf("get_entry = %v", got)
	}
	evalErr(t, "get_entry", m, value.Int(2), value.Int(0))
	if got := eval(t, "get_row", m, value.Int(0)); !got.Equal(vec(1, 2)) {
		t.Fatalf("get_row = %v", got)
	}
	if got := eval(t, "get_col", m, value.Int(1)); !got.Equal(vec(2, 4)) {
		t.Fatalf("get_col = %v", got)
	}
	evalErr(t, "get_row", m, value.Int(9))
	evalErr(t, "get_col", m, value.Int(9))
}

func TestShapeIntrospection(t *testing.T) {
	if got := eval(t, "vector_size", vec(1, 2, 3)); got.I != 3 {
		t.Fatalf("vector_size = %v", got)
	}
	m := mat(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if eval(t, "matrix_rows", m).I != 2 || eval(t, "matrix_cols", m).I != 3 {
		t.Fatal("matrix_rows/cols wrong")
	}
}

func TestReductions(t *testing.T) {
	if eval(t, "sum_vector", vec(1, 2, 3)).D != 6 {
		t.Fatal("sum_vector")
	}
	m := mat(t, [][]float64{{1, 2}, {3, 4}})
	if eval(t, "sum_matrix", m).D != 10 {
		t.Fatal("sum_matrix")
	}
	if eval(t, "min_vector", vec(3, 1, 2)).D != 1 || eval(t, "max_vector", vec(3, 1, 2)).D != 3 {
		t.Fatal("min/max_vector")
	}
	if eval(t, "arg_min", vec(3, 1, 2)).I != 1 || eval(t, "arg_max", vec(3, 1, 2)).I != 0 {
		t.Fatal("arg_min/arg_max")
	}
	if eval(t, "trace", m).D != 5 {
		t.Fatal("trace")
	}
	if eval(t, "norm2", vec(3, 4)).D != 5 {
		t.Fatal("norm2")
	}
	if eval(t, "frobenius_norm", mat(t, [][]float64{{3, 4}})).D != 5 {
		t.Fatal("frobenius_norm")
	}
	if !eval(t, "row_mins", m).Equal(vec(1, 3)) {
		t.Fatal("row_mins")
	}
	if !eval(t, "row_maxs", m).Equal(vec(2, 4)) {
		t.Fatal("row_maxs")
	}
	if !eval(t, "row_sums", m).Equal(vec(3, 7)) {
		t.Fatal("row_sums")
	}
	if !eval(t, "col_sums", m).Equal(vec(4, 6)) {
		t.Fatal("col_sums")
	}
	if !eval(t, "min_pairwise", vec(1, 5), vec(2, 4)).Equal(vec(1, 4)) {
		t.Fatal("min_pairwise")
	}
}

func TestConstructors(t *testing.T) {
	id := eval(t, "identity_matrix", value.Int(3))
	if !id.Mat.Equal(linalg.Identity(3)) {
		t.Fatal("identity_matrix")
	}
	z := eval(t, "zeros_vector", value.Int(4))
	if z.Vec.Len() != 4 || z.Vec.Sum() != 0 {
		t.Fatal("zeros_vector")
	}
	zm := eval(t, "zeros_matrix", value.Int(2), value.Int(3))
	if zm.Mat.Rows != 2 || zm.Mat.Cols != 3 || zm.Mat.Sum() != 0 {
		t.Fatal("zeros_matrix")
	}
	evalErr(t, "identity_matrix", value.Int(-1))
	evalErr(t, "zeros_vector", value.Int(-1))
	evalErr(t, "zeros_matrix", value.Int(-1), value.Int(2))
}

func TestScalarMath(t *testing.T) {
	if eval(t, "sqrt", value.Double(9)).D != 3 {
		t.Fatal("sqrt")
	}
	if eval(t, "abs", value.Double(-2)).D != 2 {
		t.Fatal("abs")
	}
	if eval(t, "pow", value.Double(2), value.Double(10)).D != 1024 {
		t.Fatal("pow")
	}
	if eval(t, "ln", eval(t, "exp", value.Double(1))).D != 1 {
		t.Fatal("ln/exp")
	}
}

func TestSignaturesAttached(t *testing.T) {
	// Every builtin must carry a usable signature; spot check the key one.
	b, _ := Lookup("matrix_multiply")
	res, _, err := b.Sig.Unify([]types.T{
		types.TMatrix(types.KnownDim(10), types.KnownDim(100000)),
		types.TMatrix(types.KnownDim(100000), types.KnownDim(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "MATRIX[10][100]" {
		t.Fatalf("matrix_multiply result = %s", res)
	}
	for _, n := range Names() {
		b, _ := Lookup(n)
		if len(b.Sig.Params) == 0 && !strings.HasPrefix(n, "rand") {
			t.Errorf("builtin %q has empty signature", n)
		}
	}
}
