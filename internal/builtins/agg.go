package builtins

import (
	"fmt"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

// AggState is the running state of one aggregate over one group. States are
// mergeable so the executor can pre-aggregate per partition before the
// shuffle and combine partial states afterwards — the property that makes
// SUM over MATRIX blocks efficient in distributed plans.
type AggState interface {
	Step(v value.Value) error
	Merge(other AggState) error
	Final() (value.Value, error)
}

// DoubleStepper is an optional AggState fast path. StepDouble(x) must be
// observably identical to Step(value.Double(x)); the batch executor uses it
// to feed typed float columns without boxing each lane.
type DoubleStepper interface {
	StepDouble(x float64) error
}

// IntStepper is the integer analogue of DoubleStepper: StepInt(x) must be
// observably identical to Step(value.Int(x)).
type IntStepper interface {
	StepInt(x int64) error
}

// AggSpec describes one aggregate function.
type AggSpec struct {
	Name string
	// ResultType infers the output type from the input expression type.
	ResultType func(in types.T) (types.T, error)
	// New creates a fresh state for one group.
	New func() AggState
}

var aggRegistry = map[string]*AggSpec{}

// LookupAgg finds an aggregate by (lower-case) name.
func LookupAgg(name string) (*AggSpec, bool) {
	a, ok := aggRegistry[name]
	return a, ok
}

// IsAggregate reports whether name refers to an aggregate function.
func IsAggregate(name string) bool {
	_, ok := aggRegistry[name]
	return ok
}

// registerAgg records a, reporting a duplicate name as an error so callers
// that extend the registry at runtime can handle the collision.
func registerAgg(a *AggSpec) error {
	if _, dup := aggRegistry[a.Name]; dup {
		return fmt.Errorf("builtins: duplicate aggregate %s", a.Name)
	}
	aggRegistry[a.Name] = a
	return nil
}

// mustRegisterAgg is the init-time wrapper: the package's own aggregate table
// is fixed at compile time, so a duplicate there is a programming error.
func mustRegisterAgg(a *AggSpec) {
	if err := registerAgg(a); err != nil {
		panic(err)
	}
}

// --- SUM --------------------------------------------------------------

// sumState accumulates numerics as (int | double) and vectors/matrices
// element-wise, matching the paper's "SUM aggregate over MATRIX performs a +
// over each MATRIX in a relation".
type sumState struct {
	kind  value.Kind // KindNull until the first non-null input
	i     int64
	d     float64
	vec   *linalg.Vector
	mat   *linalg.Matrix
	count int64
}

func (s *sumState) Step(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	s.count++
	switch v.Kind {
	case value.KindInt:
		if s.kind == value.KindNull {
			s.kind = value.KindInt
		}
		if s.kind == value.KindDouble {
			s.d += float64(v.I)
			return nil
		}
		if s.kind != value.KindInt {
			return fmt.Errorf("builtins: SUM over mixed %s and INTEGER", s.kind)
		}
		s.i += v.I
		return nil
	case value.KindDouble, value.KindLabeledScalar:
		switch s.kind {
		case value.KindNull:
			s.kind = value.KindDouble
		case value.KindInt:
			s.kind = value.KindDouble
			s.d = float64(s.i)
			s.i = 0
		case value.KindDouble:
		default:
			return fmt.Errorf("builtins: SUM over mixed %s and DOUBLE", s.kind)
		}
		s.d += v.D
		return nil
	case value.KindVector:
		if s.kind == value.KindNull {
			s.kind = value.KindVector
			s.vec = v.Vec.Clone()
			return nil
		}
		if s.kind != value.KindVector {
			return fmt.Errorf("builtins: SUM over mixed %s and VECTOR", s.kind)
		}
		return s.vec.AddInPlace(v.Vec)
	case value.KindMatrix:
		if s.kind == value.KindNull {
			s.kind = value.KindMatrix
			s.mat = v.Mat.Clone()
			return nil
		}
		if s.kind != value.KindMatrix {
			return fmt.Errorf("builtins: SUM over mixed %s and MATRIX", s.kind)
		}
		return s.mat.AddInPlace(v.Mat)
	}
	return fmt.Errorf("builtins: SUM over %s", v.Kind)
}

// StepDouble is the unboxed fast path: observably identical to
// Step(value.Double(x)). The batch executor feeds typed float columns through
// it to skip boxing each lane into a value.Value.
func (s *sumState) StepDouble(x float64) error {
	s.count++
	switch s.kind {
	case value.KindNull:
		s.kind = value.KindDouble
	case value.KindInt:
		s.kind = value.KindDouble
		s.d = float64(s.i)
		s.i = 0
	case value.KindDouble:
	default:
		return fmt.Errorf("builtins: SUM over mixed %s and DOUBLE", s.kind)
	}
	s.d += x
	return nil
}

// StepInt is the unboxed fast path: observably identical to
// Step(value.Int(x)).
func (s *sumState) StepInt(x int64) error {
	s.count++
	if s.kind == value.KindNull {
		s.kind = value.KindInt
	}
	if s.kind == value.KindDouble {
		s.d += float64(x)
		return nil
	}
	if s.kind != value.KindInt {
		return fmt.Errorf("builtins: SUM over mixed %s and INTEGER", s.kind)
	}
	s.i += x
	return nil
}

func (s *sumState) Merge(other AggState) error {
	o := other.(*sumState)
	if o.kind == value.KindNull {
		return nil
	}
	partial, err := o.Final()
	if err != nil {
		return err
	}
	saved := s.count
	if err := s.Step(partial); err != nil {
		return err
	}
	s.count = saved + o.count
	return nil
}

func (s *sumState) Final() (value.Value, error) {
	switch s.kind {
	case value.KindNull:
		return value.Null(), nil // SQL: SUM of no rows is NULL
	case value.KindInt:
		return value.Int(s.i), nil
	case value.KindDouble:
		return value.Double(s.d), nil
	case value.KindVector:
		return value.Vector(s.vec), nil
	case value.KindMatrix:
		return value.Matrix(s.mat), nil
	}
	return value.Null(), fmt.Errorf("builtins: corrupt SUM state")
}

// --- COUNT ------------------------------------------------------------

type countState struct{ n int64 }

func (s *countState) Step(v value.Value) error {
	if !v.IsNull() {
		s.n++
	}
	return nil
}
func (s *countState) StepDouble(float64) error    { s.n++; return nil }
func (s *countState) StepInt(int64) error         { s.n++; return nil }
func (s *countState) Merge(other AggState) error  { s.n += other.(*countState).n; return nil }
func (s *countState) Final() (value.Value, error) { return value.Int(s.n), nil }

// --- AVG --------------------------------------------------------------

type avgState struct {
	sum sumState
}

func (s *avgState) Step(v value.Value) error  { return s.sum.Step(v) }
func (s *avgState) StepDouble(x float64) error { return s.sum.StepDouble(x) }
func (s *avgState) StepInt(x int64) error      { return s.sum.StepInt(x) }
func (s *avgState) Merge(other AggState) error {
	return s.sum.Merge(&other.(*avgState).sum)
}
func (s *avgState) Final() (value.Value, error) {
	if s.sum.count == 0 {
		return value.Null(), nil
	}
	total, err := s.sum.Final()
	if err != nil {
		return value.Null(), err
	}
	n := float64(s.sum.count)
	switch total.Kind {
	case value.KindInt:
		return value.Double(float64(total.I) / n), nil
	case value.KindDouble:
		return value.Double(total.D / n), nil
	case value.KindVector:
		return value.Vector(total.Vec.ScaleDiv(n)), nil
	case value.KindMatrix:
		return value.Matrix(total.Mat.ScaleDiv(n)), nil
	}
	return value.Null(), fmt.Errorf("builtins: AVG over %s", total.Kind)
}

// --- MIN / MAX ----------------------------------------------------------

// extremeState keeps the extreme scalar seen, or — for VECTOR inputs — the
// element-wise extreme, which is what the paper's block-based distance
// computation needs to fold per-row minima across blocks.
type extremeState struct {
	want int // -1 for MIN, +1 for MAX
	best value.Value
	seen bool
}

func (s *extremeState) Step(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if !s.seen {
		if v.Kind == value.KindVector {
			v = value.Vector(v.Vec.Clone())
		}
		s.best, s.seen = v, true
		return nil
	}
	if v.Kind == value.KindVector || s.best.Kind == value.KindVector {
		if v.Kind != s.best.Kind {
			return fmt.Errorf("builtins: MIN/MAX over mixed %s and %s", s.best.Kind, v.Kind)
		}
		var (
			merged *linalg.Vector
			err    error
		)
		if s.want < 0 {
			merged, err = s.best.Vec.MinPairwise(v.Vec)
		} else {
			merged, err = s.best.Vec.MaxPairwise(v.Vec)
		}
		if err != nil {
			return err
		}
		s.best = value.Vector(merged)
		return nil
	}
	c, err := v.Compare(s.best)
	if err != nil {
		return fmt.Errorf("builtins: MIN/MAX: %v", err)
	}
	if c == s.want {
		s.best = v
	}
	return nil
}

func (s *extremeState) Merge(other AggState) error {
	o := other.(*extremeState)
	if !o.seen {
		return nil
	}
	return s.Step(o.best)
}

func (s *extremeState) Final() (value.Value, error) {
	if !s.seen {
		return value.Null(), nil
	}
	return s.best, nil
}

// --- VECTORIZE ----------------------------------------------------------

// vectorizeState aggregates LABELED_SCALAR values into a vector, placing
// each at the position given by its label; holes are zero and the result has
// max(label)+1 entries (§3.3).
type vectorizeState struct {
	entries  map[int64]float64
	maxLabel int64
}

func newVectorize() AggState {
	return &vectorizeState{entries: map[int64]float64{}, maxLabel: -1}
}

func (s *vectorizeState) Step(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind != value.KindLabeledScalar {
		return fmt.Errorf("builtins: VECTORIZE over %s, want LABELED_SCALAR", v.Kind)
	}
	if v.Label < 0 {
		return fmt.Errorf("builtins: VECTORIZE with negative label %d", v.Label)
	}
	s.entries[v.Label] += v.D
	if v.Label > s.maxLabel {
		s.maxLabel = v.Label
	}
	return nil
}

func (s *vectorizeState) Merge(other AggState) error {
	o := other.(*vectorizeState)
	for l, d := range o.entries {
		s.entries[l] += d
	}
	if o.maxLabel > s.maxLabel {
		s.maxLabel = o.maxLabel
	}
	return nil
}

func (s *vectorizeState) Final() (value.Value, error) {
	v := linalg.NewVector(int(s.maxLabel + 1))
	for l, d := range s.entries {
		v.Data[l] = d
	}
	return value.Vector(v), nil
}

// --- ROWMATRIX / COLMATRIX ----------------------------------------------

// matrixizeState aggregates labeled VECTOR values into a matrix, placing
// each vector at the row (ROWMATRIX) or column (COLMATRIX) given by its
// label. All input vectors must share a length; holes are zero.
type matrixizeState struct {
	byCol    bool
	rows     map[int64]*linalg.Vector
	maxLabel int64
	width    int
}

func newMatrixize(byCol bool) AggState {
	return &matrixizeState{byCol: byCol, rows: map[int64]*linalg.Vector{}, maxLabel: -1, width: -1}
}

func (s *matrixizeState) name() string {
	if s.byCol {
		return "COLMATRIX"
	}
	return "ROWMATRIX"
}

func (s *matrixizeState) Step(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind != value.KindVector {
		return fmt.Errorf("builtins: %s over %s, want VECTOR", s.name(), v.Kind)
	}
	if v.Label < 0 {
		return fmt.Errorf("builtins: %s with negative label %d (use label_vector)", s.name(), v.Label)
	}
	if s.width == -1 {
		s.width = v.Vec.Len()
	} else if s.width != v.Vec.Len() {
		return fmt.Errorf("builtins: %s over vectors of length %d and %d", s.name(), s.width, v.Vec.Len())
	}
	if prev, ok := s.rows[v.Label]; ok {
		if err := prev.AddInPlace(v.Vec); err != nil {
			return err
		}
	} else {
		s.rows[v.Label] = v.Vec.Clone()
	}
	if v.Label > s.maxLabel {
		s.maxLabel = v.Label
	}
	return nil
}

func (s *matrixizeState) Merge(other AggState) error {
	o := other.(*matrixizeState)
	for l, vec := range o.rows {
		if err := s.Step(value.LabeledVector(vec, l)); err != nil {
			return err
		}
	}
	return nil
}

func (s *matrixizeState) Final() (value.Value, error) {
	n := int(s.maxLabel + 1)
	w := s.width
	if w < 0 {
		w = 0
	}
	if s.byCol {
		m := linalg.NewMatrix(w, n)
		for l, vec := range s.rows {
			for i, x := range vec.Data {
				m.Set(i, int(l), x)
			}
		}
		return value.Matrix(m), nil
	}
	m := linalg.NewMatrix(n, w)
	for l, vec := range s.rows {
		copy(m.Row(int(l)), vec.Data)
	}
	return value.Matrix(m), nil
}

func init() {
	mustRegisterAgg(&AggSpec{
		Name: "sum",
		ResultType: func(in types.T) (types.T, error) {
			switch {
			case in.Base == types.Int:
				return types.TInt, nil
			case in.IsNumericScalar():
				return types.TDouble, nil
			case in.IsLinAlg():
				return in, nil
			}
			return types.T{}, fmt.Errorf("%w: SUM over %s", types.ErrTypeMismatch, in)
		},
		New: func() AggState { return &sumState{} },
	})
	mustRegisterAgg(&AggSpec{
		Name:       "count",
		ResultType: func(types.T) (types.T, error) { return types.TInt, nil },
		New:        func() AggState { return &countState{} },
	})
	mustRegisterAgg(&AggSpec{
		Name: "avg",
		ResultType: func(in types.T) (types.T, error) {
			switch {
			case in.IsNumericScalar():
				return types.TDouble, nil
			case in.IsLinAlg():
				return in, nil
			}
			return types.T{}, fmt.Errorf("%w: AVG over %s", types.ErrTypeMismatch, in)
		},
		New: func() AggState { return &avgState{} },
	})
	minMaxType := func(in types.T) (types.T, error) {
		switch {
		case in.Base == types.Int:
			return types.TInt, nil
		case in.IsNumericScalar():
			return types.TDouble, nil
		case in.Base == types.String, in.Base == types.Bool:
			return in, nil
		case in.Base == types.Vector:
			return in, nil // element-wise extreme
		}
		return types.T{}, fmt.Errorf("%w: MIN/MAX over %s", types.ErrTypeMismatch, in)
	}
	mustRegisterAgg(&AggSpec{
		Name:       "min",
		ResultType: minMaxType,
		New:        func() AggState { return &extremeState{want: -1} },
	})
	mustRegisterAgg(&AggSpec{
		Name:       "max",
		ResultType: minMaxType,
		New:        func() AggState { return &extremeState{want: 1} },
	})
	mustRegisterAgg(&AggSpec{
		Name: "vectorize",
		ResultType: func(in types.T) (types.T, error) {
			if in.Base != types.LabeledScalar {
				return types.T{}, fmt.Errorf("%w: VECTORIZE over %s, want LABELED_SCALAR", types.ErrTypeMismatch, in)
			}
			return types.TVector(types.UnknownDim), nil
		},
		New: newVectorize,
	})
	mustRegisterAgg(&AggSpec{
		Name: "rowmatrix",
		ResultType: func(in types.T) (types.T, error) {
			if in.Base != types.Vector {
				return types.T{}, fmt.Errorf("%w: ROWMATRIX over %s, want VECTOR", types.ErrTypeMismatch, in)
			}
			return types.TMatrix(types.UnknownDim, in.Dims[0]), nil
		},
		New: func() AggState { return newMatrixize(false) },
	})
	mustRegisterAgg(&AggSpec{
		Name: "colmatrix",
		ResultType: func(in types.T) (types.T, error) {
			if in.Base != types.Vector {
				return types.T{}, fmt.Errorf("%w: COLMATRIX over %s, want VECTOR", types.ErrTypeMismatch, in)
			}
			return types.TMatrix(in.Dims[0], types.UnknownDim), nil
		},
		New: func() AggState { return newMatrixize(true) },
	})
}
