package builtins

import (
	"errors"
	"testing"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

func TestArithTypeScalars(t *testing.T) {
	if got, _ := ArithType("+", types.TInt, types.TInt); got != types.TInt {
		t.Fatalf("int+int = %v", got)
	}
	if got, _ := ArithType("/", types.TInt, types.TInt); got != types.TInt {
		t.Fatalf("int/int = %v (integer division)", got)
	}
	if got, _ := ArithType("/", types.TInt, types.TDouble); got != types.TDouble {
		t.Fatalf("int/double = %v", got)
	}
	if got, _ := ArithType("*", types.TLabeledScalar, types.TInt); got != types.TDouble {
		t.Fatalf("labeled*int = %v", got)
	}
}

func TestArithTypeLinAlg(t *testing.T) {
	v10 := types.TVector(types.KnownDim(10))
	vU := types.TVector(types.UnknownDim)
	if got, err := ArithType("-", v10, v10); err != nil || got != v10 {
		t.Fatalf("v-v = %v, %v", got, err)
	}
	// Unknown dim unifies with known.
	if got, err := ArithType("+", v10, vU); err != nil || got != v10 {
		t.Fatalf("v10+vU = %v, %v", got, err)
	}
	if _, err := ArithType("+", v10, types.TVector(types.KnownDim(9))); !errors.Is(err, types.ErrTypeMismatch) {
		t.Fatalf("v10+v9 error = %v", err)
	}
	m := types.TMatrix(types.KnownDim(2), types.KnownDim(3))
	if got, err := ArithType("*", m, m); err != nil || got != m {
		t.Fatalf("m*m = %v, %v", got, err)
	}
	if _, err := ArithType("*", m, types.TMatrix(types.KnownDim(3), types.KnownDim(2))); err == nil {
		t.Fatal("shape conflict accepted")
	}
	// Scalar broadcast.
	if got, err := ArithType("*", types.TDouble, v10); err != nil || got != v10 {
		t.Fatalf("s*v = %v, %v", got, err)
	}
	if got, err := ArithType("+", m, types.TInt); err != nil || got != m {
		t.Fatalf("m+s = %v, %v", got, err)
	}
	// Vector with matrix is undefined.
	if _, err := ArithType("+", v10, m); !errors.Is(err, types.ErrTypeMismatch) {
		t.Fatalf("v+m error = %v", err)
	}
	if _, err := ArithType("+", types.TString, types.TInt); err == nil {
		t.Fatal("string arithmetic accepted")
	}
}

func TestCompareType(t *testing.T) {
	if got, err := CompareType("=", types.TInt, types.TDouble); err != nil || got != types.TBool {
		t.Fatalf("= : %v, %v", got, err)
	}
	if _, err := CompareType("<", types.TVector(types.UnknownDim), types.TVector(types.UnknownDim)); err == nil {
		t.Fatal("vector comparison accepted")
	}
	if _, err := CompareType("<", types.TString, types.TInt); err == nil {
		t.Fatal("string<int accepted")
	}
	if got, err := CompareType("<", types.TString, types.TString); err != nil || got != types.TBool {
		t.Fatalf("string<string : %v, %v", got, err)
	}
}

func TestArithScalarValues(t *testing.T) {
	got, err := Arith(nil, "+", value.Int(2), value.Int(3))
	if err != nil || !got.Equal(value.Int(5)) {
		t.Fatalf("2+3 = %v, %v", got, err)
	}
	got, _ = Arith(nil, "/", value.Int(7), value.Int(2))
	if !got.Equal(value.Int(3)) {
		t.Fatalf("7/2 = %v (integer division)", got)
	}
	if _, err := Arith(nil, "/", value.Int(1), value.Int(0)); err == nil {
		t.Fatal("integer division by zero accepted")
	}
	got, _ = Arith(nil, "*", value.Double(2.5), value.Int(2))
	if !got.Equal(value.Double(5)) {
		t.Fatalf("2.5*2 = %v", got)
	}
	got, _ = Arith(nil, "-", value.LabeledScalar(4, 1), value.Int(1))
	if !got.Equal(value.Double(3)) {
		t.Fatalf("labeled-int = %v", got)
	}
}

func TestArithVectorValues(t *testing.T) {
	a, b := vec(1, 2), vec(3, 4)
	cases := map[string]value.Value{
		"+": vec(4, 6),
		"-": vec(-2, -2),
		"*": vec(3, 8),
		"/": vec(1.0/3.0, 0.5),
	}
	for op, want := range cases {
		got, err := Arith(nil, op, a, b)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !got.Vec.EqualApprox(want.Vec, 1e-12) {
			t.Fatalf("%s = %v", op, got)
		}
	}
	if _, err := Arith(nil, "+", vec(1), vec(1, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestArithMatrixValues(t *testing.T) {
	a := mat(t, [][]float64{{1, 2}, {3, 4}})
	b := mat(t, [][]float64{{5, 6}, {7, 8}})
	got, _ := Arith(nil, "*", a, b)
	// * is Hadamard, not matrix multiply (paper §3.2).
	if !got.Equal(mat(t, [][]float64{{5, 12}, {21, 32}})) {
		t.Fatalf("hadamard = %v", got)
	}
	got, _ = Arith(nil, "+", a, b)
	if !got.Equal(mat(t, [][]float64{{6, 8}, {10, 12}})) {
		t.Fatalf("add = %v", got)
	}
}

func TestArithBroadcast(t *testing.T) {
	v := vec(2, 4)
	got, _ := Arith(nil, "*", value.Int(3), v)
	if !got.Equal(vec(6, 12)) {
		t.Fatalf("3*v = %v", got)
	}
	got, _ = Arith(nil, "*", v, value.Int(3))
	if !got.Equal(vec(6, 12)) {
		t.Fatalf("v*3 = %v", got)
	}
	// Subtraction is not commutative: check both sides.
	got, _ = Arith(nil, "-", value.Int(10), v)
	if !got.Equal(vec(8, 6)) {
		t.Fatalf("10-v = %v", got)
	}
	got, _ = Arith(nil, "-", v, value.Int(1))
	if !got.Equal(vec(1, 3)) {
		t.Fatalf("v-1 = %v", got)
	}
	got, _ = Arith(nil, "/", value.Double(8), v)
	if !got.Equal(vec(4, 2)) {
		t.Fatalf("8/v = %v", got)
	}
	got, _ = Arith(nil, "/", v, value.Double(2))
	if !got.Equal(vec(1, 2)) {
		t.Fatalf("v/2 = %v", got)
	}
	m := mat(t, [][]float64{{2, 4}})
	got, _ = Arith(nil, "-", value.Double(5), m)
	if !got.Equal(mat(t, [][]float64{{3, 1}})) {
		t.Fatalf("5-m = %v", got)
	}
	got, _ = Arith(nil, "+", m, value.Double(1))
	if !got.Equal(mat(t, [][]float64{{3, 5}})) {
		t.Fatalf("m+1 = %v", got)
	}
	got, _ = Arith(nil, "/", m, value.Double(2))
	if !got.Equal(mat(t, [][]float64{{1, 2}})) {
		t.Fatalf("m/2 = %v", got)
	}
	got, _ = Arith(nil, "/", value.Double(8), m)
	if !got.Equal(mat(t, [][]float64{{4, 2}})) {
		t.Fatalf("8/m = %v", got)
	}
	got, _ = Arith(nil, "*", value.Double(2), m)
	if !got.Equal(mat(t, [][]float64{{4, 8}})) {
		t.Fatalf("2*m = %v", got)
	}
}

func TestArithUndefinedPairs(t *testing.T) {
	if _, err := Arith(nil, "+", vec(1), mat(t, [][]float64{{1}})); err == nil {
		t.Fatal("vector+matrix accepted")
	}
	if _, err := Arith(nil, "+", value.String_("x"), value.Int(1)); err == nil {
		t.Fatal("string+int accepted")
	}
}

func TestCompareValues(t *testing.T) {
	got, err := Compare("=", value.Int(3), value.Double(3))
	if err != nil || !got.B {
		t.Fatalf("3 = 3.0: %v, %v", got, err)
	}
	got, _ = Compare("<>", value.Int(3), value.Double(3))
	if got.B {
		t.Fatal("3 <> 3.0 should be false")
	}
	got, _ = Compare("<", value.Int(2), value.Int(3))
	if !got.B {
		t.Fatal("2 < 3")
	}
	got, _ = Compare(">=", value.Double(2), value.Int(2))
	if !got.B {
		t.Fatal("2.0 >= 2")
	}
	got, _ = Compare("=", value.String_("a"), value.String_("a"))
	if !got.B {
		t.Fatal("'a' = 'a'")
	}
	if _, err := Compare("=", vec(1), vec(1)); err == nil {
		t.Fatal("vector equality operator accepted")
	}
	if _, err := Compare("<", value.String_("a"), value.Int(1)); err == nil {
		t.Fatal("cross-kind ordering accepted")
	}
	// The paper's a.dataID <> mxx.id pattern.
	got, _ = Compare("<>", value.Int(1), value.Int(2))
	if !got.B {
		t.Fatal("1 <> 2")
	}
}

func TestLinalgVectorReuse(t *testing.T) {
	// Arith must not mutate its inputs.
	v := linalg.VectorOf(1, 2)
	_, err := Arith(nil, "+", value.Vector(v), value.Vector(linalg.VectorOf(10, 10)))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(linalg.VectorOf(1, 2)) {
		t.Fatal("Arith mutated its input")
	}
}

func TestArithUnknownOperator(t *testing.T) {
	if _, err := Arith(nil, "%", value.Int(1), value.Int(2)); err == nil {
		t.Fatal("unknown scalar operator accepted")
	}
	if _, err := Arith(nil, "%", vec(1), vec(1)); err == nil {
		t.Fatal("unknown vector operator accepted")
	}
	if _, err := Arith(nil, "%", mat(t, [][]float64{{1}}), mat(t, [][]float64{{1}})); err == nil {
		t.Fatal("unknown matrix operator accepted")
	}
	if _, err := Arith(nil, "%", value.Double(1), vec(1)); err == nil {
		t.Fatal("unknown broadcast operator accepted")
	}
	if _, err := Arith(nil, "%", value.Double(1), mat(t, [][]float64{{1}})); err == nil {
		t.Fatal("unknown matrix broadcast operator accepted")
	}
	if _, err := Compare("~", value.Int(1), value.Int(2)); err == nil {
		t.Fatal("unknown comparison operator accepted")
	}
}

func TestMatrixShapeMismatchAtRuntime(t *testing.T) {
	a := mat(t, [][]float64{{1, 2}})
	b := mat(t, [][]float64{{1}, {2}})
	for _, op := range []string{"+", "-", "*", "/"} {
		if _, err := Arith(nil, op, a, b); err == nil {
			t.Fatalf("matrix shape mismatch accepted for %s", op)
		}
	}
}
