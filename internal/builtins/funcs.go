// Package builtins implements the paper's built-in functions over
// LABELED_SCALAR, VECTOR and MATRIX values (22+ functions, §3.1), the
// overloaded arithmetic of §3.2, and the aggregates — including the three
// conversion aggregates VECTORIZE, ROWMATRIX and COLMATRIX of §3.3 — with
// mergeable states so the executor can pre-aggregate before shuffles.
//
// Every function carries a templated type signature (§4.2); the planner uses
// it both for compile-time shape checking and to tell the optimizer the
// exact size of intermediate linear-algebra objects.
//
// Labels are zero-based indexes: VECTORIZE places a LABELED_SCALAR with
// label i at position i and sizes the result to the largest label plus one
// (so labels 0..999 produce a 1000-entry vector, matching the paper's
// blocking example where positions are computed as x.id - mi*1000).
package builtins

import (
	"fmt"
	"math"
	"sort"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

// Builtin is one scalar (non-aggregate) built-in function.
type Builtin struct {
	Name string
	Sig  types.Signature
	Eval func(ec *EvalCtx, args []value.Value) (value.Value, error)
}

// registry maps lower-case names to builtins.
var registry = map[string]*Builtin{}

// Lookup finds a scalar built-in by (lower-case) name.
func Lookup(name string) (*Builtin, bool) {
	b, ok := registry[name]
	return b, ok
}

// Names returns all registered scalar built-in names, sorted (for error
// messages and deterministic listings).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// register records b, reporting a duplicate name as an error so callers that
// extend the registry at runtime can handle the collision.
func register(b *Builtin) error {
	if _, dup := registry[b.Name]; dup {
		return fmt.Errorf("builtins: duplicate registration of %s", b.Name)
	}
	registry[b.Name] = b
	return nil
}

// mustRegister is the init-time wrapper: the package's own function table is
// fixed at compile time, so a duplicate there is a programming error.
func mustRegister(b *Builtin) {
	if err := register(b); err != nil {
		panic(err)
	}
}

// Shorthand constructors for signature templates.
func vecT(d string) types.T    { return types.TVector(types.VarDim(d)) }
func matT(r, c string) types.T { return types.TMatrix(types.VarDim(r), types.VarDim(c)) }

func argVec(args []value.Value, i int) (*linalg.Vector, error) {
	if args[i].Kind != value.KindVector {
		return nil, fmt.Errorf("builtins: argument %d is %s, want VECTOR", i+1, args[i].Kind)
	}
	return args[i].Vec, nil
}

func argMat(args []value.Value, i int) (*linalg.Matrix, error) {
	if args[i].Kind != value.KindMatrix {
		return nil, fmt.Errorf("builtins: argument %d is %s, want MATRIX", i+1, args[i].Kind)
	}
	return args[i].Mat, nil
}

func argDouble(args []value.Value, i int) (float64, error) {
	d, err := args[i].AsDouble()
	if err != nil {
		return 0, fmt.Errorf("builtins: argument %d: %v", i+1, err)
	}
	return d, nil
}

func argInt(args []value.Value, i int) (int64, error) {
	n, err := args[i].AsInt()
	if err != nil {
		return 0, fmt.Errorf("builtins: argument %d: %v", i+1, err)
	}
	return n, nil
}

func init() {
	// --- Matrix/vector products -------------------------------------------
	mustRegister(&Builtin{
		Name: "matrix_multiply",
		Sig:  types.Signature{Params: []types.T{matT("a", "b"), matT("b", "c")}, Result: matT("a", "c")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			l, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			r, err := argMat(args, 1)
			if err != nil {
				return value.Null(), err
			}
			out, err := linalg.ParallelMulMat(l, r, ec.Workers())
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(out), nil
		},
	})
	mustRegister(&Builtin{
		Name: "matrix_vector_multiply",
		Sig:  types.Signature{Params: []types.T{matT("a", "b"), vecT("b")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			v, err := argVec(args, 1)
			if err != nil {
				return value.Null(), err
			}
			out, err := linalg.ParallelMulVec(m, v, ec.Workers())
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(out), nil
		},
	})
	mustRegister(&Builtin{
		Name: "vector_matrix_multiply",
		Sig:  types.Signature{Params: []types.T{vecT("a"), matT("a", "b")}, Result: vecT("b")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			m, err := argMat(args, 1)
			if err != nil {
				return value.Null(), err
			}
			out, err := linalg.ParallelVecMul(m, v, ec.Workers())
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(out), nil
		},
	})
	mustRegister(&Builtin{
		Name: "inner_product",
		Sig:  types.Signature{Params: []types.T{vecT("a"), vecT("a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			a, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			b, err := argVec(args, 1)
			if err != nil {
				return value.Null(), err
			}
			d, err := a.Dot(b)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(d), nil
		},
	})
	mustRegister(&Builtin{
		Name: "outer_product",
		Sig:  types.Signature{Params: []types.T{vecT("a"), vecT("b")}, Result: matT("a", "b")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			a, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			b, err := argVec(args, 1)
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(a.Outer(b)), nil
		},
	})

	// --- Structural transforms --------------------------------------------
	mustRegister(&Builtin{
		Name: "trans_matrix",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: matT("b", "a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(linalg.ParallelTranspose(m, ec.Workers())), nil
		},
	})
	mustRegister(&Builtin{
		Name: "matrix_inverse",
		Sig:  types.Signature{Params: []types.T{matT("a", "a")}, Result: matT("a", "a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			inv, err := m.Inverse()
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(inv), nil
		},
	})
	mustRegister(&Builtin{
		Name: "diag",
		Sig:  types.Signature{Params: []types.T{matT("a", "a")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			d, err := m.Diag()
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(d), nil
		},
	})
	mustRegister(&Builtin{
		Name: "diag_matrix",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: matT("a", "a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(linalg.DiagMatrix(v)), nil
		},
	})
	mustRegister(&Builtin{
		Name: "row_matrix",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TMatrix(types.KnownDim(1), types.VarDim("a"))},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(v.AsRowMatrix()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "col_matrix",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TMatrix(types.VarDim("a"), types.KnownDim(1))},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Matrix(v.AsColMatrix()), nil
		},
	})

	// --- Labels and element access (§3.3) ----------------------------------
	mustRegister(&Builtin{
		Name: "label_scalar",
		Sig:  types.Signature{Params: []types.T{types.TDouble, types.TInt}, Result: types.TLabeledScalar},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			d, err := argDouble(args, 0)
			if err != nil {
				return value.Null(), err
			}
			l, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			return value.LabeledScalar(d, l), nil
		},
	})
	mustRegister(&Builtin{
		Name: "label_vector",
		Sig:  types.Signature{Params: []types.T{vecT("a"), types.TInt}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			l, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			return value.LabeledVector(v, l), nil
		},
	})
	mustRegister(&Builtin{
		Name: "get_scalar",
		Sig:  types.Signature{Params: []types.T{vecT("a"), types.TInt}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			i, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			if i < 0 || int(i) >= v.Len() {
				return value.Null(), fmt.Errorf("builtins: get_scalar index %d out of range [0,%d)", i, v.Len())
			}
			return value.Double(v.At(int(i))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "get_entry",
		Sig:  types.Signature{Params: []types.T{matT("a", "b"), types.TInt, types.TInt}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			i, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			j, err := argInt(args, 2)
			if err != nil {
				return value.Null(), err
			}
			if i < 0 || int(i) >= m.Rows || j < 0 || int(j) >= m.Cols {
				return value.Null(), fmt.Errorf("builtins: get_entry (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols)
			}
			return value.Double(m.At(int(i), int(j))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "get_row",
		Sig:  types.Signature{Params: []types.T{matT("a", "b"), types.TInt}, Result: vecT("b")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			i, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			if i < 0 || int(i) >= m.Rows {
				return value.Null(), fmt.Errorf("builtins: get_row %d out of range [0,%d)", i, m.Rows)
			}
			return value.Vector(m.RowVector(int(i))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "get_col",
		Sig:  types.Signature{Params: []types.T{matT("a", "b"), types.TInt}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			j, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			if j < 0 || int(j) >= m.Cols {
				return value.Null(), fmt.Errorf("builtins: get_col %d out of range [0,%d)", j, m.Cols)
			}
			return value.Vector(m.ColVector(int(j))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "get_label",
		Sig:  types.Signature{Params: []types.T{types.TAny}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			switch args[0].Kind {
			case value.KindLabeledScalar, value.KindVector:
				return value.Int(args[0].Label), nil
			}
			return value.Null(), fmt.Errorf("builtins: get_label of %s", args[0].Kind)
		},
	})

	// --- Shape introspection -------------------------------------------
	mustRegister(&Builtin{
		Name: "vector_size",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Int(int64(v.Len())), nil
		},
	})
	mustRegister(&Builtin{
		Name: "matrix_rows",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Int(int64(m.Rows)), nil
		},
	})
	mustRegister(&Builtin{
		Name: "matrix_cols",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Int(int64(m.Cols)), nil
		},
	})

	// --- Reductions ---------------------------------------------------
	mustRegister(&Builtin{
		Name: "sum_vector",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(v.Sum()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "sum_matrix",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(linalg.ParallelSum(m, ec.Workers())), nil
		},
	})
	mustRegister(&Builtin{
		Name: "min_vector",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(v.Min()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "max_vector",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(v.Max()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "arg_min",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Int(int64(v.ArgMin())), nil
		},
	})
	mustRegister(&Builtin{
		Name: "arg_max",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TInt},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Int(int64(v.ArgMax())), nil
		},
	})
	mustRegister(&Builtin{
		Name: "trace",
		Sig:  types.Signature{Params: []types.T{matT("a", "a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			tr, err := m.Trace()
			if err != nil {
				return value.Null(), err
			}
			return value.Double(tr), nil
		},
	})
	mustRegister(&Builtin{
		Name: "norm2",
		Sig:  types.Signature{Params: []types.T{vecT("a")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			v, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(v.Norm2()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "frobenius_norm",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(m.Norm2()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "row_mins",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(m.RowMins()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "row_maxs",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(m.RowMaxs()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "row_sums",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(m.RowSums()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "col_sums",
		Sig:  types.Signature{Params: []types.T{matT("a", "b")}, Result: vecT("b")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			m, err := argMat(args, 0)
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(m.ColSums()), nil
		},
	})
	mustRegister(&Builtin{
		Name: "min_pairwise",
		Sig:  types.Signature{Params: []types.T{vecT("a"), vecT("a")}, Result: vecT("a")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			a, err := argVec(args, 0)
			if err != nil {
				return value.Null(), err
			}
			b, err := argVec(args, 1)
			if err != nil {
				return value.Null(), err
			}
			out, err := a.MinPairwise(b)
			if err != nil {
				return value.Null(), err
			}
			return value.Vector(out), nil
		},
	})

	// --- Constructors ----------------------------------------------------
	mustRegister(&Builtin{
		Name: "identity_matrix",
		Sig:  types.Signature{Params: []types.T{types.TInt}, Result: matT("", "")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			n, err := argInt(args, 0)
			if err != nil {
				return value.Null(), err
			}
			if n < 0 {
				return value.Null(), fmt.Errorf("builtins: identity_matrix(%d)", n)
			}
			return value.Matrix(linalg.Identity(int(n))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "zeros_vector",
		Sig:  types.Signature{Params: []types.T{types.TInt}, Result: vecT("")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			n, err := argInt(args, 0)
			if err != nil {
				return value.Null(), err
			}
			if n < 0 {
				return value.Null(), fmt.Errorf("builtins: zeros_vector(%d)", n)
			}
			return value.Vector(linalg.NewVector(int(n))), nil
		},
	})
	mustRegister(&Builtin{
		Name: "zeros_matrix",
		Sig:  types.Signature{Params: []types.T{types.TInt, types.TInt}, Result: matT("", "")},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			r, err := argInt(args, 0)
			if err != nil {
				return value.Null(), err
			}
			c, err := argInt(args, 1)
			if err != nil {
				return value.Null(), err
			}
			if r < 0 || c < 0 {
				return value.Null(), fmt.Errorf("builtins: zeros_matrix(%d, %d)", r, c)
			}
			return value.Matrix(linalg.NewMatrix(int(r), int(c))), nil
		},
	})

	// --- Scalar math -------------------------------------------------------
	mathFn := func(name string, f func(float64) float64) {
		mustRegister(&Builtin{
			Name: name,
			Sig:  types.Signature{Params: []types.T{types.TDouble}, Result: types.TDouble},
			Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
				d, err := argDouble(args, 0)
				if err != nil {
					return value.Null(), err
				}
				return value.Double(f(d)), nil
			},
		})
	}
	mathFn("sqrt", math.Sqrt)
	mathFn("abs", math.Abs)
	mathFn("exp", math.Exp)
	mathFn("ln", math.Log)
	mustRegister(&Builtin{
		Name: "pow",
		Sig:  types.Signature{Params: []types.T{types.TDouble, types.TDouble}, Result: types.TDouble},
		Eval: func(ec *EvalCtx, args []value.Value) (value.Value, error) {
			a, err := argDouble(args, 0)
			if err != nil {
				return value.Null(), err
			}
			b, err := argDouble(args, 1)
			if err != nil {
				return value.Null(), err
			}
			return value.Double(math.Pow(a, b)), nil
		},
	})
}
