package builtins

import "fmt"

// Vectorized scalar kernels for the batch executor. Each kernel writes the
// destination lanes named by sel (every lane of [0,len(dst)) when sel is
// nil) and leaves other lanes untouched, so chained predicates only compute
// on surviving lanes. Semantics mirror Arith/Compare exactly: INT op INT
// stays int64 with a division-by-zero error, every other numeric combination
// (and every numeric comparison, including INT=INT) goes through the float64
// representation as AsDouble does. Each operator runs its own single-op loop,
// so the compiler cannot fuse a multiply-add across expression nodes and
// float results stay bit-identical to the row evaluator's one-op-at-a-time
// arithmetic.

// VecArithInt is the vectorized arithScalar INT×INT leg.
func VecArithInt(op string, dst, l, r []int64, sel []int32) error {
	switch op {
	case "+":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] + r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] + r[i]
			}
		}
	case "-":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] - r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] - r[i]
			}
		}
	case "*":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] * r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] * r[i]
			}
		}
	case "/":
		if sel == nil {
			for i := range dst {
				if r[i] == 0 {
					return fmt.Errorf("builtins: integer division by zero")
				}
				dst[i] = l[i] / r[i]
			}
		} else {
			for _, i := range sel {
				if r[i] == 0 {
					return fmt.Errorf("builtins: integer division by zero")
				}
				dst[i] = l[i] / r[i]
			}
		}
	default:
		return fmt.Errorf("builtins: unknown arithmetic operator %q", op)
	}
	return nil
}

// VecArithFloat is the vectorized arithScalar float leg (either operand
// DOUBLE or LABELED SCALAR; labels are dropped exactly as arithScalar drops
// them).
func VecArithFloat(op string, dst, l, r []float64, sel []int32) error {
	switch op {
	case "+":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] + r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] + r[i]
			}
		}
	case "-":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] - r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] - r[i]
			}
		}
	case "*":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] * r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] * r[i]
			}
		}
	case "/":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] / r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] / r[i]
			}
		}
	default:
		return fmt.Errorf("builtins: unknown arithmetic operator %q", op)
	}
	return nil
}

// VecCmpFloat is the vectorized numeric comparison: every numeric pair —
// including INT with INT — compares through float64 exactly as Compare does
// via AsDouble (deliberately lossy above 2^53, like the row path).
func VecCmpFloat(op string, dst []bool, l, r []float64, sel []int32) error {
	switch op {
	case "=":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] == r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] == r[i]
			}
		}
	case "<>":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] != r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] != r[i]
			}
		}
	case "<":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] < r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] < r[i]
			}
		}
	case "<=":
		// Ordering goes through Value.Compare in the row path, which reports
		// 0 when neither side is greater — so a NaN operand makes <= and >=
		// TRUE, unlike IEEE. Replicate that: <= is !(l > r), >= is !(l < r).
		if sel == nil {
			for i := range dst {
				dst[i] = !(l[i] > r[i])
			}
		} else {
			for _, i := range sel {
				dst[i] = !(l[i] > r[i])
			}
		}
	case ">":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] > r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] > r[i]
			}
		}
	case ">=":
		if sel == nil {
			for i := range dst {
				dst[i] = !(l[i] < r[i])
			}
		} else {
			for _, i := range sel {
				dst[i] = !(l[i] < r[i])
			}
		}
	default:
		return fmt.Errorf("builtins: unknown comparison operator %q", op)
	}
	return nil
}

// VecCmpString is the vectorized string comparison (Equal for =/<>,
// Value.Compare byte order for the rest).
func VecCmpString(op string, dst []bool, l, r []string, sel []int32) error {
	var f func(a, b string) bool
	switch op {
	case "=":
		f = func(a, b string) bool { return a == b }
	case "<>":
		f = func(a, b string) bool { return a != b }
	case "<":
		f = func(a, b string) bool { return a < b }
	case "<=":
		f = func(a, b string) bool { return a <= b }
	case ">":
		f = func(a, b string) bool { return a > b }
	case ">=":
		f = func(a, b string) bool { return a >= b }
	default:
		return fmt.Errorf("builtins: unknown comparison operator %q", op)
	}
	if sel == nil {
		for i := range dst {
			dst[i] = f(l[i], r[i])
		}
	} else {
		for _, i := range sel {
			dst[i] = f(l[i], r[i])
		}
	}
	return nil
}

// VecCmpBool is the vectorized boolean comparison (false orders before true,
// as Value.Compare defines).
func VecCmpBool(op string, dst, l, r []bool, sel []int32) error {
	var f func(a, b bool) bool
	switch op {
	case "=":
		f = func(a, b bool) bool { return a == b }
	case "<>":
		f = func(a, b bool) bool { return a != b }
	case "<":
		f = func(a, b bool) bool { return !a && b }
	case "<=":
		f = func(a, b bool) bool { return !a || b }
	case ">":
		f = func(a, b bool) bool { return a && !b }
	case ">=":
		f = func(a, b bool) bool { return a || !b }
	default:
		return fmt.Errorf("builtins: unknown comparison operator %q", op)
	}
	if sel == nil {
		for i := range dst {
			dst[i] = f(l[i], r[i])
		}
	} else {
		for _, i := range sel {
			dst[i] = f(l[i], r[i])
		}
	}
	return nil
}

// VecLogic is the vectorized two-valued AND/OR. Like the row evaluator it
// never short-circuits: both operand columns are fully evaluated before the
// combine.
func VecLogic(op string, dst, l, r []bool, sel []int32) error {
	switch op {
	case "AND":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] && r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] && r[i]
			}
		}
	case "OR":
		if sel == nil {
			for i := range dst {
				dst[i] = l[i] || r[i]
			}
		} else {
			for _, i := range sel {
				dst[i] = l[i] || r[i]
			}
		}
	default:
		return fmt.Errorf("builtins: unknown logical operator %q", op)
	}
	return nil
}

// VecNot is vectorized logical negation.
func VecNot(dst, src []bool, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = !src[i]
		}
	} else {
		for _, i := range sel {
			dst[i] = !src[i]
		}
	}
}
