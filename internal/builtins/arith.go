package builtins

import (
	"fmt"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

// ArithType infers the result type of l op r for op in {+, -, *, /},
// implementing the overloading rules of §3.2: element-wise over two objects
// of the same shape, broadcast between a scalar and a vector/matrix, and the
// usual numeric promotion between scalars. Dimension conflicts between two
// known shapes are compile-time errors.
func ArithType(op string, l, r types.T) (types.T, error) {
	switch {
	case l.IsNumericScalar() && r.IsNumericScalar():
		if op == "/" && l.Base == types.Int && r.Base == types.Int {
			return types.TInt, nil // SQL integer division
		}
		return types.Promote(l, r)
	case l.Base == types.Vector && r.Base == types.Vector:
		d, err := unifyDim(l.Dims[0], r.Dims[0])
		if err != nil {
			return types.T{}, fmt.Errorf("%w: %s %s %s", types.ErrTypeMismatch, l, op, r)
		}
		return types.TVector(d), nil
	case l.Base == types.Matrix && r.Base == types.Matrix:
		dr, err1 := unifyDim(l.Dims[0], r.Dims[0])
		dc, err2 := unifyDim(l.Dims[1], r.Dims[1])
		if err1 != nil || err2 != nil {
			return types.T{}, fmt.Errorf("%w: %s %s %s", types.ErrTypeMismatch, l, op, r)
		}
		return types.TMatrix(dr, dc), nil
	case l.IsNumericScalar() && r.IsLinAlg():
		return r, nil
	case l.IsLinAlg() && r.IsNumericScalar():
		return l, nil
	}
	return types.T{}, fmt.Errorf("%w: operator %s undefined for %s and %s", types.ErrTypeMismatch, op, l, r)
}

func unifyDim(a, b types.Dim) (types.Dim, error) {
	switch {
	case a.Known && b.Known:
		if a.N != b.N {
			return types.Dim{}, types.ErrTypeMismatch
		}
		return a, nil
	case a.Known:
		return a, nil
	default:
		return b, nil
	}
}

// CompareType checks l op r for op in {=, <>, <, <=, >, >=} and returns
// BOOLEAN. Equality is defined for all scalar types; ordering only for
// numerics, strings, and booleans; vectors and matrices are not comparable
// with these operators.
func CompareType(op string, l, r types.T) (types.T, error) {
	if l.IsLinAlg() || r.IsLinAlg() {
		return types.T{}, fmt.Errorf("%w: operator %s undefined for %s and %s", types.ErrTypeMismatch, op, l, r)
	}
	ok := (l.IsNumericScalar() && r.IsNumericScalar()) ||
		(l.Base == types.String && r.Base == types.String) ||
		(l.Base == types.Bool && r.Base == types.Bool)
	if !ok {
		return types.T{}, fmt.Errorf("%w: cannot compare %s with %s", types.ErrTypeMismatch, l, r)
	}
	return types.TBool, nil
}

// Arith evaluates l op r over runtime values, dispatching on the operand
// kinds exactly as ArithType does on their types.
func Arith(ec *EvalCtx, op string, l, r value.Value) (value.Value, error) {
	switch {
	case l.IsNumeric() && r.IsNumeric():
		return arithScalar(op, l, r)
	case l.Kind == value.KindVector && r.Kind == value.KindVector:
		return arithVecVec(op, l.Vec, r.Vec)
	case l.Kind == value.KindMatrix && r.Kind == value.KindMatrix:
		return arithMatMat(ec, op, l.Mat, r.Mat)
	case l.IsNumeric() && r.Kind == value.KindVector:
		s, _ := l.AsDouble()
		return arithScalarVec(op, s, r.Vec, true)
	case l.Kind == value.KindVector && r.IsNumeric():
		s, _ := r.AsDouble()
		return arithScalarVec(op, s, l.Vec, false)
	case l.IsNumeric() && r.Kind == value.KindMatrix:
		s, _ := l.AsDouble()
		return arithScalarMat(op, s, r.Mat, true)
	case l.Kind == value.KindMatrix && r.IsNumeric():
		s, _ := r.AsDouble()
		return arithScalarMat(op, s, l.Mat, false)
	}
	return value.Null(), fmt.Errorf("builtins: operator %s undefined for %s and %s", op, l.Kind, r.Kind)
}

func arithScalar(op string, l, r value.Value) (value.Value, error) {
	if l.Kind == value.KindInt && r.Kind == value.KindInt {
		switch op {
		case "+":
			return value.Int(l.I + r.I), nil
		case "-":
			return value.Int(l.I - r.I), nil
		case "*":
			return value.Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return value.Null(), fmt.Errorf("builtins: integer division by zero")
			}
			return value.Int(l.I / r.I), nil
		}
	}
	a, _ := l.AsDouble()
	b, _ := r.AsDouble()
	switch op {
	case "+":
		return value.Double(a + b), nil
	case "-":
		return value.Double(a - b), nil
	case "*":
		return value.Double(a * b), nil
	case "/":
		return value.Double(a / b), nil
	}
	return value.Null(), fmt.Errorf("builtins: unknown arithmetic operator %q", op)
}

func arithVecVec(op string, l, r *linalg.Vector) (value.Value, error) {
	var (
		out *linalg.Vector
		err error
	)
	switch op {
	case "+":
		out, err = l.Add(r)
	case "-":
		out, err = l.Sub(r)
	case "*":
		out, err = l.Mul(r)
	case "/":
		out, err = l.Div(r)
	default:
		return value.Null(), fmt.Errorf("builtins: unknown arithmetic operator %q", op)
	}
	if err != nil {
		return value.Null(), err
	}
	return value.Vector(out), nil
}

func arithMatMat(ec *EvalCtx, op string, l, r *linalg.Matrix) (value.Value, error) {
	var (
		out *linalg.Matrix
		err error
	)
	switch op {
	case "+":
		out, err = linalg.ParallelAdd(l, r, ec.Workers())
	case "-":
		out, err = linalg.ParallelSub(l, r, ec.Workers())
	case "*":
		out, err = linalg.ParallelHadamard(l, r, ec.Workers())
	case "/":
		out, err = linalg.ParallelDiv(l, r, ec.Workers())
	default:
		return value.Null(), fmt.Errorf("builtins: unknown arithmetic operator %q", op)
	}
	if err != nil {
		return value.Null(), err
	}
	return value.Matrix(out), nil
}

// arithScalarVec broadcasts scalar s against vector v; scalarLeft records
// which side the scalar appeared on (it matters for - and /).
func arithScalarVec(op string, s float64, v *linalg.Vector, scalarLeft bool) (value.Value, error) {
	switch op {
	case "+":
		return value.Vector(v.ScaleAdd(s)), nil
	case "*":
		return value.Vector(v.Scale(s)), nil
	case "-":
		if scalarLeft {
			return value.Vector(v.ScaleRSub(s)), nil
		}
		return value.Vector(v.ScaleAdd(-s)), nil
	case "/":
		if scalarLeft {
			return value.Vector(v.ScaleRDiv(s)), nil
		}
		return value.Vector(v.ScaleDiv(s)), nil
	}
	return value.Null(), fmt.Errorf("builtins: unknown arithmetic operator %q", op)
}

func arithScalarMat(op string, s float64, m *linalg.Matrix, scalarLeft bool) (value.Value, error) {
	switch op {
	case "+":
		return value.Matrix(m.ScaleAdd(s)), nil
	case "*":
		return value.Matrix(m.Scale(s)), nil
	case "-":
		if scalarLeft {
			return value.Matrix(m.ScaleRSub(s)), nil
		}
		return value.Matrix(m.ScaleAdd(-s)), nil
	case "/":
		if scalarLeft {
			return value.Matrix(m.ScaleRDiv(s)), nil
		}
		return value.Matrix(m.ScaleDiv(s)), nil
	}
	return value.Null(), fmt.Errorf("builtins: unknown arithmetic operator %q", op)
}

// Compare evaluates a comparison operator over runtime values, returning a
// BOOLEAN value.
func Compare(op string, l, r value.Value) (value.Value, error) {
	if op == "=" || op == "<>" {
		// Equality works for every scalar kind, including cross numeric kinds.
		if l.IsNumeric() && r.IsNumeric() {
			a, _ := l.AsDouble()
			b, _ := r.AsDouble()
			eq := a == b
			if op == "<>" {
				eq = !eq
			}
			return value.Bool(eq), nil
		}
		if l.Kind == value.KindVector || l.Kind == value.KindMatrix ||
			r.Kind == value.KindVector || r.Kind == value.KindMatrix {
			return value.Null(), fmt.Errorf("builtins: operator %s undefined for %s and %s", op, l.Kind, r.Kind)
		}
		eq := l.Equal(r)
		if op == "<>" {
			eq = !eq
		}
		return value.Bool(eq), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return value.Null(), err
	}
	switch op {
	case "<":
		return value.Bool(c < 0), nil
	case "<=":
		return value.Bool(c <= 0), nil
	case ">":
		return value.Bool(c > 0), nil
	case ">=":
		return value.Bool(c >= 0), nil
	}
	return value.Null(), fmt.Errorf("builtins: unknown comparison operator %q", op)
}
