package builtins

import (
	"sort"
	"testing"
)

func TestRegisterDuplicateIsError(t *testing.T) {
	// Colliding with an existing name must not clobber the registry.
	before, _ := Lookup("matrix_multiply")
	if err := register(&Builtin{Name: "matrix_multiply"}); err == nil {
		t.Fatal("register accepted a duplicate scalar builtin")
	}
	if after, _ := Lookup("matrix_multiply"); after != before {
		t.Fatal("failed duplicate registration replaced the original builtin")
	}

	beforeAgg, _ := LookupAgg("sum")
	if err := registerAgg(&AggSpec{Name: "sum"}); err == nil {
		t.Fatal("registerAgg accepted a duplicate aggregate")
	}
	if afterAgg, _ := LookupAgg("sum"); afterAgg != beforeAgg {
		t.Fatal("failed duplicate registration replaced the original aggregate")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no builtins registered")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}
