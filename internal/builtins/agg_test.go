package builtins

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

func runAgg(t *testing.T, name string, vals ...value.Value) value.Value {
	t.Helper()
	spec, ok := LookupAgg(name)
	if !ok {
		t.Fatalf("aggregate %q not registered", name)
	}
	st := spec.New()
	for _, v := range vals {
		if err := st.Step(v); err != nil {
			t.Fatalf("%s step: %v", name, err)
		}
	}
	out, err := st.Final()
	if err != nil {
		t.Fatalf("%s final: %v", name, err)
	}
	return out
}

func TestIsAggregate(t *testing.T) {
	for _, n := range []string{"sum", "count", "avg", "min", "max", "vectorize", "rowmatrix", "colmatrix"} {
		if !IsAggregate(n) {
			t.Errorf("%q not an aggregate", n)
		}
	}
	if IsAggregate("matrix_multiply") {
		t.Error("matrix_multiply misclassified as aggregate")
	}
}

func TestSumInts(t *testing.T) {
	got := runAgg(t, "sum", value.Int(1), value.Int(2), value.Int(3))
	if !got.Equal(value.Int(6)) {
		t.Fatalf("sum = %v", got)
	}
}

func TestSumMixedIntDouble(t *testing.T) {
	got := runAgg(t, "sum", value.Int(1), value.Double(2.5))
	if !got.Equal(value.Double(3.5)) {
		t.Fatalf("sum = %v", got)
	}
	// Double first, then int.
	got = runAgg(t, "sum", value.Double(2.5), value.Int(1))
	if !got.Equal(value.Double(3.5)) {
		t.Fatalf("sum = %v", got)
	}
}

func TestSumVectorsAndMatrices(t *testing.T) {
	got := runAgg(t, "sum", vec(1, 2), vec(3, 4), vec(5, 6))
	if !got.Equal(vec(9, 12)) {
		t.Fatalf("sum vectors = %v", got)
	}
	got = runAgg(t, "sum", value.Matrix(linalg.Identity(2)), value.Matrix(linalg.Identity(2)))
	if !got.Equal(value.Matrix(linalg.Identity(2).Scale(2))) {
		t.Fatalf("sum matrices = %v", got)
	}
}

func TestSumDoesNotMutateInput(t *testing.T) {
	v := linalg.VectorOf(1, 2)
	runAgg(t, "sum", value.Vector(v), vec(10, 10))
	if !v.Equal(linalg.VectorOf(1, 2)) {
		t.Fatal("SUM mutated its first input")
	}
}

func TestSumEmptyAndNulls(t *testing.T) {
	if got := runAgg(t, "sum"); !got.IsNull() {
		t.Fatalf("empty sum = %v, want NULL", got)
	}
	got := runAgg(t, "sum", value.Null(), value.Int(5), value.Null())
	if !got.Equal(value.Int(5)) {
		t.Fatalf("sum with nulls = %v", got)
	}
}

func TestSumMixedShapesError(t *testing.T) {
	spec, _ := LookupAgg("sum")
	st := spec.New()
	if err := st.Step(vec(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Step(vec(1, 2, 3)); err == nil {
		t.Fatal("mixed vector lengths accepted")
	}
	st = spec.New()
	_ = st.Step(value.Int(1))
	if err := st.Step(vec(1)); err == nil {
		t.Fatal("int then vector accepted")
	}
}

func TestCount(t *testing.T) {
	got := runAgg(t, "count", value.Int(1), value.Null(), value.String_("x"))
	if !got.Equal(value.Int(2)) {
		t.Fatalf("count = %v (NULLs don't count)", got)
	}
	if got := runAgg(t, "count"); !got.Equal(value.Int(0)) {
		t.Fatalf("empty count = %v", got)
	}
}

func TestAvg(t *testing.T) {
	got := runAgg(t, "avg", value.Int(1), value.Int(2))
	if !got.Equal(value.Double(1.5)) {
		t.Fatalf("avg = %v", got)
	}
	if got := runAgg(t, "avg"); !got.IsNull() {
		t.Fatalf("empty avg = %v", got)
	}
	got = runAgg(t, "avg", vec(1, 2), vec(3, 4))
	if !got.Equal(vec(2, 3)) {
		t.Fatalf("avg vectors = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	got := runAgg(t, "min", value.Int(3), value.Double(1.5), value.Int(2))
	if !got.Equal(value.Double(1.5)) {
		t.Fatalf("min = %v", got)
	}
	got = runAgg(t, "max", value.Int(3), value.Double(1.5))
	if !got.Equal(value.Int(3)) {
		t.Fatalf("max = %v", got)
	}
	if got := runAgg(t, "min"); !got.IsNull() {
		t.Fatalf("empty min = %v", got)
	}
	got = runAgg(t, "min", value.String_("b"), value.String_("a"))
	if !got.Equal(value.String_("a")) {
		t.Fatalf("min strings = %v", got)
	}
}

func TestVectorize(t *testing.T) {
	// The paper's example: VECTORIZE(label_scalar(y_i, i)).
	got := runAgg(t, "vectorize",
		value.LabeledScalar(30, 3),
		value.LabeledScalar(10, 1),
		value.LabeledScalar(0.5, 0),
	)
	// Holes (label 2) are zero; size = max label + 1 = 4.
	if !got.Vec.Equal(linalg.VectorOf(0.5, 10, 0, 30)) {
		t.Fatalf("vectorize = %v", got)
	}
	spec, _ := LookupAgg("vectorize")
	st := spec.New()
	if err := st.Step(value.LabeledScalar(1, -1)); err == nil {
		t.Fatal("negative label accepted")
	}
	if err := st.Step(value.Double(1)); err == nil {
		t.Fatal("unlabeled double accepted")
	}
}

func TestRowMatrix(t *testing.T) {
	got := runAgg(t, "rowmatrix",
		value.LabeledVector(linalg.VectorOf(3, 4), 1),
		value.LabeledVector(linalg.VectorOf(1, 2), 0),
	)
	want, _ := linalg.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if !got.Mat.Equal(want) {
		t.Fatalf("rowmatrix = %v", got)
	}
	// Hole row stays zero.
	got = runAgg(t, "rowmatrix", value.LabeledVector(linalg.VectorOf(5, 6), 2))
	want, _ = linalg.MatrixFromRows([][]float64{{0, 0}, {0, 0}, {5, 6}})
	if !got.Mat.Equal(want) {
		t.Fatalf("rowmatrix holes = %v", got)
	}
}

func TestColMatrix(t *testing.T) {
	got := runAgg(t, "colmatrix",
		value.LabeledVector(linalg.VectorOf(1, 2), 0),
		value.LabeledVector(linalg.VectorOf(3, 4), 1),
	)
	want, _ := linalg.MatrixFromRows([][]float64{{1, 3}, {2, 4}})
	if !got.Mat.Equal(want) {
		t.Fatalf("colmatrix = %v", got)
	}
}

func TestMatrixizeErrors(t *testing.T) {
	spec, _ := LookupAgg("rowmatrix")
	st := spec.New()
	if err := st.Step(value.LabeledVector(linalg.VectorOf(1), 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Step(value.LabeledVector(linalg.VectorOf(1, 2), 1)); err == nil {
		t.Fatal("ragged vectors accepted")
	}
	if err := st.Step(value.Vector(linalg.VectorOf(1))); err == nil {
		t.Fatal("default label -1 accepted")
	}
	if err := st.Step(value.Int(3)); err == nil {
		t.Fatal("int accepted by rowmatrix")
	}
}

func TestAggResultTypes(t *testing.T) {
	sum, _ := LookupAgg("sum")
	if ty, _ := sum.ResultType(types.TInt); ty != types.TInt {
		t.Fatal("SUM(int) type")
	}
	if ty, _ := sum.ResultType(types.TVector(types.KnownDim(5))); ty.String() != "VECTOR[5]" {
		t.Fatal("SUM(vector) type")
	}
	if _, err := sum.ResultType(types.TString); err == nil {
		t.Fatal("SUM(string) accepted")
	}
	cnt, _ := LookupAgg("count")
	if ty, _ := cnt.ResultType(types.TString); ty != types.TInt {
		t.Fatal("COUNT type")
	}
	vz, _ := LookupAgg("vectorize")
	if ty, _ := vz.ResultType(types.TLabeledScalar); ty.String() != "VECTOR[]" {
		t.Fatal("VECTORIZE type")
	}
	if _, err := vz.ResultType(types.TDouble); err == nil {
		t.Fatal("VECTORIZE(double) accepted")
	}
	rm, _ := LookupAgg("rowmatrix")
	if ty, _ := rm.ResultType(types.TVector(types.KnownDim(7))); ty.String() != "MATRIX[][7]" {
		t.Fatal("ROWMATRIX type")
	}
	cm, _ := LookupAgg("colmatrix")
	if ty, _ := cm.ResultType(types.TVector(types.KnownDim(7))); ty.String() != "MATRIX[7][]" {
		t.Fatal("COLMATRIX type")
	}
	avg, _ := LookupAgg("avg")
	if ty, _ := avg.ResultType(types.TInt); ty != types.TDouble {
		t.Fatal("AVG type")
	}
	mn, _ := LookupAgg("min")
	if ty, _ := mn.ResultType(types.TLabeledScalar); ty != types.TDouble {
		t.Fatal("MIN(labeled) type")
	}
	if _, err := mn.ResultType(types.TMatrix(types.UnknownDim, types.UnknownDim)); err == nil {
		t.Fatal("MIN(matrix) accepted")
	}
}

// TestPropMergeEquivalence: splitting any stream of inputs into two halves,
// aggregating separately, and merging must equal aggregating the whole
// stream. This is the invariant that makes distributed pre-aggregation
// correct.
func TestPropMergeEquivalence(t *testing.T) {
	aggs := []string{"sum", "count", "avg", "min", "max"}
	f := func(seed int64, split uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(split%12) + 2
		vals := make([]value.Value, n)
		for i := range vals {
			if r.Intn(6) == 0 {
				vals[i] = value.Null()
			} else {
				vals[i] = value.Double(float64(r.Intn(100)))
			}
		}
		cut := int(split) % n
		for _, name := range aggs {
			spec, _ := LookupAgg(name)
			whole := spec.New()
			for _, v := range vals {
				if err := whole.Step(v); err != nil {
					return false
				}
			}
			left, right := spec.New(), spec.New()
			for _, v := range vals[:cut] {
				_ = left.Step(v)
			}
			for _, v := range vals[cut:] {
				_ = right.Step(v)
			}
			if err := left.Merge(right); err != nil {
				return false
			}
			a, err1 := whole.Final()
			b, err2 := left.Final()
			if err1 != nil || err2 != nil {
				return false
			}
			if a.IsNull() != b.IsNull() {
				return false
			}
			if !a.IsNull() {
				x, _ := a.AsDouble()
				y, _ := b.AsDouble()
				if x != y {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeEquivalenceVectorize(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(split%10) + 2
		vals := make([]value.Value, n)
		for i := range vals {
			vals[i] = value.LabeledScalar(r.Float64()*10, int64(i))
		}
		cut := int(split) % n
		spec, _ := LookupAgg("vectorize")
		whole := spec.New()
		for _, v := range vals {
			if err := whole.Step(v); err != nil {
				return false
			}
		}
		left, right := spec.New(), spec.New()
		for _, v := range vals[:cut] {
			_ = left.Step(v)
		}
		for _, v := range vals[cut:] {
			_ = right.Step(v)
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		a, _ := whole.Final()
		b, _ := left.Final()
		return a.Vec.Equal(b.Vec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSumVectorMergeAcrossPartials(t *testing.T) {
	spec, _ := LookupAgg("sum")
	a, b := spec.New(), spec.New()
	_ = a.Step(vec(1, 1))
	_ = b.Step(vec(2, 2))
	_ = b.Step(vec(3, 3))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Final()
	if !got.Equal(vec(6, 6)) {
		t.Fatalf("merged sum = %v", got)
	}
	// Merging an empty partial is a no-op.
	if err := a.Merge(spec.New()); err != nil {
		t.Fatal(err)
	}
	got, _ = a.Final()
	if !got.Equal(vec(6, 6)) {
		t.Fatalf("after empty merge = %v", got)
	}
}

func TestRowMatrixMerge(t *testing.T) {
	spec, _ := LookupAgg("rowmatrix")
	a, b := spec.New(), spec.New()
	_ = a.Step(value.LabeledVector(linalg.VectorOf(1, 2), 0))
	_ = b.Step(value.LabeledVector(linalg.VectorOf(3, 4), 1))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Final()
	want, _ := linalg.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if !got.Mat.Equal(want) {
		t.Fatalf("merged rowmatrix = %v", got)
	}
}

func TestMinMaxVectorsElementwise(t *testing.T) {
	// MIN/MAX over VECTOR aggregate element-wise (block-based distance).
	got := runAgg(t, "min", vec(1, 5, 3), vec(2, 4, 3), vec(0, 9, 9))
	if !got.Equal(vec(0, 4, 3)) {
		t.Fatalf("vector MIN = %v", got)
	}
	got = runAgg(t, "max", vec(1, 5), vec(2, 4))
	if !got.Equal(vec(2, 5)) {
		t.Fatalf("vector MAX = %v", got)
	}
	// Result type propagates the vector type.
	mn, _ := LookupAgg("min")
	if ty, err := mn.ResultType(types.TVector(types.KnownDim(3))); err != nil || ty.String() != "VECTOR[3]" {
		t.Fatalf("MIN(vector) type %v, %v", ty, err)
	}
	// Mixed vector/scalar streams error.
	spec, _ := LookupAgg("min")
	st := spec.New()
	_ = st.Step(vec(1))
	if err := st.Step(value.Double(1)); err == nil {
		t.Fatal("mixed vector/scalar MIN accepted")
	}
	// Length mismatch errors.
	st = spec.New()
	_ = st.Step(vec(1, 2))
	if err := st.Step(vec(1)); err == nil {
		t.Fatal("ragged vector MIN accepted")
	}
	// The aggregated state must not alias its first input.
	v := linalg.VectorOf(5, 5)
	st = spec.New()
	_ = st.Step(value.Vector(v))
	_ = st.Step(vec(1, 9))
	if !v.Equal(linalg.VectorOf(5, 5)) {
		t.Fatal("MIN mutated its input vector")
	}
}

func TestAggVectorMinMerge(t *testing.T) {
	spec, _ := LookupAgg("min")
	a, b := spec.New(), spec.New()
	_ = a.Step(vec(3, 1))
	_ = b.Step(vec(2, 2))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Final()
	if !got.Equal(vec(2, 1)) {
		t.Fatalf("merged vector MIN = %v", got)
	}
}

func TestSumMatrixThenVectorErrors(t *testing.T) {
	spec, _ := LookupAgg("sum")
	st := spec.New()
	_ = st.Step(value.Matrix(linalg.Identity(2)))
	if err := st.Step(vec(1)); err == nil {
		t.Fatal("matrix then vector accepted")
	}
	st = spec.New()
	_ = st.Step(vec(1))
	if err := st.Step(value.Matrix(linalg.Identity(2))); err == nil {
		t.Fatal("vector then matrix accepted")
	}
	// SUM over a string is an error.
	st = spec.New()
	if err := st.Step(value.String_("x")); err == nil {
		t.Fatal("SUM over string accepted")
	}
}
