package builtins

// EvalCtx carries per-query evaluation state into built-in functions. Today
// that is just the kernel-worker budget: when many queries execute
// concurrently against one process, the serving layer leases each query a
// slice of the machine's cores, and that lease must reach the parallel
// linalg kernels the builtins invoke. Expression evaluation itself stays
// pure — the context is read-only configuration, not mutable state.
//
// A nil *EvalCtx is valid everywhere and means "no explicit budget": kernels
// then draw from the deprecated process-wide default
// (linalg.DefaultWorkers), preserving the old single-caller behavior.
type EvalCtx struct {
	// KernelWorkers is the goroutine budget for parallel kernels invoked
	// while evaluating under this context. 0 means no explicit budget.
	KernelWorkers int
}

// Workers returns the kernel-worker budget, nil-safe (nil → 0, i.e. fall
// back to the process default inside linalg.planWorkers).
func (ec *EvalCtx) Workers() int {
	if ec == nil {
		return 0
	}
	return ec.KernelWorkers
}
