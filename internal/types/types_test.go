package types

import (
	"errors"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[string]T{
		"INTEGER":        TInt,
		"DOUBLE":         TDouble,
		"BOOLEAN":        TBool,
		"STRING":         TString,
		"LABELED_SCALAR": TLabeledScalar,
		"VECTOR[10]":     TVector(KnownDim(10)),
		"VECTOR[]":       TVector(UnknownDim),
		"MATRIX[3][4]":   TMatrix(KnownDim(3), KnownDim(4)),
		"MATRIX[][]":     TMatrix(UnknownDim, UnknownDim),
		"MATRIX[10][]":   TMatrix(KnownDim(10), UnknownDim),
		"MATRIX[a][b]":   TMatrix(VarDim("a"), VarDim("b")),
	}
	for want, ty := range cases {
		if ty.String() != want {
			t.Errorf("String = %q, want %q", ty.String(), want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !TInt.IsNumericScalar() || !TDouble.IsNumericScalar() || !TLabeledScalar.IsNumericScalar() {
		t.Fatal("numeric scalars misclassified")
	}
	if TString.IsNumericScalar() || TVector(UnknownDim).IsNumericScalar() {
		t.Fatal("non-numerics misclassified")
	}
	if !TVector(UnknownDim).IsLinAlg() || !TMatrix(UnknownDim, UnknownDim).IsLinAlg() || TInt.IsLinAlg() {
		t.Fatal("IsLinAlg misclassified")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := TMatrix(KnownDim(10), KnownDim(100000)).SizeBytes(1); got != 8*10*100000+8 {
		t.Fatalf("matrix size = %g", got)
	}
	if got := TVector(KnownDim(100)).SizeBytes(1); got != 812 {
		t.Fatalf("vector size = %g", got)
	}
	// Unknown dims use the fallback.
	if got := TVector(UnknownDim).SizeBytes(1000); got != 8012 {
		t.Fatalf("unknown vector size = %g", got)
	}
	if TInt.SizeBytes(0) != 8 || TBool.SizeBytes(0) != 1 || TLabeledScalar.SizeBytes(0) != 16 {
		t.Fatal("scalar sizes wrong")
	}
}

func TestAssignableTo(t *testing.T) {
	cases := []struct {
		val, decl T
		want      bool
	}{
		{TInt, TDouble, true},
		{TLabeledScalar, TDouble, true},
		{TDouble, TInt, false},
		{TInt, TInt, true},
		{TString, TString, true},
		{TString, TDouble, false},
		{TVector(KnownDim(10)), TVector(KnownDim(10)), true},
		{TVector(KnownDim(10)), TVector(UnknownDim), true},
		{TVector(UnknownDim), TVector(KnownDim(10)), true}, // checked at run time
		{TVector(KnownDim(10)), TVector(KnownDim(9)), false},
		{TMatrix(KnownDim(2), KnownDim(3)), TMatrix(KnownDim(2), UnknownDim), true},
		{TMatrix(KnownDim(2), KnownDim(3)), TMatrix(KnownDim(3), KnownDim(3)), false},
		{TVector(KnownDim(3)), TMatrix(KnownDim(3), KnownDim(1)), false},
		{TInt, TAny, true},
		{TMatrix(UnknownDim, UnknownDim), TAny, true},
	}
	for _, c := range cases {
		if got := c.val.AssignableTo(c.decl); got != c.want {
			t.Errorf("%s assignable to %s = %v, want %v", c.val, c.decl, got, c.want)
		}
	}
}

func TestPromote(t *testing.T) {
	ii, err := Promote(TInt, TInt)
	if err != nil || ii != TInt {
		t.Fatalf("int+int = %v, %v", ii, err)
	}
	id, err := Promote(TInt, TDouble)
	if err != nil || id != TDouble {
		t.Fatalf("int+double = %v, %v", id, err)
	}
	ld, err := Promote(TLabeledScalar, TInt)
	if err != nil || ld != TDouble {
		t.Fatalf("labeled+int = %v, %v", ld, err)
	}
	if _, err := Promote(TString, TInt); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("string promotion error = %v", err)
	}
}

// The paper's matrix_multiply signature.
var sigMatMul = Signature{
	Params: []T{TMatrix(VarDim("a"), VarDim("b")), TMatrix(VarDim("b"), VarDim("c"))},
	Result: TMatrix(VarDim("a"), VarDim("c")),
}

func TestUnifyPaperExample(t *testing.T) {
	// U (u_matrix MATRIX[1000][100]), V (v_matrix MATRIX[100][10000])
	res, b, err := sigMatMul.Unify([]T{
		TMatrix(KnownDim(1000), KnownDim(100)),
		TMatrix(KnownDim(100), KnownDim(10000)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "MATRIX[1000][10000]" {
		t.Fatalf("result = %s", res)
	}
	if b["a"] != 1000 || b["b"] != 100 || b["c"] != 10000 {
		t.Fatalf("bindings = %v", b)
	}
}

func TestUnifyDimensionConflict(t *testing.T) {
	// b bound to 100 then 99 -> compile-time error (paper: "a different
	// value for b would cause a compile-time error").
	_, _, err := sigMatMul.Unify([]T{
		TMatrix(KnownDim(1000), KnownDim(100)),
		TMatrix(KnownDim(99), KnownDim(10000)),
	})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("error = %v, want ErrTypeMismatch", err)
	}
}

func TestUnifyUnknownDimsDeferred(t *testing.T) {
	// MATRIX[][] inputs: no bindings, result fully unknown, no error.
	res, b, err := sigMatMul.Unify([]T{
		TMatrix(UnknownDim, UnknownDim),
		TMatrix(UnknownDim, KnownDim(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || b["c"] != 7 {
		t.Fatalf("bindings = %v", b)
	}
	if res.String() != "MATRIX[][7]" {
		t.Fatalf("result = %s", res)
	}
}

func TestUnifySquareConstraint(t *testing.T) {
	// diag(MATRIX[a][a]) -> VECTOR[a]
	sigDiag := Signature{
		Params: []T{TMatrix(VarDim("a"), VarDim("a"))},
		Result: TVector(VarDim("a")),
	}
	res, _, err := sigDiag.Unify([]T{TMatrix(KnownDim(5), KnownDim(5))})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "VECTOR[5]" {
		t.Fatalf("diag result = %s", res)
	}
	if _, _, err := sigDiag.Unify([]T{TMatrix(KnownDim(5), KnownDim(6))}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("non-square diag error = %v", err)
	}
}

func TestUnifyMatVecSizeCheck(t *testing.T) {
	// matrix_vector_multiply(MATRIX[a][b], VECTOR[b]) -> VECTOR[a]
	sig := Signature{
		Params: []T{TMatrix(VarDim("a"), VarDim("b")), TVector(VarDim("b"))},
		Result: TVector(VarDim("a")),
	}
	// The paper's example: MATRIX[10][10] with VECTOR[100] must not compile.
	_, _, err := sig.Unify([]T{TMatrix(KnownDim(10), KnownDim(10)), TVector(KnownDim(100))})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("error = %v, want ErrTypeMismatch", err)
	}
	// MATRIX[10][10] with VECTOR[10] compiles to VECTOR[10].
	res, _, err := sig.Unify([]T{TMatrix(KnownDim(10), KnownDim(10)), TVector(KnownDim(10))})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "VECTOR[10]" {
		t.Fatalf("result = %s", res)
	}
	// MATRIX[10][10] with VECTOR[] compiles (run-time check), result VECTOR[10].
	res, _, err = sig.Unify([]T{TMatrix(KnownDim(10), KnownDim(10)), TVector(UnknownDim)})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "VECTOR[10]" {
		t.Fatalf("result = %s", res)
	}
}

func TestUnifyArgCountAndBase(t *testing.T) {
	if _, _, err := sigMatMul.Unify([]T{TMatrix(UnknownDim, UnknownDim)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("arity error = %v", err)
	}
	if _, _, err := sigMatMul.Unify([]T{TVector(UnknownDim), TMatrix(UnknownDim, UnknownDim)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("base error = %v", err)
	}
}

func TestUnifyScalarParams(t *testing.T) {
	// label_scalar(DOUBLE, INTEGER) -> LABELED_SCALAR accepts INT for DOUBLE.
	sig := Signature{Params: []T{TDouble, TInt}, Result: TLabeledScalar}
	res, _, err := sig.Unify([]T{TInt, TInt})
	if err != nil || res != TLabeledScalar {
		t.Fatalf("res = %v, err = %v", res, err)
	}
	if _, _, err := sig.Unify([]T{TString, TInt}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("string-for-double error = %v", err)
	}
	if _, _, err := sig.Unify([]T{TDouble, TDouble}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("double-for-int error = %v", err)
	}
}

func TestUnifyFixedDims(t *testing.T) {
	// A signature with a literal dimension: f(VECTOR[3]) -> DOUBLE.
	sig := Signature{Params: []T{TVector(KnownDim(3))}, Result: TDouble}
	if _, _, err := sig.Unify([]T{TVector(KnownDim(4))}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("fixed dim error = %v", err)
	}
	if _, _, err := sig.Unify([]T{TVector(KnownDim(3))}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sig.Unify([]T{TVector(UnknownDim)}); err != nil {
		t.Fatal(err) // deferred to run time
	}
}

func TestSignatureString(t *testing.T) {
	if got := sigMatMul.String(); got != "(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]" {
		t.Fatalf("String = %q", got)
	}
}
