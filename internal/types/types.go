// Package types implements the extended SQL type system of the paper:
// the classic scalar types plus LABELED_SCALAR, VECTOR[n] and MATRIX[r][c]
// with optionally-unknown dimensions, and the templated function signatures
// of §4.2 whose dimension variables let both the type checker and the query
// optimizer infer the exact shapes (and therefore byte sizes) of linear
// algebra intermediates.
package types

import (
	"errors"
	"fmt"
	"strconv"
)

// Base enumerates the storage classes of the type system.
type Base uint8

// The base types. Any is used only inside built-in signatures that accept
// every type (e.g. COUNT).
const (
	Invalid Base = iota
	Bool
	Int
	Double
	String
	LabeledScalar
	Vector
	Matrix
	Any
)

func (b Base) String() string {
	switch b {
	case Bool:
		return "BOOLEAN"
	case Int:
		return "INTEGER"
	case Double:
		return "DOUBLE"
	case String:
		return "STRING"
	case LabeledScalar:
		return "LABELED_SCALAR"
	case Vector:
		return "VECTOR"
	case Matrix:
		return "MATRIX"
	case Any:
		return "ANY"
	}
	return "INVALID"
}

// Dim is one dimension of a VECTOR or MATRIX type. A dimension is either a
// known constant, unknown (declared as VECTOR[] / MATRIX[][]), or — inside a
// function signature template only — a named variable such as the a, b, c of
//
//	matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]
type Dim struct {
	N     int    // valid when Known
	Var   string // non-empty means a template variable
	Known bool
}

// UnknownDim is the dimension of a VECTOR[] declaration.
var UnknownDim = Dim{}

// KnownDim returns a constant dimension.
func KnownDim(n int) Dim { return Dim{N: n, Known: true} }

// VarDim returns a template dimension variable.
func VarDim(name string) Dim { return Dim{Var: name} }

func (d Dim) String() string {
	switch {
	case d.Known:
		return strconv.Itoa(d.N)
	case d.Var != "":
		return d.Var
	default:
		return ""
	}
}

// T is an extended SQL type. Vector types use Dims[0]; matrix types use
// Dims[0] (rows) and Dims[1] (cols); all other bases ignore Dims.
type T struct {
	Base Base
	Dims [2]Dim
}

// Convenience constructors.
var (
	TBool          = T{Base: Bool}
	TInt           = T{Base: Int}
	TDouble        = T{Base: Double}
	TString        = T{Base: String}
	TLabeledScalar = T{Base: LabeledScalar}
	TAny           = T{Base: Any}
)

// TVector returns the VECTOR[n] type; pass UnknownDim for VECTOR[].
func TVector(n Dim) T { return T{Base: Vector, Dims: [2]Dim{n, {}}} }

// TMatrix returns the MATRIX[r][c] type.
func TMatrix(r, c Dim) T { return T{Base: Matrix, Dims: [2]Dim{r, c}} }

func (t T) String() string {
	switch t.Base {
	case Vector:
		return fmt.Sprintf("VECTOR[%s]", t.Dims[0])
	case Matrix:
		return fmt.Sprintf("MATRIX[%s][%s]", t.Dims[0], t.Dims[1])
	default:
		return t.Base.String()
	}
}

// IsNumericScalar reports whether t participates in scalar arithmetic.
func (t T) IsNumericScalar() bool {
	return t.Base == Int || t.Base == Double || t.Base == LabeledScalar
}

// IsLinAlg reports whether t is a VECTOR or MATRIX.
func (t T) IsLinAlg() bool { return t.Base == Vector || t.Base == Matrix }

// SizeBytes estimates the byte width of one value of this type for the cost
// model. Unknown dimensions fall back to defaultDim, so plans over VECTOR[]
// columns still get a usable (if rough) estimate.
func (t T) SizeBytes(defaultDim int) float64 {
	dim := func(d Dim) float64 {
		if d.Known {
			return float64(d.N)
		}
		return float64(defaultDim)
	}
	switch t.Base {
	case Bool:
		return 1
	case Int, Double:
		return 8
	case LabeledScalar:
		return 16
	case String:
		return 24
	case Vector:
		return 8*dim(t.Dims[0]) + 12
	case Matrix:
		return 8*dim(t.Dims[0])*dim(t.Dims[1]) + 8
	}
	return 8
}

// ErrTypeMismatch is wrapped by every type error raised during unification.
var ErrTypeMismatch = errors.New("types: mismatch")

// AssignableTo reports whether a value of type t can be stored in a column
// declared as decl. INTEGER promotes to DOUBLE; LABELED_SCALAR decays to
// DOUBLE; a known dimension satisfies an unknown declared dimension but not a
// different known one.
func (t T) AssignableTo(decl T) bool {
	if decl.Base == Any {
		return true
	}
	switch decl.Base {
	case Double:
		return t.Base == Double || t.Base == Int || t.Base == LabeledScalar
	case Int:
		return t.Base == Int
	case Vector, Matrix:
		if t.Base != decl.Base {
			return false
		}
		for i := 0; i < 2; i++ {
			if decl.Dims[i].Known && t.Dims[i].Known && decl.Dims[i].N != t.Dims[i].N {
				return false
			}
		}
		return true
	default:
		return t.Base == decl.Base
	}
}

// Promote computes the result type of mixing two numeric scalar types.
func Promote(a, b T) (T, error) {
	if !a.IsNumericScalar() || !b.IsNumericScalar() {
		return T{}, fmt.Errorf("%w: no numeric promotion for %s and %s", ErrTypeMismatch, a, b)
	}
	if a.Base == Int && b.Base == Int {
		return TInt, nil
	}
	return TDouble, nil
}
