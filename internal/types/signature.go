package types

import (
	"fmt"
)

// Signature is a templated function type signature (paper §4.2). Dimension
// variables appearing in Params are bound against the actual argument types;
// the bindings then instantiate the Result type, so the optimizer learns the
// exact output shape. For example:
//
//	matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]
//
// applied to MATRIX[1000][100] and MATRIX[100][10000] binds a=1000, b=100,
// c=10000 and yields MATRIX[1000][10000]; applied to MATRIX[10][10] and
// VECTOR-incompatible or dimension-conflicting arguments it reports a
// compile-time error.
type Signature struct {
	Params []T
	Result T
}

// Bindings maps dimension-variable names to known sizes.
type Bindings map[string]int

// Unify binds the signature's dimension variables against the actual
// argument types and returns the instantiated result type.
//
// Rules, following the paper:
//   - base types must match after numeric promotion (INT and LABELED_SCALAR
//     are accepted where DOUBLE is expected);
//   - a known actual dimension binds a free variable, and must equal an
//     already-bound variable (conflict = compile-time error, as in §4.2
//     where binding b twice with different values is an error);
//   - an unknown actual dimension (VECTOR[] column) binds nothing: checks
//     involving it are deferred to run time, and any result dimension
//     depending on an unbound variable comes out unknown.
func (s Signature) Unify(args []T) (T, Bindings, error) {
	if len(args) != len(s.Params) {
		return T{}, nil, fmt.Errorf("%w: got %d arguments, want %d", ErrTypeMismatch, len(args), len(s.Params))
	}
	b := Bindings{}
	for i, p := range s.Params {
		a := args[i]
		if err := bindParam(b, p, a, i); err != nil {
			return T{}, nil, err
		}
	}
	return instantiate(s.Result, b), b, nil
}

func bindParam(b Bindings, p, a T, argIdx int) error {
	switch p.Base {
	case Any:
		return nil
	case Double:
		if !a.IsNumericScalar() {
			return fmt.Errorf("%w: argument %d is %s, want DOUBLE", ErrTypeMismatch, argIdx+1, a)
		}
		return nil
	case Int:
		if a.Base != Int {
			return fmt.Errorf("%w: argument %d is %s, want INTEGER", ErrTypeMismatch, argIdx+1, a)
		}
		return nil
	case Vector, Matrix:
		if a.Base != p.Base {
			return fmt.Errorf("%w: argument %d is %s, want %s", ErrTypeMismatch, argIdx+1, a, p.Base)
		}
		ndims := 1
		if p.Base == Matrix {
			ndims = 2
		}
		for d := 0; d < ndims; d++ {
			if err := bindDim(b, p.Dims[d], a.Dims[d], argIdx, d); err != nil {
				return err
			}
		}
		return nil
	default:
		if a.Base != p.Base {
			return fmt.Errorf("%w: argument %d is %s, want %s", ErrTypeMismatch, argIdx+1, a, p)
		}
		return nil
	}
}

func bindDim(b Bindings, p, a Dim, argIdx, dimIdx int) error {
	switch {
	case p.Var != "":
		if !a.Known {
			return nil // defer to run time
		}
		if bound, ok := b[p.Var]; ok {
			if bound != a.N {
				return fmt.Errorf("%w: dimension %s bound to %d but argument %d has %d",
					ErrTypeMismatch, p.Var, bound, argIdx+1, a.N)
			}
			return nil
		}
		b[p.Var] = a.N
		return nil
	case p.Known:
		if a.Known && a.N != p.N {
			return fmt.Errorf("%w: argument %d dimension %d is %d, want %d",
				ErrTypeMismatch, argIdx+1, dimIdx+1, a.N, p.N)
		}
		return nil
	default:
		return nil
	}
}

func instantiate(t T, b Bindings) T {
	if !t.IsLinAlg() {
		return t
	}
	out := t
	for i := 0; i < 2; i++ {
		d := t.Dims[i]
		if d.Var != "" {
			if n, ok := b[d.Var]; ok {
				out.Dims[i] = KnownDim(n)
			} else {
				out.Dims[i] = UnknownDim
			}
		}
	}
	return out
}

func (s Signature) String() string {
	out := "("
	for i, p := range s.Params {
		if i > 0 {
			out += ", "
		}
		out += p.String()
	}
	return out + ") -> " + s.Result.String()
}
