// Package fault is the deterministic fault-injection layer for the simulated
// shared-nothing cluster. The paper's platform argument leans on SimSQL
// inheriting Hadoop's fault tolerance "for free"; this package is what lets
// the simulation exercise (and test) that property: partition-task crashes,
// transient shuffle ser-de corruption, spill-file write failures, and
// straggler delays, all decided by a seeded splitmix64 draw keyed on
// (injection site, partition, attempt) so every run at a given seed injects
// exactly the same faults.
//
// Determinism contract (the lalint nondeterminism policy applies to this
// package): no wall-clock reads, no global math/rand — every decision is a
// pure function of (Config.Seed, site, partition, attempt), plus a per-label
// monotone counter for spill sites that is itself deterministic because each
// retry of a partition task replays the same label sequence at the next
// attempt number.
//
// Transient-fault guarantee: a transient fault never fires on a task's final
// allowed attempt (attempt >= Attempts()-1 draws are suppressed), so under
// transient-only injection every task eventually succeeds at ANY seed and the
// query result is bit-identical to the fault-free run. Permanent faults
// (PermanentProb) are keyed without the attempt number: once drawn for a
// (site, partition) they fire on every retry, exhaust the attempt budget, and
// surface as a TaskError naming operator, partition, and attempt.
package fault

import (
	"errors"
	"fmt"
	"time"
)

// DefaultMaxAttempts bounds retries per partition task when Config.MaxAttempts
// is unset: the first attempt plus two re-executions.
const DefaultMaxAttempts = 3

// defaultBackoff is the base deterministic retry backoff when
// Config.RetryBackoff is unset. It doubles per attempt (see Backoff).
const defaultBackoff = 100 * time.Microsecond

// defaultStragglerDelay is the injected slowdown when StragglerProb fires and
// Config.StragglerDelay is unset.
const defaultStragglerDelay = time.Millisecond

// Config enables and sizes the injection layer; the zero value disables it
// entirely. Probabilities are per injection point in [0, 1].
type Config struct {
	// Seed keys every draw; two clusters with the same seed and workload
	// inject identical faults.
	Seed uint64
	// MaxAttempts bounds executions per partition task (first attempt
	// included); 0 means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the base deterministic wait before a retry; it doubles
	// per attempt. 0 means a small default; negative disables waiting.
	RetryBackoff time.Duration
	// CrashProb injects a transient partition-task crash at task start.
	CrashProb float64
	// PermanentProb injects a permanent crash: drawn per (site, partition)
	// without the attempt, so retries cannot clear it.
	PermanentProb float64
	// ShuffleProb injects a transient ser-de error while an exchange
	// destination is decoding its incoming rows.
	ShuffleProb float64
	// SpillProb injects a transient spill-run write failure, keyed by the
	// run's label and the owning task's attempt.
	SpillProb float64
	// StragglerProb marks a task attempt as a straggler: it is delayed by
	// StragglerDelay, and (with Speculate) a backup attempt races it.
	StragglerProb float64
	// TornWriteProb injects a torn storage write: a physical write to the
	// paged storage engine (a data page or a journal frame) is truncated to
	// a seeded prefix and the process is treated as crashed. Unlike the
	// transient faults above this is NOT retryable — it simulates losing
	// power mid-write — so the store fails the operation and recovery on the
	// next Open must discard exactly the unfinished tail. The draw is keyed
	// by the write's sequence number, so a given seed crashes at the same
	// write every run. Depending on where the cut lands, replay observes
	// either a short read (a frame or page header cut mid-field) or a torn
	// frame (a complete-looking length prefix whose payload checksum fails);
	// both must recover to the last committed state.
	TornWriteProb float64
	// StorageFailAfter, when > 0, deterministically tears the Nth storage
	// write (1-based) regardless of TornWriteProb — the knob the recovery
	// tests sweep to place a crash at every page and journal-frame boundary.
	StorageFailAfter int64
	// StragglerDelay is the injected slowdown; 0 means a small default.
	StragglerDelay time.Duration
	// Speculate re-launches straggler attempts speculatively: the original
	// and the backup race, the first finisher wins, and ties break toward
	// the lower attempt id. Results are unaffected either way because both
	// attempts compute from the same immutable snapshot.
	Speculate bool
}

// Enabled reports whether any injection point is active.
func (c Config) Enabled() bool {
	return c.CrashProb > 0 || c.PermanentProb > 0 || c.ShuffleProb > 0 ||
		c.SpillProb > 0 || c.StragglerProb > 0 || c.TornWriteProb > 0 ||
		c.StorageFailAfter > 0
}

// Attempts returns the effective per-task attempt bound.
func (c Config) Attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return DefaultMaxAttempts
}

// ErrInjected is the sentinel wrapped by every injected fault; errors.Is
// distinguishes injected failures from real ones in tests and sweeps.
var ErrInjected = errors.New("fault: injected")

// injected is the concrete injected-fault error: Kind names the injection
// point, Transient tells the retry layer whether re-execution can clear it.
type injected struct {
	Kind      string
	Transient bool
	Detail    string
}

func (e *injected) Error() string {
	mode := "permanent"
	if e.Transient {
		mode = "transient"
	}
	return fmt.Sprintf("fault: injected %s %s (%s)", mode, e.Kind, e.Detail)
}

func (e *injected) Unwrap() error { return ErrInjected }

// Transient reports whether err (anywhere in its chain) is an injected fault
// that a bounded re-execution of the task can clear. Real errors — codec
// corruption, budget exhaustion, expression failures — are never transient.
func Transient(err error) bool {
	var inj *injected
	return errors.As(err, &inj) && inj.Transient
}

// TaskError wraps a partition task's final failure with the operator,
// partition, and attempt that observed it — the diagnosability contract for
// permanent faults. Unwrap keeps errors.Is/As matching the cause.
type TaskError struct {
	Op      string
	Part    int
	Attempt int
	Err     error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("task %s[p%d] attempt %d: %v", e.Op, e.Part, e.Attempt, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// Injector makes the deterministic injection decisions for one cluster. A nil
// injector is valid and injects nothing, so fault-free paths pay only a nil
// check.
type Injector struct {
	cfg  Config
	seed uint64
}

// New returns an injector for the config, or nil when injection is disabled.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, seed: splitmix64(cfg.Seed ^ 0x6c61666175746c74)}
}

// Attempts returns the per-task attempt bound (nil-safe: 1 when disabled,
// since without injection no error is retryable).
func (in *Injector) Attempts() int {
	if in == nil {
		return 1
	}
	return in.cfg.Attempts()
}

// Speculate reports whether straggler attempts get a speculative backup.
func (in *Injector) Speculate() bool { return in != nil && in.cfg.Speculate }

// Backoff returns the deterministic wait before re-running attempt (1-based
// retry count: the wait before attempt n). It doubles per retry, capped at
// 16x base, and is a computed value — recording it in a timing table is
// deterministic.
func (in *Injector) Backoff(attempt int) time.Duration {
	if in == nil {
		return 0
	}
	base := in.cfg.RetryBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = defaultBackoff
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 4 {
		shift = 4
	}
	return base << uint(shift)
}

// transientOK reports whether a transient fault may fire at this attempt: the
// final allowed attempt is always clean, which is what bounds retries and
// guarantees convergence at any seed.
func (in *Injector) transientOK(attempt int) bool {
	return attempt < in.cfg.Attempts()-1
}

// Crash decides whether task (op, part) crashes at the start of attempt. The
// permanent draw is keyed without the attempt so it fires on every retry.
func (in *Injector) Crash(op string, part, attempt int) error {
	if in == nil {
		return nil
	}
	if in.cfg.PermanentProb > 0 && in.draw("perm-crash", fnv64(op), part, 0) < in.cfg.PermanentProb {
		return &injected{Kind: "crash", Transient: false,
			Detail: fmt.Sprintf("%s partition %d attempt %d", op, part, attempt)}
	}
	if in.cfg.CrashProb > 0 && in.transientOK(attempt) &&
		in.draw("crash", fnv64(op), part, attempt) < in.cfg.CrashProb {
		return &injected{Kind: "crash", Transient: true,
			Detail: fmt.Sprintf("%s partition %d attempt %d", op, part, attempt)}
	}
	return nil
}

// ShuffleCorrupt decides whether exchange op's destination dst observes a
// transient ser-de failure while decoding attempt's incoming rows.
func (in *Injector) ShuffleCorrupt(op string, dst, attempt int) error {
	if in == nil || in.cfg.ShuffleProb <= 0 || !in.transientOK(attempt) {
		return nil
	}
	if in.draw("shuffle", fnv64(op), dst, attempt) < in.cfg.ShuffleProb {
		return &injected{Kind: "shuffle ser-de error", Transient: true,
			Detail: fmt.Sprintf("%s destination %d attempt %d", op, dst, attempt)}
	}
	return nil
}

// SpillWrite decides whether the spill run labelled label fails to write
// during the owning task's attempt. Labels embed operator and partition, so
// the draw is keyed like every other site; a retried task replays the same
// labels at the next attempt and the final attempt is always clean.
func (in *Injector) SpillWrite(label string, attempt int) error {
	if in == nil || in.cfg.SpillProb <= 0 || !in.transientOK(attempt) {
		return nil
	}
	if in.draw("spill", fnv64(label), 0, attempt) < in.cfg.SpillProb {
		return &injected{Kind: "spill write failure", Transient: true,
			Detail: fmt.Sprintf("run %q attempt %d", label, attempt)}
	}
	return nil
}

// StorageWrite decides whether the seq'th physical storage write (1-based;
// n payload bytes) is torn. When it fires, keep is the deterministic number
// of bytes (in [0, n)) that reach the file before the simulated crash: the
// store writes the prefix, fails the operation, and refuses further writes —
// recovery at the next Open discards the torn tail. A keep that lands inside
// a header simulates a short read at replay; one that lands inside a payload
// leaves a checksum-corrupt torn frame.
func (in *Injector) StorageWrite(seq int64, n int) (keep int, fail bool) {
	if in == nil || n < 0 {
		return 0, false
	}
	fire := in.cfg.StorageFailAfter > 0 && seq == in.cfg.StorageFailAfter
	if !fire && in.cfg.TornWriteProb > 0 {
		fire = in.draw("torn-write", uint64(seq), 0, 0) < in.cfg.TornWriteProb
	}
	if !fire {
		return 0, false
	}
	if n == 0 {
		return 0, true
	}
	cut := in.draw("torn-write-cut", uint64(seq), 0, 0)
	return int(cut * float64(n)), true
}

// Straggle returns the injected delay for task (op, part) at attempt, or 0.
func (in *Injector) Straggle(op string, part, attempt int) time.Duration {
	if in == nil || in.cfg.StragglerProb <= 0 {
		return 0
	}
	if in.draw("straggle", fnv64(op), part, attempt) < in.cfg.StragglerProb {
		if in.cfg.StragglerDelay > 0 {
			return in.cfg.StragglerDelay
		}
		return defaultStragglerDelay
	}
	return 0
}

// draw returns a uniform float in [0, 1) keyed by (seed, site kind, site key,
// partition, attempt) — splitmix64 over the mixed key, matching the grace
// join's use of the same finalizer for decorrelated sub-partitioning.
func (in *Injector) draw(kind string, key uint64, part, attempt int) float64 {
	h := in.seed ^ fnv64(kind)
	h = splitmix64(h ^ key)
	h = splitmix64(h ^ (uint64(part)+1)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ (uint64(attempt)+1)*0xbf58476d1ce4e5b9)
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the splitmix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a over s (site names and spill labels).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
