package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDisabledConfigReturnsNilInjector(t *testing.T) {
	if in := New(Config{Seed: 7}); in != nil {
		t.Fatalf("zero-probability config must yield nil injector, got %v", in)
	}
	// Nil injector must be safe and inert on every method.
	var in *Injector
	if in.Attempts() != 1 {
		t.Errorf("nil Attempts = %d, want 1", in.Attempts())
	}
	if in.Speculate() {
		t.Error("nil Speculate = true")
	}
	if err := in.Crash("op", 0, 0); err != nil {
		t.Errorf("nil Crash = %v", err)
	}
	if err := in.ShuffleCorrupt("op", 0, 0); err != nil {
		t.Errorf("nil ShuffleCorrupt = %v", err)
	}
	if err := in.SpillWrite("label", 0); err != nil {
		t.Errorf("nil SpillWrite = %v", err)
	}
	if d := in.Straggle("op", 0, 0); d != 0 {
		t.Errorf("nil Straggle = %v", d)
	}
	if d := in.Backoff(1); d != 0 {
		t.Errorf("nil Backoff = %v", d)
	}
}

func TestDrawsAreDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 42, CrashProb: 0.5, ShuffleProb: 0.5, SpillProb: 0.5, StragglerProb: 0.5}
	a, b := New(cfg), New(cfg)
	other := New(Config{Seed: 43, CrashProb: 0.5, ShuffleProb: 0.5, SpillProb: 0.5, StragglerProb: 0.5})
	same, diff := 0, 0
	for part := 0; part < 8; part++ {
		for attempt := 0; attempt < 2; attempt++ {
			ea := a.Crash("hash join", part, attempt)
			eb := b.Crash("hash join", part, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("same seed diverged at part=%d attempt=%d: %v vs %v", part, attempt, ea, eb)
			}
			if (ea == nil) == (other.Crash("hash join", part, attempt) == nil) {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical crash decisions at every site; draws look seed-independent")
	}
	_ = same
}

func TestTransientNeverFiresOnFinalAttempt(t *testing.T) {
	// Property: at ANY seed, with probability 1.0 on every transient site, the
	// final allowed attempt is always clean — this is what guarantees
	// convergence under transient-only injection.
	for seed := uint64(0); seed < 50; seed++ {
		cfg := Config{Seed: seed, MaxAttempts: 3, CrashProb: 1, ShuffleProb: 1, SpillProb: 1}
		in := New(cfg)
		final := in.Attempts() - 1
		for part := 0; part < 16; part++ {
			op := fmt.Sprintf("op-%d", part%3)
			if err := in.Crash(op, part, final); err != nil {
				t.Fatalf("seed %d: transient crash fired on final attempt: %v", seed, err)
			}
			if err := in.ShuffleCorrupt(op, part, final); err != nil {
				t.Fatalf("seed %d: shuffle fault fired on final attempt: %v", seed, err)
			}
			if err := in.SpillWrite(fmt.Sprintf("run-p%d", part), final); err != nil {
				t.Fatalf("seed %d: spill fault fired on final attempt: %v", seed, err)
			}
			// And with prob 1 they always fire on earlier attempts.
			if err := in.Crash(op, part, 0); err == nil {
				t.Fatalf("seed %d: prob-1 crash did not fire on attempt 0", seed)
			}
		}
	}
}

func TestPermanentCrashFiresOnEveryAttempt(t *testing.T) {
	in := New(Config{Seed: 9, PermanentProb: 1, MaxAttempts: 4})
	for attempt := 0; attempt < in.Attempts(); attempt++ {
		err := in.Crash("aggregate", 3, attempt)
		if err == nil {
			t.Fatalf("permanent crash missing at attempt %d", attempt)
		}
		if Transient(err) {
			t.Fatalf("permanent crash reported transient at attempt %d: %v", attempt, err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("permanent crash does not unwrap to ErrInjected: %v", err)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	in := New(Config{Seed: 1, CrashProb: 1, MaxAttempts: 3})
	err := in.Crash("sort", 0, 0)
	if err == nil {
		t.Fatal("expected injected crash")
	}
	if !Transient(err) {
		t.Errorf("injected transient crash not classified transient: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected crash does not match ErrInjected: %v", err)
	}
	// Wrapping through TaskError preserves both classifications.
	wrapped := &TaskError{Op: "sort", Part: 0, Attempt: 2, Err: err}
	if !Transient(wrapped) {
		t.Errorf("TaskError-wrapped transient not classified transient")
	}
	if !errors.Is(wrapped, ErrInjected) {
		t.Errorf("TaskError-wrapped injected error does not match ErrInjected")
	}
	var te *TaskError
	if !errors.As(wrapped, &te) || te.Op != "sort" || te.Part != 0 || te.Attempt != 2 {
		t.Errorf("errors.As(TaskError) = %+v", te)
	}
	// Real errors are never transient.
	if Transient(errors.New("disk on fire")) {
		t.Error("arbitrary error classified transient")
	}
	if Transient(nil) {
		t.Error("nil classified transient")
	}
}

func TestTaskErrorMessageNamesOperatorPartitionAttempt(t *testing.T) {
	e := &TaskError{Op: "hash join", Part: 7, Attempt: 2, Err: errors.New("boom")}
	got := e.Error()
	want := "task hash join[p7] attempt 2: boom"
	if got != want {
		t.Errorf("TaskError.Error() = %q, want %q", got, want)
	}
}

func TestBackoffDeterministicDoublingCapped(t *testing.T) {
	in := New(Config{Seed: 0, CrashProb: 1, RetryBackoff: time.Millisecond})
	want := []time.Duration{
		time.Millisecond,      // retry before attempt 1
		2 * time.Millisecond,  // attempt 2
		4 * time.Millisecond,  // attempt 3
		8 * time.Millisecond,  // attempt 4
		16 * time.Millisecond, // attempt 5
		16 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := in.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	off := New(Config{Seed: 0, CrashProb: 1, RetryBackoff: -1})
	if got := off.Backoff(1); got != 0 {
		t.Errorf("negative RetryBackoff: Backoff = %v, want 0", got)
	}
}

func TestStraggleDelayDefaultsAndConfig(t *testing.T) {
	in := New(Config{Seed: 5, StragglerProb: 1})
	if d := in.Straggle("scan", 0, 0); d != defaultStragglerDelay {
		t.Errorf("default straggler delay = %v, want %v", d, defaultStragglerDelay)
	}
	in = New(Config{Seed: 5, StragglerProb: 1, StragglerDelay: 3 * time.Millisecond})
	if d := in.Straggle("scan", 0, 0); d != 3*time.Millisecond {
		t.Errorf("configured straggler delay = %v", d)
	}
	in = New(Config{Seed: 5, StragglerProb: 0, CrashProb: 1})
	if d := in.Straggle("scan", 0, 0); d != 0 {
		t.Errorf("straggle with zero prob = %v, want 0", d)
	}
}

func TestDrawUniformish(t *testing.T) {
	// Sanity: with prob 0.5 roughly half the sites fire — catches degenerate
	// mixing (all-zero or all-one draws).
	in := New(Config{Seed: 1234, CrashProb: 0.5, MaxAttempts: 2})
	fired := 0
	const n = 2000
	for part := 0; part < n; part++ {
		if in.Crash("uniform-check", part, 0) != nil {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Errorf("prob-0.5 crash fired %d/%d times; draw distribution looks broken", fired, n)
	}
}
