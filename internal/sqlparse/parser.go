package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"relalg/internal/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// accepted).
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input after statement")
		}
	}
}

// ParseExpr parses a standalone expression (used by tests and the REPL).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected input after expression")
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	where := "end of input"
	if t.kind != tokEOF {
		where = fmt.Sprintf("%q", t.raw)
	}
	return fmt.Errorf("sql: line %d: %s (at %s)", t.line, fmt.Sprintf(format, args...), where)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errf("expected identifier")
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword")
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "DROP":
		return p.parseDrop()
	case "EXPLAIN":
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	}
	return nil, p.errf("unsupported statement %s", t.text)
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("VIEW"):
		return p.parseCreateView()
	}
	return nil, p.errf("expected TABLE or VIEW after CREATE")
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateTableAs{Name: name, Query: q}, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ctype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: cname, Type: ctype})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name, Cols: cols}
	if p.acceptKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("HASH"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		found := false
		for _, c := range cols {
			if c.Name == col {
				found = true
			}
		}
		if !found {
			return nil, p.errf("partition column %q is not a column of the table", col)
		}
		ct.PartitionCol = col
	}
	return ct, nil
}

// parseType parses INTEGER | DOUBLE | STRING | BOOLEAN | LABELED_SCALAR |
// VECTOR[n] | VECTOR[] | MATRIX[r][c] with either dimension omitted.
func (p *parser) parseType() (types.T, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return types.T{}, p.errf("expected type name")
	}
	p.advance()
	switch t.text {
	case "INTEGER", "INT":
		return types.TInt, nil
	case "DOUBLE":
		return types.TDouble, nil
	case "STRING", "VARCHAR":
		// VARCHAR(n) tolerated; length ignored.
		if p.acceptOp("(") {
			if p.peek().kind == tokInt {
				p.advance()
			}
			if err := p.expectOp(")"); err != nil {
				return types.T{}, err
			}
		}
		return types.TString, nil
	case "BOOLEAN":
		return types.TBool, nil
	case "LABELED_SCALAR":
		return types.TLabeledScalar, nil
	case "VECTOR":
		d, err := p.parseDim()
		if err != nil {
			return types.T{}, err
		}
		return types.TVector(d), nil
	case "MATRIX":
		r, err := p.parseDim()
		if err != nil {
			return types.T{}, err
		}
		c, err := p.parseDim()
		if err != nil {
			return types.T{}, err
		}
		return types.TMatrix(r, c), nil
	}
	return types.T{}, p.errf("unsupported type %s", t.text)
}

func (p *parser) parseDim() (types.Dim, error) {
	if err := p.expectOp("["); err != nil {
		return types.Dim{}, err
	}
	if p.acceptOp("]") {
		return types.UnknownDim, nil
	}
	t := p.peek()
	if t.kind != tokInt {
		return types.Dim{}, p.errf("expected dimension size or ]")
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return types.Dim{}, p.errf("invalid dimension %q", t.text)
	}
	if err := p.expectOp("]"); err != nil {
		return types.Dim{}, err
	}
	return types.KnownDim(n), nil
}

func (p *parser) parseCreateView() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Cols: cols, Query: q}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return &Insert{Table: name, Rows: rows}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if !p.acceptKeyword("TABLE") && !p.acceptKeyword("VIEW") {
		return nil, p.errf("expected TABLE or VIEW after DROP")
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	p.acceptKeyword("DISTINCT") // tolerated and ignored: grouping queries cover the paper's needs
	sel := &Select{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokInt {
			return nil, p.errf("expected integer after LIMIT")
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: SELECT x.a pointid FROM ...
		p.advance()
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.acceptOp("(") {
		q, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectOp(")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: q}
		p.acceptKeyword("AS")
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, fmt.Errorf("%w (subqueries in FROM require an alias)", err)
		}
		ref.Alias = a
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.peek(); t.kind == tokIdent {
		p.advance()
		ref.Alias = t.text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((= | <> | < | <= | > | >=) add)?
//	add    := mul ((+ | -) mul)*
//	mul    := unary ((* | /) unary)*
//	unary  := - unary | primary
//	primary:= literal | func(args) | ident(.ident)? | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold into literals so -3 is an IntLit, not a UnaryExpr.
		switch lit := e.(type) {
		case *IntLit:
			return &IntLit{V: -lit.V}, nil
		case *DoubleLit:
			return &DoubleLit{V: -lit.V}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal")
		}
		return &IntLit{V: v}, nil
	case tokDouble:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("invalid double literal")
		}
		return &DoubleLit{V: v}, nil
	case tokString:
		p.advance()
		return &StringLit{V: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return &BoolLit{V: true}, nil
		case "FALSE":
			p.advance()
			return &BoolLit{V: false}, nil
		case "NULL":
			p.advance()
			return &NullLit{}, nil
		}
		return nil, p.errf("unexpected keyword in expression")
	case tokOp:
		if t.text == "(" {
			p.advance()
			// A parenthesized scalar subquery?
			if nt := p.peek(); nt.kind == tokKeyword && nt.text == "SELECT" {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token in expression")
	case tokIdent:
		p.advance()
		name := t.text
		// Function call?
		if p.acceptOp("(") {
			call := &FuncCall{Name: strings.ToLower(name)}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptOp(")") {
				return call, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column reference?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: col}, nil
		}
		return &ColRef{Column: name}, nil
	}
	return nil, p.errf("unexpected end of expression")
}
