package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexed tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokDouble
	tokString
	tokOp // operators and punctuation: ( ) [ ] , ; . + - * / = <> < <= > >=
)

// token is one lexed token with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers lower-cased
	raw  string
	pos  int // byte offset
	line int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "CREATE": true,
	"TABLE": true, "VIEW": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DROP": true, "IF": true, "EXISTS": true, "EXPLAIN": true, "TRUE": true,
	"FALSE": true, "NULL": true, "INTEGER": true, "INT": true, "DOUBLE": true,
	"STRING": true, "VARCHAR": true, "BOOLEAN": true, "VECTOR": true,
	"MATRIX": true, "LABELED_SCALAR": true, "DISTINCT": true,
	"PARTITION": true, "HASH": true, "ANALYZE": true,
}

// lexer scans an input string into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '.':
		// Could be a number like .5 or the dot operator.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber(start)
		}
		l.pos++
		return token{kind: tokOp, text: ".", raw: ".", pos: start, line: l.line}, nil
	case c == '\'':
		return l.lexString(start)
	default:
		return l.lexOp(start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent(start int) token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	raw := l.src[start:l.pos]
	upper := strings.ToUpper(raw)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, raw: raw, pos: start, line: l.line}
	}
	return token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start, line: l.line}
}

func (l *lexer) lexNumber(start int) (token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// Don't consume ".." or ".e"; and "1.x" where x is a letter means
			// tuple field access is impossible on numbers, so dot+digit only.
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			// Exponent must be followed by digits or sign+digits.
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				seenExp = true
				l.pos = j + 1
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	raw := l.src[start:l.pos]
	kind := tokInt
	if seenDot || seenExp {
		kind = tokDouble
	}
	return token{kind: kind, text: raw, raw: raw, pos: start, line: l.line}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), raw: l.src[start:l.pos], pos: start, line: l.line}, nil
		}
		if c == '\n' {
			l.line++
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf("unterminated string literal")
}

func (l *lexer) lexOp(start int) (token, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		return token{kind: tokOp, text: text, raw: two, pos: start, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', '[', ']', ',', ';', '+', '-', '*', '/', '=', '<', '>':
		l.pos++
		return token{kind: tokOp, text: string(c), raw: string(c), pos: start, line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}
