package sqlparse

import (
	"strconv"
	"strings"
)

func writeInt(b *strings.Builder, v int64) {
	b.WriteString(strconv.FormatInt(v, 10))
}

func writeFloat(b *strings.Builder, v float64) {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	b.WriteString(s)
	// Keep literals recognizable as doubles when round.
	if !strings.ContainsAny(s, ".eE") {
		b.WriteString(".0")
	}
}
