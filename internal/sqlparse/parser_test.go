package sqlparse

import (
	"strings"
	"testing"

	"relalg/internal/types"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseCreateTableScalar(t *testing.T) {
	s := parseOne(t, "CREATE TABLE y (i INTEGER, y_i DOUBLE)")
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "y" || len(ct.Cols) != 2 {
		t.Fatalf("parsed %+v", ct)
	}
	if ct.Cols[0].Type != types.TInt || ct.Cols[1].Type != types.TDouble {
		t.Fatalf("types %v %v", ct.Cols[0].Type, ct.Cols[1].Type)
	}
}

func TestParseCreateTableLinAlgTypes(t *testing.T) {
	// The paper's example: CREATE TABLE m (mat MATRIX[10][10], vec VECTOR[100]).
	s := parseOne(t, "CREATE TABLE m (mat MATRIX[10][10], vec VECTOR[100])")
	ct := s.(*CreateTable)
	if ct.Cols[0].Type.String() != "MATRIX[10][10]" {
		t.Fatalf("mat type = %s", ct.Cols[0].Type)
	}
	if ct.Cols[1].Type.String() != "VECTOR[100]" {
		t.Fatalf("vec type = %s", ct.Cols[1].Type)
	}

	s = parseOne(t, "CREATE TABLE v (vec VECTOR[], m MATRIX[10][], n MATRIX[][], ls LABELED_SCALAR)")
	ct = s.(*CreateTable)
	wants := []string{"VECTOR[]", "MATRIX[10][]", "MATRIX[][]", "LABELED_SCALAR"}
	for i, w := range wants {
		if ct.Cols[i].Type.String() != w {
			t.Errorf("col %d type = %s, want %s", i, ct.Cols[i].Type, w)
		}
	}
}

func TestParseSelectSimple(t *testing.T) {
	s := parseOne(t, "SELECT a, b AS bee FROM t WHERE a = 3")
	sel := s.(*Select)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "bee" {
		t.Fatalf("items %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Table != "t" || sel.From[0].Alias != "t" {
		t.Fatalf("from %+v", sel.From)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where %+v", sel.Where)
	}
}

func TestParsePaperGramTupleQuery(t *testing.T) {
	// Verbatim from the paper's experiments section.
	src := `SELECT x1.col_index, x2.col_index,
	        SUM(x1.value * x2.value)
	        FROM x AS x1, x AS x2
	        WHERE x1.row_index = x2.row_index
	        GROUP BY x1.col_index, x2.col_index;`
	stmts, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	agg, ok := sel.Items[2].Expr.(*FuncCall)
	if !ok || agg.Name != "sum" {
		t.Fatalf("item 2 = %+v", sel.Items[2].Expr)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "x1" || sel.From[1].Alias != "x2" {
		t.Fatalf("from %+v", sel.From)
	}
	if len(sel.GroupBy) != 2 {
		t.Fatalf("group by %+v", sel.GroupBy)
	}
}

func TestParsePaperVectorizeQuery(t *testing.T) {
	src := `SELECT VECTORIZE(label_scalar(y_i, i)) FROM y`
	sel := parseOne(t, src).(*Select)
	outer := sel.Items[0].Expr.(*FuncCall)
	if outer.Name != "vectorize" {
		t.Fatalf("outer = %q", outer.Name)
	}
	inner := outer.Args[0].(*FuncCall)
	if inner.Name != "label_scalar" || len(inner.Args) != 2 {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestParsePaperBigMatrixMultiply(t *testing.T) {
	src := `SELECT lhs.tileRow, rhs.tileCol,
	        SUM (matrix_multiply (lhs.mat, rhs.mat))
	        FROM bigMatrix AS lhs, anotherBigMat AS rhs
	        WHERE lhs.tileCol = rhs.tileRow
	        GROUP BY lhs.tileRow, rhs.tileCol`
	sel := parseOne(t, src).(*Select)
	if len(sel.Items) != 3 || len(sel.GroupBy) != 2 {
		t.Fatalf("parsed %+v", sel)
	}
	// Identifiers are lower-cased.
	cr := sel.Items[0].Expr.(*ColRef)
	if cr.Table != "lhs" || cr.Column != "tilerow" {
		t.Fatalf("colref %+v", cr)
	}
}

func TestParseCreateViewWithColumns(t *testing.T) {
	src := `CREATE VIEW xDiff (pointID, dimID, value) AS
	        SELECT x2.pointID, x2.dimID, x1.value - x2.value
	        FROM data AS x1, data AS x2
	        WHERE x1.pointID = 3 AND x1.dimID = x2.dimID`
	cv := parseOne(t, src).(*CreateView)
	if cv.Name != "xdiff" {
		t.Fatalf("name %q", cv.Name)
	}
	if len(cv.Cols) != 3 || cv.Cols[0] != "pointid" {
		t.Fatalf("cols %v", cv.Cols)
	}
	if cv.Query.Where == nil {
		t.Fatal("missing where")
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	src := `SELECT x.pointID, SUM(firstPart.value * x.value)
	        FROM (SELECT a.colID AS colID FROM matrixA AS a) AS firstPart, xDiff AS x
	        WHERE firstPart.colID = x.dimID
	        GROUP BY x.pointID`
	sel := parseOne(t, src).(*Select)
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "firstpart" {
		t.Fatalf("from[0] %+v", sel.From[0])
	}
	if sel.From[1].Table != "xdiff" {
		t.Fatalf("from[1] %+v", sel.From[1])
	}
}

func TestParseSubqueryRequiresAlias(t *testing.T) {
	if _, err := Parse("SELECT a FROM (SELECT a FROM t)"); err == nil {
		t.Fatal("subquery without alias parsed")
	}
}

func TestParseInsert(t *testing.T) {
	ins := parseOne(t, "INSERT INTO y VALUES (1, 2.5), (2, -3.5)").(*Insert)
	if ins.Table != "y" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Fatalf("insert %+v", ins)
	}
	if lit, ok := ins.Rows[1][1].(*DoubleLit); !ok || lit.V != -3.5 {
		t.Fatalf("negative literal %+v", ins.Rows[1][1])
	}
}

func TestParseDrop(t *testing.T) {
	d := parseOne(t, "DROP TABLE IF EXISTS foo").(*DropTable)
	if d.Name != "foo" || !d.IfExists {
		t.Fatalf("drop %+v", d)
	}
	d = parseOne(t, "DROP VIEW v").(*DropTable)
	if d.Name != "v" || d.IfExists {
		t.Fatalf("drop view %+v", d)
	}
}

func TestParseExplain(t *testing.T) {
	e := parseOne(t, "EXPLAIN SELECT a FROM t").(*Explain)
	if _, ok := e.Stmt.(*Select); !ok {
		t.Fatalf("explain wraps %T", e.Stmt)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := ExprString(e); got != "(1 + (2 * 3))" {
		t.Fatalf("precedence: %s", got)
	}
	e, _ = ParseExpr("(1 + 2) * 3")
	if got := ExprString(e); got != "((1 + 2) * 3)" {
		t.Fatalf("parens: %s", got)
	}
	e, _ = ParseExpr("a = 1 AND b = 2 OR c = 3")
	if got := ExprString(e); got != "(((a = 1) AND (b = 2)) OR (c = 3))" {
		t.Fatalf("bool precedence: %s", got)
	}
	e, _ = ParseExpr("NOT a = 1")
	if got := ExprString(e); got != "(NOT (a = 1))" {
		t.Fatalf("not: %s", got)
	}
	e, _ = ParseExpr("a - b - c")
	if got := ExprString(e); got != "((a - b) - c)" {
		t.Fatalf("left assoc: %s", got)
	}
}

func TestParseComparisonVariants(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		e, err := ParseExpr("a " + op + " b")
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		be := e.(*BinaryExpr)
		if be.Op != op {
			t.Fatalf("op = %q, want %q", be.Op, op)
		}
	}
	// != normalizes to <>.
	e, err := ParseExpr("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != "<>" {
		t.Fatalf("!= parsed as %q", e.(*BinaryExpr).Op)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"42", "42"},
		{"-7", "-7"},
		{"3.5", "3.5"},
		{"1e3", "1000.0"},
		{"2.5e-1", "0.25"},
		{".5", "0.5"},
		{"'it''s'", "'it's'"},
		{"TRUE", "TRUE"},
		{"FALSE", "FALSE"},
		{"NULL", "NULL"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := ExprString(e); got != c.want {
			t.Errorf("%q -> %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseCountStar(t *testing.T) {
	e, err := ParseExpr("count(*)")
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*FuncCall)
	if !fc.Star || fc.Name != "count" || len(fc.Args) != 0 {
		t.Fatalf("count(*) = %+v", fc)
	}
}

func TestParseComments(t *testing.T) {
	src := `-- leading comment
	SELECT a /* inline
	multiline */ FROM t -- trailing`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseScriptMultiple(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseOrderLimitHaving(t *testing.T) {
	sel := parseOne(t, `SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 3 ORDER BY a DESC, SUM(b) LIMIT 5`).(*Select)
	if sel.Having == nil || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc || sel.Limit != 5 {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseOne(t, "SELECT * FROM t").(*Select)
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Fatalf("items %+v", sel.Items)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"CREATE TABLE (a INTEGER)",
		"CREATE TABLE t (a INTEGER",
		"CREATE TABLE t (a VECTOR)",    // missing dims
		"CREATE TABLE t (a MATRIX[3])", // missing second dim
		"CREATE TABLE t (a MATRIX[-1][2])",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"INSERT INTO t (1)",
		"SELECT a FROM t LIMIT x",
		"SELECT 'unterminated FROM t",
		"DROP t",
		"SELECT a FROM t; garbage",
		"SELECT a ? b FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	sel := parseOne(t, "select A, Sum(B) from T group by A").(*Select)
	if sel.From[0].Table != "t" {
		t.Fatalf("table %q", sel.From[0].Table)
	}
	if cr := sel.Items[0].Expr.(*ColRef); cr.Column != "a" {
		t.Fatalf("column %q", cr.Column)
	}
	if fc := sel.Items[1].Expr.(*FuncCall); fc.Name != "sum" {
		t.Fatalf("func %q", fc.Name)
	}
}

func TestParseBareAlias(t *testing.T) {
	sel := parseOne(t, "SELECT a val FROM t u").(*Select)
	if sel.Items[0].Alias != "val" {
		t.Fatalf("alias %q", sel.Items[0].Alias)
	}
	if sel.From[0].Alias != "u" || sel.From[0].Table != "t" {
		t.Fatalf("from %+v", sel.From[0])
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 40
	src := "SELECT " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + " FROM t"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseCreateTableAs(t *testing.T) {
	s := parseOne(t, "CREATE TABLE g AS SELECT a, SUM(b) FROM t GROUP BY a")
	ctas, ok := s.(*CreateTableAs)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ctas.Name != "g" || ctas.Query == nil || len(ctas.Query.GroupBy) != 1 {
		t.Fatalf("parsed %+v", ctas)
	}
	// Plain CREATE TABLE still parses.
	if _, ok := parseOne(t, "CREATE TABLE t2 (a INTEGER)").(*CreateTable); !ok {
		t.Fatal("plain create broken")
	}
	if _, err := Parse("CREATE TABLE g AS INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("CTAS of non-select accepted")
	}
}

func TestParsePartitionByHash(t *testing.T) {
	ct := parseOne(t, "CREATE TABLE r (id INTEGER, v DOUBLE) PARTITION BY HASH (id)").(*CreateTable)
	if ct.PartitionCol != "id" {
		t.Fatalf("partition col %q", ct.PartitionCol)
	}
	ct = parseOne(t, "CREATE TABLE r (id INTEGER)").(*CreateTable)
	if ct.PartitionCol != "" {
		t.Fatalf("unexpected partition col %q", ct.PartitionCol)
	}
	for _, bad := range []string{
		"CREATE TABLE r (id INTEGER) PARTITION BY HASH (nosuch)",
		"CREATE TABLE r (id INTEGER) PARTITION BY RANGE (id)",
		"CREATE TABLE r (id INTEGER) PARTITION HASH (id)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseScalarSubqueryExpr(t *testing.T) {
	sel := parseOne(t, "SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t)").(*Select)
	be := sel.Where.(*BinaryExpr)
	sq, ok := be.R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("rhs is %T", be.R)
	}
	if len(sq.Query.Items) != 1 {
		t.Fatalf("subquery items %d", len(sq.Query.Items))
	}
	if got := ExprString(be); got != "(a = (SELECT ...))" {
		t.Fatalf("string %q", got)
	}
	// Parenthesized non-subquery still parses as grouping.
	e, err := ParseExpr("(1 + 2) * 3")
	if err != nil {
		t.Fatal(err)
	}
	if ExprString(e) != "((1 + 2) * 3)" {
		t.Fatalf("grouping broken: %s", ExprString(e))
	}
}
