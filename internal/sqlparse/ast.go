// Package sqlparse implements the lexer, AST, and recursive-descent parser
// for the paper's extended SQL: standard SELECT-FROM-WHERE-GROUP BY with
// subqueries in FROM, plus the VECTOR[n] / MATRIX[r][c] / LABELED_SCALAR
// column types and calls to the linear-algebra built-ins.
package sqlparse

import (
	"strings"

	"relalg/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.T
}

// CreateTable is CREATE TABLE name (col TYPE, ...)
// [PARTITION BY HASH (col)]. A partition column makes the engine store the
// table hash-partitioned on it, so joins and groupings on that column skip
// their shuffle (the paper's "R was already partitioned on the join key").
type CreateTable struct {
	Name         string
	Cols         []ColumnDef
	PartitionCol string // empty: round-robin placement
}

// CreateTableAs is CREATE TABLE name AS SELECT ... — the engine infers the
// schema from the query and materializes its result.
type CreateTableAs struct {
	Name  string
	Query *Select
}

// CreateView is CREATE VIEW name [(col, ...)] AS SELECT ...
type CreateView struct {
	Name  string
	Cols  []string // optional explicit output column names
	Query *Select
}

// Insert is INSERT INTO name VALUES (expr, ...), (expr, ...).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// DropTable is DROP TABLE [IF EXISTS] name; it also drops views.
type DropTable struct {
	Name     string
	IfExists bool
}

// Explain wraps a statement whose plan should be printed instead of run.
// With Analyze set (EXPLAIN ANALYZE), the statement also executes and the
// output includes per-operator timings and cluster traffic.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

// Select is a (possibly grouped) SELECT query.
type Select struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil when absent
	GroupBy []Expr
	Having  Expr // nil when absent
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// SelectItem is one output expression; Star marks SELECT *.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef is one entry in a FROM list: either a named table/view or a
// parenthesized subquery, with an optional alias.
type TableRef struct {
	Table    string  // empty if Subquery != nil
	Subquery *Select // nil for named tables
	Alias    string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTable) stmt()   {}
func (*CreateTableAs) stmt() {}
func (*CreateView) stmt()    {}
func (*Insert) stmt()        {}
func (*DropTable) stmt()     {}
func (*Select) stmt()        {}
func (*Explain) stmt()       {}

// Expr is any parsed expression.
type Expr interface{ expr() }

// ColRef is a column reference, optionally qualified (x.pointID).
type ColRef struct {
	Table  string // empty when unqualified
	Column string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// DoubleLit is a floating-point literal.
type DoubleLit struct{ V float64 }

// StringLit is a 'single quoted' string literal.
type StringLit struct{ V string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// NullLit is NULL.
type NullLit struct{}

// BinaryExpr is a binary operation. Op is one of:
// + - * / = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is unary minus or NOT.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	E  Expr
}

// FuncCall is a function or aggregate invocation; Star marks COUNT(*).
type FuncCall struct {
	Name string // lower-cased
	Args []Expr
	Star bool
}

// SubqueryExpr is a scalar subquery used as an expression, e.g.
// WHERE dist = (SELECT MAX(dist) FROM d). It must produce one column and at
// most one row; an empty result is NULL.
type SubqueryExpr struct {
	Query *Select
}

func (*ColRef) expr()       {}
func (*IntLit) expr()       {}
func (*DoubleLit) expr()    {}
func (*StringLit) expr()    {}
func (*BoolLit) expr()      {}
func (*NullLit) expr()      {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*FuncCall) expr()     {}
func (*SubqueryExpr) expr() {}

// ExprString renders an expression back to SQL-ish text, for error messages
// and EXPLAIN output.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteByte('.')
		}
		b.WriteString(x.Column)
	case *IntLit:
		writeInt(b, x.V)
	case *DoubleLit:
		writeFloat(b, x.V)
	case *StringLit:
		b.WriteByte('\'')
		b.WriteString(x.V)
		b.WriteByte('\'')
	case *BoolLit:
		if x.V {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case *NullLit:
		b.WriteString("NULL")
	case *BinaryExpr:
		b.WriteByte('(')
		writeExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		writeExpr(b, x.R)
		b.WriteByte(')')
	case *UnaryExpr:
		// NOT parenthesizes fully so the rendering reparses in any context
		// (the grammar places NOT below comparisons).
		if x.Op == "NOT" {
			b.WriteString("(NOT ")
			writeExpr(b, x.E)
			b.WriteByte(')')
			return
		}
		b.WriteString(x.Op)
		writeExpr(b, x.E)
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *SubqueryExpr:
		b.WriteString("(SELECT ...)")
	default:
		b.WriteString("?expr?")
	}
}
