package sqlparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression AST of bounded depth.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return &IntLit{V: int64(r.Intn(1000)) - 500}
		case 1:
			return &DoubleLit{V: float64(r.Intn(1000))/8 + 0.125}
		case 2:
			return &StringLit{V: "s" + string(rune('a'+r.Intn(26)))}
		case 3:
			return &BoolLit{V: r.Intn(2) == 0}
		default:
			names := []string{"a", "b", "foo", "col_1"}
			cr := &ColRef{Column: names[r.Intn(len(names))]}
			if r.Intn(2) == 0 {
				cr.Table = "t" + string(rune('0'+r.Intn(3)))
			}
			return cr
		}
	}
	switch r.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">="}
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 1:
		return &BinaryExpr{Op: []string{"AND", "OR"}[r.Intn(2)], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 2:
		return &UnaryExpr{Op: "NOT", E: genExpr(r, depth-1)}
	default:
		fns := []string{"matrix_multiply", "inner_product", "sqrt", "f"}
		n := r.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = genExpr(r, depth-1)
		}
		return &FuncCall{Name: fns[r.Intn(len(fns))], Args: args}
	}
}

// TestPropExprPrintParseRoundTrip: printing a random expression and parsing
// it back yields an expression that prints identically. ExprString
// parenthesizes fully, so the round trip must be exact.
func TestPropExprPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64, depthRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, int(depthRaw%4)+1)
		text := ExprString(e)
		parsed, err := ParseExpr(text)
		if err != nil {
			t.Logf("parse %q: %v", text, err)
			return false
		}
		return ExprString(parsed) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSelectRoundTrip: random simple SELECTs survive a parse cycle of
// their canonical rendering (rendered by hand here since the AST has no
// statement printer; we compare structural features instead).
func TestPropSelectParseStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 2)
		src := "SELECT " + ExprString(e) + " AS x FROM t WHERE " + ExprString(genExpr(r, 1)) + " = 1"
		s1, err := Parse(src)
		if err != nil {
			return false
		}
		sel1 := s1.(*Select)
		// Reparse the printed item expression; it must match.
		again, err := ParseExpr(ExprString(sel1.Items[0].Expr))
		if err != nil {
			return false
		}
		return ExprString(again) == ExprString(sel1.Items[0].Expr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
