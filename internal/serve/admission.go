package serve

import "sync/atomic"

// admission bounds the number of statements executing at once. It is a plain
// counting semaphore with observability: how often callers had to wait and
// the high-water mark of concurrent execution (which the acceptance tests
// compare against the configured limit).
type admission struct {
	slots  chan struct{}
	waits  atomic.Int64
	active atomic.Int64
	peak   atomic.Int64
}

func newAdmission(limit int) *admission {
	if limit < 1 {
		limit = 1
	}
	return &admission{slots: make(chan struct{}, limit)}
}

// acquire blocks until a slot is free and returns the number of statements
// (including this one) executing after admission. The caller must release().
func (a *admission) acquire() int {
	select {
	case a.slots <- struct{}{}:
	default:
		// No slot free right now: count the wait, then block.
		a.waits.Add(1)
		a.slots <- struct{}{}
	}
	n := a.active.Add(1)
	for {
		p := a.peak.Load()
		if n <= p || a.peak.CompareAndSwap(p, n) {
			break
		}
	}
	return int(n)
}

func (a *admission) release() {
	a.active.Add(-1)
	<-a.slots
}
