package serve

import (
	"fmt"
	"testing"
	"time"

	"relalg/internal/catalog"
	"relalg/internal/plan"
	"relalg/internal/types"
)

func dummyNode(name string) plan.Node {
	meta := catalog.NewTableMeta(name, catalog.Schema{Cols: []catalog.Column{{Name: "a", Type: types.TInt}}}, 0)
	return &plan.Scan{Table: meta, Out: plan.Schema{{Name: "a", T: types.TInt}}}
}

func TestPlanCacheHitMissVersion(t *testing.T) {
	c := newPlanCache(8)
	if _, ok := c.lookup("select 1", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.store("select 1", 1, dummyNode("a"))
	if _, ok := c.lookup("select 1", 1); !ok {
		t.Fatal("stored plan missed")
	}
	// A DDL bump invalidates the entry even though the key matches.
	if _, ok := c.lookup("select 1", 2); ok {
		t.Fatal("stale plan served after version bump")
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	c.store("q0", 1, dummyNode("q0"))
	c.store("q1", 1, dummyNode("q1"))
	c.store("q2", 1, dummyNode("q2")) // evicts q0 (FIFO)
	if _, ok := c.lookup("q0", 1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.lookup("q1", 1); !ok {
		t.Fatal("q1 evicted prematurely")
	}
	if _, ok := c.lookup("q2", 1); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestPlanCacheEvictsStaleFirst(t *testing.T) {
	c := newPlanCache(2)
	c.store("old0", 1, dummyNode("old0"))
	c.store("old1", 1, dummyNode("old1"))
	// Version moved on; storing a current-version plan drops stale entries
	// rather than current ones.
	c.store("new0", 5, dummyNode("new0"))
	c.store("new1", 5, dummyNode("new1"))
	if _, ok := c.lookup("new0", 5); !ok {
		t.Fatal("current-version entry evicted while stale entries existed")
	}
	if _, ok := c.lookup("new1", 5); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestPlanCacheRestore(t *testing.T) {
	c := newPlanCache(4)
	c.store("q", 1, dummyNode("v1"))
	c.store("q", 3, dummyNode("v3")) // recompile under a newer version
	if _, ok := c.lookup("q", 1); ok {
		t.Fatal("old-version lookup hit after recompile")
	}
	if _, ok := c.lookup("q", 3); !ok {
		t.Fatal("recompiled plan missed")
	}
}

func TestAdmissionCountsAndBounds(t *testing.T) {
	a := newAdmission(2)
	n1 := a.acquire()
	n2 := a.acquire()
	if n1 != 1 || n2 != 2 {
		t.Fatalf("active counts %d, %d", n1, n2)
	}
	release := make(chan struct{})
	got := make(chan int)
	done := make(chan struct{})
	go func() {
		n := a.acquire()
		got <- n
		<-release
		a.release()
		close(done)
	}()
	// The third acquire must wait until a slot frees; poll until it has
	// registered its wait so the release below is ordered after it.
	for i := 0; a.waits.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	select {
	case n := <-got:
		t.Fatalf("third acquire admitted at %d while full", n)
	default:
	}
	a.release()
	n3 := <-got
	if n3 > 2 {
		t.Fatalf("active %d exceeds limit 2", n3)
	}
	if a.waits.Load() == 0 {
		t.Fatal("blocked acquire not counted as a wait")
	}
	if p := a.peak.Load(); p != 2 {
		t.Fatalf("peak %d, want 2", p)
	}
	close(release)
	<-done
	a.release()
	if a.active.Load() != 0 {
		t.Fatalf("active %d after all releases", a.active.Load())
	}
}

func TestPlanCacheManyKeys(t *testing.T) {
	c := newPlanCache(64)
	for i := 0; i < 200; i++ {
		c.store(fmt.Sprintf("q%d", i), 1, dummyNode("x"))
	}
	if n := len(c.entries); n > 64 {
		t.Fatalf("cache grew to %d entries past max 64", n)
	}
}
