package serve

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := []struct {
		typ byte
		p   []byte
	}{
		{FrameHello, []byte(Banner)},
		{FrameQuery, []byte("SELECT 1")},
		{FrameRows, []byte{0, 1, 2, 255}},
		{FrameDone, nil},
	}
	for _, f := range payloads {
		if err := WriteFrame(&buf, f.typ, f.p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		typ, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != want.typ || !bytes.Equal(p, want.p) {
			t.Fatalf("got (%q, %v), want (%q, %v)", typ, p, want.typ, want.p)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(cut)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: got %v, want ErrUnexpectedEOF", err)
	}
	// Truncated header (1 byte of the 5-byte prefix).
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:1])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameOversized(t *testing.T) {
	if err := WriteFrame(io.Discard, FrameRows, make([]byte, maxFrameBytes+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// A length prefix past the limit must be rejected before allocating.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, FrameRows}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized read: got %v", err)
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  1", "select 1"},
		{"select\n\t1 ;", "select 1"},
		{"  SELECT a FROM t  ", "select a from t"},
		{"SELECT 'KeepCase  Inside'", "select 'KeepCase  Inside'"},
		{"SELECT x FROM t;", "select x from t"},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if NormalizeSQL("SELECT  1") != NormalizeSQL("select 1\n") {
		t.Error("equivalent statements normalize differently")
	}
}
