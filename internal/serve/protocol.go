// Package serve is the engine's concurrent front door: a long-lived TCP
// server that executes SQL statements from many sessions against one shared
// core.Database. It makes the scarce resources global — an admission
// controller bounds in-flight statements, the spill memory budget becomes a
// server-wide pool leased to queries, and the kernel-worker budget is
// arbitrated across whatever is currently running — and it caches optimized
// plans keyed on normalized SQL, invalidated by the catalog's DDL version.
//
// The wire protocol is deliberately tiny: length-prefixed binary frames, one
// statement per request, a fixed frame vocabulary for the response. Row
// payloads travel in the engine's own row codec (value.EncodeRows), so two
// clients receiving the same relation receive bit-identical payloads — the
// property the serial-vs-concurrent equivalence tests pin.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types. Every frame on the wire is 4 bytes of big-endian payload
// length, one type byte, then the payload.
const (
	// FrameHello is sent by the server once per connection, before any
	// request; its payload is the server banner.
	FrameHello = byte('H')
	// FrameQuery carries one SQL statement (client → server).
	FrameQuery = byte('Q')
	// FrameSchema carries the result schema: one "name<TAB>TYPE" line per
	// column, newline-joined.
	FrameSchema = byte('S')
	// FrameRows carries a batch of result rows encoded with
	// value.EncodeRows.
	FrameRows = byte('R')
	// FrameStats carries per-query or server statistics as text.
	FrameStats = byte('T')
	// FrameError carries a statement error message.
	FrameError = byte('E')
	// FrameDone terminates every response.
	FrameDone = byte('D')
)

// maxFrameBytes bounds a single frame payload; anything larger indicates a
// corrupt stream (or an attempt to make the server allocate unboundedly).
const maxFrameBytes = 64 << 20

// rowsPerFrame is the row-batch granularity of FrameRows. Batching amortizes
// framing overhead without letting one frame grow past maxFrameBytes for
// realistic rows.
const rowsPerFrame = 256

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("serve: frame payload %d bytes exceeds limit %d", len(payload), maxFrameBytes)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r. io.EOF is returned untranslated when the
// stream ends cleanly between frames; an EOF inside a frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("serve: frame payload %d bytes exceeds limit %d", n, maxFrameBytes)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
