package serve

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"relalg/internal/core"
	"relalg/internal/value"
)

// testDB builds a small 2×2 engine with the shared fixture tables loaded:
// pts (2000 rows, 97 groups — big enough to spill under a small lease) and
// vecs (vector rows for the LA kernels).
func testDB(t *testing.T) *core.Database {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	db := core.Open(cfg)
	db.MustExec("CREATE TABLE pts (g INTEGER, v DOUBLE)")
	rows := make([]value.Row, 2000)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i % 97)), value.Double(float64(i) * 0.5)}
	}
	if err := db.LoadTable("pts", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE vecs (id INTEGER, vec VECTOR[6])")
	vrows := make([]value.Row, 60)
	for i := range vrows {
		entries := make([]float64, 6)
		for j := range entries {
			entries[j] = float64((i*7+j*3)%11) - 5
		}
		vrows[i] = value.Row{value.Int(int64(i)), core.VectorValue(entries...)}
	}
	if err := db.LoadTable("vecs", vrows); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer listens on an ephemeral port, serves in the background, and
// shuts down gracefully at cleanup (failing the test if Serve errored).
func startServer(t *testing.T, db *core.Database, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v, want nil after Shutdown", err)
		}
	})
	return srv, addr.String()
}

// clientScript is one session's statement sequence: per-client DDL and
// loads, a spilling aggregation over the shared table, LA kernel queries, a
// repeated statement (plan-cache hit), a join, and cleanup DDL.
func clientScript(i int) []string {
	tbl := fmt.Sprintf("cli%d", i)
	return []string{
		fmt.Sprintf("CREATE TABLE %s (id INTEGER, val DOUBLE)", tbl),
		fmt.Sprintf("INSERT INTO %s VALUES (0, %g), (1, %g), (2, 7)", tbl, 0.5+float64(i), 1.25*float64(i+1)),
		fmt.Sprintf("SELECT id, val * 2 FROM %s ORDER BY id", tbl),
		"SELECT g, SUM(v) AS total FROM pts GROUP BY g ORDER BY g",
		"SELECT SUM(outer_product(vec, vec)) FROM vecs",
		"SELECT g, SUM(v) AS total FROM pts GROUP BY g ORDER BY g",
		fmt.Sprintf("SELECT COUNT(*) FROM pts, %s WHERE pts.g = %s.id", tbl, tbl),
		fmt.Sprintf("DROP TABLE %s", tbl),
	}
}

// runScript executes stmts over one connection and digests every reply's
// schema and raw row payloads. Statement errors fail the test; the digest is
// what the serial-vs-concurrent comparison bit-compares.
func runScript(t *testing.T, addr string, stmts []string) []byte {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer func() { _ = c.Close() }()
	var digest bytes.Buffer
	for _, stmt := range stmts {
		reply, err := c.Do(stmt)
		if err != nil {
			t.Fatalf("%q: transport: %v", stmt, err)
		}
		if reply.ErrMsg != "" {
			t.Fatalf("%q: %s", stmt, reply.ErrMsg)
		}
		digest.WriteString("S:" + strings.Join(reply.Schema, "|") + "\n")
		for _, p := range reply.RowPayloads {
			digest.WriteString("R:")
			digest.Write(p)
			digest.WriteString("\n")
		}
		digest.WriteString("D:" + reply.Done + "\n")
	}
	return digest.Bytes()
}

// serveTestConfig: 3 execution slots arbitrating a 12 KiB memory pool (a 4
// KiB lease per slot, small enough that the 97-group aggregation spills) and
// the default kernel budget.
func serveTestConfig() Config {
	return Config{MaxConcurrent: 3, MemoryPoolBytes: 12 << 10, PlanCacheSize: 64}
}

const numSessions = 8

// TestServeConcurrentMatchesSerial is the subsystem's acceptance test: 8
// concurrent sessions mixing DDL, loads, LA queries, and a spilling
// aggregation under the shared memory pool produce byte-identical responses
// to the same scripts run serially, while admission provably bounds
// concurrency and the plan cache serves repeats.
func TestServeConcurrentMatchesSerial(t *testing.T) {
	// Serial reference: same server shape, scripts run one after another.
	serialSrv, serialAddr := startServer(t, testDB(t), serveTestConfig())
	want := make([][]byte, numSessions)
	for i := 0; i < numSessions; i++ {
		want[i] = runScript(t, serialAddr, clientScript(i))
	}
	if hits := serialSrv.Stats().CacheHits; hits < numSessions {
		t.Errorf("serial cache hits = %d, want >= %d (each script repeats a statement)", hits, numSessions)
	}

	concDB := testDB(t)
	concSrv, concAddr := startServer(t, concDB, serveTestConfig())
	got := make([][]byte, numSessions)
	var wg sync.WaitGroup
	for i := 0; i < numSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = runScript(t, concAddr, clientScript(i))
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < numSessions; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("session %d: concurrent results differ from serial (%d vs %d digest bytes)",
				i, len(got[i]), len(want[i]))
		}
	}
	st := concSrv.Stats()
	if st.PeakConcurrent > 3 {
		t.Errorf("peak concurrent %d exceeds admission limit 3", st.PeakConcurrent)
	}
	if st.PeakConcurrent < 1 {
		t.Errorf("peak concurrent %d; nothing executed?", st.PeakConcurrent)
	}
	if st.QueriesServed != numSessions*int64(len(clientScript(0))) {
		t.Errorf("queries served %d, want %d", st.QueriesServed, numSessions*len(clientScript(0)))
	}
	if st.CacheMisses == 0 {
		t.Error("no plan-cache misses recorded")
	}
	if spills := concDB.Cluster().Stats().SpillEvents.Load(); spills == 0 {
		t.Error("no spill events: the shared memory pool never forced a query out of core")
	}
	if st.SessionsOpened != numSessions {
		t.Errorf("sessions opened = %d, want %d", st.SessionsOpened, numSessions)
	}
	// Session teardown is asynchronous with the client's Close: poll briefly.
	for i := 0; concSrv.Stats().SessionsClosed != numSessions && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if closed := concSrv.Stats().SessionsClosed; closed != numSessions {
		t.Errorf("sessions closed = %d, want %d", closed, numSessions)
	}
}

// TestServePlanCacheDDLInvalidation pins the invalidation contract: repeats
// hit, any DDL (even on an unrelated table) misses afterwards.
func TestServePlanCacheDDLInvalidation(t *testing.T) {
	srv, addr := startServer(t, testDB(t), Config{MaxConcurrent: 2})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	do := func(stmt string) {
		t.Helper()
		reply, err := c.Do(stmt)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		if reply.ErrMsg != "" {
			t.Fatalf("%q: %s", stmt, reply.ErrMsg)
		}
	}
	const q = "SELECT COUNT(*) FROM pts"
	do(q)
	if st := srv.Stats(); st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", st.CacheHits, st.CacheMisses)
	}
	do("SELECT  count(*)  FROM pts") // same statement modulo case/whitespace
	if st := srv.Stats(); st.CacheHits != 1 {
		t.Fatalf("normalized repeat missed: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
	do("CREATE TABLE unrelated (x INTEGER)")
	do(q)
	if st := srv.Stats(); st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("after DDL: hits=%d misses=%d, want 1/2", st.CacheHits, st.CacheMisses)
	}
	do(q)
	if st := srv.Stats(); st.CacheHits != 2 {
		t.Fatalf("recompiled plan not served: hits=%d", st.CacheHits)
	}
}

// TestServeStatementErrorKeepsSession: a failing statement is framed as an
// error and the session stays usable.
func TestServeStatementErrorKeepsSession(t *testing.T) {
	srv, addr := startServer(t, testDB(t), Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	reply, err := c.Do("SELECT * FROM no_such_table")
	if err != nil {
		t.Fatal(err)
	}
	if reply.ErrMsg == "" {
		t.Fatal("expected a framed statement error")
	}
	reply, err = c.Do("SELECT COUNT(*) FROM pts")
	if err != nil || reply.ErrMsg != "" {
		t.Fatalf("session unusable after error: %v %q", err, reply.ErrMsg)
	}
	if len(reply.Rows) != 1 || reply.Rows[0][0].I != 2000 {
		t.Fatalf("count rows %v", reply.Rows)
	}
	if st := srv.Stats(); st.StatementErrors != 1 {
		t.Fatalf("statement errors %d, want 1", st.StatementErrors)
	}
}

// TestServeStatsCommand: the \stats meta-command reports both server-wide
// and session counters.
func TestServeStatsCommand(t *testing.T) {
	_, addr := startServer(t, testDB(t), Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.Do("SELECT COUNT(*) FROM pts"); err != nil {
		t.Fatal(err)
	}
	text, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queries_served", "plan_cache_hits", "peak_concurrent", "session_queries"} {
		if !strings.Contains(text, key) {
			t.Errorf("stats output missing %q:\n%s", key, text)
		}
	}
}
