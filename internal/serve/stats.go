package serve

import (
	"fmt"
	"sync/atomic"
)

// serverStats are the server-wide counters. All fields are atomics because
// every session goroutine updates them; reads come from \stats requests and
// from tests via Server.Stats().
type serverStats struct {
	sessionsOpened  atomic.Int64
	sessionsClosed  atomic.Int64
	queriesServed   atomic.Int64
	statementErrors atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the server-wide counters,
// including the admission controller's and plan cache's.
type StatsSnapshot struct {
	SessionsOpened  int64
	SessionsClosed  int64
	QueriesServed   int64
	StatementErrors int64
	CacheHits       int64
	CacheMisses     int64
	AdmissionWaits  int64
	ActiveQueries   int64
	PeakConcurrent  int64
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"sessions_opened %d\nsessions_closed %d\nqueries_served %d\nstatement_errors %d\n"+
			"plan_cache_hits %d\nplan_cache_misses %d\nadmission_waits %d\nactive_queries %d\npeak_concurrent %d",
		s.SessionsOpened, s.SessionsClosed, s.QueriesServed, s.StatementErrors,
		s.CacheHits, s.CacheMisses, s.AdmissionWaits, s.ActiveQueries, s.PeakConcurrent)
}

// sessionStats are one connection's counters; the session goroutine is their
// only writer, so they are plain ints.
type sessionStats struct {
	queries   int64
	errors    int64
	cacheHits int64
}

func (s sessionStats) String() string {
	return fmt.Sprintf("session_queries %d\nsession_errors %d\nsession_cache_hits %d",
		s.queries, s.errors, s.cacheHits)
}
