package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"relalg/internal/value"
)

// Client is a minimal protocol client: dial, send statements, collect
// replies. It is not safe for concurrent use — one goroutine per Client,
// which mirrors one session per connection on the server.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
}

// Reply is one statement's full response.
type Reply struct {
	// Schema holds one "name<TAB>TYPE" line per column; empty for
	// statements with no result set.
	Schema []string
	// Rows are the decoded result rows.
	Rows []value.Row
	// RowPayloads are the raw row-frame payloads exactly as received; two
	// replies carrying the same relation have identical payloads, which the
	// equivalence tests compare directly.
	RowPayloads [][]byte
	// Stats is the stats-frame text, if any.
	Stats string
	// Done is the done-frame payload ("ok", "12 rows", ...).
	Done string
	// ErrMsg is the error-frame text; empty on success.
	ErrMsg string
}

// Err converts an error reply into a Go error (nil on success).
func (r *Reply) Err() error {
	if r.ErrMsg == "" {
		return nil
	}
	return errors.New(r.ErrMsg)
}

// Dial connects to a server and consumes the hello frame.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	typ, payload, err := ReadFrame(c.br)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("serve: reading hello: %w", err)
	}
	if typ != FrameHello {
		_ = conn.Close()
		return nil, fmt.Errorf("serve: expected hello frame, got %q", typ)
	}
	_ = payload // the banner is informational
	return c, nil
}

// Do sends one statement and reads the complete reply. A transport error is
// returned as a Go error; a statement error arrives inside the Reply.
func (c *Client) Do(sql string) (*Reply, error) {
	if err := WriteFrame(c.conn, FrameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	reply := &Reply{}
	for {
		typ, payload, err := ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		switch typ {
		case FrameSchema:
			reply.Schema = splitLines(string(payload))
		case FrameRows:
			reply.RowPayloads = append(reply.RowPayloads, payload)
			rows, err := value.DecodeRows(payload)
			if err != nil {
				return nil, fmt.Errorf("serve: decoding row frame: %w", err)
			}
			reply.Rows = append(reply.Rows, rows...)
		case FrameStats:
			reply.Stats = string(payload)
		case FrameError:
			reply.ErrMsg = string(payload)
		case FrameDone:
			reply.Done = string(payload)
			return reply, nil
		default:
			return nil, fmt.Errorf("serve: unexpected frame type %q", typ)
		}
	}
}

// Stats fetches the server's counters via the \stats meta-command.
func (c *Client) Stats() (string, error) {
	reply, err := c.Do(statsCommand)
	if err != nil {
		return "", err
	}
	if err := reply.Err(); err != nil {
		return "", err
	}
	return reply.Stats, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// splitLines splits on '\n' without a trailing empty element.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
