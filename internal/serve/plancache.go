package serve

import (
	"strings"
	"sync"
	"sync/atomic"

	"relalg/internal/plan"
)

// planCache memoizes optimized plans keyed on normalized SQL text. Entries
// record the catalog DDL version they were compiled under; a lookup only
// hits while that version is still current, so CREATE/DROP of any table or
// view invalidates every cached plan at once (coarse, but DDL is rare and
// the alternative — tracking per-plan table dependencies — buys little for
// this engine). Statistics refreshes from loads do not bump the version: a
// stale-stats plan is suboptimal, never wrong.
//
// Plans are immutable during execution (the engine copies nodes it needs to
// rewrite, e.g. subquery resolution), so one cached tree is handed to any
// number of concurrent executions.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*planEntry
	order   []string // FIFO eviction order
	hits    atomic.Int64
	misses  atomic.Int64
}

type planEntry struct {
	version int64 // catalog DDL version the plan was compiled under
	node    plan.Node
}

func newPlanCache(max int) *planCache {
	if max < 1 {
		max = 1
	}
	return &planCache{max: max, entries: map[string]*planEntry{}}
}

// lookup returns the cached plan for key if it was compiled under the given
// catalog version; it counts the hit or miss either way.
func (c *planCache) lookup(key string, version int64) (plan.Node, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok && e.version == version {
		c.hits.Add(1)
		return e.node, true
	}
	c.misses.Add(1)
	return nil, false
}

// store records a plan compiled under version. Stale entries (any version
// other than the current one) are dropped first; if the cache is still full
// the oldest entry goes.
func (c *planCache) store(key string, version int64, node plan.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		// Keep the newer compile; the key keeps its eviction slot.
		if version >= e.version {
			c.entries[key] = &planEntry{version: version, node: node}
		}
		return
	}
	if len(c.entries) >= c.max {
		kept := c.order[:0]
		for _, k := range c.order {
			if e, ok := c.entries[k]; ok && e.version != version {
				delete(c.entries, k)
			} else if ok {
				kept = append(kept, k)
			}
		}
		c.order = kept
		for len(c.entries) >= c.max && len(c.order) > 0 {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.entries[key] = &planEntry{version: version, node: node}
	c.order = append(c.order, key)
}

// NormalizeSQL canonicalizes a statement for use as a plan-cache key:
// whitespace runs collapse to one space, letters outside quoted strings fold
// to lower case, and trailing semicolons/space are trimmed. Quoted string
// literals are preserved byte-for-byte (their case is data, not syntax).
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	space := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			inStr = true
			space = false
			b.WriteByte(ch)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			if b.Len() > 0 && !space {
				b.WriteByte(' ')
				space = true
			}
		default:
			space = false
			if ch >= 'A' && ch <= 'Z' {
				ch += 'a' - 'A'
			}
			b.WriteByte(ch)
		}
	}
	out := strings.TrimRight(b.String(), " ;")
	return out
}
