package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"relalg/internal/core"
)

// Banner is the hello-frame payload; clients may use it to sanity-check what
// they dialed.
const Banner = "relalg-serve 1"

// Config are the server's resource-arbitration knobs. The zero value gets
// sensible defaults from the database it serves.
type Config struct {
	// MaxConcurrent bounds statements executing at once; further statements
	// queue in the admission controller. Default 4.
	MaxConcurrent int
	// MemoryPoolBytes is the server-wide spill-memory pool. Each admitted
	// statement leases a fixed 1/MaxConcurrent share, so the leases can
	// never sum past the pool no matter what runs concurrently. 0 inherits
	// the database's own per-query budget (cluster.Config.MemoryBudgetBytes)
	// for every statement — the pre-server behaviour, unbounded across
	// queries; negative means no budget anywhere (never spill).
	MemoryPoolBytes int64
	// KernelWorkers is the total kernel-goroutine budget arbitrated across
	// concurrent statements: each admitted statement is granted
	// max(1, KernelWorkers/active). 0 inherits the database's
	// cluster.Config.KernelWorkers().
	KernelWorkers int
	// PlanCacheSize is the maximum number of cached plans. Default 128.
	PlanCacheSize int
}

// Server executes statements from many TCP sessions against one shared
// database.
type Server struct {
	db  *core.Database
	cfg Config

	adm   *admission
	cache *planCache
	stats serverStats

	mu       sync.Mutex
	lis      net.Listener
	sessions map[*session]struct{}
	wg       sync.WaitGroup
	closing  atomic.Bool
}

// New builds a server around db, applying Config defaults.
func New(db *core.Database, cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.KernelWorkers <= 0 {
		cfg.KernelWorkers = db.Cluster().Config().KernelWorkers()
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 128
	}
	return &Server{
		db:       db,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent),
		cache:    newPlanCache(cfg.PlanCacheSize),
		sessions: map[*session]struct{}{},
	}
}

// Listen starts listening on addr (e.g. ":7432" or "127.0.0.1:0") without
// accepting yet, so callers can learn the bound address before Serve blocks.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	return lis.Addr(), nil
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// shutdown. One goroutine per connection is the only fan-out the serving
// layer itself adds — all query parallelism stays inside the engine's own
// bounded runners.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("serve: Serve before Listen")
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		sess := &session{srv: s, conn: conn}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		s.stats.sessionsOpened.Add(1)
		go sess.run()
	}
}

// Shutdown stops accepting, lets every in-flight statement finish, then
// closes all connections and waits for the session goroutines to exit.
func (s *Server) Shutdown() error {
	s.closing.Store(true)
	s.mu.Lock()
	if s.lis != nil {
		_ = s.lis.Close()
	}
	for sess := range s.sessions {
		// Unblock sessions parked in ReadFrame; a session mid-statement
		// finishes and writes its response before noticing.
		_ = sess.conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// removeSession drops a finished session from the registry.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.stats.sessionsClosed.Add(1)
	s.wg.Done()
}

// lease computes the resource lease for a statement admitted as one of
// `active` concurrently-executing statements.
func (s *Server) lease(active int) core.Resources {
	var r core.Resources
	switch {
	case s.cfg.MemoryPoolBytes > 0:
		// Fixed per-slot share: MaxConcurrent × share ≤ pool, always.
		share := s.cfg.MemoryPoolBytes / int64(s.cfg.MaxConcurrent)
		if share < 1 {
			share = 1
		}
		r.MemoryBudgetBytes = share
	case s.cfg.MemoryPoolBytes < 0:
		r.MemoryBudgetBytes = -1 // explicitly unlimited
	}
	if w := s.cfg.KernelWorkers / active; w > 1 {
		r.KernelWorkers = w
	} else {
		r.KernelWorkers = 1
	}
	return r
}

// Stats returns a snapshot of the server-wide counters.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		SessionsOpened:  s.stats.sessionsOpened.Load(),
		SessionsClosed:  s.stats.sessionsClosed.Load(),
		QueriesServed:   s.stats.queriesServed.Load(),
		StatementErrors: s.stats.statementErrors.Load(),
		CacheHits:       s.cache.hits.Load(),
		CacheMisses:     s.cache.misses.Load(),
		AdmissionWaits:  s.adm.waits.Load(),
		ActiveQueries:   s.adm.active.Load(),
		PeakConcurrent:  s.adm.peak.Load(),
	}
}

// String implements fmt.Stringer for error contexts.
func (s *Server) String() string {
	return fmt.Sprintf("serve.Server(max=%d pool=%d workers=%d)",
		s.cfg.MaxConcurrent, s.cfg.MemoryPoolBytes, s.cfg.KernelWorkers)
}
