package serve

import (
	"bufio"
	"fmt"
	"net"
	"strings"

	"relalg/internal/core"
	"relalg/internal/plan"
	"relalg/internal/sqlparse"
	"relalg/internal/value"
)

// statsCommand is the protocol's one meta-command: a client sending it as a
// statement gets the server-wide and per-session counters as a stats frame
// instead of SQL execution.
const statsCommand = `\stats`

// session is one client connection. Its goroutine is the only writer to the
// connection and to its own counters; everything shared lives on the server.
type session struct {
	srv   *Server
	conn  net.Conn
	stats sessionStats
}

// run drives the connection until EOF, protocol error, or server shutdown.
func (s *session) run() {
	defer s.srv.removeSession(s)
	defer func() { _ = s.conn.Close() }()
	br := bufio.NewReader(s.conn)
	bw := bufio.NewWriter(s.conn)
	if err := WriteFrame(bw, FrameHello, []byte(Banner)); err != nil || bw.Flush() != nil {
		return
	}
	for {
		if s.srv.closing.Load() {
			return
		}
		typ, payload, err := ReadFrame(br)
		if err != nil {
			// Clean EOF, server shutdown (read deadline), or a broken
			// stream: in every case the session is over. A statement that
			// was mid-execution has already written its full response.
			return
		}
		if typ != FrameQuery {
			if !s.reply(bw, frameSeq{{FrameError, []byte(fmt.Sprintf("serve: unexpected frame type %q", typ))}, {FrameDone, nil}}) {
				return
			}
			continue
		}
		if !s.reply(bw, s.handle(string(payload))) {
			return
		}
	}
}

// frame is one wire frame awaiting write.
type frame struct {
	typ     byte
	payload []byte
}

// frameSeq is one response: the frames are written and flushed together.
type frameSeq []frame

// reply writes one response; false means the connection is unusable.
func (s *session) reply(bw *bufio.Writer, frames frameSeq) bool {
	for _, f := range frames {
		if err := WriteFrame(bw, f.typ, f.payload); err != nil {
			return false
		}
	}
	return bw.Flush() == nil
}

// handle executes one statement and renders its response frames.
func (s *session) handle(sql string) frameSeq {
	s.stats.queries++
	s.srv.stats.queriesServed.Add(1)
	if strings.TrimSpace(sql) == statsCommand {
		text := s.srv.Stats().String() + "\n" + s.stats.String()
		return frameSeq{{FrameStats, []byte(text)}, {FrameDone, nil}}
	}
	res, err := s.execute(sql)
	if err != nil {
		s.stats.errors++
		s.srv.stats.statementErrors.Add(1)
		return frameSeq{{FrameError, []byte(err.Error())}, {FrameDone, nil}}
	}
	if res == nil {
		return frameSeq{{FrameDone, []byte("ok")}}
	}
	frames := frameSeq{{FrameSchema, []byte(schemaText(res.Schema))}}
	for lo := 0; lo < len(res.Rows); lo += rowsPerFrame {
		hi := min(lo+rowsPerFrame, len(res.Rows))
		frames = append(frames, frame{FrameRows, value.EncodeRows(res.Rows[lo:hi])})
	}
	frames = append(frames,
		frame{FrameStats, []byte(res.Stats.String())},
		frame{FrameDone, []byte(fmt.Sprintf("%d rows", len(res.Rows)))})
	return frames
}

// execute parses, admits, and runs one statement under a resource lease.
// SELECTs go through the plan cache; everything else (DDL, INSERT, EXPLAIN)
// takes the uncached path — DDL invalidates the cache as a side effect of
// bumping the catalog version.
func (s *session) execute(sql string) (*core.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	active := s.srv.adm.acquire()
	defer s.srv.adm.release()
	rsrc := s.srv.lease(active)
	sel, isSelect := stmt.(*sqlparse.Select)
	if !isSelect {
		return s.srv.db.RunParsed(stmt, rsrc)
	}
	key := NormalizeSQL(sql)
	// The version is read BEFORE planning: if DDL lands between this read
	// and the store, the entry is recorded under the stale version and the
	// next lookup misses — never the reverse.
	version := s.srv.db.Catalog().Version()
	node, hit := s.srv.cache.lookup(key, version)
	if hit {
		s.stats.cacheHits++
	} else {
		node, err = s.srv.db.Plan(sel)
		if err != nil {
			return nil, err
		}
		s.srv.cache.store(key, version, node)
	}
	return s.srv.db.ExecutePlanned(node, rsrc)
}

// schemaText renders a result schema as one "name<TAB>TYPE" line per column.
func schemaText(schema plan.Schema) string {
	lines := make([]string, len(schema))
	for i, f := range schema {
		lines[i] = f.Name + "\t" + f.T.String()
	}
	return strings.Join(lines, "\n")
}
