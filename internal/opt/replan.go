package opt

// Adaptive re-optimization: when the executor reaches a join region whose
// input cardinalities diverge badly from the estimates the plan was chosen
// under, it hands the region back here. Replan decomposes the already-ordered
// Join/Cross tree into the flat MultiJoin form the join enumerator consumes,
// wraps every leaf in a Bound node carrying its observed row count, and runs
// enumeration again — so the new order is picked with true cardinalities. The
// executor resolves each Bound to the relation it already materialized;
// nothing below a leaf re-executes.

import (
	"fmt"
	"math"

	"relalg/internal/plan"
	"relalg/internal/types"
)

// Replan re-orders a Join/Cross region using observed leaf cardinalities.
// root must be the region's top node; observed returns the materialized row
// count for each region leaf (a leaf is any non-Join, non-Cross child).
// Regions with fewer than two leaves are returned unchanged.
func (o *Optimizer) Replan(root plan.Node, observed func(plan.Node) (float64, bool)) (plan.Node, error) {
	var (
		leaves    []plan.Node
		conjuncts []plan.Expr
	)
	var walk func(n plan.Node) (int, error) // returns subtree width
	walk = func(n plan.Node) (int, error) {
		switch x := n.(type) {
		case *plan.Join:
			off := widthSoFar(leaves)
			lw, err := walk(x.L)
			if err != nil {
				return 0, err
			}
			rw, err := walk(x.R)
			if err != nil {
				return 0, err
			}
			for i := range x.LKeys {
				l, err := shiftExpr(x.LKeys[i], off)
				if err != nil {
					return 0, err
				}
				r, err := shiftExpr(x.RKeys[i], off+lw)
				if err != nil {
					return 0, err
				}
				conjuncts = append(conjuncts, &plan.Binary{
					Op: "=", Kind: plan.BinCompare, L: l, R: r, T: types.TBool,
				})
			}
			for _, res := range x.Residual {
				se, err := shiftExpr(res, off)
				if err != nil {
					return 0, err
				}
				conjuncts = append(conjuncts, se)
			}
			return lw + rw, nil
		case *plan.Cross:
			off := widthSoFar(leaves)
			lw, err := walk(x.L)
			if err != nil {
				return 0, err
			}
			rw, err := walk(x.R)
			if err != nil {
				return 0, err
			}
			for _, res := range x.Residual {
				se, err := shiftExpr(res, off)
				if err != nil {
					return 0, err
				}
				conjuncts = append(conjuncts, se)
			}
			return lw + rw, nil
		default:
			rows, ok := observed(n)
			if !ok {
				return 0, fmt.Errorf("opt: replan leaf %T has no observed cardinality", n)
			}
			leaves = append(leaves, &plan.Bound{Input: n, Rows: math.Max(1, rows), Out: n.Schema()})
			return len(n.Schema()), nil
		}
	}
	width, err := walk(root)
	if err != nil {
		return nil, err
	}
	if len(leaves) < 2 {
		return root, nil
	}
	// Join and Cross output schemas are exact concatenations of their
	// children's, so the region's global column space is the in-order concat
	// of the leaf schemas.
	out := make(plan.Schema, 0, width)
	for _, l := range leaves {
		out = append(out, l.Schema()...)
	}
	if len(out) != len(root.Schema()) {
		return nil, fmt.Errorf("opt: replan width mismatch: region %d cols, leaves %d", len(root.Schema()), len(out))
	}
	mj := &plan.MultiJoin{Inputs: leaves, Conjuncts: conjuncts, Out: out}
	return o.optimizeNode(mj)
}

// widthSoFar is the number of columns contributed by the leaves collected so
// far — the global offset of the next leaf's first column.
func widthSoFar(leaves []plan.Node) int {
	w := 0
	for _, l := range leaves {
		w += len(l.Schema())
	}
	return w
}

// shiftExpr relocates an expression from a subtree's local column space into
// the region's global one by adding off to every column index.
func shiftExpr(e plan.Expr, off int) (plan.Expr, error) {
	if off == 0 {
		return e, nil
	}
	mapping := map[int]int{}
	for _, idx := range plan.ColsUsed(e) {
		mapping[idx] = idx + off
	}
	return plan.Remap(e, mapping)
}
