package opt

import (
	"strings"
	"testing"

	"relalg/internal/catalog"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

// laCatalog builds a schema exercising every rewrite rule:
//
//	m3 (a MATRIX[50][50], b MATRIX[50][50], c MATRIX[50][2])  -- 100 rows
//	vv (x VECTOR[30], y VECTOR[30], grp INTEGER)              -- 500 rows
func laCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	add := func(name string, rows int64, cols ...catalog.Column) {
		t.Helper()
		meta := catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows)
		if err := cat.CreateTable(meta); err != nil {
			t.Fatal(err)
		}
	}
	add("m3", 100,
		catalog.Column{Name: "a", Type: types.TMatrix(types.KnownDim(50), types.KnownDim(50))},
		catalog.Column{Name: "b", Type: types.TMatrix(types.KnownDim(50), types.KnownDim(50))},
		catalog.Column{Name: "c", Type: types.TMatrix(types.KnownDim(50), types.KnownDim(2))})
	add("vv", 500,
		catalog.Column{Name: "x", Type: types.TVector(types.KnownDim(30))},
		catalog.Column{Name: "y", Type: types.TVector(types.KnownDim(30))},
		catalog.Column{Name: "grp", Type: types.TInt})
	cat.SetDistinct("vv", "grp", 10)
	return cat
}

// statsOptions returns default options wired to a fresh counter set.
func statsOptions() (Options, *RewriteStats) {
	opts := DefaultOptions()
	st := &RewriteStats{}
	opts.Stats = st
	return opts, st
}

// TestRewriteChainReorder pins the matrix-chain DP: (A·B)·C over 50×50,
// 50×50, 50×2 costs 130k multiplications, A·(B·C) costs 10k, so the plan
// must re-associate to the right.
func TestRewriteChainReorder(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT matrix_multiply(matrix_multiply(a, b), c) AS p FROM m3`, opts)
	text := plan.Explain(n)
	if !strings.Contains(text, "matrix_multiply(#0:a, matrix_multiply(#1:b, #2:c))") {
		t.Fatalf("chain not re-associated:\n%s", text)
	}
	if st.ChainReorder.Load() == 0 {
		t.Fatal("ChainReorder counter did not fire")
	}
	if got := n.Schema().String(); got != "(p MATRIX[50][2])" {
		t.Fatalf("schema %s", got)
	}
}

// TestRewriteChainReorderAlreadyOptimal: a chain whose given association is
// already the DP optimum must come out untouched with no counter fired.
func TestRewriteChainReorderAlreadyOptimal(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT matrix_multiply(a, matrix_multiply(b, c)) AS p FROM m3`, opts)
	if !strings.Contains(plan.Explain(n), "matrix_multiply(#0:a, matrix_multiply(#1:b, #2:c))") {
		t.Fatalf("optimal chain changed:\n%s", plan.Explain(n))
	}
	if st.ChainReorder.Load() != 0 {
		t.Fatal("ChainReorder fired on an already-optimal chain")
	}
}

// TestRewriteOuterProduct pins col_matrix(x)·row_matrix(y) → outer_product.
func TestRewriteOuterProduct(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT matrix_multiply(col_matrix(x), row_matrix(y)) AS op FROM vv`, opts)
	text := plan.Explain(n)
	if !strings.Contains(text, "outer_product(#0:x, #1:y)") {
		t.Fatalf("outer product not recognized:\n%s", text)
	}
	if strings.Contains(text, "col_matrix") || strings.Contains(text, "row_matrix") {
		t.Fatalf("conversion calls survived the rewrite:\n%s", text)
	}
	if st.OuterProduct.Load() == 0 {
		t.Fatal("OuterProduct counter did not fire")
	}
	if got := n.Schema().String(); got != "(op MATRIX[30][30])" {
		t.Fatalf("schema %s", got)
	}
}

// TestRewriteDoubleTranspose pins t(t(X)) → X.
func TestRewriteDoubleTranspose(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT trans_matrix(trans_matrix(a)) AS m FROM m3`, opts)
	text := plan.Explain(n)
	if strings.Contains(text, "trans_matrix") {
		t.Fatalf("double transpose survived:\n%s", text)
	}
	if st.DoubleTranspose.Load() == 0 {
		t.Fatal("DoubleTranspose counter did not fire")
	}
}

// TestRewriteFilterPushdown pins σ(π(R)) → π(σ(R)) for predicates over
// pass-through columns. The SQL builder never produces Filter-over-Project,
// so the input plan is assembled by hand (the shape HAVING-style rewrites
// and view expansion produce).
func TestRewriteFilterPushdown(t *testing.T) {
	cat := laCatalog(t)
	meta, _ := cat.Table("vv")
	out := plan.Schema{
		{Name: "x", T: types.TVector(types.KnownDim(30))},
		{Name: "y", T: types.TVector(types.KnownDim(30))},
		{Name: "grp", T: types.TInt},
	}
	scan := &plan.Scan{Table: meta, Out: out}
	proj := &plan.Project{
		Input: scan,
		Exprs: []plan.Expr{
			&plan.Col{Idx: 2, Name: "grp", T: types.TInt}, // reordered pass-through
			&plan.Col{Idx: 0, Name: "x", T: out[0].T},
		},
		Out: plan.Schema{{Name: "grp", T: types.TInt}, {Name: "x", T: out[0].T}},
	}
	pred := &plan.Binary{Op: "=", Kind: plan.BinCompare,
		L: &plan.Col{Idx: 0, Name: "grp", T: types.TInt},
		R: &plan.Const{V: value.Int(3), T: types.TInt},
		T: types.TBool}
	opts, st := statsOptions()
	n, err := New(opts).Optimize(&plan.Filter{Input: proj, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Explain(n)
	projLine := strings.Index(text, "Project")
	filterLine := strings.Index(text, "Filter")
	if projLine < 0 || filterLine < 0 || filterLine < projLine {
		t.Fatalf("filter not pushed below projection:\n%s", text)
	}
	// The pushed predicate must reference the projection's source column.
	if !strings.Contains(text, "Filter (#2:grp = 3)") {
		t.Fatalf("pushed predicate not remapped:\n%s", text)
	}
	if st.FilterPushdown.Load() == 0 {
		t.Fatal("FilterPushdown counter did not fire")
	}
}

// TestRewriteAggPushdown pins trace(SUM(M)) → SUM(trace(M)): the aggregation
// shuffles scalars instead of 50×50 matrices.
func TestRewriteAggPushdown(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT trace(SUM(a)) AS tr FROM m3`, opts)
	text := plan.Explain(n)
	if !strings.Contains(text, "sum(trace(#0:a))") {
		t.Fatalf("trace not pushed inside SUM:\n%s", text)
	}
	if st.AggPushdown.Load() == 0 {
		t.Fatal("AggPushdown counter did not fire")
	}
	if got := n.Schema().String(); got != "(tr DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
}

// TestRewriteAggPushdownSharedOutputHeldBack: an aggregate output consumed
// twice must not be pushed (the two consumers would each need their own
// aggregate).
func TestRewriteAggPushdownSharedOutputHeldBack(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT trace(SUM(a)) AS t1, sum_matrix(SUM(a)) AS t2 FROM m3`, opts)
	text := plan.Explain(n)
	if st.AggPushdown.Load() != 0 {
		t.Fatalf("pushed a shared aggregate output:\n%s", text)
	}
}

// TestRewriteCSE pins common-subexpression extraction: the repeated
// matrix_multiply evaluates once in a child projection.
func TestRewriteCSE(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat,
		`SELECT trace(matrix_multiply(a, b)) AS t1, sum_matrix(matrix_multiply(a, b)) AS t2 FROM m3`, opts)
	text := plan.Explain(n)
	if got := strings.Count(text, "matrix_multiply"); got != 1 {
		t.Fatalf("shared multiply evaluated %d times:\n%s", got, text)
	}
	if !strings.Contains(text, "cse0") {
		t.Fatalf("no shared column introduced:\n%s", text)
	}
	if st.CSE.Load() == 0 {
		t.Fatal("CSE counter did not fire")
	}
	if got := n.Schema().String(); got != "(t1 DOUBLE, t2 DOUBLE)" {
		t.Fatalf("schema %s", got)
	}
}

// TestRewriteFuseMarking pins the optimizer's explicit fusion decision on
// SUM(outer_product) — including one reached through the
// col_matrix·row_matrix recognition.
func TestRewriteFuseMarking(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	n := optimize(t, cat, `SELECT SUM(matrix_multiply(col_matrix(x), row_matrix(y))) AS g FROM vv`, opts)
	ag := findAgg(n)
	if ag == nil {
		t.Fatalf("no Agg in plan:\n%s", plan.Explain(n))
	}
	if ag.Aggs[0].Fuse != plan.FuseOuterSum {
		t.Fatalf("Fuse = %d, want FuseOuterSum; plan:\n%s", ag.Aggs[0].Fuse, plan.Explain(n))
	}
	if st.FuseMarked.Load() == 0 {
		t.Fatal("FuseMarked counter did not fire")
	}

	// With rewrites disabled everything stays FuseAuto (legacy executor
	// pattern-matching).
	off := DefaultOptions()
	off.Rewrites = false
	n = optimize(t, cat, `SELECT SUM(outer_product(x, y)) AS g FROM vv`, off)
	ag = findAgg(n)
	if ag == nil || ag.Aggs[0].Fuse != plan.FuseAuto {
		t.Fatalf("rewrites-off plan should keep FuseAuto")
	}
}

// findAgg returns the first Agg node in the tree.
func findAgg(n plan.Node) *plan.Agg {
	if ag, ok := n.(*plan.Agg); ok {
		return ag
	}
	for _, c := range n.Children() {
		if ag := findAgg(c); ag != nil {
			return ag
		}
	}
	return nil
}

// TestRewritesDisabledLeavesPlanAlone: the ablation leg must not fire any
// rule.
func TestRewritesDisabledLeavesPlanAlone(t *testing.T) {
	cat := laCatalog(t)
	opts, st := statsOptions()
	opts.Rewrites = false
	n := optimize(t, cat, `SELECT matrix_multiply(matrix_multiply(a, b), c) AS p FROM m3`, opts)
	if !strings.Contains(plan.Explain(n), "matrix_multiply(matrix_multiply(#0:a, #1:b), #2:c)") {
		t.Fatalf("rewrites-off plan was changed:\n%s", plan.Explain(n))
	}
	if st.Total() != 0 {
		t.Fatalf("counters fired with rewrites off: %s", st.String())
	}
}

// TestEstimateRowsJoinSelectivity pins the S2 bugfix: an equi-join costs
// |L|·|R|/max(d_L, d_R), not a fixed tenth — and column statistics survive
// pass-through projections (S1).
func TestEstimateRowsJoinSelectivity(t *testing.T) {
	cat := paperCatalog(t)
	meta, _ := cat.Table("t")
	out := plan.Schema{{Name: "t_rid", T: types.TInt}, {Name: "t_sid", T: types.TInt}}
	key := &plan.Col{Idx: 1, Name: "t_sid", T: types.TInt}
	mk := func() *plan.Scan { return &plan.Scan{Table: meta, Out: out} }
	join := &plan.Join{L: mk(), R: mk(), LKeys: []plan.Expr{key}, RKeys: []plan.Expr{key}}
	// 1000·1000 / max(100, 100) = 10000.
	if got := EstimateRows(join); got != 10000 {
		t.Fatalf("equi-join estimate = %g, want 10000", got)
	}
	// The same join through a column-reordering projection must not lose the
	// statistics (pre-fix this degraded to rows=1000 ⇒ estimate 1000).
	proj := &plan.Project{
		Input: mk(),
		Exprs: []plan.Expr{&plan.Col{Idx: 1, Name: "t_sid", T: types.TInt}},
		Out:   plan.Schema{{Name: "t_sid", T: types.TInt}},
	}
	pkey := &plan.Col{Idx: 0, Name: "t_sid", T: types.TInt}
	pj := &plan.Join{L: proj, R: mk(), LKeys: []plan.Expr{pkey}, RKeys: []plan.Expr{key}}
	if got := EstimateRows(pj); got != 10000 {
		t.Fatalf("projected equi-join estimate = %g, want 10000", got)
	}
	// No keys (cross-ish Join) keeps the legacy tenth.
	nokeys := &plan.Join{L: mk(), R: mk()}
	if got := EstimateRows(nokeys); got != 100000 {
		t.Fatalf("keyless join estimate = %g, want 100000", got)
	}
	// Bound pins the observed cardinality exactly.
	if got := EstimateRows(&plan.Bound{Input: mk(), Rows: 42}); got != 42 {
		t.Fatalf("bound estimate = %g, want 42", got)
	}
	// Filter selectivity: equality against a constant keeps 1/d of the rows.
	pred := &plan.Binary{Op: "=", Kind: plan.BinCompare,
		L: key, R: &plan.Const{V: value.Int(5), T: types.TInt}, T: types.TBool}
	if got := EstimateRows(&plan.Filter{Input: mk(), Pred: pred}); got != 10 {
		t.Fatalf("const-equality filter estimate = %g, want 10", got)
	}
}

// TestOptimizeRecursesThroughJoin pins the S3 bugfix: a MultiJoin nested
// under a hand-built Join must still get planned instead of reaching the
// executor raw.
func TestOptimizeRecursesThroughJoin(t *testing.T) {
	cat := paperCatalog(t)
	meta, _ := cat.Table("t")
	out := plan.Schema{{Name: "t_rid", T: types.TInt}, {Name: "t_sid", T: types.TInt}}
	mk := func() *plan.Scan { return &plan.Scan{Table: meta, Out: out} }
	inner := &plan.MultiJoin{
		Inputs: []plan.Node{mk(), mk()},
		Conjuncts: []plan.Expr{&plan.Binary{Op: "=", Kind: plan.BinCompare,
			L: &plan.Col{Idx: 1, Name: "t_sid", T: types.TInt},
			R: &plan.Col{Idx: 3, Name: "t_sid", T: types.TInt},
			T: types.TBool}},
		Out: append(append(plan.Schema{}, out...), out...),
	}
	key := &plan.Col{Idx: 0, Name: "t_rid", T: types.TInt}
	root := &plan.Join{
		L: inner, R: mk(),
		LKeys: []plan.Expr{key}, RKeys: []plan.Expr{key},
		Out: append(append(plan.Schema{}, inner.Out...), out...),
	}
	n, err := New(DefaultOptions()).Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Explain(n)
	if strings.Contains(text, "MultiJoin") {
		t.Fatalf("nested MultiJoin left unplanned:\n%s", text)
	}
	if n.Schema().String() != root.Schema().String() {
		t.Fatalf("schema changed: %s -> %s", root.Schema(), n.Schema())
	}
}

// TestReplanReordersWithObservedCardinalities drives opt.Replan directly: a
// region planned as (small ⋈ big) ⋈ big under wrong estimates must come back
// re-ordered when the observed counts invert the sizes, with every leaf
// pinned as a Bound node and the schema preserved.
func TestReplanReordersWithObservedCardinalities(t *testing.T) {
	cat := paperCatalog(t)
	meta, _ := cat.Table("t")
	out := plan.Schema{{Name: "t_rid", T: types.TInt}, {Name: "t_sid", T: types.TInt}}
	s1 := &plan.Scan{Table: meta, Out: out}
	s2 := &plan.Scan{Table: meta, Out: out}
	s3 := &plan.Scan{Table: meta, Out: out}
	sid := func(idx int) plan.Expr { return &plan.Col{Idx: idx, Name: "t_sid", T: types.TInt} }
	lower := &plan.Join{L: s1, R: s2,
		LKeys: []plan.Expr{sid(1)}, RKeys: []plan.Expr{sid(1)},
		Out: append(append(plan.Schema{}, out...), out...)}
	root := &plan.Join{L: lower, R: s3,
		LKeys: []plan.Expr{sid(1)}, RKeys: []plan.Expr{sid(1)},
		Out: append(append(plan.Schema{}, lower.Out...), out...)}

	observed := map[plan.Node]float64{s1: 100000, s2: 100000, s3: 3}
	n, err := New(DefaultOptions()).Replan(root, func(leaf plan.Node) (float64, bool) {
		r, ok := observed[leaf]
		return r, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Explain(n)
	if got := strings.Count(text, "Bound"); got != 3 {
		t.Fatalf("expected 3 Bound leaves, got %d:\n%s", got, text)
	}
	if n.Schema().String() != root.Schema().String() {
		t.Fatalf("schema changed: %s -> %s", root.Schema(), n.Schema())
	}
	// The tiny relation must join below the huge⋈huge pairing: with 3 rows
	// against 100k⋈100k, any order that starts with the two big inputs pays
	// ~10^8 intermediate rows, so the re-plan must not keep them adjacent.
	if strings.Index(text, "Bound rows=3") > strings.LastIndex(text, "Bound rows=100000") {
		t.Fatalf("small input not pulled up in the re-planned order:\n%s", text)
	}
	// A missing observation is an error, not a silent guess.
	if _, err := New(DefaultOptions()).Replan(root, func(plan.Node) (float64, bool) { return 0, false }); err == nil {
		t.Fatal("Replan with missing observations should fail")
	}
}
