// Package opt is the cost-based query optimizer. Its distinguishing feature
// — the paper's §4 contribution — is that it is "linear-algebra aware": the
// byte widths of VECTOR and MATRIX columns and of expressions over them
// (inferred through the templated function signatures) drive the cost model,
// and projections that shrink tuples (such as an 80 MB matrix_multiply whose
// result is 8 KB) may be evaluated eagerly, as soon as a join subtree covers
// their inputs. Join enumeration is dynamic programming over relation
// subsets with cross products allowed, which is what lets the optimizer find
// the paper's π(S×R)⋈T plan.
package opt

import (
	"math"

	"relalg/internal/plan"
	"relalg/internal/types"
)

// Options control the optimizer; the zero value is NOT useful — use
// DefaultOptions.
type Options struct {
	// SizeAwareCosting uses inferred linear-algebra object sizes as column
	// widths. Disabling it (ablation A1) makes every column a fixed 16
	// bytes, blinding the optimizer exactly the way §4.1 describes.
	SizeAwareCosting bool
	// EagerProjection allows projection expressions to be computed as soon
	// as a join subtree covers their inputs (ablation A2).
	EagerProjection bool
	// DefaultDim is the assumed size of an unknown VECTOR[]/MATRIX[][]
	// dimension in the cost model.
	DefaultDim int
	// MaxDPRelations bounds exhaustive DP enumeration; larger join sets
	// fall back to a greedy pairing.
	MaxDPRelations int
	// Rewrites enables the algebraic rewrite pass that runs before join
	// ordering: matrix-chain reordering, outer-product recognition,
	// double-transpose elimination, filter pushdown through projections,
	// aggregate pushdown through linear LA functions, common-subexpression
	// elimination, and explicit fused-aggregation marking. Disabling it
	// (ablation; the benchmark's baseline leg) leaves expressions exactly as
	// the builder produced them.
	Rewrites bool
	// Stats, when non-nil, counts the rewrite rules that fire; the benchmark
	// harness uses it to hard-fail sweeps where no rewrite applied.
	Stats *RewriteStats
}

// DefaultOptions enables the full §4 behaviour.
func DefaultOptions() Options {
	return Options{
		SizeAwareCosting: true,
		EagerProjection:  true,
		DefaultDim:       100,
		MaxDPRelations:   10,
		Rewrites:         true,
	}
}

// Optimizer rewrites logical plans.
type Optimizer struct {
	opts  Options
	stats *RewriteStats
}

// New returns an optimizer with the given options.
func New(opts Options) *Optimizer {
	if opts.DefaultDim <= 0 {
		opts.DefaultDim = 100
	}
	if opts.MaxDPRelations <= 0 {
		opts.MaxDPRelations = 10
	}
	st := opts.Stats
	if st == nil {
		st = &RewriteStats{}
	}
	return &Optimizer{opts: opts, stats: st}
}

// Optimize rewrites the plan: the algebraic rewrite pass normalizes the
// expression trees, then MultiJoin nodes become ordered Join/Cross trees
// with pushed-down filters and (optionally) eager projections.
func (o *Optimizer) Optimize(n plan.Node) (plan.Node, error) {
	if o.opts.Rewrites {
		rw, err := o.rewrite(n)
		if err != nil {
			return nil, err
		}
		n = rw
	}
	return o.optimizeNode(n)
}

// optimizeNode is the join-ordering pass; the rewrite pass (when enabled)
// already ran over the whole tree, so internal recursion re-enters here.
func (o *Optimizer) optimizeNode(n plan.Node) (plan.Node, error) {
	switch x := n.(type) {
	case *plan.Project:
		if mj, ok := x.Input.(*plan.MultiJoin); ok {
			node, rewritten, err := o.planMultiJoin(mj, x.Exprs)
			if err != nil {
				return nil, err
			}
			return &plan.Project{Input: node, Exprs: rewritten, Out: x.Out}, nil
		}
		in, err := o.optimizeNode(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: in, Exprs: x.Exprs, Out: x.Out}, nil
	case *plan.Agg:
		if mj, ok := x.Input.(*plan.MultiJoin); ok {
			// The aggregate's group keys and aggregate inputs are the
			// expressions consumed above the join.
			consumed := make([]plan.Expr, 0, len(x.GroupBy)+len(x.Aggs))
			consumed = append(consumed, x.GroupBy...)
			for _, a := range x.Aggs {
				if a.Input != nil {
					consumed = append(consumed, a.Input)
				}
			}
			node, rewritten, err := o.planMultiJoin(mj, consumed)
			if err != nil {
				return nil, err
			}
			ng := &plan.Agg{Input: node, GroupBy: rewritten[:len(x.GroupBy)], Out: x.Out}
			rest := rewritten[len(x.GroupBy):]
			ri := 0
			for _, a := range x.Aggs {
				na := a
				if a.Input != nil {
					na.Input = rest[ri]
					ri++
				}
				ng.Aggs = append(ng.Aggs, na)
			}
			return ng, nil
		}
		in, err := o.optimizeNode(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Agg{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs, Out: x.Out}, nil
	case *plan.Filter:
		in, err := o.optimizeNode(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Filter{Input: in, Pred: x.Pred}, nil
	case *plan.Sort:
		in, err := o.optimizeNode(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Sort{Input: in, Keys: x.Keys}, nil
	case *plan.Limit:
		in, err := o.optimizeNode(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Limit{Input: in, N: x.N}, nil
	case *plan.Join:
		// Already-built joins still recurse structurally: a MultiJoin nested
		// under one (a re-planned region, a hand-assembled plan) must not
		// reach the executor unplanned.
		l, err := o.optimizeNode(x.L)
		if err != nil {
			return nil, err
		}
		r, err := o.optimizeNode(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Join{L: l, R: r, LKeys: x.LKeys, RKeys: x.RKeys, Residual: x.Residual, Out: x.Out}, nil
	case *plan.Cross:
		l, err := o.optimizeNode(x.L)
		if err != nil {
			return nil, err
		}
		r, err := o.optimizeNode(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Cross{L: l, R: r, Residual: x.Residual, Out: x.Out}, nil
	case *plan.Bound:
		// A Bound subtree was already executed; re-optimizing below it would
		// desynchronize the node identity the executor's cache is keyed on.
		return x, nil
	case *plan.MultiJoin:
		// A bare MultiJoin (no consumer expressions): keep every column.
		idents := make([]plan.Expr, len(x.Out))
		for i, f := range x.Out {
			idents[i] = &plan.Col{Idx: i, Name: f.Name, T: f.T}
		}
		node, rewritten, err := o.planMultiJoin(x, idents)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: node, Exprs: rewritten, Out: x.Out}, nil
	default:
		return n, nil
	}
}

// colWidth is the costed byte width of a type.
func (o *Optimizer) colWidth(t types.T) float64 {
	if !o.opts.SizeAwareCosting {
		return 16
	}
	return t.SizeBytes(o.opts.DefaultDim)
}

// EstimateRows gives a rough cardinality for any plan node; exact for stored
// tables, heuristic for derived inputs.
func EstimateRows(n plan.Node) float64 {
	switch x := n.(type) {
	case *plan.Scan:
		return math.Max(1, float64(x.Table.RowCount()))
	case *plan.Filter:
		rows := EstimateRows(x.Input)
		return math.Max(1, rows*filterSelectivity(x.Input, x.Pred, rows))
	case *plan.Project:
		return EstimateRows(x.Input)
	case *plan.Bound:
		return math.Max(1, x.Rows)
	case *plan.Agg:
		if len(x.GroupBy) == 0 {
			return 1
		}
		return math.Max(1, EstimateRows(x.Input)/10)
	case *plan.Sort:
		return EstimateRows(x.Input)
	case *plan.Limit:
		return math.Min(float64(x.N), EstimateRows(x.Input))
	case *plan.Join:
		// Key-aware equi-join selectivity: matching rows pair up through the
		// key's value space, so the join produces |L|·|R|/max(d_L, d_R) rows
		// per key (the classic System R estimate), not a fixed tenth.
		l, r := EstimateRows(x.L), EstimateRows(x.R)
		rows := l * r
		if len(x.LKeys) == 0 {
			return math.Max(1, rows/10)
		}
		for i := range x.LKeys {
			d := math.Max(distinctOf(x.L, x.LKeys[i], l), distinctOf(x.R, x.RKeys[i], r))
			rows /= math.Max(1, d)
		}
		return math.Max(1, rows)
	case *plan.Cross:
		return EstimateRows(x.L) * EstimateRows(x.R)
	case *plan.MultiJoin:
		r := 1.0
		for _, in := range x.Inputs {
			r *= EstimateRows(in)
		}
		return r
	case *plan.OneRow:
		return 1
	default:
		return 1
	}
}

// distinctOf estimates the number of distinct values of a join key
// expression over the given input. Only simple column references that trace
// back to base tables get catalog statistics; everything else defaults to
// the row count. Projections that merely pass a column through keep its
// source statistics (losing them was how join selectivity silently fell
// back to the row count whenever an input was pruned or eagerly projected).
func distinctOf(input plan.Node, key plan.Expr, rows float64) float64 {
	col, ok := key.(*plan.Col)
	if !ok {
		return math.Max(1, rows)
	}
	switch x := input.(type) {
	case *plan.Scan:
		return clampDistinct(x.Table.Distinct(col.Name), rows)
	case *plan.Filter:
		return distinctOf(x.Input, key, rows)
	case *plan.Bound:
		return distinctOf(x.Input, key, math.Min(rows, math.Max(1, x.Rows)))
	case *plan.Project:
		if col.Idx >= 0 && col.Idx < len(x.Exprs) {
			if src, isCol := x.Exprs[col.Idx].(*plan.Col); isCol {
				return distinctOf(x.Input, src, rows)
			}
		}
	}
	return math.Max(1, rows)
}

// filterSelectivity estimates the fraction of rows surviving a predicate:
// an equality against a constant keeps one value's share of the column's
// distinct values, conjunctions multiply, and anything else keeps the
// traditional third.
func filterSelectivity(input plan.Node, pred plan.Expr, rows float64) float64 {
	if be, ok := pred.(*plan.Binary); ok {
		switch {
		case be.Kind == plan.BinLogic && be.Op == "AND":
			return filterSelectivity(input, be.L, rows) * filterSelectivity(input, be.R, rows)
		case be.Kind == plan.BinCompare && be.Op == "=":
			var colSide plan.Expr
			if _, isConst := be.R.(*plan.Const); isConst {
				colSide = be.L
			} else if _, isConst := be.L.(*plan.Const); isConst {
				colSide = be.R
			}
			if col, isCol := colSide.(*plan.Col); isCol {
				return 1 / distinctOf(input, col, rows)
			}
		}
	}
	return 1.0 / 3
}

func clampDistinct(d, rows float64) float64 {
	if d < 1 {
		d = 1
	}
	if rows >= 1 && d > rows {
		d = rows
	}
	return d
}

func subsetBits(s uint) []int {
	var out []int
	for i := 0; s != 0; i++ {
		if s&1 != 0 {
			out = append(out, i)
		}
		s >>= 1
	}
	return out
}
