// Package opt is the cost-based query optimizer. Its distinguishing feature
// — the paper's §4 contribution — is that it is "linear-algebra aware": the
// byte widths of VECTOR and MATRIX columns and of expressions over them
// (inferred through the templated function signatures) drive the cost model,
// and projections that shrink tuples (such as an 80 MB matrix_multiply whose
// result is 8 KB) may be evaluated eagerly, as soon as a join subtree covers
// their inputs. Join enumeration is dynamic programming over relation
// subsets with cross products allowed, which is what lets the optimizer find
// the paper's π(S×R)⋈T plan.
package opt

import (
	"math"

	"relalg/internal/plan"
	"relalg/internal/types"
)

// Options control the optimizer; the zero value is NOT useful — use
// DefaultOptions.
type Options struct {
	// SizeAwareCosting uses inferred linear-algebra object sizes as column
	// widths. Disabling it (ablation A1) makes every column a fixed 16
	// bytes, blinding the optimizer exactly the way §4.1 describes.
	SizeAwareCosting bool
	// EagerProjection allows projection expressions to be computed as soon
	// as a join subtree covers their inputs (ablation A2).
	EagerProjection bool
	// DefaultDim is the assumed size of an unknown VECTOR[]/MATRIX[][]
	// dimension in the cost model.
	DefaultDim int
	// MaxDPRelations bounds exhaustive DP enumeration; larger join sets
	// fall back to a greedy pairing.
	MaxDPRelations int
}

// DefaultOptions enables the full §4 behaviour.
func DefaultOptions() Options {
	return Options{
		SizeAwareCosting: true,
		EagerProjection:  true,
		DefaultDim:       100,
		MaxDPRelations:   10,
	}
}

// Optimizer rewrites logical plans.
type Optimizer struct {
	opts Options
}

// New returns an optimizer with the given options.
func New(opts Options) *Optimizer {
	if opts.DefaultDim <= 0 {
		opts.DefaultDim = 100
	}
	if opts.MaxDPRelations <= 0 {
		opts.MaxDPRelations = 10
	}
	return &Optimizer{opts: opts}
}

// Optimize rewrites the plan: MultiJoin nodes become ordered Join/Cross
// trees with pushed-down filters and (optionally) eager projections.
func (o *Optimizer) Optimize(n plan.Node) (plan.Node, error) {
	switch x := n.(type) {
	case *plan.Project:
		if mj, ok := x.Input.(*plan.MultiJoin); ok {
			node, rewritten, err := o.planMultiJoin(mj, x.Exprs)
			if err != nil {
				return nil, err
			}
			return &plan.Project{Input: node, Exprs: rewritten, Out: x.Out}, nil
		}
		in, err := o.Optimize(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: in, Exprs: x.Exprs, Out: x.Out}, nil
	case *plan.Agg:
		if mj, ok := x.Input.(*plan.MultiJoin); ok {
			// The aggregate's group keys and aggregate inputs are the
			// expressions consumed above the join.
			consumed := make([]plan.Expr, 0, len(x.GroupBy)+len(x.Aggs))
			consumed = append(consumed, x.GroupBy...)
			for _, a := range x.Aggs {
				if a.Input != nil {
					consumed = append(consumed, a.Input)
				}
			}
			node, rewritten, err := o.planMultiJoin(mj, consumed)
			if err != nil {
				return nil, err
			}
			ng := &plan.Agg{Input: node, GroupBy: rewritten[:len(x.GroupBy)], Out: x.Out}
			rest := rewritten[len(x.GroupBy):]
			ri := 0
			for _, a := range x.Aggs {
				na := a
				if a.Input != nil {
					na.Input = rest[ri]
					ri++
				}
				ng.Aggs = append(ng.Aggs, na)
			}
			return ng, nil
		}
		in, err := o.Optimize(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Agg{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs, Out: x.Out}, nil
	case *plan.Filter:
		in, err := o.Optimize(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Filter{Input: in, Pred: x.Pred}, nil
	case *plan.Sort:
		in, err := o.Optimize(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Sort{Input: in, Keys: x.Keys}, nil
	case *plan.Limit:
		in, err := o.Optimize(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Limit{Input: in, N: x.N}, nil
	case *plan.MultiJoin:
		// A bare MultiJoin (no consumer expressions): keep every column.
		idents := make([]plan.Expr, len(x.Out))
		for i, f := range x.Out {
			idents[i] = &plan.Col{Idx: i, Name: f.Name, T: f.T}
		}
		node, rewritten, err := o.planMultiJoin(x, idents)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: node, Exprs: rewritten, Out: x.Out}, nil
	default:
		return n, nil
	}
}

// colWidth is the costed byte width of a type.
func (o *Optimizer) colWidth(t types.T) float64 {
	if !o.opts.SizeAwareCosting {
		return 16
	}
	return t.SizeBytes(o.opts.DefaultDim)
}

// EstimateRows gives a rough cardinality for any plan node; exact for stored
// tables, heuristic for derived inputs.
func EstimateRows(n plan.Node) float64 {
	switch x := n.(type) {
	case *plan.Scan:
		return math.Max(1, float64(x.Table.RowCount()))
	case *plan.Filter:
		return math.Max(1, EstimateRows(x.Input)/3)
	case *plan.Project:
		return EstimateRows(x.Input)
	case *plan.Agg:
		if len(x.GroupBy) == 0 {
			return 1
		}
		return math.Max(1, EstimateRows(x.Input)/10)
	case *plan.Sort:
		return EstimateRows(x.Input)
	case *plan.Limit:
		return math.Min(float64(x.N), EstimateRows(x.Input))
	case *plan.Join:
		return math.Max(1, EstimateRows(x.L)*EstimateRows(x.R)/10)
	case *plan.Cross:
		return EstimateRows(x.L) * EstimateRows(x.R)
	case *plan.MultiJoin:
		r := 1.0
		for _, in := range x.Inputs {
			r *= EstimateRows(in)
		}
		return r
	case *plan.OneRow:
		return 1
	default:
		return 1
	}
}

// distinctOf estimates the number of distinct values of a join key
// expression over the given input. Only simple column references over base
// tables get catalog statistics; everything else defaults to the row count.
func distinctOf(input plan.Node, key plan.Expr, rows float64) float64 {
	col, ok := key.(*plan.Col)
	if !ok {
		return math.Max(1, rows)
	}
	switch x := input.(type) {
	case *plan.Scan:
		return clampDistinct(x.Table.Distinct(col.Name), rows)
	case *plan.Filter:
		return distinctOf(x.Input, key, rows)
	}
	return math.Max(1, rows)
}

func clampDistinct(d, rows float64) float64 {
	if d < 1 {
		d = 1
	}
	if rows >= 1 && d > rows {
		d = rows
	}
	return d
}

func subsetBits(s uint) []int {
	var out []int
	for i := 0; s != 0; i++ {
		if s&1 != 0 {
			out = append(out, i)
		}
		s >>= 1
	}
	return out
}
