package opt

import (
	"fmt"
	"strings"
	"testing"

	"relalg/internal/catalog"
	"relalg/internal/plan"
	"relalg/internal/sqlparse"
	"relalg/internal/types"
)

// paperCatalog builds the §4.1 schema:
//
//	R (r_rid INTEGER, r_matrix MATRIX[10][100000])   -- 100 rows
//	S (s_sid INTEGER, s_matrix MATRIX[100000][100])  -- 100 rows
//	T (t_rid INTEGER, t_sid INTEGER)                 -- 1000 rows
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	add := func(name string, rows int64, cols ...catalog.Column) {
		t.Helper()
		meta := catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows)
		if err := cat.CreateTable(meta); err != nil {
			t.Fatal(err)
		}
	}
	add("r", 100,
		catalog.Column{Name: "r_rid", Type: types.TInt},
		catalog.Column{Name: "r_matrix", Type: types.TMatrix(types.KnownDim(10), types.KnownDim(100000))})
	add("s", 100,
		catalog.Column{Name: "s_sid", Type: types.TInt},
		catalog.Column{Name: "s_matrix", Type: types.TMatrix(types.KnownDim(100000), types.KnownDim(100))})
	add("t", 1000,
		catalog.Column{Name: "t_rid", Type: types.TInt},
		catalog.Column{Name: "t_sid", Type: types.TInt})
	cat.SetDistinct("r", "r_rid", 100)
	cat.SetDistinct("s", "s_sid", 100)
	cat.SetDistinct("t", "t_rid", 100)
	cat.SetDistinct("t", "t_sid", 100)
	return cat
}

func optimize(t *testing.T, cat *catalog.Catalog, src string, opts Options) plan.Node {
	t.Helper()
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	logical, err := plan.NewBuilder(cat).BuildSelect(stmt.(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := New(opts).Optimize(logical)
	if err != nil {
		t.Fatal(err)
	}
	return optimized
}

const paperQuery = `SELECT matrix_multiply(r_matrix, s_matrix) AS product
	FROM r, s, t
	WHERE r_rid = t_rid AND s_sid = t_sid`

// TestOptimizerPaperExample reproduces §4.1: with LA-aware costing and eager
// projection the optimizer must choose (π(S × R)) ⋈ T — a cross product of
// the two matrix tables with the multiply applied early — over the
// "obvious" π((S ⋈ T) ⋈ R) plan that drags 80 GB of matrices through the
// join.
func TestOptimizerPaperExample(t *testing.T) {
	cat := paperCatalog(t)
	n := optimize(t, cat, paperQuery, DefaultOptions())
	text := plan.Explain(n)

	// The winning plan contains a cross join of r and s with the
	// matrix_multiply computed in a projection below the join with t.
	if !strings.Contains(text, "CrossJoin") {
		t.Fatalf("expected a CrossJoin of r and s; plan:\n%s", text)
	}
	// The eager projection must appear below the top-level projection:
	// matrix_multiply evaluated inside the tree, not at the root, whose own
	// expression list is just a column reference to the precomputed result.
	lines := strings.Split(text, "\n")
	if strings.Contains(lines[0], "matrix_multiply") {
		t.Fatalf("matrix_multiply still evaluated at the root:\n%s", text)
	}
	if !strings.Contains(text, "matrix_multiply") {
		t.Fatalf("matrix_multiply missing from plan:\n%s", text)
	}
	// It must be computed below the cross join of the two matrix tables.
	mmLine := strings.Index(text, "matrix_multiply")
	crossLine := strings.Index(text, "CrossJoin")
	if mmLine > crossLine {
		t.Fatalf("matrix_multiply should be projected above the cross join, below the hash join:\n%s", text)
	}
	// And t joins against the shrunken intermediate via a hash join.
	if !strings.Contains(text, "HashJoin") {
		t.Fatalf("expected HashJoin with t; plan:\n%s", text)
	}
}

// TestAblationSizeBlind disables LA-aware costing: with every column
// costed at a fixed width, the optimizer has no reason to risk a cross
// product and must fall back to the join-predicate-driven order (the plan
// the paper calls "almost assuredly" chosen by a size-blind optimizer).
func TestAblationSizeBlind(t *testing.T) {
	cat := paperCatalog(t)
	opts := DefaultOptions()
	opts.SizeAwareCosting = false
	n := optimize(t, cat, paperQuery, opts)
	text := plan.Explain(n)
	if strings.Contains(text, "CrossJoin") {
		t.Fatalf("size-blind optimizer chose a cross product; plan:\n%s", text)
	}
}

// TestAblationNoEagerProjection disables early function evaluation: the
// multiply can only run at the root, so the cross-product plan loses its
// advantage and must not be chosen.
func TestAblationNoEagerProjection(t *testing.T) {
	cat := paperCatalog(t)
	opts := DefaultOptions()
	opts.EagerProjection = false
	n := optimize(t, cat, paperQuery, opts)
	text := plan.Explain(n)
	if strings.Contains(text, "CrossJoin") {
		t.Fatalf("without eager projection a cross product should not win; plan:\n%s", text)
	}
	// matrix_multiply appears exactly once: in the root projection.
	if strings.Count(text, "matrix_multiply") != 1 {
		t.Fatalf("matrix_multiply should only appear at the root; plan:\n%s", text)
	}
}

func TestFilterPushdown(t *testing.T) {
	cat := paperCatalog(t)
	n := optimize(t, cat, `SELECT t1.t_rid FROM t AS t1, t AS t2 WHERE t1.t_sid = t2.t_sid AND t1.t_rid = 7`, DefaultOptions())
	text := plan.Explain(n)
	// The constant filter must sit directly on a scan, below the join.
	joinLine := strings.Index(text, "HashJoin")
	filterLine := strings.Index(text, "Filter")
	if joinLine < 0 || filterLine < 0 || filterLine < joinLine {
		t.Fatalf("filter not pushed below join:\n%s", text)
	}
}

func TestJoinKeysOnExpressions(t *testing.T) {
	cat := catalog.New()
	if err := cat.CreateTable(catalog.NewTableMeta("x", catalog.Schema{Cols: []catalog.Column{
		{Name: "id", Type: types.TInt},
		{Name: "v", Type: types.TDouble},
	}}, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateTable(catalog.NewTableMeta("blocks",
		catalog.Schema{Cols: []catalog.Column{{Name: "mi", Type: types.TInt}}}, 10)); err != nil {
		t.Fatal(err)
	}
	// The paper's blocking join: x.id/1000 = ind.mi.
	n := optimize(t, cat, `SELECT v FROM x, blocks WHERE x.id/100 = blocks.mi`, DefaultOptions())
	text := plan.Explain(n)
	if !strings.Contains(text, "HashJoin") {
		t.Fatalf("expression equi-join should hash join:\n%s", text)
	}
}

func TestResidualNonEquiPredicate(t *testing.T) {
	cat := paperCatalog(t)
	// The paper's distance query shape: a.dataID <> mxx.id.
	n := optimize(t, cat, `SELECT t1.t_rid FROM t AS t1, t AS t2 WHERE t1.t_rid <> t2.t_rid`, DefaultOptions())
	text := plan.Explain(n)
	if !strings.Contains(text, "CrossJoin") || !strings.Contains(text, "filter [") {
		t.Fatalf("non-equi predicate should be a residual on a cross join:\n%s", text)
	}
}

func TestOptimizeThroughAggregate(t *testing.T) {
	cat := paperCatalog(t)
	n := optimize(t, cat, `SELECT t1.t_rid, COUNT(*) FROM t AS t1, t AS t2
		WHERE t1.t_sid = t2.t_sid GROUP BY t1.t_rid`, DefaultOptions())
	text := plan.Explain(n)
	if !strings.Contains(text, "Aggregate") || !strings.Contains(text, "HashJoin") {
		t.Fatalf("aggregate over join not planned:\n%s", text)
	}
}

func TestEstimateRows(t *testing.T) {
	cat := paperCatalog(t)
	meta, _ := cat.Table("t")
	scan := &plan.Scan{Table: meta}
	if got := EstimateRows(scan); got != 1000 {
		t.Fatalf("scan rows = %g", got)
	}
	if got := EstimateRows(&plan.Limit{Input: scan, N: 10}); got != 10 {
		t.Fatalf("limit rows = %g", got)
	}
	if got := EstimateRows(&plan.Agg{Input: scan}); got != 1 {
		t.Fatalf("scalar agg rows = %g", got)
	}
	if got := EstimateRows(&plan.Cross{L: scan, R: scan}); got != 1e6 {
		t.Fatalf("cross rows = %g", got)
	}
	if got := EstimateRows(&plan.OneRow{}); got != 1 {
		t.Fatalf("one-row = %g", got)
	}
}

func TestIdentityProjectionSkipped(t *testing.T) {
	cat := paperCatalog(t)
	// Selecting everything from a two-table join should not stack useless
	// identity projections above the scans: at most the root projection and
	// one column-ordering projection above the join.
	n := optimize(t, cat, `SELECT t1.t_rid, t1.t_sid, t2.t_rid, t2.t_sid
		FROM t AS t1, t AS t2 WHERE t1.t_sid = t2.t_sid`, DefaultOptions())
	text := plan.Explain(n)
	if strings.Count(text, "Project") > 2 {
		t.Fatalf("extra projections:\n%s", text)
	}
}

func TestOptimizePreservesSchema(t *testing.T) {
	cat := paperCatalog(t)
	queries := []string{
		paperQuery,
		"SELECT t_rid, COUNT(*) FROM t GROUP BY t_rid",
		"SELECT r_rid FROM r ORDER BY r_rid LIMIT 5",
		"SELECT t1.t_rid FROM t AS t1, t AS t2 WHERE t1.t_sid = t2.t_sid",
	}
	for _, q := range queries {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		logical, err := plan.NewBuilder(cat).BuildSelect(stmt.(*sqlparse.Select))
		if err != nil {
			t.Fatal(err)
		}
		optimized, err := New(DefaultOptions()).Optimize(logical)
		if err != nil {
			t.Fatal(err)
		}
		if logical.Schema().String() != optimized.Schema().String() {
			t.Fatalf("%q: schema changed from %s to %s", q, logical.Schema(), optimized.Schema())
		}
	}
}

// TestGreedyFallbackBeyondDPBound forces the greedy join-ordering path and
// checks the plan still answers correctly shaped joins.
func TestGreedyFallbackBeyondDPBound(t *testing.T) {
	cat := paperCatalog(t)
	opts := DefaultOptions()
	opts.MaxDPRelations = 2 // three relations -> greedy
	n := optimize(t, cat, paperQuery, opts)
	text := plan.Explain(n)
	if !strings.Contains(text, "Join") {
		t.Fatalf("greedy produced no joins:\n%s", text)
	}
	// All three tables must appear exactly once.
	for _, tbl := range []string{"Scan r", "Scan s", "Scan t"} {
		if strings.Count(text, tbl) != 1 {
			t.Fatalf("table %s occurs %d times:\n%s", tbl, strings.Count(text, tbl), text)
		}
	}
	if n.Schema().String() != "(product MATRIX[10][100])" {
		t.Fatalf("schema %s", n.Schema())
	}
}

// TestManyRelationGreedyJoin plans an eight-way self-join through the greedy
// path end to end.
func TestManyRelationGreedyJoin(t *testing.T) {
	cat := paperCatalog(t)
	opts := DefaultOptions()
	opts.MaxDPRelations = 3
	from := "t AS a0"
	where := ""
	for i := 1; i < 8; i++ {
		from += fmt.Sprintf(", t AS a%d", i)
		if i > 1 {
			where += " AND "
		}
		where += fmt.Sprintf("a%d.t_rid = a%d.t_rid", i-1, i)
	}
	q := "SELECT a0.t_sid FROM " + from + " WHERE " + where
	n := optimize(t, cat, q, opts)
	if got := strings.Count(plan.Explain(n), "Scan t"); got != 8 {
		t.Fatalf("expected 8 scans, got %d:\n%s", got, plan.Explain(n))
	}
}
