package opt

// The algebraic rewrite pass: the paper's §4 argument is that an optimizer
// which understands linear-algebra objects can transform LA expressions the
// way a classical optimizer transforms relational ones. The rules here are
// in the spirit of LaraDB's minimalist kernel and the Typed Linear Algebra
// line of work: typed identities chosen by a cost model over the dimension
// metadata the catalog and the templated builtin signatures already carry.
//
//	matrix-chain reordering     A(BC) vs (AB)C by the classic DP over dims
//	outer-product recognition   col_matrix(x)·row_matrix(y) → outer_product
//	double-transpose            t(t(X)) → X
//	filter pushdown             σ over a pass-through projection commutes
//	aggregate pushdown          f(SUM(X)) → SUM(f(X)) for linear f
//	CSE                         repeated LA subtrees evaluated once
//	fuse marking                SUM(outer_product)/SUM(matrix_multiply)
//	                            accumulation decided here, not in the executor
//
// Every rule preserves the node's output schema; rules that re-associate
// floating-point reductions (chain reorder, aggregate pushdown) are exact
// for integer-valued data and within re-association tolerance otherwise,
// while the rest are bit-identical per element.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"relalg/internal/builtins"
	"relalg/internal/plan"
	"relalg/internal/types"
)

// RewriteStats counts rewrite-rule firings. All fields are atomic so one
// stats object may be shared by concurrent query compilations.
type RewriteStats struct {
	ChainReorder    atomic.Int64 // matrix chains re-parenthesized
	OuterProduct    atomic.Int64 // col·row products recognized
	DoubleTranspose atomic.Int64 // t(t(X)) collapsed
	FilterPushdown  atomic.Int64 // filters moved below projections
	AggPushdown     atomic.Int64 // linear functions moved inside SUM
	CSE             atomic.Int64 // shared subtrees extracted
	FuseMarked      atomic.Int64 // aggregate calls marked for fused accumulation
}

// Total sums every rule counter.
func (s *RewriteStats) Total() int64 {
	return s.ChainReorder.Load() + s.OuterProduct.Load() + s.DoubleTranspose.Load() +
		s.FilterPushdown.Load() + s.AggPushdown.Load() + s.CSE.Load() + s.FuseMarked.Load()
}

// rewrite applies the algebraic rules bottom-up over the whole tree. It runs
// once, before join ordering; the result still contains MultiJoin nodes.
func (o *Optimizer) rewrite(n plan.Node) (plan.Node, error) {
	switch x := n.(type) {
	case *plan.Project:
		in, err := o.rewrite(x.Input)
		if err != nil {
			return nil, err
		}
		exprs, err := o.rewriteExprs(x.Exprs)
		if err != nil {
			return nil, err
		}
		node := &plan.Project{Input: in, Exprs: exprs, Out: x.Out}
		if ag, ok := in.(*plan.Agg); ok {
			node, err = o.pushAggThroughProject(node, ag)
			if err != nil {
				return nil, err
			}
		}
		// CSE would insert a projection between a Project and its MultiJoin
		// input, hiding the join set from the eager-projection planner; that
		// path gets full-expression dedup from the consumer table instead.
		if _, isMJ := node.Input.(*plan.MultiJoin); !isMJ {
			return o.cseProject(node), nil
		}
		return node, nil
	case *plan.Filter:
		in, err := o.rewrite(x.Input)
		if err != nil {
			return nil, err
		}
		pred, err := o.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return o.pushFilterDown(in, pred)
	case *plan.Agg:
		in, err := o.rewrite(x.Input)
		if err != nil {
			return nil, err
		}
		groupBy, err := o.rewriteExprs(x.GroupBy)
		if err != nil {
			return nil, err
		}
		ng := &plan.Agg{Input: in, GroupBy: groupBy, Out: x.Out}
		for _, a := range x.Aggs {
			na := a
			if a.Input != nil {
				na.Input, err = o.rewriteExpr(a.Input)
				if err != nil {
					return nil, err
				}
			}
			na.Fuse = o.markFuse(na)
			ng.Aggs = append(ng.Aggs, na)
		}
		return ng, nil
	case *plan.MultiJoin:
		nm := &plan.MultiJoin{Out: x.Out}
		for _, in := range x.Inputs {
			rin, err := o.rewrite(in)
			if err != nil {
				return nil, err
			}
			nm.Inputs = append(nm.Inputs, rin)
		}
		var err error
		nm.Conjuncts, err = o.rewriteExprs(x.Conjuncts)
		if err != nil {
			return nil, err
		}
		return nm, nil
	case *plan.Join:
		l, err := o.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := o.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Join{L: l, R: r, LKeys: x.LKeys, RKeys: x.RKeys, Residual: x.Residual, Out: x.Out}, nil
	case *plan.Cross:
		l, err := o.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := o.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Cross{L: l, R: r, Residual: x.Residual, Out: x.Out}, nil
	case *plan.Sort:
		in, err := o.rewrite(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Sort{Input: in, Keys: x.Keys}, nil
	case *plan.Limit:
		in, err := o.rewrite(x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Limit{Input: in, N: x.N}, nil
	case *plan.Bound:
		// Already executed: its expressions are spent.
		return x, nil
	default:
		return n, nil
	}
}

// pushFilterDown commutes a predicate below pass-through projections: when
// every column the predicate reads is a bare column reference in the
// projection, the predicate sees identical values below it, and filtering
// first spares the projection's work on doomed rows.
func (o *Optimizer) pushFilterDown(in plan.Node, pred plan.Expr) (plan.Node, error) {
	pj, ok := in.(*plan.Project)
	if !ok {
		return &plan.Filter{Input: in, Pred: pred}, nil
	}
	mapping := map[int]int{}
	for _, idx := range plan.ColsUsed(pred) {
		if idx < 0 || idx >= len(pj.Exprs) {
			return &plan.Filter{Input: in, Pred: pred}, nil
		}
		src, isCol := pj.Exprs[idx].(*plan.Col)
		if !isCol {
			return &plan.Filter{Input: in, Pred: pred}, nil
		}
		mapping[idx] = src.Idx
	}
	below, err := plan.Remap(pred, mapping)
	if err != nil {
		return nil, err
	}
	o.stats.FilterPushdown.Add(1)
	inner, err := o.pushFilterDown(pj.Input, below) // keep pushing through stacked projections
	if err != nil {
		return nil, err
	}
	return &plan.Project{Input: inner, Exprs: pj.Exprs, Out: pj.Out}, nil
}

// linearOverSum lists the builtins f with f(SUM(X)) = SUM(f(X)): linear maps
// of their single vector/matrix argument.
var linearOverSum = map[string]bool{
	"trace":      true,
	"sum_vector": true,
	"sum_matrix": true,
	"diag":       true,
}

// pushAggThroughProject rewrites f(SUM(X)) above an aggregation into
// SUM(f(X)) inside it when f is linear: the aggregation then shuffles and
// accumulates f's (much smaller) output — a scalar per group instead of a
// matrix — which is the dominant cost of a distributed SUM. Applies when the
// aggregate output column is consumed exactly once, directly as f's sole
// argument.
func (o *Optimizer) pushAggThroughProject(p *plan.Project, ag *plan.Agg) (*plan.Project, error) {
	type use struct {
		refs int
		call *plan.Call // sole consuming call when refs == 1 and eligible
	}
	uses := make([]use, len(ag.Aggs))
	base := len(ag.GroupBy)
	record := func(idx int, c *plan.Call) {
		if idx < base || idx >= base+len(uses) {
			return
		}
		u := &uses[idx-base]
		u.refs++
		if u.refs == 1 {
			u.call = c
		} else {
			u.call = nil
		}
	}
	for _, e := range p.Exprs {
		var walk func(expr plan.Expr, parent *plan.Call)
		walk = func(expr plan.Expr, parent *plan.Call) {
			switch x := expr.(type) {
			case *plan.Col:
				if parent != nil && len(parent.Args) == 1 && linearOverSum[parent.Fn.Name] {
					record(x.Idx, parent)
				} else {
					record(x.Idx, nil)
				}
			case *plan.Call:
				for _, a := range x.Args {
					walk(a, x)
				}
			case *plan.Binary:
				walk(x.L, nil)
				walk(x.R, nil)
			case *plan.Not:
				walk(x.E, nil)
			case *plan.Neg:
				walk(x.E, nil)
			}
		}
		walk(e, nil)
	}

	// Rewrite eligible aggregates and substitute the consuming calls.
	replaced := map[*plan.Call]plan.Expr{}
	ng := &plan.Agg{Input: ag.Input, GroupBy: ag.GroupBy, Out: append(plan.Schema{}, ag.Out...)}
	ng.Aggs = append([]plan.AggCall{}, ag.Aggs...)
	changed := false
	for i, u := range uses {
		a := ag.Aggs[i]
		if u.refs != 1 || u.call == nil || a.Spec == nil || a.Spec.Name != "sum" || a.Input == nil {
			continue
		}
		inner := &plan.Call{Fn: u.call.Fn, Args: []plan.Expr{a.Input}, T: u.call.T}
		ng.Aggs[i] = plan.AggCall{Spec: a.Spec, Input: inner, T: u.call.T}
		ng.Out[base+i] = plan.Field{Name: ag.Out[base+i].Name, T: u.call.T}
		replaced[u.call] = &plan.Col{Idx: base + i, Name: ag.Out[base+i].Name, T: u.call.T}
		o.stats.AggPushdown.Add(1)
		changed = true
	}
	if !changed {
		return p, nil
	}
	for i := range ng.Aggs {
		ng.Aggs[i].Fuse = o.markFuse(ng.Aggs[i])
	}
	exprs := make([]plan.Expr, len(p.Exprs))
	for i, e := range p.Exprs {
		exprs[i] = substituteExpr(e, func(x plan.Expr) plan.Expr {
			if c, ok := x.(*plan.Call); ok {
				if r, hit := replaced[c]; hit {
					return r
				}
			}
			return nil
		})
	}
	return &plan.Project{Input: ng, Exprs: exprs, Out: p.Out}, nil
}

// markFuse is the optimizer's fused-accumulation decision: a SUM over a
// two-argument outer_product or matrix_multiply call accumulates into one
// buffer instead of materializing a result object per row. The output
// matrix's size makes fusion win whenever the pattern applies, so the cost
// model here is a structural test; everything else is explicitly unfused so
// the executor need not re-derive the decision.
func (o *Optimizer) markFuse(a plan.AggCall) plan.FuseKind {
	if a.Spec == nil || a.Spec.Name != "sum" || a.Input == nil {
		return plan.FuseNone
	}
	call, ok := a.Input.(*plan.Call)
	if !ok || len(call.Args) != 2 {
		return plan.FuseNone
	}
	switch call.Fn.Name {
	case "outer_product":
		o.stats.FuseMarked.Add(1)
		return plan.FuseOuterSum
	case "matrix_multiply":
		o.stats.FuseMarked.Add(1)
		return plan.FuseMatMulSum
	}
	return plan.FuseNone
}

// cseProject extracts subexpressions repeated across a projection's output
// list into a child projection, so each shared LA subtree is evaluated once
// per row instead of once per occurrence.
func (o *Optimizer) cseProject(p *plan.Project) plan.Node {
	counts := map[string]int{}
	reps := map[string]plan.Expr{}
	for _, e := range p.Exprs {
		e.Walk(func(x plan.Expr) {
			if shareableExpr(x) {
				key := x.String()
				counts[key]++
				if _, ok := reps[key]; !ok {
					reps[key] = x
				}
			}
		})
	}
	var keys []string
	for k, c := range counts {
		if c >= 2 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return p
	}
	sort.Strings(keys)
	// Keep only maximal shared subtrees: a candidate nested inside another
	// candidate is already covered by sharing the outer one.
	maximal := keys[:0]
	for _, k := range keys {
		nested := false
		for _, other := range keys {
			if other != k && containsSubexpr(reps[other], k) {
				nested = true
				break
			}
		}
		if !nested {
			maximal = append(maximal, k)
		}
	}
	if len(maximal) == 0 {
		return p
	}

	inSchema := p.Input.Schema()
	lowerExprs := make([]plan.Expr, 0, len(inSchema)+len(maximal))
	lowerOut := make(plan.Schema, 0, len(inSchema)+len(maximal))
	for i, f := range inSchema {
		lowerExprs = append(lowerExprs, &plan.Col{Idx: i, Name: f.Name, T: f.T})
		lowerOut = append(lowerOut, f)
	}
	shared := map[string]*plan.Col{}
	for i, k := range maximal {
		e := reps[k]
		name := fmt.Sprintf("cse%d", i)
		shared[k] = &plan.Col{Idx: len(lowerOut), Name: name, T: e.Type()}
		lowerExprs = append(lowerExprs, e)
		lowerOut = append(lowerOut, plan.Field{Name: name, T: e.Type()})
		o.stats.CSE.Add(1)
	}
	lower := &plan.Project{Input: p.Input, Exprs: lowerExprs, Out: lowerOut}
	exprs := make([]plan.Expr, len(p.Exprs))
	for i, e := range p.Exprs {
		exprs[i] = substituteExpr(e, func(x plan.Expr) plan.Expr {
			if col, ok := shared[x.String()]; ok {
				return col
			}
			return nil
		})
	}
	return &plan.Project{Input: lower, Exprs: exprs, Out: p.Out}
}

// shareableExpr reports whether a subtree is worth extracting: a builtin
// call that touches a vector or matrix (the per-occurrence evaluation the
// sharing saves is a kernel invocation, not a scalar op).
func shareableExpr(e plan.Expr) bool {
	c, ok := e.(*plan.Call)
	if !ok {
		return false
	}
	if laType(c.T) {
		return true
	}
	for _, a := range c.Args {
		if laType(a.Type()) {
			return true
		}
	}
	return false
}

func laType(t types.T) bool {
	return t.Base == types.Vector || t.Base == types.Matrix
}

// containsSubexpr reports whether key occurs as a proper subtree of e.
func containsSubexpr(e plan.Expr, key string) bool {
	found := false
	first := true
	e.Walk(func(x plan.Expr) {
		if first {
			first = false // skip e itself
			return
		}
		if !found && x.String() == key {
			found = true
		}
	})
	return found
}

// substituteExpr rebuilds e, replacing every subtree for which repl returns
// non-nil. Replacement happens top-down: a replaced subtree is not recursed
// into.
func substituteExpr(e plan.Expr, repl func(plan.Expr) plan.Expr) plan.Expr {
	if r := repl(e); r != nil {
		return r
	}
	switch x := e.(type) {
	case *plan.Binary:
		return &plan.Binary{Op: x.Op, Kind: x.Kind, L: substituteExpr(x.L, repl), R: substituteExpr(x.R, repl), T: x.T}
	case *plan.Not:
		return &plan.Not{E: substituteExpr(x.E, repl)}
	case *plan.Neg:
		return &plan.Neg{E: substituteExpr(x.E, repl), T: x.T}
	case *plan.Call:
		args := make([]plan.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteExpr(a, repl)
		}
		return &plan.Call{Fn: x.Fn, Args: args, T: x.T}
	default:
		return e
	}
}

// rewriteExprs maps rewriteExpr over a list.
func (o *Optimizer) rewriteExprs(es []plan.Expr) ([]plan.Expr, error) {
	out := make([]plan.Expr, len(es))
	for i, e := range es {
		ne, err := o.rewriteExpr(e)
		if err != nil {
			return nil, err
		}
		out[i] = ne
	}
	return out, nil
}

// rewriteExpr applies the expression-level identities bottom-up.
func (o *Optimizer) rewriteExpr(e plan.Expr) (plan.Expr, error) {
	switch x := e.(type) {
	case *plan.Binary:
		l, err := o.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := o.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Binary{Op: x.Op, Kind: x.Kind, L: l, R: r, T: x.T}, nil
	case *plan.Not:
		inner, err := o.rewriteExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &plan.Not{E: inner}, nil
	case *plan.Neg:
		inner, err := o.rewriteExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &plan.Neg{E: inner, T: x.T}, nil
	case *plan.Call:
		args := make([]plan.Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := o.rewriteExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return o.applyCallRules(&plan.Call{Fn: x.Fn, Args: args, T: x.T}), nil
	default:
		return e, nil
	}
}

// applyCallRules applies the LA identities rooted at one builtin call.
func (o *Optimizer) applyCallRules(c *plan.Call) plan.Expr {
	switch c.Fn.Name {
	case "trans_matrix":
		// t(t(X)) = X, exactly: transposition only permutes entries.
		if inner, ok := c.Args[0].(*plan.Call); ok && inner.Fn.Name == "trans_matrix" {
			o.stats.DoubleTranspose.Add(1)
			return inner.Args[0]
		}
	case "matrix_multiply":
		// col_matrix(x) · row_matrix(y) is the outer product x yᵀ; each
		// output entry is the single product x_i·y_j either way, so the
		// rewrite is bit-identical and skips materializing the operands.
		if a, ok := c.Args[0].(*plan.Call); ok && a.Fn.Name == "col_matrix" {
			if b, ok := c.Args[1].(*plan.Call); ok && b.Fn.Name == "row_matrix" {
				if op, found := builtins.Lookup("outer_product"); found {
					o.stats.OuterProduct.Add(1)
					return &plan.Call{Fn: op, Args: []plan.Expr{a.Args[0], b.Args[0]}, T: c.T}
				}
			}
		}
		if ne, changed := o.reorderChain(c); changed {
			o.stats.ChainReorder.Add(1)
			return ne
		}
	}
	return c
}

// reorderChain re-parenthesizes a chain of matrix multiplications by the
// classic matrix-chain DP over the dimension metadata: flatten the nested
// calls, minimize Σ r·k·c over split points, rebuild. Unknown dimensions
// cost DefaultDim. Returns false when the chain is shorter than three terms
// or already optimally associated.
func (o *Optimizer) reorderChain(c *plan.Call) (plan.Expr, bool) {
	terms := flattenChain(c)
	n := len(terms)
	if n < 3 {
		return nil, false
	}
	dims := make([]float64, n+1)
	for i, t := range terms {
		tt := t.Type()
		if tt.Base != types.Matrix {
			return nil, false
		}
		if i == 0 {
			dims[0] = o.dimSize(tt.Dims[0])
		} else if o.dimSize(tt.Dims[0]) != dims[i] {
			// Dimension metadata disagrees along the chain; don't touch it.
			return nil, false
		}
		dims[i+1] = o.dimSize(tt.Dims[1])
	}
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = math.Inf(1)
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] + dims[i]*dims[k+1]*dims[j+1]
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	rebuilt := buildChain(c.Fn, terms, split, 0, n-1)
	if rebuilt.String() == c.String() {
		return nil, false
	}
	return rebuilt, true
}

// dimSize resolves one dimension against the default for unknowns.
func (o *Optimizer) dimSize(d types.Dim) float64 {
	if d.Known {
		return float64(d.N)
	}
	return float64(o.opts.DefaultDim)
}

// flattenChain collects the in-order terms of a matrix_multiply chain.
func flattenChain(e plan.Expr) []plan.Expr {
	if c, ok := e.(*plan.Call); ok && c.Fn.Name == "matrix_multiply" {
		if c.Args[0].Type().Base == types.Matrix && c.Args[1].Type().Base == types.Matrix {
			return append(flattenChain(c.Args[0]), flattenChain(c.Args[1])...)
		}
	}
	return []plan.Expr{e}
}

// buildChain rebuilds the chain for terms[i..j] along the DP's split points.
func buildChain(fn *builtins.Builtin, terms []plan.Expr, split [][]int, i, j int) plan.Expr {
	if i == j {
		return terms[i]
	}
	k := split[i][j]
	l := buildChain(fn, terms, split, i, k)
	r := buildChain(fn, terms, split, k+1, j)
	t := types.TMatrix(l.Type().Dims[0], r.Type().Dims[1])
	return &plan.Call{Fn: fn, Args: []plan.Expr{l, r}, T: t}
}

// ruleNames documents the rule set for reports and tests.
func (s *RewriteStats) String() string {
	parts := []string{}
	add := func(name string, c *atomic.Int64) {
		if v := c.Load(); v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("chain", &s.ChainReorder)
	add("outer", &s.OuterProduct)
	add("trans", &s.DoubleTranspose)
	add("filter", &s.FilterPushdown)
	add("aggpush", &s.AggPushdown)
	add("cse", &s.CSE)
	add("fuse", &s.FuseMarked)
	if len(parts) == 0 {
		return "no rewrites"
	}
	return strings.Join(parts, " ")
}
