package opt

import (
	"fmt"
	"math"

	"relalg/internal/plan"
	"relalg/internal/types"
)

// tupleCPUCost is the modelled fixed cost of pushing one tuple through an
// operator — the per-tuple overhead the paper identifies as the downfall of
// tuple-based linear algebra.
const tupleCPUCost = 4.0

// globalCol is one column of the MultiJoin's concatenated schema.
type globalCol struct {
	rel   int
	local int
	name  string
	t     types.T
}

// conjunct is one WHERE conjunct over the concatenated schema.
type conjunct struct {
	expr plan.Expr
	rels uint
	// Equi-join edge decomposition (valid when isEdge).
	isEdge bool
	e1, e2 plan.Expr // the two sides, over the concatenated schema
	m1, m2 uint      // relation masks of each side
}

// consumer is an expression evaluated immediately above the MultiJoin
// (projection output, group key, or aggregate input).
type consumer struct {
	expr     plan.Expr
	rels     uint
	cols     []int
	outWidth float64
	inWidth  float64 // summed width of referenced columns
	trivial  bool    // bare column / constant: never eager-computed
}

// joinState carries everything planMultiJoin computes up front.
type joinState struct {
	o         *Optimizer
	inputs    []plan.Node // after filter pushdown
	rowsAfter []float64
	gcols     []globalCol
	offsets   []int
	edges     []*conjunct
	residuals []*conjunct
	consumers []*consumer
	nrel      int

	// DP memo, indexed by relation-set bitmask.
	rowsMemo  map[uint]float64
	widthMemo map[uint]float64
	keepMemo  map[uint][]int
	eligMemo  map[uint][]int
	cost      map[uint]float64
	split     map[uint][2]uint
}

// planMultiJoin orders the join set and returns the join tree plus the
// consumer expressions rewritten over its output schema.
func (o *Optimizer) planMultiJoin(mj *plan.MultiJoin, consumed []plan.Expr) (plan.Node, []plan.Expr, error) {
	st := &joinState{
		o:         o,
		nrel:      len(mj.Inputs),
		rowsMemo:  map[uint]float64{},
		widthMemo: map[uint]float64{},
		keepMemo:  map[uint][]int{},
		eligMemo:  map[uint][]int{},
		cost:      map[uint]float64{},
		split:     map[uint][2]uint{},
	}

	// Global column layout.
	off := 0
	for rel, in := range mj.Inputs {
		st.offsets = append(st.offsets, off)
		for local, f := range in.Schema() {
			st.gcols = append(st.gcols, globalCol{rel: rel, local: local, name: f.Name, t: f.T})
			off++
		}
	}

	// Optimize inputs and set base cardinalities. The rewrite pass (when
	// enabled) already covered these subtrees on the way in, so this is the
	// join-ordering recursion only.
	for _, in := range mj.Inputs {
		oin, err := o.optimizeNode(in)
		if err != nil {
			return nil, nil, err
		}
		st.inputs = append(st.inputs, oin)
		st.rowsAfter = append(st.rowsAfter, EstimateRows(oin))
	}

	// Classify conjuncts: single-relation filters push down; cross-relation
	// equalities become join edges; the rest are residual predicates.
	for _, c := range mj.Conjuncts {
		cols := plan.ColsUsed(c)
		mask := st.maskOf(cols)
		switch popcount(mask) {
		case 0:
			st.residuals = append(st.residuals, &conjunct{expr: c, rels: mask})
		case 1:
			rel := subsetBits(mask)[0]
			local, err := plan.Remap(c, st.globalToLocal(rel))
			if err != nil {
				return nil, nil, err
			}
			st.inputs[rel] = &plan.Filter{Input: st.inputs[rel], Pred: local}
			st.rowsAfter[rel] = math.Max(1, st.rowsAfter[rel]*st.pushdownSelectivity(rel, c))
		default:
			if e := st.asEdge(c, mask); e != nil {
				st.edges = append(st.edges, e)
			} else {
				st.residuals = append(st.residuals, &conjunct{expr: c, rels: mask})
			}
		}
	}

	// Consumers, deduplicated by structure.
	seen := map[string]int{}
	consumerOf := make([]int, len(consumed))
	for i, e := range consumed {
		key := e.String()
		if idx, ok := seen[key]; ok {
			consumerOf[i] = idx
			continue
		}
		cols := plan.ColsUsed(e)
		mask := st.maskOf(cols)
		var inW float64
		for _, c := range cols {
			inW += o.colWidth(st.gcols[c].t)
		}
		_, isCol := e.(*plan.Col)
		cons := &consumer{
			expr:     e,
			rels:     mask,
			cols:     cols,
			outWidth: o.colWidth(e.Type()),
			inWidth:  inW,
			trivial:  isCol || len(cols) == 0,
		}
		idx := len(st.consumers)
		st.consumers = append(st.consumers, cons)
		seen[key] = idx
		consumerOf[i] = idx
	}

	full := uint(1)<<st.nrel - 1
	if st.nrel == 1 {
		// Degenerate single input (shouldn't occur from the builder, but be safe).
		node, colmap, computed, err := st.build(1)
		if err != nil {
			return nil, nil, err
		}
		rewritten, err := st.rewriteConsumers(consumed, consumerOf, colmap, computed)
		if err != nil {
			return nil, nil, err
		}
		return node, rewritten, nil
	}

	// DP join enumeration (greedy fallback for very large join sets).
	if st.nrel <= o.opts.MaxDPRelations {
		st.enumerate(full)
	} else {
		st.greedy(full)
	}

	node, colmap, computed, err := st.build(full)
	if err != nil {
		return nil, nil, err
	}
	rewritten, err := st.rewriteConsumers(consumed, consumerOf, colmap, computed)
	if err != nil {
		return nil, nil, err
	}
	return node, rewritten, nil
}

func (st *joinState) rewriteConsumers(consumed []plan.Expr, consumerOf []int, colmap map[int]int, computed map[int]int) ([]plan.Expr, error) {
	out := make([]plan.Expr, len(consumed))
	for i := range consumed {
		ci := consumerOf[i]
		cons := st.consumers[ci]
		if pos, ok := computed[ci]; ok {
			out[i] = &plan.Col{Idx: pos, Name: fmt.Sprintf("expr%d", ci), T: cons.expr.Type()}
			continue
		}
		e, err := plan.Remap(cons.expr, colmap)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func (st *joinState) maskOf(cols []int) uint {
	var m uint
	for _, c := range cols {
		m |= 1 << uint(st.gcols[c].rel)
	}
	return m
}

// globalToLocal maps the global ids of one relation's columns to its local
// schema positions.
func (st *joinState) globalToLocal(rel int) map[int]int {
	m := map[int]int{}
	for gid, gc := range st.gcols {
		if gc.rel == rel {
			m[gid] = gc.local
		}
	}
	return m
}

// pushdownSelectivity estimates the fraction of rows surviving a
// single-relation conjunct.
func (st *joinState) pushdownSelectivity(rel int, c plan.Expr) float64 {
	if be, ok := c.(*plan.Binary); ok && be.Kind == plan.BinCompare && be.Op == "=" {
		var colSide plan.Expr
		if _, isConst := be.R.(*plan.Const); isConst {
			colSide = be.L
		} else if _, isConst := be.L.(*plan.Const); isConst {
			colSide = be.R
		}
		if col, ok := colSide.(*plan.Col); ok {
			// A remap failure here is only an estimation miss; fall back to
			// the default selectivity rather than failing the plan.
			if local, err := plan.Remap(col, st.globalToLocal(rel)); err == nil {
				d := distinctOf(st.inputs[rel], local, st.rowsAfter[rel])
				return 1 / d
			}
		}
	}
	return 1.0 / 3
}

// asEdge decomposes an equality conjunct into a hash-joinable edge when each
// side's columns come from disjoint, non-empty relation sets.
func (st *joinState) asEdge(c plan.Expr, mask uint) *conjunct {
	be, ok := c.(*plan.Binary)
	if !ok || be.Kind != plan.BinCompare || be.Op != "=" {
		return nil
	}
	m1 := st.maskOf(plan.ColsUsed(be.L))
	m2 := st.maskOf(plan.ColsUsed(be.R))
	if m1 == 0 || m2 == 0 || m1&m2 != 0 {
		return nil
	}
	return &conjunct{expr: c, rels: mask, isEdge: true, e1: be.L, e2: be.R, m1: m1, m2: m2}
}

// sideDistinct estimates distinct values of one side of a join edge.
func (st *joinState) sideDistinct(side plan.Expr, mask uint) float64 {
	bits := subsetBits(mask)
	if len(bits) == 1 {
		rel := bits[0]
		// On a remap failure fall through to the coarse product estimate.
		if local, err := plan.Remap(side, st.globalToLocal(rel)); err == nil {
			return distinctOf(st.inputs[rel], local, st.rowsAfter[rel])
		}
	}
	r := 1.0
	for _, rel := range bits {
		r *= st.rowsAfter[rel]
	}
	return math.Max(1, r)
}

// rows estimates the cardinality of the join of subset s.
func (st *joinState) rows(s uint) float64 {
	if r, ok := st.rowsMemo[s]; ok {
		return r
	}
	r := 1.0
	for _, rel := range subsetBits(s) {
		r *= st.rowsAfter[rel]
	}
	for _, e := range st.edges {
		if e.rels&s == e.rels {
			d := math.Max(st.sideDistinct(e.e1, e.m1), st.sideDistinct(e.e2, e.m2))
			r /= math.Max(1, d)
		}
	}
	for _, rc := range st.residuals {
		if rc.rels != 0 && rc.rels&s == rc.rels && popcount(rc.rels) > 1 {
			r /= 3
		}
	}
	r = math.Max(1, r)
	st.rowsMemo[s] = r
	return r
}

// eligible lists the consumers eager-computed within subset s: non-trivial,
// fully covered, and width-shrinking.
func (st *joinState) eligible(s uint) []int {
	if e, ok := st.eligMemo[s]; ok {
		return e
	}
	var out []int
	if st.o.opts.EagerProjection {
		for i, c := range st.consumers {
			if c.trivial || c.rels == 0 || c.rels&s != c.rels {
				continue
			}
			if c.outWidth < c.inWidth {
				out = append(out, i)
			}
		}
	}
	st.eligMemo[s] = out
	return out
}

// keepCols lists the global columns of s that must remain in s's output:
// used by a conjunct not fully applied inside s, or by a consumer not
// eager-computed inside s.
func (st *joinState) keepCols(s uint) []int {
	if k, ok := st.keepMemo[s]; ok {
		return k
	}
	elig := map[int]bool{}
	for _, i := range st.eligible(s) {
		elig[i] = true
	}
	need := map[int]bool{}
	for _, e := range st.edges {
		if e.rels&s == e.rels {
			continue // applied somewhere inside s
		}
		for _, c := range plan.ColsUsed(e.expr) {
			if st.inSubset(c, s) {
				need[c] = true
			}
		}
	}
	for _, rc := range st.residuals {
		if rc.rels&s == rc.rels && popcount(rc.rels) > 1 {
			continue
		}
		for _, c := range plan.ColsUsed(rc.expr) {
			if st.inSubset(c, s) {
				need[c] = true
			}
		}
	}
	for i, cons := range st.consumers {
		if elig[i] {
			continue
		}
		for _, c := range cons.cols {
			if st.inSubset(c, s) {
				need[c] = true
			}
		}
	}
	out := make([]int, 0, len(need))
	for c := range need {
		out = append(out, c)
	}
	sortIntsAsc(out)
	st.keepMemo[s] = out
	return out
}

func (st *joinState) inSubset(gid int, s uint) bool {
	return s&(1<<uint(st.gcols[gid].rel)) != 0
}

// width estimates the byte width of one output row of subset s.
func (st *joinState) width(s uint) float64 {
	if w, ok := st.widthMemo[s]; ok {
		return w
	}
	w := 0.0
	for _, c := range st.keepCols(s) {
		w += st.o.colWidth(st.gcols[c].t)
	}
	for _, i := range st.eligible(s) {
		w += st.consumers[i].outWidth
	}
	w += 8 // per-row overhead
	st.widthMemo[s] = w
	return w
}

// enumerate runs DP over all subsets (cross products allowed).
func (st *joinState) enumerate(full uint) {
	for rel := 0; rel < st.nrel; rel++ {
		s := uint(1) << uint(rel)
		st.cost[s] = st.rows(s) * (st.width(s) + tupleCPUCost)
	}
	for size := 2; size <= st.nrel; size++ {
		for s := uint(1); s <= full; s++ {
			if popcount(s) != size {
				continue
			}
			best := math.Inf(1)
			var bestSplit [2]uint
			// Enumerate proper non-empty splits; (l, r) and (r, l) are
			// both visited, which also picks build/probe sides.
			for l := (s - 1) & s; l != 0; l = (l - 1) & s {
				r := s &^ l
				cl, okl := st.cost[l]
				cr, okr := st.cost[r]
				if !okl || !okr {
					continue
				}
				c := cl + cr + st.joinCost(s, l, r)
				if c < best {
					best = c
					bestSplit = [2]uint{l, r}
				}
			}
			st.cost[s] = best
			st.split[s] = bestSplit
		}
	}
}

// joinCost is the incremental cost of producing subset s from l and r:
// materializing the output plus shuffling both inputs.
func (st *joinState) joinCost(s, l, r uint) float64 {
	out := st.rows(s) * (st.width(s) + tupleCPUCost)
	shuffle := st.rows(l)*st.width(l) + st.rows(r)*st.width(r)
	return out + shuffle
}

// greedy repeatedly merges the cheapest pair (fallback beyond the DP bound).
func (st *joinState) greedy(full uint) {
	var sets []uint
	for rel := 0; rel < st.nrel; rel++ {
		s := uint(1) << uint(rel)
		sets = append(sets, s)
		st.cost[s] = st.rows(s) * (st.width(s) + tupleCPUCost)
	}
	for len(sets) > 1 {
		best := math.Inf(1)
		bi, bj := 0, 1
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				u := sets[i] | sets[j]
				c := st.cost[sets[i]] + st.cost[sets[j]] + st.joinCost(u, sets[i], sets[j])
				if c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		u := sets[bi] | sets[bj]
		st.cost[u] = best
		st.split[u] = [2]uint{sets[bi], sets[bj]}
		ns := sets[:0]
		for k, s := range sets {
			if k != bi && k != bj {
				ns = append(ns, s)
			}
		}
		sets = append(ns, u)
	}
	_ = full
}

// build constructs the plan for subset s, returning the node, the mapping
// from kept global column ids to output positions, and the mapping from
// computed consumer ids to output positions.
func (st *joinState) build(s uint) (plan.Node, map[int]int, map[int]int, error) {
	if popcount(s) == 1 {
		return st.buildLeaf(subsetBits(s)[0], s)
	}
	sp := st.split[s]
	ln, lmap, lcomp, err := st.build(sp[0])
	if err != nil {
		return nil, nil, nil, err
	}
	rn, rmap, rcomp, err := st.build(sp[1])
	if err != nil {
		return nil, nil, nil, err
	}
	lwidth := len(ln.Schema())

	// Map global ids and computed consumers into the concatenated schema.
	comb := map[int]int{}
	for g, p := range lmap {
		comb[g] = p
	}
	for g, p := range rmap {
		comb[g] = p + lwidth
	}
	childComputed := map[int]int{}
	for ci, p := range lcomp {
		childComputed[ci] = p
	}
	for ci, p := range rcomp {
		childComputed[ci] = p + lwidth
	}

	// Join keys: edges fully applicable at exactly this node.
	var lkeys, rkeys []plan.Expr
	var residual []plan.Expr
	for _, e := range st.edges {
		if e.rels&s != e.rels || e.rels&sp[0] == e.rels || e.rels&sp[1] == e.rels {
			continue
		}
		switch {
		case e.isEdge && e.m1&sp[0] == e.m1 && e.m2&sp[1] == e.m2:
			lk, err := plan.Remap(e.e1, lmap)
			if err != nil {
				return nil, nil, nil, err
			}
			rk, err := plan.Remap(e.e2, rmap)
			if err != nil {
				return nil, nil, nil, err
			}
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, rk)
		case e.isEdge && e.m2&sp[0] == e.m2 && e.m1&sp[1] == e.m1:
			lk, err := plan.Remap(e.e2, lmap)
			if err != nil {
				return nil, nil, nil, err
			}
			rk, err := plan.Remap(e.e1, rmap)
			if err != nil {
				return nil, nil, nil, err
			}
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, rk)
		default:
			res, err := plan.Remap(e.expr, comb)
			if err != nil {
				return nil, nil, nil, err
			}
			residual = append(residual, res)
		}
	}
	for _, rc := range st.residuals {
		if rc.rels&s != rc.rels || (rc.rels != 0 && (rc.rels&sp[0] == rc.rels || rc.rels&sp[1] == rc.rels)) {
			continue
		}
		res, err := plan.Remap(rc.expr, comb)
		if err != nil {
			return nil, nil, nil, err
		}
		residual = append(residual, res)
	}

	// Concatenated join schema.
	concat := make(plan.Schema, 0, lwidth+len(rn.Schema()))
	concat = append(concat, ln.Schema()...)
	concat = append(concat, rn.Schema()...)

	var joined plan.Node
	if len(lkeys) > 0 {
		joined = &plan.Join{L: ln, R: rn, LKeys: lkeys, RKeys: rkeys, Residual: residual, Out: concat}
	} else {
		joined = &plan.Cross{L: ln, R: rn, Residual: residual, Out: concat}
	}

	return st.projectSubset(s, joined, comb, childComputed)
}

// buildLeaf wraps one input with pruning/eager projection as needed.
func (st *joinState) buildLeaf(rel int, s uint) (plan.Node, map[int]int, map[int]int, error) {
	node := st.inputs[rel]
	local := st.globalToLocal(rel)
	// comb maps global ids straight to the leaf's schema positions.
	return st.projectSubset(s, node, local, map[int]int{})
}

// projectSubset adds the projection for subset s over node: it keeps
// keepCols(s), carries forward already-computed consumers, and computes the
// newly eligible ones. comb maps global column ids to node schema positions;
// childComputed maps consumer ids to node schema positions.
func (st *joinState) projectSubset(s uint, node plan.Node, comb map[int]int, childComputed map[int]int) (plan.Node, map[int]int, map[int]int, error) {
	keep := st.keepCols(s)
	elig := st.eligible(s)

	var exprs []plan.Expr
	var out plan.Schema
	colmap := map[int]int{}
	computed := map[int]int{}

	for _, g := range keep {
		pos, ok := comb[g]
		if !ok {
			return nil, nil, nil, fmt.Errorf("opt: keep column %d not present in subset output", g)
		}
		gc := st.gcols[g]
		exprs = append(exprs, &plan.Col{Idx: pos, Name: gc.name, T: gc.t})
		colmap[g] = len(out)
		out = append(out, plan.Field{Name: gc.name, T: gc.t})
	}
	for _, ci := range elig {
		name := fmt.Sprintf("expr%d", ci)
		if pos, ok := childComputed[ci]; ok {
			exprs = append(exprs, &plan.Col{Idx: pos, Name: name, T: st.consumers[ci].expr.Type()})
		} else {
			e, err := plan.Remap(st.consumers[ci].expr, comb)
			if err != nil {
				return nil, nil, nil, err
			}
			exprs = append(exprs, e)
		}
		computed[ci] = len(out)
		out = append(out, plan.Field{Name: name, T: st.consumers[ci].expr.Type()})
	}

	// Skip the projection when it is a pure identity of the node schema.
	if len(exprs) == len(node.Schema()) {
		identity := true
		for i, e := range exprs {
			c, ok := e.(*plan.Col)
			if !ok || c.Idx != i {
				identity = false
				break
			}
		}
		if identity {
			return node, colmap, computed, nil
		}
	}
	return &plan.Project{Input: node, Exprs: exprs, Out: out}, colmap, computed, nil
}

func popcount(s uint) int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

func sortIntsAsc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
