package core

import (
	"strings"
	"testing"
)

// TestKitchenSinkScript drives every SQL surface feature through one script:
// typed DDL with partitioning, INSERT, views, CTAS, the conversion
// aggregates, scalar subqueries, EXPLAIN, HAVING/ORDER/LIMIT, and DROP.
func TestKitchenSinkScript(t *testing.T) {
	db := testDB(t)
	results, err := db.RunScript(`
		-- typed storage, hash partitioned on the id
		CREATE TABLE obs (id INTEGER, grp INTEGER, x DOUBLE) PARTITION BY HASH (id);
		INSERT INTO obs VALUES
			(0, 0, 1.0), (1, 0, 2.0), (2, 0, 3.0),
			(3, 1, 10.0), (4, 1, 20.0), (5, 1, 30.0);

		-- labeled scalars -> one vector per group
		CREATE VIEW gvecs AS
			SELECT grp, VECTORIZE(label_scalar(x, id - grp*3)) AS vec
			FROM obs GROUP BY grp;

		-- vectors -> one matrix, materialized
		CREATE TABLE gmat AS
			SELECT ROWMATRIX(label_vector(vec, grp)) AS m FROM gvecs;

		-- query 1: the matrix
		SELECT m FROM gmat;

		-- query 2: per-group sums above the global average (scalar subquery)
		SELECT grp, SUM(x) AS total
		FROM obs
		GROUP BY grp
		HAVING SUM(x) > (SELECT AVG(x) FROM obs)
		ORDER BY total DESC
		LIMIT 1;

		-- query 3: explain a join plan
		EXPLAIN SELECT a.id FROM obs AS a, obs AS b WHERE a.id = b.id;

		-- query 4: linear algebra over the materialized matrix
		SELECT trace(matrix_multiply(m, trans_matrix(m))) AS frob2 FROM gmat;

		DROP VIEW gvecs;
		DROP TABLE gmat;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d, want 4", len(results))
	}
	// Query 1: 2x3 matrix with the observation values.
	m := results[0].Rows[0][0].Mat
	if m.Rows != 2 || m.Cols != 3 || m.At(0, 0) != 1 || m.At(1, 2) != 30 {
		t.Fatalf("matrix %v", m)
	}
	// Query 2: group 1 (total 60) beats the global average (11).
	if len(results[1].Rows) != 1 || results[1].Rows[0][0].I != 1 || results[1].Rows[0][1].D != 60 {
		t.Fatalf("having rows %v", results[1].Rows)
	}
	// Query 3: plan mentions a hash join over the partitioned scans.
	var planText strings.Builder
	for _, r := range results[2].Rows {
		planText.WriteString(r[0].S)
		planText.WriteByte('\n')
	}
	if !strings.Contains(planText.String(), "HashJoin") {
		t.Fatalf("plan:\n%s", planText.String())
	}
	// Query 4: trace(M Mᵀ) = squared Frobenius norm = 1+4+9+100+400+900.
	if got := results[3].Rows[0][0].D; got != 1414 {
		t.Fatalf("frob2 = %g, want 1414", got)
	}
	// The dropped objects are gone.
	if err := db.Exec("SELECT m FROM gmat"); err == nil {
		t.Fatal("dropped table still queryable")
	}
}
