package core

import (
	"errors"
	"testing"
	"time"

	"relalg/internal/fault"
)

// faultSpillDB is spillTestDB plus an injector configuration: the same join +
// aggregate working set, executed under deterministic injected faults.
func faultSpillDB(t *testing.T, budget int64, faults fault.Config) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	cfg.Cluster.MemoryBudgetBytes = budget
	cfg.Cluster.Faults = faults
	db := Open(cfg)
	loadSpillTables(t, db)
	return db
}

// transientFaults is the kitchen-sink transient configuration used by the
// property tests: every fault kind armed, retries bounded, speculation on.
func transientFaults(seed uint64) fault.Config {
	return fault.Config{
		Seed:           seed,
		MaxAttempts:    3,
		RetryBackoff:   time.Microsecond,
		CrashProb:      0.5,
		ShuffleProb:    0.5,
		SpillProb:      0.5,
		StragglerProb:  0.3,
		StragglerDelay: 200 * time.Microsecond,
		Speculate:      true,
	}
}

// TestTransientFaultsPreserveResults is the tentpole's acceptance property:
// at every seed, a run with transient-only faults produces results
// row-for-row identical to the fault-free baseline, and the fault counters
// prove the faults actually fired.
func TestTransientFaultsPreserveResults(t *testing.T) {
	baseline := mustQuery(t, spillTestDB(t, 0, 0), spillQuery)
	if len(baseline.Rows) != 10 {
		t.Fatalf("baseline groups = %d, want 10", len(baseline.Rows))
	}

	var sawRetry bool
	for seed := uint64(1); seed <= 3; seed++ {
		db := faultSpillDB(t, 0, transientFaults(seed))
		res := mustQuery(t, db, spillQuery)
		if len(res.Rows) != len(baseline.Rows) {
			t.Fatalf("seed %d: rows = %d, want %d", seed, len(res.Rows), len(baseline.Rows))
		}
		for i := range res.Rows {
			for j := range res.Rows[i] {
				if !res.Rows[i][j].Equal(baseline.Rows[i][j]) {
					t.Fatalf("seed %d: row %d col %d: faulted %v != baseline %v",
						seed, i, j, res.Rows[i][j], baseline.Rows[i][j])
				}
			}
		}
		if res.Stats.FaultsInjected == 0 {
			t.Fatalf("seed %d: no faults injected despite armed config", seed)
		}
		if res.Stats.TaskRetries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no task retries observed across any seed")
	}
}

// TestTransientFaultsPreserveOutOfCoreResults runs the same property with a
// memory budget small enough to force spilling, so retried tasks re-execute
// through the external join/aggregation paths — including injected spill
// write failures.
func TestTransientFaultsPreserveOutOfCoreResults(t *testing.T) {
	baseline := mustQuery(t, spillTestDB(t, 0, 0), spillQuery)

	for seed := uint64(1); seed <= 3; seed++ {
		cfg := transientFaults(seed)
		cfg.SpillProb = 1 // every spill write's first attempts fail
		db := faultSpillDB(t, 8<<10, cfg)
		res := mustQuery(t, db, spillQuery)
		if len(res.Rows) != len(baseline.Rows) {
			t.Fatalf("seed %d: rows = %d, want %d", seed, len(res.Rows), len(baseline.Rows))
		}
		for i := range res.Rows {
			for j := range res.Rows[i] {
				if !res.Rows[i][j].Equal(baseline.Rows[i][j]) {
					t.Fatalf("seed %d: row %d col %d: faulted %v != baseline %v",
						seed, i, j, res.Rows[i][j], baseline.Rows[i][j])
				}
			}
		}
		if res.Stats.SpillEvents == 0 {
			t.Fatalf("seed %d: budgeted faulted run never spilled", seed)
		}
		if res.Stats.TaskRetries == 0 {
			t.Fatalf("seed %d: SpillProb=1 run reported no retries", seed)
		}
	}
}

// TestPermanentFaultSurfacesWrappedError: a permanent fault exhausts the
// retry budget and the query fails with an error that names the failing
// task and matches both fault.ErrInjected and *fault.TaskError.
func TestPermanentFaultSurfacesWrappedError(t *testing.T) {
	db := faultSpillDB(t, 0, fault.Config{Seed: 9, PermanentProb: 1, RetryBackoff: -1})
	_, err := db.Query(spillQuery)
	if err == nil {
		t.Fatal("query under permanent faults succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error does not match fault.ErrInjected: %v", err)
	}
	var te *fault.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error does not carry a fault.TaskError: %v", err)
	}
	if te.Op == "" {
		t.Fatalf("TaskError does not name an operator: %+v", te)
	}
}

// TestFaultStatsString: the fault counters render in the stats snapshot only
// when faults actually fired, keeping fault-free output unchanged.
func TestFaultStatsString(t *testing.T) {
	res := mustQuery(t, spillTestDB(t, 0, 0), spillQuery)
	if s := res.Stats.String(); containsWord(s, "fault") {
		t.Fatalf("fault-free stats string mentions faults: %q", s)
	}
	res = mustQuery(t, faultSpillDB(t, 0, transientFaults(1)), spillQuery)
	if s := res.Stats.String(); !containsWord(s, "fault") {
		t.Fatalf("faulted stats string lacks fault counters: %q", s)
	}
}

func containsWord(s, w string) bool {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return true
		}
	}
	return false
}
