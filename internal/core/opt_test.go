package core

import (
	"math"
	"testing"

	"relalg/internal/opt"
	"relalg/internal/value"
)

// rewriteTestLoad fills db with the tables the rewrite-equivalence queries
// run over. The special-valued tables (vs, ms) carry NaN, ±Inf, and -0
// payloads and are only queried through rewrites that are bit-identical per
// element (outer-product recognition, double-transpose elimination, CSE,
// fuse marking). The integer-valued tables (mi, vi) feed the rewrites that
// re-associate floating-point reductions (chain reordering, aggregate
// pushdown), where integer-valued data keeps every association exact.
func rewriteTestLoad(t *testing.T, db *Database) {
	t.Helper()
	special := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1.5, -2.25}

	db.MustExec("CREATE TABLE vs (x VECTOR[6], y VECTOR[6])")
	vsRows := make([]value.Row, 40)
	for i := range vsRows {
		mk := func(off int) value.Value {
			e := make([]float64, 6)
			for j := range e {
				e[j] = special[(i+j+off)%len(special)]
			}
			return VectorValue(e...)
		}
		vsRows[i] = value.Row{mk(0), mk(3)}
	}
	if err := db.LoadTable("vs", vsRows); err != nil {
		t.Fatal(err)
	}

	db.MustExec("CREATE TABLE ms (m MATRIX[5][5], m2 MATRIX[5][5])")
	msRows := make([]value.Row, 30)
	for i := range msRows {
		mk := func(off int) value.Value {
			cells := make([][]float64, 5)
			for r := range cells {
				cells[r] = make([]float64, 5)
				for c := range cells[r] {
					cells[r][c] = special[(i+r*5+c+off)%len(special)]
				}
			}
			v, err := MatrixValue(cells)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		msRows[i] = value.Row{mk(0), mk(2)}
	}
	if err := db.LoadTable("ms", msRows); err != nil {
		t.Fatal(err)
	}

	db.MustExec("CREATE TABLE mi (a MATRIX[20][20], b MATRIX[20][20], c MATRIX[20][3])")
	miRows := make([]value.Row, 20)
	for i := range miRows {
		mk := func(rows, cols, off int) value.Value {
			cells := make([][]float64, rows)
			for r := range cells {
				cells[r] = make([]float64, cols)
				for c := range cells[r] {
					cells[r][c] = float64((i+r*cols+c+off)%9 - 4)
				}
			}
			v, err := MatrixValue(cells)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		miRows[i] = value.Row{mk(20, 20, 0), mk(20, 20, 5), mk(20, 3, 11)}
	}
	if err := db.LoadTable("mi", miRows); err != nil {
		t.Fatal(err)
	}

	db.MustExec("CREATE TABLE vi (g INTEGER, x VECTOR[8], y VECTOR[8])")
	viRows := make([]value.Row, 200)
	for i := range viRows {
		// Strictly positive integers: a 0·negative product would be -0 in a
		// direct outer product but +0 through the matmul kernel's accumulator.
		mk := func(off int) value.Value {
			e := make([]float64, 8)
			for j := range e {
				e[j] = float64((i*7+j+off)%9 + 1)
			}
			return VectorValue(e...)
		}
		viRows[i] = value.Row{value.Int(int64(i % 6)), mk(0), mk(4)}
	}
	if err := db.LoadTable("vi", viRows); err != nil {
		t.Fatal(err)
	}
}

// rewriteEquivQueries covers every rewrite rule end to end; comments note
// which rule each query fires.
var rewriteEquivQueries = []string{
	// Outer-product recognition. Integer data: the matmul kernel the baseline
	// runs accumulates each cell from 0, so a -0 product would round to +0
	// there while outer_product writes x_i*y_j directly — the rewrite is
	// value-equal but not (-0)-bit-equal.
	"SELECT matrix_multiply(col_matrix(x), row_matrix(y)) AS op FROM vi",
	// Fuse marking on a recognized outer product; both legs end up fused
	// (rewrites-off relies on the executor's legacy pattern match).
	"SELECT SUM(outer_product(x, y)) AS s FROM vs",
	// Double-transpose elimination (exact).
	"SELECT trans_matrix(trans_matrix(m)) AS back FROM ms",
	// CSE: the shared multiply is pure, so sharing is exact even over NaN.
	"SELECT trace(matrix_multiply(m, m2)) AS t1, sum_matrix(matrix_multiply(m, m2)) AS t2 FROM ms",
	// Chain reordering (re-associates; integer-valued data keeps it exact).
	"SELECT matrix_multiply(matrix_multiply(a, b), c) AS p FROM mi",
	// Aggregate pushdown, scalar and grouped (re-associates; integer data).
	"SELECT trace(SUM(a)) AS tr FROM mi",
	"SELECT g, sum_vector(SUM(x)) AS sv FROM vi GROUP BY g ORDER BY g",
}

// TestRewriteEquivalenceBitIdentical pins the rewrite layer's contract:
// every rewritten plan produces results byte-identical (EncodeRows, so NaN
// payloads compare too) to the unrewritten plan's, on both the row and the
// batch executor.
func TestRewriteEquivalenceBitIdentical(t *testing.T) {
	build := func(rewrites bool, batch int, st *opt.RewriteStats) *Database {
		cfg := DefaultConfig()
		cfg.Cluster.Nodes = 2
		cfg.Cluster.PartitionsPerNode = 2
		cfg.Optimizer.Rewrites = rewrites
		cfg.Optimizer.Stats = st
		cfg.BatchSize = batch
		db := Open(cfg)
		rewriteTestLoad(t, db)
		return db
	}

	baseline := build(false, 0, nil)
	want := make([]string, len(rewriteEquivQueries))
	for qi, q := range rewriteEquivQueries {
		res, err := baseline.Query(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want[qi] = resultText(res)
	}

	for _, leg := range []struct {
		rewrites bool
		batch    int
	}{{true, 0}, {true, 64}, {false, 64}} {
		st := &opt.RewriteStats{}
		db := build(leg.rewrites, leg.batch, st)
		for qi, q := range rewriteEquivQueries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("rewrites=%v batch=%d %q: %v", leg.rewrites, leg.batch, q, err)
			}
			if got := resultText(res); got != want[qi] {
				t.Fatalf("rewrites=%v batch=%d %q diverged:\nwant %s\ngot  %s",
					leg.rewrites, leg.batch, q, want[qi], got)
			}
		}
		if leg.rewrites && st.Total() == 0 {
			t.Fatal("no rewrite rule fired across the whole query set")
		}
		if !leg.rewrites && st.Total() != 0 {
			t.Fatalf("rewrites disabled but counters fired: %s", st.String())
		}
	}
}

// adaptiveTestDB loads a three-table join workload and then corrupts the
// catalog statistics so the optimizer grossly under-estimates the filtered
// big1 input (every row passes the filter, but the seeded distinct count
// says 1 in 1000 will).
func adaptiveTestDB(t *testing.T, replanFactor float64) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	cfg.ReplanFactor = replanFactor
	db := Open(cfg)
	db.MustExec("CREATE TABLE big1 (id INTEGER, flag INTEGER)")
	db.MustExec("CREATE TABLE big2 (id INTEGER, v INTEGER)")
	db.MustExec("CREATE TABLE small (id INTEGER)")
	mkRows := func(n int, second func(i int) int64) []value.Row {
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{value.Int(int64(i % 97)), value.Int(second(i))}
		}
		return rows
	}
	if err := db.LoadTable("big1", mkRows(2000, func(int) int64 { return 7 })); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("big2", mkRows(2000, func(i int) int64 { return int64(i) })); err != nil {
		t.Fatal(err)
	}
	smallRows := make([]value.Row, 5)
	for i := range smallRows {
		smallRows[i] = value.Row{value.Int(int64(i))}
	}
	if err := db.LoadTable("small", smallRows); err != nil {
		t.Fatal(err)
	}
	// Lie to the optimizer: flag "has" 1000 distinct values, so the pushed
	// filter flag = 7 estimates ~2 rows where 2000 arrive.
	db.Catalog().SetDistinct("big1", "flag", 1000)
	return db
}

const adaptiveQuery = `SELECT COUNT(*) AS n
	FROM big1, big2, small
	WHERE big1.id = big2.id AND big2.id = small.id AND big1.flag = 7`

// TestAdaptiveReplanFiresAndPreservesResults pins the adaptive loop: under a
// seeded 1000× mis-estimate the executor must re-plan the join region
// (Stats.Replans > 0) and still return exactly the rows of the
// non-adaptive run.
func TestAdaptiveReplanFiresAndPreservesResults(t *testing.T) {
	static := adaptiveTestDB(t, 0)
	wantRes, err := static.Query(adaptiveQuery)
	if err != nil {
		t.Fatal(err)
	}
	if static.Cluster().Stats().Replans.Load() != 0 {
		t.Fatal("ReplanFactor=0 must never re-plan")
	}

	adaptive := adaptiveTestDB(t, 10)
	gotRes, err := adaptive.Query(adaptiveQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultText(gotRes), resultText(wantRes); got != want {
		t.Fatalf("adaptive run changed the result:\nwant %s\ngot  %s", want, got)
	}
	replans := adaptive.Cluster().Stats().Replans.Load()
	if replans == 0 {
		t.Fatal("seeded 1000x mis-estimate did not trigger a re-plan")
	}
	if gotRes.Stats.Replans != replans {
		t.Fatalf("Result.Stats.Replans = %d, cluster counter = %d", gotRes.Stats.Replans, replans)
	}
}

// TestAdaptiveAccurateEstimatesDoNotReplan: with truthful statistics the
// adaptive machinery must stay silent even when enabled.
func TestAdaptiveAccurateEstimatesDoNotReplan(t *testing.T) {
	db := adaptiveTestDB(t, 10)
	// Restore the truth analyze() computed before the test corrupted it.
	db.Catalog().SetDistinct("big1", "flag", 1)
	if _, err := db.Query(adaptiveQuery); err != nil {
		t.Fatal(err)
	}
	if n := db.Cluster().Stats().Replans.Load(); n != 0 {
		t.Fatalf("accurate estimates re-planned %d regions", n)
	}
}

// TestAdaptiveRepeatedQueriesStayIdentical runs the adaptive query several
// times on one database: re-planning is per-execution state, so every run
// must return the same rows.
func TestAdaptiveRepeatedQueriesStayIdentical(t *testing.T) {
	db := adaptiveTestDB(t, 10)
	var first string
	for i := 0; i < 3; i++ {
		res, err := db.Query(adaptiveQuery)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = resultText(res)
			continue
		}
		if got := resultText(res); got != first {
			t.Fatalf("run %d diverged:\nwant %s\ngot  %s", i, first, got)
		}
	}
	if n := db.Cluster().Stats().Replans.Load(); n < 3 {
		t.Fatalf("expected a re-plan per run, got %d", n)
	}
}
