package core

import (
	"math"
	"testing"

	"relalg/internal/value"
	"relalg/internal/workload"
)

// TestPaper22PureSQLDistanceMatchesExtension runs the paper's §2.2 example
// verbatim — the "very intricate specification, requiring a nested subquery
// and a view" that computes the Riemannian distance d²_A(x_i, x') over
// normalized tuples — and checks it against the §2.3 one-liner over VECTOR
// and MATRIX columns. The two must agree exactly; §2.2's point is that the
// pure-relational form is painful and slow, not wrong.
func TestPaper22PureSQLDistanceMatchesExtension(t *testing.T) {
	const (
		n     = 12
		d     = 4
		fixed = 3 // the paper's "particular data point x_i"
	)
	db := testDB(t)
	pts := workload.DenseVectors(31, n, d)
	metric := workload.MetricMatrix(32, d)

	// --- §2.2 layout: data (pointID, dimID, value), matrixA (rowID, colID, value)
	db.MustExec(`CREATE TABLE data (pointid INTEGER, dimid INTEGER, value DOUBLE)`)
	var drows []value.Row
	for i, p := range pts {
		for j, x := range p {
			drows = append(drows, value.Row{value.Int(int64(i)), value.Int(int64(j)), value.Double(x)})
		}
	}
	if err := db.LoadTable("data", drows); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE matrixa (rowid INTEGER, colid INTEGER, value DOUBLE)`)
	var arows []value.Row
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			arows = append(arows, value.Row{value.Int(int64(i)), value.Int(int64(j)), value.Double(metric.At(i, j))})
		}
	}
	if err := db.LoadTable("matrixa", arows); err != nil {
		t.Fatal(err)
	}

	// The paper's §2.2 SQL, verbatim up to the literal i.
	db.MustExec(`CREATE VIEW xdiff (pointid, dimid, value) AS
		SELECT x2.pointid, x2.dimid, x1.value - x2.value
		FROM data AS x1, data AS x2
		WHERE x1.pointid = 3 AND x1.dimid = x2.dimid`)
	pure, err := db.Query(`SELECT x.pointid, SUM(firstpart.value * x.value)
		FROM (SELECT x.pointid AS pointid, a.colid AS colid,
		             SUM(a.value * x.value) AS value
		      FROM xdiff AS x, matrixa AS a
		      WHERE x.dimid = a.rowid
		      GROUP BY x.pointid, a.colid) AS firstpart, xdiff AS x
		WHERE firstpart.colid = x.dimid
		  AND firstpart.pointid = x.pointid
		GROUP BY x.pointid
		ORDER BY x.pointid`)
	if err != nil {
		t.Fatalf("§2.2 pure SQL: %v", err)
	}
	if len(pure.Rows) != n {
		t.Fatalf("§2.2 rows = %d, want %d", len(pure.Rows), n)
	}

	// --- §2.3 layout: data (pointID, val VECTOR), matrixA (val MATRIX).
	db.MustExec(`CREATE TABLE datav (pointid INTEGER, val VECTOR[])`)
	var vrows []value.Row
	for i, p := range pts {
		vrows = append(vrows, value.Row{value.Int(int64(i)), VectorValue(p...)})
	}
	if err := db.LoadTable("datav", vrows); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE matrixav (val MATRIX[][])`)
	if err := db.LoadTable("matrixav", []value.Row{{value.Matrix(metric)}}); err != nil {
		t.Fatal(err)
	}
	ext, err := db.Query(`SELECT x2.pointid,
			inner_product(
				matrix_vector_multiply(a.val, x1.val - x2.val),
				x1.val - x2.val) AS value
		FROM datav AS x1, datav AS x2, matrixav AS a
		WHERE x1.pointid = 3
		ORDER BY x2.pointid`)
	if err != nil {
		t.Fatalf("§2.3 extension SQL: %v", err)
	}
	if len(ext.Rows) != n {
		t.Fatalf("§2.3 rows = %d, want %d", len(ext.Rows), n)
	}

	// --- direct reference and pairwise agreement.
	for i := 0; i < n; i++ {
		diff := make([]float64, d)
		for j := 0; j < d; j++ {
			diff[j] = pts[fixed][j] - pts[i][j]
		}
		var want float64
		for r := 0; r < d; r++ {
			for c := 0; c < d; c++ {
				want += diff[r] * metric.At(r, c) * diff[c]
			}
		}
		if pure.Rows[i][0].I != int64(i) || math.Abs(pure.Rows[i][1].D-want) > 1e-9 {
			t.Fatalf("§2.2 row %d = %v, want %g", i, pure.Rows[i], want)
		}
		if ext.Rows[i][0].I != int64(i) || math.Abs(ext.Rows[i][1].D-want) > 1e-9 {
			t.Fatalf("§2.3 row %d = %v, want %g", i, ext.Rows[i], want)
		}
	}
}

// TestPaper33NormalizeMatrix covers the §3.3 direction the paper leaves as
// "written similarly": turning a MATRIX attribute back into normalized
// (row, col, value) triples with get_entry and a labels table.
func TestPaper33NormalizeMatrix(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE TABLE m (val MATRIX[2][3])`)
	mv, err := MatrixValue([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("m", []value.Row{{mv}}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE rowlabel (id INTEGER)`)
	db.MustExec(`INSERT INTO rowlabel VALUES (0), (1)`)
	db.MustExec(`CREATE TABLE collabel (id INTEGER)`)
	db.MustExec(`INSERT INTO collabel VALUES (0), (1), (2)`)
	res, err := db.Query(`SELECT r.id, c.id, get_entry(m.val, r.id, c.id)
		FROM m, rowlabel AS r, collabel AS c
		ORDER BY r.id, c.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, row := range res.Rows {
		if row[2].D != want[i] {
			t.Fatalf("entry %d = %v, want %g", i, row, want[i])
		}
	}
}
