// Package core is the engine's public face: a parallel relational database
// extended with the paper's LABELED_SCALAR, VECTOR and MATRIX column types,
// the linear-algebra built-ins and conversion aggregates, and a cost-based
// optimizer that understands linear-algebra object sizes. It ties together
// the catalog, planner, optimizer, executor, and cluster simulator.
//
// Typical use:
//
//	db := core.Open(core.DefaultConfig())
//	db.MustExec(`CREATE TABLE x (id INTEGER, val VECTOR[])`)
//	db.LoadTable("x", rows)
//	res, err := db.Query(`SELECT SUM(outer_product(val, val)) FROM x`)
package core

import (
	"fmt"
	"strings"
	"sync"

	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/exec"
	"relalg/internal/linalg"
	"relalg/internal/opt"
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/sqlparse"
	"relalg/internal/storage"
	"relalg/internal/types"
	"relalg/internal/value"
)

// Config assembles the engine's tunables.
type Config struct {
	Cluster   cluster.Config
	Optimizer opt.Options
	// DisableAggFusion reverts SUM(outer_product)/SUM(matrix_multiply) to
	// unfused per-row evaluation (2017-SimSQL behaviour); see exec.Context.
	DisableAggFusion bool
	// DisablePipelineFusion reverts scan→filter→project chains to
	// stage-at-a-time execution with one materialized relation per operator;
	// see exec.Context.
	DisablePipelineFusion bool
	// BatchSize, when > 0, runs queries on the vectorized batch executor:
	// filter, project, join build/probe, and aggregation process windows of
	// this many rows as per-column arrays with selection vectors. 0 (the
	// default) keeps the row-at-a-time executor; see exec.Context.BatchSize.
	BatchSize int
	// DataDir, when non-empty, opens persistent paged storage at that
	// directory: tables live in compressed columnar page files behind a
	// buffer pool and survive restarts bit-identically. Empty (the default)
	// keeps all tables in memory. Persistent databases should be opened with
	// OpenData (Open panics on storage errors) and released with Close.
	DataDir string
	// BufferPoolBytes bounds the storage buffer pool when DataDir is set;
	// 0 means storage.DefaultPoolBytes.
	BufferPoolBytes int64
	// PageBytes is the storage page slot size when DataDir is set; 0 means
	// storage.DefaultPageBytes for a fresh directory, and an existing
	// directory's manifest always wins.
	PageBytes int
	// ReplanFactor enables adaptive mid-query re-optimization: when the
	// observed cardinality of a join region's input diverges from its
	// estimate by more than this factor (either direction), the region's
	// join order is re-derived with the materialized inputs pinned. 0 (the
	// default) or any value <= 1 disables adaptivity. Re-plans are counted
	// in cluster Stats.Replans.
	ReplanFactor float64
}

// DefaultConfig simulates the paper's 10-node cluster with the full
// optimizer enabled.
func DefaultConfig() Config {
	return Config{
		Cluster:   cluster.DefaultConfig(),
		Optimizer: opt.DefaultOptions(),
	}
}

// Database is one engine instance. It is safe for concurrent reads; DDL and
// loads take an exclusive lock.
type Database struct {
	cfg Config
	cat *catalog.Catalog
	cl  *cluster.Cluster

	// store is the persistent paged store (nil for in-memory databases).
	// When set, db.tables is unused: all table data lives in the store.
	store *storage.Store

	mu     sync.RWMutex
	tables map[string][][]value.Row
	nextRR map[string]int // round-robin insert cursor per table
}

// Open creates a database. It panics when Config.DataDir is set and the
// store fails to open; persistent callers should use OpenData and handle
// the error.
//
// Open no longer touches the process-wide linalg worker default: the kernel
// budget flows per query through exec.Context.KernelWorkers, so two Opens in
// one process cannot stomp each other's parallelism.
func Open(cfg Config) *Database {
	return mustOpen(OpenData(cfg))
}

// mustOpen is Open's panicking error funnel. With an empty DataDir OpenData
// cannot fail, so in-memory callers never see the panic.
func mustOpen(db *Database, err error) *Database {
	if err != nil {
		panic(err)
	}
	return db
}

// OpenData creates a database, opening the persistent paged store when
// cfg.DataDir is set and replaying the catalog from its journaled metadata.
// It fails fast when the directory is unwritable, locked by another process,
// or was written with an incompatible format version or page size.
func OpenData(cfg Config) (*Database, error) {
	db := &Database{
		cfg:    cfg,
		cat:    catalog.New(),
		cl:     cluster.New(cfg.Cluster),
		tables: map[string][][]value.Row{},
		nextRR: map[string]int{},
	}
	if cfg.DataDir == "" {
		return db, nil
	}
	st, err := storage.Open(cfg.DataDir, storage.Options{
		PageBytes:  cfg.PageBytes,
		PoolBytes:  cfg.BufferPoolBytes,
		WriteFault: db.cl.StorageWriteFault,
	})
	if err != nil {
		return nil, err
	}
	db.store = st
	if err := db.replayCatalog(); err != nil {
		_ = st.Close()
		return nil, err
	}
	return db, nil
}

// Close releases the persistent store, if any. Committed data is already
// durable; like a crash, any uncommitted appends are discarded.
func (db *Database) Close() error {
	if db.store != nil {
		return db.store.Close()
	}
	return nil
}

// Store exposes the persistent store (nil for in-memory databases); the
// serving layer and benchmarks read buffer-pool stats from it.
func (db *Database) Store() *storage.Store { return db.store }

// Catalog exposes the metadata registry.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Cluster exposes the simulated cluster (stats, budget).
func (db *Database) Cluster() *cluster.Cluster { return db.cl }

// Result is the outcome of one SELECT (or EXPLAIN).
type Result struct {
	Schema  plan.Schema
	Rows    []value.Row
	Timings *exec.Timings
	Stats   cluster.StatsSnapshot
}

// Run parses and executes a single SQL statement. DDL and INSERT return a
// nil Result.
func (db *Database) Run(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStmt(stmt, Resources{})
}

// RunScript executes a semicolon-separated script, returning the results of
// every SELECT/EXPLAIN in order.
func (db *Database) RunScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, stmt := range stmts {
		res, err := db.runStmt(stmt, Resources{})
		if err != nil {
			return out, err
		}
		if res != nil {
			out = append(out, res)
		}
	}
	return out, nil
}

// Exec runs a statement for its side effects, failing if it returns rows.
func (db *Database) Exec(sql string) error {
	_, err := db.Run(sql)
	return err
}

// MustExec is Exec for setup code paths; it panics on error.
func (db *Database) MustExec(sql string) {
	if err := db.Exec(sql); err != nil {
		panic(err)
	}
}

// Query runs a single SELECT.
func (db *Database) Query(sql string) (*Result, error) {
	res, err := db.Run(sql)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("core: statement produced no result set")
	}
	return res, nil
}

// Resources is a per-query resource lease. The serving layer arbitrates the
// machine across concurrent queries and hands each one a lease; the zero
// value inherits the database configuration (the single-caller behaviour).
type Resources struct {
	// MemoryBudgetBytes caps the query's in-memory working set before
	// operators spill. 0 inherits cluster.Config.MemoryBudgetBytes; a
	// negative value means explicitly unlimited (never spill).
	MemoryBudgetBytes int64
	// KernelWorkers is the query's goroutine budget for parallel linalg
	// kernels. 0 inherits cluster.Config.KernelWorkers().
	KernelWorkers int
}

// memBudget resolves the lease's spill budget against the config.
func (db *Database) memBudget(r Resources) int64 {
	switch {
	case r.MemoryBudgetBytes < 0:
		return 0 // spill.NewManager treats <= 0 as "no budget"
	case r.MemoryBudgetBytes == 0:
		return db.cfg.Cluster.MemoryBudgetBytes
	default:
		return r.MemoryBudgetBytes
	}
}

// kernelWorkers resolves the lease's kernel budget against the config.
func (db *Database) kernelWorkers(r Resources) int {
	if r.KernelWorkers > 0 {
		return r.KernelWorkers
	}
	return db.cfg.Cluster.KernelWorkers()
}

// RunParsed executes one already-parsed statement under a resource lease.
// It is the serving layer's entry point: parsing happened at the protocol
// boundary and the lease came from the server's admission controller.
func (db *Database) RunParsed(stmt sqlparse.Statement, rsrc Resources) (*Result, error) {
	return db.runStmt(stmt, rsrc)
}

func (db *Database) runStmt(stmt sqlparse.Statement, rsrc Resources) (*Result, error) {
	switch x := stmt.(type) {
	case *sqlparse.CreateTable:
		return nil, db.createTable(x)
	case *sqlparse.CreateTableAs:
		return nil, db.createTableAs(x, rsrc)
	case *sqlparse.CreateView:
		return nil, db.createView(x)
	case *sqlparse.Insert:
		return nil, db.insert(x)
	case *sqlparse.DropTable:
		return nil, db.drop(x)
	case *sqlparse.Select:
		return db.query(x, rsrc)
	case *sqlparse.Explain:
		sel, ok := x.Stmt.(*sqlparse.Select)
		if !ok {
			return nil, fmt.Errorf("core: EXPLAIN supports SELECT only")
		}
		text, err := db.explain(sel)
		if err != nil {
			return nil, err
		}
		if x.Analyze {
			res, err := db.query(sel, rsrc)
			if err != nil {
				return nil, err
			}
			text += fmt.Sprintf("-- executed: %d rows; %s\n", len(res.Rows), res.Stats)
			for _, label := range res.Timings.Labels() {
				text += fmt.Sprintf("--   %-18s %v\n", label, res.Timings.Get(label))
			}
		}
		var rows []value.Row
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			rows = append(rows, value.Row{value.String_(line)})
		}
		return &Result{
			Schema: plan.Schema{{Name: "plan", T: types.TString}},
			Rows:   rows,
		}, nil
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

func (db *Database) createTable(ct *sqlparse.CreateTable) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	cols := make([]catalog.Column, len(ct.Cols))
	seen := map[string]bool{}
	for i, c := range ct.Cols {
		if seen[c.Name] {
			return fmt.Errorf("core: duplicate column %q in table %q", c.Name, ct.Name)
		}
		seen[c.Name] = true
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	meta := &catalog.TableMeta{Name: ct.Name, Schema: catalog.Schema{Cols: cols}, PartitionCol: ct.PartitionCol}
	if err := db.cat.CreateTable(meta); err != nil {
		return err
	}
	return db.registerTableLocked(meta)
}

// createTableAs materializes a query result as a new table (CREATE TABLE
// ... AS SELECT), inferring the schema from the query's output types.
func (db *Database) createTableAs(ct *sqlparse.CreateTableAs, rsrc Resources) error {
	res, err := db.query(ct.Query, rsrc)
	if err != nil {
		return err
	}
	cols := make([]catalog.Column, len(res.Schema))
	seen := map[string]int{}
	for i, f := range res.Schema {
		t := f.T
		if t.Base == types.Any || t.Base == types.Invalid {
			return fmt.Errorf("core: column %q of CREATE TABLE AS has no concrete type", f.Name)
		}
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		seen[f.Name]++
		cols[i] = catalog.Column{Name: name, Type: t}
	}
	meta := &catalog.TableMeta{Name: ct.Name, Schema: catalog.Schema{Cols: cols}}
	db.mu.Lock()
	if err := db.cat.CreateTable(meta); err != nil {
		db.mu.Unlock()
		return err
	}
	if err := db.registerTableLocked(meta); err != nil {
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()
	if err := db.appendRows(meta.Name, res.Rows); err != nil {
		return err
	}
	return db.analyze(meta)
}

func (db *Database) createView(cv *sqlparse.CreateView) error {
	// Type-check the definition now so errors surface at CREATE VIEW time.
	if _, err := plan.NewBuilder(db.cat).BuildSelect(cv.Query); err != nil {
		return fmt.Errorf("core: invalid view %q: %w", cv.Name, err)
	}
	return db.cat.CreateView(&catalog.ViewMeta{Name: cv.Name, Cols: cv.Cols, Query: cv.Query})
}

func (db *Database) insert(ins *sqlparse.Insert) error {
	meta, ok := db.cat.Table(ins.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %q", ins.Table)
	}
	b := plan.NewBuilder(db.cat)
	rows := make([]value.Row, 0, len(ins.Rows))
	for _, exprRow := range ins.Rows {
		if len(exprRow) != meta.Schema.Arity() {
			return fmt.Errorf("core: INSERT supplies %d values for %d columns", len(exprRow), meta.Schema.Arity())
		}
		row := make(value.Row, len(exprRow))
		for i, e := range exprRow {
			compiled, err := b.BuildValueExpr(e)
			if err != nil {
				return err
			}
			v, err := compiled.Eval(nil, value.Row{})
			if err != nil {
				return err
			}
			cv, err := coerce(v, meta.Schema.Cols[i].Type)
			if err != nil {
				return fmt.Errorf("core: column %q: %w", meta.Schema.Cols[i].Name, err)
			}
			row[i] = cv
		}
		rows = append(rows, row)
	}
	return db.appendRows(meta.Name, rows)
}

// LoadTable bulk-loads rows into a table, validating and coercing each value
// against the declared column types, distributing round-robin across the
// cluster, and refreshing catalog statistics (row count and per-column
// distinct estimates for scalar columns).
func (db *Database) LoadTable(name string, rows []value.Row) error {
	meta, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("core: unknown table %q", name)
	}
	checked := make([]value.Row, len(rows))
	for ri, r := range rows {
		if len(r) != meta.Schema.Arity() {
			return fmt.Errorf("core: row %d has %d values for %d columns", ri, len(r), meta.Schema.Arity())
		}
		nr := make(value.Row, len(r))
		for i, v := range r {
			cv, err := coerce(v, meta.Schema.Cols[i].Type)
			if err != nil {
				return fmt.Errorf("core: row %d column %q: %w", ri, meta.Schema.Cols[i].Name, err)
			}
			nr[i] = cv
		}
		checked[ri] = nr
	}
	if err := db.appendRows(meta.Name, checked); err != nil {
		return err
	}
	return db.analyze(meta)
}

func (db *Database) appendRows(name string, rows []value.Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store != nil {
		return db.appendStoredLocked(name, rows)
	}
	parts := db.tables[name]
	if parts == nil {
		parts = make([][]value.Row, db.cl.Partitions())
	}
	// Declared hash partitioning places each row by its partition-column
	// hash (with the same hash the executor's shuffles use), so scans come
	// out already co-located for joins and groupings on that column.
	meta, _ := db.cat.Table(name)
	if meta != nil && meta.PartitionCol != "" {
		if idx := meta.Schema.IndexOf(meta.PartitionCol); idx >= 0 {
			key := []int{idx}
			for _, r := range rows {
				d := int(value.HashRowKey(r, key) % uint64(len(parts)))
				parts[d] = append(parts[d], r)
			}
			db.tables[name] = parts
			db.cat.AddRowCount(name, int64(len(rows)))
			return nil
		}
	}
	cursor := db.nextRR[name]
	for _, r := range rows {
		parts[cursor%len(parts)] = append(parts[cursor%len(parts)], r)
		cursor++
	}
	db.nextRR[name] = cursor
	db.tables[name] = parts
	db.cat.AddRowCount(name, int64(len(rows)))
	return nil
}

// analyze recomputes per-column distinct estimates for scalar columns and,
// for persistent tables, journals the refreshed statistics so they survive
// restarts.
func (db *Database) analyze(meta *catalog.TableMeta) error {
	const distinctCap = 1 << 20
	var cols []int
	for ci, col := range meta.Schema.Cols {
		switch col.Type.Base {
		case types.Int, types.Double, types.String, types.Bool:
			cols = append(cols, ci)
		}
	}
	if len(cols) > 0 {
		seen := make([]map[string]struct{}, len(cols))
		for i := range seen {
			seen[i] = map[string]struct{}{}
		}
		scan := func(r value.Row) {
			for i, ci := range cols {
				if len(seen[i]) < distinctCap {
					seen[i][r[ci].String()] = struct{}{}
				}
			}
		}
		if db.store != nil {
			tb, ok := db.store.Table(meta.Name)
			if !ok {
				return fmt.Errorf("core: table %q has no storage", meta.Name)
			}
			for part := 0; part < tb.Parts(); part++ {
				if err := tb.ScanPart(part, func(rows []value.Row) error {
					for _, r := range rows {
						scan(r)
					}
					return nil
				}); err != nil {
					return err
				}
			}
		} else {
			db.mu.RLock()
			parts := db.tables[meta.Name]
			db.mu.RUnlock()
			for _, p := range parts {
				for _, r := range p {
					scan(r)
				}
			}
		}
		for i, ci := range cols {
			db.cat.SetDistinct(meta.Name, meta.Schema.Cols[ci].Name, float64(len(seen[i])))
		}
	}
	if db.store != nil {
		return db.persistMetaBlob(meta)
	}
	return nil
}

// coerce fits a runtime value to a declared column type.
func coerce(v value.Value, decl types.T) (value.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch decl.Base {
	case types.Int:
		if v.Kind == value.KindInt {
			return v, nil
		}
	case types.Double:
		switch v.Kind {
		case value.KindDouble:
			return v, nil
		case value.KindInt:
			return value.Double(float64(v.I)), nil
		case value.KindLabeledScalar:
			return value.Double(v.D), nil
		}
	case types.String:
		if v.Kind == value.KindString {
			return v, nil
		}
	case types.Bool:
		if v.Kind == value.KindBool {
			return v, nil
		}
	case types.LabeledScalar:
		switch v.Kind {
		case value.KindLabeledScalar:
			return v, nil
		case value.KindDouble:
			return value.LabeledScalar(v.D, -1), nil
		case value.KindInt:
			return value.LabeledScalar(float64(v.I), -1), nil
		}
	case types.Vector:
		if v.Kind == value.KindVector {
			if d := decl.Dims[0]; d.Known && v.Vec.Len() != d.N {
				return value.Null(), fmt.Errorf("vector has %d entries, column declares %d", v.Vec.Len(), d.N)
			}
			return v, nil
		}
	case types.Matrix:
		if v.Kind == value.KindMatrix {
			if d := decl.Dims[0]; d.Known && v.Mat.Rows != d.N {
				return value.Null(), fmt.Errorf("matrix has %d rows, column declares %d", v.Mat.Rows, d.N)
			}
			if d := decl.Dims[1]; d.Known && v.Mat.Cols != d.N {
				return value.Null(), fmt.Errorf("matrix has %d cols, column declares %d", v.Mat.Cols, d.N)
			}
			return v, nil
		}
	}
	return value.Null(), fmt.Errorf("cannot store %s in %s column", v.Kind, decl)
}

func (db *Database) drop(d *sqlparse.DropTable) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(d.Name)
	// Drop the storage before the catalog entry: if the store is poisoned
	// the table stays visible, matching what a reopen will recover. Views
	// have no storage.
	_, isTable := db.cat.Table(name)
	if db.store != nil && isTable {
		if err := db.store.DropTable(name); err != nil {
			return err
		}
	}
	if !db.cat.Drop(name) {
		if d.IfExists {
			return nil
		}
		return fmt.Errorf("core: unknown table or view %q", d.Name)
	}
	delete(db.tables, name)
	delete(db.nextRR, name)
	return nil
}

// Plan compiles and optimizes a SELECT without running it.
func (db *Database) Plan(sel *sqlparse.Select) (plan.Node, error) {
	logical, err := plan.NewBuilder(db.cat).BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	return opt.New(db.cfg.Optimizer).Optimize(logical)
}

func (db *Database) explain(sel *sqlparse.Select) (string, error) {
	optimized, err := db.Plan(sel)
	if err != nil {
		return "", err
	}
	return plan.Explain(optimized), nil
}

// Explain returns the optimized plan text for a SELECT statement.
func (db *Database) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN supports SELECT only")
	}
	return db.explain(sel)
}

func (db *Database) query(sel *sqlparse.Select, rsrc Resources) (*Result, error) {
	optimized, err := db.Plan(sel)
	if err != nil {
		return nil, err
	}
	// The single-caller path may reset the shared tuple budget per statement;
	// the serving layer goes through ExecutePlanned, where concurrent queries
	// share whatever budget the cluster currently has.
	db.cl.ResetBudget()
	return db.ExecutePlanned(optimized, rsrc)
}

// ExecutePlanned executes an already-optimized plan under a resource lease.
// Plans are immutable during execution, so the serving layer's plan cache
// may hand the same node tree to many concurrent callers. Unlike Run, it
// never resets the cluster-wide tuple budget.
func (db *Database) ExecutePlanned(optimized plan.Node, rsrc Resources) (res *Result, err error) {
	before := db.cl.Stats().Snapshot()
	timings := exec.NewTimings()
	// One spill manager (and so one temp directory and one memory budget)
	// covers the whole query, subqueries included; its Close at return sweeps
	// every run file the operators created.
	stats := db.cl.Stats()
	mgr := spill.NewManager(db.memBudget(rsrc), spill.Hooks{
		RunSpilled: func(bytes int64) {
			stats.SpillEvents.Add(1)
			stats.BytesSpilled.Add(bytes)
		},
		TrackIO:    func() func() { return timings.Track("spill") },
		WriteFault: db.cl.SpillWriteFault,
	})
	defer func() {
		if cerr := mgr.Close(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()
	ctx := &exec.Context{
		Cluster:               db.cl,
		Tables:                db,
		Timings:               timings,
		Spill:                 mgr,
		DisableAggFusion:      db.cfg.DisableAggFusion,
		DisablePipelineFusion: db.cfg.DisablePipelineFusion,
		KernelWorkers:         db.kernelWorkers(rsrc),
		BatchSize:             db.cfg.BatchSize,
	}
	if db.cfg.ReplanFactor > 1 {
		replanner := opt.New(db.cfg.Optimizer)
		ctx.Adaptive = &exec.Adaptive{
			Factor:   db.cfg.ReplanFactor,
			Estimate: opt.EstimateRows,
			Replan:   replanner.Replan,
			OnReplan: func() { stats.Replans.Add(1) },
		}
	}
	resolved, err := db.resolveSubqueries(ctx, optimized)
	if err != nil {
		return nil, err
	}
	rel, err := exec.Run(ctx, resolved)
	if err != nil {
		return nil, err
	}
	after := db.cl.Stats().Snapshot()
	return &Result{
		Schema:  rel.Schema,
		Rows:    rel.Rows(),
		Timings: timings,
		Stats: cluster.StatsSnapshot{
			TuplesShuffled:  after.TuplesShuffled - before.TuplesShuffled,
			BytesShuffled:   after.BytesShuffled - before.BytesShuffled,
			TuplesProduced:  after.TuplesProduced - before.TuplesProduced,
			ShuffleRounds:   after.ShuffleRounds - before.ShuffleRounds,
			BroadcastRounds: after.BroadcastRounds - before.BroadcastRounds,
			SpillEvents:         after.SpillEvents - before.SpillEvents,
			BytesSpilled:        after.BytesSpilled - before.BytesSpilled,
			FaultsInjected:      after.FaultsInjected - before.FaultsInjected,
			TaskRetries:         after.TaskRetries - before.TaskRetries,
			SpeculativeLaunches: after.SpeculativeLaunches - before.SpeculativeLaunches,
			Replans:             after.Replans - before.Replans,
		},
	}, nil
}

// TableParts implements exec.TableSource. For persistent databases it
// materializes the stored partitions — the fused pipeline avoids this path
// via TablePager, but re-spread scans and the unfused executor still need
// whole partitions in memory.
func (db *Database) TableParts(name string) ([][]value.Row, error) {
	if db.store != nil {
		tb, ok := db.store.Table(strings.ToLower(name))
		if !ok {
			return nil, fmt.Errorf("core: table %q has no storage", name)
		}
		parts := make([][]value.Row, tb.Parts())
		for i := range parts {
			rows, err := tb.MaterializePart(i)
			if err != nil {
				return nil, err
			}
			parts[i] = rows
		}
		return parts, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	parts, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: table %q has no storage", name)
	}
	return parts, nil
}

// VectorValue is a convenience constructor for building load batches.
func VectorValue(entries ...float64) value.Value {
	return value.Vector(linalg.VectorOf(entries...))
}

// MatrixValue is a convenience constructor for building load batches.
func MatrixValue(rows [][]float64) (value.Value, error) {
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return value.Null(), err
	}
	return value.Matrix(m), nil
}
