package core

import (
	"fmt"

	"relalg/internal/exec"
	"relalg/internal/opt"
	"relalg/internal/plan"
	"relalg/internal/value"
)

// resolveSubqueries pre-executes every uncorrelated scalar subquery in the
// plan and substitutes its value as a constant: SQL's
// `WHERE dist = (SELECT MAX(dist) FROM d)` becomes a plain comparison
// against the computed maximum. Inner plans are optimized, resolved
// recursively, and run on the same cluster context (so their work shows up
// in the query's stats and budget). An empty subquery result is NULL; more
// than one row is an error.
func (db *Database) resolveSubqueries(ctx *exec.Context, n plan.Node) (plan.Node, error) {
	mapExprs := func(exprs []plan.Expr) ([]plan.Expr, error) {
		out := make([]plan.Expr, len(exprs))
		for i, e := range exprs {
			r, err := db.resolveExpr(ctx, e)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	switch x := n.(type) {
	case *plan.Scan, *plan.OneRow:
		return n, nil
	case *plan.Project:
		in, err := db.resolveSubqueries(ctx, x.Input)
		if err != nil {
			return nil, err
		}
		exprs, err := mapExprs(x.Exprs)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: in, Exprs: exprs, Out: x.Out}, nil
	case *plan.Filter:
		in, err := db.resolveSubqueries(ctx, x.Input)
		if err != nil {
			return nil, err
		}
		pred, err := db.resolveExpr(ctx, x.Pred)
		if err != nil {
			return nil, err
		}
		return &plan.Filter{Input: in, Pred: pred}, nil
	case *plan.Join:
		l, err := db.resolveSubqueries(ctx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := db.resolveSubqueries(ctx, x.R)
		if err != nil {
			return nil, err
		}
		lk, err := mapExprs(x.LKeys)
		if err != nil {
			return nil, err
		}
		rk, err := mapExprs(x.RKeys)
		if err != nil {
			return nil, err
		}
		res, err := mapExprs(x.Residual)
		if err != nil {
			return nil, err
		}
		return &plan.Join{L: l, R: r, LKeys: lk, RKeys: rk, Residual: res, Out: x.Out}, nil
	case *plan.Cross:
		l, err := db.resolveSubqueries(ctx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := db.resolveSubqueries(ctx, x.R)
		if err != nil {
			return nil, err
		}
		res, err := mapExprs(x.Residual)
		if err != nil {
			return nil, err
		}
		return &plan.Cross{L: l, R: r, Residual: res, Out: x.Out}, nil
	case *plan.Agg:
		in, err := db.resolveSubqueries(ctx, x.Input)
		if err != nil {
			return nil, err
		}
		groups, err := mapExprs(x.GroupBy)
		if err != nil {
			return nil, err
		}
		aggs := make([]plan.AggCall, len(x.Aggs))
		for i, a := range x.Aggs {
			na := a
			if a.Input != nil {
				r, err := db.resolveExpr(ctx, a.Input)
				if err != nil {
					return nil, err
				}
				na.Input = r
			}
			aggs[i] = na
		}
		return &plan.Agg{Input: in, GroupBy: groups, Aggs: aggs, Out: x.Out}, nil
	case *plan.Sort:
		in, err := db.resolveSubqueries(ctx, x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Sort{Input: in, Keys: x.Keys}, nil
	case *plan.Limit:
		in, err := db.resolveSubqueries(ctx, x.Input)
		if err != nil {
			return nil, err
		}
		return &plan.Limit{Input: in, N: x.N}, nil
	case *plan.MultiJoin:
		// MultiJoin only survives when optimization was skipped; resolve its
		// pieces anyway for robustness.
		inputs := make([]plan.Node, len(x.Inputs))
		for i, in := range x.Inputs {
			r, err := db.resolveSubqueries(ctx, in)
			if err != nil {
				return nil, err
			}
			inputs[i] = r
		}
		conj, err := mapExprs(x.Conjuncts)
		if err != nil {
			return nil, err
		}
		return &plan.MultiJoin{Inputs: inputs, Conjuncts: conj, Out: x.Out}, nil
	}
	return nil, fmt.Errorf("core: resolveSubqueries: unknown node %T", n)
}

// resolveExpr rewrites one expression tree, executing scalar subqueries.
func (db *Database) resolveExpr(ctx *exec.Context, e plan.Expr) (plan.Expr, error) {
	switch x := e.(type) {
	case *plan.ScalarSubquery:
		v, err := db.runScalarSubquery(ctx, x)
		if err != nil {
			return nil, err
		}
		return &plan.Const{V: v, T: x.T}, nil
	case *plan.Binary:
		l, err := db.resolveExpr(ctx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := db.resolveExpr(ctx, x.R)
		if err != nil {
			return nil, err
		}
		return &plan.Binary{Op: x.Op, Kind: x.Kind, L: l, R: r, T: x.T}, nil
	case *plan.Not:
		inner, err := db.resolveExpr(ctx, x.E)
		if err != nil {
			return nil, err
		}
		return &plan.Not{E: inner}, nil
	case *plan.Neg:
		inner, err := db.resolveExpr(ctx, x.E)
		if err != nil {
			return nil, err
		}
		return &plan.Neg{E: inner, T: x.T}, nil
	case *plan.Call:
		args := make([]plan.Expr, len(x.Args))
		for i, a := range x.Args {
			r, err := db.resolveExpr(ctx, a)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return &plan.Call{Fn: x.Fn, Args: args, T: x.T}, nil
	default:
		return e, nil
	}
}

func (db *Database) runScalarSubquery(ctx *exec.Context, s *plan.ScalarSubquery) (value.Value, error) {
	optimized, err := opt.New(db.cfg.Optimizer).Optimize(s.Plan)
	if err != nil {
		return value.Null(), err
	}
	resolved, err := db.resolveSubqueries(ctx, optimized)
	if err != nil {
		return value.Null(), err
	}
	rel, err := exec.Run(ctx, resolved)
	if err != nil {
		return value.Null(), err
	}
	rows := rel.Rows()
	switch len(rows) {
	case 0:
		return value.Null(), nil
	case 1:
		return rows[0][0], nil
	}
	return value.Null(), fmt.Errorf("core: scalar subquery returned %d rows", len(rows))
}
