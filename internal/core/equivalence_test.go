package core

import (
	"fmt"
	"sort"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/opt"
	"relalg/internal/value"
)

// TestOptimizerResultEquivalence runs a battery of queries under four
// optimizer configurations (full, size-blind, no eager projection, both off)
// and requires identical result multisets: the optimizer may change plans,
// never answers.
func TestOptimizerResultEquivalence(t *testing.T) {
	configs := map[string]opt.Options{
		"full":     opt.DefaultOptions(),
		"blind":    {SizeAwareCosting: false, EagerProjection: true, DefaultDim: 100, MaxDPRelations: 10},
		"no-eager": {SizeAwareCosting: true, EagerProjection: false, DefaultDim: 100, MaxDPRelations: 10},
		"neither":  {SizeAwareCosting: false, EagerProjection: false, DefaultDim: 100, MaxDPRelations: 10},
		"greedy":   {SizeAwareCosting: true, EagerProjection: true, DefaultDim: 100, MaxDPRelations: 1},
	}

	queries := []string{
		`SELECT a.id, a.v + b.v AS s FROM ta AS a, tb AS b WHERE a.id = b.id`,
		`SELECT a.grp, SUM(a.v * b.v), COUNT(*) FROM ta AS a, tb AS b WHERE a.id = b.id GROUP BY a.grp`,
		`SELECT a.id FROM ta AS a, tb AS b, tc AS c WHERE a.id = b.id AND b.id = c.id`,
		`SELECT a.grp, MIN(b.v), MAX(b.v) FROM ta AS a, tb AS b WHERE a.grp = b.grp GROUP BY a.grp`,
		`SELECT SUM(outer_product(x.vec, x.vec)) FROM tv AS x`,
		`SELECT x1.id, inner_product(x1.vec, x2.vec) AS ip FROM tv AS x1, tv AS x2 WHERE x1.id <> x2.id AND x1.id < 3`,
		`SELECT a.grp, COUNT(*) FROM ta AS a WHERE a.v > 0.2 GROUP BY a.grp HAVING COUNT(*) > 1`,
		`SELECT a.id, b.id FROM ta AS a, tb AS b WHERE a.v = b.v`,
	}

	results := map[string][][]string{}
	for name, opts := range configs {
		cfg := DefaultConfig()
		cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
		cfg.Optimizer = opts
		db := Open(cfg)
		loadEquivalenceTables(t, db)
		var all [][]string
		for _, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			all = append(all, canonicalRows(res.Rows))
		}
		results[name] = all
	}

	base := results["full"]
	for name, got := range results {
		for qi := range base {
			if len(got[qi]) != len(base[qi]) {
				t.Fatalf("%s: query %d row count %d, want %d", name, qi, len(got[qi]), len(base[qi]))
			}
			for ri := range base[qi] {
				if got[qi][ri] != base[qi][ri] {
					t.Fatalf("%s: query %d row %d:\n got %s\nwant %s", name, qi, ri, got[qi][ri], base[qi][ri])
				}
			}
		}
	}
}

func loadEquivalenceTables(t *testing.T, db *Database) {
	t.Helper()
	db.MustExec(`CREATE TABLE ta (id INTEGER, grp INTEGER, v DOUBLE)`)
	db.MustExec(`CREATE TABLE tb (id INTEGER, grp INTEGER, v DOUBLE)`)
	db.MustExec(`CREATE TABLE tc (id INTEGER)`)
	db.MustExec(`CREATE TABLE tv (id INTEGER, vec VECTOR[4])`)
	// All data is small-integer valued so every sum is exact in float64:
	// the tests compare formatted values across plans whose merge orders
	// differ, and non-associativity of float addition must not bite.
	var ra, rb, rc, rv []value.Row
	for i := 0; i < 40; i++ {
		ra = append(ra, value.Row{value.Int(int64(i)), value.Int(int64(i % 4)), value.Double(float64(i % 7))})
		rb = append(rb, value.Row{value.Int(int64(i + 10)), value.Int(int64(i % 3)), value.Double(float64(i % 5))})
		if i%2 == 0 {
			rc = append(rc, value.Row{value.Int(int64(i))})
		}
	}
	for i := 0; i < 8; i++ {
		vec := make([]float64, 4)
		for j := range vec {
			vec[j] = float64((i*(j+2))%9) - 4
		}
		rv = append(rv, value.Row{value.Int(int64(i)), VectorValue(vec...)})
	}
	for name, rows := range map[string][]value.Row{"ta": ra, "tb": rb, "tc": rc, "tv": rv} {
		if err := db.LoadTable(name, rows); err != nil {
			t.Fatal(err)
		}
	}
}

// canonicalRows renders rows as sorted strings for order-insensitive
// comparison.
func canonicalRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

// TestSerializationDoesNotChangeResults runs the same queries with and
// without shuffle serialization: the A3 ablation must be performance-only.
func TestSerializationDoesNotChangeResults(t *testing.T) {
	var versions [][][]string
	for _, serialize := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: serialize}
		db := Open(cfg)
		loadEquivalenceTables(t, db)
		var all [][]string
		for _, q := range []string{
			`SELECT a.id, b.v FROM ta AS a, tb AS b WHERE a.id = b.id`,
			`SELECT grp, SUM(v) FROM ta GROUP BY grp`,
			`SELECT SUM(outer_product(vec, vec)) FROM tv`,
		} {
			res, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, canonicalRows(res.Rows))
		}
		versions = append(versions, all)
	}
	for qi := range versions[0] {
		if len(versions[0][qi]) != len(versions[1][qi]) {
			t.Fatalf("query %d row counts differ", qi)
		}
		for ri := range versions[0][qi] {
			if versions[0][qi][ri] != versions[1][qi][ri] {
				t.Fatalf("query %d row %d differs between serialization modes", qi, ri)
			}
		}
	}
}

// TestClusterShapeInvariance: the same query on different cluster shapes
// (1×1, 2×2, 5×3) returns identical results — partitioning is invisible.
func TestClusterShapeInvariance(t *testing.T) {
	shapes := [][2]int{{1, 1}, {2, 2}, {5, 3}}
	var versions [][]string
	for _, s := range shapes {
		cfg := DefaultConfig()
		cfg.Cluster = cluster.Config{Nodes: s[0], PartitionsPerNode: s[1], SerializeShuffles: true}
		db := Open(cfg)
		loadEquivalenceTables(t, db)
		res, err := db.Query(`SELECT a.grp, SUM(a.v * b.v), COUNT(*)
			FROM ta AS a, tb AS b WHERE a.id = b.id GROUP BY a.grp`)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, canonicalRows(res.Rows))
	}
	for i := 1; i < len(versions); i++ {
		if len(versions[i]) != len(versions[0]) {
			t.Fatalf("shape %v: row count %d, want %d", shapes[i], len(versions[i]), len(versions[0]))
		}
		for ri := range versions[0] {
			if versions[i][ri] != versions[0][ri] {
				t.Fatalf("shape %v row %d: %s != %s", shapes[i], ri, versions[i][ri], versions[0][ri])
			}
		}
	}
}
