package core_test

import (
	"fmt"
	"log"

	"relalg/internal/core"
	"relalg/internal/value"
)

// ExampleDatabase_Query shows the paper's Gram-matrix one-liner over a
// vector-typed column.
func ExampleDatabase_Query() {
	db := core.Open(core.DefaultConfig())
	db.MustExec(`CREATE TABLE v (vec VECTOR[])`)
	if err := db.LoadTable("v", []value.Row{
		{core.VectorValue(1, 0)},
		{core.VectorValue(0, 2)},
		{core.VectorValue(1, 1)},
	}); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT SUM(outer_product(vec, vec)) FROM v`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output: [2 1; 1 5]
}

// ExampleDatabase_Query_vectorize shows the §3.3 conversion aggregates:
// labeled scalars become a vector.
func ExampleDatabase_Query_vectorize() {
	db := core.Open(core.DefaultConfig())
	db.MustExec(`CREATE TABLE y (i INTEGER, y_i DOUBLE)`)
	db.MustExec(`INSERT INTO y VALUES (0, 1.5), (2, 3.5)`)
	res, err := db.Query(`SELECT VECTORIZE(label_scalar(y_i, i)) FROM y`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0]) // hole at position 1 is zero
	// Output: [1.5 0 3.5]
}

// ExampleDatabase_Explain shows the optimizer's plan rendering.
func ExampleDatabase_Explain() {
	db := core.Open(core.DefaultConfig())
	db.MustExec(`CREATE TABLE t (a INTEGER, b DOUBLE)`)
	text, err := db.Explain(`SELECT a, SUM(b) FROM t GROUP BY a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)
	// Output:
	// Project [#0:group0, #1:agg0]
	//   Aggregate group=[#0:a] aggs=[sum(#1:b)]
	//     Scan t rows=0
}
