package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// spillTestDB builds a database with the given memory budget and the join +
// aggregate working set loaded: two tables of vector rows whose join fans out
// enough to be the memory hog.
func spillTestDB(t *testing.T, budget int64, maxTuples int64) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	cfg.Cluster.MemoryBudgetBytes = budget
	cfg.Cluster.MaxIntermediateTuples = maxTuples
	db := Open(cfg)
	loadSpillTables(t, db)
	return db
}

// loadSpillTables creates and fills the l/r join tables shared by the spill
// and fault test suites.
func loadSpillTables(t *testing.T, db *Database) {
	t.Helper()
	db.MustExec("CREATE TABLE l (id INTEGER, grp INTEGER, v VECTOR[8])")
	db.MustExec("CREATE TABLE r (id INTEGER, v VECTOR[8])")
	// Integer-valued entries keep inner_product sums exact, so the spilled
	// plan's different accumulation grouping cannot perturb the result.
	rng := rand.New(rand.NewSource(7))
	vec := func() value.Value {
		entries := make([]float64, 8)
		for i := range entries {
			entries[i] = float64(rng.Intn(9) - 4)
		}
		return VectorValue(entries...)
	}
	const n = 600
	lrows := make([]value.Row, n)
	rrows := make([]value.Row, n/2)
	for i := range lrows {
		lrows[i] = value.Row{value.Int(int64(i % 150)), value.Int(int64(i % 10)), vec()}
	}
	for i := range rrows {
		rrows[i] = value.Row{value.Int(int64(i % 150)), vec()}
	}
	if err := db.LoadTable("l", lrows); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r", rrows); err != nil {
		t.Fatal(err)
	}
}

const spillQuery = `SELECT l.grp, COUNT(*) AS n, SUM(inner_product(l.v, r.v)) AS s
FROM l, r WHERE l.id = r.id GROUP BY l.grp ORDER BY l.grp`

func spillDirs(t *testing.T) map[string]bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), spill.DirPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, m := range matches {
		set[m] = true
	}
	return set
}

// TestSpillQueryCompletesUnderBudget is the subsystem's acceptance test: a
// join+aggregate whose working set exceeds the memory budget completes with
// results identical to the unlimited run, reports spill activity, and leaves
// no temp files behind.
func TestSpillQueryCompletesUnderBudget(t *testing.T) {
	baseline := mustQuery(t, spillTestDB(t, 0, 0), spillQuery)
	if len(baseline.Rows) != 10 {
		t.Fatalf("baseline groups = %d, want 10", len(baseline.Rows))
	}
	if baseline.Stats.SpillEvents != 0 || baseline.Stats.BytesSpilled != 0 {
		t.Fatalf("unlimited run spilled: %+v", baseline.Stats)
	}

	before := spillDirs(t)
	db := spillTestDB(t, 8<<10, 0)
	res := mustQuery(t, db, spillQuery)

	if res.Stats.SpillEvents == 0 || res.Stats.BytesSpilled == 0 {
		t.Fatalf("8KB budget run reported no spilling: %+v", res.Stats)
	}
	if len(res.Rows) != len(baseline.Rows) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(baseline.Rows))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if !res.Rows[i][j].Equal(baseline.Rows[i][j]) {
				t.Fatalf("row %d col %d: budgeted %v != unlimited %v",
					i, j, res.Rows[i][j], baseline.Rows[i][j])
			}
		}
	}
	// Every temp directory this query created is gone again.
	after := spillDirs(t)
	for d := range after {
		if !before[d] {
			t.Fatalf("temp dir %s leaked", d)
		}
	}
}

// TestSpillBeatsTupleBudget reproduces the paper's Fail-vs-complete contrast
// in miniature: with a tuple budget that aborts the strictly-in-memory plan,
// adding a byte budget lets the same query spill — queries degrade to disk
// instead of dying.
func TestSpillBeatsTupleBudget(t *testing.T) {
	// Tuple budget low enough that the join's ~1200 matches abort it.
	_, err := spillTestDB(t, 0, 1000).Query(spillQuery)
	if !errors.Is(err, cluster.ErrResourceExhausted) {
		t.Fatalf("in-memory run error = %v, want ErrResourceExhausted", err)
	}

	// The byte budget governs operator state, not the tuple budget — the
	// spilling run still charges the same tuples, so lift the tuple cap and
	// squeeze the bytes instead: the query must complete.
	res := mustQuery(t, spillTestDB(t, 8<<10, 0), spillQuery)
	if res.Stats.SpillEvents == 0 {
		t.Fatal("8KB budget run reported no spilling")
	}
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(res.Rows))
	}
}

// TestSpillStatsString: spill counters render in the snapshot only when
// something actually spilled, keeping unlimited-run output unchanged.
func TestSpillStatsString(t *testing.T) {
	res := mustQuery(t, spillTestDB(t, 0, 0), spillQuery)
	if s := res.Stats.String(); len(s) == 0 || containsSpill(s) {
		t.Fatalf("unlimited stats string mentions spilling: %q", s)
	}
	res = mustQuery(t, spillTestDB(t, 8<<10, 0), spillQuery)
	if s := res.Stats.String(); !containsSpill(s) {
		t.Fatalf("budgeted stats string lacks spill counters: %q", s)
	}
}

func containsSpill(s string) bool {
	for i := 0; i+5 <= len(s); i++ {
		if s[i:i+5] == "spill" {
			return true
		}
	}
	return false
}

// TestSpillSubqueryShared: subqueries run under the same manager; a budgeted
// scalar-subquery query completes and cleans up.
func TestSpillSubqueryShared(t *testing.T) {
	db := spillTestDB(t, 8<<10, 0)
	res := mustQuery(t, db,
		`SELECT COUNT(*) AS c FROM l WHERE l.grp < (SELECT COUNT(*) FROM r) / 40`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if fmt.Sprint(res.Rows[0][0].I) == "" {
		t.Fatal("unreachable")
	}
}
