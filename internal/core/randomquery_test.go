package core

import (
	"fmt"
	"math/rand"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/opt"
	"relalg/internal/value"
)

// genQuery emits a random (but always valid) query over the integer-valued
// test tables: 1-3 joined relations, optional filters, optional grouping.
// All data is integral so float non-associativity cannot cause spurious
// mismatches.
func genQuery(r *rand.Rand) string {
	nRel := 1 + r.Intn(3)
	aliases := make([]string, nRel)
	from := ""
	for i := 0; i < nRel; i++ {
		aliases[i] = fmt.Sprintf("q%d", i)
		if i > 0 {
			from += ", "
		}
		table := []string{"ta", "tb"}[r.Intn(2)]
		from += table + " AS " + aliases[i]
	}
	var conjuncts []string
	// Join chains on id or grp.
	for i := 1; i < nRel; i++ {
		col := []string{"id", "grp"}[r.Intn(2)]
		conjuncts = append(conjuncts, fmt.Sprintf("%s.%s = %s.%s", aliases[i-1], col, aliases[i], col))
	}
	// Optional filters.
	if r.Intn(2) == 0 {
		a := aliases[r.Intn(nRel)]
		conjuncts = append(conjuncts, fmt.Sprintf("%s.v %s %d", a, []string{"<", ">", "<=", ">=", "<>"}[r.Intn(5)], r.Intn(7)))
	}
	where := ""
	if len(conjuncts) > 0 {
		where = " WHERE " + conjuncts[0]
		for _, c := range conjuncts[1:] {
			where += " AND " + c
		}
	}
	a0 := aliases[0]
	if r.Intn(2) == 0 {
		// Grouped form.
		agg := []string{"SUM", "MIN", "MAX", "COUNT"}[r.Intn(4)]
		arg := a0 + ".v"
		if agg == "COUNT" {
			arg = "*"
		}
		return fmt.Sprintf("SELECT %s.grp, %s(%s) FROM %s%s GROUP BY %s.grp", a0, agg, arg, from, where, a0)
	}
	return fmt.Sprintf("SELECT %s.id, %s.v + 1 FROM %s%s", a0, a0, from, where)
}

func loadRandomTables(t *testing.T, db *Database, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db.MustExec(`CREATE TABLE ta (id INTEGER, grp INTEGER, v DOUBLE)`)
	db.MustExec(`CREATE TABLE tb (id INTEGER, grp INTEGER, v DOUBLE)`)
	var ra, rb []value.Row
	for i := 0; i < 30; i++ {
		ra = append(ra, value.Row{value.Int(int64(r.Intn(20))), value.Int(int64(r.Intn(4))), value.Double(float64(r.Intn(9)))})
		rb = append(rb, value.Row{value.Int(int64(r.Intn(20))), value.Int(int64(r.Intn(4))), value.Double(float64(r.Intn(9)))})
	}
	if err := db.LoadTable("ta", ra); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("tb", rb); err != nil {
		t.Fatal(err)
	}
}

// TestRandomQueriesAgreeAcrossEngines generates random queries and checks
// that a single-partition engine, a multi-partition engine, and a
// no-optimization engine all return the same multiset of rows.
func TestRandomQueriesAgreeAcrossEngines(t *testing.T) {
	const dataSeed = 99
	mk := func(nodes, perNode int, opts opt.Options) *Database {
		cfg := DefaultConfig()
		cfg.Cluster = cluster.Config{Nodes: nodes, PartitionsPerNode: perNode, SerializeShuffles: true}
		cfg.Optimizer = opts
		db := Open(cfg)
		loadRandomTables(t, db, dataSeed)
		return db
	}
	naive := opt.Options{SizeAwareCosting: false, EagerProjection: false, DefaultDim: 100, MaxDPRelations: 1}
	engines := map[string]*Database{
		"single":  mk(1, 1, opt.DefaultOptions()),
		"multi":   mk(3, 2, opt.DefaultOptions()),
		"no-opt":  mk(2, 2, naive),
		"unfused": nil, // created below with fusion disabled
	}
	cfgUnfused := DefaultConfig()
	cfgUnfused.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
	cfgUnfused.DisableAggFusion = true
	engines["unfused"] = Open(cfgUnfused)
	loadRandomTables(t, engines["unfused"], dataSeed)

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		q := genQuery(r)
		var baseline []string
		for name, db := range engines {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			rows := canonicalRows(res.Rows)
			if baseline == nil {
				baseline = rows
				continue
			}
			if len(rows) != len(baseline) {
				t.Fatalf("%s: %q: %d rows, want %d", name, q, len(rows), len(baseline))
			}
			for ri := range rows {
				if rows[ri] != baseline[ri] {
					t.Fatalf("%s: %q: row %d = %s, want %s", name, q, ri, rows[ri], baseline[ri])
				}
			}
		}
	}
}
