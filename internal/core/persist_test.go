package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/value"
)

// persistCfg is a small cluster with persistent storage: 4 partitions so
// tests stay fast, a tiny page size so modest tables span many pages, and a
// buffer pool far smaller than the tables the pool-bound tests load.
func persistCfg(dir string, poolBytes int64) Config {
	cfg := DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}
	cfg.DataDir = dir
	cfg.PageBytes = 1024
	cfg.BufferPoolBytes = poolBytes
	return cfg
}

// snapshotTables captures every table's exact content (EncodeRows over the
// partitions in order) keyed by name.
func snapshotTables(t *testing.T, db *Database) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range db.Catalog().TableNames() {
		parts, err := db.TableParts(name)
		if err != nil {
			t.Fatalf("table %q: %v", name, err)
		}
		var all []value.Row
		for _, p := range parts {
			all = append(all, p...)
		}
		out[name] = value.EncodeRows(all)
	}
	return out
}

func TestPersistentRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenData(persistCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE s (id INTEGER, name STRING, flag BOOLEAN, x DOUBLE)")
	db.MustExec("CREATE TABLE hp (k INTEGER, v DOUBLE) PARTITION BY HASH (k)")
	db.MustExec("CREATE TABLE vm (id INTEGER, vec VECTOR[], mat MATRIX[2][3])")
	db.MustExec("CREATE TABLE empty (id INTEGER)")

	var srows []value.Row
	for i := 0; i < 200; i++ {
		srows = append(srows, value.Row{
			value.Int(int64(i)), value.String_(strings.Repeat("s", i%7)),
			value.Bool(i%3 == 0), value.Double(float64(i) / 3),
		})
	}
	if err := db.LoadTable("s", srows); err != nil {
		t.Fatal(err)
	}
	var hrows []value.Row
	for i := 0; i < 100; i++ {
		hrows = append(hrows, value.Row{value.Int(int64(i % 17)), value.Double(float64(i))})
	}
	if err := db.LoadTable("hp", hrows); err != nil {
		t.Fatal(err)
	}
	// Vector/matrix cells with the float patterns the page codec must keep
	// bit-exact: NaN, infinities, negative zero, denormals, zero runs.
	mat, err := MatrixValue([][]float64{
		{math.NaN(), math.Inf(1), 0}, {math.Copysign(0, -1), 5e-324, math.Inf(-1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var vrows []value.Row
	for i := 0; i < 50; i++ {
		vrows = append(vrows, value.Row{
			value.Int(int64(i)),
			VectorValue(0, 0, 0, 0, float64(i), math.NaN(), 0, 0),
			mat,
		})
	}
	if err := db.LoadTable("vm", vrows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO s VALUES (1000, 'late', TRUE, 2.5)")
	db.MustExec("CREATE TABLE dropme (id INTEGER)")
	db.MustExec("DROP TABLE dropme")

	want := snapshotTables(t, db)
	wantSum := mustQuery(t, db, "SELECT SUM(x) FROM s WHERE id < 100")
	wantDistinct := db.Catalog()
	kDistinct := 0.0
	if meta, ok := wantDistinct.Table("hp"); ok {
		kDistinct = meta.Distinct("k")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenData(persistCfg(dir, 0))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = re.Close() }()
	got := snapshotTables(t, re)
	if len(got) != len(want) {
		t.Fatalf("reopened with %d tables, want %d", len(got), len(want))
	}
	for name, enc := range want {
		if !bytes.Equal(got[name], enc) {
			t.Fatalf("table %q differs after restart", name)
		}
	}
	// Catalog state survives: partition column, row counts, statistics.
	meta, ok := re.Catalog().Table("hp")
	if !ok || meta.PartitionCol != "k" {
		t.Fatalf("hp lost its partition column after restart: %+v", meta)
	}
	if meta.RowCount() != 100 {
		t.Fatalf("hp row count %d after restart, want 100", meta.RowCount())
	}
	if d := meta.Distinct("k"); d != kDistinct {
		t.Fatalf("hp distinct(k) %v after restart, want %v", d, kDistinct)
	}
	gotSum := mustQuery(t, re, "SELECT SUM(x) FROM s WHERE id < 100")
	if !bytes.Equal(value.EncodeRows(gotSum.Rows), value.EncodeRows(wantSum.Rows)) {
		t.Fatal("aggregate over reopened table differs")
	}
	// Appends keep working after a restart, and round-robin placement
	// resumes where the previous process left off.
	re.MustExec("INSERT INTO s VALUES (1001, 'post', FALSE, 9.5)")
	res := mustQuery(t, re, "SELECT COUNT(*) FROM s")
	if res.Rows[0][0].I != 202 {
		t.Fatalf("COUNT after post-restart insert = %v, want 202", res.Rows[0][0])
	}
}

// TestPersistentMatchesInMemory runs the same workload against a persistent
// and an in-memory database (both executors) and requires identical results.
func TestPersistentMatchesInMemory(t *testing.T) {
	queries := []string{
		"SELECT SUM(v) FROM r WHERE k > 20",
		"SELECT k, COUNT(*) FROM r WHERE v < 150 GROUP BY k ORDER BY k",
		"SELECT k, v FROM r WHERE k = 7 ORDER BY v",
		"SELECT COUNT(*) FROM r",
	}
	load := func(db *Database) {
		db.MustExec("CREATE TABLE r (k INTEGER, v DOUBLE)")
		var rows []value.Row
		for i := 0; i < 500; i++ {
			rows = append(rows, value.Row{value.Int(int64(i % 40)), value.Double(float64(i))})
		}
		if err := db.LoadTable("r", rows); err != nil {
			t.Fatal(err)
		}
	}
	mem := Open(Config{Cluster: cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true}, Optimizer: DefaultConfig().Optimizer})
	load(mem)
	for _, batch := range []int{0, 64} {
		cfg := persistCfg(t.TempDir(), 0)
		cfg.BatchSize = batch
		db, err := OpenData(cfg)
		if err != nil {
			t.Fatal(err)
		}
		load(db)
		for _, q := range queries {
			want := mustQuery(t, mem, q)
			got := mustQuery(t, db, q)
			if !bytes.Equal(value.EncodeRows(got.Rows), value.EncodeRows(want.Rows)) {
				t.Errorf("batch=%d: %s: persistent result differs from in-memory", batch, q)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanBoundedByBufferPool loads a table several times larger than the
// buffer pool and requires that queries stream it: results stay correct and
// the pool's peak usage never exceeds its budget.
func TestScanBoundedByBufferPool(t *testing.T) {
	for _, batch := range []int{0, 128} {
		const poolBytes = 16 << 10 // 16 pages of 1 KiB for a ~300-page table
		cfg := persistCfg(t.TempDir(), poolBytes)
		cfg.BatchSize = batch
		db, err := OpenData(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.MustExec("CREATE TABLE big (id INTEGER, vec VECTOR[])")
		var rows []value.Row
		for i := 0; i < 600; i++ {
			ent := make([]float64, 48)
			for j := range ent {
				ent[j] = float64(i*48 + j)
			}
			rows = append(rows, value.Row{value.Int(int64(i)), VectorValue(ent...)})
		}
		if err := db.LoadTable("big", rows); err != nil {
			t.Fatal(err)
		}
		res := mustQuery(t, db, "SELECT COUNT(*) FROM big WHERE id >= 100")
		if res.Rows[0][0].I != 500 {
			t.Fatalf("batch=%d: COUNT = %v, want 500", batch, res.Rows[0][0])
		}
		st := db.Store().PoolStats()
		if st.PeakBytes > poolBytes {
			t.Fatalf("batch=%d: peak pool usage %d exceeds budget %d", batch, st.PeakBytes, poolBytes)
		}
		if st.Evictions == 0 {
			t.Fatalf("batch=%d: table larger than the pool produced no evictions", batch)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartUnderDifferentLayout reopens a data directory under a cluster
// with a different partition count: scans must re-spread and produce the
// same query results.
func TestRestartUnderDifferentLayout(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenData(persistCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE r (k INTEGER, v DOUBLE)")
	var rows []value.Row
	for i := 0; i < 120; i++ {
		rows = append(rows, value.Row{value.Int(int64(i % 10)), value.Double(float64(i))})
	}
	if err := db.LoadTable("r", rows); err != nil {
		t.Fatal(err)
	}
	want := mustQuery(t, db, "SELECT k, SUM(v) FROM r GROUP BY k ORDER BY k")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := persistCfg(dir, 0)
	cfg.Cluster = cluster.Config{Nodes: 3, PartitionsPerNode: 2, SerializeShuffles: true}
	re, err := OpenData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	got := mustQuery(t, re, "SELECT k, SUM(v) FROM r GROUP BY k ORDER BY k")
	if !bytes.Equal(value.EncodeRows(got.Rows), value.EncodeRows(want.Rows)) {
		t.Fatal("results differ after reopening under a different cluster layout")
	}
}

// TestOpenDataFailFast covers the fail-fast contract of persistent opens:
// double-open of a locked directory and page-size disagreements are errors,
// and Open (the panicking wrapper) stays usable for in-memory configs.
func TestOpenDataFailFast(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenData(persistCfg(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenData(persistCfg(dir, 0)); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("double open: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := persistCfg(dir, 0)
	cfg.PageBytes = 2048
	if _, err := OpenData(cfg); err == nil || !strings.Contains(err.Error(), "page size") {
		t.Fatalf("page size mismatch: %v", err)
	}
}
