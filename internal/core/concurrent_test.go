package core

import (
	"fmt"
	"sync"
	"testing"

	"relalg/internal/value"
)

// concurrentTestDB loads the tables the concurrency tests query.
func concurrentTestDB(t *testing.T) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	db := Open(cfg)
	db.MustExec("CREATE TABLE pts (g INTEGER, v DOUBLE)")
	rows := make([]value.Row, 1200)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i % 53)), value.Double(float64(i) * 0.25)}
	}
	if err := db.LoadTable("pts", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE vecs (id INTEGER, vec VECTOR[4])")
	vrows := make([]value.Row, 40)
	for i := range vrows {
		vrows[i] = value.Row{value.Int(int64(i)), VectorValue(
			float64(i%7), float64((i+1)%5), float64((i+2)%3), float64(i%11))}
	}
	if err := db.LoadTable("vecs", vrows); err != nil {
		t.Fatal(err)
	}
	return db
}

// resultText renders a result's rows via EncodeRows so the comparison is
// bit-exact, not just print-equal.
func resultText(res *Result) string {
	return res.Schema.String() + "\n" + string(value.EncodeRows(res.Rows))
}

// TestConcurrentMixedQueries drives many goroutines through db.Query on one
// shared Database: every caller must get results bit-identical to the serial
// run, with no data races (the gate runs this package under -race).
func TestConcurrentMixedQueries(t *testing.T) {
	db := concurrentTestDB(t)
	queries := []string{
		"SELECT g, SUM(v) AS total FROM pts GROUP BY g ORDER BY g",
		"SELECT COUNT(*) FROM pts WHERE v > 100",
		"SELECT SUM(outer_product(vec, vec)) FROM vecs",
		"SELECT p.g, COUNT(*) FROM pts p, vecs w WHERE p.g = w.id GROUP BY p.g ORDER BY p.g",
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want[i] = resultText(res)
	}

	const callers = 8
	const rounds = 3
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the starting query so callers overlap on
				// different statements.
				for k := 0; k < len(queries); k++ {
					i := (c + k) % len(queries)
					res, err := db.Query(queries[i])
					if err != nil {
						errs <- fmt.Errorf("caller %d %q: %w", c, queries[i], err)
						return
					}
					if got := resultText(res); got != want[i] {
						errs <- fmt.Errorf("caller %d %q: results differ from serial run", c, queries[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
