package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/value"
)

// oracle_test.go checks the engine against a deliberately naive,
// independently written reference implementation (nested loops and maps over
// plain Go slices), so a systematic engine bug cannot hide by being shared
// between two engine configurations.

type oracleRow struct{ id, grp, v int }

func oracleData(seed int64, n int) []oracleRow {
	r := rand.New(rand.NewSource(seed))
	out := make([]oracleRow, n)
	for i := range out {
		out[i] = oracleRow{id: r.Intn(15), grp: r.Intn(4), v: r.Intn(10)}
	}
	return out
}

func loadOracle(t *testing.T, db *Database, name string, rows []oracleRow) {
	t.Helper()
	db.MustExec(fmt.Sprintf("CREATE TABLE %s (id INTEGER, grp INTEGER, v DOUBLE)", name))
	vr := make([]value.Row, len(rows))
	for i, r := range rows {
		vr[i] = value.Row{value.Int(int64(r.id)), value.Int(int64(r.grp)), value.Double(float64(r.v))}
	}
	if err := db.LoadTable(name, vr); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMatchesNaiveJoinOracle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 3, PartitionsPerNode: 2, SerializeShuffles: true}
	db := Open(cfg)
	left := oracleData(1, 40)
	right := oracleData(2, 35)
	loadOracle(t, db, "l", left)
	loadOracle(t, db, "r", right)

	// Engine: equi-join with a residual inequality.
	res, err := db.Query(`SELECT l.id, l.v, r.v FROM l, r WHERE l.id = r.id AND l.v < r.v`)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalRows(res.Rows)

	// Oracle: nested loops.
	var want []string
	for _, a := range left {
		for _, b := range right {
			if a.id == b.id && a.v < b.v {
				want = append(want, fmt.Sprintf("(%d, %d, %d)", a.id, a.v, b.v))
			}
		}
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("join rows %d, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %s != %s", i, got[i], want[i])
		}
	}
}

func TestEngineMatchesNaiveGroupOracle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 3, PartitionsPerNode: 2, SerializeShuffles: true}
	db := Open(cfg)
	data := oracleData(3, 80)
	loadOracle(t, db, "t", data)

	res, err := db.Query(`SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE v <> 5 GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64][4]float64{}
	for _, r := range res.Rows {
		got[r[0].I] = [4]float64{float64(r[1].I), r[2].D, r[3].D, r[4].D}
	}

	type acc struct {
		n        int
		sum      int
		min, max int
	}
	oracle := map[int]*acc{}
	for _, r := range data {
		if r.v == 5 {
			continue
		}
		a, ok := oracle[r.grp]
		if !ok {
			a = &acc{min: r.v, max: r.v}
			oracle[r.grp] = a
		}
		a.n++
		a.sum += r.v
		if r.v < a.min {
			a.min = r.v
		}
		if r.v > a.max {
			a.max = r.v
		}
	}
	if len(got) != len(oracle) {
		t.Fatalf("groups %d, oracle %d", len(got), len(oracle))
	}
	for grp, a := range oracle {
		g, ok := got[int64(grp)]
		if !ok {
			t.Fatalf("group %d missing", grp)
		}
		if g[0] != float64(a.n) || g[1] != float64(a.sum) || g[2] != float64(a.min) || g[3] != float64(a.max) {
			t.Fatalf("group %d: engine %v, oracle %+v", grp, g, *a)
		}
	}
}

func TestEngineMatchesNaiveJoinAggregateOracle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = cluster.Config{Nodes: 2, PartitionsPerNode: 3, SerializeShuffles: true}
	db := Open(cfg)
	left := oracleData(4, 50)
	right := oracleData(5, 45)
	loadOracle(t, db, "l", left)
	loadOracle(t, db, "r", right)

	res, err := db.Query(`SELECT l.grp, SUM(l.v * r.v) FROM l, r WHERE l.id = r.id GROUP BY l.grp`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]float64{}
	for _, r := range res.Rows {
		got[r[0].I] = r[1].D
	}
	oracle := map[int]int{}
	for _, a := range left {
		for _, b := range right {
			if a.id == b.id {
				oracle[a.grp] += a.v * b.v
			}
		}
	}
	if len(got) != len(oracle) {
		t.Fatalf("groups %d, oracle %d", len(got), len(oracle))
	}
	for grp, sum := range oracle {
		if got[int64(grp)] != float64(sum) {
			t.Fatalf("group %d: engine %g, oracle %d", grp, got[int64(grp)], sum)
		}
	}
}
