package core

import (
	"fmt"
	"math"
	"testing"

	"relalg/internal/value"
)

// batchTestLoad fills db with the tables the batch-equivalence queries run
// over: numeric columns seeded with NaN, ±Inf, and -0 payloads, strings,
// integers spanning the float53 boundary, and vector cells, plus a pair of
// co-partitioned join tables.
func batchTestLoad(t *testing.T, db *Database) {
	t.Helper()
	db.MustExec("CREATE TABLE pts (g INTEGER, tag STRING, a INTEGER, b INTEGER, x DOUBLE, y DOUBLE)")
	special := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1.5, -2.25}
	rows := make([]value.Row, 700)
	for i := range rows {
		x := special[i%len(special)]
		y := float64(i%19) - 9
		a := int64(i % 23)
		if i%31 == 0 {
			a = int64(1)<<53 + int64(i) // exercise the lossy float compare
		}
		rows[i] = value.Row{
			value.Int(int64(i % 13)),
			value.String_(fmt.Sprintf("t%d", i%5)),
			value.Int(a),
			value.Int(int64(i%7) - 3),
			value.Double(x),
			value.Double(y),
		}
	}
	if err := db.LoadTable("pts", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE jl (id INTEGER, w DOUBLE, vec VECTOR[4]) PARTITION BY HASH (id)")
	db.MustExec("CREATE TABLE jr (id INTEGER, z DOUBLE) PARTITION BY HASH (id)")
	lrows := make([]value.Row, 500)
	for i := range lrows {
		lrows[i] = value.Row{
			value.Int(int64(i % 211)),
			value.Double(float64(i%17) * 0.5),
			VectorValue(float64(i%7), float64((i+1)%5), float64((i+2)%3), float64(i%11)),
		}
	}
	rrows := make([]value.Row, 300)
	for i := range rrows {
		rrows[i] = value.Row{value.Int(int64(i % 211)), value.Double(float64(i%29) - 14)}
	}
	if err := db.LoadTable("jl", lrows); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("jr", rrows); err != nil {
		t.Fatal(err)
	}
}

// batchEquivQueries exercises every vectorized operator: chained filters with
// integer division guarded by an earlier predicate, projection arithmetic,
// logic over NaN/Inf comparisons, equi-join build/probe with a residual,
// grouped and global aggregation, LIMIT inside a pipeline, and sorts.
var batchEquivQueries = []string{
	"SELECT g, a + b AS s, x * 2.0 AS xx FROM pts WHERE y > -5 AND b <> 0 AND a / b > 1",
	"SELECT tag, -a AS na, NOT (x >= 0) AS nonneg FROM pts WHERE tag >= 't1' AND tag < 't4'",
	"SELECT COUNT(*) AS n, SUM(y) AS sy, MIN(g) AS mg FROM pts WHERE x = x OR y < 0",
	"SELECT g, COUNT(*) AS n, SUM(a) AS sa, AVG(y) AS ay FROM pts GROUP BY g",
	"SELECT tag, SUM(b * b) AS sq FROM pts WHERE a > 2 GROUP BY tag",
	"SELECT jl.id, jl.w + jr.z AS wz FROM jl, jr WHERE jl.id = jr.id AND jl.w > 1.0",
	"SELECT jl.id, COUNT(*) AS n, SUM(jr.z) AS sz FROM jl, jr WHERE jl.id = jr.id GROUP BY jl.id",
	"SELECT SUM(inner_product(jl.vec, jl.vec)) AS ip FROM jl",
	"SELECT g, x FROM pts WHERE y > 0 LIMIT 7",
	"SELECT g, y FROM pts WHERE g < 5 ORDER BY y, g LIMIT 20",
}

func batchTestDB(t *testing.T, nodes, parts, batch int, budget int64) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = nodes
	cfg.Cluster.PartitionsPerNode = parts
	cfg.Cluster.MemoryBudgetBytes = budget
	cfg.BatchSize = batch
	db := Open(cfg)
	batchTestLoad(t, db)
	return db
}

// TestBatchExecutorBitIdentical pins the batch executor's core contract: for
// every query, cluster shape, and memory budget, every batch size — including
// degenerate (1), odd (3, 1023), and full (4096) windows — produces results
// byte-identical (EncodeRows, so NaN payloads compare too) to the row
// executor's.
func TestBatchExecutorBitIdentical(t *testing.T) {
	shapes := []struct{ nodes, parts int }{{1, 1}, {2, 2}, {1, 3}}
	budgets := []int64{0, 96 << 10}
	batchSizes := []int{1, 3, 1023, 4096}
	if testing.Short() {
		shapes = shapes[1:2]
		batchSizes = []int{3, 1024}
	}
	for _, sh := range shapes {
		for _, budget := range budgets {
			rowDB := batchTestDB(t, sh.nodes, sh.parts, 0, budget)
			want := make([]string, len(batchEquivQueries))
			for qi, q := range batchEquivQueries {
				res, err := rowDB.Query(q)
				if err != nil {
					t.Fatalf("row %dx%d budget=%d %q: %v", sh.nodes, sh.parts, budget, q, err)
				}
				want[qi] = resultText(res)
			}
			for _, bs := range batchSizes {
				db := batchTestDB(t, sh.nodes, sh.parts, bs, budget)
				for qi, q := range batchEquivQueries {
					res, err := db.Query(q)
					if err != nil {
						t.Fatalf("batch=%d %dx%d budget=%d %q: %v", bs, sh.nodes, sh.parts, budget, q, err)
					}
					if got := resultText(res); got != want[qi] {
						t.Errorf("batch=%d %dx%d budget=%d %q: results differ from row executor", bs, sh.nodes, sh.parts, budget, q)
					}
				}
			}
		}
	}
}

// TestBatchExecutorSpillLegSpills asserts the tight-budget leg of the
// equivalence matrix actually drives the out-of-core paths: the join+agg
// query must spill under both executors and still agree byte-for-byte.
func TestBatchExecutorSpillLegSpills(t *testing.T) {
	const budget = 8 << 10
	const q = "SELECT jl.id, COUNT(*) AS n, SUM(jr.z) AS sz FROM jl, jr WHERE jl.id = jr.id GROUP BY jl.id"
	rowDB := batchTestDB(t, 2, 2, 0, budget)
	rowRes, err := rowDB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rowRes.Stats.SpillEvents == 0 {
		t.Fatalf("row executor did not spill at budget %d", budget)
	}
	db := batchTestDB(t, 2, 2, 1023, budget)
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpillEvents == 0 {
		t.Fatalf("batch executor did not spill at budget %d", budget)
	}
	if resultText(res) != resultText(rowRes) {
		t.Fatal("spilled batch results differ from spilled row results")
	}
}

// TestBatchLimitChargesOnlyEmitted pins the LIMIT satellite: in batch mode a
// fused pipeline under LIMIT stops at the limit, so the tuples charged are no
// more than the row executor's (which materializes every surviving row before
// truncating) and the visible rows are identical.
func TestBatchLimitChargesOnlyEmitted(t *testing.T) {
	const q = "SELECT g, y FROM pts WHERE y > -100 LIMIT 3"
	rowDB := batchTestDB(t, 2, 2, 0, 0)
	rowRes, err := rowDB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db := batchTestDB(t, 2, 2, 256, 0)
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if resultText(res) != resultText(rowRes) {
		t.Fatal("LIMIT rows differ between executors")
	}
	if res.Stats.TuplesProduced >= rowRes.Stats.TuplesProduced {
		t.Fatalf("batch LIMIT charged %d tuples, row path %d — expected strictly fewer (discarded rows must not be charged)",
			res.Stats.TuplesProduced, rowRes.Stats.TuplesProduced)
	}
}
