package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"relalg/internal/catalog"
	"relalg/internal/exec"
	"relalg/internal/storage"
	"relalg/internal/types"
	"relalg/internal/value"
)

// This file is the bridge between the engine and internal/storage: catalog
// metadata is serialized into each stored table's journaled meta blob, the
// catalog is replayed from those blobs at open, and scans/loads are routed
// to paged tables instead of the in-memory partition slices.

// persistCol is one column of the journaled schema blob.
type persistCol struct {
	Name string  `json:"name"`
	Type types.T `json:"type"`
}

// persistMeta is the JSON blob journaled with each stored table. It captures
// everything the catalog cannot rederive from the data: the declared schema,
// the partitioning column, and the statistics the optimizer uses. The row
// count is deliberately absent — the store's committed page index is the
// authority, so the two can never disagree after a crash.
type persistMeta struct {
	Cols         []persistCol       `json:"cols"`
	PartitionCol string             `json:"partition_col,omitempty"`
	Distinct     map[string]float64 `json:"distinct,omitempty"`
}

// encodeTableMeta serializes a catalog entry for the store's journal.
func encodeTableMeta(meta *catalog.TableMeta) ([]byte, error) {
	pm := persistMeta{
		Cols:         make([]persistCol, len(meta.Schema.Cols)),
		PartitionCol: meta.PartitionCol,
		Distinct:     meta.DistinctMap(),
	}
	for i, c := range meta.Schema.Cols {
		pm.Cols[i] = persistCol{Name: c.Name, Type: c.Type}
	}
	return json.Marshal(pm)
}

// decodeTableMeta rebuilds a catalog entry from a stored meta blob; rows is
// the store's committed row count.
func decodeTableMeta(name string, blob []byte, rows int64) (*catalog.TableMeta, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("core: stored table has no schema metadata")
	}
	var pm persistMeta
	if err := json.Unmarshal(blob, &pm); err != nil {
		return nil, fmt.Errorf("core: decode stored schema: %w", err)
	}
	cols := make([]catalog.Column, len(pm.Cols))
	for i, c := range pm.Cols {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	meta := catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows)
	meta.PartitionCol = pm.PartitionCol
	for col, n := range pm.Distinct {
		meta.SetDistinct(col, n)
	}
	return meta, nil
}

// replayCatalog rebuilds the catalog from the store's journaled metadata.
// Round-robin cursors resume at the committed row count, which reproduces
// the placement an uninterrupted process would have used.
func (db *Database) replayCatalog() error {
	for _, tb := range db.store.Tables() {
		meta, err := decodeTableMeta(tb.Name(), tb.Meta(), tb.Rows())
		if err != nil {
			return fmt.Errorf("core: table %q: %w", tb.Name(), err)
		}
		if err := db.cat.CreateTable(meta); err != nil {
			return err
		}
		db.nextRR[tb.Name()] = int(tb.Rows())
	}
	return nil
}

// registerTableLocked creates the storage behind a freshly registered
// catalog entry: a stored table when persistent, an in-memory partition
// slice otherwise. On storage failure the catalog entry is rolled back so
// DDL stays atomic from the caller's view. Callers hold db.mu.
func (db *Database) registerTableLocked(meta *catalog.TableMeta) error {
	if db.store == nil {
		db.tables[meta.Name] = make([][]value.Row, db.cl.Partitions())
		return nil
	}
	blob, err := encodeTableMeta(meta)
	if err == nil {
		_, err = db.store.CreateTable(meta.Name, db.cl.Partitions(), blob)
	}
	if err != nil {
		db.cat.Drop(meta.Name)
		return err
	}
	return nil
}

// appendStoredLocked places rows into a stored table's partitions — the same
// hash/round-robin policy as the in-memory path — and commits them durably.
// Callers hold db.mu.
func (db *Database) appendStoredLocked(name string, rows []value.Row) error {
	tb, ok := db.store.Table(name)
	if !ok {
		return fmt.Errorf("core: table %q has no storage", name)
	}
	nparts := tb.Parts()
	buckets := make([][]value.Row, nparts)
	placed := false
	meta, _ := db.cat.Table(name)
	if meta != nil && meta.PartitionCol != "" {
		if idx := meta.Schema.IndexOf(meta.PartitionCol); idx >= 0 {
			key := []int{idx}
			for _, r := range rows {
				d := int(value.HashRowKey(r, key) % uint64(nparts))
				buckets[d] = append(buckets[d], r)
			}
			placed = true
		}
	}
	if !placed {
		cursor := db.nextRR[name]
		for _, r := range rows {
			buckets[cursor%nparts] = append(buckets[cursor%nparts], r)
			cursor++
		}
		db.nextRR[name] = cursor
	}
	for part, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := tb.Append(part, b); err != nil {
			return err
		}
	}
	if err := tb.Commit(); err != nil {
		return err
	}
	db.cat.AddRowCount(name, int64(len(rows)))
	return nil
}

// persistMetaBlob journals the catalog entry's current schema + statistics
// so a reopened store rebuilds the same catalog state.
func (db *Database) persistMetaBlob(meta *catalog.TableMeta) error {
	tb, ok := db.store.Table(meta.Name)
	if !ok {
		return fmt.Errorf("core: table %q has no storage", meta.Name)
	}
	blob, err := encodeTableMeta(meta)
	if err != nil {
		return err
	}
	return tb.SetMeta(blob)
}

// TablePager implements exec.PagedSource: it exposes stored tables so the
// executor streams pages through the buffer pool instead of materializing
// whole partitions. A nil PagedTable (and nil error) means this database is
// in-memory and the executor should use TableParts.
func (db *Database) TablePager(name string) (exec.PagedTable, error) {
	if db.store == nil {
		return nil, nil
	}
	tb, ok := db.store.Table(strings.ToLower(name))
	if !ok {
		return nil, fmt.Errorf("core: table %q has no storage", name)
	}
	return storedTable{tb}, nil
}

// storedTable adapts storage.Table to exec.PagedTable.
type storedTable struct {
	t *storage.Table
}

func (s storedTable) Parts() int { return s.t.Parts() }

func (s storedTable) ScanPartRows(part int, fn func(rows []value.Row) error) error {
	return s.t.ScanPart(part, fn)
}

func (s storedTable) ScanPartBatches(part int, fn func(b *value.Batch) error) error {
	pg, err := s.t.Pager(part)
	if err != nil {
		return err
	}
	for {
		b, err := pg.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}
