package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	return Open(cfg)
}

func mustQuery(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE y (i INTEGER, y_i DOUBLE)")
	db.MustExec("INSERT INTO y VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
	res := mustQuery(t, db, "SELECT i, y_i FROM y ORDER BY i")
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 1 || res.Rows[2][1].D != 3.5 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Schema.String() != "(i INTEGER, y_i DOUBLE)" {
		t.Fatalf("schema %s", res.Schema)
	}
}

func TestWhereAndExpressions(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (a INTEGER, b DOUBLE)")
	db.MustExec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
	res := mustQuery(t, db, "SELECT a, b * 2 AS dbl FROM t WHERE a >= 2 AND b < 40 ORDER BY a")
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Rows[0][1].D != 40 || res.Rows[1][1].D != 60 {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (g INTEGER, v DOUBLE)")
	db.MustExec("INSERT INTO t VALUES (1, 1), (1, 2), (2, 10), (2, 20), (2, 30)")
	res := mustQuery(t, db, "SELECT g, SUM(v), COUNT(*), AVG(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g")
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	r1, r2 := res.Rows[0], res.Rows[1]
	if r1[1].D != 3 || r1[2].I != 2 || r1[3].D != 1.5 || r1[4].D != 1 || r1[5].D != 2 {
		t.Fatalf("group 1: %v", r1)
	}
	if r2[1].D != 60 || r2[2].I != 3 || r2[3].D != 20 || r2[4].D != 10 || r2[5].D != 30 {
		t.Fatalf("group 2: %v", r2)
	}
}

func TestScalarAggregateOverEmpty(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (v DOUBLE)")
	res := mustQuery(t, db, "SELECT SUM(v), COUNT(*) FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("rows %v", res.Rows)
	}
	if !res.Rows[0][0].IsNull() || res.Rows[0][1].I != 0 {
		t.Fatalf("empty aggregate row %v", res.Rows[0])
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE a (id INTEGER, x DOUBLE)")
	db.MustExec("CREATE TABLE b (id INTEGER, y DOUBLE)")
	db.MustExec("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
	db.MustExec("INSERT INTO b VALUES (2, 200), (3, 300), (4, 400)")
	res := mustQuery(t, db, "SELECT a.id, x, y FROM a, b WHERE a.id = b.id ORDER BY a.id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Rows[0][0].I != 2 || res.Rows[0][2].D != 200 || res.Rows[1][2].D != 300 {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestThreeWayJoinAndGroup(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE f (k INTEGER, v DOUBLE)")
	db.MustExec("CREATE TABLE g (k INTEGER, w DOUBLE)")
	db.MustExec("CREATE TABLE h (k INTEGER)")
	db.MustExec("INSERT INTO f VALUES (1, 1), (2, 2)")
	db.MustExec("INSERT INTO g VALUES (1, 10), (2, 20)")
	db.MustExec("INSERT INTO h VALUES (1), (1), (2)")
	res := mustQuery(t, db, `SELECT f.k, SUM(v * w) FROM f, g, h
		WHERE f.k = g.k AND g.k = h.k GROUP BY f.k ORDER BY f.k`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Rows[0][1].D != 20 || res.Rows[1][1].D != 40 {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestVectorColumnRoundTrip(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE v (id INTEGER, vec VECTOR[3])")
	rows := []value.Row{
		{value.Int(1), VectorValue(1, 2, 3)},
		{value.Int(2), VectorValue(4, 5, 6)},
	}
	if err := db.LoadTable("v", rows); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT id, vec * 2 AS d FROM v ORDER BY id")
	if !res.Rows[0][1].Vec.Equal(linalg.VectorOf(2, 4, 6)) {
		t.Fatalf("scaled vector %v", res.Rows[0][1])
	}
	// Dimension enforcement at load time.
	err := db.LoadTable("v", []value.Row{{value.Int(3), VectorValue(1)}})
	if err == nil {
		t.Fatal("loaded 1-entry vector into VECTOR[3]")
	}
}

// TestPaperVectorizeAndRowMatrix runs the §3.3 conversion pipeline verbatim:
// normalized triples -> labeled vectors per row -> a single matrix.
func TestPaperVectorizeAndRowMatrix(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE mat (row INTEGER, col INTEGER, value DOUBLE)")
	var rows []value.Row
	// 3x2 matrix with entry (r,c) = 10r + c.
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			rows = append(rows, value.Row{value.Int(int64(r)), value.Int(int64(c)), value.Double(float64(10*r + c))})
		}
	}
	if err := db.LoadTable("mat", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW vecs AS
		SELECT VECTORIZE(label_scalar(value, col)) AS vec, row
		FROM mat GROUP BY row`)
	res := mustQuery(t, db, `SELECT ROWMATRIX(label_vector(vec, row)) FROM vecs`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows %v", res.Rows)
	}
	m := res.Rows[0][0].Mat
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			if m.At(r, c) != float64(10*r+c) {
				t.Fatalf("entry (%d,%d) = %g", r, c, m.At(r, c))
			}
		}
	}
	// And normalize back with get_scalar (paper §3.3).
	db.MustExec("CREATE TABLE label (id INTEGER)")
	db.MustExec("INSERT INTO label VALUES (0), (1)")
	norm := mustQuery(t, db, `SELECT vecs.row, label.id, get_scalar(vecs.vec, label.id) AS v
		FROM vecs, label ORDER BY vecs.row, label.id`)
	if len(norm.Rows) != 6 {
		t.Fatalf("normalized rows %d", len(norm.Rows))
	}
	if norm.Rows[3][2].D != 10 { // row 1, col 1 -> wait: ordered (row,id): [0,0],[0,1],[1,0],[1,1]...
		t.Logf("rows: %v", norm.Rows)
	}
}

// TestGramMatrixThreeLayouts checks that the tuple-based, vector-based, and
// block-based Gram computations (the three SimSQL variants of the paper's
// experiments) agree.
func TestGramMatrixThreeLayouts(t *testing.T) {
	const n, d = 40, 3
	db := testDB(t)
	// Deterministic data: x[i][j] = (i*j mod 5) - 2.
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, d)
		for j := range data[i] {
			data[i][j] = float64((i*(j+1))%5) - 2
		}
	}
	// Reference Gram.
	X, _ := linalg.MatrixFromRows(data)
	want, _ := X.Transpose().MulMat(X)

	// Tuple layout.
	db.MustExec("CREATE TABLE xt (row_index INTEGER, col_index INTEGER, value DOUBLE)")
	var trows []value.Row
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			trows = append(trows, value.Row{value.Int(int64(i)), value.Int(int64(j)), value.Double(data[i][j])})
		}
	}
	if err := db.LoadTable("xt", trows); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, `SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
		FROM xt AS x1, xt AS x2
		WHERE x1.row_index = x2.row_index
		GROUP BY x1.col_index, x2.col_index`)
	if len(res.Rows) != d*d {
		t.Fatalf("tuple gram rows %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		i, j, v := r[0].I, r[1].I, r[2].D
		if math.Abs(v-want.At(int(i), int(j))) > 1e-9 {
			t.Fatalf("tuple gram (%d,%d) = %g, want %g", i, j, v, want.At(int(i), int(j)))
		}
	}

	// Vector layout.
	db.MustExec("CREATE TABLE xv (id INTEGER, value VECTOR[])")
	var vrows []value.Row
	for i := 0; i < n; i++ {
		vrows = append(vrows, value.Row{value.Int(int64(i)), VectorValue(data[i]...)})
	}
	if err := db.LoadTable("xv", vrows); err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, db, `SELECT SUM(outer_product(x.value, x.value)) FROM xv AS x`)
	if !res.Rows[0][0].Mat.EqualApprox(want, 1e-9) {
		t.Fatalf("vector gram = %v, want %v", res.Rows[0][0].Mat, want)
	}

	// Block layout (blocks of 10 rows), built with the paper's blocking SQL.
	db.MustExec("CREATE TABLE block_index (mi INTEGER)")
	for i := 0; i < n/10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO block_index VALUES (%d)", i))
	}
	db.MustExec(`CREATE VIEW mlx AS
		SELECT ROWMATRIX(label_vector(x.value, x.id - ind.mi*10)) AS m
		FROM xv AS x, block_index AS ind
		WHERE x.id/10 = ind.mi
		GROUP BY ind.mi`)
	res = mustQuery(t, db, `SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) FROM mlx`)
	if !res.Rows[0][0].Mat.EqualApprox(want, 1e-9) {
		t.Fatalf("block gram = %v, want %v", res.Rows[0][0].Mat, want)
	}
}

// TestLinearRegressionSQL runs the paper's §3.2 regression query:
// beta = inverse(sum xi xi^T) (sum xi yi).
func TestLinearRegressionSQL(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE xr (i INTEGER, x_i VECTOR[])")
	db.MustExec("CREATE TABLE yr (i INTEGER, y_i DOUBLE)")
	// y = 2*x0 - 3*x1 exactly; 30 points make the normal equations well posed.
	var xrows, yrows []value.Row
	for i := 0; i < 30; i++ {
		x0 := float64(i%7) - 3
		x1 := float64((i*3)%5) - 2
		xrows = append(xrows, value.Row{value.Int(int64(i)), VectorValue(x0, x1)})
		yrows = append(yrows, value.Row{value.Int(int64(i)), value.Double(2*x0 - 3*x1)})
	}
	if err := db.LoadTable("xr", xrows); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("yr", yrows); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, `SELECT matrix_vector_multiply(
			matrix_inverse(SUM(outer_product(xr.x_i, xr.x_i))),
			SUM(xr.x_i * y_i))
		FROM xr, yr WHERE xr.i = yr.i`)
	beta := res.Rows[0][0].Vec
	if !beta.EqualApprox(linalg.VectorOf(2, -3), 1e-8) {
		t.Fatalf("beta = %v, want [2 -3]", beta)
	}
}

// TestBigMatrixTiledMultiply runs the §3.4 distributed multiply of two
// tiled matrices and checks it against the dense product.
func TestBigMatrixTiledMultiply(t *testing.T) {
	db := testDB(t)
	const tiles, ts = 2, 3 // 2x2 grid of 3x3 tiles => 6x6 matrices
	db.MustExec("CREATE TABLE bigmatrix (tilerow INTEGER, tilecol INTEGER, mat MATRIX[3][3])")
	db.MustExec("CREATE TABLE anotherbigmat (tilerow INTEGER, tilecol INTEGER, mat MATRIX[3][3])")

	dense := func(seed int) *linalg.Matrix {
		m := linalg.NewMatrix(tiles*ts, tiles*ts)
		for i := range m.Data {
			m.Data[i] = float64((i*seed)%7) - 3
		}
		return m
	}
	A, B := dense(3), dense(5)
	loadTiles := func(table string, m *linalg.Matrix) {
		var rows []value.Row
		for tr := 0; tr < tiles; tr++ {
			for tc := 0; tc < tiles; tc++ {
				tile, err := m.SubMatrix(tr*ts, (tr+1)*ts, tc*ts, (tc+1)*ts)
				if err != nil {
					t.Fatal(err)
				}
				rows = append(rows, value.Row{value.Int(int64(tr)), value.Int(int64(tc)), value.Matrix(tile)})
			}
		}
		if err := db.LoadTable(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	loadTiles("bigmatrix", A)
	loadTiles("anotherbigmat", B)

	res := mustQuery(t, db, `SELECT lhs.tilerow, rhs.tilecol,
			SUM(matrix_multiply(lhs.mat, rhs.mat))
		FROM bigmatrix AS lhs, anotherbigmat AS rhs
		WHERE lhs.tilecol = rhs.tilerow
		GROUP BY lhs.tilerow, rhs.tilecol`)
	if len(res.Rows) != tiles*tiles {
		t.Fatalf("tile rows %d", len(res.Rows))
	}
	want, _ := A.MulMat(B)
	for _, r := range res.Rows {
		tr, tc := int(r[0].I), int(r[1].I)
		wantTile, _ := want.SubMatrix(tr*ts, (tr+1)*ts, tc*ts, (tc+1)*ts)
		if !r[2].Mat.EqualApprox(wantTile, 1e-9) {
			t.Fatalf("tile (%d,%d) = %v, want %v", tr, tc, r[2].Mat, wantTile)
		}
	}
}

// TestRiemannianDistanceQuery runs the §2.3 rewritten distance query.
func TestRiemannianDistanceQuery(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE pts (pointid INTEGER, val VECTOR[2])")
	db.MustExec("CREATE TABLE matrixa (val MATRIX[2][2])")
	pts := [][]float64{{0, 0}, {1, 0}, {0, 2}}
	var rows []value.Row
	for i, p := range pts {
		rows = append(rows, value.Row{value.Int(int64(i)), VectorValue(p...)})
	}
	if err := db.LoadTable("pts", rows); err != nil {
		t.Fatal(err)
	}
	av, err := MatrixValue([][]float64{{2, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("matrixa", []value.Row{{av}}); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, `SELECT x2.pointid,
			inner_product(
				matrix_vector_multiply(a.val, x1.val - x2.val),
				x1.val - x2.val) AS value
		FROM pts AS x1, pts AS x2, matrixa AS a
		WHERE x1.pointid = 0
		ORDER BY x2.pointid`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows %v", res.Rows)
	}
	// d(x0, x0)=0; d(x0, x1)=(−1,0)A(−1,0)ᵀ=2; d(x0, x2)=(0,−2)A(0,−2)ᵀ=4.
	want := []float64{0, 2, 4}
	for i, r := range res.Rows {
		if r[1].D != want[i] {
			t.Fatalf("distance to %d = %g, want %g", i, r[1].D, want[i])
		}
	}
}

func TestHavingAndLimit(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (g INTEGER, v DOUBLE)")
	db.MustExec("INSERT INTO t VALUES (1, 1), (2, 10), (2, 10), (3, 100), (3, 100), (3, 100)")
	res := mustQuery(t, db, `SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING COUNT(*) > 1 ORDER BY g LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestExplainStatement(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	res, err := db.Run("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].S + "\n"
	}
	if !strings.Contains(joined, "Scan t") {
		t.Fatalf("explain output:\n%s", joined)
	}
}

func TestDropAndErrors(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("DROP TABLE t")
	if err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("double drop succeeded")
	}
	db.MustExec("DROP TABLE IF EXISTS t")
	if err := db.Exec("CREATE TABLE bad (a INTEGER, a DOUBLE)"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := db.Exec("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if err := db.Exec("CREATE TABLE t2 (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO t2 VALUES (1, 2)"); err == nil {
		t.Fatal("wrong arity insert accepted")
	}
	if err := db.Exec("INSERT INTO t2 VALUES ('x')"); err == nil {
		t.Fatal("type-mismatched insert accepted")
	}
	if _, err := db.Query("CREATE TABLE t3 (a INTEGER)"); err == nil {
		t.Fatal("Query of DDL should fail")
	}
}

func TestViewTypeCheckedAtCreate(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	if err := db.Exec("CREATE VIEW v AS SELECT nosuch FROM t"); err == nil {
		t.Fatal("invalid view accepted")
	}
}

func TestTupleBudgetFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 1
	cfg.Cluster.PartitionsPerNode = 2
	cfg.Cluster.MaxIntermediateTuples = 500
	db := Open(cfg)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{value.Int(int64(i))})
	}
	if err := db.LoadTable("t", rows); err != nil {
		t.Fatal(err)
	}
	// The self cross join produces 10,000 tuples > budget: must fail like
	// the paper's tuple-based distance computation.
	_, err := db.Query("SELECT t1.a FROM t AS t1, t AS t2 WHERE t1.a <> t2.a")
	if !errors.Is(err, cluster.ErrResourceExhausted) {
		t.Fatalf("error = %v, want ErrResourceExhausted", err)
	}
}

func TestRunScript(t *testing.T) {
	db := testDB(t)
	results, err := db.RunScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;
		SELECT COUNT(*) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	if results[0].Rows[0][0].I != 3 || results[1].Rows[0][0].I != 2 {
		t.Fatalf("script results %v %v", results[0].Rows, results[1].Rows)
	}
}

func TestQueryStatsExposed(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE a (id INTEGER)")
	db.MustExec("CREATE TABLE b (id INTEGER)")
	var rows []value.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, value.Row{value.Int(int64(i))})
	}
	if err := db.LoadTable("a", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("b", rows); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT a.id FROM a, b WHERE a.id = b.id")
	if len(res.Rows) != 50 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if res.Stats.ShuffleRounds == 0 {
		t.Fatal("join should shuffle")
	}
	if res.Timings.Get("join") == 0 {
		t.Fatal("join timing missing")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, "SELECT 1 + 2 AS v, 'hi' AS s")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 || res.Rows[0][1].S != "hi" {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestDistinctStatsMaintained(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (g INTEGER, v DOUBLE)")
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{value.Int(int64(i % 10)), value.Double(float64(i))})
	}
	if err := db.LoadTable("t", rows); err != nil {
		t.Fatal(err)
	}
	meta, _ := db.Catalog().Table("t")
	if meta.RowCount() != 100 {
		t.Fatalf("rowcount %d", meta.RowCount())
	}
	if d := meta.Distinct("g"); d != 10 {
		t.Fatalf("distinct(g) = %g", d)
	}
	if d := meta.Distinct("v"); d != 100 {
		t.Fatalf("distinct(v) = %g", d)
	}
}

func TestCreateTableAs(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE src (g INTEGER, v DOUBLE)")
	db.MustExec("INSERT INTO src VALUES (1, 2), (1, 3), (2, 10)")
	db.MustExec("CREATE TABLE agg AS SELECT g, SUM(v) AS total FROM src GROUP BY g")
	res := mustQuery(t, db, "SELECT g, total FROM agg ORDER BY g")
	if len(res.Rows) != 2 || res.Rows[0][1].D != 5 || res.Rows[1][1].D != 10 {
		t.Fatalf("rows %v", res.Rows)
	}
	meta, ok := db.Catalog().Table("agg")
	if !ok || meta.RowCount() != 2 {
		t.Fatalf("meta %+v", meta)
	}
	if meta.Schema.String() != "(g INTEGER, total DOUBLE)" {
		t.Fatalf("schema %s", meta.Schema)
	}
	// Duplicate output names are disambiguated.
	db.MustExec("CREATE TABLE dup AS SELECT g, g FROM src")
	meta, _ = db.Catalog().Table("dup")
	if meta.Schema.Cols[0].Name == meta.Schema.Cols[1].Name {
		t.Fatalf("duplicate columns survived: %s", meta.Schema)
	}
	// Vector results materialize too (the SciDB-style INTO workflow).
	db.MustExec("CREATE TABLE xv2 (id INTEGER, vec VECTOR[2])")
	db.MustExec("INSERT INTO xv2 VALUES (1, zeros_vector(2) + 1)")
	db.MustExec("CREATE TABLE doubled AS SELECT id, vec * 2 AS v2 FROM xv2")
	res = mustQuery(t, db, "SELECT v2 FROM doubled")
	if !res.Rows[0][0].Vec.Equal(linalg.VectorOf(2, 2)) {
		t.Fatalf("vector CTAS %v", res.Rows[0][0])
	}
	// Name collisions with existing tables fail.
	if err := db.Exec("CREATE TABLE agg AS SELECT g FROM src"); err == nil {
		t.Fatal("CTAS over existing table accepted")
	}
}

// TestScalarSubqueries covers the standard-SQL form of the harness's
// "max of the minimums" pattern.
func TestScalarSubqueries(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE d (id INTEGER, dist DOUBLE)")
	db.MustExec("INSERT INTO d VALUES (1, 5), (2, 9), (3, 9), (4, 2)")
	res := mustQuery(t, db, `SELECT id, dist FROM d WHERE dist = (SELECT MAX(dist) FROM d) ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Fatalf("rows %v", res.Rows)
	}
	// In a projection expression, with arithmetic around it.
	res = mustQuery(t, db, `SELECT id, dist - (SELECT AVG(dist) FROM d) AS delta FROM d ORDER BY id`)
	if len(res.Rows) != 4 || res.Rows[0][1].D != 5-6.25 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Empty subquery result is NULL, so nothing matches equality.
	res = mustQuery(t, db, `SELECT id FROM d WHERE dist = (SELECT MAX(dist) FROM d WHERE id > 100)`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Multi-row subquery errors.
	if _, err := db.Query(`SELECT id FROM d WHERE dist = (SELECT dist FROM d)`); err == nil {
		t.Fatal("multi-row scalar subquery accepted")
	}
	// Multi-column subquery is a compile error.
	if _, err := db.Query(`SELECT id FROM d WHERE dist = (SELECT id, dist FROM d)`); err == nil {
		t.Fatal("multi-column scalar subquery accepted")
	}
	// Nested subqueries resolve recursively.
	res = mustQuery(t, db, `SELECT COUNT(*) FROM d
		WHERE dist > (SELECT MIN(dist) FROM d WHERE dist < (SELECT MAX(dist) FROM d))`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("nested subquery count %v", res.Rows)
	}
	// Works inside HAVING and with vector data too.
	db.MustExec("CREATE TABLE xv (id INTEGER, vec VECTOR[2])")
	db.MustExec("INSERT INTO xv VALUES (1, zeros_vector(2) + 1), (2, zeros_vector(2) + 5)")
	res = mustQuery(t, db, `SELECT id FROM xv
		WHERE inner_product(vec, vec) = (SELECT MAX(inner_product(x2.vec, x2.vec)) FROM xv AS x2)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("vector subquery rows %v", res.Rows)
	}
}

// TestPartitionByHashSkipsShuffles reproduces the paper's §2.1 scenario:
// a table pre-partitioned on the join key is not re-shuffled; only the
// other side moves. Groupings on the partition column also stay local.
func TestPartitionByHashSkipsShuffles(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE r (id INTEGER, v DOUBLE) PARTITION BY HASH (id)")
	db.MustExec("CREATE TABLE l (id INTEGER, w DOUBLE)")
	var lr, rr []value.Row
	for i := 0; i < 60; i++ {
		rr = append(rr, value.Row{value.Int(int64(i % 12)), value.Double(float64(i))})
		lr = append(lr, value.Row{value.Int(int64(i % 12)), value.Double(float64(2 * i))})
	}
	if err := db.LoadTable("r", rr); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("l", lr); err != nil {
		t.Fatal(err)
	}
	// Join on the partition key: only l shuffles (1 round).
	res := mustQuery(t, db, "SELECT l.id, SUM(l.w * r.v) FROM l, r WHERE l.id = r.id GROUP BY l.id")
	if len(res.Rows) != 12 {
		t.Fatalf("groups %d", len(res.Rows))
	}
	if res.Stats.ShuffleRounds != 1 {
		t.Fatalf("shuffle rounds = %d, want 1 (pre-partitioned side stays put)", res.Stats.ShuffleRounds)
	}
	// Grouping directly on the partition column: zero shuffles and no
	// partial-state movement.
	res = mustQuery(t, db, "SELECT id, SUM(v) FROM r GROUP BY id")
	if len(res.Rows) != 12 {
		t.Fatalf("groups %d", len(res.Rows))
	}
	if res.Stats.ShuffleRounds != 0 || res.Stats.TuplesShuffled != 0 {
		t.Fatalf("partition-aligned grouping moved data: %+v", res.Stats)
	}
	// Same query on the round-robin table needs the aggregate shuffle.
	res = mustQuery(t, db, "SELECT id, SUM(w) FROM l GROUP BY id")
	if res.Stats.TuplesShuffled == 0 {
		t.Fatalf("round-robin grouping should move partial states: %+v", res.Stats)
	}
	// Correctness: both joins return identical content to a round-robin copy.
	db.MustExec("CREATE TABLE r2 (id INTEGER, v DOUBLE)")
	if err := db.LoadTable("r2", rr); err != nil {
		t.Fatal(err)
	}
	a := mustQuery(t, db, "SELECT l.id, SUM(l.w * r.v) FROM l, r WHERE l.id = r.id GROUP BY l.id")
	b := mustQuery(t, db, "SELECT l.id, SUM(l.w * r2.v) FROM l, r2 WHERE l.id = r2.id GROUP BY l.id")
	ca, cb := canonicalRows(a.Rows), canonicalRows(b.Rows)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("partitioned join differs from round-robin join at %d: %s vs %s", i, ca[i], cb[i])
		}
	}
}

func TestPartitionByHashValidation(t *testing.T) {
	db := testDB(t)
	if err := db.Exec("CREATE TABLE t (a INTEGER) PARTITION BY HASH (nosuch)"); err == nil {
		t.Fatal("unknown partition column accepted")
	}
	if err := db.Exec("CREATE TABLE t (a INTEGER) PARTITION BY RANGE (a)"); err == nil {
		t.Fatal("unsupported partition scheme accepted")
	}
}

// TestConcurrentQueries hammers one database from several goroutines: the
// catalog/storage locks must keep reads consistent.
func TestConcurrentQueries(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (g INTEGER, v DOUBLE)")
	var rows []value.Row
	for i := 0; i < 200; i++ {
		rows = append(rows, value.Row{value.Int(int64(i % 5)), value.Double(float64(i % 11))})
	}
	if err := db.LoadTable("t", rows); err != nil {
		t.Fatal(err)
	}
	want := mustQuery(t, db, "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g")
	wantRows := canonicalRows(want.Rows)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, err := db.Query("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g")
				if err != nil {
					errs <- err
					return
				}
				got := canonicalRows(res.Rows)
				if len(got) != len(wantRows) {
					errs <- fmt.Errorf("row count %d, want %d", len(got), len(wantRows))
					return
				}
				for i := range got {
					if got[i] != wantRows[i] {
						errs <- fmt.Errorf("row %d: %s != %s", i, got[i], wantRows[i])
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE t (a INTEGER, b DOUBLE)")
	db.MustExec("INSERT INTO t VALUES (1, 2), (1, 3), (2, 9)")
	res, err := db.Run("EXPLAIN ANALYZE SELECT a, SUM(b) FROM t GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].S + "\n"
	}
	for _, want := range []string{"Aggregate", "-- executed: 2 rows", "aggregate "} {
		if !strings.Contains(joined, want) {
			t.Fatalf("explain analyze missing %q:\n%s", want, joined)
		}
	}
	// Plain EXPLAIN must not execute (no -- executed line).
	res, err = db.Run("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if strings.Contains(r[0].S, "executed") {
			t.Fatal("plain EXPLAIN executed the query")
		}
	}
	// EXPLAIN ANALYZE of DDL is rejected.
	if _, err := db.Run("EXPLAIN ANALYZE CREATE TABLE z (a INTEGER)"); err == nil {
		t.Fatal("EXPLAIN ANALYZE of DDL accepted")
	}
}
