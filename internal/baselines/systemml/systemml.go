// Package systemml simulates SystemML V0.9's execution profile for the
// paper's three benchmark computations. Physically, data is always blocked
// into square-ish matrix blocks distributed over the shared cluster
// substrate; operations are block-replication joins plus block-local dense
// kernels, with partial-result reduction. A local mode runs tiny inputs on
// one core without touching the cluster, matching the paper's starred
// 10-dimensional entries.
package systemml

import (
	"fmt"
	"math"

	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

// Engine is one simulated SystemML instance.
type Engine struct {
	cl *cluster.Cluster
	// BlockSize is the square block edge (SystemML's default is 1000).
	BlockSize int
	// LocalThreshold is the number of matrix cells under which the engine
	// runs in local mode.
	LocalThreshold int
}

// New returns an engine over the cluster.
func New(cl *cluster.Cluster) *Engine {
	return &Engine{cl: cl, BlockSize: 1000, LocalThreshold: 200_000}
}

// Name implements the benchmark platform interface.
func (e *Engine) Name() string { return "SystemML" }

// blocked splits dense row-major data into a grid of BlockSize×BlockSize
// blocks encoded as rows (bi, bj, MATRIX) and spread over the cluster.
func (e *Engine) blocked(data [][]float64) ([][]value.Row, int, int, error) {
	n := len(data)
	if n == 0 {
		return nil, 0, 0, fmt.Errorf("systemml: empty input")
	}
	d := len(data[0])
	bs := e.BlockSize
	nbi := (n + bs - 1) / bs
	nbj := (d + bs - 1) / bs
	var rows []value.Row
	for bi := 0; bi < nbi; bi++ {
		for bj := 0; bj < nbj; bj++ {
			r0, r1 := bi*bs, min(n, (bi+1)*bs)
			c0, c1 := bj*bs, min(d, (bj+1)*bs)
			m := linalg.NewMatrix(r1-r0, c1-c0)
			for r := r0; r < r1; r++ {
				copy(m.Row(r-r0), data[r][c0:c1])
			}
			rows = append(rows, value.Row{value.Int(int64(bi)), value.Int(int64(bj)), value.Matrix(m)})
		}
	}
	return e.cl.ScatterRoundRobin(rows), nbi, nbj, nil
}

func (e *Engine) local(n, d int) bool { return n*d <= e.LocalThreshold }

// Gram computes t(X) %*% X.
func (e *Engine) Gram(data [][]float64) (*linalg.Matrix, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("systemml: empty input")
	}
	d := len(data[0])
	if e.local(n, d) {
		X, err := linalg.MatrixFromRows(data)
		if err != nil {
			return nil, err
		}
		return X.Transpose().MulMat(X)
	}
	parts, _, nbj, err := e.blocked(data)
	if err != nil {
		return nil, err
	}
	// t(X) %*% X = sum over row-block i of Xi^T applied blockwise:
	// contribution of block (i, a) with block (i, b) is Xia^T · Xib.
	// Co-locate blocks by row-block index, then pair within partitions.
	shuffled, err := e.cl.Shuffle(parts, []int{0})
	if err != nil {
		return nil, err
	}
	partials := make([]*linalg.Matrix, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		acc := linalg.NewMatrix(d, d)
		byRow := map[int64][]value.Row{}
		for _, r := range shuffled[p] {
			byRow[r[0].I] = append(byRow[r[0].I], r)
		}
		bs := e.BlockSize
		for _, blocks := range byRow {
			for _, a := range blocks {
				at := a[2].Mat.Transpose()
				for _, b := range blocks {
					prod, err := at.MulMat(b[2].Mat)
					if err != nil {
						return err
					}
					// Accumulate into the (a.bj, b.bj) tile of the result.
					r0 := int(a[1].I) * bs
					c0 := int(b[1].I) * bs
					for r := 0; r < prod.Rows; r++ {
						row := acc.Row(r0 + r)
						for c := 0; c < prod.Cols; c++ {
							row[c0+c] += prod.At(r, c)
						}
					}
				}
			}
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	_ = nbj
	return reduceMatrices(e.cl, partials)
}

// reduceMatrices merges per-partition partials, charging each remote
// partial as serialized network traffic.
func reduceMatrices(cl *cluster.Cluster, partials []*linalg.Matrix) (*linalg.Matrix, error) {
	var acc *linalg.Matrix
	for p, m := range partials {
		if m == nil {
			continue
		}
		if p != 0 {
			buf := value.AppendValue(nil, value.Matrix(m))
			cl.Stats().TuplesShuffled.Add(1)
			cl.Stats().BytesShuffled.Add(int64(len(buf)))
			cl.NetworkWait(int64(len(buf)))
			v, _, err := value.DecodeValue(buf)
			if err != nil {
				return nil, err
			}
			m = v.Mat
		}
		if acc == nil {
			acc = m.Clone()
			continue
		}
		if err := acc.AddInPlace(m); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("systemml: nothing to reduce")
	}
	return acc, nil
}

// Regression solves beta = inverse(t(X)%*%X) %*% (t(X)%*%y).
func (e *Engine) Regression(data [][]float64, y []float64) (*linalg.Vector, error) {
	n := len(data)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("systemml: bad regression input (%d points, %d targets)", n, len(y))
	}
	G, err := e.Gram(data)
	if err != nil {
		return nil, err
	}
	d := len(data[0])
	// t(X) %*% y distributed: per partition over row ranges.
	parts := e.cl.ScatterRoundRobin(indexRows(n))
	partials := make([]*linalg.Vector, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		acc := linalg.NewVector(d)
		for _, r := range parts[p] {
			i := int(r[0].I)
			for j, x := range data[i] {
				acc.Data[j] += x * y[i]
			}
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	v := linalg.NewVector(d)
	for _, pv := range partials {
		if pv != nil {
			if err := v.AddInPlace(pv); err != nil {
				return nil, err
			}
		}
	}
	inv, err := G.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(v)
}

// Distance runs the paper's DML program:
//
//	all_dist = X %*% m %*% X_t
//	all_dist = all_dist + diag(diag_inf)
//	min_dist = rowMins(all_dist)
//	result   = rowIndexMax(t(min_dist))
//
// It returns the index of the point whose minimum metric distance to any
// other point is largest, plus that distance.
func (e *Engine) Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error) {
	n := len(data)
	if n == 0 {
		return 0, 0, fmt.Errorf("systemml: empty input")
	}
	d := len(data[0])
	if metric.Rows != d || metric.Cols != d {
		return 0, 0, fmt.Errorf("systemml: metric is %dx%d for %d-dimensional data", metric.Rows, metric.Cols, d)
	}
	X, err := linalg.MatrixFromRows(data)
	if err != nil {
		return 0, 0, err
	}
	if e.local(n, d) {
		XM, err := X.MulMat(metric)
		if err != nil {
			return 0, 0, err
		}
		all, err := XM.MulMat(X.Transpose())
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < n; i++ {
			all.Set(i, i, math.Inf(1))
		}
		mins := all.RowMins()
		idx := mins.ArgMax()
		return idx, mins.At(idx), nil
	}
	// Distributed: XM = X %*% m computed per row range; then the n×n
	// product XM %*% t(X) is formed block-row by block-row — each partition
	// needs every row of X, which is the replication cost SystemML pays.
	parts := e.cl.ScatterRoundRobin(indexRows(n))
	// Broadcast X to every partition (replication charge).
	xRows := make([]value.Row, n)
	for i := range data {
		xRows[i] = value.Row{value.Int(int64(i)), value.Vector(linalg.VectorOf(data[i]...))}
	}
	bcast, err := e.cl.Broadcast(e.cl.ScatterRoundRobin(xRows))
	if err != nil {
		return 0, 0, err
	}
	type best struct {
		idx int
		val float64
	}
	bests := make([]best, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		b := best{idx: -1, val: math.Inf(-1)}
		// Rebuild the broadcast copy of X on this partition.
		local := make([][]float64, n)
		for _, r := range bcast[p] {
			local[r[0].I] = r[1].Vec.Data
		}
		for _, r := range parts[p] {
			i := int(r[0].I)
			// row_i of XM = x_i^T m
			xim, err := metric.VecMul(linalg.VectorOf(data[i]...))
			if err != nil {
				return err
			}
			minD := math.Inf(1)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				var dist float64
				for k, x := range xim.Data {
					dist += x * local[j][k]
				}
				if dist < minD {
					minD = dist
				}
			}
			if minD > b.val {
				b = best{idx: i, val: minD}
			}
		}
		bests[p] = b
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	out := best{idx: -1, val: math.Inf(-1)}
	for _, b := range bests {
		if b.idx >= 0 && b.val > out.val {
			out = b
		}
	}
	if out.idx < 0 {
		return 0, 0, fmt.Errorf("systemml: no result")
	}
	return out.idx, out.val, nil
}

func indexRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i))}
	}
	return rows
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
