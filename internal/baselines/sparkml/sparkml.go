// Package sparkml simulates Spark V1.6 mllib.linalg's execution profile for
// the paper's three benchmark computations, reproducing the two mechanisms
// behind Spark's Figure 1-3 numbers:
//
//  1. The paper's Gram/regression code maps EVERY vector to a dense d×d
//     array and reduces with `(a, b).zipped.map(_+_)`, which allocates a
//     fresh d² array per combination step; partition-local reduction runs in
//     parallel but the final partials are merged SEQUENTIALLY at the driver.
//     At d = 1000 this allocation-heavy, driver-serialized reduce is what
//     pushes Spark to ~17 minutes where blocked engines take ~3.
//  2. The distance computation uses a distributed BlockMatrix multiply
//     (X · M · Xᵀ), which replicates blocks all-to-all through serialized
//     shuffles and materializes the full n×n result before the row-minimum
//     pass — the paper's worst Figure 3 column.
package sparkml

import (
	"fmt"
	"math"

	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

// Engine is one simulated Spark mllib instance.
type Engine struct {
	cl *cluster.Cluster
	// BlockSize is the BlockMatrix block edge for the distance computation.
	BlockSize int
}

// New returns an engine over the cluster.
func New(cl *cluster.Cluster) *Engine {
	return &Engine{cl: cl, BlockSize: 1000}
}

// Name implements the benchmark platform interface.
func (e *Engine) Name() string { return "Spark mllib" }

// rdd scatters points round-robin, like parallelize on an RDD[Vector].
func (e *Engine) rdd(data [][]float64) [][]value.Row {
	rows := make([]value.Row, len(data))
	for i, v := range data {
		rows[i] = value.Row{value.Int(int64(i)), value.Vector(linalg.VectorOf(v...))}
	}
	return e.cl.ScatterRoundRobin(rows)
}

// zippedAdd reproduces `(a, b).zipped.map(_+_)`: it returns a FRESH slice
// per call, the functional-allocation cost of the paper's Scala code.
func zippedAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Gram runs the paper's vector-based mllib code: map each point to its d×d
// outer product, reduce by element-wise add.
func (e *Engine) Gram(data [][]float64) (*linalg.Matrix, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("sparkml: empty input")
	}
	d := len(data[0])
	parts := e.rdd(data)
	partials := make([][]float64, e.cl.Partitions())
	err := e.cl.Parallel(func(p int) error {
		var acc []float64
		for _, r := range parts[p] {
			x := r[1].Vec.Data
			// map: x => x.transpose.multiply(x) — a fresh d×d dense array
			// per input vector.
			outer := make([]float64, d*d)
			for i, xi := range x {
				row := outer[i*d : (i+1)*d]
				for j, xj := range x {
					row[j] = xi * xj
				}
			}
			// reduce step inside the partition, allocating per combine.
			if acc == nil {
				acc = outer
			} else {
				acc = zippedAdd(acc, outer)
			}
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	final, err := e.driverReduce(partials, d)
	if err != nil {
		return nil, err
	}
	return &linalg.Matrix{Rows: d, Cols: d, Data: final}, nil
}

// driverReduce serializes every partition's partial back to the driver and
// combines them one at a time on a single goroutine — Spark's reduce().
func (e *Engine) driverReduce(partials [][]float64, d int) ([]float64, error) {
	var acc []float64
	for p, part := range partials {
		if part == nil {
			continue
		}
		if p != 0 {
			buf := value.AppendValue(nil, value.Vector(&linalg.Vector{Data: part}))
			e.cl.Stats().TuplesShuffled.Add(1)
			e.cl.Stats().BytesShuffled.Add(int64(len(buf)))
			e.cl.NetworkWait(int64(len(buf)))
			v, _, err := value.DecodeValue(buf)
			if err != nil {
				return nil, err
			}
			part = v.Vec.Data
		}
		if acc == nil {
			acc = part
			continue
		}
		acc = zippedAdd(acc, part)
	}
	if acc == nil {
		return nil, fmt.Errorf("sparkml: nothing to reduce")
	}
	if len(acc) != d*d && len(acc) != d {
		return nil, fmt.Errorf("sparkml: partial of length %d", len(acc))
	}
	return acc, nil
}

// Regression is the vector-based normal-equations job: map each point to
// (x xᵀ, x·y), reduce both, solve at the driver.
func (e *Engine) Regression(data [][]float64, y []float64) (*linalg.Vector, error) {
	n := len(data)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("sparkml: bad regression input (%d points, %d targets)", n, len(y))
	}
	d := len(data[0])
	G, err := e.Gram(data)
	if err != nil {
		return nil, err
	}
	parts := e.rdd(data)
	partials := make([][]float64, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		var acc []float64
		for _, r := range parts[p] {
			i := int(r[0].I)
			x := r[1].Vec.Data
			xy := make([]float64, d)
			for j, xj := range x {
				xy[j] = xj * y[i]
			}
			if acc == nil {
				acc = xy
			} else {
				acc = zippedAdd(acc, xy)
			}
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	v, err := e.driverReduce(partials, d)
	if err != nil {
		return nil, err
	}
	inv, err := G.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(&linalg.Vector{Data: v})
}

// Distance runs the BlockMatrix pipeline:
// dist = block_x.multiply(block_m).multiply(block_x.transpose), then per-row
// minima (excluding the diagonal) and the arg-max of those minima. Every
// block of X is replicated to every partition holding a matching block-row
// of the n×n product, and the product IS materialized.
func (e *Engine) Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error) {
	n := len(data)
	if n == 0 {
		return 0, 0, fmt.Errorf("sparkml: empty input")
	}
	d := len(data[0])
	if metric.Rows != d || metric.Cols != d {
		return 0, 0, fmt.Errorf("sparkml: metric is %dx%d for %d-dimensional data", metric.Rows, metric.Cols, d)
	}
	bs := e.BlockSize
	nblocks := (n + bs - 1) / bs

	// Block rows of X, stored as (blockID, MATRIX) spread over the cluster.
	var xblocks []value.Row
	for b := 0; b < nblocks; b++ {
		end := min(n, (b+1)*bs)
		m, err := linalg.MatrixFromRows(data[b*bs : end])
		if err != nil {
			return 0, 0, err
		}
		xblocks = append(xblocks, value.Row{value.Int(int64(b)), value.Matrix(m)})
	}
	parts := e.cl.ScatterRoundRobin(xblocks)

	// Step 1: XM blocks (local: metric is a single block here).
	xm := make([][]value.Row, e.cl.Partitions())
	err := e.cl.Parallel(func(p int) error {
		var rows []value.Row
		for _, r := range parts[p] {
			prod, err := r[1].Mat.MulMat(metric)
			if err != nil {
				return err
			}
			rows = append(rows, value.Row{r[0], value.Matrix(prod)})
		}
		xm[p] = rows
		return nil
	})
	if err != nil {
		return 0, 0, err
	}

	// Step 2: multiply by Xᵀ — BlockMatrix replicates the right-hand blocks
	// to every partition (all-to-all broadcast through the shuffle path).
	xt, err := e.cl.Broadcast(parts)
	if err != nil {
		return 0, 0, err
	}

	// Step 3: materialize the n×n product block-row by block-row, then the
	// row-min/arg-max pass of the paper's Scala code.
	type best struct {
		idx int
		val float64
	}
	bests := make([]best, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		b := best{idx: -1, val: math.Inf(-1)}
		for _, r := range xm[p] {
			rowBase := int(r[0].I) * bs
			h := r[1].Mat.Rows
			// Materialized block-row of the n×n distance matrix.
			blockRow := linalg.NewMatrix(h, n)
			for _, xr := range xt[p] {
				prod, err := r[1].Mat.MulMat(xr[1].Mat.Transpose())
				if err != nil {
					return err
				}
				if err := blockRow.SetSubMatrix(0, int(xr[0].I)*bs, prod); err != nil {
					return err
				}
			}
			for i := 0; i < h; i++ {
				minD := math.Inf(1)
				row := blockRow.Row(i)
				for j, v := range row {
					if rowBase+i == j {
						continue
					}
					if v < minD {
						minD = v
					}
				}
				if minD > b.val {
					b = best{idx: rowBase + i, val: minD}
				}
			}
		}
		bests[p] = b
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	out := best{idx: -1, val: math.Inf(-1)}
	for _, bb := range bests {
		if bb.idx >= 0 && bb.val > out.val {
			out = bb
		}
	}
	if out.idx < 0 {
		return 0, 0, fmt.Errorf("sparkml: no result")
	}
	return out.idx, out.val, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
