// Package baselines_test cross-checks the three simulated comparator
// platforms against a direct linalg reference on identical inputs — the
// correctness gate for every engine in the benchmark harness.
package baselines_test

import (
	"math"
	"testing"

	"relalg/internal/baselines/scidb"
	"relalg/internal/baselines/sparkml"
	"relalg/internal/baselines/systemml"
	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/workload"
)

// platform is the common surface all baselines expose.
type platform interface {
	Name() string
	Gram(data [][]float64) (*linalg.Matrix, error)
	Regression(data [][]float64, y []float64) (*linalg.Vector, error)
	Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error)
}

func newCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true})
}

func platforms() []platform {
	return []platform{
		systemml.New(newCluster()),
		scidb.New(newCluster()),
		sparkml.New(newCluster()),
	}
}

// smallPlatforms forces the distributed paths even on tiny data.
func smallPlatforms() []platform {
	sm := systemml.New(newCluster())
	sm.BlockSize = 8
	sm.LocalThreshold = 1 // never local
	sc := scidb.New(newCluster())
	sc.ChunkSize = 8
	sp := sparkml.New(newCluster())
	sp.BlockSize = 8
	return []platform{sm, sc, sp}
}

func refGram(t *testing.T, data [][]float64) *linalg.Matrix {
	t.Helper()
	X, err := linalg.MatrixFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	G, err := X.Transpose().MulMat(X)
	if err != nil {
		t.Fatal(err)
	}
	return G
}

func refDistance(t *testing.T, data [][]float64, metric *linalg.Matrix) (int, float64) {
	t.Helper()
	n := len(data)
	bestIdx, bestVal := -1, math.Inf(-1)
	for i := 0; i < n; i++ {
		xi := linalg.VectorOf(data[i]...)
		xim, err := metric.VecMul(xi)
		if err != nil {
			t.Fatal(err)
		}
		minD := math.Inf(1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d, err := xim.Dot(linalg.VectorOf(data[j]...))
			if err != nil {
				t.Fatal(err)
			}
			if d < minD {
				minD = d
			}
		}
		if minD > bestVal {
			bestIdx, bestVal = i, minD
		}
	}
	return bestIdx, bestVal
}

func TestGramAgreesAcrossPlatforms(t *testing.T) {
	data := workload.DenseVectors(42, 60, 7)
	want := refGram(t, data)
	for _, pl := range append(platforms(), smallPlatforms()...) {
		got, err := pl.Gram(data)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("%s: gram disagrees with reference", pl.Name())
		}
	}
}

func TestRegressionRecoversBeta(t *testing.T) {
	data := workload.DenseVectors(7, 80, 5)
	beta := workload.Beta(8, 5)
	yRows := workload.RegressionTargets(9, data, beta, 0)
	y := make([]float64, len(yRows))
	for i, r := range yRows {
		y[i] = r[1].D
	}
	want := linalg.VectorOf(beta...)
	for _, pl := range append(platforms(), smallPlatforms()...) {
		got, err := pl.Regression(data, y)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if !got.EqualApprox(want, 1e-6) {
			t.Fatalf("%s: beta = %v, want %v", pl.Name(), got, want)
		}
	}
}

func TestDistanceAgreesAcrossPlatforms(t *testing.T) {
	data := workload.DenseVectors(5, 30, 4)
	metric := workload.MetricMatrix(6, 4)
	wantIdx, wantVal := refDistance(t, data, metric)
	for _, pl := range append(platforms(), smallPlatforms()...) {
		idx, val, err := pl.Distance(data, metric)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if idx != wantIdx || math.Abs(val-wantVal) > 1e-9 {
			t.Fatalf("%s: distance = (%d, %g), want (%d, %g)", pl.Name(), idx, val, wantIdx, wantVal)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	metric := workload.MetricMatrix(1, 3)
	for _, pl := range platforms() {
		if _, err := pl.Gram(nil); err == nil {
			t.Errorf("%s: empty gram accepted", pl.Name())
		}
		if _, err := pl.Regression(workload.DenseVectors(1, 4, 2), []float64{1}); err == nil {
			t.Errorf("%s: mismatched regression accepted", pl.Name())
		}
		if _, _, err := pl.Distance(workload.DenseVectors(1, 4, 2), metric); err == nil {
			t.Errorf("%s: wrong metric shape accepted", pl.Name())
		}
		if _, _, err := pl.Distance(nil, metric); err == nil {
			t.Errorf("%s: empty distance accepted", pl.Name())
		}
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, pl := range platforms() {
		if seen[pl.Name()] {
			t.Fatalf("duplicate platform name %q", pl.Name())
		}
		seen[pl.Name()] = true
	}
}

func TestSystemMLLocalModeThreshold(t *testing.T) {
	cl := newCluster()
	e := systemml.New(cl)
	data := workload.DenseVectors(3, 20, 3) // 60 cells << threshold: local
	if _, err := e.Gram(data); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Snapshot().ShuffleRounds != 0 {
		t.Fatal("local mode should not shuffle")
	}
	e.LocalThreshold = 1
	if _, err := e.Gram(data); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Snapshot().ShuffleRounds == 0 {
		t.Fatal("distributed mode should shuffle")
	}
}

func TestSparkDistanceChargesReplication(t *testing.T) {
	cl := newCluster()
	e := sparkml.New(cl)
	e.BlockSize = 8
	data := workload.DenseVectors(11, 40, 3)
	metric := workload.MetricMatrix(12, 3)
	if _, _, err := e.Distance(data, metric); err != nil {
		t.Fatal(err)
	}
	snap := cl.Stats().Snapshot()
	if snap.BroadcastRounds == 0 || snap.BytesShuffled == 0 {
		t.Fatalf("BlockMatrix multiply should replicate blocks: %+v", snap)
	}
}

// TestSystemMLMultiBlockGram forces the column dimension across several
// blocks (d > BlockSize), exercising the tiled accumulation path.
func TestSystemMLMultiBlockGram(t *testing.T) {
	e := systemml.New(newCluster())
	e.BlockSize = 8
	e.LocalThreshold = 1                      // distributed path
	data := workload.DenseVectors(21, 50, 20) // 20 dims -> 3 column blocks
	got, err := e.Gram(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(refGram(t, data), 1e-9) {
		t.Fatal("multi-block gram disagrees with reference")
	}
}

// TestSciDBMultiChunkDistance forces several chunks so the chunk-pair
// streaming covers boundary filtering across chunks.
func TestSciDBMultiChunkDistance(t *testing.T) {
	e := scidb.New(newCluster())
	e.ChunkSize = 7 // 30 points -> 5 chunks incl. a partial tail
	data := workload.DenseVectors(22, 30, 3)
	metric := workload.MetricMatrix(23, 3)
	idx, val, err := e.Distance(data, metric)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantVal := refDistance(t, data, metric)
	if idx != wantIdx || math.Abs(val-wantVal) > 1e-9 {
		t.Fatalf("multi-chunk distance (%d, %g), want (%d, %g)", idx, val, wantIdx, wantVal)
	}
}

// TestSparkMultiBlockDistance exercises BlockMatrix tiling with a partial
// tail block.
func TestSparkMultiBlockDistance(t *testing.T) {
	e := sparkml.New(newCluster())
	e.BlockSize = 9 // 30 points -> 4 blocks incl. partial tail
	data := workload.DenseVectors(24, 30, 3)
	metric := workload.MetricMatrix(25, 3)
	idx, val, err := e.Distance(data, metric)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantVal := refDistance(t, data, metric)
	if idx != wantIdx || math.Abs(val-wantVal) > 1e-9 {
		t.Fatalf("multi-block distance (%d, %g), want (%d, %g)", idx, val, wantIdx, wantVal)
	}
}
