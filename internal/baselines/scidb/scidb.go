// Package scidb simulates SciDB V14.8's execution profile for the paper's
// three benchmark computations. Data lives in fixed-size chunks of array
// rows (the paper used chunk size 1000); gemm runs chunk-local dense
// kernels with a tree of partial-sum reductions, and the distance query
// streams chunk pairs, filtering t1<>t2 and folding the per-row minimum on
// the fly instead of materializing the full n×n product — the strategy that
// makes SciDB the strongest distance performer in Figure 3.
package scidb

import (
	"fmt"
	"math"

	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

// Engine is one simulated SciDB instance.
type Engine struct {
	cl *cluster.Cluster
	// ChunkSize is the number of array rows per chunk (paper: 1000).
	ChunkSize int
}

// New returns an engine over the cluster.
func New(cl *cluster.Cluster) *Engine {
	return &Engine{cl: cl, ChunkSize: 1000}
}

// Name implements the benchmark platform interface.
func (e *Engine) Name() string { return "SciDB" }

// chunks splits the data into row chunks encoded as (chunkID, MATRIX) rows
// spread across the cluster.
func (e *Engine) chunks(data [][]float64) ([][]value.Row, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("scidb: empty input")
	}
	cs := e.ChunkSize
	var rows []value.Row
	for start := 0; start < len(data); start += cs {
		end := min(len(data), start+cs)
		m, err := linalg.MatrixFromRows(data[start:end])
		if err != nil {
			return nil, err
		}
		rows = append(rows, value.Row{value.Int(int64(start / cs)), value.Matrix(m)})
	}
	return e.cl.ScatterRoundRobin(rows), nil
}

// Gram evaluates gemm(transpose(x), x, zeros): each chunk contributes
// Xc^T·Xc, reduced across partitions.
func (e *Engine) Gram(data [][]float64) (*linalg.Matrix, error) {
	parts, err := e.chunks(data)
	if err != nil {
		return nil, err
	}
	d := len(data[0])
	partials := make([]*linalg.Matrix, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		acc := linalg.NewMatrix(d, d)
		for _, r := range parts[p] {
			c := r[1].Mat
			if err := c.Transpose().MulMatAddInto(acc, c); err != nil {
				return err
			}
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reduceMatrices(e.cl, partials)
}

// Regression solves the normal equations via two chunked gemms.
func (e *Engine) Regression(data [][]float64, y []float64) (*linalg.Vector, error) {
	if len(y) != len(data) {
		return nil, fmt.Errorf("scidb: %d targets for %d points", len(y), len(data))
	}
	parts, err := e.chunks(data)
	if err != nil {
		return nil, err
	}
	d := len(data[0])
	gparts := make([]*linalg.Matrix, e.cl.Partitions())
	vparts := make([]*linalg.Vector, e.cl.Partitions())
	cs := e.ChunkSize
	err = e.cl.Parallel(func(p int) error {
		gacc := linalg.NewMatrix(d, d)
		vacc := linalg.NewVector(d)
		for _, r := range parts[p] {
			c := r[1].Mat
			ct := c.Transpose()
			if err := ct.MulMatAddInto(gacc, c); err != nil {
				return err
			}
			base := int(r[0].I) * cs
			for i := 0; i < c.Rows; i++ {
				yi := y[base+i]
				row := c.Row(i)
				for j, x := range row {
					vacc.Data[j] += x * yi
				}
			}
		}
		gparts[p] = gacc
		vparts[p] = vacc
		return nil
	})
	if err != nil {
		return nil, err
	}
	G, err := reduceMatrices(e.cl, gparts)
	if err != nil {
		return nil, err
	}
	v := linalg.NewVector(d)
	for _, pv := range vparts {
		if pv != nil {
			if err := v.AddInPlace(pv); err != nil {
				return nil, err
			}
		}
	}
	inv, err := G.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(v)
}

// Distance runs the paper's AQL pipeline: mxt = gemm(m, transpose(x));
// all_distance = filter(gemm(x, mxt), t1<>t2); min per t1; argmax. The
// simulation streams chunk pairs (each partition receives a broadcast copy
// of mxt's chunks) and folds per-row minima without materializing n×n.
func (e *Engine) Distance(data [][]float64, metric *linalg.Matrix) (int, float64, error) {
	n := len(data)
	if n == 0 {
		return 0, 0, fmt.Errorf("scidb: empty input")
	}
	d := len(data[0])
	if metric.Rows != d || metric.Cols != d {
		return 0, 0, fmt.Errorf("scidb: metric is %dx%d for %d-dimensional data", metric.Rows, metric.Cols, d)
	}
	parts, err := e.chunks(data)
	if err != nil {
		return 0, 0, err
	}
	// mxt chunks: for each data chunk c, (m · c^T) is d×|c|; broadcast them.
	mxtLocal := make([][]value.Row, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		var rows []value.Row
		for _, r := range parts[p] {
			prod, err := metric.MulMat(r[1].Mat.Transpose())
			if err != nil {
				return err
			}
			rows = append(rows, value.Row{r[0], value.Matrix(prod)})
		}
		mxtLocal[p] = rows
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	mxt, err := e.cl.Broadcast(mxtLocal)
	if err != nil {
		return 0, 0, err
	}
	cs := e.ChunkSize
	type best struct {
		idx int
		val float64
	}
	bests := make([]best, e.cl.Partitions())
	err = e.cl.Parallel(func(p int) error {
		b := best{idx: -1, val: math.Inf(-1)}
		for _, r := range parts[p] {
			xc := r[1].Mat
			rowBase := int(r[0].I) * cs
			mins := make([]float64, xc.Rows)
			for i := range mins {
				mins[i] = math.Inf(1)
			}
			for _, mr := range mxt[p] {
				block, err := xc.MulMat(mr[1].Mat) // |c| × |c'| distances
				if err != nil {
					return err
				}
				colBase := int(mr[0].I) * cs
				for i := 0; i < block.Rows; i++ {
					row := block.Row(i)
					for j, v := range row {
						if rowBase+i == colBase+j {
							continue // filter t1 <> t2
						}
						if v < mins[i] {
							mins[i] = v
						}
					}
				}
			}
			for i, v := range mins {
				if v > b.val {
					b = best{idx: rowBase + i, val: v}
				}
			}
		}
		bests[p] = b
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	out := best{idx: -1, val: math.Inf(-1)}
	for _, b := range bests {
		if b.idx >= 0 && b.val > out.val {
			out = b
		}
	}
	if out.idx < 0 {
		return 0, 0, fmt.Errorf("scidb: no result")
	}
	return out.idx, out.val, nil
}

// reduceMatrices merges per-partition partials, charging remote partials as
// serialized network traffic.
func reduceMatrices(cl *cluster.Cluster, partials []*linalg.Matrix) (*linalg.Matrix, error) {
	var acc *linalg.Matrix
	for p, m := range partials {
		if m == nil {
			continue
		}
		if p != 0 {
			buf := value.AppendValue(nil, value.Matrix(m))
			cl.Stats().TuplesShuffled.Add(1)
			cl.Stats().BytesShuffled.Add(int64(len(buf)))
			cl.NetworkWait(int64(len(buf)))
			v, _, err := value.DecodeValue(buf)
			if err != nil {
				return nil, err
			}
			m = v.Mat
		}
		if acc == nil {
			acc = m.Clone()
			continue
		}
		if err := acc.AddInPlace(m); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("scidb: nothing to reduce")
	}
	return acc, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
