package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 entries.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must share a length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowVector returns a copy of row i as a Vector.
func (m *Matrix) RowVector(i int) *Vector {
	return VectorOf(m.Row(i)...)
}

// ColVector returns a copy of column j as a Vector.
func (m *Matrix) ColVector(j int) *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v.Data[i] = m.Data[i*m.Cols+j]
	}
	return v
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, x := range m.Data {
		if x != n.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports element-wise equality within tol.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, x := range m.Data {
		if math.Abs(x-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

func sameShape(a, b *Matrix, op string) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("%w: %s over matrices %dx%d and %dx%d", ErrShape, op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Add returns m + n element-wise.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "add"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x + n.Data[i]
	}
	return out, nil
}

// AddInPlace accumulates n into m. Used by the SUM aggregate.
func (m *Matrix) AddInPlace(n *Matrix) error {
	if err := sameShape(m, n, "add"); err != nil {
		return err
	}
	for i, x := range n.Data {
		m.Data[i] += x
	}
	return nil
}

// Sub returns m - n element-wise.
func (m *Matrix) Sub(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "subtract"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x - n.Data[i]
	}
	return out, nil
}

// Hadamard returns the element-wise product m ⊙ n (SQL operator *).
func (m *Matrix) Hadamard(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "multiply"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x * n.Data[i]
	}
	return out, nil
}

// Div returns the element-wise quotient m / n.
func (m *Matrix) Div(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "divide"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x / n.Data[i]
	}
	return out, nil
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x * s
	}
	return out
}

// ScaleAdd returns m + s element-wise (scalar broadcast).
func (m *Matrix) ScaleAdd(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x + s
	}
	return out
}

// ScaleDiv returns m / s element-wise.
func (m *Matrix) ScaleDiv(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x / s
	}
	return out
}

// ScaleRDiv returns s / m element-wise (scalar on the left).
func (m *Matrix) ScaleRDiv(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = s / x
	}
	return out
}

// ScaleRSub returns s - m element-wise (scalar on the left).
func (m *Matrix) ScaleRSub(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = s - x
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	m.transposeRowsInto(out, 0, m.Rows)
	return out
}

// transposeRowsInto writes the transpose of rows [r0, r1) of m into the
// corresponding columns of out (which must be m.Cols × m.Rows). Row ranges
// map to disjoint output columns, so disjoint ranges can run concurrently.
func (m *Matrix) transposeRowsInto(out *Matrix, r0, r1 int) {
	// Blocked transpose for cache friendliness on large matrices.
	const bs = 64
	for i0 := r0; i0 < r1; i0 += bs {
		imax := min(i0+bs, r1)
		for j0 := 0; j0 < m.Cols; j0 += bs {
			jmax := min(j0+bs, m.Cols)
			for i := i0; i < imax; i++ {
				for j := j0; j < jmax; j++ {
					out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
				}
			}
		}
	}
}

// MulMat returns the matrix product m · n.
func (m *Matrix) MulMat(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	m.mulMatInto(out, n)
	return out, nil
}

// MulMatAddInto accumulates m · n into dst (dst must be m.Rows × n.Cols).
// This is the kernel behind SUM(matrix_multiply(a, b)) in blocked plans.
func (m *Matrix) MulMatAddInto(dst, n *Matrix) error {
	if m.Cols != n.Rows {
		return fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != n.Cols {
		return fmt.Errorf("%w: accumulate %dx%d into %dx%d", ErrShape, m.Rows, n.Cols, dst.Rows, dst.Cols)
	}
	m.mulMatInto(dst, n)
	return nil
}

// mulPanelCols is the column-panel width of the tiled multiply kernel: the
// working set of one microtile pass (two output row panels plus four
// streamed rows of n) is 6·512·8 bytes ≈ 24 KB, inside a typical 32 KB L1d,
// so wide right-hand sides never thrash the cache.
const mulPanelCols = 512

// mulPanelK is the k-block depth: a mulPanelK × mulPanelCols panel of n
// (512 KB) stays L2-resident while every row pair of m streams over it, so
// n is read from memory once per panel instead of once per row pair.
const mulPanelK = 128

// mulMatInto accumulates m·n into out via the tiled kernel.
func (m *Matrix) mulMatInto(out, n *Matrix) {
	m.mulMatRowsInto(out, n, 0, m.Rows)
}

// mulMatRowsInto accumulates rows [i0, i1) of m·n into the same rows of out.
// The kernel is cache-blocked over mulPanelCols-wide column panels and
// mulPanelK-deep k blocks of n, and register-blocked on a 2×4 microtile:
// two output rows share the four streamed rows of n (halving loads per
// multiply-add), and four k steps amortize the load/store of each output
// element. Per output element the k terms still accumulate left-to-right in
// ascending k order — k blocks are visited ascending and each appends its
// ascending-k partial products onto the stored element — so the result is
// bit-for-bit identical to the straightforward ikj reference kernel: tiling
// and row-parallel dispatch never change a single ulp.
func (m *Matrix) mulMatRowsInto(out, n *Matrix, i0, i1 int) {
	K := m.Cols
	for p0 := 0; p0 < n.Cols; p0 += mulPanelCols {
		p1 := min(p0+mulPanelCols, n.Cols)
		for k0 := 0; k0 < K; k0 += mulPanelK {
			k1 := min(k0+mulPanelK, K)
			m.mulMatBlock(out, n, i0, i1, p0, p1, k0, k1)
		}
	}
}

// mulMatBlock accumulates the k-range [k0, k1) contribution of rows
// [i0, i1) of m·n into columns [p0, p1) of out.
func (m *Matrix) mulMatBlock(out, n *Matrix, i0, i1, p0, p1, k0, k1 int) {
	K := m.Cols
	var i int
	for i = i0; i+2 <= i1; i += 2 {
		mr0 := m.Data[i*K : (i+1)*K]
		mr1 := m.Data[(i+1)*K : (i+2)*K]
		or0 := out.Data[i*out.Cols+p0 : i*out.Cols+p1]
		or1 := out.Data[(i+1)*out.Cols+p0 : (i+1)*out.Cols+p1]
		_ = or1[len(or0)-1]
		var k int
		for k = k0; k+4 <= k1; k += 4 {
			a0, a1, a2, a3 := mr0[k], mr0[k+1], mr0[k+2], mr0[k+3]
			b0, b1, b2, b3 := mr1[k], mr1[k+1], mr1[k+2], mr1[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 &&
				b0 == 0 && b1 == 0 && b2 == 0 && b3 == 0 {
				continue
			}
			n0 := n.Data[k*n.Cols+p0 : k*n.Cols+p1]
			n1 := n.Data[(k+1)*n.Cols+p0 : (k+1)*n.Cols+p1]
			n2 := n.Data[(k+2)*n.Cols+p0 : (k+2)*n.Cols+p1]
			n3 := n.Data[(k+3)*n.Cols+p0 : (k+3)*n.Cols+p1]
			// Anchor the shared panel length so the compiler drops the
			// bounds checks inside the hot loop.
			_ = n0[len(or0)-1]
			_ = n1[len(or0)-1]
			_ = n2[len(or0)-1]
			_ = n3[len(or0)-1]
			for j := range or0 {
				v0, v1, v2, v3 := n0[j], n1[j], n2[j], n3[j]
				or0[j] = or0[j] + a0*v0 + a1*v1 + a2*v2 + a3*v3
				or1[j] = or1[j] + b0*v0 + b1*v1 + b2*v2 + b3*v3
			}
		}
		for ; k < k1; k++ {
			a, b := mr0[k], mr1[k]
			if a == 0 && b == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols+p0 : k*n.Cols+p1]
			_ = nrow[len(or0)-1]
			for j := range or0 {
				v := nrow[j]
				or0[j] += a * v
				or1[j] += b * v
			}
		}
	}
	for ; i < i1; i++ {
		mrow := m.Data[i*K : (i+1)*K]
		orow := out.Data[i*out.Cols+p0 : i*out.Cols+p1]
		var k int
		for k = k0; k+4 <= k1; k += 4 {
			a0, a1, a2, a3 := mrow[k], mrow[k+1], mrow[k+2], mrow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			n0 := n.Data[k*n.Cols+p0 : k*n.Cols+p1]
			n1 := n.Data[(k+1)*n.Cols+p0 : (k+1)*n.Cols+p1]
			n2 := n.Data[(k+2)*n.Cols+p0 : (k+2)*n.Cols+p1]
			n3 := n.Data[(k+3)*n.Cols+p0 : (k+3)*n.Cols+p1]
			_ = n0[len(orow)-1]
			_ = n1[len(orow)-1]
			_ = n2[len(orow)-1]
			_ = n3[len(orow)-1]
			for j := range orow {
				orow[j] = orow[j] + a0*n0[j] + a1*n1[j] + a2*n2[j] + a3*n3[j]
			}
		}
		for ; k < k1; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols+p0 : k*n.Cols+p1]
			_ = nrow[len(orow)-1]
			for j := range orow {
				orow[j] += a * nrow[j]
			}
		}
	}
}

// RefMulMat multiplies with the seed scalar kernel: the plain ikj loop that
// predates tiling, kept verbatim as (a) the bit-for-bit reference that the
// tiled and parallel kernels are property-tested against and (b) the
// baseline the kernel benchmark reports speedups over.
func RefMulMat(m, n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	m.refMulMatInto(out, n)
	return out, nil
}

// refMulMatInto is the seed ikj kernel: streams n and out row-wise, skips
// zero left-hand entries.
func (m *Matrix) refMulMatInto(out, n *Matrix) {
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, b := range nrow {
				orow[j] += a * b
			}
		}
	}
}

// MulVec returns m · v, treating v as a column vector.
func (m *Matrix) MulVec(v *Vector) (*Vector, error) {
	if m.Cols != v.Len() {
		return nil, fmt.Errorf("%w: matrix_vector_multiply %dx%d by vector of length %d", ErrShape, m.Rows, m.Cols, v.Len())
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v.Data[j]
		}
		out.Data[i] = s
	}
	return out, nil
}

// VecMul returns vᵀ · m, treating v as a row vector.
func (m *Matrix) VecMul(v *Vector) (*Vector, error) {
	if m.Rows != v.Len() {
		return nil, fmt.Errorf("%w: vector_matrix_multiply vector of length %d by %dx%d", ErrShape, v.Len(), m.Rows, m.Cols)
	}
	out := NewVector(m.Cols)
	for i, a := range v.Data {
		if a == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, b := range row {
			out.Data[j] += a * b
		}
	}
	return out, nil
}

// Diag returns the main diagonal of a square matrix.
func (m *Matrix) Diag() (*Vector, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: diag of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v.Data[i] = m.At(i, i)
	}
	return v, nil
}

// DiagMatrix returns the square matrix with v on the main diagonal.
func DiagMatrix(v *Vector) *Matrix {
	m := NewMatrix(v.Len(), v.Len())
	for i, x := range v.Data {
		m.Set(i, i, x)
	}
	return m
}

// Trace returns the sum of the main diagonal of a square matrix.
func (m *Matrix) Trace() (float64, error) {
	if m.Rows != m.Cols {
		return 0, fmt.Errorf("%w: trace of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s, nil
}

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting. It returns an error for non-square or (numerically) singular
// input.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: inverse of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot, pmax := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > pmax {
				pivot, pmax = r, abs
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("linalg: matrix_inverse of singular matrix (pivot %d)", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		scaleRow(a, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(a, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

// Solve returns x with m·x = b via the inverse path. b is treated as a column
// vector. Intended for the small normal-equation systems in the examples.
func (m *Matrix) Solve(b *Vector) (*Vector, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, i int, s float64) {
	r := m.Row(i)
	for k := range r {
		r[k] *= s
	}
}

// axpyRow adds f * row[src] to row[dst].
func axpyRow(m *Matrix, dst, src int, f float64) {
	rd, rs := m.Row(dst), m.Row(src)
	for k := range rd {
		rd[k] += f * rs[k]
	}
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, x := range m.Data {
		s += x
	}
	return s
}

// Min returns the minimum entry; +Inf for the empty matrix.
func (m *Matrix) Min() float64 {
	s := math.Inf(1)
	for _, x := range m.Data {
		if x < s {
			s = x
		}
	}
	return s
}

// Max returns the maximum entry; -Inf for the empty matrix.
func (m *Matrix) Max() float64 {
	s := math.Inf(-1)
	for _, x := range m.Data {
		if x > s {
			s = x
		}
	}
	return s
}

// RowMins returns the per-row minimum (SystemML's rowMins).
func (m *Matrix) RowMins() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := math.Inf(1)
		for _, x := range row {
			if x < s {
				s = x
			}
		}
		v.Data[i] = s
	}
	return v
}

// RowMaxs returns the per-row maximum.
func (m *Matrix) RowMaxs() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := math.Inf(-1)
		for _, x := range row {
			if x > s {
				s = x
			}
		}
		v.Data[i] = s
	}
	return v
}

// RowSums returns the per-row sum.
func (m *Matrix) RowSums() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, x := range m.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	return v
}

// ColSums returns the per-column sum.
func (m *Matrix) ColSums() *Vector {
	v := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	return v
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// SubMatrix returns the copy of rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) (*Matrix, error) {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		return nil, fmt.Errorf("%w: submatrix [%d:%d, %d:%d] of %dx%d", ErrShape, r0, r1, c0, c1, m.Rows, m.Cols)
	}
	out := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out, nil
}

// SetSubMatrix copies src into m starting at (r0, c0).
func (m *Matrix) SetSubMatrix(r0, c0 int, src *Matrix) error {
	if r0 < 0 || c0 < 0 || r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		return fmt.Errorf("%w: set submatrix %dx%d at (%d,%d) of %dx%d", ErrShape, src.Rows, src.Cols, r0, c0, m.Rows, m.Cols)
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
	return nil
}
