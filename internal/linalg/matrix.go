package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 entries.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must share a length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowVector returns a copy of row i as a Vector.
func (m *Matrix) RowVector(i int) *Vector {
	return VectorOf(m.Row(i)...)
}

// ColVector returns a copy of column j as a Vector.
func (m *Matrix) ColVector(j int) *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v.Data[i] = m.Data[i*m.Cols+j]
	}
	return v
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, x := range m.Data {
		if x != n.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports element-wise equality within tol.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, x := range m.Data {
		if math.Abs(x-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

func sameShape(a, b *Matrix, op string) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("%w: %s over matrices %dx%d and %dx%d", ErrShape, op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Add returns m + n element-wise.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "add"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x + n.Data[i]
	}
	return out, nil
}

// AddInPlace accumulates n into m. Used by the SUM aggregate.
func (m *Matrix) AddInPlace(n *Matrix) error {
	if err := sameShape(m, n, "add"); err != nil {
		return err
	}
	for i, x := range n.Data {
		m.Data[i] += x
	}
	return nil
}

// Sub returns m - n element-wise.
func (m *Matrix) Sub(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "subtract"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x - n.Data[i]
	}
	return out, nil
}

// Hadamard returns the element-wise product m ⊙ n (SQL operator *).
func (m *Matrix) Hadamard(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "multiply"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x * n.Data[i]
	}
	return out, nil
}

// Div returns the element-wise quotient m / n.
func (m *Matrix) Div(n *Matrix) (*Matrix, error) {
	if err := sameShape(m, n, "divide"); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x / n.Data[i]
	}
	return out, nil
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x * s
	}
	return out
}

// ScaleAdd returns m + s element-wise (scalar broadcast).
func (m *Matrix) ScaleAdd(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x + s
	}
	return out
}

// ScaleDiv returns m / s element-wise.
func (m *Matrix) ScaleDiv(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x / s
	}
	return out
}

// ScaleRDiv returns s / m element-wise (scalar on the left).
func (m *Matrix) ScaleRDiv(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = s / x
	}
	return out
}

// ScaleRSub returns s - m element-wise (scalar on the left).
func (m *Matrix) ScaleRSub(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = s - x
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	// Blocked transpose for cache friendliness on large matrices.
	const bs = 64
	for i0 := 0; i0 < m.Rows; i0 += bs {
		imax := min(i0+bs, m.Rows)
		for j0 := 0; j0 < m.Cols; j0 += bs {
			jmax := min(j0+bs, m.Cols)
			for i := i0; i < imax; i++ {
				for j := j0; j < jmax; j++ {
					out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
				}
			}
		}
	}
	return out
}

// MulMat returns the matrix product m · n.
func (m *Matrix) MulMat(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	m.mulMatInto(out, n)
	return out, nil
}

// MulMatAddInto accumulates m · n into dst (dst must be m.Rows × n.Cols).
// This is the kernel behind SUM(matrix_multiply(a, b)) in blocked plans.
func (m *Matrix) MulMatAddInto(dst, n *Matrix) error {
	if m.Cols != n.Rows {
		return fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != n.Cols {
		return fmt.Errorf("%w: accumulate %dx%d into %dx%d", ErrShape, m.Rows, n.Cols, dst.Rows, dst.Cols)
	}
	m.mulMatInto(dst, n)
	return nil
}

// mulMatInto accumulates m·n into out using an ikj loop order, which streams
// both n and out row-wise (cache friendly) and vectorizes well.
func (m *Matrix) mulMatInto(out, n *Matrix) {
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, b := range nrow {
				orow[j] += a * b
			}
		}
	}
}

// MulVec returns m · v, treating v as a column vector.
func (m *Matrix) MulVec(v *Vector) (*Vector, error) {
	if m.Cols != v.Len() {
		return nil, fmt.Errorf("%w: matrix_vector_multiply %dx%d by vector of length %d", ErrShape, m.Rows, m.Cols, v.Len())
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v.Data[j]
		}
		out.Data[i] = s
	}
	return out, nil
}

// VecMul returns vᵀ · m, treating v as a row vector.
func (m *Matrix) VecMul(v *Vector) (*Vector, error) {
	if m.Rows != v.Len() {
		return nil, fmt.Errorf("%w: vector_matrix_multiply vector of length %d by %dx%d", ErrShape, v.Len(), m.Rows, m.Cols)
	}
	out := NewVector(m.Cols)
	for i, a := range v.Data {
		if a == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, b := range row {
			out.Data[j] += a * b
		}
	}
	return out, nil
}

// Diag returns the main diagonal of a square matrix.
func (m *Matrix) Diag() (*Vector, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: diag of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v.Data[i] = m.At(i, i)
	}
	return v, nil
}

// DiagMatrix returns the square matrix with v on the main diagonal.
func DiagMatrix(v *Vector) *Matrix {
	m := NewMatrix(v.Len(), v.Len())
	for i, x := range v.Data {
		m.Set(i, i, x)
	}
	return m
}

// Trace returns the sum of the main diagonal of a square matrix.
func (m *Matrix) Trace() (float64, error) {
	if m.Rows != m.Cols {
		return 0, fmt.Errorf("%w: trace of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s, nil
}

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting. It returns an error for non-square or (numerically) singular
// input.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: inverse of non-square %dx%d matrix", ErrShape, m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot, pmax := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > pmax {
				pivot, pmax = r, abs
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("linalg: matrix_inverse of singular matrix (pivot %d)", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		scaleRow(a, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(a, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

// Solve returns x with m·x = b via the inverse path. b is treated as a column
// vector. Intended for the small normal-equation systems in the examples.
func (m *Matrix) Solve(b *Vector) (*Vector, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, i int, s float64) {
	r := m.Row(i)
	for k := range r {
		r[k] *= s
	}
}

// axpyRow adds f * row[src] to row[dst].
func axpyRow(m *Matrix, dst, src int, f float64) {
	rd, rs := m.Row(dst), m.Row(src)
	for k := range rd {
		rd[k] += f * rs[k]
	}
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, x := range m.Data {
		s += x
	}
	return s
}

// Min returns the minimum entry; +Inf for the empty matrix.
func (m *Matrix) Min() float64 {
	s := math.Inf(1)
	for _, x := range m.Data {
		if x < s {
			s = x
		}
	}
	return s
}

// Max returns the maximum entry; -Inf for the empty matrix.
func (m *Matrix) Max() float64 {
	s := math.Inf(-1)
	for _, x := range m.Data {
		if x > s {
			s = x
		}
	}
	return s
}

// RowMins returns the per-row minimum (SystemML's rowMins).
func (m *Matrix) RowMins() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := math.Inf(1)
		for _, x := range row {
			if x < s {
				s = x
			}
		}
		v.Data[i] = s
	}
	return v
}

// RowMaxs returns the per-row maximum.
func (m *Matrix) RowMaxs() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := math.Inf(-1)
		for _, x := range row {
			if x > s {
				s = x
			}
		}
		v.Data[i] = s
	}
	return v
}

// RowSums returns the per-row sum.
func (m *Matrix) RowSums() *Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, x := range m.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	return v
}

// ColSums returns the per-column sum.
func (m *Matrix) ColSums() *Vector {
	v := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	return v
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// SubMatrix returns the copy of rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) (*Matrix, error) {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		return nil, fmt.Errorf("%w: submatrix [%d:%d, %d:%d] of %dx%d", ErrShape, r0, r1, c0, c1, m.Rows, m.Cols)
	}
	out := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out, nil
}

// SetSubMatrix copies src into m starting at (r0, c0).
func (m *Matrix) SetSubMatrix(r0, c0 int, src *Matrix) error {
	if r0 < 0 || c0 < 0 || r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		return fmt.Errorf("%w: set submatrix %dx%d at (%d,%d) of %dx%d", ErrShape, src.Rows, src.Cols, r0, c0, m.Rows, m.Cols)
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
	return nil
}
