// Package linalg provides the dense linear-algebra kernels that back the
// engine's VECTOR and MATRIX column types. Everything is float64, row-major,
// and implemented from scratch on the standard library only.
//
// The kernels are deliberately allocation-explicit: operations that produce a
// new object allocate it, operations suffixed Into write into a caller-owned
// destination so hot loops (aggregation, blocked multiply) can reuse buffers.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is wrapped by every dimension-mismatch error in this package.
var ErrShape = errors.New("linalg: shape mismatch")

// Vector is a dense vector of float64 entries. In the relational extension
// there is no distinction between row and column vectors; each operation
// documents its own interpretation (matching the paper, §3.1).
type Vector struct {
	Data []float64
}

// NewVector returns a zero vector with n entries.
func NewVector(n int) *Vector {
	return &Vector{Data: make([]float64, n)}
}

// VectorOf returns a vector wrapping a copy of the given entries.
func VectorOf(entries ...float64) *Vector {
	d := make([]float64, len(entries))
	copy(d, entries)
	return &Vector{Data: d}
}

// Len returns the number of entries.
func (v *Vector) Len() int { return len(v.Data) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return VectorOf(v.Data...)
}

// At returns entry i.
func (v *Vector) At(i int) float64 { return v.Data[i] }

// Set assigns entry i.
func (v *Vector) Set(i int, x float64) { v.Data[i] = x }

// Equal reports exact element-wise equality.
func (v *Vector) Equal(w *Vector) bool {
	if v.Len() != w.Len() {
		return false
	}
	for i, x := range v.Data {
		if x != w.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports element-wise equality within tol.
func (v *Vector) EqualApprox(w *Vector, tol float64) bool {
	if v.Len() != w.Len() {
		return false
	}
	for i, x := range v.Data {
		if math.Abs(x-w.Data[i]) > tol {
			return false
		}
	}
	return true
}

func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v.Data {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(']')
	return b.String()
}

func sameLen(a, b *Vector, op string) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("%w: %s over vectors of length %d and %d", ErrShape, op, a.Len(), b.Len())
	}
	return nil
}

// Add returns v + w element-wise.
func (v *Vector) Add(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "add"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x + w.Data[i]
	}
	return out, nil
}

// AddInPlace accumulates w into v. Used by the SUM aggregate.
func (v *Vector) AddInPlace(w *Vector) error {
	if err := sameLen(v, w, "add"); err != nil {
		return err
	}
	for i, x := range w.Data {
		v.Data[i] += x
	}
	return nil
}

// Sub returns v - w element-wise.
func (v *Vector) Sub(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "subtract"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x - w.Data[i]
	}
	return out, nil
}

// Mul returns the Hadamard (element-wise) product v ⊙ w.
func (v *Vector) Mul(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "multiply"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x * w.Data[i]
	}
	return out, nil
}

// Div returns the element-wise quotient v / w.
func (v *Vector) Div(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "divide"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x / w.Data[i]
	}
	return out, nil
}

// ScaleAdd returns v + s element-wise (scalar broadcast, per paper §3.2).
func (v *Vector) ScaleAdd(s float64) *Vector {
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x + s
	}
	return out
}

// Scale returns s * v.
func (v *Vector) Scale(s float64) *Vector {
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x * s
	}
	return out
}

// ScaleDiv returns v / s element-wise.
func (v *Vector) ScaleDiv(s float64) *Vector {
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = x / s
	}
	return out
}

// ScaleRDiv returns s / v element-wise (scalar on the left).
func (v *Vector) ScaleRDiv(s float64) *Vector {
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = s / x
	}
	return out
}

// ScaleRSub returns s - v element-wise (scalar on the left).
func (v *Vector) ScaleRSub(s float64) *Vector {
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = s - x
	}
	return out
}

// Dot returns the inner product <v, w>.
func (v *Vector) Dot(w *Vector) (float64, error) {
	if err := sameLen(v, w, "inner_product"); err != nil {
		return 0, err
	}
	var s float64
	for i, x := range v.Data {
		s += x * w.Data[i]
	}
	return s, nil
}

// Outer returns the outer product v wᵀ as a Len(v)×Len(w) matrix.
func (v *Vector) Outer(w *Vector) *Matrix {
	m := NewMatrix(v.Len(), w.Len())
	for i, x := range v.Data {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, y := range w.Data {
			row[j] = x * y
		}
	}
	return m
}

// OuterAddInto accumulates v wᵀ into dst, which must be Len(v)×Len(w).
// This is the allocation-free kernel behind SUM(outer_product(x, x)).
func (v *Vector) OuterAddInto(dst *Matrix, w *Vector) error {
	if dst.Rows != v.Len() || dst.Cols != w.Len() {
		return fmt.Errorf("%w: outer accumulate %dx%d into %dx%d", ErrShape, v.Len(), w.Len(), dst.Rows, dst.Cols)
	}
	for i, x := range v.Data {
		row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j, y := range w.Data {
			row[j] += x * y
		}
	}
	return nil
}

// Sum returns the sum of all entries.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.Data {
		s += x
	}
	return s
}

// Min returns the minimum entry; +Inf for the empty vector.
func (v *Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v.Data {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum entry; -Inf for the empty vector.
func (v *Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v.Data {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the minimum entry (-1 if empty).
func (v *Vector) ArgMin() int {
	idx, m := -1, math.Inf(1)
	for i, x := range v.Data {
		if x < m {
			m, idx = x, i
		}
	}
	return idx
}

// ArgMax returns the index of the maximum entry (-1 if empty).
func (v *Vector) ArgMax() int {
	idx, m := -1, math.Inf(-1)
	for i, x := range v.Data {
		if x > m {
			m, idx = x, i
		}
	}
	return idx
}

// Norm2 returns the Euclidean norm.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, x := range v.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// AsRowMatrix returns a 1×n matrix sharing no storage with v.
func (v *Vector) AsRowMatrix() *Matrix {
	m := NewMatrix(1, v.Len())
	copy(m.Data, v.Data)
	return m
}

// AsColMatrix returns an n×1 matrix sharing no storage with v.
func (v *Vector) AsColMatrix() *Matrix {
	m := NewMatrix(v.Len(), 1)
	copy(m.Data, v.Data)
	return m
}

// MinPairwise returns the element-wise minimum of v and w.
func (v *Vector) MinPairwise(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "min"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = math.Min(x, w.Data[i])
	}
	return out, nil
}

// MaxPairwise returns the element-wise maximum of v and w.
func (v *Vector) MaxPairwise(w *Vector) (*Vector, error) {
	if err := sameLen(v, w, "max"); err != nil {
		return nil, err
	}
	out := NewVector(v.Len())
	for i, x := range v.Data {
		out.Data[i] = math.Max(x, w.Data[i])
	}
	return out, nil
}
