package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// ParallelMulMat computes m · n splitting the rows of m across workers
// goroutines. workers <= 0 selects GOMAXPROCS. For small products it falls
// back to the serial kernel (goroutine fan-out costs more than it saves).
func ParallelMulMat(m, n *Matrix, workers int) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const serialThreshold = 1 << 18 // ~256k multiply-adds
	if workers == 1 || m.Rows*m.Cols*n.Cols < serialThreshold {
		return m.MulMat(n)
	}
	out := NewMatrix(m.Rows, n.Cols)
	if workers > m.Rows {
		workers = m.Rows
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
			dst := &Matrix{Rows: hi - lo, Cols: out.Cols, Data: out.Data[lo*out.Cols : hi*out.Cols]}
			sub.mulMatInto(dst, n)
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
