package linalg

import (
	"fmt"
	"math"
)

// This file holds the parallel entry points for the heavy kernels. They all
// share the policy in pool.go: workers <= 0 draws from the package budget
// (SetDefaultWorkers), small inputs run serially, and every kernel returns a
// result that is bit-for-bit independent of the worker count — splitting
// never reorders the per-element accumulation (products split output rows or
// columns; reductions combine fixed-size chunk partials in ascending order).

// ParallelMulMat computes m · n splitting the rows of m across workers
// goroutines. Each worker runs the tiled kernel over its own block of output
// rows, so the result is identical to the serial product for every worker
// count.
func ParallelMulMat(m, n *Matrix, workers int) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("%w: matrix_multiply %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	w := planWorkers(workers, m.Rows, m.Rows*m.Cols*n.Cols)
	parallelRanges(m.Rows, w, func(lo, hi int) {
		m.mulMatRowsInto(out, n, lo, hi)
	})
	return out, nil
}

// ParallelTranspose computes mᵀ splitting the rows of m across workers.
// Workers write disjoint columns of the output, so no synchronization beyond
// the final join is needed.
func ParallelTranspose(m *Matrix, workers int) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	w := planWorkers(workers, m.Rows, m.Rows*m.Cols)
	parallelRanges(m.Rows, w, func(lo, hi int) {
		m.transposeRowsInto(out, lo, hi)
	})
	return out
}

// ParallelMulVec computes m · v splitting the rows of m across workers. Each
// output entry is one row's dot product, accumulated in ascending column
// order by exactly one worker — identical to the serial kernel.
func ParallelMulVec(m *Matrix, v *Vector, workers int) (*Vector, error) {
	if m.Cols != v.Len() {
		return nil, fmt.Errorf("%w: matrix_vector_multiply %dx%d by vector of length %d", ErrShape, m.Rows, m.Cols, v.Len())
	}
	out := NewVector(m.Rows)
	w := planWorkers(workers, m.Rows, m.Rows*m.Cols)
	parallelRanges(m.Rows, w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			var s float64
			for j, a := range row {
				s += a * v.Data[j]
			}
			out.Data[i] = s
		}
	})
	return out, nil
}

// ParallelVecMul computes vᵀ · m splitting the columns of m across workers:
// rows cannot be split without reassociating the per-column accumulation, so
// each worker instead owns a column band and walks every row of m in
// ascending order within it — the same per-element order as the serial
// kernel, streamed row-wise for cache friendliness.
func ParallelVecMul(m *Matrix, v *Vector, workers int) (*Vector, error) {
	if m.Rows != v.Len() {
		return nil, fmt.Errorf("%w: vector_matrix_multiply vector of length %d by %dx%d", ErrShape, v.Len(), m.Rows, m.Cols)
	}
	out := NewVector(m.Cols)
	w := planWorkers(workers, m.Cols, m.Rows*m.Cols)
	parallelRanges(m.Cols, w, func(c0, c1 int) {
		for i, a := range v.Data {
			if a == 0 {
				continue
			}
			row := m.Data[i*m.Cols+c0 : i*m.Cols+c1]
			dst := out.Data[c0:c1]
			for j, b := range row {
				dst[j] += a * b
			}
		}
	})
	return out, nil
}

// ParallelAdd returns m + n element-wise, splitting the backing slice.
func ParallelAdd(m, n *Matrix, workers int) (*Matrix, error) {
	return parallelBinary(m, n, workers, "add", func(dst, a, b []float64) {
		for i, x := range a {
			dst[i] = x + b[i]
		}
	})
}

// ParallelSub returns m - n element-wise, splitting the backing slice.
func ParallelSub(m, n *Matrix, workers int) (*Matrix, error) {
	return parallelBinary(m, n, workers, "subtract", func(dst, a, b []float64) {
		for i, x := range a {
			dst[i] = x - b[i]
		}
	})
}

// ParallelHadamard returns m ⊙ n element-wise, splitting the backing slice.
func ParallelHadamard(m, n *Matrix, workers int) (*Matrix, error) {
	return parallelBinary(m, n, workers, "multiply", func(dst, a, b []float64) {
		for i, x := range a {
			dst[i] = x * b[i]
		}
	})
}

// ParallelDiv returns m / n element-wise, splitting the backing slice.
func ParallelDiv(m, n *Matrix, workers int) (*Matrix, error) {
	return parallelBinary(m, n, workers, "divide", func(dst, a, b []float64) {
		for i, x := range a {
			dst[i] = x / b[i]
		}
	})
}

// parallelBinary applies a vectorizable binary op over same-shaped matrices,
// splitting the flat data across workers. Each element is written by exactly
// one worker, so the result never depends on the worker count.
func parallelBinary(m, n *Matrix, workers int, op string, f func(dst, a, b []float64)) (*Matrix, error) {
	if err := sameShape(m, n, op); err != nil {
		return nil, err
	}
	out := NewMatrix(m.Rows, m.Cols)
	w := planWorkers(workers, len(m.Data), len(m.Data))
	parallelRanges(len(m.Data), w, func(lo, hi int) {
		f(out.Data[lo:hi], m.Data[lo:hi], n.Data[lo:hi])
	})
	return out, nil
}

// ParallelSum returns the sum of all entries. The data is always reduced as
// fixed-size chunk partials (reduceChunk) combined in ascending chunk order,
// so the returned float64 is identical for every worker count, including the
// serial path. It can differ from the plain left-to-right Sum by ordinary
// rounding (the chunk tree is a different but fixed association).
func ParallelSum(m *Matrix, workers int) float64 {
	return chunkedReduce(m.Data, workers, 0, func(partial float64, chunk []float64) float64 {
		for _, x := range chunk {
			partial += x
		}
		return partial
	}, func(a, b float64) float64 { return a + b })
}

// ParallelMin returns the minimum entry (+Inf for the empty matrix),
// reducing fixed-size chunks in parallel. Min is order-insensitive, so the
// result matches the serial kernel exactly.
func ParallelMin(m *Matrix, workers int) float64 {
	return chunkedReduce(m.Data, workers, math.Inf(1), func(partial float64, chunk []float64) float64 {
		for _, x := range chunk {
			if x < partial {
				partial = x
			}
		}
		return partial
	}, math.Min)
}

// ParallelMax returns the maximum entry (-Inf for the empty matrix),
// reducing fixed-size chunks in parallel.
func ParallelMax(m *Matrix, workers int) float64 {
	return chunkedReduce(m.Data, workers, math.Inf(-1), func(partial float64, chunk []float64) float64 {
		for _, x := range chunk {
			if x > partial {
				partial = x
			}
		}
		return partial
	}, math.Max)
}

// chunkedReduce reduces data to a scalar: the slice is cut into fixed
// reduceChunk-sized pieces, each piece folds serially from identity, and the
// per-chunk partials combine in ascending chunk order. Workers claim
// contiguous chunk ranges, so the partial list — and therefore the result —
// is the same for every worker count.
func chunkedReduce(data []float64, workers int, identity float64, fold func(float64, []float64) float64, combine func(float64, float64) float64) float64 {
	nchunks := (len(data) + reduceChunk - 1) / reduceChunk
	if nchunks <= 1 {
		return fold(identity, data)
	}
	partials := make([]float64, nchunks)
	w := planWorkers(workers, nchunks, len(data))
	parallelRanges(nchunks, w, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := min((c+1)*reduceChunk, len(data))
			partials[c] = fold(identity, data[c*reduceChunk:end])
		}
	})
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc
}
