package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel worker budget. Every Parallel* entry point in this package
// resolves a caller-supplied worker count against this package-wide budget:
// workers <= 0 means "use the budget". The engine sets the budget from the
// cluster shape (cluster.Config.KernelWorkers) so that per-tuple kernel
// parallelism composes with partition parallelism instead of oversubscribing
// the machine — with P partition goroutines already running, each kernel may
// only fan out GOMAXPROCS/P ways. Library users who never set a budget get
// GOMAXPROCS, the right default for standalone use.
var kernelWorkers atomic.Int64

// SetDefaultWorkers sets the package-wide kernel worker budget. n <= 0
// restores the GOMAXPROCS default.
//
// Deprecated: the budget is process-global, so two engines in one process
// stomp each other's parallelism. The engine now threads a per-query budget
// into every kernel call (builtins.EvalCtx / exec.Context.KernelWorkers);
// this setter remains only as a fallback default for standalone library use
// and sets nothing the engine itself relies on.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int64(n))
}

// DefaultWorkers returns the current kernel worker budget.
func DefaultWorkers() int {
	if n := kernelWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMinWork is the number of scalar operations (multiply-adds for
// products, element visits for maps and reductions) below which every kernel
// runs serially: goroutine fan-out costs on the order of microseconds, which
// only amortizes once a kernel has at least ~10^5 operations to split. This
// single threshold replaces the per-kernel ad-hoc cutoffs.
const parallelMinWork = 1 << 18

// reduceChunk is the fixed partial-sum granularity for parallel reductions.
// Partials are always formed per chunk and combined in ascending chunk
// order, so a reduction returns the identical float64 for every worker
// count (including 1) — worker count is a performance knob, never a source
// of numeric nondeterminism.
const reduceChunk = 1 << 15

// planWorkers resolves a requested worker count: workers <= 0 draws from the
// package budget, the count is clamped to GOMAXPROCS (a CPU-bound kernel
// never gains from more goroutines than schedulable threads — it only pays
// scheduling and cache-handoff overhead) and to the number of splittable
// units, and kernels under the serial threshold get 1.
func planWorkers(workers, units, work int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > units {
		workers = units
	}
	if workers <= 1 || work < parallelMinWork {
		return 1
	}
	return workers
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and runs
// fn on each chunk concurrently. workers <= 1 runs fn(0, n) inline.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
