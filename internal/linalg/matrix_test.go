package linalg

import (
	"errors"
	"math"
	"testing"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatalf("after Set, At(1,0) = %g", m.At(1, 0))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	if got := mustMatrix(t, [][]float64{{1, 2}, {3, 4}}).String(); got != "[1 2; 3 4]" {
		t.Fatalf("String = %q", got)
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
	m, err := MatrixFromRows(nil)
	if err != nil || m.Rows != 0 {
		t.Fatalf("empty MatrixFromRows = %v, %v", m, err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestMatrixElementwise(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})

	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(mustMatrix(t, [][]float64{{6, 8}, {10, 12}})) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(mustMatrix(t, [][]float64{{4, 4}, {4, 4}})) {
		t.Fatalf("Sub = %v", diff)
	}
	had, err := a.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	if !had.Equal(mustMatrix(t, [][]float64{{5, 12}, {21, 32}})) {
		t.Fatalf("Hadamard = %v", had)
	}
	quot, err := b.Div(a)
	if err != nil {
		t.Fatal(err)
	}
	if !quot.Equal(mustMatrix(t, [][]float64{{5, 3}, {7.0 / 3.0, 2}})) {
		t.Fatalf("Div = %v", quot)
	}
}

func TestMatrixShapeErrors(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 3)
	ops := []func() error{
		func() error { _, err := a.Add(b); return err },
		func() error { _, err := a.Sub(b); return err },
		func() error { _, err := a.Hadamard(b); return err },
		func() error { _, err := a.Div(b); return err },
		func() error { return a.AddInPlace(b) },
		func() error { _, err := b.Diag(); return err },
		func() error { _, err := b.Trace(); return err },
		func() error { _, err := b.Inverse(); return err },
		func() error { _, err := a.MulMat(NewMatrix(3, 2)); return err },
		func() error { _, err := a.MulVec(NewVector(3)); return err },
		func() error { _, err := a.VecMul(NewVector(3)); return err },
	}
	for i, op := range ops {
		if err := op(); !errors.Is(err, ErrShape) {
			t.Errorf("op %d: error = %v, want ErrShape", i, err)
		}
	}
}

func TestMatrixScalarOps(t *testing.T) {
	m := mustMatrix(t, [][]float64{{2, 4}})
	if got := m.Scale(2); !got.Equal(mustMatrix(t, [][]float64{{4, 8}})) {
		t.Fatalf("Scale = %v", got)
	}
	if got := m.ScaleAdd(1); !got.Equal(mustMatrix(t, [][]float64{{3, 5}})) {
		t.Fatalf("ScaleAdd = %v", got)
	}
	if got := m.ScaleDiv(2); !got.Equal(mustMatrix(t, [][]float64{{1, 2}})) {
		t.Fatalf("ScaleDiv = %v", got)
	}
	if got := m.ScaleRDiv(8); !got.Equal(mustMatrix(t, [][]float64{{4, 2}})) {
		t.Fatalf("ScaleRDiv = %v", got)
	}
	if got := m.ScaleRSub(5); !got.Equal(mustMatrix(t, [][]float64{{3, 1}})) {
		t.Fatalf("ScaleRSub = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	want := mustMatrix(t, [][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !mt.Equal(want) {
		t.Fatalf("Transpose = %v", mt)
	}
	if !mt.Transpose().Equal(m) {
		t.Fatal("transpose is not an involution")
	}
}

func TestMulMat(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})
	p, err := a.MulMat(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMatrix(t, [][]float64{{19, 22}, {43, 50}})
	if !p.Equal(want) {
		t.Fatalf("MulMat = %v", p)
	}
	// Identity neutrality.
	id := Identity(2)
	left, _ := id.MulMat(a)
	right, _ := a.MulMat(id)
	if !left.Equal(a) || !right.Equal(a) {
		t.Fatal("identity is not neutral")
	}
}

func TestMulMatAddInto(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	dst := NewMatrix(2, 2)
	if err := a.MulMatAddInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if err := a.MulMatAddInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(Identity(2).Scale(2)) {
		t.Fatalf("accumulated = %v", dst)
	}
	if err := a.MulMatAddInto(NewMatrix(3, 3), a); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	v := VectorOf(1, 1, 1)
	mv, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Equal(VectorOf(6, 15)) {
		t.Fatalf("MulVec = %v", mv)
	}
	u := VectorOf(1, 1)
	um, err := m.VecMul(u)
	if err != nil {
		t.Fatal(err)
	}
	if !um.Equal(VectorOf(5, 7, 9)) {
		t.Fatalf("VecMul = %v", um)
	}
}

func TestDiagTraceDiagMatrix(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 9}, {8, 4}})
	d, err := m.Diag()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(VectorOf(1, 4)) {
		t.Fatalf("Diag = %v", d)
	}
	tr, err := m.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr != 5 {
		t.Fatalf("Trace = %g", tr)
	}
	dm := DiagMatrix(VectorOf(2, 3))
	if !dm.Equal(mustMatrix(t, [][]float64{{2, 0}, {0, 3}})) {
		t.Fatalf("DiagMatrix = %v", dm)
	}
}

func TestInverse(t *testing.T) {
	m := mustMatrix(t, [][]float64{{4, 7}, {2, 6}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := m.MulMat(inv)
	if !prod.EqualApprox(Identity(2), 1e-12) {
		t.Fatalf("m * inv = %v", prod)
	}
	// Needs pivoting: zero on the initial diagonal.
	p := mustMatrix(t, [][]float64{{0, 1}, {1, 0}})
	pinv, err := p.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !pinv.Equal(p) {
		t.Fatalf("permutation inverse = %v", pinv)
	}
}

func TestInverseSingular(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); err == nil {
		t.Fatal("inverse of singular matrix succeeded")
	}
}

func TestSolve(t *testing.T) {
	m := mustMatrix(t, [][]float64{{2, 0}, {0, 4}})
	x, err := m.Solve(VectorOf(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(VectorOf(1, 2), 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestMatrixReductions(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, -2}, {3, 4}})
	if s := m.Sum(); s != 6 {
		t.Fatalf("Sum = %g", s)
	}
	if v := m.Min(); v != -2 {
		t.Fatalf("Min = %g", v)
	}
	if v := m.Max(); v != 4 {
		t.Fatalf("Max = %g", v)
	}
	if !m.RowMins().Equal(VectorOf(-2, 3)) {
		t.Fatalf("RowMins = %v", m.RowMins())
	}
	if !m.RowMaxs().Equal(VectorOf(1, 4)) {
		t.Fatalf("RowMaxs = %v", m.RowMaxs())
	}
	if !m.RowSums().Equal(VectorOf(-1, 7)) {
		t.Fatalf("RowSums = %v", m.RowSums())
	}
	if !m.ColSums().Equal(VectorOf(4, 2)) {
		t.Fatalf("ColSums = %v", m.ColSums())
	}
	if n := mustMatrix(t, [][]float64{{3, 4}}).Norm2(); n != 5 {
		t.Fatalf("Norm2 = %g", n)
	}
}

func TestRowColVector(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	if !m.RowVector(1).Equal(VectorOf(3, 4)) {
		t.Fatalf("RowVector = %v", m.RowVector(1))
	}
	if !m.ColVector(0).Equal(VectorOf(1, 3)) {
		t.Fatalf("ColVector = %v", m.ColVector(0))
	}
	// RowVector must copy.
	rv := m.RowVector(0)
	rv.Set(0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("RowVector shares storage")
	}
}

func TestSubMatrix(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s, err := m.SubMatrix(1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(mustMatrix(t, [][]float64{{4, 5}, {7, 8}})) {
		t.Fatalf("SubMatrix = %v", s)
	}
	if _, err := m.SubMatrix(0, 4, 0, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
	dst := NewMatrix(3, 3)
	if err := dst.SetSubMatrix(1, 1, mustMatrix(t, [][]float64{{1, 2}, {3, 4}})); err != nil {
		t.Fatal(err)
	}
	if dst.At(2, 2) != 4 || dst.At(1, 1) != 1 || dst.At(0, 0) != 0 {
		t.Fatalf("SetSubMatrix = %v", dst)
	}
	if err := dst.SetSubMatrix(2, 2, NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestParallelMulMatMatchesSerial(t *testing.T) {
	const n = 70
	a := NewMatrix(n, n)
	b := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%13) - 6
		b.Data[i] = float64(i%7) - 3
	}
	serial, err := a.MulMat(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 128} {
		par, err := ParallelMulMat(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !par.EqualApprox(serial, 1e-9) {
			t.Fatalf("workers=%d: parallel result differs", workers)
		}
	}
	if _, err := ParallelMulMat(NewMatrix(2, 3), NewMatrix(2, 3), 2); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestEqualApproxMatrix(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	b.Data[0] += 1e-13
	if !a.EqualApprox(b, 1e-9) {
		t.Fatal("EqualApprox rejected tiny difference")
	}
	if a.EqualApprox(NewMatrix(2, 3), 1) {
		t.Fatal("EqualApprox accepted different shape")
	}
}

func TestNormsNonNegative(t *testing.T) {
	m := mustMatrix(t, [][]float64{{-3, 0}, {0, -4}})
	if m.Norm2() != 5 {
		t.Fatalf("Norm2 = %g", m.Norm2())
	}
	if math.Signbit(m.Norm2()) {
		t.Fatal("negative norm")
	}
}
