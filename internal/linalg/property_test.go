package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genVec draws a bounded random vector so products stay well-conditioned.
func genVec(r *rand.Rand, n int) *Vector {
	v := NewVector(n)
	for i := range v.Data {
		v.Data[i] = r.Float64()*10 - 5
	}
	return v
}

func genMat(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64()*10 - 5
	}
	return m
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

func TestPropAddCommutes(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		a, b := genVec(r, n), genVec(r, n)
		ab, _ := a.Add(b)
		ba, _ := b.Add(a)
		return ab.EqualApprox(ba, 1e-12)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropDotSymmetric(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		a, b := genVec(r, n), genVec(r, n)
		x, _ := a.Dot(b)
		y, _ := b.Dot(a)
		return math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := int(rRaw%20)+1, int(cRaw%20)+1
		m := genMat(rng, rows, cols)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulAssociative(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, r, s := int(aRaw%6)+1, int(bRaw%6)+1, int(cRaw%6)+1, int(dRaw%6)+1
		A := genMat(rng, p, q)
		B := genMat(rng, q, r)
		C := genMat(rng, r, s)
		AB, _ := A.MulMat(B)
		ABC1, _ := AB.MulMat(C)
		BC, _ := B.MulMat(C)
		ABC2, _ := A.MulMat(BC)
		return ABC1.EqualApprox(ABC2, 1e-6)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributes(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := int(aRaw%8)+1, int(bRaw%8)+1
		A := genMat(rng, p, q)
		B := genMat(rng, q, p)
		C := genMat(rng, q, p)
		BC, _ := B.Add(C)
		lhs, _ := A.MulMat(BC)
		AB, _ := A.MulMat(B)
		AC, _ := A.MulMat(C)
		rhs, _ := AB.Add(AC)
		return lhs.EqualApprox(rhs, 1e-8)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, r := int(aRaw%8)+1, int(bRaw%8)+1, int(cRaw%8)+1
		A := genMat(rng, p, q)
		B := genMat(rng, q, r)
		AB, _ := A.MulMat(B)
		lhs := AB.Transpose()
		rhs, _ := B.Transpose().MulMat(A.Transpose())
		return lhs.EqualApprox(rhs, 1e-8)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropInverseRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		// Diagonally dominant matrices are comfortably invertible.
		m := genMat(rng, n, n)
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+float64(10*n))
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod, _ := m.MulMat(inv)
		return prod.EqualApprox(Identity(n), 1e-8)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropOuterMatchesMulMat(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := int(aRaw%10)+1, int(bRaw%10)+1
		v, w := genVec(rng, p), genVec(rng, q)
		outer := v.Outer(w)
		viaMat, _ := v.AsColMatrix().MulMat(w.AsRowMatrix())
		return outer.EqualApprox(viaMat, 1e-10)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulVecMatchesMulMat(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := int(aRaw%10)+1, int(bRaw%10)+1
		m := genMat(rng, p, q)
		v := genVec(rng, q)
		mv, _ := m.MulVec(v)
		asMat, _ := m.MulMat(v.AsColMatrix())
		return mv.EqualApprox(asMat.ColVector(0), 1e-9)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropGramSymmetricPSD(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := int(nRaw%12)+1, int(dRaw%8)+1
		X := genMat(rng, n, d)
		G, _ := X.Transpose().MulMat(X)
		// Symmetry.
		if !G.EqualApprox(G.Transpose(), 1e-9) {
			return false
		}
		// PSD check via random quadratic forms.
		for trial := 0; trial < 4; trial++ {
			v := genVec(rng, d)
			gv, _ := G.MulVec(v)
			q, _ := v.Dot(gv)
			if q < -1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}
