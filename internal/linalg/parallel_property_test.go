package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// withProcs raises GOMAXPROCS for the duration of a test so the parallel
// paths genuinely fan out (and race-test) even on single-core CI boxes —
// planWorkers clamps to GOMAXPROCS, so without this the splits never spawn.
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// This file property-tests the tiled/parallel kernel suite against the
// serial reference kernels. The contract is bit-for-bit equality for every
// kernel whose parallel split preserves the per-element accumulation order
// (products, elementwise maps, transpose, min/max) at every worker count,
// with two carve-outs: ParallelSum's fixed-chunk association may differ from
// the plain left-to-right Sum by ordinary rounding (but must be identical
// across worker counts), and empty shapes must still round-trip.

// workerCounts spans serial, even, odd, and oversubscribed splits.
var workerCounts = []int{1, 2, 3, 4, 7, 8}

// genMatDims biases dimensions toward the awkward cases the tiled kernel has
// to get right: 1×N, N×1, sizes straddling the 4-wide k unroll and the 2-row
// microtile, and a size past one column panel.
func genMatDims(raw uint16) int {
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 33, 64, 100, 513, 600}
	return dims[int(raw)%len(dims)]
}

// bitsEqual compares matrices by float64 bit pattern, so NaN == NaN: sparse
// inputs drive Div through 0/0 and Equal's != would reject matching NaNs.
func bitsEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, x := range a.Data {
		if math.Float64bits(x) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// genSparseMat is genMat with a zero-dense mask: the tiled kernel short-cuts
// all-zero coefficient groups, so heavy zero blocks must be exercised.
func genSparseMat(r *rand.Rand, rows, cols int) *Matrix {
	m := genMat(r, rows, cols)
	for i := range m.Data {
		if r.Intn(3) != 0 {
			m.Data[i] = 0
		}
	}
	return m
}

func TestPropTiledMulMatBitExact(t *testing.T) {
	withProcs(t, 8)
	f := func(seed int64, aRaw, bRaw, cRaw uint16, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, s := genMatDims(aRaw), genMatDims(bRaw), genMatDims(cRaw)
		// Cap the flop count so the property sweep stays fast.
		for p*q*s > 1<<22 {
			p, q, s = (p+1)/2, (q+1)/2, (s+1)/2
		}
		gen := genMat
		if sparse {
			gen = genSparseMat
		}
		A, B := gen(rng, p, q), gen(rng, q, s)
		want, err := RefMulMat(A, B)
		if err != nil {
			return false
		}
		got, err := A.MulMat(B)
		if err != nil {
			return false
		}
		if !got.Equal(want) {
			return false
		}
		for _, w := range workerCounts {
			pw, err := ParallelMulMat(A, B, w)
			if err != nil || !pw.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledMulMatEdgeShapes(t *testing.T) {
	withProcs(t, 8)
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ p, q, s int }{
		{1, 1, 1}, {1, 600, 1}, {600, 1, 600}, {1, 1, 600},
		{2, 4, 512}, {3, 5, 513}, {5, 4, 511}, {2, 3, 1},
		{513, 2, 2}, {64, 64, 64}, {65, 67, 69},
	}
	for _, sh := range shapes {
		A, B := genMat(rng, sh.p, sh.q), genMat(rng, sh.q, sh.s)
		want, err := RefMulMat(A, B)
		if err != nil {
			t.Fatal(err)
		}
		got, err := A.MulMat(B)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%dx%d·%dx%d: tiled kernel differs from reference", sh.p, sh.q, sh.q, sh.s)
		}
		for _, w := range workerCounts {
			pw, err := ParallelMulMat(A, B, w)
			if err != nil {
				t.Fatal(err)
			}
			if !pw.Equal(want) {
				t.Fatalf("%dx%d·%dx%d workers=%d: parallel kernel differs", sh.p, sh.q, sh.q, sh.s, w)
			}
		}
	}
}

func TestPropParallelKernelsBitExact(t *testing.T) {
	withProcs(t, 8)
	f := func(seed int64, rRaw, cRaw uint16, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := genMatDims(rRaw), genMatDims(cRaw)
		gen := genMat
		if sparse {
			gen = genSparseMat
		}
		A, B := gen(rng, rows, cols), gen(rng, rows, cols)
		v, u := genVec(rng, cols), genVec(rng, rows)
		wantT := A.Transpose()
		wantMV, _ := A.MulVec(v)
		wantVM, _ := A.VecMul(u)
		wantAdd, _ := A.Add(B)
		wantSub, _ := A.Sub(B)
		wantHad, _ := A.Hadamard(B)
		wantDiv, _ := A.Div(B)
		for _, w := range workerCounts {
			if !ParallelTranspose(A, w).Equal(wantT) {
				return false
			}
			mv, err := ParallelMulVec(A, v, w)
			if err != nil || !mv.Equal(wantMV) {
				return false
			}
			vm, err := ParallelVecMul(A, u, w)
			if err != nil || !vm.Equal(wantVM) {
				return false
			}
			add, err := ParallelAdd(A, B, w)
			if err != nil || !add.Equal(wantAdd) {
				return false
			}
			sub, err := ParallelSub(A, B, w)
			if err != nil || !sub.Equal(wantSub) {
				return false
			}
			had, err := ParallelHadamard(A, B, w)
			if err != nil || !had.Equal(wantHad) {
				return false
			}
			div, err := ParallelDiv(A, B, w)
			if err != nil || !bitsEqual(div, wantDiv) {
				return false
			}
			if ParallelMin(A, w) != A.Min() || ParallelMax(A, w) != A.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropParallelSumInvariant pins ParallelSum's two-part contract: the
// result is identical for every worker count (the fixed-chunk association
// never depends on the split), and it agrees with the serial left-to-right
// Sum within ordinary rounding of the magnitude sum.
func TestPropParallelSumInvariant(t *testing.T) {
	withProcs(t, 8)
	f := func(seed int64, big bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rng.Int31n(1000)) + 1
		if big {
			// Cross several reduceChunk boundaries.
			n = reduceChunk*3 + int(rng.Int31n(reduceChunk))
		}
		m := &Matrix{Rows: 1, Cols: n, Data: genVec(rng, n).Data}
		base := ParallelSum(m, 1)
		for _, w := range workerCounts[1:] {
			if ParallelSum(m, w) != base {
				return false
			}
		}
		var absSum float64
		for _, x := range m.Data {
			absSum += math.Abs(x)
		}
		return math.Abs(base-m.Sum()) <= 1e-12*(absSum+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelKernelsEmptyShapes(t *testing.T) {
	empty := NewMatrix(0, 0)
	if got := ParallelTranspose(empty, 4); got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("transpose of empty: %dx%d", got.Rows, got.Cols)
	}
	if s := ParallelSum(empty, 4); s != 0 {
		t.Fatalf("sum of empty: %v", s)
	}
	if mn := ParallelMin(empty, 4); !math.IsInf(mn, 1) {
		t.Fatalf("min of empty: %v", mn)
	}
	if mx := ParallelMax(empty, 4); !math.IsInf(mx, -1) {
		t.Fatalf("max of empty: %v", mx)
	}
	out, err := ParallelMulMat(NewMatrix(0, 5), NewMatrix(5, 0), 4)
	if err != nil || out.Rows != 0 || out.Cols != 0 {
		t.Fatalf("0x5·5x0: %v %v", out, err)
	}
}

func TestParallelKernelShapeErrors(t *testing.T) {
	a, b := NewMatrix(2, 3), NewMatrix(2, 3)
	if _, err := ParallelMulMat(a, b, 2); err == nil {
		t.Fatal("2x3·2x3 should fail")
	}
	if _, err := ParallelMulVec(a, NewVector(2), 2); err == nil {
		t.Fatal("MulVec length mismatch should fail")
	}
	if _, err := ParallelVecMul(a, NewVector(3), 2); err == nil {
		t.Fatal("VecMul length mismatch should fail")
	}
	if _, err := ParallelAdd(a, NewMatrix(3, 2), 2); err == nil {
		t.Fatal("add shape mismatch should fail")
	}
}

func TestDefaultWorkersBudget(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("budget %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Fatalf("unset budget %d, want >= 1", DefaultWorkers())
	}
	SetDefaultWorkers(-5)
	if DefaultWorkers() < 1 {
		t.Fatalf("negative budget resolves to %d, want GOMAXPROCS default", DefaultWorkers())
	}
}
