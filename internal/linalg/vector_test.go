package linalg

import (
	"errors"
	"math"
	"testing"
)

func TestVectorBasics(t *testing.T) {
	v := VectorOf(1, 2, 3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if v.At(1) != 2 {
		t.Fatalf("At(1) = %g, want 2", v.At(1))
	}
	v.Set(1, 5)
	if v.At(1) != 5 {
		t.Fatalf("after Set, At(1) = %g, want 5", v.At(1))
	}
	c := v.Clone()
	c.Set(0, 99)
	if v.At(0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if got := v.String(); got != "[1 5 3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestVectorElementwise(t *testing.T) {
	a := VectorOf(1, 2, 3)
	b := VectorOf(4, 5, 6)

	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(VectorOf(5, 7, 9)) {
		t.Fatalf("Add = %v", sum)
	}

	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(VectorOf(-3, -3, -3)) {
		t.Fatalf("Sub = %v", diff)
	}

	prod, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(VectorOf(4, 10, 18)) {
		t.Fatalf("Mul = %v", prod)
	}

	quot, err := b.Div(a)
	if err != nil {
		t.Fatal(err)
	}
	if !quot.Equal(VectorOf(4, 2.5, 2)) {
		t.Fatalf("Div = %v", quot)
	}
}

func TestVectorShapeErrors(t *testing.T) {
	a := VectorOf(1, 2)
	b := VectorOf(1, 2, 3)
	ops := []func() error{
		func() error { _, err := a.Add(b); return err },
		func() error { _, err := a.Sub(b); return err },
		func() error { _, err := a.Mul(b); return err },
		func() error { _, err := a.Div(b); return err },
		func() error { _, err := a.Dot(b); return err },
		func() error { _, err := a.MinPairwise(b); return err },
		func() error { _, err := a.MaxPairwise(b); return err },
		func() error { return a.AddInPlace(b) },
	}
	for i, op := range ops {
		if err := op(); !errors.Is(err, ErrShape) {
			t.Errorf("op %d: error = %v, want ErrShape", i, err)
		}
	}
}

func TestVectorScalarOps(t *testing.T) {
	v := VectorOf(2, 4)
	if got := v.Scale(3); !got.Equal(VectorOf(6, 12)) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.ScaleAdd(1); !got.Equal(VectorOf(3, 5)) {
		t.Fatalf("ScaleAdd = %v", got)
	}
	if got := v.ScaleDiv(2); !got.Equal(VectorOf(1, 2)) {
		t.Fatalf("ScaleDiv = %v", got)
	}
	if got := v.ScaleRDiv(8); !got.Equal(VectorOf(4, 2)) {
		t.Fatalf("ScaleRDiv = %v", got)
	}
	if got := v.ScaleRSub(10); !got.Equal(VectorOf(8, 6)) {
		t.Fatalf("ScaleRSub = %v", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := VectorOf(1, 2, 3)
	b := VectorOf(4, -5, 6)
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 12 {
		t.Fatalf("Dot = %g, want 12", d)
	}
	if n := VectorOf(3, 4).Norm2(); n != 5 {
		t.Fatalf("Norm2 = %g, want 5", n)
	}
}

func TestOuter(t *testing.T) {
	a := VectorOf(1, 2)
	b := VectorOf(3, 4, 5)
	m := a.Outer(b)
	want, _ := MatrixFromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if !m.Equal(want) {
		t.Fatalf("Outer = %v", m)
	}
}

func TestOuterAddInto(t *testing.T) {
	a := VectorOf(1, 2)
	dst := NewMatrix(2, 2)
	if err := a.OuterAddInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if err := a.OuterAddInto(dst, a); err != nil {
		t.Fatal(err)
	}
	want, _ := MatrixFromRows([][]float64{{2, 4}, {4, 8}})
	if !dst.Equal(want) {
		t.Fatalf("accumulated outer = %v", dst)
	}
	if err := a.OuterAddInto(NewMatrix(3, 3), a); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestVectorReductions(t *testing.T) {
	v := VectorOf(3, -1, 7, 0)
	if s := v.Sum(); s != 9 {
		t.Fatalf("Sum = %g", s)
	}
	if m := v.Min(); m != -1 {
		t.Fatalf("Min = %g", m)
	}
	if m := v.Max(); m != 7 {
		t.Fatalf("Max = %g", m)
	}
	if i := v.ArgMin(); i != 1 {
		t.Fatalf("ArgMin = %d", i)
	}
	if i := v.ArgMax(); i != 2 {
		t.Fatalf("ArgMax = %d", i)
	}
	empty := NewVector(0)
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
	if empty.ArgMin() != -1 || empty.ArgMax() != -1 {
		t.Fatal("empty ArgMin/ArgMax should be -1")
	}
}

func TestMinMaxPairwise(t *testing.T) {
	a := VectorOf(1, 5, 3)
	b := VectorOf(2, 4, 3)
	mn, err := a.MinPairwise(b)
	if err != nil {
		t.Fatal(err)
	}
	if !mn.Equal(VectorOf(1, 4, 3)) {
		t.Fatalf("MinPairwise = %v", mn)
	}
	mx, err := a.MaxPairwise(b)
	if err != nil {
		t.Fatal(err)
	}
	if !mx.Equal(VectorOf(2, 5, 3)) {
		t.Fatalf("MaxPairwise = %v", mx)
	}
}

func TestAsRowColMatrix(t *testing.T) {
	v := VectorOf(1, 2, 3)
	r := v.AsRowMatrix()
	if r.Rows != 1 || r.Cols != 3 || r.At(0, 2) != 3 {
		t.Fatalf("AsRowMatrix = %v", r)
	}
	c := v.AsColMatrix()
	if c.Rows != 3 || c.Cols != 1 || c.At(2, 0) != 3 {
		t.Fatalf("AsColMatrix = %v", c)
	}
	// No shared storage.
	r.Set(0, 0, 42)
	if v.At(0) == 42 {
		t.Fatal("AsRowMatrix shares storage")
	}
}

func TestEqualApproxVector(t *testing.T) {
	a := VectorOf(1, 2)
	b := VectorOf(1+1e-12, 2-1e-12)
	if !a.EqualApprox(b, 1e-9) {
		t.Fatal("EqualApprox should accept tiny differences")
	}
	if a.EqualApprox(VectorOf(1, 3), 1e-9) {
		t.Fatal("EqualApprox accepted wrong values")
	}
	if a.EqualApprox(VectorOf(1), 1) {
		t.Fatal("EqualApprox accepted wrong length")
	}
}
