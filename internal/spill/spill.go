// Package spill is the engine's out-of-core layer: a per-query memory
// governor (a byte budget shared by all operators of one query, tracked via
// the row codec's encoded sizes) and a temp-file run format that operators
// write sorted runs and hash partitions into when the governor denies them
// memory. It is what turns the executor's strictly-in-memory hash join, hash
// aggregation, and sort into grace hash join, hybrid hash aggregation, and
// external merge sort — bounded memory over unbounded data, the property the
// paper's "Fail" table entries show the comparison systems losing.
//
// Run files are block-framed so read-back is buffered, not row-at-a-time IO.
// The framing is the shared internal/blockio format (a versioned file header
// followed by checksummed frames, the same layer the storage engine's
// journal uses): each frame's payload is aux=rowCount rows in the value
// package's binary row encoding (the same codec shuffles use, so a spilled
// row round-trips bit-identically — NaN payloads, labels, and matrix shapes
// included), and the per-frame checksum turns silent temp-file corruption
// into a diagnosable decode error instead of garbage rows.
//
// All temp files of one query live in one MkdirTemp directory that
// Manager.Close removes at query end; the file-count accounting lets tests
// assert that no run leaks.
package spill

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"relalg/internal/blockio"
	"relalg/internal/value"
)

// DirPrefix names the per-query temp directories (under os.TempDir()); the
// cleanup tests key on it.
const DirPrefix = "relalg-spill-"

// The run-file header: spill runs are process-lifetime temp files, but the
// header still versions the format so a stale run from a crashed previous
// build can never be mis-decoded.
const (
	runMagic   = "LASPILL1"
	runVersion = 1
)

// blockBytes is the target encoded payload size of one run-file block;
// maxBlockPayload caps what a reader will allocate for a frame (one giant
// row can legitimately exceed the target, but a corrupt length prefix is
// caught by the frame checksum and this bound).
const (
	blockBytes      = 256 << 10
	maxBlockPayload = 1 << 30
)

// Hooks receive the spill layer's accounting events; either field may be nil.
// The executor wires them to the cluster's SpillEvents/BytesSpilled counters
// and to the "spill" Timings label.
type Hooks struct {
	// RunSpilled is called once per finished run with its file size.
	RunSpilled func(bytes int64)
	// TrackIO returns a stopwatch-stop function; it brackets run-file reads
	// and writes so spill IO shows up as its own entry in the per-operator
	// timing breakdown.
	TrackIO func() func()
	// WriteFault, when set, is consulted once per run writer with the run's
	// label and the owning task's attempt number; a non-nil return makes the
	// writer's block writes fail with that error. This is the fault-injection
	// point for spill-file write failures — the core wires it to the
	// cluster's injector, which never faults a task's final allowed attempt.
	WriteFault func(label string, attempt int) error
}

// Manager owns one query's spill state: the governor, the temp directory,
// and every run file created under it. Safe for concurrent use by the
// per-partition operator goroutines.
type Manager struct {
	gov   *Governor
	hooks Hooks

	mu     sync.Mutex
	dir    string
	seq    int
	live   int // run files created and not yet removed
	closed bool
}

// NewManager creates a manager with the given byte budget (<= 0 disables
// spilling entirely). The temp directory is created lazily on first spill, so
// queries that stay within budget never touch the filesystem.
func NewManager(budget int64, hooks Hooks) *Manager {
	return &Manager{gov: NewGovernor(budget), hooks: hooks}
}

// Enabled reports whether a memory budget is active (nil-safe).
func (m *Manager) Enabled() bool { return m != nil && m.gov.Budget() > 0 }

// Governor returns the query's memory governor (nil-safe).
func (m *Manager) Governor() *Governor {
	if m == nil {
		return nil
	}
	return m.gov
}

// Dir returns the temp directory, or "" before the first spill.
func (m *Manager) Dir() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dir
}

// LiveRuns returns the number of run files currently on disk.
func (m *Manager) LiveRuns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// track starts the IO stopwatch, returning the stop function.
func (m *Manager) track() func() {
	if m == nil || m.hooks.TrackIO == nil {
		return func() {}
	}
	return m.hooks.TrackIO()
}

// newFile creates the next run file, creating the temp directory on first
// use.
func (m *Manager) newFile(label string) (*os.File, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, "", fmt.Errorf("spill: manager closed")
	}
	if m.dir == "" {
		dir, err := os.MkdirTemp("", DirPrefix)
		if err != nil {
			return nil, "", fmt.Errorf("spill: create temp dir: %w", err)
		}
		m.dir = dir
	}
	m.seq++
	path := filepath.Join(m.dir, fmt.Sprintf("%06d-%s.run", m.seq, label))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, "", fmt.Errorf("spill: create run file: %w", err)
	}
	m.live++
	return f, path, nil
}

// fileRemoved adjusts the live-file accounting.
func (m *Manager) fileRemoved() {
	m.mu.Lock()
	m.live--
	m.mu.Unlock()
}

// Close removes the temp directory and every run file under it. It is called
// once at query end; creating writers afterwards fails.
func (m *Manager) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	m.live = 0
	if m.dir == "" {
		return nil
	}
	if err := os.RemoveAll(m.dir); err != nil {
		return fmt.Errorf("spill: remove temp dir: %w", err)
	}
	return nil
}

// NewWriter opens a new run file for writing. The label (sanitized to
// [a-z0-9-]) names the operator and partition for debuggability.
func (m *Manager) NewWriter(label string) (*Writer, error) {
	return m.NewWriterAt(label, 0)
}

// NewWriterAt is NewWriter for a run created inside a retryable task's
// attempt'th execution: the attempt keys the write-fault draw, so retried
// tasks re-create their runs under a fresh (and eventually clean) attempt.
func (m *Manager) NewWriterAt(label string, attempt int) (*Writer, error) {
	f, path, err := m.newFile(sanitize(label))
	if err != nil {
		return nil, err
	}
	w := &Writer{
		m:    m,
		f:    f,
		bw:   bufio.NewWriterSize(f, 64<<10),
		path: path,
	}
	if m.hooks.WriteFault != nil {
		w.fail = m.hooks.WriteFault(label, attempt)
	}
	if err := blockio.WriteHeader(w.bw, blockio.Header{Magic: runMagic, Version: runVersion}); err != nil {
		_ = w.f.Close()
		_ = os.Remove(path)
		m.fileRemoved()
		return nil, fmt.Errorf("spill: write run header: %w", err)
	}
	w.bytes += blockio.HeaderLen
	return w, nil
}

// sanitize maps a label onto filename-safe characters.
func sanitize(label string) string {
	out := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Writer appends rows to a run file, framing them into blocks. Not safe for
// concurrent use (each partition goroutine owns its writers).
type Writer struct {
	m     *Manager
	f     *os.File
	bw    *bufio.Writer
	path  string
	block []byte // encoded rows of the current block
	nrows uint32 // rows in the current block
	rows  int64
	bytes int64
	done  bool
	fail  error // injected write fault; every block write fails with it
}

// Append encodes one row into the current block, flushing the block to the
// file when it reaches the target size.
func (w *Writer) Append(r value.Row) error {
	w.block = value.AppendRow(w.block, r)
	w.nrows++
	w.rows++
	if len(w.block) >= blockBytes {
		return w.flushBlock()
	}
	return nil
}

// Rows returns the rows appended so far.
func (w *Writer) Rows() int64 { return w.rows }

func (w *Writer) flushBlock() error {
	if w.nrows == 0 {
		return nil
	}
	if w.fail != nil {
		return fmt.Errorf("spill: write block: %w", w.fail)
	}
	stop := w.m.track()
	defer stop()
	n, err := blockio.WriteFrame(w.bw, w.nrows, w.block)
	if err != nil {
		return fmt.Errorf("spill: write block: %w", err)
	}
	w.bytes += n
	w.block = w.block[:0]
	w.nrows = 0
	return nil
}

// Finish flushes and closes the file, charges the spill to the hooks, and
// returns the readable Run. The writer must not be used afterwards.
func (w *Writer) Finish() (*Run, error) {
	if w.done {
		return nil, fmt.Errorf("spill: writer already finished")
	}
	w.done = true
	if err := w.flushBlock(); err != nil {
		_ = w.f.Close() // the write error is the actionable one
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close()
		return nil, fmt.Errorf("spill: flush run: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("spill: close run: %w", err)
	}
	if w.m.hooks.RunSpilled != nil {
		w.m.hooks.RunSpilled(w.bytes)
	}
	return &Run{m: w.m, path: w.path, Rows: w.rows, Bytes: w.bytes}, nil
}

// Abort closes and removes a half-written run (error paths).
func (w *Writer) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	cerr := w.f.Close()
	rerr := os.Remove(w.path)
	w.m.fileRemoved()
	if cerr != nil {
		return fmt.Errorf("spill: abort run: %w", cerr)
	}
	if rerr != nil {
		return fmt.Errorf("spill: abort run: %w", rerr)
	}
	return nil
}

// Run is one finished, readable spill run.
type Run struct {
	m     *Manager
	path  string
	Rows  int64
	Bytes int64
}

// Reader opens the run for sequential reading. A run supports any number of
// sequential read passes (each Reader is independent).
func (r *Run) Reader() (*Reader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	if _, err := blockio.ReadHeader(br, runMagic, runVersion); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	return &Reader{m: r.m, f: f, br: br}, nil
}

// Remove deletes the run file; the manager's Close catches anything the
// operators forget, but operators remove runs eagerly to bound disk use.
func (r *Run) Remove() error {
	if err := os.Remove(r.path); err != nil {
		return fmt.Errorf("spill: remove run: %w", err)
	}
	r.m.fileRemoved()
	return nil
}

// Reader streams a run's rows back, decoding one block at a time.
type Reader struct {
	m     *Manager
	f     *os.File
	br    *bufio.Reader
	block []value.Row
	i     int
}

// Next returns the next row. The second result is false at end of run.
func (r *Reader) Next() (value.Row, bool, error) {
	for r.i >= len(r.block) {
		ok, err := r.readBlock()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	row := r.block[r.i]
	r.i++
	return row, true, nil
}

// readBlock loads the next block; false means clean EOF.
func (r *Reader) readBlock() (bool, error) {
	stop := r.m.track()
	defer stop()
	buf, nrowsU32, err := blockio.ReadFrame(r.br, maxBlockPayload)
	if err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, fmt.Errorf("spill: read block: %w", err)
	}
	nrows := int(nrowsU32)
	rows := make([]value.Row, nrows)
	for i := range rows {
		rows[i], buf, err = value.DecodeRow(buf)
		if err != nil {
			return false, fmt.Errorf("spill: decode spilled row: %w", err)
		}
	}
	if len(buf) != 0 {
		return false, fmt.Errorf("spill: %d trailing bytes in block", len(buf))
	}
	r.block, r.i = rows, 0
	return true, nil
}

// Close closes the reader's file handle.
func (r *Reader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("spill: close reader: %w", err)
	}
	return nil
}
