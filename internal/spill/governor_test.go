package spill

import (
	"sync"
	"testing"
)

func TestGovernorUnlimited(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		g := NewGovernor(budget)
		r := g.Reservation("op")
		if !r.Grow(1 << 40) {
			t.Fatalf("budget %d: unlimited governor denied growth", budget)
		}
		if g.Used() != 0 {
			t.Fatalf("budget %d: unlimited governor tracked usage %d", budget, g.Used())
		}
		r.Release()
	}
	// A nil governor behaves the same (operators never nil-check).
	var g *Governor
	r := g.Reservation("op")
	if !r.Grow(123) {
		t.Fatal("nil governor denied growth")
	}
	if g.Budget() != 0 || g.Used() != 0 {
		t.Fatal("nil governor reported nonzero budget or usage")
	}
}

func TestGovernorDeniesOverBudget(t *testing.T) {
	g := NewGovernor(100 << 10)
	r := g.Reservation("op")
	if !r.Grow(90 << 10) {
		t.Fatal("in-budget growth denied")
	}
	if r.Grow(20 << 10) {
		t.Fatal("over-budget growth granted beyond the floor")
	}
	if got := g.Used(); got != 90<<10 {
		t.Fatalf("used = %d, want %d", got, 90<<10)
	}
	r.Reset()
	if g.Used() != 0 {
		t.Fatalf("used after reset = %d", g.Used())
	}
	if !r.Grow(20 << 10) {
		t.Fatal("growth denied after reset")
	}
	r.Release()
	if g.Used() != 0 {
		t.Fatalf("used after release = %d", g.Used())
	}
}

// TestGovernorProgressFloor: even with the budget fully held elsewhere, a
// fresh reservation may force up to its floor so the operator can make
// progress (buffer at least one block before spilling).
func TestGovernorProgressFloor(t *testing.T) {
	g := NewGovernor(64 << 10)
	hog := g.Reservation("hog")
	if !hog.Grow(64 << 10) {
		t.Fatal("hog denied")
	}
	r := g.Reservation("small")
	// floor = clamp(budget/16, 4096, 256K) = 4096 here.
	if !r.Grow(1000) {
		t.Fatal("floor growth denied")
	}
	if !r.Grow(3000) {
		t.Fatal("second floor growth denied")
	}
	if r.Grow(4096) {
		t.Fatal("growth past the floor granted while budget exhausted")
	}
	if g.Used() <= 64<<10 {
		t.Fatalf("forced floor bytes not visible in Used: %d", g.Used())
	}
	hog.Release()
	r.Release()
	if g.Used() != 0 {
		t.Fatalf("used after releases = %d", g.Used())
	}
}

func TestGovernorFloorClamp(t *testing.T) {
	// Large budget: floor caps at maxFloorBytes.
	g := NewGovernor(1 << 30)
	if f := g.Reservation("op").floor; f != maxFloorBytes {
		t.Fatalf("floor = %d, want %d", f, maxFloorBytes)
	}
	// Tiny budget: floor is at least minFloorBytes.
	g = NewGovernor(100)
	if f := g.Reservation("op").floor; f != minFloorBytes {
		t.Fatalf("floor = %d, want %d", f, minFloorBytes)
	}
}

// TestGovernorConcurrent hammers one governor from many goroutines (the
// race detector is the real assertion) and checks the books balance.
func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := g.Reservation("worker")
			for j := 0; j < 1000; j++ {
				if !r.Grow(512) {
					r.Reset()
				}
			}
			r.Release()
		}()
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Fatalf("used after all releases = %d", g.Used())
	}
}
