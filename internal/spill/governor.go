package spill

import "sync/atomic"

// The memory governor tracks the working-set bytes of a query's operators
// against a single per-query byte budget (cluster.Config.MemoryBudgetBytes).
// Operators reserve bytes as their hash tables, sort buffers, and aggregation
// groups grow; when the governor denies a growth request, the operator spills
// part of its state to a temp-file run and releases the reservation instead
// of aborting. A budget of zero (or a nil governor) disables governance
// entirely, preserving the strictly-in-memory seed behaviour.

// minFloorBytes is the smallest working set every reservation may force even
// when the budget is exhausted: an operator always makes progress, so a
// budget below the working set degrades into spilling rather than deadlock.
const minFloorBytes = 4096

// maxFloorBytes caps the per-reservation forced floor so many concurrent
// partition operators cannot silently multiply a small budget away.
const maxFloorBytes = 256 << 10

// Governor arbitrates one query's memory budget across concurrently running
// partition operators. All methods are safe for concurrent use.
type Governor struct {
	budget int64
	used   atomic.Int64
}

// NewGovernor returns a governor over budget bytes; budget <= 0 means
// unlimited (every request granted, nothing tracked as pressure).
func NewGovernor(budget int64) *Governor {
	return &Governor{budget: budget}
}

// Budget returns the configured byte budget (<= 0 when unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Used returns the bytes currently reserved across all operators.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// tryGrow atomically charges n bytes if they fit the budget.
func (g *Governor) tryGrow(n int64) bool {
	for {
		u := g.used.Load()
		if u+n > g.budget {
			return false
		}
		if g.used.CompareAndSwap(u, u+n) {
			return true
		}
	}
}

// force charges n bytes unconditionally (the progress floor).
func (g *Governor) force(n int64) { g.used.Add(n) }

// release returns n bytes to the budget.
func (g *Governor) release(n int64) { g.used.Add(-n) }

// Reservation returns a named per-operator reservation. One reservation is
// owned by a single goroutine (one partition of one operator); only the
// underlying governor is shared.
func (g *Governor) Reservation(op string) *Reservation {
	r := &Reservation{g: g, op: op}
	if g != nil && g.budget > 0 {
		r.floor = g.budget / 16
		if r.floor < minFloorBytes {
			r.floor = minFloorBytes
		}
		if r.floor > maxFloorBytes {
			r.floor = maxFloorBytes
		}
	}
	return r
}

// Reservation tracks the bytes one operator instance holds. Grow returning
// false is the spill signal; the operator is expected to spill state, call
// Reset, and retry.
type Reservation struct {
	g     *Governor
	op    string
	held  int64
	floor int64
}

// Op returns the operator label the reservation was created with.
func (r *Reservation) Op() string { return r.op }

// Held returns the bytes currently held by this reservation.
func (r *Reservation) Held() int64 { return r.held }

// Grow requests n more bytes. It returns true when the bytes were granted —
// either within the budget, or forced because the reservation is still under
// its progress floor (an operator must be able to hold at least one block of
// state or it could never spill anything). A false return means the caller
// should spill and Reset.
func (r *Reservation) Grow(n int64) bool {
	if r.g == nil || r.g.budget <= 0 {
		return true
	}
	if r.g.tryGrow(n) {
		r.held += n
		return true
	}
	if r.held+n <= r.floor {
		r.g.force(n)
		r.held += n
		return true
	}
	return false
}

// Force charges n bytes unconditionally. Used where spilling can no longer
// subdivide state (for example the final sub-partition of a grace join at
// maximum recursion depth): execution stays correct and the overshoot remains
// visible in Governor.Used.
func (r *Reservation) Force(n int64) {
	if r.g == nil || r.g.budget <= 0 {
		return
	}
	r.g.force(n)
	r.held += n
}

// Reset releases everything held, keeping the reservation usable.
func (r *Reservation) Reset() {
	if r.g != nil && r.held != 0 {
		r.g.release(r.held)
	}
	r.held = 0
}

// Release returns all held bytes; the reservation should not be grown again.
func (r *Reservation) Release() { r.Reset() }
