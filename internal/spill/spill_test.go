package spill

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relalg/internal/linalg"
	"relalg/internal/value"
)

func testRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i)),
			value.Double(float64(i) * 1.5),
			value.String_(fmt.Sprintf("row-%d", i)),
			value.Vector(linalg.VectorOf(float64(i), float64(-i), 0.25)),
		}
	}
	return rows
}

func writeRun(t *testing.T, m *Manager, rows []value.Row) *Run {
	t.Helper()
	w, err := m.NewWriter("test")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func readAll(t *testing.T, run *Run) []value.Row {
	t.Helper()
	rd, err := run.Reader()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	var out []value.Row
	for {
		r, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func rowsEqual(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestRunRoundTrip(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rows := testRows(100)
	run := writeRun(t, m, rows)
	if run.Rows != 100 {
		t.Fatalf("run.Rows = %d", run.Rows)
	}
	if got := readAll(t, run); !rowsEqual(got, rows) {
		t.Fatal("read-back rows differ from written rows")
	}
	// A second sequential pass works too.
	if got := readAll(t, run); !rowsEqual(got, rows) {
		t.Fatal("second read pass differs")
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	if m.LiveRuns() != 0 {
		t.Fatalf("live runs = %d after remove", m.LiveRuns())
	}
}

// TestRunMultiBlock forces several blocks in one run (rows with a fat vector
// exceed blockBytes quickly) and checks block framing is invisible to readers.
func TestRunMultiBlock(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	big := linalg.NewVector(8192) // 64KB payload per row
	for i := range big.Data {
		big.Data[i] = float64(i)
	}
	rows := make([]value.Row, 20)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.Vector(big)}
	}
	run := writeRun(t, m, rows)
	if run.Bytes <= blockBytes {
		t.Fatalf("run.Bytes = %d: expected multiple blocks (> %d)", run.Bytes, blockBytes)
	}
	if got := readAll(t, run); !rowsEqual(got, rows) {
		t.Fatal("multi-block read-back differs")
	}
}

// TestNaNRoundTrip: spilled NaN payloads come back bit-identical (Equal is
// false for NaN, so compare bits directly).
func TestNaNRoundTrip(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rows := []value.Row{{value.Double(math.NaN()), value.Double(math.Inf(1))}}
	got := readAll(t, writeRun(t, m, rows))
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("shape mismatch: %v", got)
	}
	if math.Float64bits(got[0][0].D) != math.Float64bits(math.NaN()) && !math.IsNaN(got[0][0].D) {
		t.Fatalf("NaN did not round-trip: %v", got[0][0].D)
	}
	if !math.IsInf(got[0][1].D, 1) {
		t.Fatalf("+Inf did not round-trip: %v", got[0][1].D)
	}
}

func TestManagerCleanup(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	r1 := writeRun(t, m, testRows(10))
	writeRun(t, m, testRows(5))
	dir := m.Dir()
	if dir == "" || !strings.Contains(filepath.Base(dir), DirPrefix) {
		t.Fatalf("temp dir %q", dir)
	}
	if m.LiveRuns() != 2 {
		t.Fatalf("live runs = %d", m.LiveRuns())
	}
	if err := r1.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("temp dir still exists after Close (stat err %v)", err)
	}
	// Close is idempotent, and writers after Close fail.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewWriter("late"); err == nil {
		t.Fatal("NewWriter after Close succeeded")
	}
}

func TestManagerLazyDir(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	if m.Dir() != "" {
		t.Fatal("temp dir created before first spill")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHooksAccounting(t *testing.T) {
	var events, bytes int64
	var ioCalls int
	m := NewManager(1<<20, Hooks{
		RunSpilled: func(b int64) { events++; bytes += b },
		TrackIO:    func() func() { ioCalls++; return func() {} },
	})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	run := writeRun(t, m, testRows(50))
	if events != 1 {
		t.Fatalf("RunSpilled calls = %d", events)
	}
	if bytes != run.Bytes || bytes <= 0 {
		t.Fatalf("bytes = %d, run.Bytes = %d", bytes, run.Bytes)
	}
	readAll(t, run)
	if ioCalls == 0 {
		t.Fatal("TrackIO never called")
	}
}

func TestWriterAbort(t *testing.T) {
	m := NewManager(1<<20, Hooks{})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	w, err := m.NewWriter("abort")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(value.Row{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if m.LiveRuns() != 0 {
		t.Fatalf("live runs = %d after abort", m.LiveRuns())
	}
}

func TestDisabledManager(t *testing.T) {
	var m *Manager
	if m.Enabled() {
		t.Fatal("nil manager enabled")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if NewManager(0, Hooks{}).Enabled() {
		t.Fatal("zero-budget manager enabled")
	}
}
