package catalog

import (
	"testing"

	"relalg/internal/sqlparse"
	"relalg/internal/types"
)

func meta(name string, cols ...Column) *TableMeta {
	return &TableMeta{Name: name, Schema: Schema{Cols: cols}}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{Cols: []Column{{Name: "a", Type: types.TInt}, {Name: "b", Type: types.TDouble}}}
	if s.Arity() != 2 {
		t.Fatalf("arity %d", s.Arity())
	}
	if s.IndexOf("b") != 1 || s.IndexOf("zzz") != -1 {
		t.Fatal("IndexOf broken")
	}
	if s.String() != "(a INTEGER, b DOUBLE)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	if err := c.CreateTable(meta("T1", Column{Name: "a", Type: types.TInt})); err != nil {
		t.Fatal(err)
	}
	// Lookup is case-insensitive; names normalize to lower case.
	if m, ok := c.Table("t1"); !ok || m.Name != "t1" {
		t.Fatalf("lookup: %v %v", m, ok)
	}
	if _, ok := c.Table("T1"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if err := c.CreateTable(meta("t1")); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if !c.Drop("t1") {
		t.Fatal("drop failed")
	}
	if c.Drop("t1") {
		t.Fatal("double drop succeeded")
	}
	if _, ok := c.Table("t1"); ok {
		t.Fatal("dropped table still visible")
	}
}

func TestViewNamespaceShared(t *testing.T) {
	c := New()
	q := &sqlparse.Select{}
	if err := c.CreateView(&ViewMeta{Name: "v", Query: q}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(meta("v")); err == nil {
		t.Fatal("table with view's name accepted")
	}
	if err := c.CreateView(&ViewMeta{Name: "v", Query: q}); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if err := c.CreateTable(meta("t")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&ViewMeta{Name: "t", Query: q}); err == nil {
		t.Fatal("view with table's name accepted")
	}
	if v, ok := c.View("V"); !ok || v.Name != "v" {
		t.Fatal("view lookup failed")
	}
	if !c.Drop("v") {
		t.Fatal("view drop failed")
	}
}

func TestStats(t *testing.T) {
	c := New()
	if err := c.CreateTable(meta("t", Column{Name: "a", Type: types.TInt})); err != nil {
		t.Fatal(err)
	}
	c.SetRowCount("t", 100)
	c.AddRowCount("t", 50)
	m, _ := c.Table("t")
	if m.RowCount() != 150 {
		t.Fatalf("rowcount %d", m.RowCount())
	}
	// Distinct defaults to row count, floor 1.
	if d := m.Distinct("a"); d != 150 {
		t.Fatalf("default distinct %g", d)
	}
	c.SetDistinct("t", "a", 10)
	if d := m.Distinct("a"); d != 10 {
		t.Fatalf("distinct %g", d)
	}
	empty := meta("e")
	if d := empty.Distinct("x"); d != 1 {
		t.Fatalf("empty distinct %g", d)
	}
}

func TestNameLists(t *testing.T) {
	c := New()
	_ = c.CreateTable(meta("b"))
	_ = c.CreateTable(meta("a"))
	_ = c.CreateView(&ViewMeta{Name: "z", Query: &sqlparse.Select{}})
	tn := c.TableNames()
	if len(tn) != 2 || tn[0] != "a" || tn[1] != "b" {
		t.Fatalf("tables %v", tn)
	}
	vn := c.ViewNames()
	if len(vn) != 1 || vn[0] != "z" {
		t.Fatalf("views %v", vn)
	}
}

func TestVersion(t *testing.T) {
	c := New()
	if c.Version() != 0 {
		t.Fatalf("fresh catalog version %d", c.Version())
	}
	_ = c.CreateTable(meta("t", Column{Name: "a", Type: types.TInt}))
	v1 := c.Version()
	if v1 == 0 {
		t.Fatal("CreateTable did not bump the version")
	}
	// Statistics updates are not DDL: cached plans stay valid.
	c.SetRowCount("t", 100)
	c.AddRowCount("t", 50)
	c.SetDistinct("t", "a", 10)
	if c.Version() != v1 {
		t.Fatalf("stats update bumped version %d -> %d", v1, c.Version())
	}
	_ = c.CreateView(&ViewMeta{Name: "v", Query: &sqlparse.Select{}})
	v2 := c.Version()
	if v2 == v1 {
		t.Fatal("CreateView did not bump the version")
	}
	if !c.Drop("t") {
		t.Fatal("drop failed")
	}
	if c.Version() == v2 {
		t.Fatal("Drop did not bump the version")
	}
	// A failed DDL leaves the version alone.
	before := c.Version()
	if c.Drop("no_such") {
		t.Fatal("dropped a missing table")
	}
	if err := c.CreateView(&ViewMeta{Name: "v", Query: &sqlparse.Select{}}); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if c.Version() != before {
		t.Fatalf("failed DDL bumped version %d -> %d", before, c.Version())
	}
}
