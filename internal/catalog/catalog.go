// Package catalog holds the metadata the planner and optimizer consult:
// table and view definitions, column types (including vector/matrix
// dimensions), and basic statistics (row counts, per-column distinct-value
// estimates). The statistics feed the cost model of internal/opt.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"relalg/internal/sqlparse"
	"relalg/internal/types"
)

// Column is one column of a relation schema.
type Column struct {
	Name string
	Type types.T
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TableMeta describes a stored table. Name, Schema, and PartitionCol are
// immutable after CreateTable; the statistics are guarded by their own lock
// because the optimizer reads them while concurrent loads refresh them.
type TableMeta struct {
	Name   string
	Schema Schema

	// PartitionCol names the hash-partitioning column ("" = round-robin).
	PartitionCol string

	// Statistics. rowCount is exact for stored tables (maintained on
	// insert/load); distinctEst maps column name to an estimated number of
	// distinct values (0 = unknown).
	statMu      sync.RWMutex
	rowCount    int64
	distinctEst map[string]float64
}

// NewTableMeta constructs a TableMeta with an initial row-count statistic.
// Callers that need a partition column set the exported field afterwards.
func NewTableMeta(name string, schema Schema, rows int64) *TableMeta {
	return &TableMeta{Name: name, Schema: schema, rowCount: rows, distinctEst: map[string]float64{}}
}

// RowCount returns the table's cardinality statistic.
func (m *TableMeta) RowCount() int64 {
	m.statMu.RLock()
	defer m.statMu.RUnlock()
	return m.rowCount
}

// SetRowCount replaces the cardinality statistic.
func (m *TableMeta) SetRowCount(n int64) {
	m.statMu.Lock()
	m.rowCount = n
	m.statMu.Unlock()
}

// AddRowCount adjusts the cardinality statistic by delta.
func (m *TableMeta) AddRowCount(delta int64) {
	m.statMu.Lock()
	m.rowCount += delta
	m.statMu.Unlock()
}

// Distinct returns the distinct-value estimate for a column, defaulting to
// the row count when unknown (every value unique) and at least 1.
func (m *TableMeta) Distinct(col string) float64 {
	m.statMu.RLock()
	defer m.statMu.RUnlock()
	if d, ok := m.distinctEst[col]; ok && d > 0 {
		return d
	}
	if m.rowCount > 0 {
		return float64(m.rowCount)
	}
	return 1
}

// DistinctMap returns a copy of the raw per-column distinct estimates (no
// row-count defaulting, unlike Distinct). The storage layer journals it as
// part of the table metadata so statistics survive restarts.
func (m *TableMeta) DistinctMap() map[string]float64 {
	m.statMu.RLock()
	defer m.statMu.RUnlock()
	out := make(map[string]float64, len(m.distinctEst))
	for k, v := range m.distinctEst {
		out[k] = v
	}
	return out
}

// SetDistinct records a distinct-value estimate for a column.
func (m *TableMeta) SetDistinct(col string, n float64) {
	m.statMu.Lock()
	if m.distinctEst == nil {
		m.distinctEst = map[string]float64{}
	}
	m.distinctEst[strings.ToLower(col)] = n
	m.statMu.Unlock()
}

// ViewMeta describes a named view: its definition query and optional output
// column renaming. Views are expanded inline by the planner.
type ViewMeta struct {
	Name  string
	Cols  []string // optional; empty means the query's own output names
	Query *sqlparse.Select
}

// Catalog is the thread-safe registry of tables and views.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableMeta
	views  map[string]*ViewMeta

	// version counts DDL operations (CREATE/DROP of tables and views). Plan
	// caches key their entries on it: a cached plan is valid only while the
	// version it was compiled under is still current. Statistics refreshes
	// (loads) do not bump it — a stale-stats plan is suboptimal, not wrong.
	version atomic.Int64
}

// Version returns the current DDL version counter.
func (c *Catalog) Version() int64 { return c.version.Load() }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: map[string]*TableMeta{},
		views:  map[string]*ViewMeta{},
	}
}

// CreateTable registers a table. The name must be unused by tables and views.
func (c *Catalog) CreateTable(meta *TableMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := strings.ToLower(meta.Name)
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, ok := c.views[name]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	if meta.distinctEst == nil {
		meta.distinctEst = map[string]float64{}
	}
	meta.Name = name
	c.tables[name] = meta
	c.version.Add(1)
	return nil
}

// CreateView registers a view under the same namespace as tables.
func (c *Catalog) CreateView(v *ViewMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := strings.ToLower(v.Name)
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, ok := c.views[name]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	v.Name = name
	c.views[name] = v
	c.version.Add(1)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*TableMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*ViewMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// Drop removes a table or view; it reports whether anything was removed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = strings.ToLower(name)
	if _, ok := c.tables[name]; ok {
		delete(c.tables, name)
		c.version.Add(1)
		return true
	}
	if _, ok := c.views[name]; ok {
		delete(c.views, name)
		c.version.Add(1)
		return true
	}
	return false
}

// SetRowCount updates a table's cardinality statistic.
func (c *Catalog) SetRowCount(name string, n int64) {
	if t, ok := c.Table(name); ok {
		t.SetRowCount(n)
	}
}

// AddRowCount adjusts a table's cardinality statistic by delta.
func (c *Catalog) AddRowCount(name string, delta int64) {
	if t, ok := c.Table(name); ok {
		t.AddRowCount(delta)
	}
}

// SetDistinct records a distinct-value estimate for a column.
func (c *Catalog) SetDistinct(table, col string, n float64) {
	if t, ok := c.Table(table); ok {
		t.SetDistinct(col, n)
	}
}

// TableNames returns the sorted table names (tests and tooling).
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns the sorted view names.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for n := range c.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
