package csvio

import (
	"bytes"
	"strings"
	"testing"

	"relalg/internal/core"
	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

func newDB(t *testing.T) *core.Database {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 1
	return core.Open(cfg)
}

func TestLoadScalarsWithHeader(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE t (id INTEGER, name STRING, score DOUBLE, ok BOOLEAN)")
	csvText := "id,name,score,ok\n1,alice,2.5,true\n2,bob,-1,false\n3,,3.25,true\n"
	n, err := Load(db, "t", strings.NewReader(csvText), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows", n)
	}
	res, err := db.Query("SELECT id, name, score, ok FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].S != "alice" || res.Rows[1][2].D != -1 || !res.Rows[2][1].IsNull() {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestLoadVectorsAndMatrices(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE vm (id INTEGER, vec VECTOR[3], mat MATRIX[2][2])")
	csvText := `1,"1 2 3","1 2; 3 4"` + "\n" + `2,"0 0 1","5 6; 7 8"` + "\n"
	if _, err := Load(db, "vm", strings.NewReader(csvText), false); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT vec, mat FROM vm ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Vec.Equal(linalg.VectorOf(1, 2, 3)) {
		t.Fatalf("vec %v", res.Rows[0][0])
	}
	if res.Rows[1][1].Mat.At(1, 0) != 7 {
		t.Fatalf("mat %v", res.Rows[1][1])
	}
}

func TestLoadErrors(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE t (id INTEGER, vec VECTOR[2])")
	cases := []string{
		"x,\"1 2\"",   // bad integer
		"1,\"1 2 3\"", // wrong vector length (schema enforcement)
		"1,\"1 two\"", // bad entry
		"1",           // wrong arity
	}
	for _, c := range cases {
		if _, err := Load(db, "t", strings.NewReader(c+"\n"), false); err == nil {
			t.Errorf("Load(%q) succeeded, want error", c)
		}
	}
	if _, err := Load(db, "nosuch", strings.NewReader("1\n"), false); err == nil {
		t.Error("load into missing table succeeded")
	}
	// Wrong header name.
	if _, err := Load(db, "t", strings.NewReader("id,wrong\n1,\"1 2\"\n"), true); err == nil {
		t.Error("bad header accepted")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE t (id INTEGER, vec VECTOR[2], mat MATRIX[2][2], s STRING)")
	m, _ := linalg.MatrixFromRows([][]float64{{1.5, 2}, {3, 4}})
	rows := []value.Row{
		{value.Int(1), value.Vector(linalg.VectorOf(0.5, -1)), value.Matrix(m), value.String_("hello, world")},
		{value.Int(2), value.Vector(linalg.VectorOf(7, 8)), value.Matrix(linalg.Identity(2)), value.Null()},
	}
	if err := db.LoadTable("t", rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpTable(db, "t", &buf); err != nil {
		t.Fatal(err)
	}

	// Round trip into a second database.
	db2 := newDB(t)
	db2.MustExec("CREATE TABLE t (id INTEGER, vec VECTOR[2], mat MATRIX[2][2], s STRING)")
	n, err := Load(db2, "t", bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatalf("round trip: %v\ncsv:\n%s", err, buf.String())
	}
	if n != 2 {
		t.Fatalf("round trip loaded %d rows", n)
	}
	res, err := db2.Query("SELECT id, vec, mat, s FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][1].Vec.Equal(linalg.VectorOf(0.5, -1)) {
		t.Fatalf("vec %v", res.Rows[0][1])
	}
	if !res.Rows[0][2].Mat.Equal(m) {
		t.Fatalf("mat %v", res.Rows[0][2])
	}
	if res.Rows[0][3].S != "hello, world" {
		t.Fatalf("string %v", res.Rows[0][3])
	}
	// NULL string dumps as empty and reloads as NULL.
	if !res.Rows[1][3].IsNull() {
		t.Fatalf("null round trip %v", res.Rows[1][3])
	}
}

func TestParseValueLabeledScalar(t *testing.T) {
	v, err := ParseValue("2.5", types.TLabeledScalar)
	if err != nil || v.Kind != value.KindLabeledScalar || v.D != 2.5 || v.Label != -1 {
		t.Fatalf("labeled scalar %v, %v", v, err)
	}
	if got := FormatValue(v); got != "2.5" {
		t.Fatalf("format %q", got)
	}
}
