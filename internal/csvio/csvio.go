// Package csvio loads and dumps tables as CSV, so the engine can exchange
// data with the outside world. Scalar columns use their natural text forms;
// VECTOR cells are space-separated entries ("1 2 3"); MATRIX cells are
// semicolon-separated rows of space-separated entries ("1 2; 3 4") — both
// forms fit in a single quoted CSV field and round-trip losslessly through
// strconv's shortest representation.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"relalg/internal/core"
	"relalg/internal/linalg"
	"relalg/internal/types"
	"relalg/internal/value"
)

// Load reads CSV rows into an existing table, coercing each field to the
// declared column type. header controls whether the first record is a
// header line (it is validated against the schema's column names when
// present).
func Load(db *core.Database, table string, r io.Reader, header bool) (int, error) {
	meta, ok := db.Catalog().Table(table)
	if !ok {
		return 0, fmt.Errorf("csvio: unknown table %q", table)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = meta.Schema.Arity()
	cr.TrimLeadingSpace = true

	var rows []value.Row
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("csvio: %w", err)
		}
		if first && header {
			first = false
			for i, name := range rec {
				if !strings.EqualFold(strings.TrimSpace(name), meta.Schema.Cols[i].Name) {
					return 0, fmt.Errorf("csvio: header column %d is %q, table has %q",
						i, name, meta.Schema.Cols[i].Name)
				}
			}
			continue
		}
		first = false
		row := make(value.Row, len(rec))
		for i, field := range rec {
			v, err := ParseValue(field, meta.Schema.Cols[i].Type)
			if err != nil {
				return 0, fmt.Errorf("csvio: row %d column %q: %w", len(rows)+1, meta.Schema.Cols[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := db.LoadTable(table, rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// ParseValue converts one CSV field to a value of the declared type. The
// empty string is NULL.
func ParseValue(field string, decl types.T) (value.Value, error) {
	field = strings.TrimSpace(field)
	if field == "" {
		return value.Null(), nil
	}
	switch decl.Base {
	case types.Int:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("bad INTEGER %q", field)
		}
		return value.Int(n), nil
	case types.Double, types.LabeledScalar:
		d, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("bad DOUBLE %q", field)
		}
		if decl.Base == types.LabeledScalar {
			return value.LabeledScalar(d, -1), nil
		}
		return value.Double(d), nil
	case types.String:
		return value.String_(field), nil
	case types.Bool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return value.Null(), fmt.Errorf("bad BOOLEAN %q", field)
		}
		return value.Bool(b), nil
	case types.Vector:
		entries, err := parseFloats(field)
		if err != nil {
			return value.Null(), err
		}
		return value.Vector(linalg.VectorOf(entries...)), nil
	case types.Matrix:
		var rows [][]float64
		for _, line := range strings.Split(field, ";") {
			entries, err := parseFloats(line)
			if err != nil {
				return value.Null(), err
			}
			rows = append(rows, entries)
		}
		m, err := linalg.MatrixFromRows(rows)
		if err != nil {
			return value.Null(), err
		}
		return value.Matrix(m), nil
	}
	return value.Null(), fmt.Errorf("csvio: unsupported column type %s", decl)
}

func parseFloats(s string) ([]float64, error) {
	fields := strings.Fields(s)
	out := make([]float64, len(fields))
	for i, f := range fields {
		d, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad numeric entry %q", f)
		}
		out[i] = d
	}
	return out, nil
}

// FormatValue renders one value as a CSV field, inverse of ParseValue.
func FormatValue(v value.Value) string {
	switch v.Kind {
	case value.KindNull:
		return ""
	case value.KindBool:
		return strconv.FormatBool(v.B)
	case value.KindInt:
		return strconv.FormatInt(v.I, 10)
	case value.KindDouble, value.KindLabeledScalar:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case value.KindString:
		return v.S
	case value.KindVector:
		return joinFloats(v.Vec.Data)
	case value.KindMatrix:
		parts := make([]string, v.Mat.Rows)
		for i := 0; i < v.Mat.Rows; i++ {
			parts[i] = joinFloats(v.Mat.Row(i))
		}
		return strings.Join(parts, "; ")
	}
	return ""
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

// Dump writes a query result as CSV with a header row.
func Dump(res *core.Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(res.Schema))
	for i, f := range res.Schema {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(res.Schema))
	for _, row := range res.Rows {
		for i, v := range row {
			rec[i] = FormatValue(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DumpTable dumps SELECT * FROM table.
func DumpTable(db *core.Database, table string, w io.Writer) error {
	res, err := db.Query("SELECT * FROM " + table)
	if err != nil {
		return err
	}
	return Dump(res, w)
}
