package value

import (
	"math"

	"relalg/internal/linalg"
)

func vecOf(data []float64) *linalg.Vector {
	return &linalg.Vector{Data: data}
}

func matOf(rows, cols int, data []float64) *linalg.Matrix {
	return &linalg.Matrix{Rows: rows, Cols: cols, Data: data}
}

// Hash returns a 64-bit hash of the value, used by hash partitioning and hash
// joins. Numeric values hash by their double representation so INTEGER 3 and
// DOUBLE 3.0 land in the same bucket (they also compare equal).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	switch v.Kind {
	case KindNull:
		mix(0)
	case KindBool:
		if v.B {
			mix(1)
		} else {
			mix(2)
		}
	case KindInt:
		mix(doubleBits(float64(v.I)))
	case KindDouble, KindLabeledScalar:
		mix(doubleBits(v.D))
	case KindString:
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= prime64
		}
	case KindVector:
		for _, x := range v.Vec.Data {
			mix(doubleBits(x))
		}
	case KindMatrix:
		mix(uint64(v.Mat.Cols))
		for _, x := range v.Mat.Data {
			mix(doubleBits(x))
		}
	}
	return h
}

func doubleBits(d float64) uint64 {
	if d == 0 {
		d = 0 // normalize -0.0 to +0.0
	}
	return math.Float64bits(d)
}

// HashRowKey hashes the projection of row onto the given column indexes.
func HashRowKey(row Row, cols []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= row[c].Hash()
		h *= prime64
	}
	return h
}

// KeyEqual reports whether two rows agree on the given key columns, using
// SQL equality (numeric kinds compare by value).
func KeyEqual(a, b Row, acols, bcols []int) bool {
	for i := range acols {
		av, bv := a[acols[i]], b[bcols[i]]
		if av.IsNumeric() && bv.IsNumeric() {
			x, _ := av.AsDouble()
			y, _ := bv.AsDouble()
			if x != y {
				return false
			}
			continue
		}
		if !av.Equal(bv) {
			return false
		}
	}
	return true
}
