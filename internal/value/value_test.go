package value

import (
	"testing"

	"relalg/internal/linalg"
)

func TestConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Double(2.5), KindDouble},
		{String_("hi"), KindString},
		{Vector(linalg.VectorOf(1, 2)), KindVector},
		{Matrix(linalg.Identity(2)), KindMatrix},
		{LabeledScalar(1.5, 3), KindLabeledScalar},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Fatal("IsNull misbehaves")
	}
	if Vector(linalg.VectorOf(1)).Label != -1 {
		t.Fatal("default vector label should be -1")
	}
	if LabeledVector(linalg.VectorOf(1), 9).Label != 9 {
		t.Fatal("LabeledVector label lost")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindDouble: "DOUBLE", KindString: "STRING", KindVector: "VECTOR",
		KindMatrix: "MATRIX", KindLabeledScalar: "LABELED_SCALAR",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAsDoubleAsInt(t *testing.T) {
	if d, err := Int(3).AsDouble(); err != nil || d != 3 {
		t.Fatalf("Int.AsDouble = %g, %v", d, err)
	}
	if d, err := Double(2.5).AsDouble(); err != nil || d != 2.5 {
		t.Fatalf("Double.AsDouble = %g, %v", d, err)
	}
	if d, err := LabeledScalar(4, 1).AsDouble(); err != nil || d != 4 {
		t.Fatalf("LabeledScalar.AsDouble = %g, %v", d, err)
	}
	if _, err := String_("x").AsDouble(); err == nil {
		t.Fatal("String.AsDouble should fail")
	}
	if i, err := Double(2.9).AsInt(); err != nil || i != 2 {
		t.Fatalf("Double.AsInt = %d, %v", i, err)
	}
	if _, err := Bool(true).AsInt(); err == nil {
		t.Fatal("Bool.AsInt should fail")
	}
}

func TestEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Fatal("Int equality broken")
	}
	if Int(3).Equal(Double(3)) {
		t.Fatal("Equal is kind-strict; Int(3) should not Equal Double(3)")
	}
	a := Vector(linalg.VectorOf(1, 2))
	b := Vector(linalg.VectorOf(1, 2))
	if !a.Equal(b) {
		t.Fatal("vector equality broken")
	}
	c := LabeledVector(linalg.VectorOf(1, 2), 5)
	if a.Equal(c) {
		t.Fatal("label should participate in equality")
	}
	if !Matrix(linalg.Identity(2)).Equal(Matrix(linalg.Identity(2))) {
		t.Fatal("matrix equality broken")
	}
	if !LabeledScalar(1, 2).Equal(LabeledScalar(1, 2)) || LabeledScalar(1, 2).Equal(LabeledScalar(1, 3)) {
		t.Fatal("labeled scalar equality broken")
	}
	if !Null().Equal(Null()) {
		t.Fatal("NULL should Equal NULL (for grouping)")
	}
}

func TestCompare(t *testing.T) {
	lt, err := Int(1).Compare(Double(2))
	if err != nil || lt != -1 {
		t.Fatalf("1 vs 2.0 = %d, %v", lt, err)
	}
	eq, err := Int(3).Compare(Double(3))
	if err != nil || eq != 0 {
		t.Fatalf("3 vs 3.0 = %d, %v", eq, err)
	}
	gt, err := String_("b").Compare(String_("a"))
	if err != nil || gt != 1 {
		t.Fatalf("b vs a = %d, %v", gt, err)
	}
	if c, err := Bool(false).Compare(Bool(true)); err != nil || c != -1 {
		t.Fatalf("false vs true = %d, %v", c, err)
	}
	if _, err := Vector(linalg.VectorOf(1)).Compare(Vector(linalg.VectorOf(1))); err == nil {
		t.Fatal("vectors must not be ordered")
	}
	if _, err := Null().Compare(Int(1)); err == nil {
		t.Fatal("NULL comparison must fail")
	}
	if _, err := Int(1).Compare(String_("1")); err == nil {
		t.Fatal("cross-kind comparison must fail")
	}
}

func TestSizeBytes(t *testing.T) {
	if Int(1).SizeBytes() != 8 || Double(1).SizeBytes() != 8 {
		t.Fatal("scalar sizes wrong")
	}
	if got := Vector(linalg.NewVector(10)).SizeBytes(); got != 92 {
		t.Fatalf("vector size = %d, want 92", got)
	}
	if got := Matrix(linalg.NewMatrix(3, 4)).SizeBytes(); got != 8*12+8 {
		t.Fatalf("matrix size = %d", got)
	}
	r := Row{Int(1), Double(2)}
	if r.SizeBytes() != 16 {
		t.Fatalf("row size = %d", r.SizeBytes())
	}
}

func TestRowCloneAndString(t *testing.T) {
	r := Row{Int(1), String_("x")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Fatal("Clone aliases the row")
	}
	if r.String() != "(1, x)" {
		t.Fatalf("Row.String = %q", r.String())
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":       Null(),
		"true":       Bool(true),
		"42":         Int(42),
		"2.5":        Double(2.5),
		"hi":         String_("hi"),
		"[1 2]":      Vector(linalg.VectorOf(1, 2)),
		"3@7":        LabeledScalar(3, 7),
		"[1 0; 0 1]": Matrix(linalg.Identity(2)),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String = %q, want %q", v.String(), want)
		}
	}
}

func TestHashConsistency(t *testing.T) {
	// Numeric kinds hash identically when they compare equal.
	if Int(3).Hash() != Double(3).Hash() {
		t.Fatal("Int(3) and Double(3) must hash alike")
	}
	if Int(3).Hash() == Int(4).Hash() {
		t.Fatal("suspicious collision for 3 and 4")
	}
	if String_("a").Hash() == String_("b").Hash() {
		t.Fatal("suspicious collision for strings")
	}
	v1 := Vector(linalg.VectorOf(1, 2, 3))
	v2 := Vector(linalg.VectorOf(1, 2, 3))
	if v1.Hash() != v2.Hash() {
		t.Fatal("equal vectors must hash alike")
	}
}

func TestKeyHelpers(t *testing.T) {
	a := Row{Int(1), String_("x"), Double(2)}
	b := Row{Double(1), String_("x"), Int(5)}
	if !KeyEqual(a, b, []int{0, 1}, []int{0, 1}) {
		t.Fatal("numeric key equality across kinds failed")
	}
	if KeyEqual(a, b, []int{2}, []int{2}) {
		t.Fatal("2 should not equal 5")
	}
	if HashRowKey(a, []int{0}) != HashRowKey(b, []int{0}) {
		t.Fatal("key hash must agree for Int(1)/Double(1)")
	}
}
