package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary row codec. Rows are encoded whenever they cross a simulated
// network boundary (cluster shuffles), so that the benchmarks charge a
// realistic serialization cost — the term that dominates the paper's
// Figure 4 aggregation breakdown.
//
// Layout (little endian):
//
//	row    := u32 count, value*
//	value  := u8 kind, payload
//	bool   := u8
//	int    := i64
//	double := f64
//	string := u32 len, bytes
//	vector := i64 label, u32 len, f64*
//	matrix := u32 rows, u32 cols, f64*
//	lscal  := f64, i64 label

// AppendRow appends the encoding of r to dst and returns the extended slice.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// AppendValue appends the encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindBool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case KindDouble:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.D))
	case KindString:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.S)))
		dst = append(dst, v.S...)
	case KindVector:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Label))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Vec.Len()))
		for _, x := range v.Vec.Data {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case KindMatrix:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Mat.Rows))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Mat.Cols))
		for _, x := range v.Mat.Data {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case KindLabeledScalar:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.D))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Label))
	}
	return dst
}

// DecodeRow decodes one row from buf, returning the row and the remaining
// bytes.
func DecodeRow(buf []byte) (Row, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("value: short row header")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	row := make(Row, n)
	var err error
	for i := range row {
		row[i], buf, err = DecodeValue(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}

// DecodeValue decodes one value from buf, returning the value and the
// remaining bytes.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) < 1 {
		return Value{}, nil, fmt.Errorf("value: short value header")
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindNull:
		return Null(), buf, nil
	case KindBool:
		if len(buf) < 1 {
			return Value{}, nil, fmt.Errorf("value: short bool")
		}
		return Bool(buf[0] != 0), buf[1:], nil
	case KindInt:
		if len(buf) < 8 {
			return Value{}, nil, fmt.Errorf("value: short int")
		}
		return Int(int64(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case KindDouble:
		if len(buf) < 8 {
			return Value{}, nil, fmt.Errorf("value: short double")
		}
		return Double(math.Float64frombits(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case KindString:
		if len(buf) < 4 {
			return Value{}, nil, fmt.Errorf("value: short string header")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < n {
			return Value{}, nil, fmt.Errorf("value: short string body")
		}
		return String_(string(buf[:n])), buf[n:], nil
	case KindVector:
		if len(buf) < 12 {
			return Value{}, nil, fmt.Errorf("value: short vector header")
		}
		label := int64(binary.LittleEndian.Uint64(buf))
		n := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		if len(buf) < 8*n {
			return Value{}, nil, fmt.Errorf("value: short vector body")
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		buf = buf[8*n:]
		v := LabeledVector(vecOf(data), label)
		return v, buf, nil
	case KindMatrix:
		if len(buf) < 8 {
			return Value{}, nil, fmt.Errorf("value: short matrix header")
		}
		rows := int(binary.LittleEndian.Uint32(buf))
		cols := int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		if len(buf) < 8*rows*cols {
			return Value{}, nil, fmt.Errorf("value: short matrix body")
		}
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		buf = buf[8*rows*cols:]
		return Matrix(matOf(rows, cols, data)), buf, nil
	case KindLabeledScalar:
		if len(buf) < 16 {
			return Value{}, nil, fmt.Errorf("value: short labeled scalar")
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		label := int64(binary.LittleEndian.Uint64(buf[8:]))
		return LabeledScalar(d, label), buf[16:], nil
	}
	return Value{}, nil, fmt.Errorf("value: unknown kind byte %d", kind)
}

// EncodeRows encodes a batch of rows into one buffer.
func EncodeRows(rows []Row) []byte {
	var size int
	for _, r := range rows {
		size += r.SizeBytes() + 8
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		buf = AppendRow(buf, r)
	}
	return buf
}

// DecodeRows decodes a batch encoded by EncodeRows.
func DecodeRows(buf []byte) ([]Row, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("value: short batch header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	rows := make([]Row, n)
	var err error
	for i := range rows {
		rows[i], buf, err = DecodeRow(buf)
		if err != nil {
			return nil, err
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("value: %d trailing bytes after batch", len(buf))
	}
	return rows, nil
}
