package value

import (
	"math"
	"testing"

	"relalg/internal/linalg"
)

func batchTestRows() []Row {
	return []Row{
		{Int(1), Double(1.5), String_("a"), Bool(true)},
		{Int(-2), Double(math.NaN()), String_(""), Bool(false)},
		{Int(1 << 60), Double(math.Inf(1)), String_("zz"), Bool(true)},
		{Int(0), Double(math.Copysign(0, -1)), String_("a"), Bool(false)},
	}
}

func TestColGatherValueRoundTrip(t *testing.T) {
	rows := batchTestRows()
	b := BatchFromRows(rows)
	if b.N != len(rows) || len(b.Cols) != 4 {
		t.Fatalf("batch shape N=%d cols=%d", b.N, len(b.Cols))
	}
	for j := range b.Cols {
		if b.Cols[j].Generic {
			t.Fatalf("col %d unexpectedly generic", j)
		}
		for i := range rows {
			got, want := b.Cols[j].Value(i), rows[i][j]
			gb := EncodeRows([]Row{{got}})
			wb := EncodeRows([]Row{{want}})
			if string(gb) != string(wb) {
				t.Fatalf("col %d lane %d: got %v want %v", j, i, got, want)
			}
		}
	}
}

func TestColGatherDegradesOnMixedKinds(t *testing.T) {
	rows := []Row{{Int(1)}, {Double(2)}, {Null()}}
	var c Col
	c.Gather(rows, 0, len(rows), 0)
	if !c.Generic {
		t.Fatal("mixed-kind column must be generic")
	}
	for i := range rows {
		if !c.Value(i).Equal(rows[i][0]) && rows[i][0].Kind != KindNull {
			t.Fatalf("lane %d mismatch", i)
		}
	}
	// Leading NULL also degrades.
	c.Gather([]Row{{Null()}, {Int(1)}}, 0, 2, 0)
	if !c.Generic {
		t.Fatal("null-leading column must be generic")
	}
}

func TestColHashesMatchValueHash(t *testing.T) {
	vec := Value{Kind: KindVector, Vec: &linalg.Vector{Data: []float64{1, math.NaN(), -0.0}}, Label: 7}
	mat := Value{Kind: KindMatrix, Mat: &linalg.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}}
	cols := [][]Row{
		{{Int(5)}, {Int(-5)}, {Int(0)}},
		{{Double(3)}, {Double(-0.0)}, {Double(math.NaN())}},
		{{String_("abc")}, {String_("")}, {String_("x")}},
		{{Bool(true)}, {Bool(false)}, {Bool(true)}},
		{{vec}, {vec}, {vec}},
		{{mat}, {mat}, {mat}},
		{{Int(1)}, {Null()}, {String_("mix")}}, // generic
	}
	for ci, rows := range cols {
		var c Col
		c.Gather(rows, 0, len(rows), 0)
		dst := make([]uint64, len(rows))
		c.HashesInto(dst, nil)
		for i := range rows {
			if want := rows[i][0].Hash(); dst[i] != want {
				t.Fatalf("col set %d lane %d: hash %x want %x", ci, i, dst[i], want)
			}
		}
		// Selected variant touches only selected lanes.
		dst2 := make([]uint64, len(rows))
		sel := []int32{0, 2}
		c.HashesInto(dst2, sel)
		for _, i := range sel {
			if dst2[i] != dst[i] {
				t.Fatalf("col set %d sel lane %d: hash mismatch", ci, i)
			}
		}
	}
}

func TestCombineKeyHashesMatchesHashRowKey(t *testing.T) {
	rows := batchTestRows()
	b := BatchFromRows(rows)
	keyCols := []int{0, 2, 3}
	n := b.N
	combined := make([]uint64, n)
	for i := range combined {
		combined[i] = KeyHashInit
	}
	scratch := make([]uint64, n)
	for _, kc := range keyCols {
		b.Cols[kc].HashesInto(scratch, nil)
		CombineKeyHashes(combined, scratch, nil)
	}
	for i, r := range rows {
		if want := HashRowKey(r, keyCols); combined[i] != want {
			t.Fatalf("lane %d: combined %x want %x", i, combined[i], want)
		}
	}
}

func TestBatchAppendRowsHonorsSelection(t *testing.T) {
	rows := batchTestRows()
	b := BatchFromRows(rows)
	b.Sel = []int32{1, 3}
	out := b.AppendRows(nil)
	if len(out) != 2 {
		t.Fatalf("got %d rows", len(out))
	}
	for k, i := range []int{1, 3} {
		gb := EncodeRows([]Row{out[k]})
		wb := EncodeRows([]Row{rows[i]})
		if string(gb) != string(wb) {
			t.Fatalf("selected row %d mismatch", i)
		}
	}
}

func TestBatchDeepCloneSeversAliasing(t *testing.T) {
	v := &linalg.Vector{Data: []float64{1, 2, 3}}
	rows := []Row{
		{Vector(v), Int(1)},
		{Vector(v), Int(2)},
	}
	b := BatchFromRows(rows)
	b.Sel = []int32{1}
	clone := b.DeepClone()
	if clone.N != 1 || clone.Sel != nil {
		t.Fatalf("clone must be compacted: N=%d sel=%v", clone.N, clone.Sel)
	}
	clone.Cols[0].Vec[0].Data[0] = 99
	if v.Data[0] != 1 {
		t.Fatal("DeepClone shares vector backing storage")
	}
	if got := clone.Cols[1].I[0]; got != 2 {
		t.Fatalf("clone kept wrong lane: %d", got)
	}
}

func TestColAppendFromAndSizeBytes(t *testing.T) {
	rows := batchTestRows()
	b := BatchFromRows(rows)
	var key Col
	for i := 0; i < b.N; i++ {
		key.AppendFrom(&b.Cols[2], i)
	}
	if key.Generic || key.Kind != KindString {
		t.Fatal("uniform string appends must stay typed")
	}
	// Mismatched kind degrades.
	key.AppendFrom(&b.Cols[0], 0)
	if !key.Generic || key.Len() != b.N+1 {
		t.Fatal("mixed append must degrade to generic")
	}
	for j := range b.Cols {
		for i := 0; i < b.N; i++ {
			if got, want := b.Cols[j].SizeBytesAt(i), rows[i][j].SizeBytes(); got != want {
				t.Fatalf("col %d lane %d: size %d want %d", j, i, got, want)
			}
		}
	}
}

func TestColSpecialize(t *testing.T) {
	var c Col
	c.Generic = true
	c.Any = []Value{Int(1), Null(), Int(3)}
	c.Specialize(3, []int32{0, 2})
	if c.Generic || c.Kind != KindInt {
		t.Fatal("selected-uniform column must specialize")
	}
	if c.I[0] != 1 || c.I[2] != 3 {
		t.Fatal("specialized lanes lost values")
	}
	var d Col
	d.Generic = true
	d.Any = []Value{Int(1), Null(), Int(3)}
	d.Specialize(3, nil)
	if !d.Generic {
		t.Fatal("NULL-bearing dense column must stay generic")
	}
}

func TestGatherMultiMatchesGather(t *testing.T) {
	cases := [][]Row{
		batchTestRows(),
		{ // degrading columns: kind change mid-window, leading NULL
			{Int(1), Null(), LabeledScalar(1.5, 3)},
			{Double(2), Int(7), LabeledScalar(math.NaN(), -1)},
			{Null(), String_("x"), Double(9)},
		},
		{ // single row
			{Bool(false), Int(42), Double(-0.0)},
		},
	}
	for ci, rows := range cases {
		width := len(rows[0])
		idxs := make([]int, width)
		for j := range idxs {
			idxs[j] = j
		}
		multi := make([]*Col, width)
		for j := range multi {
			multi[j] = new(Col)
		}
		// Windows exercise lo/hi offsets, not just full-range gathers.
		for lo := 0; lo < len(rows); lo++ {
			for hi := lo + 1; hi <= len(rows); hi++ {
				GatherMulti(rows, lo, hi, idxs, multi)
				for j := 0; j < width; j++ {
					var single Col
					single.Gather(rows, lo, hi, j)
					if multi[j].Generic != single.Generic {
						t.Fatalf("case %d col %d [%d:%d]: generic %v want %v",
							ci, j, lo, hi, multi[j].Generic, single.Generic)
					}
					for i := 0; i < hi-lo; i++ {
						gb := EncodeRows([]Row{{multi[j].Value(i)}})
						wb := EncodeRows([]Row{{single.Value(i)}})
						if string(gb) != string(wb) {
							t.Fatalf("case %d col %d [%d:%d] lane %d: %v want %v",
								ci, j, lo, hi, i, multi[j].Value(i), single.Value(i))
						}
					}
				}
			}
		}
	}
}
