// Package value defines the runtime values that flow through the engine:
// the classic SQL scalars plus the paper's three new column types —
// LABELED_SCALAR, VECTOR, and MATRIX. It also provides the binary row codec
// used whenever rows cross a (simulated) network boundary.
package value

import (
	"fmt"
	"strconv"

	"relalg/internal/linalg"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The runtime kinds. KindLabeledScalar is a DOUBLE carrying an integer label;
// KindVector values also carry a label (implicitly -1 unless set with
// label_vector), which ROWMATRIX and COLMATRIX use for placement.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindDouble
	KindString
	KindVector
	KindMatrix
	KindLabeledScalar
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindDouble:
		return "DOUBLE"
	case KindString:
		return "STRING"
	case KindVector:
		return "VECTOR"
	case KindMatrix:
		return "MATRIX"
	case KindLabeledScalar:
		return "LABELED_SCALAR"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind  Kind
	B     bool
	I     int64
	D     float64 // also holds the scalar of a LABELED_SCALAR
	S     string
	Vec   *linalg.Vector
	Mat   *linalg.Matrix
	Label int64 // label of a LABELED_SCALAR or VECTOR; -1 when unset
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Double returns a DOUBLE value.
func Double(d float64) Value { return Value{Kind: KindDouble, D: d} }

// String_ returns a STRING value. (String is taken by fmt.Stringer.)
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Vector returns a VECTOR value with the default label -1.
func Vector(v *linalg.Vector) Value { return Value{Kind: KindVector, Vec: v, Label: -1} }

// LabeledVector returns a VECTOR value carrying an explicit label.
func LabeledVector(v *linalg.Vector, label int64) Value {
	return Value{Kind: KindVector, Vec: v, Label: label}
}

// Matrix returns a MATRIX value.
func Matrix(m *linalg.Matrix) Value { return Value{Kind: KindMatrix, Mat: m} }

// LabeledScalar returns a LABELED_SCALAR: a DOUBLE with an attached label.
func LabeledScalar(d float64, label int64) Value {
	return Value{Kind: KindLabeledScalar, D: d, Label: label}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsDouble converts numeric kinds to float64.
func (v Value) AsDouble() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), nil
	case KindDouble, KindLabeledScalar:
		return v.D, nil
	}
	return 0, fmt.Errorf("value: cannot use %s as DOUBLE", v.Kind)
}

// AsInt converts numeric kinds to int64 (doubles truncate).
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindDouble, KindLabeledScalar:
		return int64(v.D), nil
	}
	return 0, fmt.Errorf("value: cannot use %s as INTEGER", v.Kind)
}

// IsNumeric reports whether v can participate in scalar arithmetic.
func (v Value) IsNumeric() bool {
	switch v.Kind {
	case KindInt, KindDouble, KindLabeledScalar:
		return true
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindDouble:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case KindString:
		return v.S
	case KindVector:
		return v.Vec.String()
	case KindMatrix:
		return v.Mat.String()
	case KindLabeledScalar:
		return fmt.Sprintf("%g@%d", v.D, v.Label)
	}
	return "?"
}

// Equal reports deep equality (exact float comparison).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindBool:
		return v.B == w.B
	case KindInt:
		return v.I == w.I
	case KindDouble:
		return v.D == w.D
	case KindString:
		return v.S == w.S
	case KindVector:
		return v.Label == w.Label && v.Vec.Equal(w.Vec)
	case KindMatrix:
		return v.Mat.Equal(w.Mat)
	case KindLabeledScalar:
		return v.D == w.D && v.Label == w.Label
	}
	return false
}

// Compare orders two comparable values: -1, 0, +1. Vectors and matrices are
// not ordered; comparing them is an error.
func (v Value) Compare(w Value) (int, error) {
	if v.IsNull() || w.IsNull() {
		return 0, fmt.Errorf("value: cannot compare NULL")
	}
	if v.IsNumeric() && w.IsNumeric() {
		a, _ := v.AsDouble()
		b, _ := w.AsDouble()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
	if v.Kind == KindString && w.Kind == KindString {
		switch {
		case v.S < w.S:
			return -1, nil
		case v.S > w.S:
			return 1, nil
		}
		return 0, nil
	}
	if v.Kind == KindBool && w.Kind == KindBool {
		switch {
		case !v.B && w.B:
			return -1, nil
		case v.B && !w.B:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("value: cannot compare %s with %s", v.Kind, w.Kind)
}

// SizeBytes estimates the in-memory payload of the value; the optimizer's
// byte-based cost model and the cluster accounting both use it.
func (v Value) SizeBytes() int {
	switch v.Kind {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt, KindDouble:
		return 8
	case KindLabeledScalar:
		return 16
	case KindString:
		return len(v.S) + 4
	case KindVector:
		return 8*v.Vec.Len() + 12
	case KindMatrix:
		return 8*v.Mat.Rows*v.Mat.Cols + 8
	}
	return 0
}

// Row is a tuple of values.
type Row []Value

// Clone returns a shallow copy of the row (values are immutable by
// convention; vectors/matrices are shared).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// DeepClone returns a copy of the value sharing no backing storage: vectors
// and matrices are cloned, scalars are value types already.
func (v Value) DeepClone() Value {
	if v.Vec != nil {
		v.Vec = v.Vec.Clone()
	}
	if v.Mat != nil {
		v.Mat = v.Mat.Clone()
	}
	return v
}

// DeepClone returns a copy of the row whose values share no backing storage
// with the original (unlike Clone, which shares vectors and matrices). Used
// when the same row is replicated to several partitions without a codec
// round-trip in between.
func (r Row) DeepClone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		out[i] = v.DeepClone()
	}
	return out
}

// SizeBytes sums the sizes of all values in the row.
func (r Row) SizeBytes() int {
	n := 0
	for _, v := range r {
		n += v.SizeBytes()
	}
	return n
}

func (r Row) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
