package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relalg/internal/linalg"
)

func roundTripRow(t *testing.T, r Row) {
	t.Helper()
	buf := AppendRow(nil, r)
	got, rest, err := DecodeRow(buf)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if len(got) != len(r) {
		t.Fatalf("row length %d, want %d", len(got), len(r))
	}
	for i := range r {
		if !got[i].Equal(r[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], r[i])
		}
	}
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	roundTripRow(t, Row{
		Null(),
		Bool(true),
		Bool(false),
		Int(-42),
		Double(3.14159),
		String_(""),
		String_("hello, codec"),
		Vector(linalg.VectorOf(1, -2, 3.5)),
		LabeledVector(linalg.VectorOf(9), 77),
		Matrix(linalg.Identity(3)),
		LabeledScalar(-1.5, 123),
	})
}

func TestCodecEmptyRow(t *testing.T) {
	roundTripRow(t, Row{})
}

func TestCodecBatch(t *testing.T) {
	rows := []Row{
		{Int(1), Double(2)},
		{String_("a"), Null()},
		{Vector(linalg.VectorOf(5, 6))},
	}
	buf := EncodeRows(rows)
	got, err := DecodeRows(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("batch length %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if !got[i][j].Equal(rows[i][j]) {
				t.Fatalf("row %d col %d mismatch", i, j)
			}
		}
	}
}

func TestCodecCorruptInputs(t *testing.T) {
	bad := [][]byte{
		{},                                // empty
		{1, 0, 0},                         // short row header
		{1, 0, 0, 0},                      // count 1 but no value
		{1, 0, 0, 0, 200},                 // unknown kind
		{1, 0, 0, 0, byte(KindInt), 1, 2}, // short int
	}
	for i, buf := range bad {
		if _, _, err := DecodeRow(buf); err == nil {
			t.Errorf("case %d: corrupt input decoded successfully", i)
		}
	}
	if _, err := DecodeRows([]byte{9}); err == nil {
		t.Error("short batch decoded successfully")
	}
	// Trailing garbage after a valid batch is an error.
	buf := EncodeRows([]Row{{Int(1)}})
	buf = append(buf, 0xFF)
	if _, err := DecodeRows(buf); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(8) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Double(r.NormFloat64() * 1000)
	case 4:
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String_(string(b))
	case 5:
		v := linalg.NewVector(r.Intn(8))
		for i := range v.Data {
			v.Data[i] = r.NormFloat64()
		}
		return LabeledVector(v, int64(r.Intn(100))-1)
	case 6:
		m := linalg.NewMatrix(r.Intn(5)+1, r.Intn(5)+1)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		return Matrix(m)
	default:
		return LabeledScalar(r.NormFloat64(), int64(r.Intn(1000)))
	}
}

func TestPropCodecRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		row := make(Row, int(nRaw%10))
		for i := range row {
			row[i] = randomValue(r)
		}
		buf := AppendRow(nil, row)
		got, rest, err := DecodeRow(buf)
		if err != nil || len(rest) != 0 || len(got) != len(row) {
			return false
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bitsEqual compares values exactly, treating NaN as equal to NaN by bit
// pattern (Value.Equal follows IEEE NaN != NaN, which would make codec
// round-trip checks vacuous for NaN payloads).
func bitsEqual(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	f64eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	switch a.Kind {
	case KindDouble:
		return f64eq(a.D, b.D)
	case KindLabeledScalar:
		return a.Label == b.Label && f64eq(a.D, b.D)
	case KindVector:
		if a.Label != b.Label || a.Vec.Len() != b.Vec.Len() {
			return false
		}
		for i := range a.Vec.Data {
			if !f64eq(a.Vec.Data[i], b.Vec.Data[i]) {
				return false
			}
		}
		return true
	case KindMatrix:
		if a.Mat.Rows != b.Mat.Rows || a.Mat.Cols != b.Mat.Cols {
			return false
		}
		for i := range a.Mat.Data {
			if !f64eq(a.Mat.Data[i], b.Mat.Data[i]) {
				return false
			}
		}
		return true
	default:
		return a.Equal(b)
	}
}

// roundTripBits encodes and decodes a row, comparing bit-exactly.
func roundTripBits(t *testing.T, r Row) {
	t.Helper()
	buf := AppendRow(nil, r)
	got, rest, err := DecodeRow(buf)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if len(rest) != 0 || len(got) != len(r) {
		t.Fatalf("rest=%d len=%d want len=%d", len(rest), len(got), len(r))
	}
	for i := range r {
		if !bitsEqual(got[i], r[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], r[i])
		}
	}
}

// TestCodecSpecialFloats: NaN, infinities, signed zero, and denormals
// round-trip bit-identically in every float-carrying kind. Spill files reuse
// this codec, so out-of-core execution depends on it.
func TestCodecSpecialFloats(t *testing.T) {
	nan := math.NaN()
	specials := []float64{nan, math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, math.MaxFloat64}
	for _, f := range specials {
		roundTripBits(t, Row{
			Double(f),
			LabeledScalar(f, 42),
			Vector(linalg.VectorOf(f, 1, f)),
			LabeledVector(linalg.VectorOf(f), -1),
		})
	}
	m := linalg.NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = specials[i%len(specials)]
	}
	roundTripBits(t, Row{Matrix(m)})
}

// TestCodecDegenerateShapes: empty vectors and 1×n / n×1 / 1×1 matrices.
func TestCodecDegenerateShapes(t *testing.T) {
	roundTripBits(t, Row{
		Vector(linalg.NewVector(0)),
		LabeledVector(linalg.NewVector(0), 7),
		Matrix(linalg.NewMatrix(1, 1)),
		Matrix(linalg.NewMatrix(1, 5)),
		Matrix(linalg.NewMatrix(5, 1)),
	})
}

// TestPropCodecRoundTripBits is the bit-exact variant of the round-trip
// property, with special floats injected into the random rows (the
// Equal-based property cannot cover NaN).
func TestPropCodecRoundTripBits(t *testing.T) {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		row := make(Row, int(nRaw%8)+1)
		for i := range row {
			row[i] = randomValue(r)
			// Poison some float payloads with specials.
			s := specials[r.Intn(len(specials))]
			switch v := &row[i]; v.Kind {
			case KindDouble, KindLabeledScalar:
				v.D = s
			case KindVector:
				if v.Vec.Len() > 0 && r.Intn(2) == 0 {
					vec := linalg.NewVector(v.Vec.Len())
					copy(vec.Data, v.Vec.Data)
					vec.Data[r.Intn(vec.Len())] = s
					v.Vec = vec
				}
			case KindMatrix:
				if len(v.Mat.Data) > 0 && r.Intn(2) == 0 {
					m := linalg.NewMatrix(v.Mat.Rows, v.Mat.Cols)
					copy(m.Data, v.Mat.Data)
					m.Data[r.Intn(len(m.Data))] = s
					v.Mat = m
				}
			}
		}
		buf := AppendRow(nil, row)
		got, rest, err := DecodeRow(buf)
		if err != nil || len(rest) != 0 || len(got) != len(row) {
			return false
		}
		for i := range row {
			if !bitsEqual(got[i], row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropHashAgreesWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		// Encode/decode then hash: equal values must agree.
		buf := AppendValue(nil, v)
		w, _, err := DecodeValue(buf)
		if err != nil {
			return false
		}
		return v.Hash() == w.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
