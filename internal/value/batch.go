package value

import (
	"relalg/internal/linalg"
)

// This file defines the columnar batch representation the vectorized executor
// passes between operators: a window of 1-4K rows stored as per-column typed
// arrays plus a selection vector of live lanes. A column is "typed" when every
// value in the window has the same kind — the common case for relational data
// — and falls back to a generic []Value otherwise (mixed kinds or NULLs), so
// vectorized fast paths never have to reason about per-lane kind dispatch:
// they either run over a homogeneous array or the evaluator degrades to
// element-at-a-time evaluation with exactly the row executor's semantics.

// Col is one column of a batch: either a homogeneous typed array (Generic
// false; Kind names the storage) or a generic value array (Generic true).
// The typed arrays alias the vectors/matrices of the rows they were gathered
// from — like Row.Clone, a gathered column shares cell backing storage, so a
// column that crosses a partition or goroutine boundary must go through
// DeepClone or the row codec just as rows must.
type Col struct {
	Kind    Kind
	Generic bool

	B     []bool
	I     []int64
	F     []float64 // KindDouble and the scalar of KindLabeledScalar
	S     []string
	Vec   []*linalg.Vector
	Mat   []*linalg.Matrix
	Label []int64 // labels for KindLabeledScalar and KindVector

	Any []Value // Generic storage
}

// Len returns the number of lanes in the column.
func (c *Col) Len() int {
	if c.Generic {
		return len(c.Any)
	}
	switch c.Kind {
	case KindBool:
		return len(c.B)
	case KindInt:
		return len(c.I)
	case KindDouble, KindLabeledScalar:
		return len(c.F)
	case KindString:
		return len(c.S)
	case KindVector:
		return len(c.Vec)
	case KindMatrix:
		return len(c.Mat)
	}
	return 0
}

// Reset clears the column for reuse, keeping backing arrays.
func (c *Col) Reset() {
	c.Kind = KindNull
	c.Generic = false
	c.B = c.B[:0]
	c.I = c.I[:0]
	c.F = c.F[:0]
	c.S = c.S[:0]
	c.Vec = c.Vec[:0]
	c.Mat = c.Mat[:0]
	c.Label = c.Label[:0]
	c.Any = c.Any[:0]
}

// Gather fills the column from rows[lo:hi] at column index idx. It starts
// optimistically typed from the first value's kind and degrades to generic
// storage when a lane disagrees (including NULLs).
func (c *Col) Gather(rows []Row, lo, hi, idx int) {
	c.Reset()
	if hi <= lo {
		return
	}
	kind := rows[lo][idx].Kind
	if kind == KindNull {
		c.gatherGeneric(rows, lo, hi, idx)
		return
	}
	c.Kind = kind
	for i := lo; i < hi; i++ {
		v := rows[i][idx]
		if v.Kind != kind {
			c.gatherGeneric(rows, lo, hi, idx)
			return
		}
		switch kind {
		case KindBool:
			c.B = append(c.B, v.B)
		case KindInt:
			c.I = append(c.I, v.I)
		case KindDouble:
			c.F = append(c.F, v.D)
		case KindLabeledScalar:
			c.F = append(c.F, v.D)
			c.Label = append(c.Label, v.Label)
		case KindString:
			c.S = append(c.S, v.S)
		case KindVector:
			c.Vec = append(c.Vec, v.Vec)
			c.Label = append(c.Label, v.Label)
		case KindMatrix:
			c.Mat = append(c.Mat, v.Mat)
		}
	}
}

// Append appends v as the next lane. It is the exported entry point for
// producers that build columns value-at-a-time from an external source (the
// storage engine decodes page payloads straight into columns this way).
func (c *Col) Append(v Value) { c.appendValue(v) }

// appendValue appends v as the next lane, starting optimistically typed from
// the first value's kind and degrading to generic storage on a mismatch or
// NULL, exactly as Gather does. The column must be Reset before the first
// append.
func (c *Col) appendValue(v Value) {
	if c.Generic {
		c.Any = append(c.Any, v)
		return
	}
	if c.Kind == KindNull { // first lane
		if v.Kind == KindNull {
			c.Generic = true
			c.Any = append(c.Any, v)
			return
		}
		c.Kind = v.Kind
	}
	if v.Kind != c.Kind {
		c.degrade()
		c.Any = append(c.Any, v)
		return
	}
	switch c.Kind {
	case KindBool:
		c.B = append(c.B, v.B)
	case KindInt:
		c.I = append(c.I, v.I)
	case KindDouble:
		c.F = append(c.F, v.D)
	case KindLabeledScalar:
		c.F = append(c.F, v.D)
		c.Label = append(c.Label, v.Label)
	case KindString:
		c.S = append(c.S, v.S)
	case KindVector:
		c.Vec = append(c.Vec, v.Vec)
		c.Label = append(c.Label, v.Label)
	case KindMatrix:
		c.Mat = append(c.Mat, v.Mat)
	}
}

// GatherMulti fills cols[j] from column idxs[j] of rows[lo:hi] in a single
// pass over the rows. It is lane-for-lane equivalent to calling Gather once
// per column, but each row's backing array is visited once, so the scattered
// loads of neighbouring columns hit adjacent cache lines instead of re-walking
// the row set per column.
func GatherMulti(rows []Row, lo, hi int, idxs []int, cols []*Col) {
	for _, c := range cols {
		c.Reset()
	}
	for i := lo; i < hi; i++ {
		r := rows[i]
		for j, idx := range idxs {
			c := cols[j]
			v := &r[idx]
			// Inline the numeric hot paths; everything else (first lane,
			// kind change, non-numeric kinds) takes the general append.
			if !c.Generic && v.Kind == c.Kind {
				if v.Kind == KindDouble {
					c.F = append(c.F, v.D)
					continue
				}
				if v.Kind == KindInt {
					c.I = append(c.I, v.I)
					continue
				}
			}
			c.appendValue(*v)
		}
	}
}

func (c *Col) gatherGeneric(rows []Row, lo, hi, idx int) {
	c.Reset()
	c.Generic = true
	if cap(c.Any) < hi-lo {
		c.Any = make([]Value, 0, hi-lo)
	}
	for i := lo; i < hi; i++ {
		c.Any = append(c.Any, rows[i][idx])
	}
}

// Fill makes the column n lanes of the constant v.
func (c *Col) Fill(v Value, n int) {
	c.Reset()
	if v.Kind == KindNull {
		c.Generic = true
		for i := 0; i < n; i++ {
			c.Any = append(c.Any, v)
		}
		return
	}
	c.Kind = v.Kind
	for i := 0; i < n; i++ {
		switch v.Kind {
		case KindBool:
			c.B = append(c.B, v.B)
		case KindInt:
			c.I = append(c.I, v.I)
		case KindDouble:
			c.F = append(c.F, v.D)
		case KindLabeledScalar:
			c.F = append(c.F, v.D)
			c.Label = append(c.Label, v.Label)
		case KindString:
			c.S = append(c.S, v.S)
		case KindVector:
			c.Vec = append(c.Vec, v.Vec)
			c.Label = append(c.Label, v.Label)
		case KindMatrix:
			c.Mat = append(c.Mat, v.Mat)
		}
	}
}

// Value reconstructs lane i as a Value. Like reading a cell from a Row, the
// result shares vector/matrix backing storage with the column.
func (c *Col) Value(i int) Value {
	if c.Generic {
		return c.Any[i]
	}
	switch c.Kind {
	case KindBool:
		return Value{Kind: KindBool, B: c.B[i]}
	case KindInt:
		return Value{Kind: KindInt, I: c.I[i]}
	case KindDouble:
		return Value{Kind: KindDouble, D: c.F[i]}
	case KindLabeledScalar:
		return Value{Kind: KindLabeledScalar, D: c.F[i], Label: c.Label[i]}
	case KindString:
		return Value{Kind: KindString, S: c.S[i]}
	case KindVector:
		return Value{Kind: KindVector, Vec: c.Vec[i], Label: c.Label[i]}
	case KindMatrix:
		return Value{Kind: KindMatrix, Mat: c.Mat[i]}
	}
	return Value{}
}

// IsNumeric reports whether the column's typed storage is numeric scalar.
func (c *Col) IsNumeric() bool {
	if c.Generic {
		return false
	}
	switch c.Kind {
	case KindInt, KindDouble, KindLabeledScalar:
		return true
	}
	return false
}

// AsFloats returns the lanes as float64s, using scratch as backing when a
// conversion is needed (KindInt), and whether the conversion was possible.
// Only the lanes named by sel (all of [0,n) when sel is nil) are converted.
func (c *Col) AsFloats(scratch []float64, sel []int32) ([]float64, bool) {
	if c.Generic {
		return nil, false
	}
	switch c.Kind {
	case KindDouble, KindLabeledScalar:
		return c.F, true
	case KindInt:
		n := len(c.I)
		if cap(scratch) < n {
			scratch = make([]float64, n)
		}
		scratch = scratch[:n]
		if sel == nil {
			for i, x := range c.I {
				scratch[i] = float64(x)
			}
		} else {
			for _, i := range sel {
				scratch[i] = float64(c.I[i])
			}
		}
		return scratch, true
	}
	return nil, false
}

// SizeBytesAt replicates Value.SizeBytes for lane i without materializing the
// value (the spill governor's per-row footprint must match the row executor's
// exactly so budget denials trip at the same row).
func (c *Col) SizeBytesAt(i int) int {
	if c.Generic {
		return c.Any[i].SizeBytes()
	}
	switch c.Kind {
	case KindBool:
		return 1
	case KindInt, KindDouble:
		return 8
	case KindLabeledScalar:
		return 16
	case KindString:
		return len(c.S[i]) + 4
	case KindVector:
		return 8*c.Vec[i].Len() + 12
	case KindMatrix:
		return 8*c.Mat[i].Rows*c.Mat[i].Cols + 8
	}
	return 1 // NULL
}

// AppendFrom appends lane i of src to the column, degrading to generic
// storage on a kind mismatch. It is how join key stores accumulate key
// columns across batches.
func (c *Col) AppendFrom(src *Col, i int) {
	v := src.Value(i)
	if c.Generic {
		c.Any = append(c.Any, v)
		return
	}
	if c.Len() == 0 {
		c.Kind = v.Kind
	}
	if v.Kind != c.Kind || v.Kind == KindNull {
		c.degrade()
		c.Any = append(c.Any, v)
		return
	}
	switch c.Kind {
	case KindBool:
		c.B = append(c.B, v.B)
	case KindInt:
		c.I = append(c.I, v.I)
	case KindDouble:
		c.F = append(c.F, v.D)
	case KindLabeledScalar:
		c.F = append(c.F, v.D)
		c.Label = append(c.Label, v.Label)
	case KindString:
		c.S = append(c.S, v.S)
	case KindVector:
		c.Vec = append(c.Vec, v.Vec)
		c.Label = append(c.Label, v.Label)
	case KindMatrix:
		c.Mat = append(c.Mat, v.Mat)
	}
}

// degrade converts typed storage to generic in place.
func (c *Col) degrade() {
	n := c.Len()
	any := make([]Value, n)
	for i := 0; i < n; i++ {
		any[i] = c.Value(i)
	}
	c.Reset()
	c.Generic = true
	c.Any = any
}

// Specialize converts a generic column to typed storage when every lane in
// sel (all lanes when nil) has the same non-NULL kind; other lanes are
// ignored, so a fallback evaluator that only wrote selected lanes still
// specializes. No-op for already-typed columns.
func (c *Col) Specialize(n int, sel []int32) {
	if !c.Generic || len(c.Any) == 0 {
		return
	}
	kind := KindNull
	probe := func(i int) bool {
		v := c.Any[i]
		if kind == KindNull {
			kind = v.Kind
		}
		return v.Kind == kind && v.Kind != KindNull
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !probe(i) {
				return
			}
		}
	} else {
		for _, i := range sel {
			if !probe(int(i)) {
				return
			}
		}
	}
	if kind == KindNull {
		return // empty selection: nothing to learn
	}
	any := c.Any
	c.Reset()
	c.Kind = kind
	for i := 0; i < len(any); i++ {
		// Unselected lanes may hold mismatched values; their typed slots are
		// dead by contract, so storing their zero fields is fine.
		v := any[i]
		switch kind {
		case KindBool:
			c.B = append(c.B, v.B)
		case KindInt:
			c.I = append(c.I, v.I)
		case KindDouble:
			c.F = append(c.F, v.D)
		case KindLabeledScalar:
			c.F = append(c.F, v.D)
			c.Label = append(c.Label, v.Label)
		case KindString:
			c.S = append(c.S, v.S)
		case KindVector:
			c.Vec = append(c.Vec, v.Vec)
			c.Label = append(c.Label, v.Label)
		case KindMatrix:
			c.Mat = append(c.Mat, v.Mat)
		}
	}
}

// HashesInto writes the per-value hash (identical to Value.Hash) of each
// selected lane into dst, which must have at least Len lanes. Key hashing,
// grace-join scatter, and aggregation grouping all build on these hashes, so
// they must match the row executor's bit-for-bit — the batch executor's
// output ordering depends on it.
func (c *Col) HashesInto(dst []uint64, sel []int32) {
	if c.Generic {
		if sel == nil {
			for i := range c.Any {
				dst[i] = c.Any[i].Hash()
			}
		} else {
			for _, i := range sel {
				dst[i] = c.Any[i].Hash()
			}
		}
		return
	}
	lane := func(i int) uint64 {
		h := uint64(fnvOffset64)
		switch c.Kind {
		case KindBool:
			if c.B[i] {
				h = fnvMix(h, 1)
			} else {
				h = fnvMix(h, 2)
			}
		case KindInt:
			h = fnvMix(h, doubleBits(float64(c.I[i])))
		case KindDouble, KindLabeledScalar:
			h = fnvMix(h, doubleBits(c.F[i]))
		case KindString:
			for j := 0; j < len(c.S[i]); j++ {
				h ^= uint64(c.S[i][j])
				h *= fnvPrime64
			}
		case KindVector:
			for _, x := range c.Vec[i].Data {
				h = fnvMix(h, doubleBits(x))
			}
		case KindMatrix:
			h = fnvMix(h, uint64(c.Mat[i].Cols))
			for _, x := range c.Mat[i].Data {
				h = fnvMix(h, doubleBits(x))
			}
		}
		return h
	}
	if sel == nil {
		for i := 0; i < c.Len(); i++ {
			dst[i] = lane(i)
		}
	} else {
		for _, i := range sel {
			dst[i] = lane(int(i))
		}
	}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds the 8 little-endian bytes of x into h exactly as Value.Hash's
// inner mix does.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// CombineKeyHashes folds one key column's per-value hashes into the running
// key-tuple hashes, exactly as the row executor's hashVals folds Value.Hash
// results: h ^= vh; h *= prime. Initialize dst lanes with KeyHashInit first.
func CombineKeyHashes(dst, colHashes []uint64, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = (dst[i] ^ colHashes[i]) * fnvPrime64
		}
	} else {
		for _, i := range sel {
			dst[i] = (dst[i] ^ colHashes[i]) * fnvPrime64
		}
	}
}

// KeyHashInit is the seed of a key-tuple hash (hashVals' FNV offset).
const KeyHashInit = uint64(fnvOffset64)

// Batch is a window of rows in columnar form: per-column typed arrays plus a
// selection vector of live lanes. Sel nil means all N lanes are live; a
// non-nil Sel lists live lane indexes in ascending order.
type Batch struct {
	Cols []Col
	N    int
	Sel  []int32
}

// BatchFromRows gathers every column of rows into a fresh batch with all
// lanes live.
func BatchFromRows(rows []Row) *Batch {
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	b := &Batch{Cols: make([]Col, width), N: len(rows)}
	for i := range b.Cols {
		b.Cols[i].Gather(rows, 0, len(rows), i)
	}
	return b
}

// Live returns the number of live lanes.
func (b *Batch) Live() int {
	if b.Sel == nil {
		return b.N
	}
	return len(b.Sel)
}

// AppendRows materializes the live lanes as rows appended to dst. Cells
// share vector/matrix storage with the batch, mirroring Row.Clone semantics.
func (b *Batch) AppendRows(dst []Row) []Row {
	emit := func(i int) {
		r := make(Row, len(b.Cols))
		for j := range b.Cols {
			r[j] = b.Cols[j].Value(i)
		}
		dst = append(dst, r)
	}
	if b.Sel == nil {
		for i := 0; i < b.N; i++ {
			emit(i)
		}
	} else {
		for _, i := range b.Sel {
			emit(int(i))
		}
	}
	return dst
}

// DeepClone returns a batch sharing no backing storage with the original:
// every live lane's vectors and matrices are cloned (dead lanes are dropped
// by compacting the batch first). It is the batch analogue of Row.DeepClone
// — the required sanitizer when a batch crosses a partition or channel
// boundary outside the row codec.
func (b *Batch) DeepClone() *Batch {
	out := &Batch{Cols: make([]Col, len(b.Cols)), N: b.Live()}
	for j := range b.Cols {
		src := &b.Cols[j]
		dst := &out.Cols[j]
		clone := func(i int) {
			dst.AppendFrom(src, i)
			// AppendFrom shares cells; deep-copy the lane just appended.
			n := dst.Len() - 1
			if dst.Generic {
				dst.Any[n] = dst.Any[n].DeepClone()
				return
			}
			switch dst.Kind {
			case KindVector:
				dst.Vec[n] = dst.Vec[n].Clone()
			case KindMatrix:
				dst.Mat[n] = dst.Mat[n].Clone()
			}
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				clone(i)
			}
		} else {
			for _, i := range b.Sel {
				clone(int(i))
			}
		}
	}
	return out
}
