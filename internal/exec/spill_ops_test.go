package exec

import (
	"sort"
	"sync/atomic"
	"testing"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/types"
	"relalg/internal/value"
)

// spillCtx is testCtx plus a memory governor small enough that the operators
// under test actually go out-of-core. The returned counters observe spill
// activity; callers must Close the manager (and may then assert the temp dir
// is gone).
func spillCtx(t *testing.T, tables memSource, budget int64) (*Context, *spill.Manager, *atomic.Int64) {
	t.Helper()
	var spilled atomic.Int64
	mgr := spill.NewManager(budget, spill.Hooks{
		RunSpilled: func(bytes int64) { spilled.Add(1) },
	})
	t.Cleanup(func() {
		if err := mgr.Close(); err != nil {
			t.Errorf("spill manager close: %v", err)
		}
	})
	cl := cluster.New(cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true})
	return &Context{Cluster: cl, Tables: tables, Timings: NewTimings(), Spill: mgr}, mgr, &spilled
}

// wideTable builds n rows of (id, grp, payload-string): the payload makes each
// row heavy enough that small budgets trip mid-operator.
func wideTable(ctx *Context, n int) [][]value.Row {
	rows := make([]value.Row, n)
	pad := make([]byte, 64)
	for i := range pad {
		pad[i] = byte('a' + i%26)
	}
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.Int(int64(i % 7)), value.String_(string(pad))}
	}
	return ctx.Cluster.ScatterRoundRobin(rows)
}

func wideScan(name string, n int64) *plan.Scan {
	return scanNode(name, n,
		catalog.Column{Name: "id", Type: types.TInt},
		catalog.Column{Name: "grp", Type: types.TInt},
		catalog.Column{Name: "pad", Type: types.TString})
}

func mustRows(t *testing.T, ctx *Context, n plan.Node) []value.Row {
	t.Helper()
	rel, err := Run(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	return rel.Rows()
}

func sameRows(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// sortCanonical orders rows by their full encoded form, for multiset
// comparison of operators that don't promise an output order.
func sortCanonical(rows []value.Row) []value.Row {
	out := append([]value.Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		return string(value.AppendRow(nil, out[i])) < string(value.AppendRow(nil, out[j]))
	})
	return out
}

// TestExternalSortMatchesInMemory: under a tiny budget the sort spills runs
// and the merged output is row-for-row identical to the in-memory sort —
// including the stable order of duplicate keys.
func TestExternalSortMatchesInMemory(t *testing.T) {
	const n = 500
	keys := []plan.OrderKey{{Col: 1}} // grp has many duplicates: stability visible
	sortNode := func(s *plan.Scan) *plan.Sort { return &plan.Sort{Input: s, Keys: keys} }

	base := memSource{}
	bctx := testCtx(base)
	base["t"] = wideTable(bctx, n)
	want := mustRows(t, bctx, sortNode(wideScan("t", n)))

	tables := memSource{"t": base["t"]}
	ctx, mgr, spilled := spillCtx(t, tables, 8<<10)
	got := mustRows(t, ctx, sortNode(wideScan("t", n)))

	if !sameRows(got, want) {
		t.Fatal("external sort output differs from in-memory sort")
	}
	if spilled.Load() == 0 {
		t.Fatal("no runs spilled at an 8KB budget")
	}
	if mgr.LiveRuns() != 0 {
		t.Fatalf("%d run files leaked", mgr.LiveRuns())
	}
}

// TestExternalSortDescAndTies exercises multi-key ordering with a DESC key
// through the spill path.
func TestExternalSortDescAndTies(t *testing.T) {
	const n = 300
	keys := []plan.OrderKey{{Col: 1, Desc: true}, {Col: 0}}
	sortNode := func(s *plan.Scan) *plan.Sort { return &plan.Sort{Input: s, Keys: keys} }

	base := memSource{}
	bctx := testCtx(base)
	base["t"] = wideTable(bctx, n)
	want := mustRows(t, bctx, sortNode(wideScan("t", n)))

	tables := memSource{"t": base["t"]}
	ctx, _, spilled := spillCtx(t, tables, 8<<10)
	got := mustRows(t, ctx, sortNode(wideScan("t", n)))
	if !sameRows(got, want) {
		t.Fatal("descending external sort differs from in-memory")
	}
	if spilled.Load() == 0 {
		t.Fatal("no runs spilled")
	}
}

// TestGraceJoinMatchesInMemory: the grace join's output is the same multiset
// as the in-memory join (its order is bucket-major, so compare canonically),
// and it is deterministic across runs.
func TestGraceJoinMatchesInMemory(t *testing.T) {
	const n = 400
	join := func(l, r *plan.Scan) *plan.Join {
		return &plan.Join{L: l, R: r,
			LKeys: []plan.Expr{col(1, types.TInt)}, RKeys: []plan.Expr{col(1, types.TInt)},
			Out: append(append(plan.Schema{}, l.Out...), r.Out...)}
	}

	base := memSource{}
	bctx := testCtx(base)
	base["l"] = wideTable(bctx, n)
	base["r"] = wideTable(bctx, n/4)
	want := sortCanonical(mustRows(t, bctx, join(wideScan("l", n), wideScan("r", n/4))))
	if len(want) == 0 {
		t.Fatal("join produced no rows; test data broken")
	}

	tables := memSource{"l": base["l"], "r": base["r"]}
	ctx, mgr, spilled := spillCtx(t, tables, 8<<10)
	got1 := mustRows(t, ctx, join(wideScan("l", n), wideScan("r", n/4)))
	if !sameRows(sortCanonical(got1), want) {
		t.Fatal("grace join result differs from in-memory join")
	}
	if spilled.Load() == 0 {
		t.Fatal("no spills at an 8KB budget")
	}
	if mgr.LiveRuns() != 0 {
		t.Fatalf("%d run files leaked", mgr.LiveRuns())
	}

	// Determinism: a second identical run produces the identical row order.
	ctx2, _, _ := spillCtx(t, tables, 8<<10)
	got2 := mustRows(t, ctx2, join(wideScan("l", n), wideScan("r", n/4)))
	if !sameRows(got1, got2) {
		t.Fatal("grace join output order is not deterministic")
	}
}

// TestSpillAggMatchesInMemory: hybrid hash aggregation under pressure yields
// exactly the in-memory grouping (same rows, same order — the sorted-hash
// phases fix the order in both modes).
func TestSpillAggMatchesInMemory(t *testing.T) {
	const n = 600
	aggNode := func(s *plan.Scan) *plan.Agg {
		cnt := mustLookupAgg(t, "count")
		sum := mustLookupAgg(t, "sum")
		return &plan.Agg{Input: s,
			GroupBy: []plan.Expr{col(0, types.TInt)},
			Aggs: []plan.AggCall{
				{Spec: cnt, T: types.TInt},
				{Spec: sum, Input: col(1, types.TInt), T: types.TInt},
			},
			Out: plan.Schema{{Name: "id", T: types.TInt}, {Name: "n", T: types.TInt}, {Name: "s", T: types.TInt}}}
	}
	// Many distinct groups (id % 97) so the group table itself overflows.
	mk := func(ctx *Context) [][]value.Row {
		rows := make([]value.Row, n)
		pad := make([]byte, 48)
		for i := range pad {
			pad[i] = 'x'
		}
		for i := range rows {
			rows[i] = value.Row{value.Int(int64(i % 97)), value.Int(int64(i)), value.String_(string(pad))}
		}
		return ctx.Cluster.ScatterRoundRobin(rows)
	}

	base := memSource{}
	bctx := testCtx(base)
	base["t"] = mk(bctx)
	want := mustRows(t, bctx, aggNode(wideScan("t", n)))
	if len(want) != 97 {
		t.Fatalf("baseline group count = %d, want 97", len(want))
	}

	tables := memSource{"t": base["t"]}
	ctx, mgr, spilled := spillCtx(t, tables, 8<<10)
	got := mustRows(t, ctx, aggNode(wideScan("t", n)))
	if !sameRows(got, want) {
		t.Fatal("spilling aggregation differs from in-memory aggregation")
	}
	if spilled.Load() == 0 {
		t.Fatal("no spills at an 8KB budget")
	}
	if mgr.LiveRuns() != 0 {
		t.Fatalf("%d run files leaked", mgr.LiveRuns())
	}
}

func mustLookupAgg(t *testing.T, name string) *builtins.AggSpec {
	t.Helper()
	spec, ok := builtins.LookupAgg(name)
	if !ok {
		t.Fatalf("missing aggregate %s", name)
	}
	return spec
}

// TestLimitTruncatesPerPartition: runLimit must clip each partition before
// gathering, so the gathered set is at most N rows per partition — observable
// through TuplesProduced staying proportional to N, not to the input size.
func TestLimitTruncatesPerPartition(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	const n = 10000
	tables["t"] = wideTable(ctx, n)
	before := ctx.Cluster.Stats().TuplesProduced.Load()
	rel, err := Run(ctx, &plan.Limit{Input: wideScan("t", n), N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.NumRows(); got != 3 {
		t.Fatalf("limit rows = %d, want 3", got)
	}
	charged := ctx.Cluster.Stats().TuplesProduced.Load() - before
	// Scan charges n; the limit itself must charge only the emitted rows, not
	// the n gathered ones. Allow the per-partition pre-gather bound P*N.
	maxLimitCharge := int64(ctx.Cluster.Partitions()) * 3
	if charged > int64(n)+maxLimitCharge {
		t.Fatalf("limit charged %d tuples beyond scan; want <= %d", charged-int64(n), maxLimitCharge)
	}
}
