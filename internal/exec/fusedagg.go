package exec

import (
	"fmt"

	"relalg/internal/builtins"
	"relalg/internal/linalg"
	"relalg/internal/plan"
	"relalg/internal/value"
)

// Fused aggregation states. SUM(outer_product(x, y)) and
// SUM(matrix_multiply(a, b)) evaluated naively allocate a full result
// matrix per input row; any serious engine (SimSQL's compiled plans
// included) accumulates into a single buffer instead. These states keep the
// generic AggState protocol (Step/Merge/Final) so the distributed two-phase
// machinery is untouched, but the partition-local hot path goes through
// stepFused, skipping the intermediate allocation entirely.

// fusedKind identifies which fusion applies to an aggregate call.
type fusedKind uint8

const (
	fusedNone fusedKind = iota
	fusedOuterSum
	fusedMatMulSum
)

// fusedOf reports the applicable fusion for one aggregate call. An explicit
// optimizer decision (AggCall.Fuse != FuseAuto) wins; FuseAuto — the zero
// value, what hand-built plans and a rewrites-disabled optimizer produce —
// falls back to the executor's own pattern match, preserving the legacy
// behaviour. Either way the structural requirements (a two-argument call)
// are re-verified, so a mismarked plan degrades to unfused instead of
// panicking in newStates.
func fusedOf(a plan.AggCall) fusedKind {
	if a.Spec.Name != "sum" || a.Input == nil {
		return fusedNone
	}
	call, ok := a.Input.(*plan.Call)
	if !ok || len(call.Args) != 2 {
		return fusedNone
	}
	switch a.Fuse {
	case plan.FuseNone:
		return fusedNone
	case plan.FuseOuterSum:
		return fusedOuterSum
	case plan.FuseMatMulSum:
		return fusedMatMulSum
	}
	switch call.Fn.Name {
	case "outer_product":
		return fusedOuterSum
	case "matrix_multiply":
		return fusedMatMulSum
	}
	return fusedNone
}

// fusedSumState accumulates SUM(outer_product(a, b)) or
// SUM(matrix_multiply(a, b)) without materializing per-row results.
type fusedSumState struct {
	kind  fusedKind
	args  []plan.Expr
	acc   *linalg.Matrix
	count int64
}

// stepFused accumulates one input row directly into the buffer.
func (s *fusedSumState) stepFused(ec *plan.EvalCtx, row value.Row) error {
	a, err := s.args[0].Eval(ec, row)
	if err != nil {
		return err
	}
	b, err := s.args[1].Eval(ec, row)
	if err != nil {
		return err
	}
	if a.IsNull() || b.IsNull() {
		return nil
	}
	switch s.kind {
	case fusedOuterSum:
		if a.Kind != value.KindVector || b.Kind != value.KindVector {
			return fmt.Errorf("exec: SUM(outer_product) over %s, %s", a.Kind, b.Kind)
		}
		if s.acc == nil {
			s.acc = linalg.NewMatrix(a.Vec.Len(), b.Vec.Len())
		}
		if err := a.Vec.OuterAddInto(s.acc, b.Vec); err != nil {
			return err
		}
	case fusedMatMulSum:
		if a.Kind != value.KindMatrix || b.Kind != value.KindMatrix {
			return fmt.Errorf("exec: SUM(matrix_multiply) over %s, %s", a.Kind, b.Kind)
		}
		if s.acc == nil {
			s.acc = linalg.NewMatrix(a.Mat.Rows, b.Mat.Cols)
		}
		if err := a.Mat.MulMatAddInto(s.acc, b.Mat); err != nil {
			return err
		}
	default:
		return fmt.Errorf("exec: stepFused on unfused state")
	}
	s.count++
	return nil
}

// Step implements builtins.AggState for the (rare) non-fused path: the
// value arriving is an already-computed matrix to add.
func (s *fusedSumState) Step(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind != value.KindMatrix {
		return fmt.Errorf("exec: fused SUM over %s", v.Kind)
	}
	if s.acc == nil {
		s.acc = v.Mat.Clone()
		s.count++
		return nil
	}
	s.count++
	return s.acc.AddInPlace(v.Mat)
}

// Merge implements builtins.AggState.
func (s *fusedSumState) Merge(other builtins.AggState) error {
	o, ok := other.(*fusedSumState)
	if !ok {
		return fmt.Errorf("exec: merging fused SUM with %T", other)
	}
	if o.acc == nil {
		return nil
	}
	if s.acc == nil {
		s.acc = o.acc
		s.count = o.count
		return nil
	}
	s.count += o.count
	return s.acc.AddInPlace(o.acc)
}

// Final implements builtins.AggState.
func (s *fusedSumState) Final() (value.Value, error) {
	if s.acc == nil {
		return value.Null(), nil // SQL: SUM of no rows is NULL
	}
	return value.Matrix(s.acc), nil
}
