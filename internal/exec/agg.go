package exec

import (
	"fmt"
	"sort"

	"relalg/internal/builtins"
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// aggGroup is the running state for one group on one partition.
type aggGroup struct {
	keys   []value.Value
	states []builtins.AggState
}

// runAgg executes a two-phase distributed aggregation: partition-local
// pre-aggregation, a shuffle of partial states keyed by group, and a final
// merge. The shuffle moves one partial state per (partition, group) instead
// of one row per input tuple — exactly the saving that makes SUM over
// matrices cheap and whose absence makes the tuple-based plans of Figure 4
// aggregation-bound.
func runAgg(ctx *Context, a *plan.Agg) (*Relation, error) {
	in, err := Run(ctx, a.Input)
	if err != nil {
		return nil, err
	}

	// Phase 1: local pre-aggregation (out-of-core when a memory budget is
	// set: new groups beyond the reservation scatter to spill files and are
	// aggregated recursively — see partAgg).
	stopLocal := ctx.Timings.Track("aggregate")
	locals := make([]map[uint64][]*aggGroup, len(in.Parts))
	err = ctx.Cluster.ParallelTasks("aggregate", taskObs(ctx), func(part, attempt int) (func() error, error) {
		pa := &partAgg{ctx: ctx, ec: ctx.EvalCtx(), a: a, part: part, attempt: attempt, bsize: ctx.BatchSize}
		groups, err := pa.aggregate(in.Parts[part])
		if err != nil {
			return nil, err
		}
		return func() error {
			locals[part] = groups
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	stopLocal()

	// Phase 2: move partial states to their destination partition. When the
	// input is already partitioned on (a subset of) the group keys — or
	// there are no group keys and everything should meet on partition 0 —
	// the move is local.
	stopShuffle := ctx.Timings.Track("aggregate-shuffle")
	p := ctx.Cluster.Partitions()
	dest := func(h uint64) int { return int(h % uint64(p)) }
	skipShuffle := in.Single || groupingAligned(in.HashKeys, a.GroupBy)
	if len(a.GroupBy) == 0 {
		dest = func(uint64) int { return 0 }
		skipShuffle = false
		if in.Single {
			skipShuffle = true
		}
	}

	merged := make([]map[uint64][]*aggGroup, p)
	for i := range merged {
		merged[i] = map[uint64][]*aggGroup{}
	}
	if skipShuffle {
		for part, groups := range locals {
			if groups != nil {
				merged[part] = groups
			}
		}
	} else {
		// Charge the movement: every group whose destination differs from
		// its source crosses the network as (key row + partial values).
		// Hashes iterate in sorted order so partial states merge in the
		// same sequence every run — floating-point accumulation order, and
		// therefore the produced values, stay seed-deterministic.
		for src, groups := range locals {
			for _, h := range sortedHashes(groups) {
				gs := groups[h]
				d := dest(h)
				for _, g := range gs {
					if d != src {
						chargeStateMove(ctx, g)
					}
					// Merge into the destination.
					var tgt *aggGroup
					for _, cand := range merged[d][h] {
						if valsEqual(cand.keys, g.keys) {
							tgt = cand
							break
						}
					}
					if tgt == nil {
						merged[d][h] = append(merged[d][h], g)
						continue
					}
					for i := range tgt.states {
						if err := tgt.states[i].Merge(g.states[i]); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	stopShuffle()

	// Phase 3: finalize. Sorted hash order keeps output row order (and so
	// downstream shuffles and result files) identical across runs.
	stopFinal := ctx.Timings.Track("aggregate")
	out := make([][]value.Row, p)
	// Finalization is retry-safe: Final is a pure read of the merged states,
	// so a re-executed (or speculated) attempt produces the same rows.
	err = ctx.Cluster.ParallelTasks("aggregate", taskObs(ctx), func(part, _ int) (func() error, error) {
		var rows []value.Row
		for _, h := range sortedHashes(merged[part]) {
			for _, g := range merged[part][h] {
				row := make(value.Row, 0, len(a.Out))
				row = append(row, g.keys...)
				for _, st := range g.states {
					v, err := st.Final()
					if err != nil {
						return nil, err
					}
					row = append(row, v)
				}
				rows = append(rows, row)
			}
		}
		return func() error {
			out[part] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// A grouping with no keys over an empty input still yields one row
	// (SQL: SELECT SUM(x) FROM empty returns a single NULL row).
	if len(a.GroupBy) == 0 && relEmpty(out) {
		row := make(value.Row, 0, len(a.Aggs))
		for _, st := range newStates(a.Aggs, !ctx.DisableAggFusion) {
			v, err := st.Final()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out[0] = []value.Row{row}
	}

	var produced int64
	for _, pr := range out {
		produced += int64(len(pr))
	}
	if err := ctx.Cluster.ChargeTuples(produced); err != nil {
		return nil, opErr("aggregate", err)
	}
	stopFinal()

	rel := &Relation{Schema: a.Out, Parts: out}
	if len(a.GroupBy) == 0 {
		rel.Single = true
	}
	return rel, nil
}

// sortedHashes returns the keys of a group-hash map in ascending order, the
// iteration order every phase uses so merge and output sequences are
// deterministic.
func sortedHashes(groups map[uint64][]*aggGroup) []uint64 {
	hs := make([]uint64, 0, len(groups))
	for h := range groups {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

func relEmpty(parts [][]value.Row) bool {
	for _, p := range parts {
		if len(p) > 0 {
			return false
		}
	}
	return true
}

// groupingAligned reports whether the input partitioning co-locates rows of
// the same group: the hash keys must be a subset of the group expressions.
func groupingAligned(hashKeys []string, groupBy []plan.Expr) bool {
	if len(hashKeys) == 0 || len(groupBy) == 0 {
		return false
	}
	gset := map[string]bool{}
	for _, g := range groupBy {
		gset[g.String()] = true
	}
	for _, h := range hashKeys {
		if !gset[h] {
			return false
		}
	}
	return true
}

func newStates(aggs []plan.AggCall, fuse bool) []builtins.AggState {
	out := make([]builtins.AggState, len(aggs))
	for i, a := range aggs {
		if fuse {
			if kind := fusedOf(a); kind != fusedNone {
				out[i] = &fusedSumState{kind: kind, args: a.Input.(*plan.Call).Args}
				continue
			}
		}
		out[i] = a.Spec.New()
	}
	return out
}

func stepStates(ec *plan.EvalCtx, states []builtins.AggState, aggs []plan.AggCall, row value.Row) error {
	for i, a := range aggs {
		if fs, ok := states[i].(*fusedSumState); ok {
			if err := fs.stepFused(ec, row); err != nil {
				return err
			}
			continue
		}
		var v value.Value
		if a.Input == nil {
			// COUNT(*): any non-null marker.
			v = value.Int(1)
		} else {
			var err error
			v, err = a.Input.Eval(ec, row)
			if err != nil {
				return err
			}
		}
		if err := states[i].Step(v); err != nil {
			return err
		}
	}
	return nil
}

// aggSpillFanout is how many spill files new-group rows scatter into once
// the group table hits its reservation.
const aggSpillFanout = 16

// partAgg runs one partition's local pre-aggregation, hybrid-hash style:
// under memory pressure the groups already in the table keep aggregating in
// place (their rows never touch disk), while rows of groups that would need
// NEW table entries are scattered raw into spill files by a salted re-hash of
// the group hash, then aggregated recursively. Raw input rows are spilled —
// not partial states — because aggregate states have no serialized form and
// finalized values (avg) cannot be re-merged.
type partAgg struct {
	ctx     *Context
	ec      *plan.EvalCtx
	a       *plan.Agg
	part    int
	attempt int // owning task attempt; keys spill write-fault draws
	bsize   int // >0 switches this partition to the batch executor
}

// aggregate builds the partition's group map from rows.
func (pa *partAgg) aggregate(rows []value.Row) (map[uint64][]*aggGroup, error) {
	if !pa.ctx.spillEnabled() {
		return pa.buildAny(sliceIter(rows), nil, 0)
	}
	res := pa.ctx.Spill.Governor().Reservation("hash aggregate")
	defer res.Release()
	return pa.buildAny(sliceIter(rows), res, 0)
}

// buildAny dispatches between the row and batch builders; the overflow
// recursion re-enters through here so spilled runs rebuild in the same mode.
func (pa *partAgg) buildAny(next rowIter, res *spill.Reservation, depth int) (map[uint64][]*aggGroup, error) {
	if pa.bsize > 0 {
		return pa.buildBatch(next, res, depth)
	}
	return pa.build(next, res, depth)
}

// rowIter yields rows; the bool result is false at end of input.
type rowIter func() (value.Row, bool, error)

func sliceIter(rows []value.Row) rowIter {
	i := 0
	return func() (value.Row, bool, error) {
		if i >= len(rows) {
			return nil, false, nil
		}
		r := rows[i]
		i++
		return r, true, nil
	}
}

// stateFootprint estimates the bytes of one group's aggregate states.
func stateFootprint(n int) int64 { return 64 + int64(n)*64 }

// build aggregates the iterator's rows into a group map, spilling new-group
// rows once res denies the table more entries. At maxGraceDepth the bytes are
// forced instead (a single group's rows always re-scatter to the same file,
// so depth alone cannot split skew).
func (pa *partAgg) build(next rowIter, res *spill.Reservation, depth int) (map[uint64][]*aggGroup, error) {
	groups := map[uint64][]*aggGroup{}
	force := depth >= maxGraceDepth
	salt := graceSalt(depth)
	var writers []*spill.Writer
	abortAll := func() {
		for _, w := range writers {
			if w != nil {
				_ = w.Abort() // the original error is the actionable one
			}
		}
	}
	for {
		r, ok, err := next()
		if err != nil {
			abortAll()
			return nil, err
		}
		if !ok {
			break
		}
		kv, err := evalKeys(pa.ec, pa.a.GroupBy, r)
		if err != nil {
			abortAll()
			return nil, err
		}
		h := hashVals(kv)
		var g *aggGroup
		for _, cand := range groups[h] {
			if valsEqual(cand.keys, kv) {
				g = cand
				break
			}
		}
		if g == nil {
			if writers != nil {
				// Overflow mode: this group is not in the table, so its rows
				// scatter out (all of them — same hash, same file — so each
				// spilled group is complete within its file).
				idx := int(mix64(h^salt) % uint64(len(writers)))
				if err := writers[idx].Append(r); err != nil {
					abortAll()
					return nil, err
				}
				continue
			}
			fp := valsFootprint(kv) + stateFootprint(len(pa.a.Aggs))
			if res != nil && !force && !res.Grow(fp) {
				// Pressure: open the overflow files; this row is the first
				// one out.
				writers = make([]*spill.Writer, aggSpillFanout)
				for i := range writers {
					w, err := pa.ctx.Spill.NewWriterAt(fmt.Sprintf("agg-p%d-d%d-%d", pa.part, depth, i), pa.attempt)
					if err != nil {
						abortAll()
						return nil, err
					}
					writers[i] = w
				}
				idx := int(mix64(h^salt) % uint64(len(writers)))
				if err := writers[idx].Append(r); err != nil {
					abortAll()
					return nil, err
				}
				continue
			}
			if res != nil && force {
				res.Force(fp)
			}
			g = &aggGroup{keys: kv, states: newStates(pa.a.Aggs, !pa.ctx.DisableAggFusion)}
			groups[h] = append(groups[h], g)
		}
		if err := stepStates(pa.ec, g.states, pa.a.Aggs, r); err != nil {
			abortAll()
			return nil, err
		}
	}
	if writers == nil {
		return groups, nil
	}
	runs := make([]*spill.Run, len(writers))
	for i, w := range writers {
		run, err := w.Finish()
		if err != nil {
			for j := i + 1; j < len(writers); j++ {
				_ = writers[j].Abort()
			}
			removeRunSlice(runs)
			return nil, err
		}
		runs[i] = run
	}
	for i, run := range runs {
		child, err := pa.buildFromRun(run, res, depth+1)
		runs[i] = nil
		if err != nil {
			removeRunSlice(runs)
			return nil, err
		}
		if err := mergeGroupMaps(groups, child); err != nil {
			removeRunSlice(runs)
			return nil, err
		}
	}
	return groups, nil
}

// buildFromRun recursively aggregates one overflow file and removes it.
func (pa *partAgg) buildFromRun(run *spill.Run, res *spill.Reservation, depth int) (map[uint64][]*aggGroup, error) {
	rd, err := run.Reader()
	if err != nil {
		return nil, err
	}
	groups, err := pa.buildAny(rd.Next, res, depth)
	if err != nil {
		_ = rd.Close() // the build error is the actionable one
		return nil, err
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}
	if err := run.Remove(); err != nil {
		return nil, err
	}
	return groups, nil
}

// mergeGroupMaps folds the child map into dst. Spilled groups are disjoint
// from the parent table by construction (in-table groups keep stepping in
// place), but merge defensively anyway, in sorted hash order so any
// floating-point accumulation stays deterministic.
func mergeGroupMaps(dst, src map[uint64][]*aggGroup) error {
	for _, h := range sortedHashes(src) {
		for _, g := range src[h] {
			var tgt *aggGroup
			for _, cand := range dst[h] {
				if valsEqual(cand.keys, g.keys) {
					tgt = cand
					break
				}
			}
			if tgt == nil {
				dst[h] = append(dst[h], g)
				continue
			}
			for i := range tgt.states {
				if err := tgt.states[i].Merge(g.states[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// chargeStateMove accounts for a partial aggregate state crossing the
// network: the group key plus the current partial values, serialized.
func chargeStateMove(ctx *Context, g *aggGroup) {
	row := make(value.Row, 0, len(g.keys)+len(g.states))
	row = append(row, g.keys...)
	for _, st := range g.states {
		if v, err := st.Final(); err == nil {
			row = append(row, v)
		}
	}
	buf := value.AppendRow(nil, row)
	ctx.Cluster.Stats().TuplesShuffled.Add(1)
	ctx.Cluster.Stats().BytesShuffled.Add(int64(len(buf)))
	ctx.Cluster.NetworkWait(int64(len(buf)))
}
