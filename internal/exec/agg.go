package exec

import (
	"sort"

	"relalg/internal/builtins"
	"relalg/internal/plan"
	"relalg/internal/value"
)

// aggGroup is the running state for one group on one partition.
type aggGroup struct {
	keys   []value.Value
	states []builtins.AggState
}

// runAgg executes a two-phase distributed aggregation: partition-local
// pre-aggregation, a shuffle of partial states keyed by group, and a final
// merge. The shuffle moves one partial state per (partition, group) instead
// of one row per input tuple — exactly the saving that makes SUM over
// matrices cheap and whose absence makes the tuple-based plans of Figure 4
// aggregation-bound.
func runAgg(ctx *Context, a *plan.Agg) (*Relation, error) {
	in, err := Run(ctx, a.Input)
	if err != nil {
		return nil, err
	}

	// Phase 1: local pre-aggregation.
	stopLocal := ctx.Timings.Track("aggregate")
	locals := make([]map[uint64][]*aggGroup, len(in.Parts))
	err = ctx.Cluster.Parallel(func(part int) error {
		groups := map[uint64][]*aggGroup{}
		for _, r := range in.Parts[part] {
			kv, err := evalKeys(a.GroupBy, r)
			if err != nil {
				return err
			}
			h := hashVals(kv)
			var g *aggGroup
			for _, cand := range groups[h] {
				if valsEqual(cand.keys, kv) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &aggGroup{keys: kv, states: newStates(a.Aggs, !ctx.DisableAggFusion)}
				groups[h] = append(groups[h], g)
			}
			if err := stepStates(g.states, a.Aggs, r); err != nil {
				return err
			}
		}
		locals[part] = groups
		return nil
	})
	if err != nil {
		return nil, err
	}
	stopLocal()

	// Phase 2: move partial states to their destination partition. When the
	// input is already partitioned on (a subset of) the group keys — or
	// there are no group keys and everything should meet on partition 0 —
	// the move is local.
	stopShuffle := ctx.Timings.Track("aggregate-shuffle")
	p := ctx.Cluster.Partitions()
	dest := func(h uint64) int { return int(h % uint64(p)) }
	skipShuffle := in.Single || groupingAligned(in.HashKeys, a.GroupBy)
	if len(a.GroupBy) == 0 {
		dest = func(uint64) int { return 0 }
		skipShuffle = false
		if in.Single {
			skipShuffle = true
		}
	}

	merged := make([]map[uint64][]*aggGroup, p)
	for i := range merged {
		merged[i] = map[uint64][]*aggGroup{}
	}
	if skipShuffle {
		for part, groups := range locals {
			if groups != nil {
				merged[part] = groups
			}
		}
	} else {
		// Charge the movement: every group whose destination differs from
		// its source crosses the network as (key row + partial values).
		// Hashes iterate in sorted order so partial states merge in the
		// same sequence every run — floating-point accumulation order, and
		// therefore the produced values, stay seed-deterministic.
		for src, groups := range locals {
			for _, h := range sortedHashes(groups) {
				gs := groups[h]
				d := dest(h)
				for _, g := range gs {
					if d != src {
						chargeStateMove(ctx, g)
					}
					// Merge into the destination.
					var tgt *aggGroup
					for _, cand := range merged[d][h] {
						if valsEqual(cand.keys, g.keys) {
							tgt = cand
							break
						}
					}
					if tgt == nil {
						merged[d][h] = append(merged[d][h], g)
						continue
					}
					for i := range tgt.states {
						if err := tgt.states[i].Merge(g.states[i]); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	stopShuffle()

	// Phase 3: finalize. Sorted hash order keeps output row order (and so
	// downstream shuffles and result files) identical across runs.
	stopFinal := ctx.Timings.Track("aggregate")
	out := make([][]value.Row, p)
	err = ctx.Cluster.Parallel(func(part int) error {
		var rows []value.Row
		for _, h := range sortedHashes(merged[part]) {
			for _, g := range merged[part][h] {
				row := make(value.Row, 0, len(a.Out))
				row = append(row, g.keys...)
				for _, st := range g.states {
					v, err := st.Final()
					if err != nil {
						return err
					}
					row = append(row, v)
				}
				rows = append(rows, row)
			}
		}
		out[part] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}

	// A grouping with no keys over an empty input still yields one row
	// (SQL: SELECT SUM(x) FROM empty returns a single NULL row).
	if len(a.GroupBy) == 0 && relEmpty(out) {
		row := make(value.Row, 0, len(a.Aggs))
		for _, st := range newStates(a.Aggs, !ctx.DisableAggFusion) {
			v, err := st.Final()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out[0] = []value.Row{row}
	}

	var produced int64
	for _, pr := range out {
		produced += int64(len(pr))
	}
	if err := ctx.Cluster.ChargeTuples(produced); err != nil {
		return nil, err
	}
	stopFinal()

	rel := &Relation{Schema: a.Out, Parts: out}
	if len(a.GroupBy) == 0 {
		rel.Single = true
	}
	return rel, nil
}

// sortedHashes returns the keys of a group-hash map in ascending order, the
// iteration order every phase uses so merge and output sequences are
// deterministic.
func sortedHashes(groups map[uint64][]*aggGroup) []uint64 {
	hs := make([]uint64, 0, len(groups))
	for h := range groups {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

func relEmpty(parts [][]value.Row) bool {
	for _, p := range parts {
		if len(p) > 0 {
			return false
		}
	}
	return true
}

// groupingAligned reports whether the input partitioning co-locates rows of
// the same group: the hash keys must be a subset of the group expressions.
func groupingAligned(hashKeys []string, groupBy []plan.Expr) bool {
	if len(hashKeys) == 0 || len(groupBy) == 0 {
		return false
	}
	gset := map[string]bool{}
	for _, g := range groupBy {
		gset[g.String()] = true
	}
	for _, h := range hashKeys {
		if !gset[h] {
			return false
		}
	}
	return true
}

func newStates(aggs []plan.AggCall, fuse bool) []builtins.AggState {
	out := make([]builtins.AggState, len(aggs))
	for i, a := range aggs {
		if fuse {
			if kind := fusedOf(a); kind != fusedNone {
				out[i] = &fusedSumState{kind: kind, args: a.Input.(*plan.Call).Args}
				continue
			}
		}
		out[i] = a.Spec.New()
	}
	return out
}

func stepStates(states []builtins.AggState, aggs []plan.AggCall, row value.Row) error {
	for i, a := range aggs {
		if fs, ok := states[i].(*fusedSumState); ok {
			if err := fs.stepFused(row); err != nil {
				return err
			}
			continue
		}
		var v value.Value
		if a.Input == nil {
			// COUNT(*): any non-null marker.
			v = value.Int(1)
		} else {
			var err error
			v, err = a.Input.Eval(row)
			if err != nil {
				return err
			}
		}
		if err := states[i].Step(v); err != nil {
			return err
		}
	}
	return nil
}

// chargeStateMove accounts for a partial aggregate state crossing the
// network: the group key plus the current partial values, serialized.
func chargeStateMove(ctx *Context, g *aggGroup) {
	row := make(value.Row, 0, len(g.keys)+len(g.states))
	row = append(row, g.keys...)
	for _, st := range g.states {
		if v, err := st.Final(); err == nil {
			row = append(row, v)
		}
	}
	buf := value.AppendRow(nil, row)
	ctx.Cluster.Stats().TuplesShuffled.Add(1)
	ctx.Cluster.Stats().BytesShuffled.Add(int64(len(buf)))
	ctx.Cluster.NetworkWait(int64(len(buf)))
}
