package exec

import (
	"relalg/internal/plan"
	"relalg/internal/value"
)

// This file implements the fused scan→filter→project pipeline: when a plan
// subtree has the shape Project?(Filter*(Scan)), the executor runs it as one
// per-partition pass instead of materializing a relation per operator. Rows
// stream from the stored partition through the predicates into the
// projection, so filtered-out rows cost nothing downstream and projected rows
// are carved out of a chunked arena instead of one allocation each. This
// extends the join-projection fusion in runProject to the leaf chains the
// optimizer pushes filters into.

// matchPipeline returns the fused chain rooted at n, or nil when fusion is
// disabled or n doesn't decompose.
func matchPipeline(ctx *Context, n plan.Node) *plan.Pipeline {
	if ctx.DisablePipelineFusion {
		return nil
	}
	return plan.MatchPipeline(n)
}

// arenaChunk is how many value slots a pipeline arena allocates at once:
// large enough to amortize the per-row allocation down to noise, small
// enough that a short partition doesn't hold a meaningfully oversized block.
const arenaChunk = 4096

// rowArena hands out value.Row storage carved from chunked allocations. One
// arena serves one partition goroutine, so no locking. Rows remain valid
// forever (the chunks are never reused) — the arena only batches what the
// unfused path would have allocated row by row.
type rowArena struct {
	buf []value.Value
}

// alloc returns a zeroed row of n values with capacity clipped to n, so an
// append by a downstream consumer can never bleed into a neighbouring row.
func (a *rowArena) alloc(n int) value.Row {
	if n == 0 {
		return value.Row{}
	}
	if len(a.buf) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]value.Value, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return value.Row(r)
}

// runPipeline executes a fused Project?(Filter*(Scan)) chain in one pass per
// partition. Placement metadata follows the same rules as the unfused
// operators: a filter-only chain keeps the scan's advertised hash keys (rows
// only disappear, placement is untouched), a projecting chain drops them
// (rewriting keys through the projection is the same conservative gap as
// runProject). Only the rows that leave the pipeline are charged to the
// cluster budget — the fused chain genuinely never materializes the
// intermediates the stage-at-a-time executor would have paid for.
func runPipeline(ctx *Context, sp *plan.Pipeline) (*Relation, error) {
	return runPipelineLimited(ctx, sp, -1)
}

// runPipelineLimited is runPipeline with an optional per-partition row cap
// (limit < 0 means none). Only the batch executor takes the cap: runLimit
// pushes its N down so each partition stops producing — and charging — at N
// rows, truncating inside a batch via the selection vector.
func runPipelineLimited(ctx *Context, sp *plan.Pipeline, limit int) (*Relation, error) {
	// A paged table source streams the scan through the buffer pool instead
	// of materializing partitions; see paged.go.
	if pt := pagedScan(ctx, sp.Scan); pt != nil {
		return runPipelinePaged(ctx, sp, pt, limit)
	}
	defer ctx.Timings.Track("pipeline")()
	parts, keys, err := scanParts(ctx, sp.Scan)
	if err != nil {
		return nil, err
	}
	out := make([][]value.Row, len(parts))
	ec := ctx.EvalCtx()
	err = ctx.Cluster.ParallelTasks("pipeline", taskObs(ctx), func(part, _ int) (func() error, error) {
		if ctx.BatchSize > 0 {
			rows, err := batchPipelinePart(ctx, ec, sp, parts[part], limit)
			if err != nil {
				return nil, err
			}
			return func() error {
				out[part] = rows
				return nil
			}, nil
		}
		var arena rowArena
		var rows []value.Row
		for _, r := range parts[part] {
			keep := true
			for _, pred := range sp.Filters {
				v, err := pred.Eval(ec, r)
				if err != nil {
					return nil, err
				}
				if v.Kind != value.KindBool || !v.B {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			if sp.Exprs == nil {
				rows = append(rows, r)
				continue
			}
			nr := arena.alloc(len(sp.Exprs))
			for i, e := range sp.Exprs {
				v, err := e.Eval(ec, r)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			rows = append(rows, nr)
		}
		return func() error {
			out[part] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: sp.Out, Parts: out}
	if sp.Exprs == nil {
		rel.HashKeys = keys
	}
	if err := ctx.Cluster.ChargeTuples(int64(rel.NumRows())); err != nil {
		return nil, opErr("pipeline", err)
	}
	return rel, nil
}
