package exec

import (
	"fmt"
	"sort"

	"relalg/internal/builtins"
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// This file is the vectorized batch executor: when Context.BatchSize > 0 the
// filter, project, fused pipeline, hash-join build/probe (including the grace
// spill legs), and partition-local aggregation process windows of rows as
// per-column arrays with selection vectors instead of dispatching the
// expression tree per row. Everything observable — output rows and their
// order, tuple charges at operator boundaries, spill decisions and file
// contents — is bit-identical to the row executor: key hashing replicates
// value.Hash/hashVals exactly, per-row spill footprints are computed from the
// same SizeBytes quantities, and rows are processed in the same order. The
// one intentional divergence is LIMIT over a fused pipeline, which stops
// producing (and charging) at the limit instead of materializing every
// surviving row first.

// batchView adapts a window rows[lo:hi] to plan.BatchSource, gathering each
// column on first use and caching it for the rest of the window.
type batchView struct {
	rows   []value.Row
	lo, hi int
	cols   []value.Col
	have   []bool
}

// reset points the view at rows[lo:hi] with the given column count.
func (v *batchView) reset(rows []value.Row, lo, hi, width int) {
	v.rows, v.lo, v.hi = rows, lo, hi
	if cap(v.cols) < width {
		v.cols = make([]value.Col, width)
		v.have = make([]bool, width)
	}
	v.cols = v.cols[:width]
	v.have = v.have[:width]
	for i := range v.have {
		v.have[i] = false
	}
}

// BatchLen implements plan.BatchSource.
func (v *batchView) BatchLen() int { return v.hi - v.lo }

// BatchCol implements plan.BatchSource.
func (v *batchView) BatchCol(idx int) (*value.Col, error) {
	if idx < 0 || idx >= len(v.cols) {
		return nil, fmt.Errorf("exec: column index %d out of range for row of %d", idx, len(v.cols))
	}
	if !v.have[idx] {
		v.cols[idx].Gather(v.rows, v.lo, v.hi, idx)
		v.have[idx] = true
	}
	return &v.cols[idx], nil
}

// BatchRow implements plan.BatchSource.
func (v *batchView) BatchRow(i int) value.Row { return v.rows[v.lo+i] }

// prefetcher gathers the column set an operator's expressions reference in a
// single pass per window (value.GatherMulti) instead of one lazy pass per
// column. The index set is computed once per operator.
type prefetcher struct {
	idxs []int
	live []int
	cols []*value.Col
}

// newPrefetcher collects the distinct column indexes referenced by the given
// expression lists, ascending.
func newPrefetcher(lists ...[]plan.Expr) *prefetcher {
	seen := map[int]bool{}
	for _, list := range lists {
		for _, e := range list {
			if e == nil {
				continue
			}
			e.Walk(func(x plan.Expr) {
				if c, ok := x.(*plan.Col); ok {
					seen[c.Idx] = true
				}
			})
		}
	}
	p := &prefetcher{}
	for i := range seen {
		p.idxs = append(p.idxs, i)
	}
	sort.Ints(p.idxs)
	p.live = make([]int, 0, len(p.idxs))
	p.cols = make([]*value.Col, 0, len(p.idxs))
	return p
}

// gather single-pass gathers the prefetch set into view's column cache;
// already-gathered or out-of-range indexes are skipped.
func (p *prefetcher) gather(v *batchView) {
	p.live, p.cols = p.live[:0], p.cols[:0]
	for _, idx := range p.idxs {
		if idx >= 0 && idx < len(v.cols) && !v.have[idx] {
			p.live = append(p.live, idx)
			p.cols = append(p.cols, &v.cols[idx])
		}
	}
	if len(p.live) == 0 {
		return
	}
	value.GatherMulti(v.rows, v.lo, v.hi, p.live, p.cols)
	for _, idx := range p.live {
		v.have[idx] = true
	}
}

// viewWidth is the column count of a window (rows of one relation all share
// a width).
func viewWidth(rows []value.Row) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}

// filterSel compacts the live lanes where pred evaluated to BOOLEAN true,
// applying the row path's keep test (anything else drops). sel nil means all
// n lanes were live. The result is written into dst (grown as needed); when
// dst aliases sel the in-place compaction is safe because both cursors move
// in ascending order and the write index never passes the read index.
func filterSel(c *value.Col, n int, sel, dst []int32) []int32 {
	if dst == nil {
		// Never return nil: callers use nil to mean "every lane live", so an
		// empty result must stay distinguishable from a dense one.
		dst = make([]int32, 0, n)
	}
	dst = dst[:0]
	if !c.Generic {
		if c.Kind != value.KindBool {
			return dst // homogeneous non-boolean predicate keeps nothing
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if c.B[i] {
					dst = append(dst, int32(i))
				}
			}
		} else {
			for _, i := range sel {
				if c.B[i] {
					dst = append(dst, i)
				}
			}
		}
		return dst
	}
	keep := func(i int32) bool {
		v := c.Any[i]
		return v.Kind == value.KindBool && v.B
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if keep(int32(i)) {
				dst = append(dst, int32(i))
			}
		}
	} else {
		for _, i := range sel {
			if keep(i) {
				dst = append(dst, i)
			}
		}
	}
	return dst
}

// allSel returns the dense selection [0,n) in buf.
func allSel(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}

// batchFilterPart filters one partition's rows by pred in windows, appending
// kept row references (the same aliasing the row path keeps).
func batchFilterPart(ctx *Context, ec *plan.EvalCtx, pred plan.Expr, rows []value.Row) ([]value.Row, error) {
	var (
		out  []value.Row
		view batchView
		sbuf []int32
	)
	width := viewWidth(rows)
	pre := newPrefetcher([]plan.Expr{pred})
	for lo := 0; lo < len(rows); lo += ctx.BatchSize {
		hi := lo + ctx.BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		view.reset(rows, lo, hi, width)
		pre.gather(&view)
		n := hi - lo
		col, err := plan.EvalVec(ec, pred, &view, nil)
		if err != nil {
			return nil, err
		}
		sbuf = filterSel(col, n, nil, sbuf)
		for _, i := range sbuf {
			out = append(out, rows[lo+int(i)])
		}
	}
	return out, nil
}

// batchProjectPart projects one partition's rows in windows, materializing
// output rows from the evaluated expression columns via the arena.
func batchProjectPart(ctx *Context, ec *plan.EvalCtx, exprs []plan.Expr, rows []value.Row) ([]value.Row, error) {
	out := make([]value.Row, 0, len(rows))
	var (
		view  batchView
		arena rowArena
	)
	width := viewWidth(rows)
	cols := make([]*value.Col, len(exprs))
	pre := newPrefetcher(exprs)
	for lo := 0; lo < len(rows); lo += ctx.BatchSize {
		hi := lo + ctx.BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		view.reset(rows, lo, hi, width)
		pre.gather(&view)
		for j, e := range exprs {
			c, err := plan.EvalVec(ec, e, &view, nil)
			if err != nil {
				return nil, err
			}
			cols[j] = c
		}
		for i := 0; i < hi-lo; i++ {
			nr := arena.alloc(len(exprs))
			for j := range cols {
				nr[j] = cols[j].Value(i)
			}
			out = append(out, nr)
		}
	}
	return out, nil
}

// batchPipelinePart runs the fused filter→project chain over one partition in
// windows. limit < 0 means unbounded; otherwise production stops after limit
// rows, truncating inside the final window via the selection vector so the
// discarded tail is never materialized (or charged by the caller, which
// charges emitted rows only).
func batchPipelinePart(ctx *Context, ec *plan.EvalCtx, sp *plan.Pipeline, rows []value.Row, limit int) ([]value.Row, error) {
	var (
		out   []value.Row
		view  batchView
		arena rowArena
		sbuf  []int32
	)
	width := viewWidth(rows)
	var cols []*value.Col
	if sp.Exprs != nil {
		cols = make([]*value.Col, len(sp.Exprs))
	}
	pre := newPrefetcher(sp.Filters, sp.Exprs)
	for lo := 0; lo < len(rows); lo += ctx.BatchSize {
		if limit >= 0 && len(out) >= limit {
			break
		}
		hi := lo + ctx.BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		view.reset(rows, lo, hi, width)
		pre.gather(&view)
		n := hi - lo
		sel := []int32(nil) // nil = every lane live
		for _, pred := range sp.Filters {
			col, err := plan.EvalVec(ec, pred, &view, sel)
			if err != nil {
				return nil, err
			}
			sbuf = filterSel(col, n, sel, sbuf)
			sel = sbuf
			if len(sel) == 0 {
				break
			}
		}
		if sel != nil && len(sel) == 0 {
			continue
		}
		if limit >= 0 {
			remaining := limit - len(out)
			if sel == nil && n > remaining {
				sel = allSel(sbuf, n)[:remaining]
			} else if sel != nil && len(sel) > remaining {
				sel = sel[:remaining]
			}
		}
		if sp.Exprs == nil {
			if sel == nil {
				out = append(out, rows[lo:hi]...)
			} else {
				for _, i := range sel {
					out = append(out, rows[lo+int(i)])
				}
			}
			continue
		}
		for j, e := range sp.Exprs {
			c, err := plan.EvalVec(ec, e, &view, sel)
			if err != nil {
				return nil, err
			}
			cols[j] = c
		}
		emit := func(i int) {
			nr := arena.alloc(len(sp.Exprs))
			for j := range cols {
				nr[j] = cols[j].Value(i)
			}
			out = append(out, nr)
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				emit(i)
			}
		} else {
			for _, i := range sel {
				emit(int(i))
			}
		}
	}
	return out, nil
}

// keyEval is the reusable vectorized key-evaluation state for one window:
// the key columns and the combined key-tuple hashes, matching hashVals of
// evalKeys lane for lane.
type keyEval struct {
	cols    []*value.Col
	hashes  []uint64
	scratch []uint64
}

// eval computes the key columns and combined hashes for every lane of view.
func (k *keyEval) eval(ec *plan.EvalCtx, keys []plan.Expr, view *batchView) error {
	n := view.BatchLen()
	if cap(k.cols) < len(keys) {
		k.cols = make([]*value.Col, len(keys))
	}
	k.cols = k.cols[:len(keys)]
	if cap(k.hashes) < n {
		k.hashes = make([]uint64, n)
		k.scratch = make([]uint64, n)
	}
	k.hashes = k.hashes[:n]
	k.scratch = k.scratch[:n]
	for i, e := range keys {
		c, err := plan.EvalVec(ec, e, view, nil)
		if err != nil {
			return err
		}
		k.cols[i] = c
	}
	for i := range k.hashes {
		k.hashes[i] = value.KeyHashInit
	}
	for _, c := range k.cols {
		c.HashesInto(k.scratch, nil)
		value.CombineKeyHashes(k.hashes, k.scratch, nil)
	}
	return nil
}

// keyFootprintAt is valsFootprint of the key tuple at lane i, computed from
// the columns without materializing the values.
func (k *keyEval) keyFootprintAt(i int) int64 {
	n := int64(32)
	for _, c := range k.cols {
		n += int64(c.SizeBytesAt(i))
	}
	return n
}

// materializeAt builds the key tuple at lane i as a value slice (used only
// when a row actually enters a hash table, so the per-row allocation of the
// row path is paid once per stored entry instead of once per input row).
func (k *keyEval) materializeAt(i int) []value.Value {
	kv := make([]value.Value, len(k.cols))
	for j, c := range k.cols {
		kv[j] = c.Value(i)
	}
	return kv
}

// colKeyEqual compares one key column lane against a materialized key value
// with valsEqual's semantics: numeric pairs compare by their double
// representation, everything else by deep equality.
func colKeyEqual(c *value.Col, i int, w value.Value) bool {
	if !c.Generic {
		switch c.Kind {
		case value.KindInt:
			if !w.IsNumeric() {
				return false
			}
			y, _ := w.AsDouble()
			return float64(c.I[i]) == y
		case value.KindDouble, value.KindLabeledScalar:
			if !w.IsNumeric() {
				return false
			}
			y, _ := w.AsDouble()
			return c.F[i] == y
		case value.KindString:
			return w.Kind == value.KindString && c.S[i] == w.S
		case value.KindBool:
			return w.Kind == value.KindBool && c.B[i] == w.B
		}
	}
	v := c.Value(i)
	if v.IsNumeric() && w.IsNumeric() {
		x, _ := v.AsDouble()
		y, _ := w.AsDouble()
		return x == y
	}
	return v.Equal(w)
}

// keyTupleEqual compares the key columns at lane i against a materialized
// key tuple.
func keyTupleEqual(cols []*value.Col, i int, keys []value.Value) bool {
	for j, c := range cols {
		if !colKeyEqual(c, i, keys[j]) {
			return false
		}
	}
	return true
}

// --- batch hash join ---------------------------------------------------------

// runBatch is partJoin.run for the batch executor; structure and spill
// decisions mirror run exactly.
func (pj *partJoin) runBatch(buildRows, probeRows []value.Row) error {
	if !pj.ctx.spillEnabled() {
		table, _, err := pj.buildTableBatch(buildRows, nil, false)
		if err != nil {
			return err
		}
		return pj.probeBatch(table, probeRows)
	}
	res := pj.ctx.Spill.Governor().Reservation("hash join build")
	defer res.Release()
	table, ok, err := pj.buildTableBatch(buildRows, res, false)
	if err != nil {
		return err
	}
	if ok {
		return pj.probeBatch(table, probeRows)
	}
	res.Reset()
	return pj.graceBatch(buildRows, probeRows, res, 0)
}

// buildTableBatch is the vectorized buildTable: key evaluation and hashing
// are columnar, rows are inserted in input order, and the reservation is
// grown by the identical per-row footprint so a denial aborts at the same
// row as the row path.
func (pj *partJoin) buildTableBatch(rows []value.Row, res *spill.Reservation, force bool) (map[uint64][]joinBucket, bool, error) {
	table := make(map[uint64][]joinBucket, len(rows))
	var (
		view batchView
		ke   keyEval
	)
	width := viewWidth(rows)
	for lo := 0; lo < len(rows); lo += pj.bsize {
		hi := lo + pj.bsize
		if hi > len(rows) {
			hi = len(rows)
		}
		view.reset(rows, lo, hi, width)
		if err := ke.eval(pj.ec, pj.buildKeys, &view); err != nil {
			return nil, false, err
		}
		for i := 0; i < hi-lo; i++ {
			r := rows[lo+i]
			if res != nil {
				fp := rowFootprint(r) + ke.keyFootprintAt(i)
				if force {
					res.Force(fp)
				} else if !res.Grow(fp) {
					return nil, false, nil
				}
			}
			h := ke.hashes[i]
			table[h] = append(table[h], joinBucket{keys: ke.materializeAt(i), row: r})
		}
	}
	return table, true, nil
}

// probeBatch probes probeRows against the table in windows: probe keys and
// hashes are computed columnar, bucket scans compare column lanes against the
// stored key tuples without materializing probe-side tuples, and each
// window's matches emit through the vectorized residual/projection path in
// match order — the same rows, in the same order, with the same charges as
// the row executor's per-match emitMatch.
func (pj *partJoin) probeBatch(table map[uint64][]joinBucket, probeRows []value.Row) error {
	var (
		view   batchView
		ke     keyEval
		mb, mp []value.Row
	)
	if pj.em == nil {
		pj.em = newBatchEmitter(pj)
	}
	width := viewWidth(probeRows)
	for lo := 0; lo < len(probeRows); lo += pj.bsize {
		hi := lo + pj.bsize
		if hi > len(probeRows) {
			hi = len(probeRows)
		}
		view.reset(probeRows, lo, hi, width)
		if err := ke.eval(pj.ec, pj.probeKeys, &view); err != nil {
			return err
		}
		mb, mp = mb[:0], mp[:0]
		for i := 0; i < hi-lo; i++ {
			bucket := table[ke.hashes[i]]
			if len(bucket) == 0 {
				continue
			}
			pr := probeRows[lo+i]
			for _, b := range bucket {
				if !keyTupleEqual(ke.cols, i, b.keys) {
					continue
				}
				mb = append(mb, b.row)
				mp = append(mp, pr)
			}
		}
		if err := pj.em.flush(mb, mp); err != nil {
			return err
		}
	}
	return nil
}

// pairSource is a plan.BatchSource over the matched pairs of one probe
// window: column idx < split gathers from the left-side rows, the rest from
// the right side, so the vectorized residual and projection never pay for
// materializing concatenated rows. The scalar fallback (BatchRow) builds the
// concat rows lazily, costing what the eager copy cost only when a generic
// expression actually needs whole rows.
type pairSource struct {
	left, right []value.Row
	split, w    int
	cols        []value.Col
	have        []bool
	buf         []value.Value // flat backing for lazily-built concat rows
	concat      []value.Row
}

func (ps *pairSource) reset(left, right []value.Row, split, w int) {
	ps.left, ps.right = left, right
	ps.split, ps.w = split, w
	if cap(ps.cols) < w {
		ps.cols = make([]value.Col, w)
		ps.have = make([]bool, w)
	}
	ps.cols = ps.cols[:w]
	ps.have = ps.have[:w]
	for i := range ps.have {
		ps.have[i] = false
	}
	ps.concat = ps.concat[:0]
}

func (ps *pairSource) BatchLen() int { return len(ps.left) }

func (ps *pairSource) BatchCol(idx int) (*value.Col, error) {
	if idx < 0 || idx >= ps.w {
		return nil, fmt.Errorf("exec: batch column %d out of range (width %d)", idx, ps.w)
	}
	c := &ps.cols[idx]
	if !ps.have[idx] {
		if idx < ps.split {
			c.Gather(ps.left, 0, len(ps.left), idx)
		} else {
			c.Gather(ps.right, 0, len(ps.right), idx-ps.split)
		}
		ps.have[idx] = true
	}
	return c, nil
}

func (ps *pairSource) BatchRow(i int) value.Row {
	if len(ps.concat) == 0 {
		n := len(ps.left)
		if cap(ps.buf) < n*ps.w {
			ps.buf = make([]value.Value, n*ps.w)
		}
		for k := 0; k < n; k++ {
			nr := value.Row(ps.buf[k*ps.w : k*ps.w : (k+1)*ps.w])
			nr = append(nr, ps.left[k]...)
			nr = append(nr, ps.right[k]...)
			ps.concat = append(ps.concat, nr)
		}
	}
	return ps.concat[i]
}

// batchEmitter vectorizes the match-emission tail of the batch probe:
// residual predicates and the fused projection evaluate columnar over the
// window's matched build/probe pairs. Emitted rows, their order, and the
// per-row charge ticks are identical to emitMatch's; like the vectorized
// filters, only the error ordering of a failing residual may differ.
type batchEmitter struct {
	pj    *partJoin
	pair  pairSource
	view  batchView
	sbuf  []int32
	cols  []*value.Col
	arena rowArena // output rows
}

func newBatchEmitter(pj *partJoin) *batchEmitter {
	em := &batchEmitter{pj: pj}
	if pj.proj != nil {
		em.cols = make([]*value.Col, len(pj.proj.exprs))
	}
	return em
}

// flush emits the window's matches; bRows and pRows are parallel pair sides.
func (em *batchEmitter) flush(bRows, pRows []value.Row) error {
	n := len(bRows)
	if n == 0 {
		return nil
	}
	pj := em.pj
	left, right := bRows, pRows
	if !pj.buildLeft {
		left, right = pRows, bRows
	}
	w := len(left[0]) + len(right[0])
	if pj.proj == nil {
		return em.flushConcat(left, right, w)
	}
	em.pair.reset(left, right, len(left[0]), w)
	var sel []int32
	for _, res := range pj.j.Residual {
		col, err := plan.EvalVec(pj.ec, res, &em.pair, sel)
		if err != nil {
			return err
		}
		em.sbuf = filterSel(col, n, sel, em.sbuf)
		sel = em.sbuf
		if len(sel) == 0 {
			return nil
		}
	}
	for j, e := range pj.proj.exprs {
		c, err := plan.EvalVec(pj.ec, e, &em.pair, sel)
		if err != nil {
			return err
		}
		em.cols[j] = c
	}
	emit := func(i int) error {
		nr := em.arena.alloc(len(em.cols))
		for j := range em.cols {
			nr[j] = em.cols[j].Value(i)
		}
		pj.rows = append(pj.rows, nr)
		return pj.charge.tick()
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range sel {
		if err := emit(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// flushConcat is the no-projection leg: the concatenated rows are the output
// rows themselves, so they must materialize (from the arena); the residual
// then runs vectorized over a view of them.
func (em *batchEmitter) flushConcat(left, right []value.Row, w int) error {
	pj := em.pj
	n := len(left)
	concat := make([]value.Row, 0, n)
	for i := 0; i < n; i++ {
		nr := em.arena.alloc(w)[:0]
		nr = append(nr, left[i]...)
		nr = append(nr, right[i]...)
		concat = append(concat, nr)
	}
	em.view.reset(concat, 0, n, w)
	var sel []int32
	for _, res := range pj.j.Residual {
		col, err := plan.EvalVec(pj.ec, res, &em.view, sel)
		if err != nil {
			return err
		}
		em.sbuf = filterSel(col, n, sel, em.sbuf)
		sel = em.sbuf
		if len(sel) == 0 {
			return nil
		}
	}
	emit := func(i int) error {
		pj.rows = append(pj.rows, concat[i])
		return pj.charge.tick()
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range sel {
		if err := emit(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// emitMatch concatenates one build/probe match, applies residual predicates
// and the fused projection, and charges the emitted tuple — the shared tail
// of probeRow and probeBatch.
func (pj *partJoin) emitMatch(buildRow, probeRow value.Row) error {
	nr := make(value.Row, 0, len(pj.j.Out))
	if pj.buildLeft {
		nr = append(nr, buildRow...)
		nr = append(nr, probeRow...)
	} else {
		nr = append(nr, probeRow...)
		nr = append(nr, buildRow...)
	}
	for _, res := range pj.j.Residual {
		v, err := res.Eval(pj.ec, nr)
		if err != nil {
			return err
		}
		if !(v.Kind == value.KindBool && v.B) {
			return nil
		}
	}
	emitted, err := pj.proj.emit(pj.ec, nr)
	if err != nil {
		return err
	}
	pj.rows = append(pj.rows, emitted)
	return pj.charge.tick()
}

// graceBatch is the vectorized grace join: the scatter hashes come from the
// columnar key path (bit-identical to hashVals), so every row lands in the
// same file, in the same order, as the row executor's grace join.
func (pj *partJoin) graceBatch(buildRows, probeRows []value.Row, res *spill.Reservation, depth int) error {
	f := pj.graceFanout(buildRows)
	salt := graceSalt(depth)
	buildRuns, err := pj.spillSideBatch("join-build", pj.buildKeys, buildRows, f, salt)
	if err != nil {
		return err
	}
	probeRuns, err := pj.spillSideBatch("join-probe", pj.probeKeys, probeRows, f, salt)
	if err != nil {
		removeRunSlice(buildRuns)
		return err
	}
	for i := 0; i < f; i++ {
		err := pj.graceSubBatch(buildRuns[i], probeRuns[i], res, depth)
		buildRuns[i], probeRuns[i] = nil, nil
		if err != nil {
			removeRunSlice(buildRuns)
			removeRunSlice(probeRuns)
			return err
		}
	}
	return nil
}

// graceSubBatch joins one sub-partition pair: the build side rebuilds
// columnar, the probe side re-materializes and probes in windows.
func (pj *partJoin) graceSubBatch(buildRun, probeRun *spill.Run, res *spill.Reservation, depth int) error {
	defer res.Reset()
	if buildRun.Rows == 0 || probeRun.Rows == 0 {
		if err := buildRun.Remove(); err != nil {
			return err
		}
		return probeRun.Remove()
	}
	subBuild, err := readRun(buildRun)
	if err != nil {
		return err
	}
	if err := buildRun.Remove(); err != nil {
		return err
	}
	table, ok, err := pj.buildTableBatch(subBuild, res, depth+1 >= maxGraceDepth)
	if err != nil {
		_ = probeRun.Remove() // the build error is the actionable one
		return err
	}
	if !ok {
		res.Reset()
		subProbe, err := readRun(probeRun)
		if err != nil {
			return err
		}
		if err := probeRun.Remove(); err != nil {
			return err
		}
		return pj.graceBatch(subBuild, subProbe, res, depth+1)
	}
	// Stream the probe run in windows, like the row path streams it row by
	// row, so the probe side never materializes whole.
	rd, err := probeRun.Reader()
	if err != nil {
		return err
	}
	buf := make([]value.Row, 0, pj.bsize)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := pj.probeBatch(table, buf)
		buf = buf[:0]
		return err
	}
	for {
		row, more, err := rd.Next()
		if err != nil {
			_ = rd.Close()
			return err
		}
		if !more {
			break
		}
		buf = append(buf, row)
		if len(buf) == pj.bsize {
			if err := flush(); err != nil {
				_ = rd.Close()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		_ = rd.Close()
		return err
	}
	if err := rd.Close(); err != nil {
		return err
	}
	return probeRun.Remove()
}

// spillSideBatch is the vectorized spillSide: same files, same order.
func (pj *partJoin) spillSideBatch(label string, keys []plan.Expr, rows []value.Row, f int, salt uint64) ([]*spill.Run, error) {
	writers := make([]*spill.Writer, f)
	abortAll := func() {
		for _, w := range writers {
			if w != nil {
				_ = w.Abort() // the original error is the actionable one
			}
		}
	}
	for i := range writers {
		w, err := pj.ctx.Spill.NewWriterAt(fmt.Sprintf("%s-p%d-%d", label, pj.part, i), pj.attempt)
		if err != nil {
			abortAll()
			return nil, err
		}
		writers[i] = w
	}
	var (
		view batchView
		ke   keyEval
	)
	width := viewWidth(rows)
	for lo := 0; lo < len(rows); lo += pj.bsize {
		hi := lo + pj.bsize
		if hi > len(rows) {
			hi = len(rows)
		}
		view.reset(rows, lo, hi, width)
		if err := ke.eval(pj.ec, keys, &view); err != nil {
			abortAll()
			return nil, err
		}
		for i := 0; i < hi-lo; i++ {
			idx := int(mix64(ke.hashes[i]^salt) % uint64(f))
			if err := writers[idx].Append(rows[lo+i]); err != nil {
				abortAll()
				return nil, err
			}
		}
	}
	runs := make([]*spill.Run, f)
	for i, w := range writers {
		run, err := w.Finish()
		if err != nil {
			writers[i] = nil
			abortAll()
			removeRunSlice(runs)
			return nil, err
		}
		writers[i] = nil
		runs[i] = run
	}
	return runs, nil
}

// --- batch aggregation -------------------------------------------------------

// buildBatch is partAgg.build for the batch executor: the iterator's rows are
// buffered into windows, group keys and hashes (and non-fused aggregate
// arguments) are evaluated columnar, then each row is routed in input order
// through exactly the row path's group-lookup/overflow/Grow decisions. Key
// tuples materialize only when a new group actually enters the table.
// stepCol feeds lane i of column c into state st, using the unboxed stepper
// fast paths when both the column storage and the state support them.
// LabeledScalar lanes fall back to Step so labels reach states that keep them.
func stepCol(st builtins.AggState, c *value.Col, i int) error {
	if !c.Generic {
		switch c.Kind {
		case value.KindDouble:
			if ds, ok := st.(builtins.DoubleStepper); ok {
				return ds.StepDouble(c.F[i])
			}
		case value.KindInt:
			if is, ok := st.(builtins.IntStepper); ok {
				return is.StepInt(c.I[i])
			}
		}
	}
	return st.Step(c.Value(i))
}

func (pa *partAgg) buildBatch(next rowIter, res *spill.Reservation, depth int) (map[uint64][]*aggGroup, error) {
	groups := map[uint64][]*aggGroup{}
	force := depth >= maxGraceDepth
	salt := graceSalt(depth)
	var writers []*spill.Writer
	abortAll := func() {
		for _, w := range writers {
			if w != nil {
				_ = w.Abort() // the original error is the actionable one
			}
		}
	}

	fuse := !pa.ctx.DisableAggFusion
	// Aggregate argument columns vectorize only for plain (non-fused,
	// non-COUNT(*)) calls; fused states step from the original row.
	vecArg := make([]bool, len(pa.a.Aggs))
	for i, a := range pa.a.Aggs {
		vecArg[i] = a.Input != nil && !(fuse && fusedOf(a) != fusedNone)
	}
	argCols := make([]*value.Col, len(pa.a.Aggs))
	var vecInputs []plan.Expr
	for i, a := range pa.a.Aggs {
		if vecArg[i] {
			vecInputs = append(vecInputs, a.Input)
		}
	}
	pre := newPrefetcher(pa.a.GroupBy, vecInputs)

	window := make([]value.Row, 0, pa.bsize)
	var (
		view batchView
		ke   keyEval
	)
	done := false
	for !done {
		window = window[:0]
		for len(window) < pa.bsize {
			r, ok, err := next()
			if err != nil {
				abortAll()
				return nil, err
			}
			if !ok {
				done = true
				break
			}
			window = append(window, r)
		}
		if len(window) == 0 {
			break
		}
		view.reset(window, 0, len(window), viewWidth(window))
		pre.gather(&view)
		if err := ke.eval(pa.ec, pa.a.GroupBy, &view); err != nil {
			abortAll()
			return nil, err
		}
		for j, a := range pa.a.Aggs {
			if !vecArg[j] {
				continue
			}
			c, err := plan.EvalVec(pa.ec, a.Input, &view, nil)
			if err != nil {
				abortAll()
				return nil, err
			}
			argCols[j] = c
		}
		for i, r := range window {
			h := ke.hashes[i]
			var g *aggGroup
			for _, cand := range groups[h] {
				if keyTupleEqual(ke.cols, i, cand.keys) {
					g = cand
					break
				}
			}
			if g == nil {
				if writers != nil {
					idx := int(mix64(h^salt) % uint64(len(writers)))
					if err := writers[idx].Append(r); err != nil {
						abortAll()
						return nil, err
					}
					continue
				}
				fp := ke.keyFootprintAt(i) + stateFootprint(len(pa.a.Aggs))
				if res != nil && !force && !res.Grow(fp) {
					writers = make([]*spill.Writer, aggSpillFanout)
					for wi := range writers {
						w, err := pa.ctx.Spill.NewWriterAt(fmt.Sprintf("agg-p%d-d%d-%d", pa.part, depth, wi), pa.attempt)
						if err != nil {
							abortAll()
							return nil, err
						}
						writers[wi] = w
					}
					idx := int(mix64(h^salt) % uint64(len(writers)))
					if err := writers[idx].Append(r); err != nil {
						abortAll()
						return nil, err
					}
					continue
				}
				if res != nil && force {
					res.Force(fp)
				}
				g = &aggGroup{keys: ke.materializeAt(i), states: newStates(pa.a.Aggs, fuse)}
				groups[h] = append(groups[h], g)
			}
			for j := range g.states {
				var err error
				switch {
				case vecArg[j]:
					err = stepCol(g.states[j], argCols[j], i)
				case pa.a.Aggs[j].Input == nil:
					// COUNT(*): any non-null marker.
					if is, ok := g.states[j].(builtins.IntStepper); ok {
						err = is.StepInt(1)
					} else {
						err = g.states[j].Step(value.Int(1))
					}
				default:
					err = g.states[j].(*fusedSumState).stepFused(pa.ec, r)
				}
				if err != nil {
					abortAll()
					return nil, err
				}
			}
		}
	}
	if writers == nil {
		return groups, nil
	}
	runs := make([]*spill.Run, len(writers))
	for i, w := range writers {
		run, err := w.Finish()
		if err != nil {
			for j := i + 1; j < len(writers); j++ {
				_ = writers[j].Abort()
			}
			removeRunSlice(runs)
			return nil, err
		}
		runs[i] = run
	}
	for i, run := range runs {
		child, err := pa.buildFromRun(run, res, depth+1)
		runs[i] = nil
		if err != nil {
			removeRunSlice(runs)
			return nil, err
		}
		if err := mergeGroupMaps(groups, child); err != nil {
			removeRunSlice(runs)
			return nil, err
		}
	}
	return groups, nil
}
