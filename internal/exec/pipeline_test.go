package exec

import (
	"testing"

	"relalg/internal/catalog"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

// pipelinePlan builds Project(Filter(Scan(t))) keeping rows with a < keep and
// projecting a*10.
func pipelinePlan(s *plan.Scan, keep int64) *plan.Project {
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: col(0, types.TInt), R: &plan.Const{V: value.Int(keep), T: types.TInt}, T: types.TBool}
	return &plan.Project{
		Input: &plan.Filter{Input: s, Pred: pred},
		Exprs: []plan.Expr{&plan.Binary{Op: "*", Kind: plan.BinArith, L: col(0, types.TInt), R: &plan.Const{V: value.Int(10), T: types.TInt}, T: types.TInt}},
		Out:   plan.Schema{{Name: "x", T: types.TInt}},
	}
}

func TestPipelineMatchesUnfused(t *testing.T) {
	tables := memSource{}
	fused := testCtx(tables)
	tables["t"] = intTable(fused, 40)
	unfused := testCtx(tables)
	unfused.DisablePipelineFusion = true

	s := scanNode("t", 40,
		catalog.Column{Name: "a", Type: types.TInt},
		catalog.Column{Name: "b", Type: types.TInt})
	p := pipelinePlan(s, 17)

	relF, err := Run(fused, p)
	if err != nil {
		t.Fatal(err)
	}
	relU, err := Run(unfused, p)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Timings.Get("pipeline") == 0 {
		t.Fatal("fused run never entered the pipeline operator")
	}
	if unfused.Timings.Get("pipeline") != 0 {
		t.Fatal("unfused run entered the pipeline operator")
	}
	if len(relF.Parts) != len(relU.Parts) {
		t.Fatalf("parts %d vs %d", len(relF.Parts), len(relU.Parts))
	}
	// Fusion must preserve both the rows and their partition placement.
	for part := range relF.Parts {
		if len(relF.Parts[part]) != len(relU.Parts[part]) {
			t.Fatalf("part %d: %d vs %d rows", part, len(relF.Parts[part]), len(relU.Parts[part]))
		}
		for i, r := range relF.Parts[part] {
			u := relU.Parts[part][i]
			if len(r) != len(u) || r[0].I != u[0].I {
				t.Fatalf("part %d row %d: %v vs %v", part, i, r, u)
			}
		}
	}
}

func TestPipelineFilterOnlyKeepsRows(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 30)
	s := scanNode("t", 30,
		catalog.Column{Name: "a", Type: types.TInt},
		catalog.Column{Name: "b", Type: types.TInt})
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: col(0, types.TInt), R: &plan.Const{V: value.Int(7), T: types.TInt}, T: types.TBool}
	rel, err := Run(ctx, &plan.Filter{Input: s, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 7 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	if ctx.Timings.Get("pipeline") == 0 {
		t.Fatal("filter-over-scan should run as a fused pipeline")
	}
}

// TestOperatorCharges pins the cost-model fix: filter, sort and limit now
// charge the tuples they materialize (filters used to be free while projects
// were charged), and the fused pipeline charges only its final output.
func TestOperatorCharges(t *testing.T) {
	scan := func() (*Context, *plan.Scan) {
		tables := memSource{}
		ctx := testCtx(tables)
		tables["t"] = intTable(ctx, 20)
		return ctx, scanNode("t", 20,
			catalog.Column{Name: "a", Type: types.TInt},
			catalog.Column{Name: "b", Type: types.TInt})
	}
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: col(0, types.TInt), R: &plan.Const{V: value.Int(8), T: types.TInt}, T: types.TBool}

	t.Run("filter", func(t *testing.T) {
		ctx, s := scan()
		ctx.DisablePipelineFusion = true
		if _, err := Run(ctx, &plan.Filter{Input: s, Pred: pred}); err != nil {
			t.Fatal(err)
		}
		if got := ctx.Cluster.Stats().Snapshot().TuplesProduced; got != 8 {
			t.Fatalf("filter charged %d tuples, want 8 (its kept rows)", got)
		}
	})
	t.Run("sort", func(t *testing.T) {
		ctx, s := scan()
		if _, err := Run(ctx, &plan.Sort{Input: s, Keys: []plan.OrderKey{{Col: 0}}}); err != nil {
			t.Fatal(err)
		}
		if got := ctx.Cluster.Stats().Snapshot().TuplesProduced; got != 20 {
			t.Fatalf("sort charged %d tuples, want 20 (its gathered rows)", got)
		}
	})
	t.Run("limit", func(t *testing.T) {
		ctx, s := scan()
		if _, err := Run(ctx, &plan.Limit{Input: s, N: 3}); err != nil {
			t.Fatal(err)
		}
		if got := ctx.Cluster.Stats().Snapshot().TuplesProduced; got != 3 {
			t.Fatalf("limit charged %d tuples, want 3 (its surviving rows)", got)
		}
	})
	t.Run("pipeline-charges-output-only", func(t *testing.T) {
		ctx, s := scan()
		if _, err := Run(ctx, pipelinePlan(s, 8)); err != nil {
			t.Fatal(err)
		}
		if got := ctx.Cluster.Stats().Snapshot().TuplesProduced; got != 8 {
			t.Fatalf("fused pipeline charged %d tuples, want 8 (final output only)", got)
		}
		// Unfused, the same chain pays for the filter and project stages
		// separately: 8 filtered + 8 projected = 16.
		ctx2, s2 := scan()
		ctx2.DisablePipelineFusion = true
		if _, err := Run(ctx2, pipelinePlan(s2, 8)); err != nil {
			t.Fatal(err)
		}
		if got := ctx2.Cluster.Stats().Snapshot().TuplesProduced; got != 16 {
			t.Fatalf("unfused chain charged %d tuples, want 16", got)
		}
	})
}

func TestPipelineHashKeyRules(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 20)
	meta := catalog.NewTableMeta("t", catalog.Schema{Cols: []catalog.Column{
		{Name: "a", Type: types.TInt},
		{Name: "b", Type: types.TInt},
	}}, 20)
	meta.PartitionCol = "a"
	s := &plan.Scan{Table: meta, Out: plan.Schema{{Name: "a", T: types.TInt}, {Name: "b", T: types.TInt}}}
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: col(0, types.TInt), R: &plan.Const{V: value.Int(10), T: types.TInt}, T: types.TBool}

	// Filter-only: rows only disappear, so the scan's advertised placement
	// survives the fused pipeline.
	rel, err := Run(ctx, &plan.Filter{Input: s, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if rel.HashKeys == nil {
		t.Fatal("filter-only pipeline dropped the scan's hash keys")
	}
	// Projecting: keys would need rewriting through the projection, so the
	// pipeline conservatively drops them (same rule as runProject).
	rel2, err := Run(ctx, pipelinePlan(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.HashKeys != nil {
		t.Fatal("projecting pipeline must not advertise hash keys")
	}
}

// TestPipelineAllocs is the allocation regression gate from the issue: the
// fused pipeline must allocate at most half of what the stage-at-a-time
// executor spends on the same scan→filter→project chain.
func TestPipelineAllocs(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	const n = 4000
	tables["t"] = intTable(ctx, n)
	s := scanNode("t", n,
		catalog.Column{Name: "a", Type: types.TInt},
		catalog.Column{Name: "b", Type: types.TInt})
	// Keep every row so the projection allocation dominates both paths.
	p := pipelinePlan(s, n)

	unfused := testCtx(tables)
	unfused.DisablePipelineFusion = true
	// Raise the budget: AllocsPerRun repeats the query and charges accumulate
	// across runs.
	run := func(ctx *Context) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(ctx, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	fusedAllocs := run(ctx)
	unfusedAllocs := run(unfused)
	t.Logf("allocs per query: fused %.0f, unfused %.0f", fusedAllocs, unfusedAllocs)
	if fusedAllocs > unfusedAllocs/2 {
		t.Fatalf("fused pipeline allocates %.0f per run, want <= half of unfused %.0f", fusedAllocs, unfusedAllocs)
	}
}
