package exec

// Adaptive mid-query re-optimization. The optimizer picks a join order from
// estimates; when an estimate is off by an order of magnitude the chosen
// order can be catastrophically wrong (the paper's π(S×R)⋈T plan hinges on
// knowing which side is small). The executor is the first component to see
// the truth: at each join-region boundary it has the real input
// cardinalities in hand. When observation and estimate diverge by more than
// Factor in either direction, the region is handed back to the optimizer
// with the materialized inputs pinned as Bound leaves, and the re-ordered
// region runs instead. Work already done is never discarded — leaves execute
// once and are cached.

import (
	"fmt"
	"math"

	"relalg/internal/plan"
)

// Adaptive configures mid-query re-optimization. The executor cannot import
// the optimizer (it would invert the package layering), so the optimizer's
// entry points arrive as function values, wired by core.
type Adaptive struct {
	// Factor is the estimate/observation divergence ratio (either direction)
	// that triggers a re-plan. Values <= 1 disable adaptivity.
	Factor float64
	// Estimate returns the optimizer's cardinality estimate for a node.
	Estimate func(plan.Node) float64
	// Replan re-orders a join region given observed leaf cardinalities.
	Replan func(root plan.Node, observed func(plan.Node) (float64, bool)) (plan.Node, error)
	// OnReplan, when non-nil, is called once per region actually re-planned
	// (the Stats.Replans counter).
	OnReplan func()
}

// enabled reports whether this configuration can trigger re-planning.
func (a *Adaptive) enabled() bool {
	return a != nil && a.Factor > 1 && a.Estimate != nil && a.Replan != nil
}

// adaptPlan is called when execution reaches the top of a Join/Cross region.
// It executes the region's leaves (caching each materialized relation in
// ctx.bound), compares observed and estimated cardinalities, and either
// returns the region unchanged or a re-planned tree whose Bound leaves
// resolve to the cached relations. Inner joins of the region are marked
// handled so recursion into them skips the divergence check — the region
// re-plans as a whole or not at all.
func adaptPlan(ctx *Context, n plan.Node) (plan.Node, error) {
	a := ctx.Adaptive
	if !a.enabled() {
		return n, nil
	}
	if ctx.adaptiveHandled[n] {
		return n, nil
	}
	var leaves []plan.Node
	collectRegionLeaves(n, &leaves)
	if ctx.bound == nil {
		ctx.bound = map[plan.Node]*Relation{}
	}
	if ctx.adaptiveHandled == nil {
		ctx.adaptiveHandled = map[plan.Node]bool{}
	}
	diverged := false
	for _, leaf := range leaves {
		rel, ok := ctx.bound[leaf]
		if !ok {
			var err error
			rel, err = Run(ctx, leaf)
			if err != nil {
				return nil, err
			}
			ctx.bound[leaf] = rel
		}
		est := math.Max(1, a.Estimate(leaf))
		obs := math.Max(1, float64(rel.NumRows()))
		if est/obs > a.Factor || obs/est > a.Factor {
			diverged = true
		}
	}
	markRegionHandled(ctx, n)
	if !diverged || len(leaves) < 2 {
		return n, nil
	}
	replanned, err := a.Replan(n, func(leaf plan.Node) (float64, bool) {
		rel, ok := ctx.bound[leaf]
		if !ok {
			return 0, false
		}
		return float64(rel.NumRows()), true
	})
	if err != nil {
		return nil, fmt.Errorf("exec: adaptive replan: %w", err)
	}
	markReplannedHandled(ctx, replanned)
	if a.OnReplan != nil {
		a.OnReplan()
	}
	return replanned, nil
}

// collectRegionLeaves gathers the inputs of a maximal Join/Cross tree in
// order. Only Join and Cross extend a region: a Project between joins is a
// pipeline boundary and becomes a leaf.
func collectRegionLeaves(n plan.Node, out *[]plan.Node) {
	switch x := n.(type) {
	case *plan.Join:
		collectRegionLeaves(x.L, out)
		collectRegionLeaves(x.R, out)
	case *plan.Cross:
		collectRegionLeaves(x.L, out)
		collectRegionLeaves(x.R, out)
	default:
		*out = append(*out, n)
	}
}

// markRegionHandled marks every Join/Cross of the original region so
// recursion into the kept tree doesn't re-run the divergence check per
// inner join.
func markRegionHandled(ctx *Context, n plan.Node) {
	switch x := n.(type) {
	case *plan.Join:
		ctx.adaptiveHandled[n] = true
		markRegionHandled(ctx, x.L)
		markRegionHandled(ctx, x.R)
	case *plan.Cross:
		ctx.adaptiveHandled[n] = true
		markRegionHandled(ctx, x.L)
		markRegionHandled(ctx, x.R)
	}
}

// markReplannedHandled marks the joins of a freshly re-planned region. The
// re-planned tree may interleave Projects (eager projection) and Filters
// (pushed conjuncts) with its joins, so this walks through everything and
// stops at Bound leaves — below them sits the original, already-executed
// subtree.
func markReplannedHandled(ctx *Context, n plan.Node) {
	switch n.(type) {
	case *plan.Bound:
		return
	case *plan.Join, *plan.Cross:
		ctx.adaptiveHandled[n] = true
	}
	for _, c := range n.Children() {
		markReplannedHandled(ctx, c)
	}
}
